#include "runtime/fault_injection.hpp"

namespace nopfs::runtime {

RebalanceReport rebalance_after_leave(core::LocationIndex& index, int dead_rank) {
  const auto [remapped, pfs_only] = index.drop_rank(dead_rank);
  return RebalanceReport{remapped, pfs_only};
}

}  // namespace nopfs::runtime
