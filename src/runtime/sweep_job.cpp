#include "runtime/sweep_job.hpp"

#include "net/socket_transport.hpp"

namespace nopfs::runtime {

sim::SweepServiceReport run_sweep_job(const std::vector<sim::SweepPoint>& points,
                                      const WorkerEndpoint& endpoint,
                                      const sim::SweepServiceOptions& options) {
  if (endpoint.world_size <= 1) {
    return sim::run_sweep_service(nullptr, points, options);
  }
  net::SocketOptions socket;
  socket.rank = endpoint.rank;
  socket.world_size = endpoint.world_size;
  socket.rendezvous_host = endpoint.rendezvous_host;
  socket.rendezvous_port = endpoint.rendezvous_port;
  socket.timeout_s = endpoint.timeout_s;
  net::SocketTransport transport(socket);
  return sim::run_sweep_service(&transport, points, options);
}

}  // namespace nopfs::runtime
