#include "runtime/sweep_job.hpp"

#include <algorithm>

#include "net/socket_transport.hpp"

namespace nopfs::runtime {

sim::SweepServiceReport run_sweep_job(const std::vector<sim::SweepPoint>& points,
                                      const WorkerEndpoint& endpoint,
                                      const sim::SweepServiceOptions& options) {
  // An elastic sweep needs the socket even for a solo root (world 1 +
  // max_workers > 1): late joiners rendezvous against it mid-sweep.
  const int max_world = std::max(endpoint.world_size, options.max_workers);
  if (max_world <= 1) {
    return sim::run_sweep_service(nullptr, points, options);
  }
  net::SocketOptions socket;
  socket.rank = endpoint.rank;
  socket.world_size = endpoint.world_size;
  socket.rendezvous_host = endpoint.rendezvous_host;
  socket.rendezvous_port = endpoint.rendezvous_port;
  socket.timeout_s = endpoint.timeout_s;
  socket.reactor_backend = endpoint.reactor;
  if (options.max_workers > endpoint.world_size) {
    socket.max_world = options.max_workers;
  }
  net::SocketTransport transport(socket);
  return sim::run_sweep_service(&transport, points, options);
}

}  // namespace nopfs::runtime
