#pragma once
// Runtime harness: executes a real multi-worker training run in one process.
//
// N worker threads each drive a Loader (NoPFS or a baseline) against the
// emulated storage substrate: devices are rate-limited token buckets, the
// PFS is contention-aware, remote fetches ride the SimTransport.  Compute
// is emulated by sleeping s_k/c (scaled); each iteration ends with a
// barrier, the gradient allreduce of data-parallel training.  All reported
// times are virtual seconds (real seconds x time_scale).
//
// This is the "real system" half of the evaluation: it exercises the
// production NoPFS code paths (staging buffer, prefetchers, metadata,
// transport), while src/sim scales the same performance model to thousands
// of workers analytically.

#include <cstdint>
#include <vector>

#include "baselines/loader.hpp"
#include "data/dataset.hpp"
#include "tiers/params.hpp"
#include "util/stats.hpp"

namespace nopfs::runtime {

struct RuntimeConfig {
  tiers::SystemParams system;
  baselines::LoaderKind loader = baselines::LoaderKind::kNoPFS;
  std::uint64_t seed = 42;
  int num_epochs = 2;
  std::uint64_t per_worker_batch = 8;
  bool drop_last = true;
  /// Virtual seconds emulated per real second.  Higher = faster runs,
  /// coarser emulation.
  double time_scale = 1000.0;
  int loader_threads = 4;
  int lookahead = 32;
  core::RouterOptions router;
  /// Verify every delivered sample against its deterministic content
  /// (integration tests).
  bool verify_content = false;
  /// Skip the compute sleep entirely (pure I/O benchmark).
  bool skip_compute = false;

  [[nodiscard]] std::uint64_t global_batch() const noexcept {
    return per_worker_batch * static_cast<std::uint64_t>(system.num_workers);
  }
};

struct RuntimeResult {
  double total_s = 0.0;                 ///< virtual wall time of the run
  std::vector<double> epoch_s;          ///< virtual time per epoch
  std::vector<double> batch_s_epoch0;   ///< per-iteration virtual durations
  std::vector<double> batch_s_rest;
  core::JobStats stats;                 ///< summed over workers
  std::uint64_t verified_samples = 0;
  std::uint64_t verification_failures = 0;

  [[nodiscard]] util::Summary batch_summary_rest() const {
    return util::summarize(batch_s_rest);
  }
};

/// Runs one complete training job and returns aggregate timings.
[[nodiscard]] RuntimeResult run_training(const data::Dataset& dataset,
                                         const RuntimeConfig& config);

}  // namespace nopfs::runtime
