#pragma once
// Runtime harness: executes a real multi-worker training run.
//
// Two launch modes share one per-rank training loop:
//
//   * run_training — N worker threads in this process, wired by SimTransport.
//   * run_distributed — ONE rank of an N-process job, wired by any
//     net::Transport (SocketTransport in production; examples/nopfs_worker.cpp
//     is the per-rank binary).  Collectives replace the std::barrier, and the
//     final stats aggregation is an allgather, so every rank returns the same
//     job-wide totals.
//
// Each rank drives a Loader (NoPFS or a baseline) against the emulated
// storage substrate: devices are rate-limited token buckets, the PFS is
// contention-aware, remote fetches ride the transport.  Compute is emulated
// by sleeping s_k/c (scaled); each iteration ends with a barrier, the
// gradient allreduce of data-parallel training.  All reported times are
// virtual seconds (real seconds x time_scale).
//
// This is the "real system" half of the evaluation: it exercises the
// production NoPFS code paths (staging buffer, prefetchers, metadata,
// transport), while src/sim scales the same performance model to thousands
// of workers analytically.

#include <cstdint>
#include <string>
#include <vector>

#include "baselines/loader.hpp"
#include "data/dataset.hpp"
#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "scenario/fault_plan.hpp"
#include "tiers/devices.hpp"
#include "tiers/params.hpp"
#include "util/stats.hpp"

namespace nopfs::runtime {

struct RuntimeConfig {
  tiers::SystemParams system;
  baselines::LoaderKind loader = baselines::LoaderKind::kNoPFS;
  std::uint64_t seed = 42;
  int num_epochs = 2;
  std::uint64_t per_worker_batch = 8;
  bool drop_last = true;
  /// Virtual seconds emulated per real second.  Higher = faster runs,
  /// coarser emulation.
  double time_scale = 1000.0;
  int loader_threads = 4;
  int lookahead = 32;
  core::RouterOptions router;
  /// Verify every delivered sample against its deterministic content
  /// (integration tests).
  bool verify_content = false;
  /// Skip the compute sleep entirely (pure I/O benchmark).
  bool skip_compute = false;
  /// Multi-process runs: price PFS contention against the JOB-WIDE reader
  /// count via net::SharedPfs and the transport's gamma protocol (DESIGN.md
  /// Sec. 7.4).  Opt out to restore the historical per-process pricing,
  /// where each process's t(gamma) curve sees only its own readers.
  bool shared_pfs_contention = true;
  /// Shape of the batched gamma gossip (multi-process runs): reader threads
  /// enqueue transitions, a dedicated gossip thread drains them as one net
  /// kPfsDelta per flush window.  The GossipConfig defaults coalesce a few
  /// virtual milliseconds of transitions per frame, which keeps worlds
  /// >> 10 ranks cheap; flush_virtual_s = 0 restores the per-transition
  /// sends (tests pin that both shapes produce identical digests and gamma
  /// envelopes).
  net::GossipConfig pfs_gossip;
  /// Weight every rank's gamma contribution by its reader-thread fan-out
  /// (StagingPrefetcher + ClassPrefetcher threads for the NoPFS loader,
  /// loader_threads otherwise) instead of counting each rank once, so
  /// t(gamma) is priced per reader thread.  Both launch modes apply the
  /// same weights, so the gamma-envelope parity between them is preserved.
  bool pfs_thread_weighted_gamma = false;
  /// Scripted fault injection (DESIGN.md Sec. 11): straggler skew stretches
  /// this rank's compute sleep, drop windows turn remote fetches into
  /// misses (net::FaultTransport), PFS bursts stretch PFS reads
  /// (runtime::FaultPfs).  Both launch modes apply the same plan; an empty
  /// plan injects nothing and adds no overhead.
  scenario::FaultPlan faults;

  [[nodiscard]] std::uint64_t global_batch() const noexcept {
    return per_worker_batch * static_cast<std::uint64_t>(system.num_workers);
  }
};

struct RuntimeResult {
  double total_s = 0.0;                 ///< virtual wall time of the run
  std::vector<double> epoch_s;          ///< virtual time per epoch
  std::vector<double> batch_s_epoch0;   ///< per-iteration virtual durations
  std::vector<double> batch_s_rest;
  core::JobStats stats;                 ///< summed over workers
  std::uint64_t verified_samples = 0;
  std::uint64_t verification_failures = 0;
  /// Order-sensitive FNV digest of every delivered sample id, combined
  /// across ranks by a rank-keyed mix: two runs delivered exactly the same
  /// samples in the same per-rank order iff their digests are equal.  This
  /// is the bit-for-bit contract between launch modes — a world-size-1
  /// SocketTransport run must reproduce the SimTransport digest.
  std::uint64_t delivered_digest = 0;
  /// Highest PFS gamma any rank's PFS device observed (job-wide max after
  /// the stats allgather).  The gamma-trace envelope: in shared-contention
  /// mode it matches the threaded harness; in per-process mode it cannot
  /// exceed 1, which is exactly the documented historical deviation.
  int pfs_peak_gamma = 0;
  /// Event-loop backend that carried this rank's transport ("epoll",
  /// "io_uring", or "none" for thread-worker/SimTransport runs).  Recorded
  /// so a result always states which loop produced it — digest and gamma
  /// must be identical across backends, throughput need not be.
  std::string reactor_backend = "none";

  [[nodiscard]] util::Summary batch_summary_rest() const {
    return util::summarize(batch_s_rest);
  }
};

/// Runs one complete training job with thread-workers and returns aggregate
/// timings.
[[nodiscard]] RuntimeResult run_training(const data::Dataset& dataset,
                                         const RuntimeConfig& config);

/// The reader-thread fan-out one rank contributes to a thread-weighted
/// gamma: the configured StagingPrefetcher + ClassPrefetcher threads for
/// the NoPFS loader, `loader_threads` for the baselines (>= 1 either way).
[[nodiscard]] int reader_threads_per_rank(const RuntimeConfig& config);

/// The emulated substrate one rank of a distributed job runs against: its
/// node devices plus the PFS view its reads are priced under.  Built by
/// make_rank_devices — the device-factory seam between launch modes.
struct RankDevices {
  tiers::WorkerDevices* worker = nullptr;  ///< this rank's node devices
  tiers::PfsDevice* pfs = nullptr;         ///< shared or per-process PFS view

  // Ownership; populated only for the parts the factory had to build.
  std::unique_ptr<tiers::Clock> clock;
  std::unique_ptr<tiers::EmulatedCluster> cluster;
  std::unique_ptr<tiers::PfsDevice> shared_pfs;
};

/// Builds the devices for the rank `transport` represents.  With
/// `config.shared_pfs_contention` and a world size above one the PFS view
/// is a net::SharedPfs wired to the transport's gamma protocol; otherwise
/// it is the cluster's per-process EmulatedPfs.  Pass `existing` to reuse
/// an already built cluster (it must outlive the result).
[[nodiscard]] RankDevices make_rank_devices(const RuntimeConfig& config,
                                            net::Transport& transport,
                                            tiers::EmulatedCluster* existing = nullptr);

/// Runs THIS rank of a multi-process training job over an already
/// established transport.  `config.system.num_workers` must equal the
/// transport's world size; every rank must use an identical config.
/// Timings are measured locally (the barriers keep ranks in lockstep);
/// stats, verification counts and the delivered digest are allgathered, so
/// every rank returns the same job-wide totals.  `cluster` supplies this
/// rank's emulated devices; pass nullptr to have the harness build one.
/// Either way the PFS view is chosen by make_rank_devices: job-wide shared
/// contention by default, per-process when opted out (DESIGN.md Sec. 7.4).
[[nodiscard]] RuntimeResult run_distributed(const data::Dataset& dataset,
                                            const RuntimeConfig& config,
                                            net::Transport& transport,
                                            tiers::EmulatedCluster* cluster = nullptr);

/// One rank's identity in a socket-launched world (examples/nopfs_worker).
struct WorkerEndpoint {
  int rank = 0;
  int world_size = 1;
  std::string rendezvous_host = "127.0.0.1";
  std::uint16_t rendezvous_port = 0;
  double timeout_s = 120.0;
  /// Event-loop backend for this rank's SocketTransport.  kAuto honors the
  /// NOPFS_REACTOR env var, probes the kernel, and falls back to epoll
  /// silently; an explicit kIoUring fails loudly where the ring is denied.
  net::ReactorBackend reactor = net::ReactorBackend::kAuto;
};

/// Convenience launcher: builds this rank's emulated devices, performs the
/// SocketTransport rendezvous (charging transfers to this rank's emulated
/// NIC), and runs the distributed job.
[[nodiscard]] RuntimeResult run_distributed(const data::Dataset& dataset,
                                            const RuntimeConfig& config,
                                            const WorkerEndpoint& endpoint);

}  // namespace nopfs::runtime
