#pragma once
// Runtime-side fault-injection hooks (DESIGN.md Sec. 11).
//
// The harness applies a scenario FaultPlan through three seams, one per
// fault class:
//   - stragglers: worker_loop stretches the compute sleep by the rank's
//     straggler factor (src/runtime/harness.cpp);
//   - dropped connections: net::FaultTransport turns remote fetches into
//     misses during scripted windows (src/net/fault_transport.hpp);
//   - slow-PFS bursts: FaultPfs (here) stretches PFS read time during
//     scripted windows.
// All three perturb timing only, never delivery order, so the
// delivered-sample digest stays bit-identical to the fault-free run.
//
// rebalance_after_leave is the elastic-leave half of the membership story:
// an incremental cache-plan rebalance that touches only the departed
// rank's holdings (the gamma side of a leave is already handled by the
// transport's dead-rank release).

#include <chrono>
#include <cstddef>
#include <thread>

#include "core/cache_policy.hpp"
#include "scenario/fault_plan.hpp"
#include "tiers/device_iface.hpp"

namespace nopfs::runtime {

/// PfsDevice decorator applying a plan's slow-PFS bursts: a read issued
/// while a burst window is active takes `derate`x as long.  The underlying
/// device still prices t(gamma) and accounts gamma/peak exactly as before
/// — the burst stretches the caller's wall time after the priced read —
/// so the gamma-envelope pins are unaffected.
class FaultPfs final : public tiers::PfsDevice {
 public:
  /// `inner` must outlive the decorator.  Burst windows are in virtual
  /// seconds; `time_scale` converts the wall clock (which starts at
  /// construction) to virtual time.
  FaultPfs(tiers::PfsDevice& inner, scenario::FaultPlan plan, double time_scale)
      : inner_(inner),
        plan_(std::move(plan)),
        time_scale_(time_scale),
        start_(std::chrono::steady_clock::now()) {}

  void read(int worker, double mb) override {
    const double derate = plan_.pfs_derate(virtual_now());
    const auto t0 = std::chrono::steady_clock::now();
    inner_.read(worker, mb);
    if (derate > 1.0) {
      const std::chrono::duration<double> took =
          std::chrono::steady_clock::now() - t0;
      std::this_thread::sleep_for(took * (derate - 1.0));
    }
  }

  void set_reader_threads(int worker, int threads) override {
    inner_.set_reader_threads(worker, threads);
  }
  [[nodiscard]] int active_clients() const override {
    return inner_.active_clients();
  }
  [[nodiscard]] int peak_clients() const override {
    return inner_.peak_clients();
  }
  [[nodiscard]] double total_read_mb() const override {
    return inner_.total_read_mb();
  }

 private:
  [[nodiscard]] double virtual_now() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(elapsed).count() * time_scale_;
  }

  tiers::PfsDevice& inner_;
  const scenario::FaultPlan plan_;
  const double time_scale_;
  const std::chrono::steady_clock::time_point start_;
};

/// What an elastic leave did to the cluster cache map.
struct RebalanceReport {
  std::size_t remapped_samples = 0;  ///< still cached by a surviving rank
  std::size_t pfs_only_samples = 0;  ///< now reachable only via the PFS
};

/// Incremental cache-plan rebalance after `dead_rank` leaves: drops only
/// that rank's holdings from the location index (survivor entries are
/// byte-identical, so their prefetch plans need no recomputation) and
/// reports how many samples were remapped to a surviving holder vs.
/// degraded to the PFS fallback.  Delivery completeness holds either way:
/// a fetch that misses every remaining holder falls back to the PFS.
RebalanceReport rebalance_after_leave(core::LocationIndex& index, int dead_rank);

}  // namespace nopfs::runtime
