#pragma once
// Distributed sweep-job launcher: the sweep-service entry point alongside
// run_distributed (DESIGN.md Sec. 10).  Performs the SocketTransport
// rendezvous for THIS rank and routes the grid through
// sim::run_sweep_service; with world_size <= 1 no socket is opened and the
// sweep stays in-process (checkpoint/resume still works).  The NIC is left
// untimed: a sweep moves cell metadata and result structs, not emulated
// sample bytes, so nothing should be priced against the emulated fabric.

#include <vector>

#include "runtime/harness.hpp"
#include "sim/sweep_service.hpp"

namespace nopfs::runtime {

/// Runs this rank's share of the sweep.  Every rank of the world must call
/// it with the SAME `points` (the grid is replicated, only the work is
/// sharded); rank 0 returns the full ordered results, others an empty
/// grid.  Throws on rendezvous failure or a mid-sweep loss of rank 0.
[[nodiscard]] sim::SweepServiceReport run_sweep_job(
    const std::vector<sim::SweepPoint>& points, const WorkerEndpoint& endpoint,
    const sim::SweepServiceOptions& options = {});

}  // namespace nopfs::runtime
