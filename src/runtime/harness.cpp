#include "runtime/harness.hpp"

#include <barrier>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/access_stream.hpp"
#include "core/sample_source.hpp"
#include "data/materialize.hpp"
#include "net/sim_transport.hpp"
#include "tiers/clock.hpp"
#include "tiers/devices.hpp"
#include "util/log.hpp"

namespace nopfs::runtime {

namespace {
double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RuntimeResult run_training(const data::Dataset& dataset, const RuntimeConfig& config) {
  const int n = config.system.num_workers;
  if (n <= 0) throw std::invalid_argument("run_training: num_workers must be positive");

  // Shared substrate.
  tiers::RealClock clock;
  tiers::EmulatedCluster cluster(clock, config.system, config.time_scale);
  auto transports = net::make_sim_transports(n, &cluster);
  core::SyntheticPfsSource source(dataset, &cluster.pfs());

  // Stream geometry (identical for every loader kind).
  core::StreamConfig stream_config;
  stream_config.seed = config.seed;
  stream_config.num_samples = dataset.num_samples();
  stream_config.num_workers = n;
  stream_config.num_epochs = config.num_epochs;
  stream_config.global_batch = config.global_batch();
  stream_config.drop_last = config.drop_last;
  stream_config.validate();
  if (!config.drop_last) {
    throw std::invalid_argument(
        "run_training: the lockstep harness requires drop_last");
  }
  const std::uint64_t iters = stream_config.iterations_per_epoch();
  const std::uint64_t local_b = stream_config.local_batch();

  RuntimeResult result;
  std::vector<core::JobStats> worker_stats(static_cast<std::size_t>(n));
  std::vector<std::uint64_t> verified(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> failures(static_cast<std::size_t>(n), 0);
  std::vector<std::string> errors(static_cast<std::size_t>(n));

  std::barrier sync(n);
  // Timing starts after every loader is ready (post-start barrier): loader
  // setup is real CPU work that must not be multiplied by time_scale.
  double run_start = 0.0;
  double epoch_mark = 0.0;
  double batch_mark = 0.0;

  auto worker_main = [&](int rank) {
    try {
      baselines::LoaderContext ctx;
      ctx.dataset = &dataset;
      ctx.system = &config.system;
      ctx.rank = rank;
      ctx.source = &source;
      ctx.transport = transports[static_cast<std::size_t>(rank)].get();
      ctx.devices = &cluster.worker(rank);
      ctx.seed = config.seed;
      ctx.num_epochs = config.num_epochs;
      ctx.global_batch = config.global_batch();
      ctx.drop_last = config.drop_last;
      ctx.time_scale = config.time_scale;
      ctx.threads = config.loader_threads;
      ctx.lookahead = config.lookahead;
      ctx.router = config.router;

      auto loader = baselines::make_loader(config.loader, ctx);
      loader->start();
      sync.arrive_and_wait();  // everyone ready
      if (rank == 0) {
        run_start = now_s();
        epoch_mark = run_start;
        batch_mark = run_start;
      }
      sync.arrive_and_wait();  // clock set; start together

      const double compute_mbps = config.system.node.compute_mbps;
      for (int e = 0; e < config.num_epochs; ++e) {
        for (std::uint64_t h = 0; h < iters; ++h) {
          for (std::uint64_t l = 0; l < local_b; ++l) {
            auto sample = loader->next();
            if (!sample.has_value()) {
              throw std::runtime_error(loader->name() +
                                       ": stream exhausted prematurely");
            }
            if (config.verify_content) {
              if (data::verify_sample_content(sample->id(), sample->view())) {
                ++verified[static_cast<std::size_t>(rank)];
              } else {
                ++failures[static_cast<std::size_t>(rank)];
              }
            }
            if (!config.skip_compute && compute_mbps > 0.0) {
              const double virtual_s =
                  dataset.size_mb(sample->id()) / compute_mbps;
              std::this_thread::sleep_for(std::chrono::duration<double>(
                  virtual_s / config.time_scale));
            }
          }
          // The allreduce: every worker waits for the slowest.
          sync.arrive_and_wait();
          if (rank == 0) {
            const double t = now_s();
            const double batch_virtual = (t - batch_mark) * config.time_scale;
            if (e == 0) {
              result.batch_s_epoch0.push_back(batch_virtual);
            } else {
              result.batch_s_rest.push_back(batch_virtual);
            }
            batch_mark = t;
          }
          sync.arrive_and_wait();  // rank 0 finished recording
        }
        if (rank == 0) {
          const double t = now_s();
          result.epoch_s.push_back((t - epoch_mark) * config.time_scale);
          epoch_mark = t;
        }
      }
      worker_stats[static_cast<std::size_t>(rank)] = loader->stats();
    } catch (const std::exception& ex) {
      errors[static_cast<std::size_t>(rank)] = ex.what();
      util::log_error("worker ", rank, " failed: ", ex.what());
      // Release peers stuck on the barrier by aborting the run.
      std::terminate();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) workers.emplace_back(worker_main, rank);
  for (auto& worker : workers) worker.join();

  result.total_s = (now_s() - run_start) * config.time_scale;
  // total_s must not include post-run teardown skew; the epoch times are
  // the precise measurement, so reconcile to their sum.
  double epoch_total = 0.0;
  for (const double e : result.epoch_s) epoch_total += e;
  if (epoch_total > 0.0) result.total_s = epoch_total;
  for (int rank = 0; rank < n; ++rank) {
    const auto& s = worker_stats[static_cast<std::size_t>(rank)];
    result.stats.local_fetches += s.local_fetches;
    result.stats.remote_fetches += s.remote_fetches;
    result.stats.pfs_fetches += s.pfs_fetches;
    result.stats.remote_misses += s.remote_misses;
    result.stats.local_mb += s.local_mb;
    result.stats.remote_mb += s.remote_mb;
    result.stats.pfs_mb += s.pfs_mb;
    result.stats.stall_s += s.stall_s;
    result.stats.cached_samples += s.cached_samples;
    result.verified_samples += verified[static_cast<std::size_t>(rank)];
    result.verification_failures += failures[static_cast<std::size_t>(rank)];
  }
  return result;
}

}  // namespace nopfs::runtime
