#include "runtime/harness.hpp"

#include <barrier>
#include <chrono>
#include <functional>
#include <optional>
#include <stdexcept>
#include <thread>

#include "core/access_stream.hpp"
#include "core/sample_source.hpp"
#include "data/materialize.hpp"
#include "net/fault_transport.hpp"
#include "net/shared_pfs.hpp"
#include "net/sim_transport.hpp"
#include "net/socket_transport.hpp"
#include "net/wire.hpp"
#include "runtime/fault_injection.hpp"
#include "tiers/clock.hpp"
#include "tiers/devices.hpp"
#include "util/log.hpp"

namespace nopfs::runtime {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// What one rank produces beyond timings: everything that must be
/// aggregated job-wide (and is deterministic, unlike wall-clock).
struct WorkerOutcome {
  core::JobStats stats;
  std::uint64_t verified = 0;
  std::uint64_t failures = 0;
  std::uint64_t digest = 0;
  int pfs_peak_gamma = 0;
};

// FNV-1a over the bytes of each delivered sample id, in delivery order.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void digest_push(std::uint64_t& digest, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    digest = (digest ^ ((value >> shift) & 0xff)) * kFnvPrime;
  }
}

/// Rank-keyed finalizer (splitmix64): per-rank digests are combined by XOR,
/// so the combination is world-order independent but still rank-sensitive.
std::uint64_t digest_of_rank(int rank, std::uint64_t digest) {
  std::uint64_t z =
      digest + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(rank) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

net::Bytes pack_outcome(const WorkerOutcome& outcome) {
  net::Bytes out;
  net::wire::put_u64(out, outcome.stats.local_fetches);
  net::wire::put_u64(out, outcome.stats.remote_fetches);
  net::wire::put_u64(out, outcome.stats.pfs_fetches);
  net::wire::put_u64(out, outcome.stats.remote_misses);
  net::wire::put_u64(out, outcome.stats.cached_samples);
  net::wire::put_f64(out, outcome.stats.local_mb);
  net::wire::put_f64(out, outcome.stats.remote_mb);
  net::wire::put_f64(out, outcome.stats.pfs_mb);
  net::wire::put_f64(out, outcome.stats.stall_s);
  net::wire::put_u64(out, outcome.verified);
  net::wire::put_u64(out, outcome.failures);
  net::wire::put_u64(out, outcome.digest);
  net::wire::put_u32(out, static_cast<std::uint32_t>(outcome.pfs_peak_gamma));
  return out;
}

WorkerOutcome unpack_outcome(const net::Bytes& bytes) {
  net::wire::Reader reader(bytes);
  WorkerOutcome outcome;
  outcome.stats.local_fetches = reader.u64();
  outcome.stats.remote_fetches = reader.u64();
  outcome.stats.pfs_fetches = reader.u64();
  outcome.stats.remote_misses = reader.u64();
  outcome.stats.cached_samples = reader.u64();
  outcome.stats.local_mb = reader.f64();
  outcome.stats.remote_mb = reader.f64();
  outcome.stats.pfs_mb = reader.f64();
  outcome.stats.stall_s = reader.f64();
  outcome.verified = reader.u64();
  outcome.failures = reader.u64();
  outcome.digest = reader.u64();
  outcome.pfs_peak_gamma = static_cast<int>(reader.u32());
  return outcome;
}

void accumulate(RuntimeResult& result, int rank, const WorkerOutcome& outcome) {
  result.stats.local_fetches += outcome.stats.local_fetches;
  result.stats.remote_fetches += outcome.stats.remote_fetches;
  result.stats.pfs_fetches += outcome.stats.pfs_fetches;
  result.stats.remote_misses += outcome.stats.remote_misses;
  result.stats.local_mb += outcome.stats.local_mb;
  result.stats.remote_mb += outcome.stats.remote_mb;
  result.stats.pfs_mb += outcome.stats.pfs_mb;
  result.stats.stall_s += outcome.stats.stall_s;
  result.stats.cached_samples += outcome.stats.cached_samples;
  result.verified_samples += outcome.verified;
  result.verification_failures += outcome.failures;
  result.delivered_digest ^= digest_of_rank(rank, outcome.digest);
  if (outcome.pfs_peak_gamma > result.pfs_peak_gamma) {
    result.pfs_peak_gamma = outcome.pfs_peak_gamma;
  }
}

/// Wall-clock marks the recording rank advances as the run progresses.
struct TimingMarks {
  double run_start = 0.0;
  double epoch_mark = 0.0;
  double batch_mark = 0.0;
};

/// Validated stream geometry shared by both launch modes.
core::StreamConfig make_stream_config(const data::Dataset& dataset,
                                      const RuntimeConfig& config) {
  core::StreamConfig stream_config;
  stream_config.seed = config.seed;
  stream_config.num_samples = dataset.num_samples();
  stream_config.num_workers = config.system.num_workers;
  stream_config.num_epochs = config.num_epochs;
  stream_config.global_batch = config.global_batch();
  stream_config.drop_last = config.drop_last;
  stream_config.validate();
  if (!config.drop_last) {
    throw std::invalid_argument("runtime harness: lockstep requires drop_last");
  }
  return stream_config;
}

/// The per-rank training loop, identical across launch modes.  `sync` is
/// the per-iteration allreduce stand-in (std::barrier or Transport
/// barrier); when `record` is set this rank writes timings into `result`.
/// `rank` selects the fault plan's straggler skew: a straggler's compute
/// sleep is stretched by its factor, so it delivers the same samples in
/// the same order, just slower — the digest is unchanged by design.
void worker_loop(const data::Dataset& dataset, const RuntimeConfig& config,
                 int rank, baselines::Loader& loader, std::uint64_t iters,
                 std::uint64_t local_batch, const std::function<void()>& sync,
                 bool record, TimingMarks& marks, RuntimeResult& result,
                 WorkerOutcome& outcome) {
  const double compute_mbps = config.system.node.compute_mbps;
  const double straggler = config.faults.straggler_factor(rank);
  outcome.digest = kFnvOffset;
  for (int e = 0; e < config.num_epochs; ++e) {
    for (std::uint64_t h = 0; h < iters; ++h) {
      for (std::uint64_t l = 0; l < local_batch; ++l) {
        auto sample = loader.next();
        if (!sample.has_value()) {
          throw std::runtime_error(loader.name() + ": stream exhausted prematurely");
        }
        digest_push(outcome.digest, sample->id());
        if (config.verify_content) {
          if (data::verify_sample_content(sample->id(), sample->view())) {
            ++outcome.verified;
          } else {
            ++outcome.failures;
          }
        }
        if (!config.skip_compute && compute_mbps > 0.0) {
          const double virtual_s =
              dataset.size_mb(sample->id()) / compute_mbps * straggler;
          std::this_thread::sleep_for(
              std::chrono::duration<double>(virtual_s / config.time_scale));
        }
      }
      // The allreduce: every worker waits for the slowest.
      sync();
      if (record) {
        const double t = now_s();
        const double batch_virtual = (t - marks.batch_mark) * config.time_scale;
        if (e == 0) {
          result.batch_s_epoch0.push_back(batch_virtual);
        } else {
          result.batch_s_rest.push_back(batch_virtual);
        }
        marks.batch_mark = t;
      }
      sync();  // recording done; next iteration may start
    }
    if (record) {
      const double t = now_s();
      result.epoch_s.push_back((t - marks.epoch_mark) * config.time_scale);
      marks.epoch_mark = t;
    }
  }
  outcome.stats = loader.stats();
}

/// total_s must not include post-run teardown skew; the epoch times are
/// the precise measurement, so reconcile to their sum when available.
void reconcile_total(RuntimeResult& result, double run_start, double time_scale) {
  result.total_s = (now_s() - run_start) * time_scale;
  double epoch_total = 0.0;
  for (const double e : result.epoch_s) epoch_total += e;
  if (epoch_total > 0.0) result.total_s = epoch_total;
}

baselines::LoaderContext make_loader_context(const data::Dataset& dataset,
                                             const RuntimeConfig& config, int rank,
                                             core::SampleSource& source,
                                             net::Transport* transport,
                                             tiers::WorkerDevices* devices) {
  baselines::LoaderContext ctx;
  ctx.dataset = &dataset;
  ctx.system = &config.system;
  ctx.rank = rank;
  ctx.source = &source;
  ctx.transport = transport;
  ctx.devices = devices;
  ctx.seed = config.seed;
  ctx.num_epochs = config.num_epochs;
  ctx.global_batch = config.global_batch();
  ctx.drop_last = config.drop_last;
  ctx.time_scale = config.time_scale;
  ctx.threads = config.loader_threads;
  ctx.lookahead = config.lookahead;
  ctx.router = config.router;
  return ctx;
}

}  // namespace

int reader_threads_per_rank(const RuntimeConfig& config) {
  int threads = config.loader_threads;
  if (config.loader == baselines::LoaderKind::kNoPFS) {
    threads = config.system.node.staging.prefetch_threads;
    for (const auto& sc : config.system.node.classes) threads += sc.prefetch_threads;
  }
  return threads > 1 ? threads : 1;
}

RuntimeResult run_training(const data::Dataset& dataset, const RuntimeConfig& config) {
  const int n = config.system.num_workers;
  if (n <= 0) throw std::invalid_argument("run_training: num_workers must be positive");

  // Shared substrate.
  tiers::RealClock clock;
  tiers::EmulatedCluster cluster(clock, config.system, config.time_scale);
  if (config.pfs_thread_weighted_gamma) {
    const int weight = reader_threads_per_rank(config);
    for (int rank = 0; rank < n; ++rank) {
      cluster.pfs().set_reader_threads(rank, weight);
    }
  }
  auto transports = net::make_sim_transports(n, &cluster);
  // Fault seam: scripted slow-PFS bursts wrap the shared PFS (no-op and
  // unconstructed when the plan is empty).
  std::optional<FaultPfs> fault_pfs;
  tiers::PfsDevice* pfs = &cluster.pfs();
  if (!config.faults.pfs_bursts.empty()) {
    fault_pfs.emplace(cluster.pfs(), config.faults, config.time_scale);
    pfs = &*fault_pfs;
  }
  core::SyntheticPfsSource source(dataset, pfs);

  const core::StreamConfig stream_config = make_stream_config(dataset, config);
  const std::uint64_t iters = stream_config.iterations_per_epoch();
  const std::uint64_t local_b = stream_config.local_batch();

  RuntimeResult result;
  std::vector<WorkerOutcome> outcomes(static_cast<std::size_t>(n));

  std::barrier sync(n);
  // Timing starts after every loader is ready (post-start barrier): loader
  // setup is real CPU work that must not be multiplied by time_scale.
  TimingMarks marks;

  auto worker_main = [&](int rank) {
    try {
      // Fault seam: scripted connection drops wrap this rank's transport.
      net::Transport* transport = transports[static_cast<std::size_t>(rank)].get();
      std::optional<net::FaultTransport> fault_transport;
      if (!config.faults.drops.empty()) {
        fault_transport.emplace(*transport, config.faults, config.time_scale);
        transport = &*fault_transport;
      }
      auto ctx = make_loader_context(dataset, config, rank, source, transport,
                                     &cluster.worker(rank));
      auto loader = baselines::make_loader(config.loader, ctx);
      loader->start();
      sync.arrive_and_wait();  // everyone ready
      if (rank == 0) {
        marks.run_start = now_s();
        marks.epoch_mark = marks.run_start;
        marks.batch_mark = marks.run_start;
      }
      sync.arrive_and_wait();  // clock set; start together

      worker_loop(dataset, config, rank, *loader, iters, local_b,
                  [&sync] { sync.arrive_and_wait(); }, rank == 0, marks, result,
                  outcomes[static_cast<std::size_t>(rank)]);
    } catch (const std::exception& ex) {
      util::log_error("worker ", rank, " failed: ", ex.what());
      // Release peers stuck on the barrier by aborting the run.
      std::terminate();
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(n));
  for (int rank = 0; rank < n; ++rank) workers.emplace_back(worker_main, rank);
  for (auto& worker : workers) worker.join();

  reconcile_total(result, marks.run_start, config.time_scale);
  for (int rank = 0; rank < n; ++rank) {
    accumulate(result, rank, outcomes[static_cast<std::size_t>(rank)]);
  }
  result.pfs_peak_gamma = cluster.pfs().peak_clients();
  return result;
}

RankDevices make_rank_devices(const RuntimeConfig& config, net::Transport& transport,
                              tiers::EmulatedCluster* existing) {
  RankDevices devices;
  if (existing == nullptr) {
    auto clock = std::make_unique<tiers::RealClock>();
    devices.cluster = std::make_unique<tiers::EmulatedCluster>(
        *clock, config.system, config.time_scale);
    devices.clock = std::move(clock);
    existing = devices.cluster.get();
  }
  devices.worker = &existing->worker(transport.rank());
  if (transport.world_size() > 1 && config.shared_pfs_contention) {
    devices.shared_pfs = std::make_unique<net::SharedPfs>(
        existing->clock(), config.system.pfs, config.time_scale, transport);
    devices.pfs = devices.shared_pfs.get();
  } else {
    devices.pfs = &existing->pfs();
  }
  if (config.pfs_thread_weighted_gamma) {
    devices.pfs->set_reader_threads(transport.rank(),
                                    reader_threads_per_rank(config));
  }
  return devices;
}

RuntimeResult run_distributed(const data::Dataset& dataset, const RuntimeConfig& config,
                              net::Transport& transport,
                              tiers::EmulatedCluster* cluster) {
  const int rank = transport.rank();
  const int n = transport.world_size();
  if (config.system.num_workers != n) {
    throw std::invalid_argument(
        "run_distributed: config.system.num_workers must equal the transport's "
        "world size");
  }

  // Per-rank substrate via the device-factory seam: tiers and NIC are
  // always this process's own, the PFS view is shared-contention by default
  // (net::SharedPfs over the transport's gamma protocol) or per-process
  // when opted out (DESIGN.md Sec. 7.4).
  RankDevices devices = make_rank_devices(config, transport, cluster);
  // Fault seams, mirroring run_training: PFS bursts wrap this rank's PFS
  // view, drop windows wrap the transport (both no-ops when unscripted).
  std::optional<FaultPfs> fault_pfs;
  if (!config.faults.pfs_bursts.empty()) {
    fault_pfs.emplace(*devices.pfs, config.faults, config.time_scale);
    devices.pfs = &*fault_pfs;
  }
  net::Transport* loader_transport = &transport;
  std::optional<net::FaultTransport> fault_transport;
  if (!config.faults.drops.empty()) {
    fault_transport.emplace(transport, config.faults, config.time_scale);
    loader_transport = &*fault_transport;
  }
  core::SyntheticPfsSource source(dataset, devices.pfs);

  const core::StreamConfig stream_config = make_stream_config(dataset, config);
  const std::uint64_t iters = stream_config.iterations_per_epoch();
  const std::uint64_t local_b = stream_config.local_batch();

  RuntimeResult result;
  result.reactor_backend = transport.reactor_backend();
  WorkerOutcome outcome;
  auto ctx = make_loader_context(dataset, config, rank, source, loader_transport,
                                 devices.worker);
  auto loader = baselines::make_loader(config.loader, ctx);
  loader->start();
  transport.barrier();  // everyone ready
  TimingMarks marks;
  marks.run_start = now_s();
  marks.epoch_mark = marks.run_start;
  marks.batch_mark = marks.run_start;
  transport.barrier();  // clocks set; start together

  // Every rank records its own timings: the barriers keep them in lockstep,
  // and each process must return a complete RuntimeResult.
  worker_loop(dataset, config, rank, *loader, iters, local_b,
              [&transport] { transport.barrier(); }, /*record=*/true, marks, result,
              outcome);
  reconcile_total(result, marks.run_start, config.time_scale);
  outcome.pfs_peak_gamma = devices.pfs->peak_clients();

  // Job-wide aggregation: allgather each rank's outcome so every process
  // reports identical totals (and the digest is world-combined).
  const auto all = transport.allgather(pack_outcome(outcome));
  for (int r = 0; r < n; ++r) {
    accumulate(result, r, unpack_outcome(all[static_cast<std::size_t>(r)]));
  }
  return result;
}

RuntimeResult run_distributed(const data::Dataset& dataset, const RuntimeConfig& config,
                              const WorkerEndpoint& endpoint) {
  if (config.system.num_workers != endpoint.world_size) {
    throw std::invalid_argument(
        "run_distributed: config.system.num_workers must equal world_size");
  }
  tiers::RealClock clock;
  tiers::EmulatedCluster cluster(clock, config.system, config.time_scale);
  net::SocketOptions options;
  options.rank = endpoint.rank;
  options.world_size = endpoint.world_size;
  options.rendezvous_host = endpoint.rendezvous_host;
  options.rendezvous_port = endpoint.rendezvous_port;
  options.timeout_s = endpoint.timeout_s;
  options.nic = cluster.worker(endpoint.rank).nic.get();
  options.gossip = config.pfs_gossip;
  options.time_scale = config.time_scale;
  options.reactor_backend = endpoint.reactor;
  net::SocketTransport transport(options);
  return run_distributed(dataset, config, transport, &cluster);
}

}  // namespace nopfs::runtime
