#pragma once
// Configuration and result types of the I/O performance simulator (Sec. 6).
//
// The simulator evaluates one (system, dataset, policy) combination and
// reports the paper's metrics: total execution time, per-epoch times,
// per-batch (iteration) time distributions, per-fetch-location time and
// count breakdowns, and trainer stall time.  It is *not* a cycle-accurate
// replay of training — following the paper, it applies the Sec. 4
// performance model with I/O overlapped to the greatest extent possible and
// bulk-synchronous iteration barriers (each mini-batch ends with an
// allreduce, so the slowest worker paces everyone).

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "tiers/params.hpp"
#include "util/stats.hpp"

namespace nopfs::sim {

class RunRecorder;  // sim/record.hpp — opt-in run-recording seam

struct SimConfig {
  tiers::SystemParams system;       ///< N workers, tiers, PFS, c, beta, b_c
  std::uint64_t seed = 0xC0FFEE;
  int num_epochs = 10;              ///< E
  std::uint64_t per_worker_batch = 32;  ///< b_i; B = b_i * N
  bool drop_last = true;
  double allreduce_s = 0.0;         ///< optional per-iteration sync cost
  /// Charge compute at the dataset's mean sample size (true, default):
  /// after decoding/augmentation every sample has the same tensor shape, so
  /// training FLOPs do not follow raw file sizes.  False: compute s_k/c.
  bool uniform_compute = true;
  /// Cap on retained per-iteration times (reservoir subsampling beyond).
  std::size_t max_batch_records = 200'000;
  /// Route epoch permutations through the process-global EpochOrderCache so
  /// concurrent simulations of the same stream config share them.  The
  /// SweepRunner turns this on for its cells; it defaults to off so a plain
  /// library simulate() call stays allocation-transient instead of pinning
  /// permutations in process-global memory for the process lifetime.
  /// Value-transparent either way: results are bit-identical.
  bool share_epoch_orders = false;
  /// Test/debug knob: route every decision through the per-sample
  /// Policy::on_access() path even for batchable policies, bypassing
  /// on_access_batch().  Results must be bit-identical either way (the
  /// parity contract; enforced by tests/test_policy_batch.cpp).
  bool force_per_sample_dispatch = false;
  /// Opt-in observation seam (sim/record.hpp): when non-null the engine
  /// reports every priced access and barrier to the recorder, e.g. to build
  /// the critical-path dependence graph (src/critpath/).  Observation only:
  /// results are bit-identical with or without a recorder, and when null the
  /// cost is a pointer test per hook site.  Not owned; must outlive the
  /// simulate() call; not shared between concurrent runs.
  RunRecorder* recorder = nullptr;

  [[nodiscard]] std::uint64_t global_batch() const noexcept {
    return per_worker_batch * static_cast<std::uint64_t>(system.num_workers);
  }
};

/// Where the simulator sourced an access from (Fig. 8 stacked bars:
/// staging-buffer time is the write/preprocess component, the rest are
/// fetch components attributed to their location).
enum class Location : int { kStagingWrite = 0, kLocal, kRemote, kPfs, kCount };

[[nodiscard]] const char* location_name(Location loc) noexcept;

struct SimResult {
  std::string policy;
  std::string dataset;
  bool supported = true;          ///< false: policy cannot run this workload
  std::string unsupported_reason;

  double total_s = 0.0;           ///< execution time (slowest worker, barriers)
  double prestage_s = 0.0;        ///< upfront staging phase (included in total)
  double stall_s = 0.0;           ///< trainer wait beyond compute (max worker)
  double compute_s = 0.0;         ///< pure compute time of the critical path

  std::vector<double> epoch_s;    ///< wall time per epoch (incl. epoch 0)

  /// Iteration durations, epoch 0 and epochs >= 1 separately (the paper
  /// excludes epoch 0 from its violin plots and shows it in Fig. 11).
  std::vector<double> batch_s_epoch0;
  std::vector<double> batch_s_rest;

  /// Seconds of prefetch-pipeline work by location (summed over workers).
  double location_s[static_cast<int>(Location::kCount)] = {0, 0, 0, 0};
  /// Fetch counts by location (staging-write slot counts every access).
  std::uint64_t location_count[static_cast<int>(Location::kCount)] = {0, 0, 0, 0};
  double location_mb[static_cast<int>(Location::kCount)] = {0, 0, 0, 0};

  /// Fraction of the dataset actually read at least once (DeepIO
  /// opportunistic and sharding fall below 1 — the paper flags them).
  double accessed_fraction = 1.0;

  [[nodiscard]] util::Summary batch_summary_rest() const {
    return util::summarize(batch_s_rest);
  }
  [[nodiscard]] util::Summary batch_summary_epoch0() const {
    return util::summarize(batch_s_epoch0);
  }
  /// Share of fetch count from a location over all staged samples.
  [[nodiscard]] double count_share(Location loc) const;
};

}  // namespace nopfs::sim
