#pragma once
// The simulator engine: applies the Sec. 4 performance model to a policy's
// per-access decisions in bulk-synchronous lockstep.
//
// Per iteration h (all workers in step, as data-parallel training is):
//   1. every worker's local batch is resolved to (sample, decision) pairs —
//      policies see the previous iteration's PFS client count gamma as their
//      live estimate;
//   2. the actual gamma of this iteration (workers with >= 1 PFS access) is
//      counted, and the model prices each access:
//         read = fetch(source, gamma) + write(preprocess/staging store)
//      feeding the prefetch-pipeline recurrence
//         avail_f = cum_read / p0,  t_f = max(avail_f, t_{f-1} + s_{f-1}/c);
//   3. a barrier (the gradient allreduce) aligns workers to the slowest.
//
// Naive (unoverlapped) policies instead serialize read into the consume
// path; the Perfect policy prices all reads at zero.

#include "sim/policy.hpp"
#include "sim/sim_config.hpp"

namespace nopfs::sim {

/// Runs one simulation.  The dataset must match the config's system scale
/// (any dataset works; presets in data/dataset.hpp).
[[nodiscard]] SimResult simulate(const SimConfig& config, const data::Dataset& dataset,
                                 Policy& policy);

}  // namespace nopfs::sim
