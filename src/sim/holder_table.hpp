#pragma once
// HolderTable: compact cluster-wide cache map for the simulator.
//
// For each sample it stores up to K holder entries (worker, storage class,
// cached flag) in a flat array — K = min(E, kMaxHolders) bounds the number
// of distinct workers that can plan to cache a sample, because a sample is
// accessed exactly once per epoch and policies only cache samples a worker
// actually accesses.  The flat layout keeps multi-ten-million-sample
// simulations (ImageNet-22k) in a few hundred MB.
//
// Entry encoding (uint32): owner (24 bits) | class (4 bits) | cached (1).

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace nopfs::sim {

class HolderTable {
 public:
  static constexpr int kMaxHolders = 16;
  static constexpr std::uint32_t kEmpty = 0xffffffffu;

  HolderTable() = default;

  /// `num_samples` = F; `holders_per_sample` = K (clamped to kMaxHolders).
  HolderTable(std::uint64_t num_samples, int holders_per_sample);

  /// Registers that `worker` plans to cache `sample` in `storage_class`.
  /// Returns false if the sample's holder slots are full (rare; the entry
  /// is dropped, which is a pessimization, never an error).
  bool add(data::SampleId sample, int worker, int storage_class);

  /// Marks `worker`'s copy of `sample` as materialized.
  void mark_cached(data::SampleId sample, int worker);

  /// Marks every registered holder entry cached (preloading policies).
  void mark_all_cached();

  /// Marks every holder of `sample` cached (NoPFS first-materialization:
  /// all planners' prefetchers obtain the sample once anyone has paid the
  /// PFS read — the paper's "read from the PFS only once per run").
  void mark_sample_cached_all(data::SampleId sample);

  /// True if any worker registered a (planned) copy of `sample`.
  [[nodiscard]] bool has_any(data::SampleId sample) const;

  /// True if any worker holds a *cached* copy of `sample`.
  [[nodiscard]] bool any_cached(data::SampleId sample) const;

  /// First registered holder of `sample`, or -1.
  [[nodiscard]] int first_owner(data::SampleId sample) const;

  /// Storage class of `worker`'s *cached* copy, or -1.
  [[nodiscard]] int local_cached_class(data::SampleId sample, int worker) const;

  /// Storage class of `worker`'s *planned* copy (cached or not), or -1.
  [[nodiscard]] int planned_class(data::SampleId sample, int worker) const;

  /// Fastest cached copy on any worker != `self`: returns class or -1;
  /// `peer` receives the holder's rank.
  [[nodiscard]] int best_remote_class(data::SampleId sample, int self, int* peer) const;

  [[nodiscard]] std::uint64_t num_samples() const noexcept { return num_samples_; }
  [[nodiscard]] int slots_per_sample() const noexcept { return slots_; }

  /// Total registered entries (diagnostics).
  [[nodiscard]] std::uint64_t total_entries() const noexcept { return entries_; }
  /// Entries dropped because a sample's slots were full.
  [[nodiscard]] std::uint64_t dropped_entries() const noexcept { return dropped_; }

 private:
  static constexpr std::uint32_t kCachedBit = 1u;
  static constexpr int kClassShift = 1;
  static constexpr int kOwnerShift = 5;

  [[nodiscard]] static std::uint32_t encode(int worker, int cls, bool cached) {
    return (static_cast<std::uint32_t>(worker) << kOwnerShift) |
           (static_cast<std::uint32_t>(cls) << kClassShift) | (cached ? kCachedBit : 0);
  }
  [[nodiscard]] static int owner_of(std::uint32_t entry) {
    return static_cast<int>(entry >> kOwnerShift);
  }
  [[nodiscard]] static int class_of(std::uint32_t entry) {
    return static_cast<int>((entry >> kClassShift) & 0xfu);
  }
  [[nodiscard]] static bool cached(std::uint32_t entry) { return (entry & kCachedBit) != 0; }

  std::uint64_t num_samples_ = 0;
  int slots_ = 0;
  std::vector<std::uint32_t> table_;  ///< flat [sample * slots_ + k]
  std::uint64_t entries_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace nopfs::sim
