#pragma once
// Distributed work-stealing sweep service (DESIGN.md Sec. 10).
//
// Promotes the local SweepRunner to a job: rank 0 owns the cell grid and
// hands out contiguous cell ranges on demand (a pull model — idle workers
// ask, rank 0 grants sweep_grant_size() cells, shrinking toward the tail),
// workers evaluate their range on the local thread-pool runner and stream
// the SimResults back as wire::SweepResultBatch frames.  Rank 0 folds every
// batch into the grid slot of its flat cell index, so the output is in
// submission order — bit-identical to the serial SweepRunner no matter
// which rank computed a cell (the determinism contract, DESIGN.md Sec. 6.1,
// extended over the wire by the bit-exact SimResult codec).
//
// Rank 0 checkpoints sweep state (completed-cell bitmap + serialized
// results, net/wire encoding, temp-file + rename) every
// `checkpoint_every_cells` completions, so a killed sweep resumes from the
// last checkpoint without re-running any completed cell: restored cells are
// never granted again, and a resumed run's final results are bit-identical
// to an uninterrupted one.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/sweep.hpp"

namespace nopfs::net {
class Transport;
}

namespace nopfs::sim {

struct SweepServiceOptions {
  /// Per-rank cell concurrency (SweepRunner rules: 0 = auto).
  int num_threads = 0;
  /// Smallest grant; the tail degrades to min_grant-at-a-time stealing.
  std::size_t min_grant = 1;
  /// Checkpoint file (empty = no checkpointing).  Written atomically
  /// (temp + rename) by rank 0 only.
  std::string checkpoint_path;
  /// Completed cells between checkpoint writes (the cadence); a final
  /// write always happens at completion or interruption.
  std::uint64_t checkpoint_every_cells = 8;
  /// Resume from checkpoint_path if it exists (a missing file starts
  /// fresh; a file for a DIFFERENT grid throws).
  bool resume = false;
  /// Test/CI knob emulating a kill mid-sweep deterministically: once this
  /// many cells have completed IN THIS RUN (on top of any restored ones),
  /// rank 0 stops granting (workers are told done), checkpoints, and
  /// returns a partial report with stats.interrupted = true.  0 = off.
  std::uint64_t interrupt_after_cells = 0;
  /// Elastic membership (DESIGN.md Sec. 11).  When set, the world may gain
  /// and lose workers mid-sweep: the completion barrier is skipped on
  /// every rank (a dead worker cannot wedge it), a worker treats a lost
  /// rank 0 as "done" instead of an error, and after the grid drains rank
  /// 0 leaves a done-answering stub service installed so a straggling
  /// pull is answered instead of crashing the serve session.  The result
  /// digest is unchanged: rank 0 exits its grant loop only once every
  /// cell has been folded, faults or not.
  bool elastic = false;
  /// Elastic worlds: the largest worker count the scheduler must track
  /// (late joiners have ranks >= the transport world size).  0 = the
  /// transport world size.  Must match the transport's max_world.
  int max_workers = 0;
  /// Worker-side fault injection emulating a mid-sweep death
  /// deterministically: after this many granted-and-reported pulls, the
  /// worker takes ONE more grant and vanishes without evaluating or
  /// reporting it — the cells it held are recovered by rank 0's tail
  /// re-grants.  Requires elastic (a dead worker cannot barrier).  0 = off.
  int abandon_after_pulls = 0;
};

struct SweepServiceStats {
  std::uint64_t total_cells = 0;
  std::uint64_t restored_cells = 0;   ///< folded from the resume checkpoint
  std::uint64_t executed_cells = 0;   ///< evaluated on THIS rank
  std::uint64_t completed_cells = 0;  ///< rank 0: grid slots filled
  /// Rank 0: result cells that arrived for an already-completed slot
  /// (tail re-grants, duplicated frames).  Folded idempotently.
  std::uint64_t duplicate_cells = 0;
  bool interrupted = false;           ///< stopped by interrupt_after_cells
  double wall_s = 0.0;
};

struct SweepServiceReport {
  /// Rank 0: the full grid in submission order (partial after an
  /// interruption — un-completed cells are default-constructed).  Other
  /// ranks: empty.
  std::vector<SimResult> results;
  SweepServiceStats stats;
};

/// Rank 0's grid state: the completed-cell bitmap, the result slots, the
/// grant cursor and the outstanding-range list.  Internally locked — the
/// transport invokes on_pull/on_result from its reactor thread while rank
/// 0's own worker loop grants directly.  Exposed for tests; jobs use
/// run_sweep_service().
class SweepScheduler {
 public:
  struct Range {
    std::uint64_t first = 0;
    std::uint32_t count = 0;  ///< 0 = nothing to grant (done or interrupted)
  };

  SweepScheduler(std::uint64_t total_cells, std::uint64_t grid_signature,
                 SweepServiceOptions options, int workers);

  /// Loads options.checkpoint_path (missing file = fresh start) and folds
  /// its completed cells.  Throws if the file belongs to a different grid
  /// (signature or cell-count mismatch) or is malformed.  Returns the
  /// number of restored cells.
  std::uint64_t load_checkpoint();

  /// Grants the next range: a contiguous run of never-granted cells sized
  /// by sweep_grant_size(), skipping restored cells.  When every cell has
  /// been granted but some are still outstanding, re-grants the oldest
  /// outstanding range (speculative tail execution: results are pure
  /// functions of the cell, so duplicates fold idempotently) — the grid
  /// drains even if a worker dies holding a range.  count == 0 means stop
  /// pulling (done or interrupted).
  [[nodiscard]] Range grant();

  /// Folds `results` for cells [first, first + results.size()).  First
  /// write to a slot wins; later duplicates are counted and dropped.
  /// Writes a checkpoint when the cadence says so.
  void submit(std::uint64_t first, std::vector<SimResult> results);

  /// Per-sender monotone sequence guards (same defensive discipline as the
  /// PfsDelta protocol): return false — and the caller drops the frame —
  /// when `seq` does not advance `from`'s last seen sequence.  Pulls and
  /// result batches are independent per-sender streams, so each has its
  /// own guard.
  [[nodiscard]] bool advance_pull_seq(int from, std::uint32_t seq);
  [[nodiscard]] bool advance_result_seq(int from, std::uint32_t seq);

  [[nodiscard]] bool done() const;
  [[nodiscard]] bool interrupted() const;
  [[nodiscard]] std::uint64_t completed_cells() const;
  [[nodiscard]] std::uint64_t restored_cells() const noexcept {
    return restored_;
  }
  [[nodiscard]] std::uint64_t duplicate_cells() const;

  /// Final checkpoint write (no cadence check); no-op without a path.
  void checkpoint_now();

  /// Moves the result grid out (call once, after the sweep drained).
  [[nodiscard]] std::vector<SimResult> take_results();

 private:
  void checkpoint_locked();
  [[nodiscard]] bool interrupted_locked() const;

  mutable std::mutex mutex_;
  const std::uint64_t total_;
  const std::uint64_t signature_;
  const SweepServiceOptions options_;
  const int workers_;

  std::vector<SimResult> results_;
  std::vector<std::uint8_t> completed_;  ///< the completed-cell bitmap (0/1)
  std::uint64_t completed_count_ = 0;
  std::uint64_t restored_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t cursor_ = 0;  ///< next never-granted cell
  /// Granted-but-incomplete ranges, oldest first (tail re-grant order).
  std::vector<Range> outstanding_;
  std::uint64_t last_checkpoint_at_ = 0;
  std::vector<std::uint32_t> last_pull_seq_;    ///< per-rank seq guards
  std::vector<std::uint32_t> last_result_seq_;
};

/// FNV-1a identity of a sweep grid: per-point policy, dataset identity and
/// the config fields that shape the result.  A checkpoint records it so a
/// resume against a different grid fails loudly instead of folding wrong
/// cells.
[[nodiscard]] std::uint64_t sweep_grid_signature(
    const std::vector<SweepPoint>& points);

/// Order-sensitive FNV-1a digest over the wire encoding of every result —
/// the CI currency for "bit-identical to serial".
[[nodiscard]] std::uint64_t sweep_results_digest(
    const std::vector<SimResult>& results);

/// Runs `points` through the sweep service.  `transport` may be null (or a
/// 1-rank world): the run stays in-process but keeps the scheduler path,
/// including checkpoint/resume.  With a world, every rank of the world
/// must call this collectively; rank 0 serves grants from the scheduler
/// while also working the grid itself, other ranks loop pull → evaluate →
/// push until told done.  Rank 0 returns the full ordered results; other
/// ranks return an empty grid.
[[nodiscard]] SweepServiceReport run_sweep_service(
    net::Transport* transport, const std::vector<SweepPoint>& points,
    const SweepServiceOptions& options = {});

/// Generic-cell variant (tests): `evaluate(i)` must be a pure function of
/// i, safe to call concurrently for distinct i on any rank.
[[nodiscard]] SweepServiceReport run_sweep_service(
    net::Transport* transport, std::uint64_t total_cells,
    const std::function<SimResult(std::uint64_t)>& evaluate,
    std::uint64_t grid_signature, const SweepServiceOptions& options = {});

}  // namespace nopfs::sim
