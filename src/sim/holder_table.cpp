#include "sim/holder_table.hpp"

#include <algorithm>
#include <stdexcept>

namespace nopfs::sim {

HolderTable::HolderTable(std::uint64_t num_samples, int holders_per_sample)
    : num_samples_(num_samples),
      slots_(std::clamp(holders_per_sample, 1, kMaxHolders)) {
  table_.assign(num_samples_ * static_cast<std::uint64_t>(slots_), kEmpty);
}

bool HolderTable::add(data::SampleId sample, int worker, int storage_class) {
  if (storage_class < 0 || storage_class > 0xf) {
    throw std::invalid_argument("HolderTable: class out of encodable range");
  }
  auto* row = &table_[sample * static_cast<std::uint64_t>(slots_)];
  for (int k = 0; k < slots_; ++k) {
    if (row[k] == kEmpty) {
      row[k] = encode(worker, storage_class, false);
      ++entries_;
      return true;
    }
    if (owner_of(row[k]) == worker) return false;  // already registered
  }
  ++dropped_;
  return false;
}

void HolderTable::mark_cached(data::SampleId sample, int worker) {
  auto* row = &table_[sample * static_cast<std::uint64_t>(slots_)];
  for (int k = 0; k < slots_; ++k) {
    if (row[k] == kEmpty) return;
    if (owner_of(row[k]) == worker) {
      row[k] |= kCachedBit;
      return;
    }
  }
}

void HolderTable::mark_all_cached() {
  for (auto& entry : table_) {
    if (entry != kEmpty) entry |= kCachedBit;
  }
}

void HolderTable::mark_sample_cached_all(data::SampleId sample) {
  auto* row = &table_[sample * static_cast<std::uint64_t>(slots_)];
  for (int k = 0; k < slots_; ++k) {
    if (row[k] == kEmpty) return;
    row[k] |= kCachedBit;
  }
}

bool HolderTable::has_any(data::SampleId sample) const {
  return table_[sample * static_cast<std::uint64_t>(slots_)] != kEmpty;
}

bool HolderTable::any_cached(data::SampleId sample) const {
  const auto* row = &table_[sample * static_cast<std::uint64_t>(slots_)];
  for (int k = 0; k < slots_; ++k) {
    if (row[k] == kEmpty) return false;
    if (cached(row[k])) return true;
  }
  return false;
}

int HolderTable::first_owner(data::SampleId sample) const {
  const std::uint32_t entry = table_[sample * static_cast<std::uint64_t>(slots_)];
  if (entry == kEmpty) return -1;
  return owner_of(entry);
}

int HolderTable::local_cached_class(data::SampleId sample, int worker) const {
  const auto* row = &table_[sample * static_cast<std::uint64_t>(slots_)];
  for (int k = 0; k < slots_; ++k) {
    if (row[k] == kEmpty) return -1;
    if (owner_of(row[k]) == worker) return cached(row[k]) ? class_of(row[k]) : -1;
  }
  return -1;
}

int HolderTable::planned_class(data::SampleId sample, int worker) const {
  const auto* row = &table_[sample * static_cast<std::uint64_t>(slots_)];
  for (int k = 0; k < slots_; ++k) {
    if (row[k] == kEmpty) return -1;
    if (owner_of(row[k]) == worker) return class_of(row[k]);
  }
  return -1;
}

int HolderTable::best_remote_class(data::SampleId sample, int self, int* peer) const {
  const auto* row = &table_[sample * static_cast<std::uint64_t>(slots_)];
  int best_class = -1;
  int best_peer = -1;
  for (int k = 0; k < slots_; ++k) {
    if (row[k] == kEmpty) break;
    if (!cached(row[k])) continue;
    const int owner = owner_of(row[k]);
    if (owner == self) continue;
    const int cls = class_of(row[k]);
    if (best_class == -1 || cls < best_class) {
      best_class = cls;
      best_peer = owner;
    }
  }
  if (peer != nullptr) *peer = best_peer;
  return best_class;
}

}  // namespace nopfs::sim
