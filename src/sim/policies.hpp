#pragma once
// The I/O strategies the paper simulates (Sec. 6):
//
//   Perfect           no-I/O lower bound (reads cost zero)
//   Naive             synchronous PFS reads, no prefetching or caching
//   StagingBuffer     prefetch the reference string from the PFS, drop after
//                     use — models PyTorch double-buffering / tf.data
//   DeepIO (ordered)  in-memory worker caches shared over the network;
//                     misses go to the PFS in the given order
//   DeepIO (opport.)  same caches, but accesses are reordered to whatever is
//                     cached — deviates from full randomization and may not
//                     access the entire dataset
//   ParallelStaging   data sharding: upfront copy of a static shard to local
//                     storage; only local samples are ever accessed
//   LBANN (dynamic)   first-touch caching in RAM only, remote fetches via
//                     the data store; requires S <= N * RAM
//   LBANN (preload)   upfront distributed RAM load; same requirement
//   LocalityAware     Yang & Cong: epoch 0 caches first-touch across tiers,
//                     later epochs reorder batches so workers read what they
//                     cached (full coverage, modified randomization)
//   NoPFS             this paper: clairvoyant frequency-aware multi-tier
//                     plans, remote fetching, model-driven source selection
//
// All policies express their cache state through HolderTable so the engine
// prices accesses uniformly.

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/policy.hpp"
#include "util/rng.hpp"

namespace nopfs::sim {

/// Tracks per-worker, per-class used capacity for dynamic (first-touch)
/// caching policies.
class CapacityTracker {
 public:
  CapacityTracker() = default;
  CapacityTracker(const tiers::NodeParams& node, int num_workers, bool ram_only);

  /// Caches `mb` on `worker` in the fastest class with space; returns the
  /// class index or -1 when full.
  [[nodiscard]] int try_cache(int worker, double mb);

  [[nodiscard]] double used_mb(int worker, int cls) const;

 private:
  std::vector<double> capacity_mb_;          ///< per class
  std::vector<std::vector<double>> used_;    ///< [worker][class]
};

class PerfectPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "Perfect"; }
  double setup(const SimContext&) override { return 0.0; }
  [[nodiscard]] AccessDecision on_access(const SimContext&, int, int, data::SampleId,
                                         int) override {
    return {Location::kLocal, 0};
  }
  [[nodiscard]] bool batchable() const override { return true; }
  [[nodiscard]] bool zero_io() const override { return true; }
};

class NaivePolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "Naive"; }
  double setup(const SimContext&) override { return 0.0; }
  [[nodiscard]] AccessDecision on_access(const SimContext&, int, int, data::SampleId,
                                         int) override {
    return {Location::kPfs, -1};
  }
  void on_access_batch(const SimContext&, int, int, std::span<const data::SampleId>,
                       int, std::span<AccessDecision> out) override {
    std::fill(out.begin(), out.end(), AccessDecision{Location::kPfs, -1});
  }
  [[nodiscard]] bool batchable() const override { return true; }
  [[nodiscard]] bool overlapped() const override { return false; }
};

class StagingBufferPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "StagingBuffer"; }
  double setup(const SimContext&) override { return 0.0; }
  [[nodiscard]] AccessDecision on_access(const SimContext&, int, int, data::SampleId,
                                         int) override {
    return {Location::kPfs, -1};
  }
  void on_access_batch(const SimContext&, int, int, std::span<const data::SampleId>,
                       int, std::span<AccessDecision> out) override {
    std::fill(out.begin(), out.end(), AccessDecision{Location::kPfs, -1});
  }
  [[nodiscard]] bool batchable() const override { return true; }
};

/// Shared machinery: first-touch caching with optional remote fetches.
class FirstTouchPolicy : public Policy {
 public:
  /// `ram_only`: restrict caching to storage class 0 (assumed RAM).
  explicit FirstTouchPolicy(bool ram_only) : ram_only_(ram_only) {}

  double setup(const SimContext& ctx) override;
  [[nodiscard]] AccessDecision on_access(const SimContext& ctx, int worker, int epoch,
                                         data::SampleId sample, int gamma) override;
  void on_access_batch(const SimContext& ctx, int worker, int epoch,
                       std::span<const data::SampleId> samples, int gamma,
                       std::span<AccessDecision> out) override;
  /// First-touch caching mutates only holder/capacity state, which no
  /// subclass remap() reads mid-batch (DeepIO opportunistic, which does,
  /// re-overrides this to false).
  [[nodiscard]] bool batchable() const override { return true; }

 protected:
  /// The per-sample decision logic, devirtualized so on_access_batch can
  /// amortize dispatch; on_access and the batch loop both call this, which
  /// is what keeps the two paths bit-identical.
  [[nodiscard]] AccessDecision decide(const SimContext& ctx, int worker,
                                      data::SampleId sample);
  [[nodiscard]] HolderTable& table() noexcept { return table_; }
  [[nodiscard]] CapacityTracker& capacity() noexcept { return capacity_; }
  /// Samples cached per worker, in caching order (locality-aware reuse).
  std::vector<std::vector<data::SampleId>> cached_by_worker_;

 private:
  bool ram_only_;
  HolderTable table_;
  CapacityTracker capacity_;
};

class DeepIOOrderedPolicy final : public FirstTouchPolicy {
 public:
  DeepIOOrderedPolicy() : FirstTouchPolicy(/*ram_only=*/true) {}
  [[nodiscard]] std::string name() const override { return "DeepIO (Ord.)"; }
};

class DeepIOOpportunisticPolicy final : public FirstTouchPolicy {
 public:
  DeepIOOpportunisticPolicy() : FirstTouchPolicy(/*ram_only=*/true) {}
  [[nodiscard]] std::string name() const override { return "DeepIO (Opp.)"; }

  double setup(const SimContext& ctx) override;
  [[nodiscard]] data::SampleId remap(int worker, int epoch, std::uint64_t local_index,
                                     data::SampleId def) override;
  [[nodiscard]] AccessDecision on_access(const SimContext& ctx, int worker, int epoch,
                                         data::SampleId sample, int gamma) override;
  /// Re-shadows the inherited FirstTouchPolicy batch override with the
  /// base-class per-sample loop: the inherited decide() path would skip this
  /// class's accessed_[] tracking and silently corrupt accessed_fraction().
  void on_access_batch(const SimContext& ctx, int worker, int epoch,
                       std::span<const data::SampleId> samples, int gamma,
                       std::span<AccessDecision> out) override {
    Policy::on_access_batch(ctx, worker, epoch, samples, gamma, out);
  }
  [[nodiscard]] double accessed_fraction(const SimContext& ctx) const override;

  /// remap() substitutes samples this worker cached, and on_access() grows
  /// that cache — interleaving within a local batch is observable, so the
  /// engine must keep the per-sample path for this policy.
  [[nodiscard]] bool batchable() const override { return false; }

 private:
  std::vector<bool> accessed_;
  std::vector<std::size_t> round_robin_;
};

class ParallelStagingPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "Parallel Staging"; }
  double setup(const SimContext& ctx) override;
  void on_epoch_begin(const SimContext& ctx, int epoch) override;
  [[nodiscard]] data::SampleId remap(int worker, int epoch, std::uint64_t local_index,
                                     data::SampleId def) override;
  [[nodiscard]] AccessDecision on_access(const SimContext& ctx, int worker, int epoch,
                                         data::SampleId sample, int gamma) override;
  void on_access_batch(const SimContext& ctx, int worker, int epoch,
                       std::span<const data::SampleId> samples, int gamma,
                       std::span<AccessDecision> out) override;
  /// remap() reads only epoch_sequence_, which on_access() never touches.
  [[nodiscard]] bool batchable() const override { return true; }
  [[nodiscard]] double accessed_fraction(const SimContext& ctx) const override;

 private:
  [[nodiscard]] AccessDecision decide(int worker, data::SampleId sample) const;

  HolderTable table_;
  std::vector<std::vector<data::SampleId>> shards_;          ///< per worker
  std::vector<std::vector<data::SampleId>> epoch_sequence_;  ///< shuffled per epoch
  double staged_mb_ = 0.0;
};

class LbannDynamicPolicy final : public FirstTouchPolicy {
 public:
  LbannDynamicPolicy() : FirstTouchPolicy(/*ram_only=*/true) {}
  [[nodiscard]] std::string name() const override { return "LBANN (Dynamic)"; }
  [[nodiscard]] bool supported(const SimContext& ctx, std::string* why) const override;
};

class LbannPreloadPolicy final : public Policy {
 public:
  [[nodiscard]] std::string name() const override { return "LBANN (Preloading)"; }
  double setup(const SimContext& ctx) override;
  [[nodiscard]] bool supported(const SimContext& ctx, std::string* why) const override;
  [[nodiscard]] AccessDecision on_access(const SimContext& ctx, int worker, int epoch,
                                         data::SampleId sample, int gamma) override;
  void on_access_batch(const SimContext& ctx, int worker, int epoch,
                       std::span<const data::SampleId> samples, int gamma,
                       std::span<AccessDecision> out) override;
  [[nodiscard]] bool batchable() const override { return true; }

 private:
  [[nodiscard]] AccessDecision decide(int worker, data::SampleId sample) const;

  HolderTable table_;
};

class LocalityAwarePolicy final : public FirstTouchPolicy {
 public:
  LocalityAwarePolicy() : FirstTouchPolicy(/*ram_only=*/false) {}
  [[nodiscard]] std::string name() const override { return "Locality-Aware"; }
  void on_epoch_begin(const SimContext& ctx, int epoch) override;
  [[nodiscard]] data::SampleId remap(int worker, int epoch, std::uint64_t local_index,
                                     data::SampleId def) override;

 private:
  std::vector<std::vector<data::SampleId>> assigned_;        ///< per worker
  std::vector<std::vector<data::SampleId>> epoch_sequence_;  ///< shuffled per epoch
  bool reordered_ = false;
};

class NoPFSPolicy final : public Policy {
 public:
  /// Ablation switches (defaults = the paper's NoPFS).
  struct Options {
    bool frequency_aware = true;  ///< false: random-order fill (ablation)
    bool use_remote = true;       ///< false: local+PFS only (ablation)
  };

  NoPFSPolicy() = default;
  explicit NoPFSPolicy(Options options) : options_(options) {}

  [[nodiscard]] std::string name() const override { return "NoPFS"; }
  double setup(const SimContext& ctx) override;
  [[nodiscard]] AccessDecision on_access(const SimContext& ctx, int worker, int epoch,
                                         data::SampleId sample, int gamma) override;
  void on_access_batch(const SimContext& ctx, int worker, int epoch,
                       std::span<const data::SampleId> samples, int gamma,
                       std::span<AccessDecision> out) override;
  [[nodiscard]] bool batchable() const override { return true; }

  /// Total MB planned per worker (diagnostics / tests).
  [[nodiscard]] const std::vector<double>& planned_mb() const noexcept {
    return planned_mb_;
  }

 private:
  [[nodiscard]] AccessDecision decide(const SimContext& ctx, int worker,
                                      data::SampleId sample, int gamma);

  Options options_;
  HolderTable table_;
  std::vector<double> planned_mb_;
};

}  // namespace nopfs::sim
