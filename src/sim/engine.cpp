#include "sim/engine.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "sim/record.hpp"
#include "util/rng.hpp"

namespace nopfs::sim {

const char* location_name(Location loc) noexcept {
  switch (loc) {
    case Location::kStagingWrite: return "staging";
    case Location::kLocal: return "local";
    case Location::kRemote: return "remote";
    case Location::kPfs: return "pfs";
    case Location::kCount: break;
  }
  return "?";
}

double SimResult::count_share(Location loc) const {
  std::uint64_t staged = 0;
  for (int l = static_cast<int>(Location::kLocal); l < static_cast<int>(Location::kCount);
       ++l) {
    staged += location_count[l];
  }
  if (staged == 0) return 0.0;
  return static_cast<double>(location_count[static_cast<int>(loc)]) /
         static_cast<double>(staged);
}

namespace {

/// Reservoir-samples iteration durations to bound memory.
class BatchRecorder {
 public:
  BatchRecorder(std::vector<double>& out, std::size_t cap, std::uint64_t seed)
      : out_(out), cap_(cap), rng_(seed) {}

  void add(double value) {
    ++seen_;
    if (out_.size() < cap_) {
      out_.push_back(value);
      return;
    }
    const std::uint64_t j = rng_.uniform_below(seen_);
    if (j < cap_) out_[static_cast<std::size_t>(j)] = value;
  }

 private:
  std::vector<double>& out_;
  std::size_t cap_;
  std::uint64_t seen_ = 0;
  util::Rng rng_;
};

}  // namespace

SimResult simulate(const SimConfig& config, const data::Dataset& dataset,
                   Policy& policy) {
  const auto& system = config.system;
  const int n = system.num_workers;
  if (n <= 0) throw std::invalid_argument("simulate: num_workers must be positive");

  core::StreamConfig stream_config;
  stream_config.seed = config.seed;
  stream_config.num_samples = dataset.num_samples();
  stream_config.num_workers = n;
  stream_config.num_epochs = config.num_epochs;
  stream_config.global_batch = config.global_batch();
  stream_config.drop_last = config.drop_last;
  const core::AccessStreamGenerator gen(stream_config);
  const core::PerfModel model(system);

  SimContext ctx;
  ctx.config = &config;
  ctx.dataset = &dataset;
  ctx.model = &model;
  ctx.gen = &gen;

  SimResult result;
  result.policy = policy.name();
  result.dataset = dataset.name();
  {
    std::string why;
    if (!policy.supported(ctx, &why)) {
      result.supported = false;
      result.unsupported_reason = why;
      return result;
    }
  }

  const double prestage_s = policy.setup(ctx);
  result.prestage_s = prestage_s;

  const std::uint64_t iters = stream_config.iterations_per_epoch();
  const std::uint64_t local_b = stream_config.local_batch();
  const std::uint64_t consumed =
      std::min<std::uint64_t>(dataset.num_samples(), iters * stream_config.global_batch);
  const int p0 = std::max(1, system.node.staging.prefetch_threads);
  const bool overlapped = policy.overlapped();
  const bool zero_io = policy.zero_io();

  // Opt-in observation seam (sim/record.hpp): every hook site below is a
  // single pointer test when recording is off, and the recorder only ever
  // sees values the engine has already committed to — results are
  // bit-identical either way (pinned by tests/test_critpath.cpp).
  RunRecorder* const recorder = config.recorder;
  if (recorder != nullptr) {
    RunShape shape;
    shape.num_workers = n;
    shape.staging_threads = p0;
    shape.overlapped = overlapped;
    shape.zero_io = zero_io;
    shape.prestage_s = prestage_s;
    shape.allreduce_s = config.allreduce_s;
    recorder->begin_run(shape);
  }

  // Per-worker pipeline state.
  std::vector<double> t(static_cast<std::size_t>(n), prestage_s);
  std::vector<double> cum_read(static_cast<std::size_t>(n), 0.0);
  std::vector<double> pending_compute(static_cast<std::size_t>(n), 0.0);
  std::vector<double> stall(static_cast<std::size_t>(n), 0.0);
  std::vector<double> compute(static_cast<std::size_t>(n), 0.0);

  // SoA scratch for one iteration's resolved accesses: phase 1 fills the
  // sample ids (one contiguous run per worker, so a whole local batch can be
  // handed to Policy::on_access_batch in one virtual call), phase 2 streams
  // through samples and decisions as parallel arrays.
  std::vector<data::SampleId> samples(static_cast<std::size_t>(n) * local_b);
  std::vector<AccessDecision> decisions(static_cast<std::size_t>(n) * local_b);
  std::vector<std::uint32_t> counts(static_cast<std::size_t>(n));
  const bool batched = policy.batchable() && !config.force_per_sample_dispatch;

  BatchRecorder rec_epoch0(result.batch_s_epoch0, config.max_batch_records,
                           config.seed ^ 0x5555);
  BatchRecorder rec_rest(result.batch_s_rest, config.max_batch_records,
                         config.seed ^ 0xAAAA);

  int gamma_prev = n;  // everyone starts cold on the PFS
  double barrier_time = prestage_s;

  // Epoch-permutation source: sweeps opt into the shared memoized cache
  // (concurrent grid points of one stream config then generate each epoch's
  // shuffle once); plain library calls reuse a local buffer instead, so
  // nothing outlives this simulate().  Both paths are value-identical.
  std::vector<data::SampleId> order_buffer;
  std::shared_ptr<const std::vector<data::SampleId>> order_shared;

  for (int e = 0; e < config.num_epochs; ++e) {
    policy.on_epoch_begin(ctx, e);
    if (recorder != nullptr) recorder->begin_epoch(e);
    if (config.share_epoch_orders) {
      order_shared = gen.epoch_order_shared(e);
    } else {
      gen.epoch_order_into(e, order_buffer);
    }
    const auto& order = config.share_epoch_orders ? *order_shared : order_buffer;
    const double epoch_start = barrier_time;

    for (std::uint64_t h = 0; h < iters; ++h) {
      // Phase 1: resolve accesses and decisions.
      int gamma_now = 0;
      for (int i = 0; i < n; ++i) {
        const std::size_t base = static_cast<std::size_t>(i) * local_b;
        std::uint32_t count = 0;
        bool hits_pfs = false;
        if (batched) {
          // Resolve the worker's whole local batch, then decide it with one
          // virtual call.  Safe because batchable() policies guarantee
          // remap() does not observe on_access() mutations mid-batch.
          for (std::uint64_t l = 0; l < local_b; ++l) {
            const std::uint64_t local_index = h * local_b + l;
            const std::uint64_t pos = local_index * static_cast<std::uint64_t>(n) +
                                      static_cast<std::uint64_t>(i);
            if (pos >= consumed) continue;
            samples[base + count] = policy.remap(i, e, local_index, order[pos]);
            ++count;
          }
          if (zero_io) {
            std::fill_n(decisions.begin() + static_cast<std::ptrdiff_t>(base), count,
                        AccessDecision{Location::kLocal, 0});
          } else {
            policy.on_access_batch(
                ctx, i, e, std::span<const data::SampleId>(&samples[base], count),
                gamma_prev, std::span<AccessDecision>(&decisions[base], count));
          }
          for (std::uint32_t a = 0; a < count; ++a) {
            if (decisions[base + a].location == Location::kPfs) {
              hits_pfs = true;
              break;
            }
          }
        } else {
          for (std::uint64_t l = 0; l < local_b; ++l) {
            const std::uint64_t local_index = h * local_b + l;
            const std::uint64_t pos = local_index * static_cast<std::uint64_t>(n) +
                                      static_cast<std::uint64_t>(i);
            if (pos >= consumed) continue;
            const data::SampleId sample = policy.remap(i, e, local_index, order[pos]);
            const AccessDecision decision =
                zero_io ? AccessDecision{Location::kLocal, 0}
                        : policy.on_access(ctx, i, e, sample, gamma_prev);
            samples[base + count] = sample;
            decisions[base + count] = decision;
            ++count;
            if (decision.location == Location::kPfs) hits_pfs = true;
          }
        }
        counts[static_cast<std::size_t>(i)] = count;
        if (hits_pfs) ++gamma_now;
      }
      const int gamma = std::max(1, gamma_now);

      // Phase 2: price the accesses through the pipeline recurrence.
      double iter_end = 0.0;
      for (int i = 0; i < n; ++i) {
        const auto count = counts[static_cast<std::size_t>(i)];
        const std::size_t base = static_cast<std::size_t>(i) * local_b;
        double ti = t[static_cast<std::size_t>(i)];
        for (std::uint32_t a = 0; a < count; ++a) {
          const data::SampleId sample = samples[base + a];
          const AccessDecision decision = decisions[base + a];
          const double mb = dataset.size_mb(sample);
          double fetch_s = 0.0;
          if (!zero_io) {
            switch (decision.location) {
              case Location::kLocal:
                fetch_s = model.fetch_local_s(mb, decision.storage_class);
                break;
              case Location::kRemote:
                fetch_s = model.fetch_remote_s(mb, decision.storage_class);
                break;
              case Location::kPfs:
                fetch_s = model.fetch_pfs_s(mb, gamma);
                break;
              default:
                break;
            }
          }
          const double write_s = zero_io ? 0.0 : model.write_s(mb);
          const int loc = static_cast<int>(decision.location);
          const int staging = static_cast<int>(Location::kStagingWrite);
          result.location_s[loc] += fetch_s;
          result.location_s[staging] += write_s;
          result.location_count[loc] += 1;
          result.location_count[staging] += 1;
          result.location_mb[loc] += mb;
          result.location_mb[staging] += mb;

          const double compute_s =
              model.compute_s(config.uniform_compute ? dataset.mean_size_mb() : mb);
          compute[static_cast<std::size_t>(i)] += compute_s;
          if (recorder != nullptr) {
            AccessTrace trace;
            trace.worker = i;
            trace.location = decision.location;
            trace.storage_class = (decision.location == Location::kLocal ||
                                   decision.location == Location::kRemote)
                                      ? decision.storage_class
                                      : -1;
            trace.mb = mb;
            trace.fetch_s = fetch_s;
            trace.write_s = write_s;
            trace.compute_s = compute_s;
            recorder->on_access(trace);
          }
          const double ready = ti + pending_compute[static_cast<std::size_t>(i)];
          double consume_at;
          if (overlapped) {
            // Local/remote fetches and staging writes parallelize across the
            // p0 staging threads (the paper's avail = sum read / p0).  A PFS
            // fetch does not: the worker is a single PFS client, so its p0
            // threads share one t(gamma)/gamma slice — threads cannot
            // multiply parallel-filesystem bandwidth.
            if (decision.location == Location::kPfs) {
              cum_read[static_cast<std::size_t>(i)] +=
                  fetch_s * static_cast<double>(p0) + write_s;
            } else {
              cum_read[static_cast<std::size_t>(i)] += fetch_s + write_s;
            }
            const double avail = cum_read[static_cast<std::size_t>(i)] /
                                 static_cast<double>(p0);
            consume_at = std::max(avail, ready);
          } else {
            // No prefetching: the read happens inline after compute.
            consume_at = ready + fetch_s + write_s;
          }
          stall[static_cast<std::size_t>(i)] += consume_at - ready;
          ti = consume_at;
          pending_compute[static_cast<std::size_t>(i)] = compute_s;
        }
        ti += pending_compute[static_cast<std::size_t>(i)];
        pending_compute[static_cast<std::size_t>(i)] = 0.0;
        t[static_cast<std::size_t>(i)] = ti;
        iter_end = std::max(iter_end, ti);
      }

      // Phase 3: the allreduce barrier aligns everyone.
      iter_end += config.allreduce_s;
      const double batch_s = iter_end - barrier_time;
      if (e == 0) {
        rec_epoch0.add(batch_s);
      } else {
        rec_rest.add(batch_s);
      }
      barrier_time = iter_end;
      std::fill(t.begin(), t.end(), iter_end);
      gamma_prev = gamma_now;
      if (recorder != nullptr) recorder->end_iteration(iter_end);
    }
    result.epoch_s.push_back(barrier_time - epoch_start);
  }

  result.total_s = barrier_time;
  result.stall_s = *std::max_element(stall.begin(), stall.end());
  result.compute_s = *std::max_element(compute.begin(), compute.end());
  result.accessed_fraction = policy.accessed_fraction(ctx);
  if (recorder != nullptr) recorder->end_run(result);
  return result;
}

}  // namespace nopfs::sim
