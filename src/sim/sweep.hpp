#pragma once
// Parallel sweep engine (DESIGN.md Sec. 6).
//
// The paper's figures are grids: policy x system scale x dataset x batch
// size, each cell one independent simulate() call.  SweepRunner evaluates
// those cells concurrently on a util::ThreadPool while guaranteeing the
// determinism contract (DESIGN.md Sec. 6.1):
//
//   * every cell constructs a fresh Policy and runs the unmodified serial
//     simulate(), so a cell's SimResult is a pure function of
//     (config, dataset, policy name);
//   * results are returned in submission order, indexed like the input;
//   * the only cross-cell shared state is the EpochOrderCache, which is
//     value-transparent — a hit and a regeneration yield the same bytes.
//
// Together these make the output byte-identical for any thread count,
// including 1 (which runs inline with no pool at all).

#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/policy.hpp"

namespace nopfs::sim {

/// One grid point of a sweep.
struct SweepPoint {
  SimConfig config;
  const data::Dataset* dataset = nullptr;
  std::string policy;  ///< make_policy() name
};

struct SweepOptions {
  /// 0 = auto: NOPFS_SWEEP_THREADS env var, else hardware concurrency.
  int num_threads = 0;
};

/// Guided self-scheduling chunk size, shared by the local runner and the
/// distributed sweep service (DESIGN.md Sec. 10): half the per-worker fair
/// share of what is left, never below `min_grant`.  Early chunks are large
/// (few scheduling events), tail chunks shrink toward min_grant so a slow
/// final cell cannot strand a whole static slice behind one worker.
[[nodiscard]] std::size_t sweep_grant_size(std::size_t remaining, int workers,
                                           std::size_t min_grant = 1);

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// Evaluates every grid point; results[i] corresponds to points[i].
  /// Throws (after all cells drain) if any cell throws.
  [[nodiscard]] std::vector<SimResult> run(const std::vector<SweepPoint>& points) const;

  /// Generic variant for cells that need custom policy construction:
  /// `evaluate(i)` must be safe to call concurrently for distinct i.
  [[nodiscard]] std::vector<SimResult> run(
      std::size_t count, const std::function<SimResult(std::size_t)>& evaluate) const;

 private:
  int num_threads_;
};

}  // namespace nopfs::sim
