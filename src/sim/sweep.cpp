#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "sim/policies.hpp"
#include "util/thread_pool.hpp"

namespace nopfs::sim {

std::size_t sweep_grant_size(std::size_t remaining, int workers,
                             std::size_t min_grant) {
  if (remaining == 0) return 0;
  if (min_grant == 0) min_grant = 1;
  const std::size_t fair =
      remaining / (2 * static_cast<std::size_t>(std::max(workers, 1)));
  return std::clamp(std::max(fair, min_grant), std::size_t{1}, remaining);
}

SweepRunner::SweepRunner(SweepOptions options)
    : num_threads_(options.num_threads > 0 ? options.num_threads
                                           : util::ThreadPool::default_num_threads()) {}

std::vector<SimResult> SweepRunner::run(const std::vector<SweepPoint>& points) const {
  return run(points.size(), [&](std::size_t i) {
    const SweepPoint& point = points[i];
    if (point.dataset == nullptr) {
      throw std::invalid_argument("SweepRunner: point has no dataset");
    }
    auto policy = make_policy(point.policy);
    // Cells of one sweep share epoch permutations through the global cache
    // (value-transparent, see SimConfig::share_epoch_orders).
    SimConfig config = point.config;
    config.share_epoch_orders = true;
    return simulate(config, *point.dataset, *policy);
  });
}

std::vector<SimResult> SweepRunner::run(
    std::size_t count, const std::function<SimResult(std::size_t)>& evaluate) const {
  std::vector<SimResult> results(count);
  // Never spawn more workers than there are cells (a 4-point sweep on a
  // 128-core host should not create 128 parked threads).  On a host with a
  // single hardware thread the "parallel" pool can only time-slice one
  // core and loses to the serial loop on scheduling overhead, so fall back
  // to the inline path; this is a run-time decision (not a constructor
  // clamp) so num_threads() still reports the requested width.
  int threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(num_threads_), count));
  if (std::thread::hardware_concurrency() <= 1) threads = 1;
  if (threads <= 1) {
    util::ThreadPool pool(1);  // inline execution, byte-identical to serial
    pool.run_indexed(count, [&](std::size_t i) { results[i] = evaluate(i); });
    return results;
  }
  // Guided self-scheduling over a shared cursor: each worker claims a
  // shrinking chunk (sweep_grant_size) instead of a static slice, so the
  // tail degrades to cell-at-a-time stealing and no worker sits idle while
  // another drains a long final stripe.  Every cell still lands in its own
  // result slot — output order is submission order, bit-identical to
  // serial (DESIGN.md Sec. 6.1).
  std::atomic<std::size_t> cursor{0};
  util::ThreadPool pool(threads);
  for (int t = 0; t < threads; ++t) {
    pool.submit([&, threads] {
      for (;;) {
        std::size_t start = cursor.load(std::memory_order_relaxed);
        std::size_t chunk = 0;
        do {
          if (start >= count) return;
          chunk = sweep_grant_size(count - start, threads);
        } while (!cursor.compare_exchange_weak(start, start + chunk,
                                               std::memory_order_relaxed));
        for (std::size_t i = start; i < start + chunk; ++i) {
          results[i] = evaluate(i);
        }
      }
    });
  }
  pool.wait_idle();  // rethrows the first cell exception after the drain
  return results;
}

}  // namespace nopfs::sim
