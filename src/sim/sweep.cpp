#include "sim/sweep.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/policies.hpp"
#include "util/thread_pool.hpp"

namespace nopfs::sim {

SweepRunner::SweepRunner(SweepOptions options)
    : num_threads_(options.num_threads > 0 ? options.num_threads
                                           : util::ThreadPool::default_num_threads()) {}

std::vector<SimResult> SweepRunner::run(const std::vector<SweepPoint>& points) const {
  return run(points.size(), [&](std::size_t i) {
    const SweepPoint& point = points[i];
    if (point.dataset == nullptr) {
      throw std::invalid_argument("SweepRunner: point has no dataset");
    }
    auto policy = make_policy(point.policy);
    // Cells of one sweep share epoch permutations through the global cache
    // (value-transparent, see SimConfig::share_epoch_orders).
    SimConfig config = point.config;
    config.share_epoch_orders = true;
    return simulate(config, *point.dataset, *policy);
  });
}

std::vector<SimResult> SweepRunner::run(
    std::size_t count, const std::function<SimResult(std::size_t)>& evaluate) const {
  std::vector<SimResult> results(count);
  // Never spawn more workers than there are cells (a 4-point sweep on a
  // 128-core host should not create 128 parked threads).
  const int threads = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(num_threads_), count));
  util::ThreadPool pool(threads);
  pool.run_indexed(count, [&](std::size_t i) { results[i] = evaluate(i); });
  return results;
}

}  // namespace nopfs::sim
