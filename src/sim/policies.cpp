#include "sim/policies.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace nopfs::sim {

namespace {

constexpr std::uint16_t kNoOwner = 0xffff;

/// Samples consumed per epoch (drop_last may skip a tail).
std::uint64_t consumed_per_epoch(const SimContext& ctx) {
  const auto& cfg = ctx.gen->config();
  return std::min<std::uint64_t>(cfg.num_samples,
                                 cfg.iterations_per_epoch() * cfg.global_batch);
}

int holder_slots(const SimContext& ctx) {
  return std::min<int>(HolderTable::kMaxHolders,
                       std::max(1, ctx.config->num_epochs));
}

}  // namespace

CapacityTracker::CapacityTracker(const tiers::NodeParams& node, int num_workers,
                                 bool ram_only) {
  const std::size_t classes = ram_only ? std::min<std::size_t>(1, node.classes.size())
                                       : node.classes.size();
  capacity_mb_.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    capacity_mb_.push_back(node.classes[c].capacity_mb);
  }
  used_.assign(static_cast<std::size_t>(num_workers),
               std::vector<double>(classes, 0.0));
}

int CapacityTracker::try_cache(int worker, double mb) {
  auto& used = used_.at(static_cast<std::size_t>(worker));
  for (std::size_t c = 0; c < capacity_mb_.size(); ++c) {
    if (used[c] + mb <= capacity_mb_[c]) {
      used[c] += mb;
      return static_cast<int>(c);
    }
  }
  return -1;
}

double CapacityTracker::used_mb(int worker, int cls) const {
  return used_.at(static_cast<std::size_t>(worker)).at(static_cast<std::size_t>(cls));
}

// ---------------------------------------------------------------------------
// FirstTouchPolicy (DeepIO ordered, LBANN dynamic; base for others)

double FirstTouchPolicy::setup(const SimContext& ctx) {
  table_ = HolderTable(ctx.dataset->num_samples(), holder_slots(ctx));
  capacity_ = CapacityTracker(ctx.config->system.node, ctx.config->system.num_workers,
                              ram_only_);
  cached_by_worker_.assign(static_cast<std::size_t>(ctx.config->system.num_workers), {});
  return 0.0;
}

AccessDecision FirstTouchPolicy::on_access(const SimContext& ctx, int worker,
                                           int /*epoch*/, data::SampleId sample,
                                           int /*gamma*/) {
  return decide(ctx, worker, sample);
}

void FirstTouchPolicy::on_access_batch(const SimContext& ctx, int worker, int /*epoch*/,
                                       std::span<const data::SampleId> samples,
                                       int /*gamma*/, std::span<AccessDecision> out) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out[i] = decide(ctx, worker, samples[i]);
  }
}

AccessDecision FirstTouchPolicy::decide(const SimContext& ctx, int worker,
                                        data::SampleId sample) {
  const int local_cls = table_.local_cached_class(sample, worker);
  if (local_cls >= 0) return {Location::kLocal, local_cls};
  int peer = -1;
  const int remote_cls = table_.best_remote_class(sample, worker, &peer);
  if (remote_cls >= 0) return {Location::kRemote, remote_cls};
  // Miss: read from the PFS and cache it here if space remains (first touch).
  const double mb = ctx.dataset->size_mb(sample);
  const int cls = capacity_.try_cache(worker, mb);
  if (cls >= 0) {
    table_.add(sample, worker, cls);
    table_.mark_cached(sample, worker);
    cached_by_worker_[static_cast<std::size_t>(worker)].push_back(sample);
  }
  return {Location::kPfs, -1};
}

// ---------------------------------------------------------------------------
// DeepIO opportunistic: reorder toward cached samples after epoch 0.

double DeepIOOpportunisticPolicy::setup(const SimContext& ctx) {
  const double prestage = FirstTouchPolicy::setup(ctx);
  accessed_.assign(ctx.dataset->num_samples(), false);
  round_robin_.assign(static_cast<std::size_t>(ctx.config->system.num_workers), 0);
  return prestage;
}

data::SampleId DeepIOOpportunisticPolicy::remap(int worker, int epoch,
                                                std::uint64_t /*local_index*/,
                                                data::SampleId def) {
  if (epoch == 0) return def;
  if (table().has_any(def)) return def;  // cached somewhere: keep it
  // Opportunistic substitution: read something this worker already caches.
  auto& own = cached_by_worker_[static_cast<std::size_t>(worker)];
  if (own.empty()) return def;
  auto& rr = round_robin_[static_cast<std::size_t>(worker)];
  const data::SampleId substitute = own[rr % own.size()];
  ++rr;
  return substitute;
}

AccessDecision DeepIOOpportunisticPolicy::on_access(const SimContext& ctx, int worker,
                                                    int epoch, data::SampleId sample,
                                                    int gamma) {
  accessed_[sample] = true;
  return FirstTouchPolicy::on_access(ctx, worker, epoch, sample, gamma);
}

double DeepIOOpportunisticPolicy::accessed_fraction(const SimContext& ctx) const {
  std::uint64_t count = 0;
  for (bool a : accessed_) count += a ? 1 : 0;
  return static_cast<double>(count) / static_cast<double>(ctx.dataset->num_samples());
}

// ---------------------------------------------------------------------------
// Parallel staging (data sharding)

double ParallelStagingPolicy::setup(const SimContext& ctx) {
  const int n = ctx.config->system.num_workers;
  const auto& node = ctx.config->system.node;
  table_ = HolderTable(ctx.dataset->num_samples(), 1);
  shards_.assign(static_cast<std::size_t>(n), {});
  epoch_sequence_.assign(static_cast<std::size_t>(n), {});
  double max_shard_mb = 0.0;
  for (int w = 0; w < n; ++w) {
    double used = 0.0;
    std::size_t cls = 0;
    double shard_mb = 0.0;
    for (data::SampleId k = static_cast<data::SampleId>(w);
         k < ctx.dataset->num_samples(); k += static_cast<data::SampleId>(n)) {
      const double mb = ctx.dataset->size_mb(k);
      while (cls < node.classes.size() && used + mb > node.classes[cls].capacity_mb) {
        ++cls;
        used = 0.0;
      }
      if (cls >= node.classes.size()) break;  // local storage exhausted
      used += mb;
      shard_mb += mb;
      shards_[static_cast<std::size_t>(w)].push_back(k);
      table_.add(k, w, static_cast<int>(cls));
    }
    max_shard_mb = std::max(max_shard_mb, shard_mb);
  }
  table_.mark_all_cached();
  staged_mb_ = max_shard_mb;
  // The prestaging phase cannot overlap training: every worker pulls its
  // shard from the PFS at the contended per-client rate.
  return max_shard_mb / ctx.model->pfs_client_mbps(n);
}

void ParallelStagingPolicy::on_epoch_begin(const SimContext& ctx, int epoch) {
  const int n = ctx.config->system.num_workers;
  for (int w = 0; w < n; ++w) {
    auto& seq = epoch_sequence_[static_cast<std::size_t>(w)];
    seq = shards_[static_cast<std::size_t>(w)];
    util::Rng rng = util::Rng::for_stream(
        ctx.config->seed ^ 0x5a5a5a5aULL,
        static_cast<std::uint64_t>(epoch) * static_cast<std::uint64_t>(n) +
            static_cast<std::uint64_t>(w) + 1);
    util::fisher_yates_shuffle(std::span<data::SampleId>(seq), rng);
  }
}

data::SampleId ParallelStagingPolicy::remap(int worker, int /*epoch*/,
                                            std::uint64_t local_index,
                                            data::SampleId def) {
  const auto& seq = epoch_sequence_[static_cast<std::size_t>(worker)];
  if (seq.empty()) return def;
  return seq[local_index % seq.size()];
}

AccessDecision ParallelStagingPolicy::decide(int worker, data::SampleId sample) const {
  const int cls = table_.local_cached_class(sample, worker);
  if (cls >= 0) return {Location::kLocal, cls};
  return {Location::kPfs, -1};  // only with a degenerate empty shard
}

AccessDecision ParallelStagingPolicy::on_access(const SimContext& /*ctx*/, int worker,
                                                int /*epoch*/, data::SampleId sample,
                                                int /*gamma*/) {
  return decide(worker, sample);
}

void ParallelStagingPolicy::on_access_batch(const SimContext& /*ctx*/, int worker,
                                            int /*epoch*/,
                                            std::span<const data::SampleId> samples,
                                            int /*gamma*/,
                                            std::span<AccessDecision> out) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out[i] = decide(worker, samples[i]);
  }
}

double ParallelStagingPolicy::accessed_fraction(const SimContext& ctx) const {
  std::uint64_t staged = 0;
  for (const auto& shard : shards_) staged += shard.size();
  return static_cast<double>(staged) / static_cast<double>(ctx.dataset->num_samples());
}

// ---------------------------------------------------------------------------
// LBANN data store

bool LbannDynamicPolicy::supported(const SimContext& ctx, std::string* why) const {
  const auto& node = ctx.config->system.node;
  if (node.classes.empty()) {
    if (why != nullptr) *why = "no RAM storage class configured";
    return false;
  }
  const double agg_ram =
      node.classes[0].capacity_mb * static_cast<double>(ctx.config->system.num_workers);
  if (ctx.dataset->total_mb() > agg_ram) {
    if (why != nullptr) *why = "dataset exceeds aggregate worker memory";
    return false;
  }
  return true;
}

double LbannPreloadPolicy::setup(const SimContext& ctx) {
  const int n = ctx.config->system.num_workers;
  table_ = HolderTable(ctx.dataset->num_samples(), 1);
  double max_shard_mb = 0.0;
  std::vector<double> shard_mb(static_cast<std::size_t>(n), 0.0);
  for (data::SampleId k = 0; k < ctx.dataset->num_samples(); ++k) {
    const int w = static_cast<int>(k % static_cast<data::SampleId>(n));
    table_.add(k, w, 0);
    shard_mb[static_cast<std::size_t>(w)] += ctx.dataset->size_mb(k);
  }
  for (double mb : shard_mb) max_shard_mb = std::max(max_shard_mb, mb);
  table_.mark_all_cached();
  return max_shard_mb / ctx.model->pfs_client_mbps(n);
}

bool LbannPreloadPolicy::supported(const SimContext& ctx, std::string* why) const {
  const auto& node = ctx.config->system.node;
  if (node.classes.empty()) {
    if (why != nullptr) *why = "no RAM storage class configured";
    return false;
  }
  const double per_worker =
      ctx.dataset->total_mb() / static_cast<double>(ctx.config->system.num_workers);
  if (per_worker > node.classes[0].capacity_mb) {
    if (why != nullptr) *why = "dataset exceeds aggregate worker memory";
    return false;
  }
  return true;
}

AccessDecision LbannPreloadPolicy::decide(int worker, data::SampleId sample) const {
  const int local_cls = table_.local_cached_class(sample, worker);
  if (local_cls >= 0) return {Location::kLocal, local_cls};
  int peer = -1;
  const int remote_cls = table_.best_remote_class(sample, worker, &peer);
  if (remote_cls >= 0) return {Location::kRemote, remote_cls};
  return {Location::kPfs, -1};
}

AccessDecision LbannPreloadPolicy::on_access(const SimContext& /*ctx*/, int worker,
                                             int /*epoch*/, data::SampleId sample,
                                             int /*gamma*/) {
  return decide(worker, sample);
}

void LbannPreloadPolicy::on_access_batch(const SimContext& /*ctx*/, int worker,
                                         int /*epoch*/,
                                         std::span<const data::SampleId> samples,
                                         int /*gamma*/, std::span<AccessDecision> out) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out[i] = decide(worker, samples[i]);
  }
}

// ---------------------------------------------------------------------------
// Locality-aware loading (Yang & Cong)

void LocalityAwarePolicy::on_epoch_begin(const SimContext& ctx, int epoch) {
  const int n = ctx.config->system.num_workers;
  if (epoch == 0) return;
  if (!reordered_) {
    // After the first (caching) epoch, assign every sample to the worker
    // that cached it; spread uncached samples round-robin; then balance so
    // every worker reads the same count per epoch.
    reordered_ = true;
    const std::uint64_t target = consumed_per_epoch(ctx) / static_cast<std::uint64_t>(n);
    assigned_.assign(static_cast<std::size_t>(n), {});
    std::vector<data::SampleId> pool;
    for (int w = 0; w < n; ++w) {
      const auto& own = cached_by_worker_[static_cast<std::size_t>(w)];
      auto& mine = assigned_[static_cast<std::size_t>(w)];
      for (data::SampleId k : own) {
        if (mine.size() < target) {
          mine.push_back(k);
        } else {
          pool.push_back(k);  // overflow: someone else reads it remotely
        }
      }
    }
    for (data::SampleId k = 0; k < ctx.dataset->num_samples(); ++k) {
      if (!table().has_any(k)) pool.push_back(k);
    }
    std::size_t next = 0;
    for (int w = 0; w < n && next < pool.size(); ++w) {
      auto& mine = assigned_[static_cast<std::size_t>(w)];
      while (mine.size() < target && next < pool.size()) mine.push_back(pool[next++]);
    }
    epoch_sequence_.assign(static_cast<std::size_t>(n), {});
  }
  for (int w = 0; w < n; ++w) {
    auto& seq = epoch_sequence_[static_cast<std::size_t>(w)];
    seq = assigned_[static_cast<std::size_t>(w)];
    util::Rng rng = util::Rng::for_stream(
        ctx.config->seed ^ 0xa1a1a1a1ULL,
        static_cast<std::uint64_t>(epoch) * static_cast<std::uint64_t>(n) +
            static_cast<std::uint64_t>(w) + 1);
    util::fisher_yates_shuffle(std::span<data::SampleId>(seq), rng);
  }
}

data::SampleId LocalityAwarePolicy::remap(int worker, int epoch,
                                          std::uint64_t local_index,
                                          data::SampleId def) {
  if (epoch == 0 || !reordered_) return def;
  const auto& seq = epoch_sequence_[static_cast<std::size_t>(worker)];
  if (seq.empty()) return def;
  return seq[local_index % seq.size()];
}

// ---------------------------------------------------------------------------
// NoPFS

double NoPFSPolicy::setup(const SimContext& ctx) {
  const int n = ctx.config->system.num_workers;
  const int epochs = ctx.config->num_epochs;
  const auto f = ctx.dataset->num_samples();
  const auto& node = ctx.config->system.node;
  if (n >= static_cast<int>(kNoOwner)) {
    throw std::invalid_argument("NoPFSPolicy: too many workers for owner encoding");
  }
  table_ = HolderTable(f, holder_slots(ctx));
  planned_mb_.assign(static_cast<std::size_t>(n), 0.0);
  if (node.classes.empty()) return 0.0;  // nothing to cache into

  // Pass 1 (clairvoyance): who reads each sample in each epoch.  Sweeps
  // share the permutations through the epoch-order cache (the engine will
  // walk the same epochs right after this); plain calls stay transient.
  std::vector<std::uint16_t> owners(f * static_cast<std::uint64_t>(epochs), kNoOwner);
  const std::uint64_t consumed = consumed_per_epoch(ctx);
  std::vector<data::SampleId> order_buffer;
  std::shared_ptr<const std::vector<data::SampleId>> order_shared;
  for (int e = 0; e < epochs; ++e) {
    if (ctx.config->share_epoch_orders) {
      order_shared = ctx.gen->epoch_order_shared(e);
    } else {
      ctx.gen->epoch_order_into(e, order_buffer);
    }
    const auto& order = ctx.config->share_epoch_orders ? *order_shared : order_buffer;
    for (std::uint64_t pos = 0; pos < consumed; ++pos) {
      owners[order[pos] * static_cast<std::uint64_t>(epochs) +
             static_cast<std::uint64_t>(e)] =
          static_cast<std::uint16_t>(pos % static_cast<std::uint64_t>(n));
    }
  }

  // Pass 2: exact per-worker access frequencies r_k.
  std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>> candidates(
      static_cast<std::size_t>(n));
  for (data::SampleId k = 0; k < f; ++k) {
    const std::uint16_t* row = &owners[k * static_cast<std::uint64_t>(epochs)];
    for (int e = 0; e < epochs; ++e) {
      const std::uint16_t owner = row[e];
      if (owner == kNoOwner) continue;
      bool seen = false;
      for (int prev = 0; prev < e; ++prev) {
        if (row[prev] == owner) {
          seen = true;
          break;
        }
      }
      if (seen) continue;
      std::uint32_t count = 1;
      for (int later = e + 1; later < epochs; ++later) {
        if (row[later] == owner) ++count;
      }
      candidates[owner].emplace_back(static_cast<std::uint32_t>(k), count);
    }
  }
  owners.clear();
  owners.shrink_to_fit();

  // Pass 3: frequency-ordered greedy fill of the storage hierarchy.
  for (int w = 0; w < n; ++w) {
    auto& cand = candidates[static_cast<std::size_t>(w)];
    if (options_.frequency_aware) {
      std::sort(cand.begin(), cand.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
      });
    } else {
      util::Rng rng = util::Rng::for_stream(ctx.config->seed ^ 0x70f5ULL,
                                            static_cast<std::uint64_t>(w) + 1);
      util::fisher_yates_shuffle(
          std::span<std::pair<std::uint32_t, std::uint32_t>>(cand), rng);
    }
    std::size_t cls = 0;
    double used = 0.0;
    for (const auto& [sample32, count] : cand) {
      const auto k = static_cast<data::SampleId>(sample32);
      const double mb = ctx.dataset->size_mb(k);
      while (cls < node.classes.size() && used + mb > node.classes[cls].capacity_mb) {
        ++cls;
        used = 0.0;
      }
      if (cls >= node.classes.size()) break;
      used += mb;
      table_.add(k, w, static_cast<int>(cls));
      planned_mb_[static_cast<std::size_t>(w)] += mb;
    }
    cand.clear();
    cand.shrink_to_fit();
  }
  return 0.0;  // NoPFS needs no prestaging phase
}

AccessDecision NoPFSPolicy::on_access(const SimContext& ctx, int worker, int /*epoch*/,
                                      data::SampleId sample, int gamma) {
  return decide(ctx, worker, sample, gamma);
}

void NoPFSPolicy::on_access_batch(const SimContext& ctx, int worker, int /*epoch*/,
                                  std::span<const data::SampleId> samples, int gamma,
                                  std::span<AccessDecision> out) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    out[i] = decide(ctx, worker, samples[i], gamma);
  }
}

AccessDecision NoPFSPolicy::decide(const SimContext& ctx, int worker,
                                   data::SampleId sample, int gamma) {
  const int local_cls = table_.local_cached_class(sample, worker);
  if (local_cls >= 0) return {Location::kLocal, local_cls};

  const double mb = ctx.dataset->size_mb(sample);
  const int planned_cls = table_.planned_class(sample, worker);
  int peer = -1;
  const int remote_cls =
      options_.use_remote ? table_.best_remote_class(sample, worker, &peer) : -1;

  if (remote_cls < 0) {
    // Nobody has materialized this sample yet: its first read comes from
    // the PFS (exactly once per run when it is planned anywhere).
    if (planned_cls >= 0) table_.mark_cached(sample, worker);
    return {Location::kPfs, -1};
  }

  // A peer holds the sample.  Whether this worker's *own* class prefetcher
  // already materialized its planned copy depends on whether prefetching
  // keeps ahead of consumption: prefetchers refill at the worker's PFS
  // share, the trainer drains at c.  Ahead -> the staging prefetcher finds
  // the sample locally; behind -> it fetches it (remote or PFS, by the
  // model) and caches it on the way through (Sec. 5.2.2 load smoothing).
  if (planned_cls >= 0) {
    const double pfs_s = ctx.model->fetch_pfs_s(mb, std::max(1, gamma));
    const double pfs_mbps = pfs_s > 0.0 ? mb / pfs_s : 0.0;
    const bool prefetcher_ahead = pfs_mbps > ctx.config->system.node.compute_mbps;
    table_.mark_cached(sample, worker);
    if (prefetcher_ahead) return {Location::kLocal, planned_cls};
  }
  const core::FetchChoice choice =
      ctx.model->choose_fetch(mb, -1, remote_cls, peer, std::max(1, gamma));
  if (choice.source == core::FetchSource::kRemote) {
    return {Location::kRemote, remote_cls};
  }
  return {Location::kPfs, -1};
}

// ---------------------------------------------------------------------------

std::unique_ptr<Policy> make_policy(const std::string& name) {
  if (name == "perfect") return std::make_unique<PerfectPolicy>();
  if (name == "naive") return std::make_unique<NaivePolicy>();
  if (name == "staging") return std::make_unique<StagingBufferPolicy>();
  if (name == "deepio-ordered") return std::make_unique<DeepIOOrderedPolicy>();
  if (name == "deepio-opportunistic") {
    return std::make_unique<DeepIOOpportunisticPolicy>();
  }
  if (name == "parallel-staging") return std::make_unique<ParallelStagingPolicy>();
  if (name == "lbann-dynamic") return std::make_unique<LbannDynamicPolicy>();
  if (name == "lbann-preload") return std::make_unique<LbannPreloadPolicy>();
  if (name == "locality-aware") return std::make_unique<LocalityAwarePolicy>();
  if (name == "nopfs") return std::make_unique<NoPFSPolicy>();
  throw std::invalid_argument("unknown policy: " + name);
}

std::vector<std::string> all_policy_names() {
  return {"naive",          "staging",        "deepio-ordered",
          "deepio-opportunistic", "parallel-staging", "lbann-dynamic",
          "lbann-preload",  "locality-aware", "nopfs",
          "perfect"};
}

}  // namespace nopfs::sim
