#pragma once
// Policy interface of the performance simulator (paper Sec. 6 lists the
// simulated strategies; src/sim/policies.hpp implements them all).

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/access_stream.hpp"
#include "core/perf_model.hpp"
#include "data/dataset.hpp"
#include "sim/holder_table.hpp"
#include "sim/sim_config.hpp"

namespace nopfs::sim {

/// Everything a policy may consult during setup and per-access decisions.
struct SimContext {
  const SimConfig* config = nullptr;
  const data::Dataset* dataset = nullptr;
  const core::PerfModel* model = nullptr;
  const core::AccessStreamGenerator* gen = nullptr;
};

/// A policy's verdict for one access.
struct AccessDecision {
  Location location = Location::kPfs;
  int storage_class = -1;  ///< local/remote class index, -1 for PFS
};

class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// One-time setup (plans, prestaging).  Returns the prestage duration in
  /// seconds added before training starts (0 for policies that overlap).
  virtual double setup(const SimContext& ctx) = 0;

  /// Whether this policy can run the workload at all (e.g. the LBANN data
  /// store requires the dataset to fit in aggregate RAM).
  [[nodiscard]] virtual bool supported(const SimContext& /*ctx*/,
                                       std::string* /*why*/) const {
    return true;
  }

  /// Hook at the start of each epoch (after epoch 0 some policies
  /// reorganize, e.g. locality-aware batch reordering).
  virtual void on_epoch_begin(const SimContext& /*ctx*/, int /*epoch*/) {}

  /// Policies that deviate from full-dataset randomization substitute the
  /// sample a worker would read: `local_index` is the worker's access index
  /// within the epoch; `def` is the fully-randomized default.
  [[nodiscard]] virtual data::SampleId remap(int /*worker*/, int /*epoch*/,
                                             std::uint64_t /*local_index*/,
                                             data::SampleId def) {
    return def;
  }

  /// Decides where worker reads `sample` from and updates cache state.
  /// `gamma_estimate` is the previous iteration's PFS client count (what a
  /// real runtime could estimate).
  [[nodiscard]] virtual AccessDecision on_access(const SimContext& ctx, int worker,
                                                 int epoch, data::SampleId sample,
                                                 int gamma_estimate) = 0;

  /// Batched decision dispatch: one virtual call per local batch instead of
  /// one per access.  `samples` is one worker's local batch in consumption
  /// order; decisions go to `out[i]` for `samples[i]`.  The default loops
  /// on_access(), so overriding is purely an optimization — implementations
  /// MUST produce exactly the decisions (and the same internal state
  /// mutations, in the same order) the per-sample loop would, so batched and
  /// per-sample runs stay bit-identical (DESIGN.md Sec. 6.3).
  virtual void on_access_batch(const SimContext& ctx, int worker, int epoch,
                               std::span<const data::SampleId> samples,
                               int gamma_estimate, std::span<AccessDecision> out) {
    for (std::size_t i = 0; i < samples.size(); ++i) {
      out[i] = on_access(ctx, worker, epoch, samples[i], gamma_estimate);
    }
  }

  /// Opt-in to batched dispatch.  The engine may only resolve a whole local
  /// batch via remap() before dispatching it when remap() does NOT read
  /// state that on_access() mutates within the same batch (DeepIO
  /// opportunistic is the counterexample).  That property cannot be checked
  /// mechanically, so the default is the safe per-sample interleaving —
  /// exactly the pre-batching engine — and each policy that satisfies the
  /// property declares it by overriding this to true.
  [[nodiscard]] virtual bool batchable() const { return false; }

  /// Fraction of the dataset read at least once over the whole run.
  [[nodiscard]] virtual double accessed_fraction(const SimContext& /*ctx*/) const {
    return 1.0;
  }

  /// False for strategies without prefetching (Naive): reads serialize with
  /// compute instead of filling the staging pipeline.
  [[nodiscard]] virtual bool overlapped() const { return true; }

  /// True for the no-I/O lower bound: all reads cost zero.
  [[nodiscard]] virtual bool zero_io() const { return false; }
};

/// Instantiates a policy by name:
///   perfect | naive | staging | deepio-ordered | deepio-opportunistic |
///   parallel-staging | lbann-dynamic | lbann-preload | locality-aware | nopfs
[[nodiscard]] std::unique_ptr<Policy> make_policy(const std::string& name);

/// All policy names in the Fig. 8 presentation order.
[[nodiscard]] std::vector<std::string> all_policy_names();

}  // namespace nopfs::sim
