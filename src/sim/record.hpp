#pragma once
// Opt-in run-recording seam of the simulator engine (DESIGN.md Sec. 9).
//
// A RunRecorder observes every priced access and every iteration barrier of
// one simulate() call — enough to rebuild the run's dependence DAG (fetch,
// staging-write, compute, allreduce edges and the pipeline/barrier joins)
// without re-deriving any model arithmetic: the engine hands over exactly
// the durations it charged.
//
// Contract:
//   * Observation only.  A recorder must never influence the run; the
//     engine passes values it has already committed to, so a recording run
//     is bit-identical to a non-recording run (pinned by
//     tests/test_critpath.cpp).
//   * Zero overhead when off.  SimConfig::recorder defaults to nullptr and
//     every hook site is a single pointer test; no recording state is
//     allocated.
//   * Not thread-safe.  One recorder per simulate() call; sweep cells that
//     share a SimConfig must leave the pointer null (the SweepRunner's
//     determinism contract assumes cells are pure).
//
// The canonical implementation is critpath::DepGraphBuilder
// (src/critpath/cp_dep_graph.hpp); sim/ deliberately knows only this
// interface so the dependency points from critpath into sim, never back.

#include "sim/sim_config.hpp"

namespace nopfs::sim {

/// Run-constant shape handed to begin_run(): everything a recorder needs to
/// mirror the engine's pipeline recurrence (DESIGN.md Sec. 4).
struct RunShape {
  int num_workers = 0;
  int staging_threads = 1;   ///< p0, the avail = cum_read / p0 denominator
  bool overlapped = true;    ///< false: reads serialize with compute (Naive)
  bool zero_io = false;      ///< true: all reads priced at zero (Perfect)
  double prestage_s = 0.0;   ///< upfront staging phase before epoch 0
  double allreduce_s = 0.0;  ///< per-iteration barrier cost
};

/// One priced access, exactly as the engine charged it.  For PFS fetches
/// `fetch_s` is already gamma-priced (t(gamma)/gamma of this iteration's
/// client count) — recorders see final durations, not model inputs.
struct AccessTrace {
  int worker = 0;
  Location location = Location::kPfs;
  int storage_class = -1;  ///< tier index for kLocal/kRemote, -1 otherwise
  double mb = 0.0;
  double fetch_s = 0.0;
  double write_s = 0.0;    ///< staging write of the preprocessed sample
  double compute_s = 0.0;
};

class RunRecorder {
 public:
  virtual ~RunRecorder() = default;

  /// Called once, after policy setup (prestage) and before epoch 0.
  virtual void begin_run(const RunShape& shape) = 0;

  virtual void begin_epoch(int epoch) = 0;

  /// Called once per access, in pricing order: all accesses of worker 0's
  /// local batch, then worker 1's, ... within each iteration.
  virtual void on_access(const AccessTrace& access) = 0;

  /// Called after each iteration's allreduce barrier; `barrier_s` is the
  /// engine's post-barrier clock (all workers aligned to it).
  virtual void end_iteration(double barrier_s) = 0;

  /// Called once with the finished result (recording changed nothing in it).
  virtual void end_run(const SimResult& result) = 0;
};

}  // namespace nopfs::sim
