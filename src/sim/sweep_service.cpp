#include "sim/sweep_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "net/transport.hpp"
#include "net/wire.hpp"
#include "sim/policies.hpp"

namespace nopfs::sim {

namespace {

namespace wire = net::wire;

/// Checkpoint file leader: "NPSW" + format version.
constexpr std::uint32_t kCheckpointMagic = 0x4E505357u;
constexpr std::uint32_t kCheckpointVersion = 1;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, 8); }

void fnv_f64(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  fnv_u64(h, bits);
}

void fnv_string(std::uint64_t& h, const std::string& s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

}  // namespace

std::uint64_t sweep_grid_signature(const std::vector<SweepPoint>& points) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, points.size());
  for (const SweepPoint& point : points) {
    fnv_string(h, point.policy);
    if (point.dataset != nullptr) {
      fnv_string(h, point.dataset->name());
      fnv_u64(h, point.dataset->num_samples());
      fnv_f64(h, point.dataset->total_mb());
    } else {
      fnv_u64(h, 0);
    }
    fnv_u64(h, point.config.seed);
    fnv_u64(h, static_cast<std::uint64_t>(point.config.num_epochs));
    fnv_u64(h, point.config.per_worker_batch);
    fnv_u64(h, static_cast<std::uint64_t>(point.config.system.num_workers));
    fnv_u64(h, point.config.drop_last ? 1 : 0);
    fnv_f64(h, point.config.allreduce_s);
    fnv_u64(h, point.config.uniform_compute ? 1 : 0);
  }
  return h;
}

std::uint64_t sweep_results_digest(const std::vector<SimResult>& results) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, results.size());
  for (const SimResult& result : results) {
    const std::vector<std::uint8_t> encoded = wire::encode_sim_result(result);
    fnv_u64(h, encoded.size());
    fnv_bytes(h, encoded.data(), encoded.size());
  }
  return h;
}

// ---------------------------------------------------------------------------
// SweepScheduler

SweepScheduler::SweepScheduler(std::uint64_t total_cells,
                               std::uint64_t grid_signature,
                               SweepServiceOptions options, int workers)
    : total_(total_cells),
      signature_(grid_signature),
      options_(std::move(options)),
      workers_(std::max(workers, 1)),
      results_(total_cells),
      completed_(total_cells, 0),
      last_pull_seq_(static_cast<std::size_t>(workers_), 0),
      last_result_seq_(static_cast<std::size_t>(workers_), 0) {}

std::uint64_t SweepScheduler::load_checkpoint() {
  if (options_.checkpoint_path.empty()) return 0;
  std::ifstream in(options_.checkpoint_path, std::ios::binary);
  if (!in) return 0;  // no checkpoint yet: fresh start
  const std::vector<std::uint8_t> raw(std::istreambuf_iterator<char>(in), {});
  wire::Reader reader(raw);
  if (reader.u32() != kCheckpointMagic) {
    throw std::runtime_error("sweep checkpoint: bad magic in " +
                             options_.checkpoint_path);
  }
  if (reader.u32() != kCheckpointVersion) {
    throw std::runtime_error("sweep checkpoint: unsupported version in " +
                             options_.checkpoint_path);
  }
  const std::uint64_t signature = reader.u64();
  const std::uint64_t total = reader.u64();
  if (signature != signature_ || total != total_) {
    throw std::runtime_error(
        "sweep checkpoint: " + options_.checkpoint_path +
        " belongs to a different grid (signature/cell-count mismatch)");
  }
  const std::uint64_t count = reader.u64();
  const std::scoped_lock lock(mutex_);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t idx = reader.u64();
    if (idx >= total_) {
      throw std::runtime_error("sweep checkpoint: cell index out of range");
    }
    SimResult result = wire::read_sim_result(reader);
    if (completed_[idx] != 0) continue;  // defensive: duplicate record
    results_[idx] = std::move(result);
    completed_[idx] = 1;
    ++completed_count_;
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error("sweep checkpoint: trailing bytes");
  }
  restored_ = completed_count_;
  last_checkpoint_at_ = completed_count_;
  return restored_;
}

bool SweepScheduler::interrupted_locked() const {
  return options_.interrupt_after_cells > 0 &&
         completed_count_ >= restored_ + options_.interrupt_after_cells;
}

SweepScheduler::Range SweepScheduler::grant() {
  const std::scoped_lock lock(mutex_);
  if (interrupted_locked() || completed_count_ == total_) return {};
  while (cursor_ < total_ && completed_[cursor_] != 0) ++cursor_;
  if (cursor_ < total_) {
    // Contiguous run of never-granted, not-completed cells at the cursor
    // (restored cells break runs and are never granted again).
    std::uint64_t run = 0;
    while (cursor_ + run < total_ && completed_[cursor_ + run] == 0) ++run;
    std::uint64_t pending = 0;  // not-completed cells still ungranted
    for (std::uint64_t i = cursor_; i < total_; ++i) {
      if (completed_[i] == 0) ++pending;
    }
    const std::uint64_t size = std::min<std::uint64_t>(
        sweep_grant_size(static_cast<std::size_t>(pending), workers_,
                         options_.min_grant),
        run);
    const Range range{cursor_, static_cast<std::uint32_t>(size)};
    cursor_ += size;
    outstanding_.push_back(range);
    return range;
  }
  // Tail: every cell is granted but some are outstanding.  Re-grant the
  // oldest outstanding range and rotate it to the back, so successive
  // pulls speculate on DIFFERENT straggler ranges.  Results are pure
  // functions of the cell, so the duplicate fold is idempotent — and the
  // grid drains even if the rank holding a range died.
  if (!outstanding_.empty()) {
    const Range range = outstanding_.front();
    outstanding_.erase(outstanding_.begin());
    outstanding_.push_back(range);
    return range;
  }
  return {};
}

void SweepScheduler::submit(std::uint64_t first,
                            std::vector<SimResult> results) {
  const std::scoped_lock lock(mutex_);
  if (first + results.size() > total_) {
    throw std::runtime_error("sweep service: result range out of bounds");
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::uint64_t idx = first + i;
    if (completed_[idx] != 0) {
      ++duplicates_;  // tail re-grant or duplicated frame: first write won
      continue;
    }
    results_[idx] = std::move(results[i]);
    completed_[idx] = 1;
    ++completed_count_;
  }
  // Drop outstanding ranges whose every cell completed.
  std::erase_if(outstanding_, [&](const Range& range) {
    for (std::uint64_t i = range.first; i < range.first + range.count; ++i) {
      if (completed_[i] == 0) return false;
    }
    return true;
  });
  if (!options_.checkpoint_path.empty() &&
      (completed_count_ - last_checkpoint_at_ >=
           std::max<std::uint64_t>(options_.checkpoint_every_cells, 1) ||
       completed_count_ == total_ || interrupted_locked())) {
    checkpoint_locked();
  }
}

bool SweepScheduler::advance_pull_seq(int from, std::uint32_t seq) {
  const std::scoped_lock lock(mutex_);
  if (from < 0 || from >= workers_) return false;
  std::uint32_t& last = last_pull_seq_[static_cast<std::size_t>(from)];
  if (seq <= last) return false;
  last = seq;
  return true;
}

bool SweepScheduler::advance_result_seq(int from, std::uint32_t seq) {
  const std::scoped_lock lock(mutex_);
  if (from < 0 || from >= workers_) return false;
  std::uint32_t& last = last_result_seq_[static_cast<std::size_t>(from)];
  if (seq <= last) return false;
  last = seq;
  return true;
}

bool SweepScheduler::done() const {
  const std::scoped_lock lock(mutex_);
  return completed_count_ == total_;
}

bool SweepScheduler::interrupted() const {
  const std::scoped_lock lock(mutex_);
  return interrupted_locked();
}

std::uint64_t SweepScheduler::completed_cells() const {
  const std::scoped_lock lock(mutex_);
  return completed_count_;
}

std::uint64_t SweepScheduler::duplicate_cells() const {
  const std::scoped_lock lock(mutex_);
  return duplicates_;
}

void SweepScheduler::checkpoint_now() {
  const std::scoped_lock lock(mutex_);
  if (options_.checkpoint_path.empty()) return;
  checkpoint_locked();
}

void SweepScheduler::checkpoint_locked() {
  std::vector<std::uint8_t> out;
  wire::put_u32(out, kCheckpointMagic);
  wire::put_u32(out, kCheckpointVersion);
  wire::put_u64(out, signature_);
  wire::put_u64(out, total_);
  wire::put_u64(out, completed_count_);
  for (std::uint64_t idx = 0; idx < total_; ++idx) {
    if (completed_[idx] == 0) continue;
    wire::put_u64(out, idx);
    wire::put_sim_result(out, results_[idx]);
  }
  // Atomic replace: a kill mid-write leaves the previous checkpoint (or
  // none), never a torn file.
  const std::string tmp = options_.checkpoint_path + ".tmp";
  {
    std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
    if (!file) {
      throw std::runtime_error("sweep checkpoint: cannot write " + tmp);
    }
    file.write(reinterpret_cast<const char*>(out.data()),
               static_cast<std::streamsize>(out.size()));
    if (!file) {
      throw std::runtime_error("sweep checkpoint: short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), options_.checkpoint_path.c_str()) != 0) {
    throw std::runtime_error("sweep checkpoint: rename to " +
                             options_.checkpoint_path + " failed");
  }
  last_checkpoint_at_ = completed_count_;
}

std::vector<SimResult> SweepScheduler::take_results() {
  const std::scoped_lock lock(mutex_);
  return std::move(results_);
}

// ---------------------------------------------------------------------------
// run_sweep_service

SweepServiceReport run_sweep_service(
    net::Transport* transport, std::uint64_t total_cells,
    const std::function<SimResult(std::uint64_t)>& evaluate,
    std::uint64_t grid_signature, const SweepServiceOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const int world = transport != nullptr ? transport->world_size() : 1;
  const int rank = transport != nullptr ? transport->rank() : 0;
  // Elastic worlds may hold late joiners with ranks >= world, so the
  // scheduler's per-sender seq guards are sized for the largest world the
  // transport may grow to; a solo elastic root still installs the service.
  const int max_workers = std::max(world, options.max_workers);
  const bool distributed = transport != nullptr && max_workers > 1;
  if (options.abandon_after_pulls > 0 && !options.elastic) {
    throw std::invalid_argument(
        "sweep service: abandon_after_pulls requires elastic (a dead worker "
        "cannot enter the completion barrier)");
  }

  SweepServiceReport report;
  report.stats.total_cells = total_cells;

  // Cells of one range run on the local guided thread-pool runner; the
  // service only decides WHICH rank runs them.
  const SweepRunner runner(SweepOptions{options.num_threads});
  const auto evaluate_range = [&](std::uint64_t first, std::uint32_t count) {
    return runner.run(count,
                      [&](std::size_t i) { return evaluate(first + i); });
  };

  if (rank == 0) {
    SweepScheduler scheduler(total_cells, grid_signature, options, max_workers);
    if (options.resume) {
      report.stats.restored_cells = scheduler.load_checkpoint();
    }
    if (distributed) {
      net::Transport::SweepService service;
      service.on_pull = [&scheduler](int from, net::Bytes pull)
          -> std::pair<bool, net::Bytes> {
        const wire::SweepPull request = wire::decode_sweep_pull(pull);
        if (!scheduler.advance_pull_seq(from, request.seq)) {
          // Stale or duplicated pull: answer done — the sender's live pull
          // (the one with the fresh seq) keeps its grid share moving.
          return {true, wire::encode_sweep_done({request.seq})};
        }
        const SweepScheduler::Range range = scheduler.grant();
        if (range.count == 0) {
          return {true, wire::encode_sweep_done({request.seq})};
        }
        return {false, wire::encode_sweep_grant(
                           {request.seq, range.first, range.count})};
      };
      service.on_result = [&scheduler](int from, net::Bytes payload) {
        wire::SweepResultBatch batch =
            wire::decode_sweep_result_batch(payload);
        if (!scheduler.advance_result_seq(from, batch.seq)) return;
        scheduler.submit(batch.first, std::move(batch.results));
      };
      transport->set_sweep_service(std::move(service));
    }
    // Rank 0 works the grid too, pulling straight from the scheduler.  At
    // the tail this loop re-executes outstanding remote ranges (grant()'s
    // speculation), so it exits only once the grid is fully drained — no
    // separate straggler wait is needed.
    for (;;) {
      const SweepScheduler::Range range = scheduler.grant();
      if (range.count == 0) break;
      std::vector<SimResult> results = evaluate_range(range.first, range.count);
      report.stats.executed_cells += range.count;
      scheduler.submit(range.first, std::move(results));
    }
    if (distributed) {
      if (options.elastic) {
        // An elastic world cannot barrier: a worker may have died holding
        // a grant (its cells were re-granted at the tail), and a late
        // joiner was never part of the collective count.  Completion
        // needs no barrier here — the grant loop above exits only once
        // every cell is folded — but a straggler's in-flight pull must
        // still be answered, so swap in a capture-free done-stub instead
        // of withdrawing the service.
        net::Transport::SweepService stub;
        stub.on_pull = [](int, net::Bytes pull) -> std::pair<bool, net::Bytes> {
          const wire::SweepPull request = wire::decode_sweep_pull(pull);
          return {true, wire::encode_sweep_done({request.seq})};
        };
        stub.on_result = [](int, net::Bytes) {};
        transport->set_sweep_service(std::move(stub));
      } else {
        // Workers only enter the barrier after their pull answered done,
        // and a done reply orders AFTER the sender's prior result frames
        // on the same channel — so barrier completion implies every
        // remote result has been folded.
        transport->barrier();
        transport->set_sweep_service({});
      }
    }
    scheduler.checkpoint_now();
    report.stats.interrupted = scheduler.interrupted();
    report.stats.completed_cells = scheduler.completed_cells();
    report.stats.duplicate_cells = scheduler.duplicate_cells();
    report.results = scheduler.take_results();
  } else {
    std::uint32_t pull_seq = 0;
    std::uint32_t result_seq = 0;
    int completed_pulls = 0;
    for (;;) {
      const auto reply =
          transport->sweep_pull(wire::encode_sweep_pull({++pull_seq}));
      if (!reply.has_value()) {
        // Rank 0 unreachable.  In an elastic world that is an expected
        // membership event (the sweep finished and rank 0 moved on);
        // everything this worker computed has already been pushed.
        if (options.elastic) break;
        throw std::runtime_error("sweep service: lost rank 0 mid-sweep");
      }
      if (reply->first) break;  // kSweepDone
      if (options.abandon_after_pulls > 0 &&
          completed_pulls >= options.abandon_after_pulls) {
        // Scripted mid-sweep death: this grant is never evaluated or
        // reported — rank 0's tail re-grants recover its cells, and the
        // results digest must come out bit-identical regardless.
        break;
      }
      const wire::SweepGrant grant = wire::decode_sweep_grant(reply->second);
      wire::SweepResultBatch batch;
      batch.seq = ++result_seq;
      batch.first = grant.first;
      batch.results = evaluate_range(grant.first, grant.count);
      report.stats.executed_cells += grant.count;
      transport->sweep_push_result(wire::encode_sweep_result_batch(batch));
      ++completed_pulls;
    }
    if (!options.elastic) transport->barrier();
  }
  report.stats.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

SweepServiceReport run_sweep_service(net::Transport* transport,
                                     const std::vector<SweepPoint>& points,
                                     const SweepServiceOptions& options) {
  return run_sweep_service(
      transport, points.size(),
      [&points](std::uint64_t i) {
        const SweepPoint& point = points[static_cast<std::size_t>(i)];
        if (point.dataset == nullptr) {
          throw std::invalid_argument("sweep service: point has no dataset");
        }
        const auto policy = make_policy(point.policy);
        // Same cell semantics as SweepRunner::run(points): shared epoch
        // permutations, fresh policy per cell — bit-identical output.
        SimConfig config = point.config;
        config.share_epoch_orders = true;
        return simulate(config, *point.dataset, *policy);
      },
      sweep_grid_signature(points), options);
}

}  // namespace nopfs::sim
