#include "data/dataset.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "util/units.hpp"

namespace nopfs::data {

Dataset Dataset::synthetic(const DatasetSpec& spec, std::uint64_t seed) {
  if (spec.num_samples == 0) throw std::invalid_argument("Dataset: num_samples == 0");
  if (spec.mean_size_mb <= 0.0) throw std::invalid_argument("Dataset: mean_size_mb <= 0");
  std::vector<float> sizes;
  sizes.reserve(spec.num_samples);
  // Stream 0 of the seed is reserved for dataset generation so that the
  // access-stream PRNG (stream >= 1) never aliases it.
  util::Rng rng = util::Rng::for_stream(seed, 0);
  for (std::uint64_t k = 0; k < spec.num_samples; ++k) {
    double size = spec.stddev_size_mb == 0.0
                      ? spec.mean_size_mb
                      : rng.normal(spec.mean_size_mb, spec.stddev_size_mb);
    size = std::max(size, spec.min_size_mb);
    sizes.push_back(static_cast<float>(size));
  }
  return Dataset(spec.name, std::move(sizes), spec.num_classes);
}

Dataset::Dataset(std::string name, std::vector<float> sizes_mb, std::uint32_t num_classes)
    : name_(std::move(name)),
      sizes_mb_(std::move(sizes_mb)),
      num_classes_(num_classes == 0 ? 1 : num_classes) {
  if (sizes_mb_.empty()) throw std::invalid_argument("Dataset: no samples");
  total_mb_ = std::accumulate(sizes_mb_.begin(), sizes_mb_.end(), 0.0,
                              [](double acc, float s) { return acc + static_cast<double>(s); });
}

double Dataset::mean_size_mb() const noexcept {
  return total_mb_ / static_cast<double>(sizes_mb_.size());
}

namespace presets {

DatasetSpec mnist() {
  DatasetSpec spec;
  spec.name = "mnist";
  spec.num_samples = 50'000;
  spec.mean_size_mb = 0.76 * util::kKB;
  spec.stddev_size_mb = 0.0;
  spec.num_classes = 10;
  spec.min_size_mb = 0.1 * util::kKB;
  return spec;
}

DatasetSpec imagenet1k() {
  DatasetSpec spec;
  spec.name = "imagenet1k";
  spec.num_samples = 1'281'167;
  spec.mean_size_mb = 0.1077;
  spec.stddev_size_mb = 0.1;
  spec.num_classes = 1'000;
  return spec;
}

DatasetSpec openimages() {
  DatasetSpec spec;
  spec.name = "openimages";
  spec.num_samples = 1'743'042;
  spec.mean_size_mb = 0.2937;
  spec.stddev_size_mb = 0.2;
  spec.num_classes = 600;
  return spec;
}

DatasetSpec imagenet22k() {
  DatasetSpec spec;
  spec.name = "imagenet22k";
  spec.num_samples = 14'197'122;
  spec.mean_size_mb = 0.1077;
  spec.stddev_size_mb = 0.2;
  spec.num_classes = 21'841;
  return spec;
}

DatasetSpec cosmoflow() {
  DatasetSpec spec;
  spec.name = "cosmoflow";
  spec.num_samples = 262'144;
  // 128^3 voxels x 4 channels x 2 bytes = 16.78 MB ("17 MB" in the paper).
  spec.mean_size_mb = 17.0;
  spec.stddev_size_mb = 0.0;
  spec.num_classes = 1;
  return spec;
}

DatasetSpec cosmoflow512() {
  DatasetSpec spec;
  spec.name = "cosmoflow512";
  spec.num_samples = 10'000;
  spec.mean_size_mb = 1'000.0;
  spec.stddev_size_mb = 0.0;
  spec.num_classes = 1;
  return spec;
}

DatasetSpec by_name(const std::string& name) {
  if (name == "mnist") return mnist();
  if (name == "imagenet1k") return imagenet1k();
  if (name == "openimages") return openimages();
  if (name == "imagenet22k") return imagenet22k();
  if (name == "cosmoflow") return cosmoflow();
  if (name == "cosmoflow512") return cosmoflow512();
  throw std::invalid_argument("unknown dataset preset: " + name);
}

std::vector<std::string> all_names() {
  return {"mnist", "imagenet1k", "openimages", "imagenet22k", "cosmoflow", "cosmoflow512"};
}

}  // namespace presets

}  // namespace nopfs::data
