#pragma once
// On-disk dataset materialization.
//
// The filesystem storage backend and the end-to-end integration tests need
// real files.  The materializer writes an ImageFolder-style layout
// (<root>/<class>/<sample>.bin) with deterministic per-sample content so
// that any read anywhere in the pipeline can be verified byte-for-byte:
// byte b of sample k equals sample_byte(k, b).

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace nopfs::data {

/// Deterministic content byte b of sample k (verifiable reads).
[[nodiscard]] constexpr std::uint8_t sample_byte(SampleId k, std::uint64_t b) noexcept {
  // Cheap mix of sample id and offset; constexpr so tests can table it.
  std::uint64_t x = k * 0x9e3779b97f4a7c15ULL + b * 0xbf58476d1ce4e5b9ULL + 0x1234567ULL;
  x ^= x >> 29;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 32;
  return static_cast<std::uint8_t>(x);
}

/// Fills `out` with the deterministic content of sample k.
void fill_sample_content(SampleId k, std::span<std::uint8_t> out) noexcept;

/// Returns true iff `bytes` matches the deterministic content of sample k.
[[nodiscard]] bool verify_sample_content(SampleId k, std::span<const std::uint8_t> bytes) noexcept;

/// A dataset written to a directory tree, one file per sample.
class MaterializedDataset {
 public:
  /// Writes every sample of `dataset` under `root` (created if missing) in
  /// ImageFolder layout.  Intended for small datasets (tests, examples);
  /// throws std::runtime_error on I/O failure.
  MaterializedDataset(const Dataset& dataset, std::filesystem::path root);

  /// Non-copyable (owns the directory tree while alive).
  MaterializedDataset(const MaterializedDataset&) = delete;
  MaterializedDataset& operator=(const MaterializedDataset&) = delete;

  /// Removes the directory tree unless `keep()` was called.
  ~MaterializedDataset();

  /// Path of sample k's file.
  [[nodiscard]] const std::filesystem::path& path_of(SampleId k) const {
    return paths_.at(k);
  }

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }
  [[nodiscard]] std::uint64_t num_samples() const noexcept { return paths_.size(); }

  /// Reads sample k's file fully into a buffer.
  [[nodiscard]] std::vector<std::uint8_t> read(SampleId k) const;

  /// Keeps the directory tree on destruction (for examples that want to
  /// inspect the output).
  void keep() noexcept { keep_ = true; }

 private:
  std::filesystem::path root_;
  std::vector<std::filesystem::path> paths_;
  bool keep_ = false;
};

}  // namespace nopfs::data
