#pragma once
// Dataset model.
//
// An I/O middleware sees a training dataset as a collection of F files with
// sizes s_k (paper Tab. 2); nothing else about the samples matters for I/O.
// The paper's simulator draws file sizes from a normal distribution with
// per-dataset (mu, sigma) and we reproduce exactly that, including presets
// for the six datasets in the evaluation: MNIST, ImageNet-1k, OpenImages,
// ImageNet-22k, CosmoFlow and CosmoFlow-512^3.
//
// Sizes are stored as float MB to keep multi-million-sample datasets cheap
// (ImageNet-22k has 14.2M samples).

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace nopfs::data {

/// Identifier of a sample within its dataset: the index in [0, F).
using SampleId = std::uint64_t;

/// Description of one synthetic dataset family (paper Sec. 6.1 scenarios).
struct DatasetSpec {
  std::string name;          ///< e.g. "imagenet1k"
  std::uint64_t num_samples = 0;  ///< F
  double mean_size_mb = 0.0;      ///< mu
  double stddev_size_mb = 0.0;    ///< sigma
  std::uint32_t num_classes = 1;  ///< for ImageFolder-style layouts
  double min_size_mb = 1.0 / 1024.0;  ///< truncation floor (1 KB)
};

/// An immutable training dataset: F samples with known sizes.
class Dataset {
 public:
  /// Generates per-sample sizes from spec (normal, truncated at
  /// spec.min_size_mb) using a deterministic stream derived from `seed`.
  static Dataset synthetic(const DatasetSpec& spec, std::uint64_t seed);

  /// Dataset with explicitly given sizes (tests, real directory scans).
  Dataset(std::string name, std::vector<float> sizes_mb, std::uint32_t num_classes = 1);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t num_samples() const noexcept { return sizes_mb_.size(); }
  [[nodiscard]] std::uint32_t num_classes() const noexcept { return num_classes_; }

  /// Size of sample k in MB.
  [[nodiscard]] double size_mb(SampleId k) const { return sizes_mb_.at(k); }

  /// Total dataset size S in MB.
  [[nodiscard]] double total_mb() const noexcept { return total_mb_; }

  /// Mean sample size S/F in MB.
  [[nodiscard]] double mean_size_mb() const noexcept;

  /// Class of sample k (deterministic, ImageFolder-style partition).
  [[nodiscard]] std::uint32_t class_of(SampleId k) const noexcept {
    return static_cast<std::uint32_t>(k % num_classes_);
  }

  [[nodiscard]] const std::vector<float>& sizes() const noexcept { return sizes_mb_; }

 private:
  std::string name_;
  std::vector<float> sizes_mb_;
  std::uint32_t num_classes_ = 1;
  double total_mb_ = 0.0;
};

/// Paper dataset presets (Sec. 6.1 "Scenario" parameters and Sec. 7 datasets).
namespace presets {
/// MNIST: F=50,000, mu=0.76 KB, sigma=0 (~40 MB).
[[nodiscard]] DatasetSpec mnist();
/// ImageNet-1k: F=1,281,167, mu=0.1077 MB, sigma=0.1 (~135 GB), 1000 classes.
[[nodiscard]] DatasetSpec imagenet1k();
/// OpenImages: F=1,743,042, mu=0.2937 MB, sigma=0.2 (~500 GB).
[[nodiscard]] DatasetSpec openimages();
/// ImageNet-22k: F=14,197,122, mu=0.1077 MB, sigma=0.2 (~1.5 TB), 21841 classes.
[[nodiscard]] DatasetSpec imagenet22k();
/// CosmoFlow: F=262,144, 16.78 MB fixed-size 128^3x4 int16 samples (~4 TB).
[[nodiscard]] DatasetSpec cosmoflow();
/// CosmoFlow 512^3: F=10,000, 1000 MB fixed-size samples (~10 TB).
[[nodiscard]] DatasetSpec cosmoflow512();

/// Looks a preset up by name; throws std::invalid_argument for unknown names.
[[nodiscard]] DatasetSpec by_name(const std::string& name);

/// All preset names in evaluation order.
[[nodiscard]] std::vector<std::string> all_names();
}  // namespace presets

}  // namespace nopfs::data
