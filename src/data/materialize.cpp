#include "data/materialize.hpp"

#include <fstream>
#include <stdexcept>
#include <system_error>

#include "util/log.hpp"
#include "util/units.hpp"

namespace nopfs::data {

void fill_sample_content(SampleId k, std::span<std::uint8_t> out) noexcept {
  for (std::uint64_t b = 0; b < out.size(); ++b) out[b] = sample_byte(k, b);
}

bool verify_sample_content(SampleId k, std::span<const std::uint8_t> bytes) noexcept {
  for (std::uint64_t b = 0; b < bytes.size(); ++b) {
    if (bytes[b] != sample_byte(k, b)) return false;
  }
  return true;
}

MaterializedDataset::MaterializedDataset(const Dataset& dataset, std::filesystem::path root)
    : root_(std::move(root)) {
  namespace fs = std::filesystem;
  fs::create_directories(root_);
  paths_.reserve(dataset.num_samples());
  std::vector<std::uint8_t> buffer;
  for (SampleId k = 0; k < dataset.num_samples(); ++k) {
    const fs::path class_dir = root_ / ("class_" + std::to_string(dataset.class_of(k)));
    if (k < dataset.num_classes()) fs::create_directories(class_dir);
    fs::path file = class_dir / ("sample_" + std::to_string(k) + ".bin");
    const auto bytes = util::mb_to_bytes(dataset.size_mb(k));
    buffer.resize(bytes);
    fill_sample_content(k, buffer);
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("materialize: cannot open " + file.string());
    out.write(reinterpret_cast<const char*>(buffer.data()),
              static_cast<std::streamsize>(buffer.size()));
    if (!out) throw std::runtime_error("materialize: short write to " + file.string());
    paths_.push_back(std::move(file));
  }
  util::log_debug("materialized ", dataset.num_samples(), " samples under ", root_.string());
}

MaterializedDataset::~MaterializedDataset() {
  if (keep_) return;
  std::error_code ec;
  std::filesystem::remove_all(root_, ec);
  if (ec) util::log_warn("materialize: cleanup of ", root_.string(), " failed: ", ec.message());
}

std::vector<std::uint8_t> MaterializedDataset::read(SampleId k) const {
  const auto& path = paths_.at(k);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("materialize: cannot open " + path.string());
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("materialize: short read from " + path.string());
  return bytes;
}

}  // namespace nopfs::data
