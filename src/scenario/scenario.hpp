#pragma once
// Named scenario registry (DESIGN.md Sec. 8).
//
// The paper organizes its evaluation around a fixed set of system/dataset
// scenarios (the Sec. 6.1 regime studies, the ImageNet/CosmoFlow scaling
// figures, the runtime cross-checks).  Historically every bench and test
// re-declared its own near-identical mini-system (`worker_config`,
// `mini_system`, `contention_config`, per-figure `system_factory` lambdas).
// This module hoists them into ONE registry mapping a string name to a full
// run specification, consumed by three kinds of clients:
//
//   * per-figure benches build simulator configs via sim_config()/sim_dataset()
//     (bit-identical to the structs they used to declare locally — pinned by
//     tests/test_scenario.cpp golden digests);
//   * the runtime tests and examples/nopfs_worker build harness configs via
//     runtime_config()/worker_dataset() (the `--scenario NAME` CLI surface);
//   * CI enumerates names() to run the scenario smoke matrix, and validate()
//     makes an unbuildable or inconsistent entry fail the PR in one ctest.
//
// Naming convention: `<figure|study>-<subject>[-<variant>]`, lower-case
// kebab, e.g. "fig10-imagenet1k", "fig10-imagenet1k-lassen",
// "contention-pfs".  Adding a scenario = one make_*() entry in
// scenario.cpp; validate() (run by test_scenario and CI) checks it resolves,
// its policies exist, and its worker projection stays loopback-runnable.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "baselines/loader.hpp"
#include "data/dataset.hpp"
#include "runtime/harness.hpp"
#include "scenario/fault_plan.hpp"
#include "sim/sim_config.hpp"
#include "sim/sweep.hpp"
#include "tiers/params.hpp"

namespace nopfs::scenario {

/// Builds the (unscaled) system for a worker/GPU count.
using SystemFactory = std::function<tiers::SystemParams(int num_workers)>;

/// One loader line of a figure or cross-check: the presentation label, the
/// simulator policy behind it, the runtime LoaderKind (for consumers that
/// drive the real harness), and the preprocessing multiplier (DALI's
/// GPU-offloaded pipeline).  Historically every bench hardcoded these
/// triples next to its tables; the registry now carries them so a scenario
/// is runnable from any CLI without per-binary knowledge.
struct LoaderLine {
  std::string label;
  std::string policy;
  baselines::LoaderKind kind = baselines::LoaderKind::kNoPFS;
  double preprocess_mult = 1.0;
};

/// Run shape of the simulator view: what a figure's grid iterates over and
/// the knobs every cell shares.
struct SimShape {
  std::vector<std::string> policies;        ///< sim::make_policy names
  std::vector<int> gpu_counts = {4};        ///< figure x-axis; front() = default N
  std::vector<std::uint64_t> batch_sizes;   ///< batch sweep; empty = {per_worker_batch}
  int epochs = 3;
  int quick_epochs = 0;                     ///< epochs under --quick (0 = same)
  std::uint64_t per_worker_batch = 32;
  std::uint64_t seed = 0xC0FFEE;
  double default_scale = 1.0;               ///< bench default dataset+capacity scale
  double quick_scale = 1.0 / 8.0;           ///< scale under --quick
  std::uint64_t min_samples = 0;            ///< clamp after scaling (0 = none)
  double compute_mbps = 0.0;                ///< override c (0 = system preset)
  double preprocess_mbps = 0.0;             ///< override beta (0 = system preset)
  /// Loader presentation list of the scaling figures (label + policy +
  /// preprocess multiplier per line).  Empty = one line per `policies`
  /// entry, labelled by the policy name.
  std::vector<LoaderLine> loaders;
};

/// Runtime-harness projection: the miniature shape the scenario runs at in
/// real time — the worker CLI (single- or multi-process) and the
/// distributed/contention tests.  Shapes must stay loopback-smoke scale
/// (seconds, not hours); validate() enforces it.
struct WorkerShape {
  /// Miniature system for the harness.  Null = loopback_system(world_size),
  /// the standard shrink (0.5 MB staging, 16/32 MB tiers, slow PFS).
  SystemFactory system;
  data::DatasetSpec dataset{"worker", 96, 0.2, 0.05};
  std::uint64_t dataset_seed = 5;
  baselines::LoaderKind loader = baselines::LoaderKind::kNoPFS;
  int world_size = 2;
  int epochs = 2;
  std::uint64_t per_worker_batch = 4;
  std::uint64_t seed = 2025;
  double time_scale = 50.0;
  int loader_threads = 2;
  int lookahead = 8;
  bool use_remote = true;  ///< RouterOptions::use_remote
  /// Batched gamma-gossip shape (RuntimeConfig::pfs_gossip); defaults to
  /// GossipConfig's own batched defaults.
  net::GossipConfig gossip;
  /// Weight gamma by reader-thread fan-out (RuntimeConfig::
  /// pfs_thread_weighted_gamma).
  bool thread_weighted_gamma = false;
  /// Runtime loader presentation list (label + LoaderKind + matching sim
  /// policy) for cross-check consumers like bench_runtime_validation.
  /// Empty = just `loader`.
  std::vector<LoaderLine> loaders;
  /// Scripted fault injection (fault_plan.hpp): straggler skew, dropped
  /// connections, PFS bursts, elastic membership.  Empty (the default)
  /// injects nothing; validate() checks the plan against world_size.
  FaultPlan faults;
  /// Reactor backend for the multi-process projection ("auto", "epoll",
  /// "io_uring").  "auto" — the default every scenario keeps — lets the
  /// worker CLI and NOPFS_REACTOR choose, so the CI matrix can sweep
  /// backends without per-scenario pins; validate() checks it parses.
  std::string reactor = "auto";
};

/// One named scenario: a full run specification.
struct Scenario {
  std::string name;
  std::string summary;     ///< one line for --list-scenarios / docs
  SystemFactory system;    ///< simulator-view system (unscaled, paper shape)
  data::DatasetSpec dataset;  ///< simulator-view dataset (paper scale)
  SimShape sim;
  WorkerShape worker;
  /// Who runs this entry beyond the implicit pair every scenario gets
  /// (`nopfs_worker --scenario` and the CI scenario matrix): bench binaries,
  /// test files, CI legs.  Registry data, not prose, so the generated
  /// docs/SCENARIOS.md can never drift from it; validate() requires at
  /// least one entry.
  std::vector<std::string> consumers;
};

/// The registry, built once (thread-safe since C++11 statics).
[[nodiscard]] const std::map<std::string, Scenario>& registry();

/// Looks a scenario up; throws std::invalid_argument listing all names on a
/// miss so a CLI typo is self-diagnosing.
[[nodiscard]] const Scenario& get(const std::string& name);

/// All registered names, sorted.
[[nodiscard]] std::vector<std::string> names();

/// Validates one entry; returns human-readable problems (empty = valid).
[[nodiscard]] std::vector<std::string> validate(const Scenario& scenario);

/// Validates every registry entry (the CI scenario gate).
[[nodiscard]] std::vector<std::string> validate();

/// The generated scenario reference (docs/SCENARIOS.md): one markdown table
/// row per registry entry, derived entirely from registry data.  Emitted by
/// `nopfs_worker --list-scenarios --markdown`; the doc-sync CI step
/// regenerates the file and fails on any diff, so the committed copy can
/// never rot.  Deterministic output (sorted entries, fixed formatting).
void write_markdown_reference(std::ostream& out);

// --- shared scaling helpers (hoisted from bench_common.hpp) ----------------

/// Scales a dataset spec's sample count (sizes untouched, >= 1000 floor).
[[nodiscard]] data::DatasetSpec scaled_spec(data::DatasetSpec spec, double factor);

/// Scales all node storage capacities (staging included) by `factor`.
void scale_capacities(tiers::SystemParams& system, double factor);

/// The scale a bench run uses: 1.0 with --full, sim.quick_scale with
/// --quick, sim.default_scale otherwise.
[[nodiscard]] double pick_scale(const Scenario& scenario, bool quick, bool full);

/// The epoch count a bench run uses (sim.quick_epochs under --quick).
[[nodiscard]] int pick_epochs(const Scenario& scenario, bool quick);

/// The standard loopback miniature of the Sec. 6.1 cluster: the shape every
/// real-time harness consumer uses unless its scenario declares its own.
[[nodiscard]] tiers::SystemParams loopback_system(int num_workers,
                                                  double staging_mb = 0.5);

// --- simulator view --------------------------------------------------------

/// System for `gpus` workers at `scale`: factory output, capacities scaled,
/// compute/preprocess overrides applied — exactly the construction order the
/// per-figure benches used before the registry (bit-identical contract).
[[nodiscard]] tiers::SystemParams sim_system(const Scenario& scenario, int gpus,
                                             double scale);

/// Full simulator config for one grid cell (seed from the CLI; the
/// registered sim.seed is the default).
[[nodiscard]] sim::SimConfig sim_config(const Scenario& scenario, int gpus,
                                        double scale, std::uint64_t seed);

/// The scenario's dataset at `scale` (min_samples clamp applied).
[[nodiscard]] data::Dataset sim_dataset(const Scenario& scenario, double scale,
                                        std::uint64_t seed);

/// The scenario's full sweep grid as SweepPoints over `dataset`, in the
/// canonical cell order every sweep consumer shares (gpu outer ->
/// batch-size middle -> policy inner; an empty sim.batch_sizes means one
/// batch, sim.per_worker_batch — making the order bit-compatible with the
/// historical policy-inner grids like bench_micro_core's).  The flat index
/// of a cell is the sweep service's unit of distribution, so this ordering
/// is part of the determinism contract (DESIGN.md Sec. 10): every rank must
/// derive the SAME grid from the same scenario/scale/seed.  `dataset` must
/// outlive the returned points (they hold a pointer).
[[nodiscard]] std::vector<sim::SweepPoint> sweep_points(const Scenario& scenario,
                                                        const data::Dataset& dataset,
                                                        double scale,
                                                        std::uint64_t seed);

/// The scaling-figure loader lines: sim.loaders, or (when a scenario
/// declares none) one line per sim policy labelled by the policy name.
[[nodiscard]] std::vector<LoaderLine> sim_loaders(const Scenario& scenario);

// --- runtime view ----------------------------------------------------------

/// Harness config from the worker shape.  `world_size` 0 = the registered
/// shape's world size.
[[nodiscard]] runtime::RuntimeConfig runtime_config(const Scenario& scenario,
                                                    int world_size = 0);

/// The miniature dataset of the worker shape.
[[nodiscard]] data::Dataset worker_dataset(const Scenario& scenario);
/// Same with an explicit generation seed (benches honouring --seed).
[[nodiscard]] data::Dataset worker_dataset(const Scenario& scenario,
                                           std::uint64_t seed);

}  // namespace nopfs::scenario
