// Generated scenario reference (docs/SCENARIOS.md).
//
// The table below is derived ENTIRELY from registry data — shapes, scales,
// policies and consumers all live on the Scenario structs — so the committed
// markdown can only rot if someone edits it by hand, which the doc-sync CI
// step catches by regenerating and diffing.

#include <ostream>
#include <sstream>

#include "scenario/scenario.hpp"

namespace nopfs::scenario {

namespace {

/// %g-style compact double ("0.0625", "1", "200").
std::string num(double value) {
  std::ostringstream out;
  out << value;
  return out.str();
}

/// Markdown table cells must not contain raw pipes.
std::string cell(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '|') out += "\\|";
    else out += c;
  }
  return out;
}

std::string join(const std::vector<std::string>& items, const char* sep) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += sep;
    out += item;
  }
  return out;
}

std::string int_list(const std::vector<int>& values) {
  std::string out;
  for (const int v : values) {
    if (!out.empty()) out += "/";
    out += std::to_string(v);
  }
  return out;
}

std::string sim_shape(const Scenario& s) {
  std::ostringstream out;
  out << int_list(s.sim.gpu_counts) << " GPUs x " << s.sim.epochs << " ep x b"
      << s.sim.per_worker_batch;
  if (!s.sim.batch_sizes.empty()) {
    out << " (batch sweep";
    for (const std::uint64_t b : s.sim.batch_sizes) out << " " << b;
    out << ")";
  }
  out << ", " << num(static_cast<double>(s.dataset.num_samples) / 1000.0)
      << "k samples";
  return out.str();
}

std::string scales(const Scenario& s) {
  std::ostringstream out;
  out << num(s.sim.default_scale);
  if (s.sim.quick_scale != s.sim.default_scale) {
    out << " (quick " << num(s.sim.quick_scale) << ")";
  }
  return out.str();
}

std::string worker_shape(const Scenario& s) {
  std::ostringstream out;
  out << s.worker.world_size << " ranks x " << s.worker.epochs << " ep x b"
      << s.worker.per_worker_batch << ", "
      << baselines::loader_kind_name(s.worker.loader) << " loader";
  return out.str();
}

}  // namespace

void write_markdown_reference(std::ostream& out) {
  const auto& entries = registry();
  out << "# Scenario reference\n";
  out << "\n";
  out << "<!-- GENERATED FILE — do not edit by hand.\n";
  out << "     Regenerate: ./build/nopfs_worker --list-scenarios --markdown "
         "> docs/SCENARIOS.md\n";
  out << "     The doc-sync CI step regenerates this table and fails the PR "
         "on any diff. -->\n";
  out << "\n";
  out << "All " << entries.size()
      << " entries of the named scenario registry (`src/scenario/`, "
         "DESIGN.md Sec. 8).\n";
  out << "Every scenario is runnable as `nopfs_worker --scenario <name>` and "
         "smoke-tested by the CI scenario matrix; the *consumers* column "
         "lists who else builds on it (bench binaries, test files, "
         "dedicated CI legs).\n";
  out << "Scales are dataset/capacity factors relative to the paper shape "
         "(`--quick` uses the quick scale).\n";
  out << "\n";
  out << "| Name | Summary | Policies | Sim shape | Scale | Worker shape | "
         "Consumers |\n";
  out << "|---|---|---|---|---|---|---|\n";
  for (const auto& [name, s] : entries) {
    out << "| `" << name << "` | " << cell(s.summary) << " | "
        << cell(join(s.sim.policies, ", ")) << " | " << cell(sim_shape(s))
        << " | " << cell(scales(s)) << " | " << cell(worker_shape(s)) << " | "
        << cell(join(s.consumers, ", ")) << " |\n";
  }
}

}  // namespace nopfs::scenario
