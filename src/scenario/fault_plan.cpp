#include "scenario/fault_plan.hpp"

#include <stdexcept>

#include "net/wire.hpp"

namespace nopfs::scenario {

double FaultPlan::straggler_factor(int rank) const {
  double factor = 1.0;
  for (const auto& s : stragglers) {
    if (s.rank == rank) factor *= s.factor;
  }
  return factor;
}

bool FaultPlan::connection_down(int rank, double virtual_s) const {
  for (const auto& d : drops) {
    if (d.rank == rank && virtual_s >= d.start_s && virtual_s < d.end_s) {
      return true;
    }
  }
  return false;
}

double FaultPlan::pfs_derate(double virtual_s) const {
  double derate = 1.0;
  for (const auto& b : pfs_bursts) {
    if (virtual_s >= b.start_s && virtual_s < b.end_s && b.derate > derate) {
      derate = b.derate;
    }
  }
  return derate;
}

std::vector<std::string> validate_fault_plan(const FaultPlan& plan,
                                             int world_size) {
  std::vector<std::string> problems;
  auto bad = [&problems](std::string what) { problems.push_back(std::move(what)); };
  for (const auto& s : plan.stragglers) {
    if (s.rank < 0 || s.rank >= world_size) bad("straggler rank out of world");
    if (!(s.factor >= 1.0)) bad("straggler factor must be >= 1");
  }
  for (const auto& d : plan.drops) {
    if (d.rank < 0 || d.rank >= world_size) bad("drop rank out of world");
    if (!(d.start_s >= 0.0) || !(d.end_s > d.start_s)) bad("drop window empty");
  }
  for (const auto& b : plan.pfs_bursts) {
    if (!(b.start_s >= 0.0) || !(b.end_s > b.start_s)) bad("pfs burst window empty");
    if (!(b.derate >= 1.0)) bad("pfs burst derate must be >= 1");
  }
  for (const auto& m : plan.membership) {
    if (m.rank < 0) bad("membership rank negative");
    if (!(m.join_s >= 0.0)) bad("membership join time negative");
    if (m.leave_s >= 0.0 && m.leave_s < m.join_s) bad("membership leaves before joining");
  }
  return problems;
}

std::vector<std::uint8_t> encode_fault_plan(const FaultPlan& plan) {
  using namespace net::wire;
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(plan.stragglers.size()));
  for (const auto& s : plan.stragglers) {
    put_i32(out, s.rank);
    put_f64(out, s.factor);
  }
  put_u32(out, static_cast<std::uint32_t>(plan.drops.size()));
  for (const auto& d : plan.drops) {
    put_i32(out, d.rank);
    put_f64(out, d.start_s);
    put_f64(out, d.end_s);
  }
  put_u32(out, static_cast<std::uint32_t>(plan.pfs_bursts.size()));
  for (const auto& b : plan.pfs_bursts) {
    put_f64(out, b.start_s);
    put_f64(out, b.end_s);
    put_f64(out, b.derate);
  }
  put_u32(out, static_cast<std::uint32_t>(plan.membership.size()));
  for (const auto& m : plan.membership) {
    put_i32(out, m.rank);
    put_f64(out, m.join_s);
    put_f64(out, m.leave_s);
  }
  return out;
}

FaultPlan decode_fault_plan(const std::vector<std::uint8_t>& bytes) {
  net::wire::Reader r(bytes);
  FaultPlan plan;
  const std::uint32_t num_stragglers = r.u32();
  plan.stragglers.reserve(num_stragglers);
  for (std::uint32_t i = 0; i < num_stragglers; ++i) {
    FaultPlan::Straggler s;
    s.rank = r.i32();
    s.factor = r.f64();
    plan.stragglers.push_back(s);
  }
  const std::uint32_t num_drops = r.u32();
  plan.drops.reserve(num_drops);
  for (std::uint32_t i = 0; i < num_drops; ++i) {
    FaultPlan::Drop d;
    d.rank = r.i32();
    d.start_s = r.f64();
    d.end_s = r.f64();
    plan.drops.push_back(d);
  }
  const std::uint32_t num_bursts = r.u32();
  plan.pfs_bursts.reserve(num_bursts);
  for (std::uint32_t i = 0; i < num_bursts; ++i) {
    FaultPlan::PfsBurst b;
    b.start_s = r.f64();
    b.end_s = r.f64();
    b.derate = r.f64();
    plan.pfs_bursts.push_back(b);
  }
  const std::uint32_t num_membership = r.u32();
  plan.membership.reserve(num_membership);
  for (std::uint32_t i = 0; i < num_membership; ++i) {
    FaultPlan::Membership m;
    m.rank = r.i32();
    m.join_s = r.f64();
    m.leave_s = r.f64();
    plan.membership.push_back(m);
  }
  if (r.remaining() != 0) {
    throw std::runtime_error("fault plan: trailing bytes");
  }
  return plan;
}

}  // namespace nopfs::scenario
