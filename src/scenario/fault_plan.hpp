#pragma once
// Scenario-scripted fault injection (DESIGN.md Sec. 11).
//
// A FaultPlan rides on a scenario's worker shape and scripts the faults a
// run must absorb: per-rank straggler skew, dropped connections mid-epoch,
// slow-PFS bursts, and rank join/leave times for elastic sweep worlds.
// Every window is expressed in VIRTUAL seconds since run start (the same
// clock the emulated devices price in), so one plan means the same thing
// under any --time-scale.
//
// The design invariant every plan must respect: faults perturb *timing*
// and *data placement* only, never which samples a rank delivers in what
// order.  A dropped connection turns a remote fetch into a detectable,
// non-fatal miss that falls back to the PFS (the Transport contract); a
// straggler just computes slower; a PFS burst just reads slower.  The
// delivered-sample digest is therefore bit-identical to the fault-free
// run — that identity is the "delivered-sample completeness" recovery
// invariant the fault-* scenarios pin in tests and CI.

#include <cstdint>
#include <string>
#include <vector>

namespace nopfs::scenario {

struct FaultPlan {
  /// Rank `rank`'s compute runs `factor`x slower (factor > 1).  Stragglers
  /// stretch wall time but deliver the same samples in the same order.
  struct Straggler {
    int rank = 0;
    double factor = 1.0;
    bool operator==(const Straggler&) const = default;
  };

  /// Remote fetches issued BY `rank` during [start_s, end_s) fail as
  /// misses, as if the peer connection dropped mid-epoch.  The fetch
  /// router falls back to the PFS, so delivery completeness holds.
  struct Drop {
    int rank = 0;
    double start_s = 0.0;
    double end_s = 0.0;
    bool operator==(const Drop&) const = default;
  };

  /// The shared PFS serves reads `derate`x slower during [start_s, end_s)
  /// — a scripted burst of outside load on the parallel filesystem.
  struct PfsBurst {
    double start_s = 0.0;
    double end_s = 0.0;
    double derate = 1.0;
    bool operator==(const PfsBurst&) const = default;
  };

  /// Elastic-membership script for sweep worlds: `rank` joins the world
  /// at `join_s` (0 = present from the start) and leaves — dies — at
  /// `leave_s` (< 0 = stays to the end).  Joining workers just start
  /// pulling; a leave triggers the dead-rank gamma release and tail
  /// re-grants of the cells it held.
  struct Membership {
    int rank = 0;
    double join_s = 0.0;
    double leave_s = -1.0;
    bool operator==(const Membership&) const = default;
  };

  std::vector<Straggler> stragglers;
  std::vector<Drop> drops;
  std::vector<PfsBurst> pfs_bursts;
  std::vector<Membership> membership;

  bool operator==(const FaultPlan&) const = default;

  /// True when the plan injects nothing.
  [[nodiscard]] bool empty() const {
    return stragglers.empty() && drops.empty() && pfs_bursts.empty() &&
           membership.empty();
  }

  /// Combined slowdown for `rank` (product of its straggler entries; 1.0
  /// when the rank is healthy).
  [[nodiscard]] double straggler_factor(int rank) const;

  /// True when `rank`'s peer connections are scripted down at virtual
  /// time `virtual_s`.
  [[nodiscard]] bool connection_down(int rank, double virtual_s) const;

  /// PFS slowdown active at virtual time `virtual_s` (max over active
  /// bursts; 1.0 when none).
  [[nodiscard]] double pfs_derate(double virtual_s) const;
};

/// Validation problems ("" -> none).  `world_size` bounds the rank fields
/// for stragglers and drops; membership ranks may exceed it (late joiners
/// extend the world).  Used by scenario::validate for registry entries.
[[nodiscard]] std::vector<std::string> validate_fault_plan(const FaultPlan& plan,
                                                           int world_size);

/// Byte-explicit wire codec (net/wire conventions: little-endian, bounds
/// checked, trailing bytes rejected).  Plans travel with scenario specs so
/// a launcher can ship one plan to every process.
[[nodiscard]] std::vector<std::uint8_t> encode_fault_plan(const FaultPlan& plan);
[[nodiscard]] FaultPlan decode_fault_plan(const std::vector<std::uint8_t>& bytes);

}  // namespace nopfs::scenario
