#include "scenario/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "sim/policies.hpp"
#include "util/units.hpp"

namespace nopfs::scenario {

namespace {

// ---------------------------------------------------------------------------
// System shapes shared by several entries.

/// The contention-heavy miniature of the SharedPfs parity study: no local
/// cache capacity (every access is a PFS read) and a glacial PFS, so reads
/// genuinely block and overlap across ranks even on 1-core sanitizer hosts.
tiers::SystemParams contention_system(int num_workers) {
  tiers::SystemParams sys = tiers::presets::sim_cluster(num_workers);
  sys.node.staging.capacity_mb = 8.0;
  sys.node.staging.prefetch_threads = 2;
  sys.node.classes[0].capacity_mb = 0.0;
  sys.node.classes[1].capacity_mb = 0.0;
  sys.node.compute_mbps = 50.0;
  sys.node.preprocess_mbps = 500.0;
  // A fresh PfsParams, not just a slower curve: the metadata-op term must be
  // OFF so every read's duration is purely bandwidth — the parity tests'
  // structural-overlap argument (gamma = 2 even under sanitizer slowdowns)
  // depends on reads blocking in the token bucket, nowhere else.  The curve
  // must be glacial relative to PER-RANK producer demand, not just the
  // shared aggregate: the multi-process world gives each rank its own
  // fair-share bucket, and a ~20x sanitizer CPU slowdown paces one rank's
  // prefetchers to ~15 MB/s of demand — the curve keeps every rank's
  // refill far below that, so reads block (and overlap across ranks) in
  // every launch mode on any host.
  sys.pfs = tiers::PfsParams{};
  sys.pfs.agg_read_mbps =
      util::ThroughputCurve({{1, 0.5}, {2, 0.625}, {4, 0.75}});
  return sys;
}

/// The simulator-vs-runtime cross-validation miniature (1 MB staging so the
/// ring holds a few samples; PFS slow enough that caching visibly wins).
tiers::SystemParams validation_system(int num_workers) {
  return loopback_system(num_workers, 1.0);
}

/// The watermark-ablation miniature: keeps the Sec. 6.1 preprocessing rate
/// (the heuristic's false positives depend on producer/consumer pacing).
tiers::SystemParams watermark_system(int num_workers) {
  tiers::SystemParams sys = tiers::presets::sim_cluster(num_workers);
  sys.node.staging.capacity_mb = 1.0;
  sys.node.staging.prefetch_threads = 2;
  sys.node.classes[0].capacity_mb = 16.0;
  sys.node.classes[1].capacity_mb = 32.0;
  sys.node.compute_mbps = 50.0;
  sys.pfs.agg_read_mbps = util::ThroughputCurve({{1, 30}, {2, 40}, {4, 50}});
  return sys;
}

// ---------------------------------------------------------------------------
// Entry builders.  Each returns one fully-specified scenario; registry()
// stitches them into the name -> Scenario map.

std::vector<std::string> scaling_policies_daint() { return {"staging", "nopfs", "perfect"}; }
std::vector<std::string> scaling_policies_lassen() {
  return {"staging", "lbann-dynamic", "nopfs", "perfect"};
}

// Loader presentation lists of the paper's scaling figures (the labels the
// tables print, the policy each line simulates, and DALI's 8x GPU-offloaded
// preprocessing).  Hoisted from bench_scaling_common.hpp so one registry
// entry fully describes a figure.
std::vector<LoaderLine> pytorch_dali_nopfs() {
  return {{"PyTorch", "staging", baselines::LoaderKind::kPyTorch, 1.0},
          {"PyTorch+DALI", "staging", baselines::LoaderKind::kDali, 8.0},
          {"NoPFS", "nopfs", baselines::LoaderKind::kNoPFS, 1.0},
          {"No I/O", "perfect", baselines::LoaderKind::kNoPFS, 1.0}};
}

std::vector<LoaderLine> pytorch_lbann_nopfs() {
  return {{"PyTorch", "staging", baselines::LoaderKind::kPyTorch, 1.0},
          {"LBANN", "lbann-dynamic", baselines::LoaderKind::kLbann, 1.0},
          {"NoPFS", "nopfs", baselines::LoaderKind::kNoPFS, 1.0},
          {"No I/O", "perfect", baselines::LoaderKind::kNoPFS, 1.0}};
}

std::vector<LoaderLine> pytorch_nopfs() {
  return {{"PyTorch", "staging", baselines::LoaderKind::kPyTorch, 1.0},
          {"NoPFS", "nopfs", baselines::LoaderKind::kNoPFS, 1.0},
          {"No I/O", "perfect", baselines::LoaderKind::kNoPFS, 1.0}};
}

Scenario fig8(const std::string& dataset_name, const std::string& regime, int workers,
              std::uint64_t per_worker_batch, std::uint64_t min_samples = 0) {
  Scenario s;
  s.name = "fig8-" + dataset_name;
  s.summary = "Fig. 8 policy comparison, " + dataset_name + " (" + regime +
              ") on the Sec. 6.1 cluster";
  s.system = [](int n) { return tiers::presets::sim_cluster(n); };
  s.dataset = data::presets::by_name(dataset_name);
  s.sim.policies = sim::all_policy_names();
  s.sim.gpu_counts = {workers};
  s.sim.epochs = 5;
  s.sim.quick_epochs = 3;
  s.sim.per_worker_batch = per_worker_batch;
  s.sim.default_scale = 1.0 / 16.0;
  s.sim.quick_scale = 1.0 / 16.0;
  s.sim.min_samples = min_samples;
  s.consumers = {"bench_fig8_policies"};
  if (dataset_name == "imagenet1k") s.consumers.push_back("tests/test_scenario");
  return s;
}

Scenario fig9_env() {
  Scenario s;
  s.name = "fig9-env-imagenet22k";
  s.summary = "Fig. 9 environment sweep: ImageNet-22k, NoPFS, 5x compute, RAM x SSD grid";
  s.system = [](int n) { return tiers::presets::sim_cluster(n); };
  s.dataset = data::presets::imagenet22k();
  s.sim.policies = {"nopfs", "perfect"};
  s.sim.gpu_counts = {4};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 32;
  s.sim.default_scale = 1.0 / 8.0;
  s.sim.quick_scale = 1.0 / 32.0;
  s.sim.compute_mbps = 64.0 * 5.0;       // Sec. 6.2: 5x compute
  s.sim.preprocess_mbps = 200.0 * 5.0;   // and 5x preprocessing
  s.consumers = {"bench_fig9_env_sweep"};
  return s;
}

Scenario fig10_daint() {
  Scenario s;
  s.name = "fig10-imagenet1k";
  s.summary = "Fig. 10 left: ImageNet-1k scaling on Piz Daint, 32-256 GPUs";
  s.system = [](int n) { return tiers::presets::piz_daint(n); };
  s.dataset = data::presets::imagenet1k();
  s.sim.policies = scaling_policies_daint();
  s.sim.loaders = pytorch_dali_nopfs();
  s.sim.gpu_counts = {32, 64, 128, 256};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 64;  // paper: per-GPU batch 64 on Piz Daint
  s.consumers = {"bench_fig10_imagenet1k_scaling", "tests/test_scenario"};
  return s;
}

Scenario fig10_lassen() {
  Scenario s;
  s.name = "fig10-imagenet1k-lassen";
  s.summary = "Fig. 10 right: ImageNet-1k scaling on Lassen, 32-1024 GPUs";
  // Scale factors: the fig10 bench runs both halves at ONE scale (they
  // share the dataset), taken from the primary "fig10-imagenet1k" entry —
  // keep this entry's default/quick scales identical to it.
  s.system = [](int n) { return tiers::presets::lassen(n); };
  s.dataset = data::presets::imagenet1k();
  s.sim.policies = scaling_policies_lassen();
  s.sim.loaders = pytorch_lbann_nopfs();
  s.sim.gpu_counts = {32, 64, 128, 256, 512, 1024};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 120;  // paper: per-GPU batch 120 on Lassen
  s.consumers = {"bench_fig10_imagenet1k_scaling"};
  return s;
}

Scenario fig11() {
  Scenario s;
  s.name = "fig11-epoch0";
  s.summary = "Fig. 11: epoch-0 batch times, ImageNet-1k on Piz Daint";
  s.system = [](int n) { return tiers::presets::piz_daint(n); };
  s.dataset = data::presets::imagenet1k();
  s.sim.policies = scaling_policies_daint();
  s.sim.loaders = pytorch_dali_nopfs();
  s.sim.gpu_counts = {32, 64, 128, 256};
  s.sim.epochs = 2;  // epoch 0 + one reference epoch
  s.sim.per_worker_batch = 64;
  s.consumers = {"bench_fig11_epoch0"};
  return s;
}

Scenario fig12() {
  Scenario s;
  s.name = "fig12-cache-stats";
  s.summary = "Fig. 12: NoPFS cache statistics, ImageNet-1k on Piz Daint";
  s.system = [](int n) { return tiers::presets::piz_daint(n); };
  s.dataset = data::presets::imagenet1k();
  s.sim.policies = {"nopfs"};
  s.sim.gpu_counts = {32, 64, 128, 256};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 64;
  s.consumers = {"bench_fig12_cache_stats", "tests/test_scenario"};
  return s;
}

Scenario fig13() {
  Scenario s;
  s.name = "fig13-batch-size";
  s.summary = "Fig. 13: batch-size sweep, ImageNet-1k, 128 GPUs on Lassen";
  s.system = [](int n) { return tiers::presets::lassen(n); };
  s.dataset = data::presets::imagenet1k();
  s.sim.policies = {"staging", "nopfs", "perfect"};
  s.sim.loaders = pytorch_nopfs();
  s.sim.gpu_counts = {128};
  s.sim.batch_sizes = {32, 64, 96, 120};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 32;
  s.consumers = {"bench_fig13_batch_size"};
  return s;
}

Scenario fig14() {
  Scenario s;
  s.name = "fig14-imagenet22k";
  s.summary = "Fig. 14: ImageNet-22k scaling on Lassen, 32-1024 GPUs";
  s.system = [](int n) { return tiers::presets::lassen(n); };
  s.dataset = data::presets::imagenet22k();
  s.sim.policies = {"staging", "nopfs", "perfect"};
  s.sim.loaders = pytorch_nopfs();
  s.sim.gpu_counts = {32, 64, 128, 256, 512, 1024};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 120;
  s.sim.default_scale = 1.0 / 4.0;
  s.sim.quick_scale = 1.0 / 16.0;
  s.consumers = {"bench_fig14_imagenet22k"};
  return s;
}

Scenario fig15() {
  Scenario s;
  s.name = "fig15-cosmoflow";
  s.summary = "Fig. 15: CosmoFlow scaling on Lassen, 32-1024 GPUs";
  s.system = [](int n) { return tiers::presets::lassen(n); };
  s.dataset = data::presets::cosmoflow();
  s.sim.policies = {"staging", "nopfs", "perfect"};
  s.sim.loaders = pytorch_nopfs();
  s.sim.gpu_counts = {32, 64, 128, 256, 512, 1024};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 16;  // paper: per-GPU batch 16
  // CosmoFlow's 3D CNN consumes large samples fast: ~82 samples/s on a V100
  // at 16.8 MB/sample; log-normalization preprocessing is cheap.
  s.sim.compute_mbps = 1'375.0;
  s.sim.preprocess_mbps = 4'000.0;
  s.consumers = {"bench_fig15_cosmoflow"};
  return s;
}

Scenario fig16() {
  Scenario s;
  s.name = "fig16-end-to-end";
  s.summary = "Fig. 16: end-to-end ResNet-50/ImageNet-1k, 256 GPUs on Lassen, 90 epochs";
  s.system = [](int n) { return tiers::presets::lassen(n); };
  s.dataset = data::presets::imagenet1k();
  s.sim.policies = {"staging", "nopfs"};
  s.sim.gpu_counts = {256};
  s.sim.epochs = 90;  // Goyal et al. schedule
  s.sim.per_worker_batch = 32;  // global batch 8192
  s.consumers = {"bench_fig16_end_to_end"};
  return s;
}

Scenario tab1() {
  Scenario s;
  s.name = "tab1-frameworks";
  s.summary = "Table 1: I/O framework comparison on a dataset exceeding aggregate storage";
  // Dataset larger than the cluster's entire storage (4 x 128 MB): a
  // strategy is dataset-scalable only if it still trains on (all of) it.
  s.system = [](int n) {
    tiers::SystemParams sys = tiers::presets::sim_cluster(n);
    sys.node.classes[0].capacity_mb = 32.0;  // RAM
    sys.node.classes[1].capacity_mb = 96.0;  // SSD
    return sys;
  };
  s.dataset = data::DatasetSpec{"tab1", 6'000, 0.1, 0.0, 1};  // 600 MB, fixed sizes
  s.sim.policies = {"staging", "parallel-staging", "deepio-opportunistic",
                    "lbann-dynamic", "locality-aware", "nopfs"};
  s.sim.gpu_counts = {4};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 8;
  s.sim.quick_scale = 1.0;
  s.consumers = {"bench_tab1_frameworks", "tests/test_scenario"};
  return s;
}

Scenario ablation_sim() {
  Scenario s;
  s.name = "ablation-nopfs-design";
  s.summary = "Ablation (simulator): frequency-aware fill / remote fetching, tight RAM";
  // 256 GPUs: the PFS-bound regime where design choices matter; RAM
  // tightened so each worker can cache only part of its working set.
  s.system = [](int n) {
    tiers::SystemParams sys = tiers::presets::piz_daint(n);
    sys.node.classes[0].capacity_mb /= 16.0;
    return sys;
  };
  s.dataset = data::presets::imagenet1k();
  s.sim.policies = {"nopfs", "lbann-dynamic"};
  s.sim.gpu_counts = {256};
  s.sim.epochs = 4;
  s.sim.per_worker_batch = 64;
  s.sim.default_scale = 1.0 / 4.0;
  s.sim.quick_scale = 1.0 / 16.0;
  s.consumers = {"bench_ablations"};
  return s;
}

Scenario ablation_watermark() {
  Scenario s;
  s.name = "ablation-watermark";
  s.summary = "Ablation (runtime): remote-readiness watermark heuristic, 4 workers";
  s.system = watermark_system;
  s.dataset = data::DatasetSpec{"ablate", 192, 0.1, 0.03, 1};
  s.sim.policies = {"nopfs"};
  s.sim.gpu_counts = {4};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 4;
  s.worker.system = watermark_system;
  s.worker.dataset = s.dataset;
  s.worker.dataset_seed = 0xC0FFEE;
  s.worker.world_size = 4;
  s.worker.epochs = 3;
  s.worker.per_worker_batch = 4;
  s.worker.seed = 0xC0FFEE;
  s.worker.time_scale = 100.0;
  s.worker.loader_threads = 4;   // the harness defaults the bench relied on
  s.worker.lookahead = 32;
  s.consumers = {"bench_ablations"};
  return s;
}

Scenario runtime_validation() {
  Scenario s;
  s.name = "runtime-validation";
  s.summary = "Simulator-vs-runtime cross-validation miniature (4 workers, 192 samples)";
  s.system = validation_system;
  s.dataset = data::DatasetSpec{"validate", 192, 0.2, 0.05, 1};
  s.sim.policies = {"naive", "staging", "lbann-dynamic", "nopfs"};
  s.sim.gpu_counts = {4};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 4;
  s.sim.quick_scale = 1.0;
  // The runtime-vs-simulator pairs bench_runtime_validation iterates.
  s.worker.loaders = {
      {"Naive", "naive", baselines::LoaderKind::kNaive, 1.0},
      {"PyTorch", "staging", baselines::LoaderKind::kPyTorch, 1.0},
      {"LBANN", "lbann-dynamic", baselines::LoaderKind::kLbann, 1.0},
      {"NoPFS", "nopfs", baselines::LoaderKind::kNoPFS, 1.0},
  };
  s.worker.system = validation_system;
  s.worker.dataset = s.dataset;
  s.worker.dataset_seed = 0xC0FFEE;
  s.worker.world_size = 4;
  s.worker.epochs = 3;
  s.worker.per_worker_batch = 4;
  s.worker.seed = 0xC0FFEE;
  s.worker.time_scale = 50.0;
  s.worker.loader_threads = 4;
  s.worker.lookahead = 32;
  s.consumers = {"bench_runtime_validation", "tests/test_scenario"};
  return s;
}

Scenario worker_loopback() {
  Scenario s;
  s.name = "worker-loopback";
  s.summary = "Default nopfs_worker shape: 2-rank loopback smoke (NoPFS loader)";
  s.system = [](int n) { return loopback_system(n); };
  s.dataset = data::DatasetSpec{"worker", 96, 0.2, 0.05, 1};
  s.sim.policies = {"nopfs"};
  s.sim.gpu_counts = {2};
  s.sim.epochs = 2;
  s.sim.per_worker_batch = 4;
  s.sim.quick_scale = 1.0;
  // WorkerShape defaults ARE this scenario (96 samples, seed 2025, 2 ranks,
  // loopback_system): examples/nopfs_worker and test_distributed_runtime
  // both resolve their shared shape from here.
  s.consumers = {"tests/test_distributed_runtime", "tests/test_scenario",
                 "ci:rendezvous-leg"};
  return s;
}

Scenario contention_pfs() {
  Scenario s;
  s.name = "contention-pfs";
  s.summary = "SharedPfs gamma-parity shape: zero cache, glacial PFS, 2 ranks";
  s.system = contention_system;
  s.dataset = data::DatasetSpec{"contention", 64, 0.2, 0.05, 1};
  s.sim.policies = {"nopfs"};
  s.sim.gpu_counts = {2};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 4;
  s.sim.quick_scale = 1.0;
  s.worker.system = contention_system;
  s.worker.dataset = s.dataset;
  s.worker.dataset_seed = 7;
  s.worker.world_size = 2;
  s.worker.epochs = 3;
  s.worker.per_worker_batch = 4;
  s.worker.seed = 99;
  s.worker.time_scale = 10.0;
  // Remote fetches off: with no cache there is nothing to serve remotely,
  // and every access is a PFS fetch — PFS counts become a pure function of
  // the access stream, exact across launch modes (tests/test_shared_pfs.cpp).
  s.worker.use_remote = false;
  s.consumers = {"tests/test_shared_pfs"};
  return s;
}

/// The large-world contention miniature: the paper's headline results are
/// at 64-512 nodes, and the batched gamma gossip is what makes such worlds
/// affordable — every rank is threaded (thread-weighted gamma), every
/// access is a PFS read (zero-capacity cache), and the PFS curve spans the
/// full weighted reader range.
tiers::SystemParams large_world_system(int num_workers) {
  tiers::SystemParams sys = tiers::presets::sim_cluster(num_workers);
  sys.node.staging.capacity_mb = 4.0;
  sys.node.staging.prefetch_threads = 2;
  sys.node.classes[0].capacity_mb = 0.0;
  sys.node.classes[0].prefetch_threads = 1;
  sys.node.classes[1].capacity_mb = 0.0;
  sys.node.classes[1].prefetch_threads = 1;
  sys.node.compute_mbps = 200.0;
  sys.node.preprocess_mbps = 2'000.0;
  sys.pfs = tiers::PfsParams{};
  // Fast enough that a 32-rank --quick smoke stays seconds on 1-core CI;
  // measured out to the weighted reader count (32 ranks x 4 reader threads).
  sys.pfs.agg_read_mbps =
      util::ThroughputCurve({{1, 40}, {32, 160}, {64, 200}, {128, 240}});
  return sys;
}

Scenario contention_large_world() {
  Scenario s;
  s.name = "contention-large-world";
  s.summary =
      "Batched gamma gossip at scale: 32 threaded ranks, zero cache, "
      "thread-weighted t(gamma)";
  s.system = large_world_system;
  s.dataset = data::DatasetSpec{"large-world", 128, 0.02, 0.005, 1};
  s.sim.policies = {"nopfs"};
  s.sim.gpu_counts = {32};
  s.sim.epochs = 2;
  s.sim.per_worker_batch = 1;
  s.sim.quick_scale = 1.0;
  s.worker.system = large_world_system;
  s.worker.dataset = s.dataset;
  s.worker.dataset_seed = 11;
  s.worker.world_size = 32;
  s.worker.epochs = 2;
  s.worker.per_worker_batch = 1;
  s.worker.seed = 77;
  s.worker.time_scale = 200.0;
  s.worker.loader_threads = 2;
  s.worker.lookahead = 4;
  s.worker.use_remote = false;  // zero cache: nothing to serve remotely
  s.worker.thread_weighted_gamma = true;
  s.consumers = {"tests/test_scenario"};
  return s;
}

Scenario contention_batched_socket() {
  Scenario s = contention_pfs();
  s.name = "contention-batched-socket";
  s.summary =
      "contention-pfs shape with explicit large-batch gossip: the "
      "multi-process leg of the batched-vs-unary equivalence";
  // A flush window far coarser than the default, so the CI rendezvous leg
  // and the equivalence test genuinely exercise coalescing (several
  // transitions per kPfsDelta at time_scale 10 -> 5 ms real windows).
  s.worker.gossip = net::GossipConfig{0.05, 512};
  s.consumers = {"tests/test_shared_pfs", "tests/test_scenario",
                 "ci:rendezvous-leg"};
  return s;
}

/// The reactor thread-count gate: a 64-rank loopback world whose every rank
/// dials rank 0 (deltas ride the channel to the root), so rank 0
/// accumulates 63 serve sessions.  Under the per-connection-thread
/// transport that meant ~70 threads in the root process; under the epoll
/// reactor it must stay a handful regardless of world size — the CI
/// scenario-matrix leg polls /proc/<root>/status Threads to enforce it.
Scenario worker_large_world() {
  Scenario s = contention_large_world();
  s.name = "worker-large-world";
  s.summary =
      "Reactor scaling shape: 64-rank loopback world, 1 epoch, every rank "
      "gossiping to rank 0 over one event loop";
  s.sim.gpu_counts = {64};
  s.sim.epochs = 1;
  s.worker.world_size = 64;
  s.worker.epochs = 1;
  s.worker.loader_threads = 1;  // keep the 64-process CI leg light
  s.worker.lookahead = 4;
  s.worker.seed = 79;
  s.consumers = {"ci:64-rank-rendezvous-leg", "ci:thread-count-gate"};
  return s;
}

Scenario micro_core() {
  Scenario s;
  s.name = "micro-core";
  s.summary = "bench_micro_core --json simulate() throughput cell (BENCH key micro-core)";
  s.system = [](int n) { return tiers::presets::sim_cluster(n); };
  s.dataset = data::DatasetSpec{"micro", 200'000, 0.05, 0.0, 1};
  s.sim.policies = {"nopfs"};
  s.sim.gpu_counts = {8};
  s.sim.epochs = 4;
  s.sim.per_worker_batch = 32;
  s.sim.quick_scale = 1.0;
  s.consumers = {"bench_micro_core"};
  return s;
}

Scenario micro_sweep() {
  Scenario s;
  s.name = "micro-sweep";
  s.summary = "bench_micro_core --json sweep grid: 4 policies x 4 scales (BENCH key micro-sweep)";
  s.system = [](int n) { return tiers::presets::sim_cluster(n); };
  s.dataset = data::DatasetSpec{"micro", 200'000, 0.05, 0.0, 1};
  s.sim.policies = {"staging", "lbann-preload", "locality-aware", "nopfs"};
  s.sim.gpu_counts = {4, 8, 16, 32};
  s.sim.epochs = 4;
  s.sim.per_worker_batch = 16;
  s.sim.quick_scale = 1.0;
  s.consumers = {"bench_micro_core"};
  return s;
}

/// The sweep-service shape (DESIGN.md Sec. 10): a grid small enough that
/// the 3-process CI leg finishes in seconds but wide enough (12 cells) that
/// rank 0's shrinking grants actually shard it across ranks.  The serial
/// digest of this grid is the CI currency for "distributed == serial".
Scenario sweep_service() {
  Scenario s;
  s.name = "sweep-service";
  s.summary =
      "Distributed sweep-service grid: 3 policies x {4,8} GPUs x 2 batches, "
      "digest-checked against the serial SweepRunner (BENCH key sweep-service)";
  s.system = [](int n) { return tiers::presets::sim_cluster(n); };
  s.dataset = data::DatasetSpec{"sweep-service", 40'000, 0.05, 0.0, 1};
  s.sim.policies = {"staging", "locality-aware", "nopfs"};
  s.sim.gpu_counts = {4, 8};
  s.sim.batch_sizes = {16, 32};
  s.sim.epochs = 2;
  s.sim.per_worker_batch = 16;
  s.sim.quick_scale = 1.0;
  s.consumers = {"bench_micro_core", "tests/test_sweep_service",
                 "ci:sweep-service-leg", "examples/nopfs_worker --sweep-scenario"};
  return s;
}

Scenario micro_critpath() {
  Scenario s;
  s.name = "micro-critpath";
  s.summary =
      "Critical-path recording + what-if walk shape (BENCH key "
      "critpath_edges_per_s): PFS-bound NoPFS run with an allreduce cost";
  s.system = [](int n) { return tiers::presets::sim_cluster(n); };
  // Big enough that the recorded DAG has a few hundred thousand edges
  // (stable walk timings), small enough that recording stays tens of ms.
  s.dataset = data::DatasetSpec{"micro-critpath", 50'000, 0.05, 0.0, 1};
  s.sim.policies = {"nopfs"};
  s.sim.gpu_counts = {8};
  s.sim.epochs = 3;
  s.sim.per_worker_batch = 32;
  s.sim.quick_scale = 1.0;
  s.consumers = {"bench_micro_core", "tests/test_critpath"};
  return s;
}

// ---------------------------------------------------------------------------
// Fault-injection and elastic-membership scenarios (DESIGN.md Sec. 11).
//
// Every fault-* entry pins the same recovery invariant: the delivered-sample
// digest is bit-identical to its fault-free base scenario (faults perturb
// timing and placement, never delivery), and gamma drains to zero at run
// end.  The elastic-* entries pin the sweep-digest identity: results are
// bit-identical to the serial SweepRunner even when a worker joins late or
// dies mid-sweep.  tests/test_faults.cpp and the CI fault legs consume the
// shapes by name; docs/FAULTS.md documents each one (the doc-sync gate
// cross-checks the names).

Scenario fault_straggler() {
  Scenario s = worker_loopback();
  s.name = "fault-straggler";
  s.summary =
      "worker-loopback with rank 1 computing 3x slow: stragglers stretch "
      "wall time, never the delivered-sample digest";
  s.worker.faults.stragglers = {{1, 3.0}};
  s.consumers = {"tests/test_faults", "docs/FAULTS.md"};
  return s;
}

Scenario fault_drop() {
  Scenario s = worker_loopback();
  s.name = "fault-drop";
  s.summary =
      "worker-loopback with rank 1's peer connections down for the whole "
      "run: every remote fetch misses to the PFS, delivery digest unchanged";
  // The window spans far past the run's virtual duration so the invariant
  // is exercised on every remote fetch, not a timing-dependent subset.
  s.worker.faults.drops = {{1, 0.0, 1.0e9}};
  s.consumers = {"tests/test_faults", "docs/FAULTS.md"};
  return s;
}

Scenario fault_pfs_burst() {
  Scenario s = worker_loopback();
  s.name = "fault-pfs-burst";
  s.summary =
      "worker-loopback under a scripted 4x slow-PFS burst: reads stall, "
      "gamma accounting and the delivery digest are unchanged";
  s.worker.faults.pfs_bursts = {{0.0, 1.0e9, 4.0}};
  s.consumers = {"tests/test_faults", "docs/FAULTS.md"};
  return s;
}

Scenario fault_churn_gossip() {
  Scenario s = contention_batched_socket();
  s.name = "fault-churn-gossip";
  s.summary =
      "contention-batched-socket with the adaptive gossip flush on: the "
      "window shrinks while gamma is volatile, grows when steady, and the "
      "digest/gamma envelopes match the fixed-window run";
  // Floor at a tenth of the 50 ms window: busy wakes may halve down to
  // 5 ms virtual, quiet wakes double back up.
  s.worker.gossip.min_flush_virtual_s = 0.005;
  s.consumers = {"tests/test_faults", "docs/FAULTS.md"};
  return s;
}

Scenario elastic_sweep_join() {
  Scenario s = sweep_service();
  s.name = "elastic-sweep-join";
  s.summary =
      "sweep-service grid in an elastic world: rank 2 joins mid-sweep and "
      "just starts pulling; results stay digest-identical to serial";
  s.worker.faults.membership = {{2, 0.5, -1.0}};
  s.consumers = {"tests/test_faults", "ci:elastic-join-leg", "docs/FAULTS.md"};
  return s;
}

Scenario elastic_sweep_leave() {
  Scenario s = sweep_service();
  s.name = "elastic-sweep-leave";
  s.summary =
      "sweep-service grid where a worker dies holding a grant: tail "
      "re-grants recover its cells, gamma drains, digest matches serial";
  s.worker.faults.membership = {{2, 0.0, 1.0}};
  s.consumers = {"tests/test_faults", "ci:kill-one-rank-leg", "docs/FAULTS.md"};
  return s;
}

std::map<std::string, Scenario> build_registry() {
  std::map<std::string, Scenario> entries;
  const auto add = [&entries](Scenario s) {
    auto [it, inserted] = entries.emplace(s.name, std::move(s));
    if (!inserted) {
      throw std::logic_error("scenario registry: duplicate name " + it->first);
    }
  };
  add(fig8("mnist", "S < d1", 4, 32));
  add(fig8("imagenet1k", "d1 < S < D", 4, 32));
  add(fig8("openimages", "d1 < S < N*D", 4, 32));
  add(fig8("imagenet22k", "D < S < N*D", 4, 32));
  add(fig8("cosmoflow", "N*D < S", 4, 16));
  // CosmoFlow 512^3 has only 10k samples; never scale below its batch
  // geometry.
  add(fig8("cosmoflow512", "N*D < S (N=8)", 8, 1, 2'000));
  add(fig9_env());
  add(fig10_daint());
  add(fig10_lassen());
  add(fig11());
  add(fig12());
  add(fig13());
  add(fig14());
  add(fig15());
  add(fig16());
  add(tab1());
  add(ablation_sim());
  add(ablation_watermark());
  add(runtime_validation());
  add(worker_loopback());
  add(contention_pfs());
  add(contention_large_world());
  add(contention_batched_socket());
  add(worker_large_world());
  add(micro_core());
  add(micro_sweep());
  add(micro_critpath());
  add(sweep_service());
  add(fault_straggler());
  add(fault_drop());
  add(fault_pfs_burst());
  add(fault_churn_gossip());
  add(elastic_sweep_join());
  add(elastic_sweep_leave());
  return entries;
}

bool valid_name(const std::string& name) {
  if (name.empty() || name.front() == '-' || name.back() == '-') return false;
  bool prev_dash = false;
  for (const char c : name) {
    const bool ok = (std::islower(static_cast<unsigned char>(c)) != 0) ||
                    (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '-';
    if (!ok) return false;
    if (c == '-' && prev_dash) return false;
    prev_dash = c == '-';
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry surface.

const std::map<std::string, Scenario>& registry() {
  static const std::map<std::string, Scenario> entries = build_registry();
  return entries;
}

const Scenario& get(const std::string& name) {
  const auto& entries = registry();
  const auto it = entries.find(name);
  if (it == entries.end()) {
    std::ostringstream out;
    out << "unknown scenario '" << name << "'; known:";
    for (const auto& [known, _] : entries) out << " " << known;
    throw std::invalid_argument(out.str());
  }
  return it->second;
}

std::vector<std::string> names() {
  std::vector<std::string> out;
  out.reserve(registry().size());
  for (const auto& [name, _] : registry()) out.push_back(name);
  return out;  // std::map iteration is already sorted
}

// ---------------------------------------------------------------------------
// Validation.

std::vector<std::string> validate(const Scenario& s) {
  std::vector<std::string> problems;
  const auto bad = [&problems, &s](const std::string& what) {
    problems.push_back(s.name.empty() ? what : s.name + ": " + what);
  };

  if (!valid_name(s.name)) bad("name must be lower-case kebab ([a-z0-9-])");
  if (s.summary.empty()) bad("summary is empty");
  // Consumers feed the generated docs/SCENARIOS.md table; an entry nobody
  // references beyond the implicit worker-CLI/CI-matrix pair is either dead
  // or undocumented — both fail the gate.
  if (s.consumers.empty()) bad("lists no consumers");
  for (const std::string& consumer : s.consumers) {
    if (consumer.empty()) bad("empty consumer entry");
  }
  if (s.dataset.num_samples == 0) bad("dataset has no samples");
  if (s.dataset.mean_size_mb <= 0.0) bad("dataset mean size must be positive");

  // Simulator view.
  if (s.sim.policies.empty()) bad("sim view lists no policies");
  for (const std::string& policy : s.sim.policies) {
    try {
      (void)sim::make_policy(policy);
    } catch (const std::invalid_argument&) {
      bad("unknown policy '" + policy + "'");
    }
  }
  if (s.sim.gpu_counts.empty()) bad("sim view lists no GPU counts");
  for (const int gpus : s.sim.gpu_counts) {
    if (gpus <= 0) bad("non-positive GPU count");
  }
  for (const std::uint64_t batch : s.sim.batch_sizes) {
    if (batch == 0) bad("zero batch size in batch sweep");
  }
  if (s.sim.epochs <= 0) bad("sim epochs must be positive");
  if (s.sim.quick_epochs < 0) bad("sim quick_epochs must be >= 0");
  if (s.sim.per_worker_batch == 0) bad("sim per-worker batch must be positive");
  if (s.sim.default_scale <= 0.0 || s.sim.default_scale > 1.0) {
    bad("default_scale must be in (0, 1]");
  }
  if (s.sim.quick_scale <= 0.0 || s.sim.quick_scale > 1.0) {
    bad("quick_scale must be in (0, 1]");
  }
  if (!s.system) {
    bad("no system factory");
  } else if (!s.sim.gpu_counts.empty() && s.sim.gpu_counts.front() > 0) {
    const tiers::SystemParams sys = s.system(s.sim.gpu_counts.front());
    if (sys.num_workers != s.sim.gpu_counts.front()) {
      bad("system factory ignores the worker count");
    }
    if (sys.node.staging.prefetch_threads < 1) bad("staging needs >= 1 thread");
    if (sys.pfs.agg_read_mbps.at(1) <= 0.0) bad("PFS curve must be positive at 1");
  }

  // Loader presentation lists (sim + worker views).
  const auto check_loaders = [&bad](const std::vector<LoaderLine>& loaders,
                                    const char* view) {
    for (const LoaderLine& line : loaders) {
      if (line.label.empty()) bad(std::string(view) + " loader line has no label");
      if (line.preprocess_mult <= 0.0) {
        bad(std::string(view) + " loader '" + line.label +
            "' has a non-positive preprocess multiplier");
      }
      try {
        (void)sim::make_policy(line.policy);
      } catch (const std::invalid_argument&) {
        bad(std::string(view) + " loader '" + line.label + "' names unknown policy '" +
            line.policy + "'");
      }
    }
  };
  check_loaders(s.sim.loaders, "sim");
  check_loaders(s.worker.loaders, "worker");

  // Runtime (worker CLI) view: must stay loopback-smoke scale.
  if (s.worker.world_size < 1) bad("worker world size must be >= 1");
  if (s.worker.gossip.flush_virtual_s < 0.0) {
    bad("worker gossip flush interval must be >= 0");
  }
  if (s.worker.gossip.max_batch < 1) bad("worker gossip max batch must be >= 1");
  if (s.worker.gossip.min_flush_virtual_s < 0.0) {
    bad("worker gossip adaptive floor must be >= 0");
  }
  if (s.worker.gossip.min_flush_virtual_s > 0.0 &&
      s.worker.gossip.min_flush_virtual_s > s.worker.gossip.flush_virtual_s) {
    bad("worker gossip adaptive floor exceeds the flush window");
  }
  for (const std::string& problem :
       validate_fault_plan(s.worker.faults, s.worker.world_size)) {
    bad(problem);
  }
  if (s.worker.epochs <= 0) bad("worker epochs must be positive");
  if (s.worker.per_worker_batch == 0) bad("worker batch must be positive");
  if (s.worker.time_scale <= 0.0) bad("worker time scale must be positive");
  if (s.worker.loader_threads < 1) bad("worker needs >= 1 loader thread");
  if (s.worker.lookahead < 1) bad("worker lookahead must be >= 1");
  {
    net::ReactorBackend parsed = net::ReactorBackend::kAuto;
    if (!net::parse_reactor_backend(s.worker.reactor, parsed)) {
      bad("worker reactor backend must be auto|epoll|io_uring, got \"" +
          s.worker.reactor + "\"");
    }
  }
  if (s.worker.dataset.num_samples == 0) bad("worker dataset has no samples");
  if (s.worker.dataset.num_samples > 100'000) {
    bad("worker dataset too large for a CLI smoke run");
  }
  if (s.worker.dataset.num_samples <
      s.worker.per_worker_batch * static_cast<std::uint64_t>(s.worker.world_size)) {
    bad("worker dataset smaller than one global batch");
  }
  {
    const int world = s.worker.world_size;
    const tiers::SystemParams sys =
        s.worker.system ? s.worker.system(world) : loopback_system(world);
    if (sys.num_workers != world) bad("worker system factory ignores world size");
    if (sys.node.staging.capacity_mb > 64.0) {
      bad("worker staging ring exceeds loopback scale (> 64 MB)");
    }
    if (sys.node.total_cache_mb() > 1024.0) {
      bad("worker cache tiers exceed loopback scale (> 1 GB)");
    }
  }
  return problems;
}

std::vector<std::string> validate() {
  std::vector<std::string> problems;
  for (const auto& [name, s] : registry()) {
    if (name != s.name) problems.push_back(name + ": registered under a different key");
    std::vector<std::string> entry = validate(s);
    problems.insert(problems.end(), entry.begin(), entry.end());
  }
  return problems;
}

// ---------------------------------------------------------------------------
// Shared scaling helpers (hoisted verbatim from bench_common.hpp so results
// stay bit-identical).

data::DatasetSpec scaled_spec(data::DatasetSpec spec, double factor) {
  spec.num_samples =
      std::max<std::uint64_t>(1'000, static_cast<std::uint64_t>(
                                         static_cast<double>(spec.num_samples) * factor));
  return spec;
}

void scale_capacities(tiers::SystemParams& system, double factor) {
  for (auto& sc : system.node.classes) sc.capacity_mb *= factor;
  system.node.staging.capacity_mb *= factor;
}

double pick_scale(const Scenario& scenario, bool quick, bool full) {
  if (full) return 1.0;
  return quick ? scenario.sim.quick_scale : scenario.sim.default_scale;
}

int pick_epochs(const Scenario& scenario, bool quick) {
  if (quick && scenario.sim.quick_epochs > 0) return scenario.sim.quick_epochs;
  return scenario.sim.epochs;
}

tiers::SystemParams loopback_system(int num_workers, double staging_mb) {
  // Loopback-smoke scale: the Sec. 6.1 preset's 5 GB staging ring alone
  // costs tens of seconds of allocation per rank, which would dwarf a
  // ~100-sample run (the shape examples/nopfs_worker has always used).
  tiers::SystemParams sys = tiers::presets::sim_cluster(num_workers);
  sys.node.staging.capacity_mb = staging_mb;
  sys.node.staging.prefetch_threads = 2;
  sys.node.classes[0].capacity_mb = 16.0;  // RAM
  sys.node.classes[1].capacity_mb = 32.0;  // "SSD" (memory-backed)
  sys.node.compute_mbps = 50.0;
  sys.node.preprocess_mbps = 500.0;
  sys.pfs.agg_read_mbps = util::ThroughputCurve({{1, 20}, {2, 25}, {4, 30}});
  return sys;
}

// ---------------------------------------------------------------------------
// Simulator view.

tiers::SystemParams sim_system(const Scenario& scenario, int gpus, double scale) {
  tiers::SystemParams sys = scenario.system(gpus);
  scale_capacities(sys, scale);
  if (scenario.sim.compute_mbps > 0.0) sys.node.compute_mbps = scenario.sim.compute_mbps;
  if (scenario.sim.preprocess_mbps > 0.0) {
    sys.node.preprocess_mbps = scenario.sim.preprocess_mbps;
  }
  return sys;
}

sim::SimConfig sim_config(const Scenario& scenario, int gpus, double scale,
                          std::uint64_t seed) {
  sim::SimConfig config;
  config.system = sim_system(scenario, gpus, scale);
  config.seed = seed;
  config.num_epochs = scenario.sim.epochs;
  config.per_worker_batch = scenario.sim.per_worker_batch;
  return config;
}

data::Dataset sim_dataset(const Scenario& scenario, double scale, std::uint64_t seed) {
  data::DatasetSpec spec = scaled_spec(scenario.dataset, scale);
  if (scenario.sim.min_samples > 0) {
    spec.num_samples = std::max(spec.num_samples, scenario.sim.min_samples);
  }
  return data::Dataset::synthetic(spec, seed);
}

std::vector<sim::SweepPoint> sweep_points(const Scenario& scenario,
                                          const data::Dataset& dataset, double scale,
                                          std::uint64_t seed) {
  // Canonical cell order: gpu outer -> batch middle -> policy inner.  An
  // empty batch_sizes collapses the middle loop to per_worker_batch, which
  // is exactly the historical gpu -> policy nesting (bit-compatible with
  // the grids benches used to build by hand).
  std::vector<std::uint64_t> batches = scenario.sim.batch_sizes;
  if (batches.empty()) batches.push_back(scenario.sim.per_worker_batch);
  std::vector<sim::SweepPoint> points;
  points.reserve(scenario.sim.gpu_counts.size() * batches.size() *
                 scenario.sim.policies.size());
  for (const int gpus : scenario.sim.gpu_counts) {
    for (const std::uint64_t batch : batches) {
      for (const std::string& policy : scenario.sim.policies) {
        sim::SweepPoint point;
        point.config = sim_config(scenario, gpus, scale, seed);
        point.config.per_worker_batch = batch;
        point.dataset = &dataset;
        point.policy = policy;
        points.push_back(std::move(point));
      }
    }
  }
  return points;
}

std::vector<LoaderLine> sim_loaders(const Scenario& scenario) {
  if (!scenario.sim.loaders.empty()) return scenario.sim.loaders;
  std::vector<LoaderLine> lines;
  lines.reserve(scenario.sim.policies.size());
  for (const std::string& policy : scenario.sim.policies) {
    lines.push_back({policy, policy, baselines::LoaderKind::kNoPFS, 1.0});
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Runtime view.

runtime::RuntimeConfig runtime_config(const Scenario& scenario, int world_size) {
  const int world = world_size > 0 ? world_size : scenario.worker.world_size;
  runtime::RuntimeConfig config;
  config.system =
      scenario.worker.system ? scenario.worker.system(world) : loopback_system(world);
  config.loader = scenario.worker.loader;
  config.seed = scenario.worker.seed;
  config.num_epochs = scenario.worker.epochs;
  config.per_worker_batch = scenario.worker.per_worker_batch;
  config.time_scale = scenario.worker.time_scale;
  config.loader_threads = scenario.worker.loader_threads;
  config.lookahead = scenario.worker.lookahead;
  config.router.use_remote = scenario.worker.use_remote;
  config.pfs_gossip = scenario.worker.gossip;
  config.pfs_thread_weighted_gamma = scenario.worker.thread_weighted_gamma;
  config.faults = scenario.worker.faults;
  return config;
}

data::Dataset worker_dataset(const Scenario& scenario) {
  return worker_dataset(scenario, scenario.worker.dataset_seed);
}

data::Dataset worker_dataset(const Scenario& scenario, std::uint64_t seed) {
  return data::Dataset::synthetic(scenario.worker.dataset, seed);
}

}  // namespace nopfs::scenario
