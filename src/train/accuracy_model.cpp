#include "train/accuracy_model.hpp"

#include <algorithm>
#include <cmath>

namespace nopfs::train {

namespace {

// Anchor points of the Goyal et al. 90-epoch recipe (lr decay at 30/60/80):
// rapid warmup rise, plateau, then a jump at each decay.  Values are typical
// published top-1 trajectories for this setup.
constexpr struct {
  double epoch;
  double top1;
} kAnchors[] = {
    {0, 1.0},   {1, 18.0},  {2, 28.0},  {3, 35.0},  {5, 45.0},  {10, 52.0},
    {15, 55.5}, {20, 57.5}, {25, 59.0}, {30, 60.0}, {31, 68.5}, {35, 70.0},
    {40, 70.8}, {50, 71.5}, {60, 72.0}, {61, 75.0}, {70, 75.6}, {80, 75.9},
    {81, 76.3}, {90, 76.5},
};

}  // namespace

double resnet50_top1_at_epoch(double epoch) {
  const auto n = std::size(kAnchors);
  if (epoch <= kAnchors[0].epoch) return kAnchors[0].top1;
  if (epoch >= kAnchors[n - 1].epoch) return kAnchors[n - 1].top1;
  for (std::size_t i = 1; i < n; ++i) {
    if (epoch <= kAnchors[i].epoch) {
      const double span = kAnchors[i].epoch - kAnchors[i - 1].epoch;
      const double frac = span > 0.0 ? (epoch - kAnchors[i - 1].epoch) / span : 1.0;
      return kAnchors[i - 1].top1 + frac * (kAnchors[i].top1 - kAnchors[i - 1].top1);
    }
  }
  return kAnchors[n - 1].top1;
}

std::vector<double> resnet50_top1_curve() {
  std::vector<double> curve;
  curve.reserve(91);
  for (int e = 0; e <= 90; ++e) curve.push_back(resnet50_top1_at_epoch(e));
  return curve;
}

}  // namespace nopfs::train
