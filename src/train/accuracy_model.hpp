#pragma once
// Empirical accuracy model for the end-to-end experiment (paper Fig. 16).
//
// The paper trains ResNet-50 on ImageNet-1k for 90 epochs with the Goyal et
// al. large-minibatch recipe (global batch 8192, 5-epoch warmup, step decay
// at epochs 30/60/80) and reaches 76.5% top-1.  I/O middleware does not
// change the learning curve (both runs in Fig. 16 follow the same curve in
// epochs); what changes is the wall-clock time per epoch.  We therefore
// model top-1 accuracy as a deterministic function of the epoch — the
// classic shape of that recipe — and combine it with simulated epoch times
// to regenerate accuracy-vs-time.

#include <vector>

namespace nopfs::train {

/// Top-1 validation accuracy (percent) after `epoch` completed epochs of
/// the Goyal ResNet-50/ImageNet-1k 90-epoch schedule.  Clamps beyond 90.
[[nodiscard]] double resnet50_top1_at_epoch(double epoch);

/// The full 90-epoch curve (index = epochs completed, 0..90).
[[nodiscard]] std::vector<double> resnet50_top1_curve();

}  // namespace nopfs::train
