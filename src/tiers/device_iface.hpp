#pragma once
// Abstract emulated-device interfaces.
//
// Core code (FetchRouter, prefetchers, loaders, SampleSource) depends on
// these surfaces only; the concrete rate-limited implementations live in
// tiers/devices.hpp (EmulatedTier/EmulatedPfs/EmulatedNic, threaded
// harness) and net/shared_pfs.hpp (SharedPfs, the job-wide contention view
// of a multi-process world).  Keeping the interface free of any concrete
// type is what lets run_training and run_distributed share every fetch and
// prefetch path while pricing the PFS differently.
//
// Devices charge *time*, not capacity; capacity accounting is the storage
// backend's job (src/core/storage_backend.hpp).

#include <memory>
#include <string>
#include <vector>

namespace nopfs::tiers {

/// One worker's storage class j: rate-limited read/write channels.
class TierDevice {
 public:
  virtual ~TierDevice() = default;

  /// Blocks for the emulated duration of reading `mb` from this tier.
  virtual void read(double mb) = 0;

  /// Blocks for the emulated duration of writing `mb` to this tier.
  virtual void write(double mb) = 0;

  [[nodiscard]] virtual const std::string& name() const noexcept = 0;
  [[nodiscard]] virtual double capacity_mb() const noexcept = 0;
  [[nodiscard]] virtual double total_read_mb() const = 0;
  [[nodiscard]] virtual double total_written_mb() const = 0;
};

/// The shared parallel filesystem: reads are priced under the paper's
/// t(gamma) contention curve, where gamma is the number of workers with a
/// read in flight (Sec. 4: "PFS bandwidth is heavily dependent on the
/// number of clients").  Which workers count toward gamma is the
/// implementation's contract: EmulatedPfs sees every reader sharing the
/// object (the threaded harness), SharedPfs sees every rank of the job
/// (the multi-process harness).
class PfsDevice {
 public:
  virtual ~PfsDevice() = default;

  /// Reads `mb` on behalf of `worker`; the worker counts toward gamma for
  /// the duration of the call.
  virtual void read(int worker, double mb) = 0;

  /// Declares `worker`'s reader-thread fan-out: while the worker has any
  /// read in flight it contributes `threads` (default 1) toward gamma, so
  /// `t(gamma)` can be priced per reader thread instead of per rank when a
  /// workload wants that (RuntimeConfig::pfs_thread_weighted_gamma).  The
  /// weight is structural — the worker's configured prefetcher fan-out, not
  /// its instantaneous in-flight count — so the gamma envelope stays
  /// deterministic across launch modes.  Must be called before the worker's
  /// first read; the default implementation keeps the weight at 1.
  virtual void set_reader_threads(int worker, int threads) {
    (void)worker;
    (void)threads;
  }

  /// Number of reader units currently active (this device's view of gamma:
  /// active workers, each weighted by its declared reader-thread count).
  [[nodiscard]] virtual int active_clients() const = 0;

  /// Highest gamma observed so far (the gamma-trace envelope; tests compare
  /// it across launch modes).
  [[nodiscard]] virtual int peak_clients() const = 0;

  /// MB read through this device (this process's share in a multi-process
  /// world; job-wide totals come from the harness's stats allgather).
  [[nodiscard]] virtual double total_read_mb() const = 0;
};

/// A worker's NIC: caps combined remote-fetch traffic at b_c.
class NicDevice {
 public:
  virtual ~NicDevice() = default;

  /// Blocks for the emulated duration of transferring `mb`.
  virtual void transfer(double mb) = 0;

  /// Non-blocking variant for event-loop callers: accounts the transfer
  /// immediately and returns the delay (real seconds) the caller should
  /// impose before releasing the bytes.  The default blocks via transfer()
  /// — correct for any implementation, just not loop-friendly; EmulatedNic
  /// overrides it with a token-bucket deficit reservation.
  [[nodiscard]] virtual double reserve_transfer(double mb) {
    transfer(mb);
    return 0.0;
  }

  [[nodiscard]] virtual double total_transferred_mb() const = 0;
};

/// All emulated devices of one worker node.
struct WorkerDevices {
  std::vector<std::unique_ptr<TierDevice>> tiers;  ///< classes 1..J
  std::unique_ptr<TierDevice> staging;             ///< class 0
  std::unique_ptr<NicDevice> nic;
};

}  // namespace nopfs::tiers
