#pragma once
// Clock abstraction for device emulation.
//
// The threaded runtime emulates storage devices in *scaled real time*: a
// device with virtual throughput R MB/s is emulated by a token bucket
// refilling at R * time_scale MB per real second, so one real second
// represents `time_scale` virtual seconds.  Contention then emerges from
// genuine thread concurrency rather than from a model — the point of the
// runtime experiments is to exercise the production code paths.
//
// Tests use ManualClock to make token-bucket behaviour exactly
// deterministic.

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace nopfs::tiers {

/// Time source measured in (real) seconds.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotone current time in seconds.
  [[nodiscard]] virtual double now() const = 0;

  /// Blocks the calling thread for `seconds` (cooperatively for ManualClock).
  virtual void sleep_for(double seconds) = 0;
};

/// Wall-clock implementation over std::chrono::steady_clock.
class RealClock final : public Clock {
 public:
  RealClock();
  [[nodiscard]] double now() const override;
  void sleep_for(double seconds) override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually advanced clock for deterministic tests.  sleep_for() blocks
/// until advance() has moved the clock past the wake time.
class ManualClock final : public Clock {
 public:
  [[nodiscard]] double now() const override;
  void sleep_for(double seconds) override;

  /// Advances the clock and wakes sleepers whose deadline passed.
  void advance(double seconds);

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  double now_ = 0.0;
};

}  // namespace nopfs::tiers
