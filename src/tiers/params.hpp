#pragma once
// Parameter structs describing a machine's storage hierarchy, exactly the
// quantities of the paper's performance model (Tab. 2):
//
//   d_j      capacity of storage class j                 -> StorageClassParams
//   r_j(p)   aggregate random read throughput, p threads -> ThroughputCurve
//   w_j(p)   aggregate random write throughput           -> ThroughputCurve
//   p_j      prefetcher threads per class
//   t(gamma) PFS aggregate read throughput vs #clients   -> PfsParams
//   b_c      inter-worker network bandwidth              -> NodeParams
//   c, beta  compute and preprocessing throughput        -> NodeParams
//
// Presets reproduce the three systems of the paper: the simulated small
// cluster of Sec. 6.1 (Lassen-derived parameters), Lassen (Sec. 7) and
// Piz Daint (Sec. 7 / Fig. 1).

#include <cstdint>
#include <string>
#include <vector>

#include "util/linreg.hpp"

namespace nopfs::tiers {

/// One storage class j >= 1 (class 0, the staging buffer, is configured
/// separately because it is shared with the training framework).
struct StorageClassParams {
  std::string name;                 ///< e.g. "ram", "ssd"
  double capacity_mb = 0.0;         ///< d_j
  util::ThroughputCurve read_mbps;  ///< r_j(p): aggregate MB/s with p readers
  util::ThroughputCurve write_mbps; ///< w_j(p)
  int prefetch_threads = 1;         ///< p_j

  /// Per-thread read rate r_j(p_j)/p_j used by the performance model.
  [[nodiscard]] double per_thread_read_mbps() const {
    return read_mbps.at(prefetch_threads) / prefetch_threads;
  }
  /// Per-thread write rate w_j(p_j)/p_j.
  [[nodiscard]] double per_thread_write_mbps() const {
    return write_mbps.at(prefetch_threads) / prefetch_threads;
  }
};

/// Staging buffer (storage class 0) parameters.
struct StagingParams {
  double capacity_mb = 5.0 * 1024.0;  ///< d_0, paper default 5 GB
  util::ThroughputCurve read_mbps;    ///< r_0(p)
  util::ThroughputCurve write_mbps;   ///< w_0(p)
  int prefetch_threads = 1;           ///< p_0 >= 1

  [[nodiscard]] double per_thread_write_mbps() const {
    return write_mbps.at(prefetch_threads) / prefetch_threads;
  }
};

/// Parallel filesystem parameters.
///
/// Reads are modeled with two components:
///   - bandwidth: aggregate large-transfer throughput t(gamma), shared
///     among gamma clients (the paper's t(gamma) curve), and
///   - metadata ops: an aggregate op rate (file open/lookup); with gamma
///     clients each read pays gamma/op_rate seconds of op latency.
/// The op term is what makes per-sample small-file reads collapse under
/// contention long before the bandwidth saturates — the transfer-size
/// dependence needed to reproduce both the ImageNet figures (0.1 MB files,
/// op-limited) and CosmoFlow (16.8 MB files, bandwidth-limited) with one
/// model.  op_rate_per_s == 0 disables the op term.
struct PfsParams {
  util::ThroughputCurve agg_read_mbps;  ///< t(gamma), gamma = #clients
  double op_rate_per_s = 0.0;           ///< aggregate metadata ops per second

  /// Per-client bandwidth t(gamma)/gamma (op term excluded).
  [[nodiscard]] double per_client_mbps(int gamma) const {
    if (gamma <= 0) gamma = 1;
    return agg_read_mbps.at(gamma) / gamma;
  }

  /// Per-read op latency with gamma contending clients.
  [[nodiscard]] double op_latency_s(int gamma) const {
    if (op_rate_per_s <= 0.0) return 0.0;
    if (gamma <= 0) gamma = 1;
    return static_cast<double>(gamma) / op_rate_per_s;
  }
};

/// Per-worker (per-rank) node parameters.
struct NodeParams {
  StagingParams staging;                     ///< storage class 0
  std::vector<StorageClassParams> classes;   ///< classes 1..J, fastest first
  double network_mbps = 0.0;                 ///< b_c
  double compute_mbps = 0.0;                 ///< c
  double preprocess_mbps = 0.0;              ///< beta

  /// Total local cache capacity D = sum of d_j (excluding staging buffer,
  /// matching the paper's D definition over classes 1..J).
  [[nodiscard]] double total_cache_mb() const {
    double total = 0.0;
    for (const auto& sc : classes) total += sc.capacity_mb;
    return total;
  }
};

/// Full system description: N homogeneous workers plus the shared PFS.
struct SystemParams {
  std::string name;
  int num_workers = 1;   ///< N
  NodeParams node;
  PfsParams pfs;
};

namespace presets {

/// The simulated small cluster of Sec. 6.1: N=4, c=64 MB/s, beta=200 MB/s,
/// b_c=24 GB/s, 5 GB staging (8 threads, r0(8)=111 GB/s), 120 GB RAM
/// (4 threads, r1(4)=85 GB/s), 900 GB SSD (2 threads, r2(2)=4 GB/s),
/// Lassen PFS curve t(1..8) = 330/730/1540/2870 MB/s.
[[nodiscard]] SystemParams sim_cluster(int num_workers = 4);

/// Lassen (Sec. 7): per-rank 5 GiB staging (8 threads), 25 GiB RAM
/// (4 threads), 300 GiB SSD (2 threads); 4 ranks per node; fat-tree network.
[[nodiscard]] SystemParams lassen(int num_workers);

/// Piz Daint (Sec. 7): per-node 5 GiB staging (4 threads), 40 GiB RAM
/// (2 threads), no SSD; Cray Aries dragonfly; Lustre PFS.
[[nodiscard]] SystemParams piz_daint(int num_workers);

}  // namespace presets

}  // namespace nopfs::tiers
