#pragma once
// Token-bucket rate limiter: the primitive behind every emulated device.
// Tokens are MB; the refill rate is the device's (scaled) throughput.
// acquire() blocks the caller until the requested amount has been granted,
// which serializes concurrent readers exactly the way a saturated device
// does.  The rate can be changed at runtime (the emulated PFS retunes its
// aggregate rate as the number of active clients gamma changes).

#include <mutex>

#include "tiers/clock.hpp"

namespace nopfs::tiers {

class TokenBucket {
 public:
  /// `rate_mb_per_s` may be 0 (acquire() then waits for set_rate()).
  /// `burst_mb` caps accumulated idle tokens (default: one second of rate).
  TokenBucket(Clock& clock, double rate_mb_per_s, double burst_mb = -1.0);

  TokenBucket(const TokenBucket&) = delete;
  TokenBucket& operator=(const TokenBucket&) = delete;

  /// Blocks until `mb` tokens have been consumed.  Fair in arrival order is
  /// not guaranteed, but total grant rate never exceeds the configured rate.
  void acquire(double mb);

  /// Non-blocking variant: consumes and returns true if enough tokens are
  /// currently available.
  [[nodiscard]] bool try_acquire(double mb);

  /// Non-blocking deficit reservation: consumes `mb` immediately (tokens may
  /// go negative, exactly like acquire()) and returns the delay in real
  /// seconds until the deficit refills — 0 when tokens were available.  The
  /// caller owes that wait by other means (the socket reactor prices a
  /// reply's NIC time with a timer instead of blocking its event loop).
  /// Back-to-back reservations stack: each later caller sees the deeper
  /// deficit, matching acquire()'s serialization of a saturated device.
  [[nodiscard]] double reserve(double mb);

  /// Retunes the refill rate (MB per real second).
  void set_rate(double rate_mb_per_s);

  [[nodiscard]] double rate() const;

  /// Total MB granted since construction (for tests and stats).
  [[nodiscard]] double total_granted() const;

 private:
  void refill_locked();

  Clock& clock_;
  mutable std::mutex mutex_;
  double rate_ = 0.0;
  double burst_ = 0.0;
  double tokens_ = 0.0;
  double last_refill_ = 0.0;
  double granted_ = 0.0;
};

}  // namespace nopfs::tiers
