#pragma once
// Emulated storage devices for the threaded runtime.
//
// Concrete implementations of the device interfaces (device_iface.hpp):
// EmulatedTier models one storage class of one worker: reads and writes
// draw from token buckets refilling at r_j(p_j) * time_scale and
// w_j(p_j) * time_scale respectively.  EmulatedPfs models the shared
// parallel filesystem: a single bucket whose rate follows t(gamma) as the
// number of active client workers gamma changes — exactly the contention
// behaviour the paper measures (Sec. 4: "PFS bandwidth is heavily dependent
// on the number of clients").  One EmulatedPfs shared by every worker of a
// process prices job-wide contention (run_training); a multi-process job
// uses net::SharedPfs instead, which gossips gamma over the transport.

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "tiers/device_iface.hpp"
#include "tiers/params.hpp"
#include "tiers/token_bucket.hpp"

namespace nopfs::tiers {

/// One worker's storage class j: rate-limited read/write channels.
class EmulatedTier final : public TierDevice {
 public:
  /// `time_scale`: virtual seconds emulated per real second.
  EmulatedTier(Clock& clock, const StorageClassParams& params, double time_scale);

  void read(double mb) override;
  void write(double mb) override;

  [[nodiscard]] const std::string& name() const noexcept override { return name_; }
  [[nodiscard]] double capacity_mb() const noexcept override { return capacity_mb_; }
  [[nodiscard]] double total_read_mb() const override {
    return read_bucket_.total_granted();
  }
  [[nodiscard]] double total_written_mb() const override {
    return write_bucket_.total_granted();
  }

 private:
  std::string name_;
  double capacity_mb_;
  TokenBucket read_bucket_;
  TokenBucket write_bucket_;
};

/// The shared PFS: one aggregate-rate bucket retuned as clients come and go.
class EmulatedPfs final : public PfsDevice {
 public:
  EmulatedPfs(Clock& clock, const PfsParams& params, double time_scale);

  /// Reads `mb` on behalf of `worker`.  While the call is in flight the
  /// worker counts toward gamma with its declared reader-thread weight
  /// (default 1); the aggregate rate is t(gamma)*scale.
  void read(int worker, double mb) override;

  /// Declares `worker`'s reader-thread weight (thread-aware gamma; must be
  /// set before the worker's first read).
  void set_reader_threads(int worker, int threads) override;

  /// Weighted count of workers currently reading (gamma).
  [[nodiscard]] int active_clients() const override;

  /// Highest gamma observed so far.
  [[nodiscard]] int peak_clients() const override;

  [[nodiscard]] double total_read_mb() const override {
    return bucket_.total_granted();
  }

 private:
  void retune_locked();

  /// Declared weight of `worker` (1 when never declared).  Caller must
  /// hold mutex_.
  [[nodiscard]] int weight_locked(int worker) const;

  PfsParams params_;
  double time_scale_;
  TokenBucket bucket_;
  mutable std::mutex mutex_;
  std::vector<int> active_per_worker_;  // outstanding requests per worker id
  std::vector<int> weight_per_worker_;  // declared reader-thread fan-out
  std::vector<int> charged_weight_;     // weight counted at the 0->1 edge
  int active_weight_ = 0;               // gamma: sum of active workers' weights
  int peak_weight_ = 0;
};

/// A worker's NIC: caps combined remote-fetch traffic at b_c.
class EmulatedNic final : public NicDevice {
 public:
  EmulatedNic(Clock& clock, double bandwidth_mbps, double time_scale);

  void transfer(double mb) override;

  [[nodiscard]] double reserve_transfer(double mb) override;

  [[nodiscard]] double total_transferred_mb() const override {
    return bucket_.total_granted();
  }

 private:
  TokenBucket bucket_;
};

/// Builds the full device set for an N-worker system.
class EmulatedCluster {
 public:
  EmulatedCluster(Clock& clock, const SystemParams& params, double time_scale);

  [[nodiscard]] int num_workers() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] WorkerDevices& worker(int i) { return *workers_.at(i); }
  [[nodiscard]] EmulatedPfs& pfs() noexcept { return *pfs_; }
  [[nodiscard]] const SystemParams& params() const noexcept { return params_; }
  [[nodiscard]] double time_scale() const noexcept { return time_scale_; }
  [[nodiscard]] Clock& clock() noexcept { return clock_; }

 private:
  Clock& clock_;
  SystemParams params_;
  double time_scale_;
  std::vector<std::unique_ptr<WorkerDevices>> workers_;
  std::unique_ptr<EmulatedPfs> pfs_;
};

}  // namespace nopfs::tiers
