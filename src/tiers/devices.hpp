#pragma once
// Emulated storage devices for the threaded runtime.
//
// EmulatedTier models one storage class of one worker: reads and writes
// draw from token buckets refilling at r_j(p_j) * time_scale and
// w_j(p_j) * time_scale respectively.  EmulatedPfs models the shared
// parallel filesystem: a single bucket whose rate follows t(gamma) as the
// number of active client workers gamma changes — exactly the contention
// behaviour the paper measures (Sec. 4: "PFS bandwidth is heavily dependent
// on the number of clients").
//
// These devices charge *time*, not capacity; capacity accounting is the
// storage backend's job (src/core/storage_backend.hpp).

#include <atomic>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "tiers/params.hpp"
#include "tiers/token_bucket.hpp"

namespace nopfs::tiers {

/// One worker's storage class j: rate-limited read/write channels.
class EmulatedTier {
 public:
  /// `time_scale`: virtual seconds emulated per real second.
  EmulatedTier(Clock& clock, const StorageClassParams& params, double time_scale);

  /// Blocks for the emulated duration of reading `mb` from this tier.
  void read(double mb);

  /// Blocks for the emulated duration of writing `mb` to this tier.
  void write(double mb);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] double capacity_mb() const noexcept { return capacity_mb_; }
  [[nodiscard]] double total_read_mb() const { return read_bucket_.total_granted(); }
  [[nodiscard]] double total_written_mb() const { return write_bucket_.total_granted(); }

 private:
  std::string name_;
  double capacity_mb_;
  TokenBucket read_bucket_;
  TokenBucket write_bucket_;
};

/// The shared PFS: one aggregate-rate bucket retuned as clients come and go.
class EmulatedPfs {
 public:
  EmulatedPfs(Clock& clock, const PfsParams& params, double time_scale);

  /// Reads `mb` on behalf of `worker`.  While the call is in flight the
  /// worker counts toward gamma; the aggregate rate is t(gamma)*scale.
  void read(int worker, double mb);

  /// Number of workers currently reading (gamma).
  [[nodiscard]] int active_clients() const;

  [[nodiscard]] double total_read_mb() const { return bucket_.total_granted(); }

 private:
  void retune_locked();

  PfsParams params_;
  double time_scale_;
  TokenBucket bucket_;
  mutable std::mutex mutex_;
  std::vector<int> active_per_worker_;  // outstanding requests per worker id
  int active_workers_ = 0;
};

/// A worker's NIC: caps combined remote-fetch traffic at b_c.
class EmulatedNic {
 public:
  EmulatedNic(Clock& clock, double bandwidth_mbps, double time_scale);

  /// Blocks for the emulated duration of transferring `mb`.
  void transfer(double mb);

  [[nodiscard]] double total_transferred_mb() const { return bucket_.total_granted(); }

 private:
  TokenBucket bucket_;
};

/// All emulated devices of one worker node plus handles to shared ones.
struct WorkerDevices {
  std::vector<std::unique_ptr<EmulatedTier>> tiers;  ///< classes 1..J
  std::unique_ptr<EmulatedTier> staging;             ///< class 0
  std::unique_ptr<EmulatedNic> nic;
};

/// Builds the full device set for an N-worker system.
class EmulatedCluster {
 public:
  EmulatedCluster(Clock& clock, const SystemParams& params, double time_scale);

  [[nodiscard]] int num_workers() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] WorkerDevices& worker(int i) { return *workers_.at(i); }
  [[nodiscard]] EmulatedPfs& pfs() noexcept { return *pfs_; }
  [[nodiscard]] const SystemParams& params() const noexcept { return params_; }
  [[nodiscard]] double time_scale() const noexcept { return time_scale_; }
  [[nodiscard]] Clock& clock() noexcept { return clock_; }

 private:
  Clock& clock_;
  SystemParams params_;
  double time_scale_;
  std::vector<std::unique_ptr<WorkerDevices>> workers_;
  std::unique_ptr<EmulatedPfs> pfs_;
};

}  // namespace nopfs::tiers
