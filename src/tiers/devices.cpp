#include "tiers/devices.hpp"

#include <stdexcept>

namespace nopfs::tiers {

EmulatedTier::EmulatedTier(Clock& clock, const StorageClassParams& params,
                           double time_scale)
    : name_(params.name),
      capacity_mb_(params.capacity_mb),
      read_bucket_(clock, params.read_mbps.at(params.prefetch_threads) * time_scale),
      write_bucket_(clock, params.write_mbps.at(params.prefetch_threads) * time_scale) {}

void EmulatedTier::read(double mb) { read_bucket_.acquire(mb); }

void EmulatedTier::write(double mb) { write_bucket_.acquire(mb); }

EmulatedPfs::EmulatedPfs(Clock& clock, const PfsParams& params, double time_scale)
    : params_(params),
      time_scale_(time_scale),
      bucket_(clock, params.agg_read_mbps.at(1) * time_scale) {}

void EmulatedPfs::retune_locked() {
  const int gamma = active_weight_ > 0 ? active_weight_ : 1;
  if (active_weight_ > peak_weight_) peak_weight_ = active_weight_;
  bucket_.set_rate(params_.agg_read_mbps.at(gamma) * time_scale_);
}

int EmulatedPfs::weight_locked(int worker) const {
  return static_cast<std::size_t>(worker) < weight_per_worker_.size()
             ? weight_per_worker_[worker]
             : 1;
}

void EmulatedPfs::set_reader_threads(int worker, int threads) {
  if (worker < 0) throw std::invalid_argument("EmulatedPfs: negative worker id");
  const std::scoped_lock lock(mutex_);
  if (static_cast<std::size_t>(worker) < active_per_worker_.size() &&
      active_per_worker_[worker] > 0) {
    // Same precondition SharedPfs enforces: changing the weight mid-read
    // would desynchronize the release from the acquire's charge.
    throw std::logic_error("EmulatedPfs: reader weight changed with reads in flight");
  }
  if (static_cast<std::size_t>(worker) >= weight_per_worker_.size()) {
    weight_per_worker_.resize(static_cast<std::size_t>(worker) + 1, 1);
  }
  weight_per_worker_[worker] = threads > 1 ? threads : 1;
}

void EmulatedPfs::read(int worker, double mb) {
  if (worker < 0) throw std::invalid_argument("EmulatedPfs: negative worker id");
  {
    const std::scoped_lock lock(mutex_);
    if (static_cast<std::size_t>(worker) >= active_per_worker_.size()) {
      active_per_worker_.resize(static_cast<std::size_t>(worker) + 1, 0);
      charged_weight_.resize(static_cast<std::size_t>(worker) + 1, 0);
    }
    if (active_per_worker_[worker]++ == 0) {
      // Remember the weight actually charged, so the matching 1->0 edge
      // subtracts the same amount no matter what was declared in between.
      charged_weight_[worker] = weight_locked(worker);
      active_weight_ += charged_weight_[worker];
    }
    retune_locked();
  }
  bucket_.acquire(mb);
  {
    const std::scoped_lock lock(mutex_);
    if (--active_per_worker_[worker] == 0) {
      active_weight_ -= charged_weight_[worker];
      charged_weight_[worker] = 0;
    }
    retune_locked();
  }
}

int EmulatedPfs::active_clients() const {
  const std::scoped_lock lock(mutex_);
  return active_weight_;
}

int EmulatedPfs::peak_clients() const {
  const std::scoped_lock lock(mutex_);
  return peak_weight_;
}

EmulatedNic::EmulatedNic(Clock& clock, double bandwidth_mbps, double time_scale)
    : bucket_(clock, bandwidth_mbps * time_scale) {}

void EmulatedNic::transfer(double mb) { bucket_.acquire(mb); }

double EmulatedNic::reserve_transfer(double mb) { return bucket_.reserve(mb); }

EmulatedCluster::EmulatedCluster(Clock& clock, const SystemParams& params,
                                 double time_scale)
    : clock_(clock), params_(params), time_scale_(time_scale) {
  if (params.num_workers <= 0) {
    throw std::invalid_argument("EmulatedCluster: num_workers must be positive");
  }
  pfs_ = std::make_unique<EmulatedPfs>(clock, params.pfs, time_scale);
  workers_.reserve(static_cast<std::size_t>(params.num_workers));
  for (int i = 0; i < params.num_workers; ++i) {
    auto devices = std::make_unique<WorkerDevices>();
    StorageClassParams staging_as_class;
    staging_as_class.name = "staging";
    staging_as_class.capacity_mb = params.node.staging.capacity_mb;
    staging_as_class.read_mbps = params.node.staging.read_mbps;
    staging_as_class.write_mbps = params.node.staging.write_mbps;
    staging_as_class.prefetch_threads = params.node.staging.prefetch_threads;
    devices->staging = std::make_unique<EmulatedTier>(clock, staging_as_class, time_scale);
    for (const auto& sc : params.node.classes) {
      devices->tiers.push_back(std::make_unique<EmulatedTier>(clock, sc, time_scale));
    }
    devices->nic = std::make_unique<EmulatedNic>(clock, params.node.network_mbps, time_scale);
    workers_.push_back(std::move(devices));
  }
}

}  // namespace nopfs::tiers
