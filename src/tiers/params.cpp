#include "tiers/params.hpp"

#include "util/units.hpp"

namespace nopfs::tiers {
namespace presets {

namespace {

using util::kGB;
using Curve = util::ThroughputCurve;

/// Memory-like device: throughput scales ~linearly with reader threads.
Curve linear_curve(int threads, double agg_mbps) {
  return Curve({{0.0, 0.0}, {static_cast<double>(threads), agg_mbps}});
}

/// Lassen (Sierra-class CORAL) GPFS large-transfer aggregate bandwidth:
/// ~1.3-1.5 GB/s per client, mildly sublinear toward the ~1.3 TB/s design
/// point.  Small-file behaviour comes from the metadata-op rate (below),
/// calibrated so the model reproduces the paper's crossovers: PyTorch
/// compute-bound through 128 GPUs on ImageNet-1k, ~5.4x NoPFS speedup at
/// 1024 GPUs, and ~2.1x on CosmoFlow's 16.8 MB samples.
Curve lassen_pfs_curve() {
  return Curve({{1, 1'500},
                {8, 11'600},
                {64, 85'000},
                {256, 330'000},
                {1024, 1'300'000}});
}

/// Piz Daint Lustre (Sonexion): ~80 GB/s aggregate bandwidth, op rate
/// calibrated to the paper's 2.2x NoPFS speedup at 256 GPUs.
Curve daint_pfs_curve() {
  return Curve({{1, 1'000},
                {8, 7'200},
                {32, 26'000},
                {128, 62'000},
                {256, 80'000}});
}

StagingParams staging_5gb(int threads, double agg_read_mbps) {
  StagingParams staging;
  staging.capacity_mb = 5.0 * kGB;
  staging.prefetch_threads = threads;
  staging.read_mbps = linear_curve(threads, agg_read_mbps);
  staging.write_mbps = linear_curve(threads, agg_read_mbps);
  return staging;
}

StorageClassParams ram_class(double capacity_mb, int threads, double agg_mbps) {
  StorageClassParams ram;
  ram.name = "ram";
  ram.capacity_mb = capacity_mb;
  ram.prefetch_threads = threads;
  ram.read_mbps = linear_curve(threads, agg_mbps);
  ram.write_mbps = linear_curve(threads, agg_mbps);
  return ram;
}

StorageClassParams ssd_class(double capacity_mb, int threads, double agg_mbps) {
  StorageClassParams ssd;
  ssd.name = "ssd";
  ssd.capacity_mb = capacity_mb;
  ssd.prefetch_threads = threads;
  // SSDs saturate: near-linear up to the configured thread count, then flat.
  ssd.read_mbps = Curve({{0.0, 0.0},
                         {static_cast<double>(threads), agg_mbps},
                         {static_cast<double>(threads) * 4.0, agg_mbps * 1.15}});
  ssd.write_mbps = Curve({{0.0, 0.0},
                          {static_cast<double>(threads), agg_mbps * 0.6},
                          {static_cast<double>(threads) * 4.0, agg_mbps * 0.7}});
  return ssd;
}

}  // namespace

SystemParams sim_cluster(int num_workers) {
  SystemParams sys;
  sys.name = "sim_cluster";
  sys.num_workers = num_workers;
  // Paper Sec. 6.1: r0(8)=111 GB/s, r1(4)=85 GB/s, r2(2)=4 GB/s.
  sys.node.staging = staging_5gb(/*threads=*/8, /*agg=*/111.0 * kGB);
  sys.node.classes.push_back(ram_class(120.0 * kGB, 4, 85.0 * kGB));
  sys.node.classes.push_back(ssd_class(900.0 * kGB, 2, 4.0 * kGB));
  sys.node.network_mbps = 24'000.0;  // b_c = 24 GB/s
  sys.node.compute_mbps = 64.0;      // c
  sys.node.preprocess_mbps = 200.0;  // beta
  // Effective aggregate throughput for *per-sample random small reads*
  // (open + seek + ~0.1 MB read), calibrated so the model reproduces the
  // Fig. 8 policy ratios the paper reports.  The raw IOR-style numbers in
  // Sec. 6.1 (t(4)=1540 MB/s etc.) describe large-transfer bandwidth; under
  // them a 4-worker cluster with c=64 MB/s is compute-bound for every
  // policy, which contradicts the paper's own Fig. 8 — see EXPERIMENTS.md.
  sys.pfs.agg_read_mbps = Curve({{1, 120}, {2, 180}, {4, 240}, {8, 280}});
  return sys;
}

SystemParams lassen(int num_workers) {
  SystemParams sys;
  sys.name = "lassen";
  sys.num_workers = num_workers;
  // Sec. 7: per rank (4 ranks/node) 5 GiB staging w/ 8 threads, 25 GiB RAM
  // w/ 4 threads, 300 GiB SSD w/ 2 threads.
  sys.node.staging = staging_5gb(8, 111.0 * kGB);
  sys.node.classes.push_back(ram_class(25.0 * kGB, 4, 85.0 * kGB));
  // 1.6 TB node-local NVMe shared by 4 ranks -> ~1.5 GB/s per rank.
  sys.node.classes.push_back(ssd_class(300.0 * kGB, 2, 1'500.0));
  // ~25 GB/s fat-tree injection per node shared by 4 ranks.
  sys.node.network_mbps = 6'250.0;
  // ResNet-50 on V100 (FP32, batch 120): ~410 samples/s * 0.1077 MB.
  sys.node.compute_mbps = 44.0;
  sys.node.preprocess_mbps = 600.0;
  sys.pfs.agg_read_mbps = lassen_pfs_curve();
  sys.pfs.op_rate_per_s = 80'000.0;  // aggregate metadata ops/s
  return sys;
}

SystemParams piz_daint(int num_workers) {
  SystemParams sys;
  sys.name = "piz_daint";
  sys.num_workers = num_workers;
  // Sec. 7: per node 5 GiB staging w/ 4 threads, 40 GiB RAM w/ 2 threads,
  // no node-local SSD (hardware independence matters here).
  sys.node.staging = staging_5gb(4, 60.0 * kGB);
  sys.node.classes.push_back(ram_class(40.0 * kGB, 2, 40.0 * kGB));
  // Cray Aries dragonfly: ~10 GB/s injection bandwidth per node.
  sys.node.network_mbps = 10'240.0;
  // ResNet-50 on P100 (batch 64): ~250 samples/s * 0.1077 MB.
  sys.node.compute_mbps = 27.0;
  sys.node.preprocess_mbps = 500.0;
  sys.pfs.agg_read_mbps = daint_pfs_curve();
  sys.pfs.op_rate_per_s = 30'000.0;  // aggregate metadata ops/s
  return sys;
}

}  // namespace presets
}  // namespace nopfs::tiers
