#include "tiers/token_bucket.hpp"

#include <algorithm>

namespace nopfs::tiers {

TokenBucket::TokenBucket(Clock& clock, double rate_mb_per_s, double burst_mb)
    : clock_(clock),
      rate_(std::max(0.0, rate_mb_per_s)),
      burst_(burst_mb >= 0.0 ? burst_mb : std::max(1.0, rate_) * 0.05),
      last_refill_(clock.now()) {}

void TokenBucket::refill_locked() {
  const double now = clock_.now();
  const double dt = now - last_refill_;
  if (dt > 0.0) {
    tokens_ = std::min(burst_, tokens_ + dt * rate_);
    last_refill_ = now;
  }
}

void TokenBucket::acquire(double mb) {
  if (mb <= 0.0) return;
  // Deficit model: consume immediately (tokens may go negative) and sleep
  // until the deficit has refilled.  This keeps the long-run grant rate at
  // exactly `rate_` without the burst cap throttling large requests, and
  // serializes concurrent acquirers the way a saturated device does (each
  // later arrival sees a deeper deficit and waits longer).
  {
    const std::scoped_lock lock(mutex_);
    refill_locked();
    tokens_ -= mb;
    granted_ += mb;
  }
  for (;;) {
    double wait = 0.0;
    {
      const std::scoped_lock lock(mutex_);
      refill_locked();
      if (tokens_ >= 0.0) return;
      // Cap the sleep so rate changes propagate reasonably quickly.
      wait = rate_ > 0.0 ? std::min(-tokens_ / rate_, 0.25) : 0.001;
      wait = std::max(wait, 1e-6);
    }
    clock_.sleep_for(wait);
  }
}

double TokenBucket::reserve(double mb) {
  if (mb <= 0.0) return 0.0;
  const std::scoped_lock lock(mutex_);
  refill_locked();
  tokens_ -= mb;
  granted_ += mb;
  if (tokens_ >= 0.0) return 0.0;
  // A zero rate means "wait for set_rate()"; acquire() polls for that, a
  // reservation can only report a token of patience and let the caller's
  // timer fire into a still-deficit bucket (the next reserve sees it).
  return rate_ > 0.0 ? -tokens_ / rate_ : 0.001;
}

bool TokenBucket::try_acquire(double mb) {
  const std::scoped_lock lock(mutex_);
  refill_locked();
  if (tokens_ < mb) return false;
  tokens_ -= mb;
  granted_ += mb;
  return true;
}

void TokenBucket::set_rate(double rate_mb_per_s) {
  const std::scoped_lock lock(mutex_);
  refill_locked();
  rate_ = std::max(0.0, rate_mb_per_s);
  burst_ = std::max(1.0, rate_) * 0.05;
}

double TokenBucket::rate() const {
  const std::scoped_lock lock(mutex_);
  return rate_;
}

double TokenBucket::total_granted() const {
  const std::scoped_lock lock(mutex_);
  return granted_;
}

}  // namespace nopfs::tiers
