#include "tiers/clock.hpp"

#include <thread>

namespace nopfs::tiers {

RealClock::RealClock() : epoch_(std::chrono::steady_clock::now()) {}

double RealClock::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count();
}

void RealClock::sleep_for(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

double ManualClock::now() const {
  const std::scoped_lock lock(mutex_);
  return now_;
}

void ManualClock::sleep_for(double seconds) {
  std::unique_lock lock(mutex_);
  const double deadline = now_ + seconds;
  cv_.wait(lock, [&] { return now_ >= deadline; });
}

void ManualClock::advance(double seconds) {
  {
    const std::scoped_lock lock(mutex_);
    now_ += seconds;
  }
  cv_.notify_all();
}

}  // namespace nopfs::tiers
