#pragma once
// Metadata store: the catalog of locally cached samples (paper Sec. 5.2.2).
//
// Thread-safe.  Tracks which storage class holds each locally cached sample
// and the per-class used capacity.  The prefetchers insert entries as they
// cache samples; the fetch router and the remote-serve handler query it.

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"

namespace nopfs::core {

class MetadataStore {
 public:
  /// `num_classes` local storage classes (1..J, 0-based here).
  explicit MetadataStore(int num_classes);

  /// Records that `sample` (size_mb) is now cached in `storage_class`.
  /// Returns false (and records nothing) if already present.
  bool insert(data::SampleId sample, int storage_class, double size_mb);

  /// Storage class holding `sample`, or nullopt.
  [[nodiscard]] std::optional<int> find(data::SampleId sample) const;

  /// Removes `sample`; returns the class it was in, or nullopt.
  std::optional<int> erase(data::SampleId sample);

  [[nodiscard]] bool contains(data::SampleId sample) const;

  /// MB currently cached in `storage_class`.
  [[nodiscard]] double used_mb(int storage_class) const;

  /// Number of samples cached in `storage_class`.
  [[nodiscard]] std::uint64_t count(int storage_class) const;

  /// Total cached samples across classes.
  [[nodiscard]] std::uint64_t total_count() const;

 private:
  struct Entry {
    int storage_class;
    double size_mb;
  };

  mutable std::mutex mutex_;
  std::unordered_map<data::SampleId, Entry> catalog_;
  std::vector<double> used_mb_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace nopfs::core
