#pragma once
// The staging buffer: storage class 0 (paper Secs. 4, 5.2.2).
//
// A fixed-capacity in-memory ring shared between the prefetchers (producers)
// and the training framework (consumer).  Filled "in a circular manner":
// slots are reserved in access-stream order (so consumption order equals R),
// but the p_0 prefetch threads may *complete* fills out of order; the
// consumer blocks until the next-in-order slot is ready.  After the consumer
// releases a sample, its space is immediately reusable — the paper's
// approximation of Bélády Rules 2–4 (a consumed sample's next use is at
// least an epoch away, everything still pending is needed sooner).
//
// get() exposes a zero-copy view into the ring (the Python interface's
// buffer_p); release() frees the space.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "data/dataset.hpp"

namespace nopfs::core {

/// A slot reserved by a producer: fill `data`, then commit(seq).
struct ProducerSlot {
  std::uint64_t seq = 0;              ///< position in the access stream
  data::SampleId sample = 0;
  std::span<std::uint8_t> data;       ///< region to fill
};

/// A ready sample handed to the consumer; call release(seq) when done.
struct ConsumedSample {
  std::uint64_t seq = 0;
  data::SampleId sample = 0;
  std::span<const std::uint8_t> data;
};

class StagingBuffer {
 public:
  /// `capacity_bytes` is d_0.  A single sample larger than the capacity is
  /// rejected with std::invalid_argument at reserve time.
  explicit StagingBuffer(std::size_t capacity_bytes);

  StagingBuffer(const StagingBuffer&) = delete;
  StagingBuffer& operator=(const StagingBuffer&) = delete;

  /// Producer: reserves ring space for stream position `seq` (positions must
  /// be reserved in strictly increasing order across all producer threads —
  /// the prefetcher dispenses them from a shared counter).  Blocks until
  /// space is available.  Returns nullopt after close().
  [[nodiscard]] std::optional<ProducerSlot> reserve(std::uint64_t seq,
                                                    data::SampleId sample,
                                                    std::size_t size_bytes);

  /// Producer: marks a reserved slot filled; wakes the consumer when it is
  /// the next in order.
  void commit(std::uint64_t seq);

  /// Consumer: blocks until stream position `expected_seq` is ready (or the
  /// buffer is closed -> nullopt).  Zero-copy view valid until release().
  [[nodiscard]] std::optional<ConsumedSample> consume(std::uint64_t expected_seq);

  /// Consumer: frees the space of a consumed sample.  Must be called in
  /// consumption order (FIFO), which is the natural training order.
  void release(std::uint64_t seq);

  /// Unblocks all waiters; further reserve()/consume() return nullopt.
  void close();

  [[nodiscard]] std::size_t capacity_bytes() const noexcept { return capacity_; }

  /// Bytes currently reserved (filled or in flight).
  [[nodiscard]] std::size_t used_bytes() const;

  /// Total seconds the consumer spent blocked in consume() so far.
  [[nodiscard]] double consumer_stall_s() const;

 private:
  struct Entry {
    std::uint64_t seq = 0;
    data::SampleId sample = 0;
    std::size_t offset = 0;
    std::size_t size = 0;
    bool ready = false;
    bool consumed = false;
  };

  /// True if [head_, head_+size) fits without overlapping the tail.
  [[nodiscard]] bool fits_locked(std::size_t size) const;

  std::vector<std::uint8_t> ring_;
  std::size_t capacity_;

  mutable std::mutex mutex_;
  std::condition_variable space_cv_;   ///< producers wait for space
  std::condition_variable ready_cv_;   ///< consumer waits for commits
  std::deque<Entry> entries_;          ///< in seq order
  std::deque<std::size_t> wasted_;     ///< ring-end bytes skipped per entry
  std::size_t head_ = 0;               ///< next write offset
  std::size_t tail_ = 0;               ///< oldest live byte
  std::size_t used_ = 0;
  bool closed_ = false;
  double consumer_stall_s_ = 0.0;
};

}  // namespace nopfs::core
