#pragma once
// Clairvoyant access-stream generation (paper Secs. 2, 3, 5.1).
//
// Mini-batch SGD shuffles the F sample indices once per epoch with a seeded
// PRNG and partitions them among N workers.  Given the seed, the entire
// access sequence R of every worker is therefore known before training
// starts — this is the clairvoyance NoPFS exploits.
//
// The partition scheme matches PyTorch's DistributedSampler: worker i takes
// the shuffled positions i, i+N, i+2N, ... of each epoch, and consumes them
// in b_i = B/N-sized local batches.  Epoch permutations are derived from
// independent PRNG streams (seed, epoch), so any epoch can be generated
// without replaying earlier ones.

#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace nopfs::core {

/// Shuffle algorithm selector.  The paper's Job exposes 'uniform'
/// (full-dataset random reshuffling); the enum leaves room for others.
enum class ShuffleKind { kUniform };

/// Everything needed to regenerate the access pattern of a training run.
struct StreamConfig {
  std::uint64_t seed = 1;          ///< PRNG seed shared by all workers
  std::uint64_t num_samples = 0;   ///< F
  int num_workers = 1;             ///< N
  int num_epochs = 1;              ///< E
  std::uint64_t global_batch = 1;  ///< B (summed over workers)
  bool drop_last = true;           ///< drop the final partial batch
  ShuffleKind shuffle = ShuffleKind::kUniform;

  /// Iterations per epoch: T = floor(F/B) or ceil(F/B) (paper Sec. 4).
  [[nodiscard]] std::uint64_t iterations_per_epoch() const noexcept;

  /// Per-worker local batch size b_i = B/N (B must be divisible by N).
  [[nodiscard]] std::uint64_t local_batch() const noexcept;

  /// Number of samples worker `rank` consumes per epoch (|R|/E).
  [[nodiscard]] std::uint64_t samples_per_worker_epoch() const noexcept;

  /// Throws std::invalid_argument when inconsistent.
  void validate() const;
};

/// One access in a worker's stream, with its position metadata.
struct Access {
  data::SampleId sample = 0;
  int epoch = 0;
  std::uint64_t iteration = 0;       ///< global iteration h within the epoch
  std::uint64_t position = 0;        ///< index f into the worker's stream R
};

/// Deterministic generator of per-worker access streams.
class AccessStreamGenerator {
 public:
  explicit AccessStreamGenerator(StreamConfig config);

  [[nodiscard]] const StreamConfig& config() const noexcept { return config_; }

  /// The global shuffled sample order for `epoch` (length F).
  [[nodiscard]] std::vector<data::SampleId> epoch_order(int epoch) const;

  /// In-place variant: fills `out` (resized to F) with the epoch order,
  /// reusing its allocation — no per-epoch allocation in steady state.
  void epoch_order_into(int epoch, std::vector<data::SampleId>& out) const;

  /// Shared variant: returns the epoch order through the process-wide
  /// EpochOrderCache, so concurrent simulations of the same (seed, epoch, F)
  /// generate the permutation once and share it.  The permutation is
  /// value-identical to epoch_order() whether or not it was cached.
  [[nodiscard]] std::shared_ptr<const std::vector<data::SampleId>> epoch_order_shared(
      int epoch) const;

  /// Worker `rank`'s access sequence for `epoch`, in consumption order
  /// (length samples_per_worker_epoch()).
  [[nodiscard]] std::vector<data::SampleId> worker_epoch_stream(int rank, int epoch) const;

  /// Worker `rank`'s full access sequence R across all epochs.
  [[nodiscard]] std::vector<data::SampleId> worker_stream(int rank) const;

  /// Calls `visit(Access)` for every access of worker `rank` in order,
  /// without materializing R (epoch orders are generated one at a time).
  template <typename Visitor>
  void for_each_access(int rank, Visitor&& visit) const {
    std::uint64_t position = 0;
    // One buffer reused across epochs (not the shared cache: a library
    // client replaying a stream should stay allocation-transient instead of
    // pinning permutations in process-global memory; the cache is for
    // concurrent simulations that genuinely share them).
    std::vector<data::SampleId> order;
    for (int e = 0; e < config_.num_epochs; ++e) {
      epoch_order_into(e, order);
      const auto consumed = config_.iterations_per_epoch() * config_.global_batch;
      const auto local_b = config_.local_batch();
      for (std::uint64_t h = 0; h < config_.iterations_per_epoch(); ++h) {
        for (std::uint64_t l = 0; l < local_b; ++l) {
          // Strided partition: the l-th sample of worker `rank`'s h-th local
          // batch sits at global position (h * local_b + l) * N + rank.
          const std::uint64_t global_pos =
              (h * local_b + l) * static_cast<std::uint64_t>(config_.num_workers) +
              static_cast<std::uint64_t>(rank);
          if (global_pos >= std::min<std::uint64_t>(order.size(), consumed)) continue;
          visit(Access{order[global_pos], e, h, position++});
        }
      }
    }
  }

  /// Worker that consumes global shuffled position `global_pos` of an epoch.
  [[nodiscard]] int owner_of_position(std::uint64_t global_pos) const noexcept {
    return static_cast<int>(global_pos % static_cast<std::uint64_t>(config_.num_workers));
  }

 private:
  StreamConfig config_;
};

}  // namespace nopfs::core
