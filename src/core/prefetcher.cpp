#include "core/prefetcher.hpp"

#include <chrono>

#include "util/log.hpp"

namespace nopfs::core {

ClassPrefetcher::ClassPrefetcher(int cls, const ClassPlan& plan,
                                 const data::Dataset& dataset, FetchRouter& router,
                                 MetadataStore& metadata,
                                 std::vector<std::unique_ptr<StorageBackend>>& backends,
                                 tiers::WorkerDevices* devices, int num_threads)
    : cls_(cls),
      plan_(plan),
      dataset_(dataset),
      router_(router),
      metadata_(metadata),
      backends_(backends),
      devices_(devices),
      num_threads_(num_threads < 1 ? 1 : num_threads) {}

ClassPrefetcher::~ClassPrefetcher() { stop(); }

void ClassPrefetcher::start() {
  threads_.reserve(static_cast<std::size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    threads_.emplace_back([this] { thread_main(); });
  }
}

void ClassPrefetcher::stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void ClassPrefetcher::join() {
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

bool ClassPrefetcher::done() const noexcept {
  return completed_.load(std::memory_order_acquire) >= plan_.samples.size();
}

void ClassPrefetcher::thread_main() {
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) return;
    const std::uint64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= plan_.samples.size()) return;
    const data::SampleId sample = plan_.samples[i];
    // prefetch_planned claims, fetches and stores; it is a no-op when the
    // staging path (load-imbalance smoothing) already cached or claimed
    // the sample — planned samples are materialized exactly once.
    if (router_.prefetch_planned(sample, dataset_.size_mb(sample))) {
      fetched_.fetch_add(1, std::memory_order_relaxed);
    }
    router_.note_class_progress(cls_);
    completed_.fetch_add(1, std::memory_order_release);
  }
}

StagingPrefetcher::StagingPrefetcher(const std::vector<data::SampleId>& stream,
                                     const data::Dataset& dataset, StagingBuffer& buffer,
                                     FetchRouter& router, tiers::WorkerDevices* devices,
                                     double preprocess_mbps, double time_scale,
                                     int num_threads, net::Transport* transport)
    : stream_(stream),
      dataset_(dataset),
      buffer_(buffer),
      router_(router),
      devices_(devices),
      preprocess_mbps_(preprocess_mbps),
      time_scale_(time_scale),
      num_threads_(num_threads < 1 ? 1 : num_threads),
      transport_(transport) {}

StagingPrefetcher::~StagingPrefetcher() { stop(); }

void StagingPrefetcher::start() {
  threads_.reserve(static_cast<std::size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    threads_.emplace_back([this] { thread_main(); });
  }
}

void StagingPrefetcher::stop() {
  stop_.store(true, std::memory_order_relaxed);
  // Closing the buffer wakes any producer parked inside reserve() (it
  // returns nullopt), so the joins below cannot deadlock on a thread that
  // is blocked waiting for ring space the consumer will never free.
  buffer_.close();
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  threads_.clear();
}

void StagingPrefetcher::thread_main() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::uint64_t seq = 0;
    data::SampleId sample = 0;
    std::optional<ProducerSlot> slot;
    {
      // Single-logical-stream invariant: the p_0 producer threads share ONE
      // access stream R, and slots must be reserved in stream order, so seq
      // assignment and reservation happen under one dispenser lock
      // (StagingBuffer::reserve enforces the ordering by throwing on any
      // out-of-order seq).  Blocking on buffer space while holding the lock
      // is safe — not because it is lock-free, but because of two
      // invariants this class must preserve:
      //   (a) the ring is FIFO, so position f+1 cannot be placed before
      //       position f — a peer thread waiting on the dispenser could not
      //       make progress anyway; and
      //   (b) the party that creates space (the consumer via release()) and
      //       the party that aborts the wait (stop()/close()) never acquire
      //       dispense_mutex_, so the parked producer is always woken.
      // DESIGN.md Sec. 2.1 discusses this trade-off.
      const std::scoped_lock lock(dispense_mutex_);
      // Stop-responsive exit: do not park in reserve() for a stop()ed
      // prefetcher — stop() closes the buffer before joining, but a thread
      // that acquired the dispenser after close() would otherwise still
      // attempt a reservation on a drained ring.
      if (stop_.load(std::memory_order_relaxed)) return;
      seq = next_.load(std::memory_order_relaxed);
      if (seq >= stream_.size()) return;
      sample = stream_[seq];
      const auto bytes = static_cast<std::size_t>(dataset_.size_mb(sample) * 1024.0 * 1024.0);
      slot = buffer_.reserve(seq, sample, bytes);
      if (!slot.has_value()) return;  // closed (stop() or external close)
      next_.store(seq + 1, std::memory_order_relaxed);
      if (transport_ != nullptr) transport_->publish_watermark(seq + 1);
    }
    const double mb = dataset_.size_mb(sample);
    Bytes bytes = router_.fetch(sample, mb);
    // Preprocess and store into the staging buffer.  The model pipelines
    // them (write = max(s/beta, s/(w0/p0))); the emulation charges the
    // staging write via its token bucket and the preprocessing as a sleep,
    // which upper-bounds the max by the sum (documented in DESIGN.md).
    if (devices_ != nullptr) {
      devices_->staging->write(mb);
      if (preprocess_mbps_ > 0.0 && time_scale_ > 0.0) {
        const double virtual_s = mb / preprocess_mbps_;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(virtual_s / time_scale_));
      }
    }
    const std::size_t n = std::min(bytes.size(), slot->data.size());
    std::copy_n(bytes.begin(), n, slot->data.begin());
    buffer_.commit(seq);
    util::log_trace("staging: committed seq ", seq, " sample ", sample);
  }
}

}  // namespace nopfs::core
