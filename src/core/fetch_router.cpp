#include "core/fetch_router.hpp"

#include <stdexcept>

#include "util/log.hpp"

namespace nopfs::core {

RemoteReadiness::RemoteReadiness(const std::vector<CachePlan>& plans) {
  positions_.resize(plans.size());
  for (std::size_t rank = 0; rank < plans.size(); ++rank) {
    positions_[rank].resize(plans[rank].per_class.size());
    for (std::size_t cls = 0; cls < plans[rank].per_class.size(); ++cls) {
      auto& map = positions_[rank][cls];
      const auto& samples = plans[rank].per_class[cls].samples;
      map.reserve(samples.size());
      for (std::size_t i = 0; i < samples.size(); ++i) {
        map.emplace(samples[i], static_cast<std::uint32_t>(i));
      }
    }
  }
}

std::int64_t RemoteReadiness::position(int peer, int cls, data::SampleId sample) const {
  if (peer < 0 || static_cast<std::size_t>(peer) >= positions_.size()) return -1;
  if (cls < 0 || static_cast<std::size_t>(cls) >= positions_[peer].size()) return -1;
  const auto& map = positions_[static_cast<std::size_t>(peer)][static_cast<std::size_t>(cls)];
  const auto it = map.find(sample);
  if (it == map.end()) return -1;
  return static_cast<std::int64_t>(it->second);
}

bool RemoteReadiness::likely_cached(int peer, int cls, data::SampleId sample,
                                    std::uint64_t self_progress) const {
  const std::int64_t pos = position(peer, cls, sample);
  if (pos < 0) return false;
  return static_cast<std::uint64_t>(pos) < self_progress;
}

FetchRouter::FetchRouter(int rank, const PerfModel& model, const CachePlan& self_plan,
                         const LocationIndex& locations, const RemoteReadiness& readiness,
                         MetadataStore& metadata,
                         std::vector<std::unique_ptr<StorageBackend>>& backends,
                         SampleSource& source, net::Transport* transport,
                         tiers::WorkerDevices* devices, RouterOptions options)
    : rank_(rank),
      model_(model),
      self_plan_(self_plan),
      locations_(locations),
      readiness_(readiness),
      metadata_(metadata),
      backends_(backends),
      source_(source),
      transport_(transport),
      devices_(devices),
      options_(options),
      progress_(backends.size()) {
  for (auto& p : progress_) p.store(0, std::memory_order_relaxed);
}

void FetchRouter::note_class_progress(int cls) {
  progress_.at(static_cast<std::size_t>(cls)).fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t FetchRouter::class_progress(int cls) const {
  return progress_.at(static_cast<std::size_t>(cls)).load(std::memory_order_relaxed);
}

std::optional<Bytes> FetchRouter::load_local(data::SampleId sample) {
  const auto cls = metadata_.find(sample);
  if (!cls.has_value()) return std::nullopt;
  auto bytes = backends_.at(static_cast<std::size_t>(*cls))->load(sample);
  if (!bytes.has_value()) return std::nullopt;
  if (devices_ != nullptr) {
    devices_->tiers.at(static_cast<std::size_t>(*cls))
        ->read(static_cast<double>(bytes->size()) / (1024.0 * 1024.0));
  }
  return bytes;
}

bool FetchRouter::try_claim(data::SampleId sample) {
  const std::scoped_lock lock(inflight_mutex_);
  if (metadata_.contains(sample)) return false;
  return inflight_.insert(sample).second;
}

void FetchRouter::finish_claim(data::SampleId sample, const Bytes& bytes) {
  const auto planned = self_plan_.find(sample);
  if (planned.has_value()) {
    const double mb = static_cast<double>(bytes.size()) / (1024.0 * 1024.0);
    auto& backend = backends_.at(static_cast<std::size_t>(*planned));
    if (backend->store(sample, bytes)) {
      if (devices_ != nullptr) {
        devices_->tiers.at(static_cast<std::size_t>(*planned))->write(mb);
      }
      metadata_.insert(sample, *planned, mb);
    }
  }
  {
    const std::scoped_lock lock(inflight_mutex_);
    inflight_.erase(sample);
  }
  inflight_cv_.notify_all();
}

void FetchRouter::wait_if_inflight(data::SampleId sample) {
  std::unique_lock lock(inflight_mutex_);
  if (!inflight_.contains(sample)) return;
  util::log_trace("rank ", rank_, ": waiting for in-flight sample ", sample);
  inflight_cv_.wait(lock, [&] { return !inflight_.contains(sample); });
  util::log_trace("rank ", rank_, ": in-flight wait done for sample ", sample);
}

Bytes FetchRouter::fetch_from_source(data::SampleId sample, double size_mb) {
  int remote_cls = -1;
  int remote_peer = -1;
  if (options_.use_remote && transport_ != nullptr && transport_->world_size() > 1) {
    if (const auto remote = locations_.best_remote(sample); remote.has_value()) {
      const bool ready =
          !options_.use_watermark_heuristic ||
          readiness_.likely_cached(remote->peer, remote->storage_class, sample,
                                   class_progress(remote->storage_class));
      if (ready) {
        remote_cls = remote->storage_class;
        remote_peer = remote->peer;
      }
    }
  }

  // The model cannot see live PFS congestion; it uses the conservative
  // estimate gamma = N (every worker contending), which is what the paper's
  // "minimize gamma" reasoning assumes.
  const int gamma = model_.params().num_workers;
  const FetchChoice choice =
      model_.choose_fetch(size_mb, /*local=*/-1, remote_cls, remote_peer, gamma);

  if (choice.source == FetchSource::kRemote) {
    auto bytes = transport_->fetch_sample(choice.peer, sample);
    if (bytes.has_value()) {
      ++stats_.remote_fetches;
      stats_.add_mb(stats_.remote_mb, size_mb);
      return std::move(*bytes);
    }
    // Heuristic false positive: detected, not an error (Sec. 5.2.2).
    ++stats_.remote_misses;
  }

  // Case 0: the PFS always has the data at rest.
  Bytes bytes = source_.read(rank_, sample);
  ++stats_.pfs_fetches;
  stats_.add_mb(stats_.pfs_mb, size_mb);
  return bytes;
}

Bytes FetchRouter::fetch(data::SampleId sample, double size_mb) {
  const bool may_cache = options_.cache_on_miss && self_plan_.find(sample).has_value();
  for (;;) {
    // Local cache first — the fastest source when present.
    if (auto bytes = load_local(sample); bytes.has_value()) {
      ++stats_.local_fetches;
      stats_.add_mb(stats_.local_mb, size_mb);
      return std::move(*bytes);
    }
    if (!may_cache) break;
    if (try_claim(sample)) {
      // This thread materializes the sample for everyone.
      Bytes bytes = fetch_from_source(sample, size_mb);
      finish_claim(sample, bytes);
      return bytes;
    }
    // Someone else (class prefetcher or a sibling staging thread) is
    // fetching it right now; wait and serve it from the local cache —
    // planned samples hit the PFS at most once per worker.
    wait_if_inflight(sample);
  }
  return fetch_from_source(sample, size_mb);
}

bool FetchRouter::prefetch_planned(data::SampleId sample, double size_mb) {
  if (!try_claim(sample)) return false;
  Bytes bytes = fetch_from_source(sample, size_mb);
  finish_claim(sample, bytes);
  return true;
}

}  // namespace nopfs::core
