#pragma once
// The NoPFS distributed caching policy (paper Sec. 5.1).
//
// Each worker assigns the samples it accesses most frequently (its own r_k,
// exact thanks to clairvoyance) to its fastest storage class, spilling to
// slower classes until the dataset is fully cached or local capacity D is
// exhausted.  Lemma 1 guarantees complementarity: a sample one worker
// accesses rarely is accessed often by another, so collectively the cluster
// caches the dataset with the hot copies in the fast tiers of exactly the
// workers that want them.
//
// Prefetch *order* within a class follows the access stream R (optimal
// prefetching, Rule 1): samples are fetched in order of their first access.
//
// The LocationIndex is each worker's replica of "who caches what", built
// from an allgather of the per-worker assignments during setup.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/access_stream.hpp"
#include "core/frequency.hpp"
#include "core/perf_model.hpp"
#include "data/dataset.hpp"

namespace nopfs::core {

/// The samples one worker will cache in one storage class.
struct ClassPlan {
  /// Samples in prefetch order (ascending first access in R).
  std::vector<data::SampleId> samples;
  double planned_mb = 0.0;  ///< total size, <= class capacity
};

/// A worker's complete cache plan.
struct CachePlan {
  std::vector<ClassPlan> per_class;  ///< index = storage class (0-based = class 1..J)
  std::unordered_map<data::SampleId, int> class_of;  ///< sample -> class index

  /// Storage class caching `sample`, or nullopt.
  [[nodiscard]] std::optional<int> find(data::SampleId sample) const;

  [[nodiscard]] std::size_t total_samples() const;
};

/// Computes worker `rank`'s cache plan: frequency-ordered fill of classes
/// 1..J (fastest first) bounded by capacity, prefetch order by first access.
[[nodiscard]] CachePlan compute_cache_plan(const AccessStreamGenerator& gen, int rank,
                                           const data::Dataset& dataset,
                                           const tiers::NodeParams& node);

/// Compact wire encoding of a plan for the setup allgather.
[[nodiscard]] std::vector<std::uint8_t> encode_plan(const CachePlan& plan);
[[nodiscard]] CachePlan decode_plan(const std::vector<std::uint8_t>& bytes);

/// Every worker's view of where each sample will be cached cluster-wide.
class LocationIndex {
 public:
  LocationIndex() = default;

  /// Builds from all workers' plans (indexed by rank).
  LocationIndex(const std::vector<CachePlan>& plans, int self_rank);

  /// Fastest remote holder of `sample`: (peer, class).  Among holders with
  /// the same class the peer is picked by deterministic hashing of
  /// (sample, self rank) to spread remote-fetch load (paper Sec. 5.1:
  /// "samples should be well-distributed among workers").
  struct RemoteLocation {
    int peer = -1;
    int storage_class = -1;
  };
  [[nodiscard]] std::optional<RemoteLocation> best_remote(data::SampleId sample) const;

  /// All holders of `sample` (including self), for diagnostics/tests.
  struct Holder {
    int rank = -1;
    int storage_class = -1;
  };
  [[nodiscard]] std::vector<Holder> holders(data::SampleId sample) const;

  /// True if any worker (anyone, incl. self) plans to cache `sample`.
  [[nodiscard]] bool cached_anywhere(data::SampleId sample) const;

  /// Incremental rebalance after rank `rank` leaves the world (elastic
  /// membership, DESIGN.md Sec. 11): removes every holding of that rank
  /// and nothing else.  Entries naming surviving ranks are untouched, so
  /// best_remote() re-resolves deterministically among the survivors;
  /// samples whose only holder was the dead rank are erased so
  /// cached_anywhere() degrades them to the PFS fallback.  Returns
  /// {samples still cached by a survivor, samples now PFS-only}.
  std::pair<std::size_t, std::size_t> drop_rank(int rank);

  [[nodiscard]] int self_rank() const noexcept { return self_rank_; }

 private:
  // sample -> packed holders (rank in high 32 bits, class in low 32).
  std::unordered_map<data::SampleId, std::vector<std::uint64_t>> index_;
  int self_rank_ = -1;
};

}  // namespace nopfs::core
