#include "core/cache_policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/wire.hpp"

namespace nopfs::core {

std::optional<int> CachePlan::find(data::SampleId sample) const {
  const auto it = class_of.find(sample);
  if (it == class_of.end()) return std::nullopt;
  return it->second;
}

std::size_t CachePlan::total_samples() const { return class_of.size(); }

CachePlan compute_cache_plan(const AccessStreamGenerator& gen, int rank,
                             const data::Dataset& dataset,
                             const tiers::NodeParams& node) {
  // One pass over R: exact frequency and first-access position per sample.
  struct Info {
    std::uint32_t frequency = 0;
    std::uint64_t first_access = 0;
  };
  std::unordered_map<data::SampleId, Info> info;
  gen.for_each_access(rank, [&](const Access& access) {
    auto [it, inserted] = info.try_emplace(access.sample);
    if (inserted) it->second.first_access = access.position;
    ++it->second.frequency;
  });

  // Frequency-ordered candidate list (deterministic tie-break by id).
  std::vector<std::pair<data::SampleId, Info>> candidates(info.begin(), info.end());
  std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
    if (a.second.frequency != b.second.frequency) {
      return a.second.frequency > b.second.frequency;
    }
    return a.first < b.first;
  });

  CachePlan plan;
  plan.per_class.resize(node.classes.size());
  plan.class_of.reserve(candidates.size());

  // Greedy fill: hottest samples into the fastest class, spill downward.
  std::size_t cls = 0;
  double used_mb = 0.0;
  for (const auto& [sample, meta] : candidates) {
    const double size = dataset.size_mb(sample);
    while (cls < node.classes.size() &&
           used_mb + size > node.classes[cls].capacity_mb) {
      ++cls;
      used_mb = 0.0;
    }
    if (cls >= node.classes.size()) break;  // local storage D exhausted
    plan.per_class[cls].samples.push_back(sample);
    plan.per_class[cls].planned_mb += size;
    plan.class_of.emplace(sample, static_cast<int>(cls));
    used_mb += size;
  }

  // Prefetch order within each class = order of first access in R (Rule 1).
  for (auto& class_plan : plan.per_class) {
    std::sort(class_plan.samples.begin(), class_plan.samples.end(),
              [&](data::SampleId a, data::SampleId b) {
                return info.at(a).first_access < info.at(b).first_access;
              });
  }
  return plan;
}

std::vector<std::uint8_t> encode_plan(const CachePlan& plan) {
  // Layout: u32 num_classes, then per class u64 count + count * u64 ids.
  // Byte-explicit little-endian (net/wire.hpp): plans ride the transport's
  // allgather, which with SocketTransport may cross machine boundaries.
  std::vector<std::uint8_t> bytes;
  std::size_t total = sizeof(std::uint32_t);
  for (const auto& class_plan : plan.per_class) {
    total += sizeof(std::uint64_t) * (1 + class_plan.samples.size());
  }
  bytes.reserve(total);
  net::wire::put_u32(bytes, static_cast<std::uint32_t>(plan.per_class.size()));
  for (const auto& class_plan : plan.per_class) {
    net::wire::put_u64(bytes, static_cast<std::uint64_t>(class_plan.samples.size()));
    for (const data::SampleId sample : class_plan.samples) {
      net::wire::put_u64(bytes, sample);
    }
  }
  return bytes;
}

CachePlan decode_plan(const std::vector<std::uint8_t>& bytes) {
  CachePlan plan;
  net::wire::Reader reader(bytes);
  try {
    const std::uint32_t num_classes = reader.u32();
    plan.per_class.resize(num_classes);
    for (auto& class_plan : plan.per_class) {
      const std::uint64_t count = reader.u64();
      class_plan.samples.resize(count);
      for (auto& sample : class_plan.samples) sample = reader.u64();
    }
  } catch (const std::runtime_error&) {
    throw std::runtime_error("decode_plan: truncated plan encoding");
  }
  for (std::size_t c = 0; c < plan.per_class.size(); ++c) {
    for (data::SampleId sample : plan.per_class[c].samples) {
      plan.class_of.emplace(sample, static_cast<int>(c));
    }
  }
  return plan;
}

LocationIndex::LocationIndex(const std::vector<CachePlan>& plans, int self_rank)
    : self_rank_(self_rank) {
  for (std::size_t rank = 0; rank < plans.size(); ++rank) {
    for (const auto& [sample, cls] : plans[rank].class_of) {
      index_[sample].push_back((static_cast<std::uint64_t>(rank) << 32) |
                               static_cast<std::uint32_t>(cls));
    }
  }
  // Deterministic holder order regardless of hash-map iteration.
  for (auto& [sample, holders] : index_) {
    std::sort(holders.begin(), holders.end());
  }
}

std::optional<LocationIndex::RemoteLocation> LocationIndex::best_remote(
    data::SampleId sample) const {
  const auto it = index_.find(sample);
  if (it == index_.end()) return std::nullopt;
  // Fastest class wins; among holders with the fastest class, hash
  // (sample, self rank) to spread load across peers.
  int best_class = -1;
  std::vector<int> best_peers;
  for (std::uint64_t packed : it->second) {
    const int rank = static_cast<int>(packed >> 32);
    const int cls = static_cast<int>(packed & 0xffffffffULL);
    if (rank == self_rank_) continue;
    if (best_class == -1 || cls < best_class) {
      best_class = cls;
      best_peers.clear();
    }
    if (cls == best_class) best_peers.push_back(rank);
  }
  if (best_peers.empty()) return std::nullopt;
  // Full splitmix-style mix: weak mixing here measurably skews the
  // remote-fetch load across equal holders.
  std::uint64_t h = sample ^ (static_cast<std::uint64_t>(self_rank_) << 32);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  const int peer = best_peers[h % best_peers.size()];
  return RemoteLocation{peer, best_class};
}

std::vector<LocationIndex::Holder> LocationIndex::holders(data::SampleId sample) const {
  std::vector<Holder> result;
  const auto it = index_.find(sample);
  if (it == index_.end()) return result;
  result.reserve(it->second.size());
  for (std::uint64_t packed : it->second) {
    result.push_back(Holder{static_cast<int>(packed >> 32),
                            static_cast<int>(packed & 0xffffffffULL)});
  }
  return result;
}

bool LocationIndex::cached_anywhere(data::SampleId sample) const {
  return index_.contains(sample);
}

std::pair<std::size_t, std::size_t> LocationIndex::drop_rank(int rank) {
  std::size_t remapped = 0;
  std::size_t pfs_only = 0;
  for (auto it = index_.begin(); it != index_.end();) {
    auto& holders = it->second;
    const std::size_t before = holders.size();
    std::erase_if(holders, [rank](std::uint64_t packed) {
      return static_cast<int>(packed >> 32) == rank;
    });
    if (holders.size() == before) {
      ++it;
    } else if (holders.empty()) {
      ++pfs_only;
      it = index_.erase(it);
    } else {
      ++remapped;
      ++it;
    }
  }
  return {remapped, pfs_only};
}

}  // namespace nopfs::core
