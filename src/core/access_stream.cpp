#include "core/access_stream.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/epoch_order_cache.hpp"

namespace nopfs::core {

std::uint64_t StreamConfig::iterations_per_epoch() const noexcept {
  if (global_batch == 0) return 0;
  const std::uint64_t full = num_samples / global_batch;
  if (drop_last) return full;
  return full + (num_samples % global_batch != 0 ? 1 : 0);
}

std::uint64_t StreamConfig::local_batch() const noexcept {
  return global_batch / static_cast<std::uint64_t>(num_workers);
}

std::uint64_t StreamConfig::samples_per_worker_epoch() const noexcept {
  // With the strided partition, worker `rank` consumes the global positions
  // congruent to rank mod N below min(T*B, F).  All workers get the same
  // count when drop_last; otherwise ranks below the remainder get one more —
  // we report the count for rank 0 (the maximum).
  const std::uint64_t consumed =
      std::min<std::uint64_t>(num_samples, iterations_per_epoch() * global_batch);
  const auto n = static_cast<std::uint64_t>(num_workers);
  return (consumed + n - 1) / n;
}

void StreamConfig::validate() const {
  if (num_samples == 0) throw std::invalid_argument("StreamConfig: num_samples == 0");
  if (num_workers <= 0) throw std::invalid_argument("StreamConfig: num_workers <= 0");
  if (num_epochs <= 0) throw std::invalid_argument("StreamConfig: num_epochs <= 0");
  if (global_batch == 0) throw std::invalid_argument("StreamConfig: global_batch == 0");
  if (global_batch % static_cast<std::uint64_t>(num_workers) != 0) {
    throw std::invalid_argument(
        "StreamConfig: global_batch must be divisible by num_workers");
  }
  if (global_batch > num_samples) {
    throw std::invalid_argument("StreamConfig: global_batch > num_samples");
  }
}

AccessStreamGenerator::AccessStreamGenerator(StreamConfig config) : config_(config) {
  config_.validate();
}

std::vector<data::SampleId> AccessStreamGenerator::epoch_order(int epoch) const {
  std::vector<data::SampleId> order;
  epoch_order_into(epoch, order);
  return order;
}

void AccessStreamGenerator::epoch_order_into(int epoch,
                                             std::vector<data::SampleId>& out) const {
  if (epoch < 0 || epoch >= config_.num_epochs) {
    throw std::out_of_range("AccessStreamGenerator: epoch out of range");
  }
  // Stream 0 of a seed is reserved for dataset generation (data/dataset.cpp);
  // epochs use streams 1..E so the two never alias.
  util::Rng rng =
      util::Rng::for_stream(config_.seed, static_cast<std::uint64_t>(epoch) + 1);
  util::shuffled_indices_into(config_.num_samples, rng, out);
}

std::shared_ptr<const std::vector<data::SampleId>> AccessStreamGenerator::epoch_order_shared(
    int epoch) const {
  if (epoch < 0 || epoch >= config_.num_epochs) {
    throw std::out_of_range("AccessStreamGenerator: epoch out of range");
  }
  const EpochOrderCache::Key key{config_.seed, epoch, config_.num_samples};
  return EpochOrderCache::global().get(
      key, [&](std::vector<data::SampleId>& out) { epoch_order_into(epoch, out); });
}

std::vector<data::SampleId> AccessStreamGenerator::worker_epoch_stream(int rank,
                                                                       int epoch) const {
  if (rank < 0 || rank >= config_.num_workers) {
    throw std::out_of_range("AccessStreamGenerator: rank out of range");
  }
  const auto order = epoch_order(epoch);
  const std::uint64_t consumed = std::min<std::uint64_t>(
      order.size(), config_.iterations_per_epoch() * config_.global_batch);
  std::vector<data::SampleId> stream;
  stream.reserve(config_.samples_per_worker_epoch());
  const auto local_b = config_.local_batch();
  const auto n = static_cast<std::uint64_t>(config_.num_workers);
  for (std::uint64_t h = 0; h < config_.iterations_per_epoch(); ++h) {
    for (std::uint64_t l = 0; l < local_b; ++l) {
      const std::uint64_t global_pos =
          (h * local_b + l) * n + static_cast<std::uint64_t>(rank);
      if (global_pos >= consumed) continue;
      stream.push_back(order[global_pos]);
    }
  }
  return stream;
}

std::vector<data::SampleId> AccessStreamGenerator::worker_stream(int rank) const {
  std::vector<data::SampleId> stream;
  stream.reserve(static_cast<std::size_t>(config_.num_epochs) *
                 config_.samples_per_worker_epoch());
  for_each_access(rank, [&](const Access& access) { stream.push_back(access.sample); });
  return stream;
}

}  // namespace nopfs::core
