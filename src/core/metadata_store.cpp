#include "core/metadata_store.hpp"

#include <stdexcept>

namespace nopfs::core {

MetadataStore::MetadataStore(int num_classes) {
  if (num_classes < 0) throw std::invalid_argument("MetadataStore: negative class count");
  used_mb_.resize(static_cast<std::size_t>(num_classes), 0.0);
  counts_.resize(static_cast<std::size_t>(num_classes), 0);
}

bool MetadataStore::insert(data::SampleId sample, int storage_class, double size_mb) {
  const std::scoped_lock lock(mutex_);
  if (storage_class < 0 || static_cast<std::size_t>(storage_class) >= used_mb_.size()) {
    throw std::out_of_range("MetadataStore: storage class out of range");
  }
  const auto [it, inserted] = catalog_.try_emplace(sample, Entry{storage_class, size_mb});
  if (!inserted) return false;
  used_mb_[static_cast<std::size_t>(storage_class)] += size_mb;
  ++counts_[static_cast<std::size_t>(storage_class)];
  return true;
}

std::optional<int> MetadataStore::find(data::SampleId sample) const {
  const std::scoped_lock lock(mutex_);
  const auto it = catalog_.find(sample);
  if (it == catalog_.end()) return std::nullopt;
  return it->second.storage_class;
}

std::optional<int> MetadataStore::erase(data::SampleId sample) {
  const std::scoped_lock lock(mutex_);
  const auto it = catalog_.find(sample);
  if (it == catalog_.end()) return std::nullopt;
  const int cls = it->second.storage_class;
  used_mb_[static_cast<std::size_t>(cls)] -= it->second.size_mb;
  --counts_[static_cast<std::size_t>(cls)];
  catalog_.erase(it);
  return cls;
}

bool MetadataStore::contains(data::SampleId sample) const {
  const std::scoped_lock lock(mutex_);
  return catalog_.contains(sample);
}

double MetadataStore::used_mb(int storage_class) const {
  const std::scoped_lock lock(mutex_);
  return used_mb_.at(static_cast<std::size_t>(storage_class));
}

std::uint64_t MetadataStore::count(int storage_class) const {
  const std::scoped_lock lock(mutex_);
  return counts_.at(static_cast<std::size_t>(storage_class));
}

std::uint64_t MetadataStore::total_count() const {
  const std::scoped_lock lock(mutex_);
  return catalog_.size();
}

}  // namespace nopfs::core
