#pragma once
// The training-I/O performance model (paper Sec. 4).
//
// Time is seconds, sizes MB.  For worker i consuming its access stream R:
//
//   t_{i,f}    = max(avail_i(f), t_{i,f-1} + s_{R_{f-1}} / c)
//   avail_i(f) = (sum_{k<=f} read_i(R_k)) / p_0
//   read_i(k)  = fetch_i(k) + write_i(k)
//   write_i(k) = max(s_k / beta, s_k / (w_0(p_0)/p_0))
//   fetch_i(k) = one of
//     s_k / (t(gamma)/gamma)                  read from the PFS (case 0)
//     s_k / min(b_c, r_j(p_j)/p_j)            read from a remote worker (1)
//     s_k / (r_j(p_j)/p_j)                    read from local class j  (2)
//
// The model drives both the runtime fetch-source selection (Sec. 5) and the
// performance simulator (Sec. 6).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tiers/params.hpp"

namespace nopfs::core {

/// Where a sample was (or would be) fetched from.
enum class FetchSource : int { kStaging = 0, kLocal, kRemote, kPfs, kUnavailable };

[[nodiscard]] const char* to_string(FetchSource source) noexcept;

/// A concrete fetch option with its modeled latency.
struct FetchChoice {
  FetchSource source = FetchSource::kUnavailable;
  int storage_class = -1;  ///< class index j (local or remote), -1 for PFS
  int peer = -1;           ///< remote worker rank, -1 otherwise
  double seconds = 0.0;    ///< modeled fetch time for the queried size
};

/// Evaluates the Sec. 4 equations for one system description.
class PerfModel {
 public:
  explicit PerfModel(const tiers::SystemParams& params);

  /// Case 0: fetch `mb` from the PFS while `gamma` clients read in total.
  [[nodiscard]] double fetch_pfs_s(double mb, int gamma) const;

  /// Case 1: fetch `mb` from remote storage class `cls` over the network.
  [[nodiscard]] double fetch_remote_s(double mb, int cls) const;

  /// Case 2: fetch `mb` from local storage class `cls`.
  [[nodiscard]] double fetch_local_s(double mb, int cls) const;

  /// write_i: preprocess and store `mb` into the staging buffer.
  [[nodiscard]] double write_s(double mb) const;

  /// Compute time of one sample: s_k / c.
  [[nodiscard]] double compute_s(double mb) const;

  /// Effective per-thread throughput of local class `cls`: r_j(p_j)/p_j.
  [[nodiscard]] double local_class_mbps(int cls) const;

  /// Effective remote-read throughput of class `cls`: min(b_c, r_j(p_j)/p_j).
  [[nodiscard]] double remote_class_mbps(int cls) const;

  /// Effective per-client PFS throughput: t(gamma)/gamma.
  [[nodiscard]] double pfs_client_mbps(int gamma) const;

  /// Picks the fastest applicable fetch option (paper Sec. 5.1:
  /// argmin fetch_{i,l,j}(k)).  `local_class` / `remote_class` are the
  /// fastest classes holding the sample locally / remotely, or -1.
  [[nodiscard]] FetchChoice choose_fetch(double mb, int local_class, int remote_class,
                                         int remote_peer, int gamma) const;

  [[nodiscard]] const tiers::SystemParams& params() const noexcept { return params_; }
  [[nodiscard]] int num_storage_classes() const noexcept {
    return static_cast<int>(params_.node.classes.size());
  }

 private:
  tiers::SystemParams params_;
  std::vector<double> local_mbps_;   ///< r_j(p_j)/p_j per class
  std::vector<double> remote_mbps_;  ///< min(b_c, r_j(p_j)/p_j) per class
  double staging_write_mbps_ = 0.0;  ///< w_0(p_0)/p_0
};

/// Evaluates the t_{i,f} recurrence for a worker's whole stream given the
/// per-access read times; returns total time and accumulated stall time
/// (time the trainer waited on avail_i beyond pure compute).
struct TimelineResult {
  double total_s = 0.0;       ///< t_{i,|R|}
  double stall_s = 0.0;       ///< sum of max(0, avail - compute-ready time)
  double compute_s = 0.0;     ///< sum of s/c terms
};

/// `sizes_mb[f]` and `read_s[f]` describe access f of the stream.
[[nodiscard]] TimelineResult evaluate_timeline(std::span<const double> sizes_mb,
                                               std::span<const double> read_s,
                                               double compute_mbps, int staging_threads);

}  // namespace nopfs::core
