#include "core/epoch_order_cache.hpp"

#include <cstdlib>

namespace nopfs::core {

namespace {

std::size_t budget_from_env() {
  if (const char* env = std::getenv("NOPFS_EPOCH_CACHE_MB")) {
    const long long mb = std::atoll(env);
    if (mb >= 0) return static_cast<std::size_t>(mb) << 20;
  }
  return EpochOrderCache::kDefaultBudgetBytes;
}

}  // namespace

std::size_t EpochOrderCache::KeyHash::operator()(const Key& key) const noexcept {
  // splitmix64-style mixing of the three fields.
  std::uint64_t h = key.seed;
  h ^= (static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.epoch)) + 0x9e3779b97f4a7c15ULL +
        (h << 6) + (h >> 2));
  h ^= (key.num_samples + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<std::size_t>(h);
}

EpochOrderCache& EpochOrderCache::global() {
  static EpochOrderCache cache(budget_from_env());
  return cache;
}

EpochOrderCache::EpochOrderCache(std::size_t budget_bytes)
    : budget_bytes_(budget_bytes) {}

EpochOrderCache::OrderPtr EpochOrderCache::get(
    const Key& key, const std::function<void(Order&)>& generate) {
  if (budget_bytes_ == 0) {  // caching disabled
    auto order = std::make_shared<Order>();
    generate(*order);
    return order;
  }
  {
    const std::scoped_lock lock(mutex_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.order;
    }
    ++misses_;
  }
  // Generate outside the lock: misses on distinct keys (the common case in a
  // parallel sweep's first epoch) must not serialize.
  auto order = std::make_shared<Order>();
  generate(*order);
  const std::size_t bytes = order->size() * sizeof(Order::value_type);

  const std::scoped_lock lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {  // lost a race: keep the incumbent
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.order;
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{order, lru_.begin()});
  used_bytes_ += bytes;
  evict_locked();
  return order;
}

void EpochOrderCache::evict_locked() {
  // May evict everything, including an entry just inserted: live shared_ptr
  // references keep evicted permutations valid, and an entry larger than
  // the whole budget must not stay pinned past its last holder.
  while (used_bytes_ > budget_bytes_ && !lru_.empty()) {
    const Key& victim = lru_.back();
    const auto it = map_.find(victim);
    used_bytes_ -= it->second.order->size() * sizeof(Order::value_type);
    map_.erase(it);
    lru_.pop_back();
  }
}

void EpochOrderCache::clear() {
  const std::scoped_lock lock(mutex_);
  map_.clear();
  lru_.clear();
  used_bytes_ = 0;
}

std::size_t EpochOrderCache::entries() const {
  const std::scoped_lock lock(mutex_);
  return map_.size();
}

std::uint64_t EpochOrderCache::hits() const {
  const std::scoped_lock lock(mutex_);
  return hits_;
}

std::uint64_t EpochOrderCache::misses() const {
  const std::scoped_lock lock(mutex_);
  return misses_;
}

}  // namespace nopfs::core
