#pragma once
// SampleSource: where the dataset is at rest.
//
// Per MLPerf-HPC rules (and the paper's setup), training data begins on a
// shared PFS that every worker can read.  SyntheticPfsSource emulates that:
// reads charge the attached contention-aware PfsDevice and the bytes are
// synthesized deterministically (data/materialize.hpp), so reads anywhere
// downstream remain verifiable without terabytes on disk.
// DirectoryPfsSource reads real files (integration tests, examples).

#include <memory>
#include <optional>

#include "core/storage_backend.hpp"
#include "data/dataset.hpp"
#include "data/materialize.hpp"
#include "tiers/device_iface.hpp"

namespace nopfs::core {

/// Read access to the dataset at rest.
class SampleSource {
 public:
  virtual ~SampleSource() = default;

  /// Reads sample `id` on behalf of `worker` (blocking; charges PFS time
  /// when a device is attached).
  [[nodiscard]] virtual Bytes read(int worker, data::SampleId id) = 0;

  /// Size of sample `id` in MB.
  [[nodiscard]] virtual double size_mb(data::SampleId id) const = 0;
};

/// PFS-device-backed source with deterministic synthetic content.
class SyntheticPfsSource final : public SampleSource {
 public:
  /// `pfs` may be nullptr (untimed unit tests).
  SyntheticPfsSource(const data::Dataset& dataset, tiers::PfsDevice* pfs);

  [[nodiscard]] Bytes read(int worker, data::SampleId id) override;
  [[nodiscard]] double size_mb(data::SampleId id) const override;

 private:
  const data::Dataset& dataset_;
  tiers::PfsDevice* pfs_;
};

/// Real-file source over a materialized dataset directory.
class DirectoryPfsSource final : public SampleSource {
 public:
  /// `pfs` may be nullptr to read at native disk speed.
  DirectoryPfsSource(const data::Dataset& dataset,
                     const data::MaterializedDataset& files, tiers::PfsDevice* pfs);

  [[nodiscard]] Bytes read(int worker, data::SampleId id) override;
  [[nodiscard]] double size_mb(data::SampleId id) const override;

 private:
  const data::Dataset& dataset_;
  const data::MaterializedDataset& files_;
  tiers::PfsDevice* pfs_;
};

}  // namespace nopfs::core
