#pragma once
// Shared memoization of epoch permutations (DESIGN.md Sec. 6.2).
//
// An epoch's shuffled sample order depends only on (seed, epoch,
// num_samples) — see AccessStreamGenerator::epoch_order().  A policy sweep
// (Fig. 8: ~10 policies on one stream config) regenerates the identical
// permutation once per policy per epoch, and the NoPFS planner regenerates
// every epoch again during setup().  This cache hands out shared immutable
// permutations instead: generate once, share everywhere.
//
// Thread safety: safe for concurrent readers/writers (the sweep engine runs
// simulations in parallel).  A miss generates outside the lock, so two
// threads racing on the same key may both generate; the permutation is
// deterministic, so whichever insert lands first wins and both callers see
// value-identical data — determinism is never affected by cache state.
//
// Memory: entries are evicted LRU once the byte budget is exceeded
// (default 1 GiB, override with NOPFS_EPOCH_CACHE_MB; 0 disables caching).
// Live shared_ptr references keep evicted permutations valid.

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"

namespace nopfs::core {

class EpochOrderCache {
 public:
  using Order = std::vector<data::SampleId>;
  using OrderPtr = std::shared_ptr<const Order>;

  struct Key {
    std::uint64_t seed = 0;
    int epoch = 0;
    std::uint64_t num_samples = 0;

    bool operator==(const Key&) const = default;
  };

  /// The process-wide cache used by AccessStreamGenerator::epoch_order_shared.
  [[nodiscard]] static EpochOrderCache& global();

  explicit EpochOrderCache(std::size_t budget_bytes = kDefaultBudgetBytes);

  /// Returns the cached permutation for `key`, generating it with
  /// `generate` (which must fill its argument) on a miss.
  [[nodiscard]] OrderPtr get(const Key& key,
                             const std::function<void(Order&)>& generate);

  void clear();

  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_bytes_; }
  [[nodiscard]] std::size_t entries() const;
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

  static constexpr std::size_t kDefaultBudgetBytes = std::size_t{1} << 30;

 private:
  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept;
  };
  struct Entry {
    OrderPtr order;
    std::list<Key>::iterator lru_pos;
  };

  void evict_locked();

  std::size_t budget_bytes_;
  mutable std::mutex mutex_;
  std::unordered_map<Key, Entry, KeyHash> map_;
  std::list<Key> lru_;  ///< front = most recently used
  std::size_t used_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace nopfs::core
