#pragma once
// Access-frequency analysis (paper Sec. 3.1).
//
// Over E epochs, the number of times a fixed worker accesses a fixed sample
// is X ~ Binomial(E, 1/N).  The long tail of that distribution — samples a
// worker accesses far more often than the mean E/N — is what makes
// frequency-aware caching beat first-touch policies: caching those samples
// locally buys the most PFS/remote traffic reduction per byte of capacity.
//
// This module provides the exact per-worker frequency counts from the
// clairvoyant stream, the analytic Binomial tail expectation the paper
// validates against Monte-Carlo simulation (Fig. 3), and the Lemma 1
// complementarity bound.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/access_stream.hpp"
#include "util/stats.hpp"

namespace nopfs::core {

/// Exact access counts of one worker: sample id -> times accessed over the
/// full training run.  Samples the worker never touches are absent.
using FrequencyMap = std::unordered_map<data::SampleId, std::uint32_t>;

/// Counts how often worker `rank` accesses each sample across all epochs.
[[nodiscard]] FrequencyMap count_worker_frequencies(const AccessStreamGenerator& gen,
                                                    int rank);

/// Histogram of a worker's access frequencies over all F samples (samples
/// never accessed count in bin 0) — the Fig. 3 plot.
[[nodiscard]] util::Histogram frequency_histogram(const AccessStreamGenerator& gen,
                                                  int rank, std::size_t num_bins = 20);

/// Analytic expected number of samples a worker accesses more than
/// (1+delta) * E/N times: F * P(X > ceil((1+delta) E/N)), X ~ Binom(E, 1/N)
/// (paper Sec. 3.1; the ImageNet-1k example gives ~31,635 for delta=0.8).
[[nodiscard]] double expected_samples_above(std::uint64_t num_samples, int num_workers,
                                            int num_epochs, double delta);

/// Lemma 1 upper bound: if one worker accesses a sample ceil((1+delta) E/N)
/// times, some other worker accesses it at most ceil((N-1-delta)/(N-1) * E/N)
/// times.  Returns that bound.
[[nodiscard]] std::uint64_t lemma1_other_worker_bound(int num_workers, int num_epochs,
                                                      double delta);

/// Sorted (descending) frequencies of one worker with deterministic
/// tie-breaking by sample id — the order the cache policy fills tiers in.
[[nodiscard]] std::vector<std::pair<data::SampleId, std::uint32_t>> sorted_by_frequency(
    const FrequencyMap& freqs);

}  // namespace nopfs::core
