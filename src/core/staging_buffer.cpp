#include "core/staging_buffer.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace nopfs::core {

namespace {
double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

StagingBuffer::StagingBuffer(std::size_t capacity_bytes)
    : ring_(capacity_bytes), capacity_(capacity_bytes) {
  if (capacity_bytes == 0) {
    throw std::invalid_argument("StagingBuffer: zero capacity");
  }
}

bool StagingBuffer::fits_locked(std::size_t size) const {
  if (used_ == 0) return size <= capacity_;
  if (capacity_ - used_ < size) return false;  // not enough free bytes at all
  if (head_ >= tail_) {
    // Live region is [tail_, head_): free space is the ring end plus the
    // ring start up to tail_.
    if (capacity_ - head_ >= size) return true;
    return tail_ >= size;  // wrap, wasting [head_, capacity_)
  }
  // Live region wraps: free space is [head_, tail_).
  return tail_ - head_ >= size;
}

std::optional<ProducerSlot> StagingBuffer::reserve(std::uint64_t seq,
                                                   data::SampleId sample,
                                                   std::size_t size_bytes) {
  if (size_bytes > capacity_) {
    throw std::invalid_argument("StagingBuffer: sample larger than staging buffer");
  }
  std::unique_lock lock(mutex_);
  if (!entries_.empty() && seq <= entries_.back().seq) {
    throw std::logic_error("StagingBuffer: reserve out of order");
  }
  space_cv_.wait(lock, [&] { return closed_ || fits_locked(size_bytes); });
  if (closed_) return std::nullopt;

  std::size_t offset = 0;
  std::size_t waste = 0;
  if (used_ == 0) {
    head_ = 0;
    tail_ = 0;
    offset = 0;
  } else if (head_ >= tail_) {
    if (capacity_ - head_ >= size_bytes) {
      offset = head_;
    } else {
      waste = capacity_ - head_;  // skip the ring end
      offset = 0;
    }
  } else {
    offset = head_;
  }
  Entry entry;
  entry.seq = seq;
  entry.sample = sample;
  entry.offset = offset;
  entry.size = size_bytes;
  entries_.push_back(entry);
  // Track the wasted gap with the entry that caused it by folding it into
  // used_; release() subtracts it again via recomputing from offsets.
  head_ = offset + size_bytes;
  if (head_ == capacity_) head_ = 0;
  used_ += size_bytes + waste;
  wasted_.push_back(waste);
  return ProducerSlot{seq, sample,
                      std::span<std::uint8_t>(ring_.data() + offset, size_bytes)};
}

void StagingBuffer::commit(std::uint64_t seq) {
  {
    const std::scoped_lock lock(mutex_);
    for (auto& entry : entries_) {
      if (entry.seq == seq) {
        entry.ready = true;
        ready_cv_.notify_all();
        return;
      }
    }
    throw std::logic_error("StagingBuffer: commit of unknown seq");
  }
}

std::optional<ConsumedSample> StagingBuffer::consume(std::uint64_t expected_seq) {
  std::unique_lock lock(mutex_);
  const double wait_start = now_seconds();
  Entry* found = nullptr;
  ready_cv_.wait(lock, [&] {
    if (closed_) return true;
    for (auto& entry : entries_) {
      if (entry.seq == expected_seq) {
        if (entry.ready && !entry.consumed) {
          found = &entry;
          return true;
        }
        return false;
      }
      if (entry.seq > expected_seq) return false;
    }
    return false;
  });
  consumer_stall_s_ += now_seconds() - wait_start;
  if (found == nullptr) return std::nullopt;  // closed
  found->consumed = true;
  return ConsumedSample{found->seq, found->sample,
                        std::span<const std::uint8_t>(ring_.data() + found->offset,
                                                      found->size)};
}

void StagingBuffer::release(std::uint64_t seq) {
  {
    const std::scoped_lock lock(mutex_);
    if (entries_.empty()) throw std::logic_error("StagingBuffer: release on empty buffer");
    Entry& front = entries_.front();
    if (front.seq != seq) {
      throw std::logic_error("StagingBuffer: release out of order");
    }
    if (!front.consumed) {
      throw std::logic_error("StagingBuffer: release before consume");
    }
    used_ -= front.size + wasted_.front();
    entries_.pop_front();
    wasted_.pop_front();
    if (entries_.empty()) {
      head_ = 0;
      tail_ = 0;
      used_ = 0;
    } else {
      // The oldest live byte is the next entry's offset (this also steps
      // over any ring-end gap the next entry's reservation skipped).
      tail_ = entries_.front().offset;
    }
  }
  space_cv_.notify_all();
}

void StagingBuffer::close() {
  {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  space_cv_.notify_all();
  ready_cv_.notify_all();
}

std::size_t StagingBuffer::used_bytes() const {
  const std::scoped_lock lock(mutex_);
  return used_;
}

double StagingBuffer::consumer_stall_s() const {
  const std::scoped_lock lock(mutex_);
  return consumer_stall_s_;
}

}  // namespace nopfs::core
