#include "core/perf_model.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace nopfs::core {

const char* to_string(FetchSource source) noexcept {
  switch (source) {
    case FetchSource::kStaging: return "staging";
    case FetchSource::kLocal: return "local";
    case FetchSource::kRemote: return "remote";
    case FetchSource::kPfs: return "pfs";
    case FetchSource::kUnavailable: return "unavailable";
  }
  return "?";
}

PerfModel::PerfModel(const tiers::SystemParams& params) : params_(params) {
  if (params_.num_workers <= 0) {
    throw std::invalid_argument("PerfModel: num_workers must be positive");
  }
  for (const auto& sc : params_.node.classes) {
    const double per_thread = sc.per_thread_read_mbps();
    local_mbps_.push_back(per_thread);
    remote_mbps_.push_back(std::min(params_.node.network_mbps, per_thread));
  }
  staging_write_mbps_ = params_.node.staging.per_thread_write_mbps();
}

double PerfModel::fetch_pfs_s(double mb, int gamma) const {
  const double rate = pfs_client_mbps(gamma);
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  // Bandwidth share plus the per-file metadata-op latency (0 when the
  // system has no op model configured).
  return mb / rate + params_.pfs.op_latency_s(gamma);
}

double PerfModel::fetch_remote_s(double mb, int cls) const {
  const double rate = remote_class_mbps(cls);
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return mb / rate;
}

double PerfModel::fetch_local_s(double mb, int cls) const {
  const double rate = local_class_mbps(cls);
  if (rate <= 0.0) return std::numeric_limits<double>::infinity();
  return mb / rate;
}

double PerfModel::write_s(double mb) const {
  // Preprocessing and the staging-buffer store pipeline in parallel; the
  // slower of the two dominates (paper Sec. 4).
  const double beta = params_.node.preprocess_mbps;
  const double preprocess = beta > 0.0 ? mb / beta : 0.0;
  const double store = staging_write_mbps_ > 0.0 ? mb / staging_write_mbps_ : 0.0;
  return std::max(preprocess, store);
}

double PerfModel::compute_s(double mb) const {
  const double c = params_.node.compute_mbps;
  if (c <= 0.0) return 0.0;
  return mb / c;
}

double PerfModel::local_class_mbps(int cls) const {
  if (cls < 0 || cls >= static_cast<int>(local_mbps_.size())) return 0.0;
  return local_mbps_[static_cast<std::size_t>(cls)];
}

double PerfModel::remote_class_mbps(int cls) const {
  if (cls < 0 || cls >= static_cast<int>(remote_mbps_.size())) return 0.0;
  return remote_mbps_[static_cast<std::size_t>(cls)];
}

double PerfModel::pfs_client_mbps(int gamma) const {
  return params_.pfs.per_client_mbps(gamma);
}

FetchChoice PerfModel::choose_fetch(double mb, int local_class, int remote_class,
                                    int remote_peer, int gamma) const {
  FetchChoice best;
  best.seconds = std::numeric_limits<double>::infinity();
  // Case 2: local storage class (fastest holding class).
  if (local_class >= 0) {
    const double t = fetch_local_s(mb, local_class);
    if (t < best.seconds) {
      best = FetchChoice{FetchSource::kLocal, local_class, -1, t};
    }
  }
  // Case 1: remote worker's storage class.
  if (remote_class >= 0 && remote_peer >= 0) {
    const double t = fetch_remote_s(mb, remote_class);
    if (t < best.seconds) {
      best = FetchChoice{FetchSource::kRemote, remote_class, remote_peer, t};
    }
  }
  // Case 0: the PFS always works (data at rest there).
  {
    const double t = fetch_pfs_s(mb, gamma);
    if (t < best.seconds) {
      best = FetchChoice{FetchSource::kPfs, -1, -1, t};
    }
  }
  return best;
}

TimelineResult evaluate_timeline(std::span<const double> sizes_mb,
                                 std::span<const double> read_s, double compute_mbps,
                                 int staging_threads) {
  if (sizes_mb.size() != read_s.size()) {
    throw std::invalid_argument("evaluate_timeline: size/read length mismatch");
  }
  if (staging_threads < 1) staging_threads = 1;
  TimelineResult result;
  double cumulative_read = 0.0;
  double t_prev = 0.0;      // t_{i,f-1}
  double prev_compute = 0.0;  // s_{R_{f-1}} / c
  for (std::size_t f = 0; f < sizes_mb.size(); ++f) {
    cumulative_read += read_s[f];
    const double avail = cumulative_read / static_cast<double>(staging_threads);
    const double ready = t_prev + prev_compute;  // when compute could consume
    const double t_now = std::max(avail, ready);
    result.stall_s += std::max(0.0, avail - ready);
    t_prev = t_now;
    prev_compute = compute_mbps > 0.0 ? sizes_mb[f] / compute_mbps : 0.0;
    result.compute_s += prev_compute;
  }
  // The run ends when the last sample has been *processed*.
  result.total_s = t_prev + prev_compute;
  return result;
}

}  // namespace nopfs::core
