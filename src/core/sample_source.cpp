#include "core/sample_source.hpp"

#include "util/units.hpp"

namespace nopfs::core {

SyntheticPfsSource::SyntheticPfsSource(const data::Dataset& dataset,
                                       tiers::PfsDevice* pfs)
    : dataset_(dataset), pfs_(pfs) {}

Bytes SyntheticPfsSource::read(int worker, data::SampleId id) {
  const double mb = dataset_.size_mb(id);
  if (pfs_ != nullptr) pfs_->read(worker, mb);
  Bytes bytes(util::mb_to_bytes(mb));
  data::fill_sample_content(id, bytes);
  return bytes;
}

double SyntheticPfsSource::size_mb(data::SampleId id) const {
  return dataset_.size_mb(id);
}

DirectoryPfsSource::DirectoryPfsSource(const data::Dataset& dataset,
                                       const data::MaterializedDataset& files,
                                       tiers::PfsDevice* pfs)
    : dataset_(dataset), files_(files), pfs_(pfs) {}

Bytes DirectoryPfsSource::read(int worker, data::SampleId id) {
  if (pfs_ != nullptr) pfs_->read(worker, dataset_.size_mb(id));
  return files_.read(id);
}

double DirectoryPfsSource::size_mb(data::SampleId id) const {
  return dataset_.size_mb(id);
}

}  // namespace nopfs::core
