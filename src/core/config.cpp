#include "core/config.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace nopfs::core {

namespace {

struct ParseError : std::invalid_argument {
  ParseError(int line, const std::string& message)
      : std::invalid_argument("config line " + std::to_string(line) + ": " + message) {}
};

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

double parse_number(const std::string& value, int line) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument("trailing characters");
    return parsed;
  } catch (const std::exception&) {
    throw ParseError(line, "malformed number '" + value + "'");
  }
}

int parse_int(const std::string& value, int line) {
  const double parsed = parse_number(value, line);
  const int as_int = static_cast<int>(parsed);
  if (static_cast<double>(as_int) != parsed) {
    throw ParseError(line, "expected an integer, got '" + value + "'");
  }
  return as_int;
}

util::ThroughputCurve parse_curve(const std::string& value, int line) {
  std::vector<std::pair<double, double>> points;
  std::istringstream stream(value);
  std::string token;
  while (stream >> token) {
    const auto colon = token.find(':');
    if (colon == std::string::npos) {
      throw ParseError(line, "curve point '" + token + "' is not x:y");
    }
    points.emplace_back(parse_number(token.substr(0, colon), line),
                        parse_number(token.substr(colon + 1), line));
  }
  if (points.empty()) throw ParseError(line, "curve needs at least one x:y point");
  try {
    return util::ThroughputCurve(std::move(points));
  } catch (const std::exception& ex) {
    throw ParseError(line, ex.what());
  }
}

tiers::StorageClassParams& class_named(tiers::SystemParams& params,
                                       const std::string& name) {
  for (auto& sc : params.node.classes) {
    if (sc.name == name) return sc;
  }
  tiers::StorageClassParams sc;
  sc.name = name;
  params.node.classes.push_back(sc);
  return params.node.classes.back();
}

std::string format_curve(const util::ThroughputCurve& curve) {
  std::ostringstream out;
  bool first = true;
  for (const auto& [x, y] : curve.points()) {
    if (!first) out << ' ';
    out << x << ':' << y;
    first = false;
  }
  return out.str();
}

}  // namespace

tiers::SystemParams parse_system_config(const std::string& text) {
  tiers::SystemParams params;
  params.num_workers = 0;  // required; validated at the end

  std::istringstream stream(text);
  std::string raw;
  int line_number = 0;
  while (std::getline(stream, raw)) {
    ++line_number;
    const auto comment = raw.find('#');
    if (comment != std::string::npos) raw.erase(comment);
    const std::string line = trim(raw);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw ParseError(line_number, "expected 'key = value'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) throw ParseError(line_number, "empty value for '" + key + "'");

    if (key == "name") {
      params.name = value;
    } else if (key == "num_workers") {
      params.num_workers = parse_int(value, line_number);
    } else if (key == "compute_mbps") {
      params.node.compute_mbps = parse_number(value, line_number);
    } else if (key == "preprocess_mbps") {
      params.node.preprocess_mbps = parse_number(value, line_number);
    } else if (key == "network_mbps") {
      params.node.network_mbps = parse_number(value, line_number);
    } else if (key == "staging.capacity_mb") {
      params.node.staging.capacity_mb = parse_number(value, line_number);
    } else if (key == "staging.threads") {
      params.node.staging.prefetch_threads = parse_int(value, line_number);
    } else if (key == "staging.rw_mbps") {
      const auto curve = parse_curve(value, line_number);
      params.node.staging.read_mbps = curve;
      params.node.staging.write_mbps = curve;
    } else if (key == "pfs.read_mbps") {
      params.pfs.agg_read_mbps = parse_curve(value, line_number);
    } else if (key == "pfs.op_rate") {
      params.pfs.op_rate_per_s = parse_number(value, line_number);
    } else if (key.starts_with("class.")) {
      const auto rest = key.substr(6);
      const auto dot = rest.find('.');
      if (dot == std::string::npos || dot == 0) {
        throw ParseError(line_number, "expected class.<name>.<field>");
      }
      const std::string name = rest.substr(0, dot);
      const std::string field = rest.substr(dot + 1);
      tiers::StorageClassParams& sc = class_named(params, name);
      if (field == "capacity_mb") {
        sc.capacity_mb = parse_number(value, line_number);
      } else if (field == "threads") {
        sc.prefetch_threads = parse_int(value, line_number);
      } else if (field == "read_mbps") {
        sc.read_mbps = parse_curve(value, line_number);
      } else if (field == "write_mbps") {
        sc.write_mbps = parse_curve(value, line_number);
      } else {
        throw ParseError(line_number, "unknown class field '" + field + "'");
      }
    } else {
      throw ParseError(line_number, "unknown key '" + key + "'");
    }
  }

  if (params.num_workers <= 0) {
    throw std::invalid_argument("config: num_workers is required and must be > 0");
  }
  if (params.pfs.agg_read_mbps.empty()) {
    throw std::invalid_argument("config: pfs.read_mbps is required");
  }
  for (const auto& sc : params.node.classes) {
    if (sc.read_mbps.empty()) {
      throw std::invalid_argument("config: class." + sc.name +
                                  ".read_mbps is required");
    }
  }
  return params;
}

tiers::SystemParams load_system_config(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_system_config(buffer.str());
}

std::string format_system_config(const tiers::SystemParams& params) {
  std::ostringstream out;
  out << "# NoPFS system configuration (see core/config.hpp)\n";
  if (!params.name.empty()) out << "name = " << params.name << '\n';
  out << "num_workers = " << params.num_workers << '\n'
      << "compute_mbps = " << params.node.compute_mbps << '\n'
      << "preprocess_mbps = " << params.node.preprocess_mbps << '\n'
      << "network_mbps = " << params.node.network_mbps << '\n'
      << "staging.capacity_mb = " << params.node.staging.capacity_mb << '\n'
      << "staging.threads = " << params.node.staging.prefetch_threads << '\n';
  if (!params.node.staging.read_mbps.empty()) {
    out << "staging.rw_mbps = " << format_curve(params.node.staging.read_mbps) << '\n';
  }
  for (const auto& sc : params.node.classes) {
    out << "class." << sc.name << ".capacity_mb = " << sc.capacity_mb << '\n'
        << "class." << sc.name << ".threads = " << sc.prefetch_threads << '\n'
        << "class." << sc.name << ".read_mbps = " << format_curve(sc.read_mbps) << '\n'
        << "class." << sc.name << ".write_mbps = " << format_curve(sc.write_mbps)
        << '\n';
  }
  out << "pfs.read_mbps = " << format_curve(params.pfs.agg_read_mbps) << '\n'
      << "pfs.op_rate = " << params.pfs.op_rate_per_s << '\n';
  return out.str();
}

}  // namespace nopfs::core
