#pragma once
// Job: the public NoPFS API (paper Sec. 5.2.1).
//
// One Job represents one worker's participation in a training run.  It owns
// the clairvoyant access stream, the cache plan, the staging buffer and the
// prefetchers, and exposes iterator-style access to samples:
//
//   core::Job job(dataset, system, rank, options, source, transport, devices);
//   job.start();
//   while (auto sample = job.next()) {
//     train_on(sample->data());           // zero-copy view into the staging buffer
//   }                                      // handle release frees the slot
//
// This mirrors the paper's Python Job (dataset, batch size, epochs, shuffle
// kind, drop_last; buffer_p zero-copy access and a get method).  Multiple
// Jobs may coexist in one process (e.g., training and validation).

#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "core/access_stream.hpp"
#include "core/cache_policy.hpp"
#include "core/fetch_router.hpp"
#include "core/metadata_store.hpp"
#include "core/perf_model.hpp"
#include "core/prefetcher.hpp"
#include "core/sample_source.hpp"
#include "core/staging_buffer.hpp"
#include "net/transport.hpp"
#include "tiers/device_iface.hpp"

namespace nopfs::core {

/// User-facing configuration of a training job.
struct JobOptions {
  std::uint64_t seed = 42;        ///< PRNG seed (shared across workers)
  int num_epochs = 1;             ///< E
  std::uint64_t global_batch = 1; ///< B (all workers combined)
  bool drop_last = true;
  ShuffleKind shuffle = ShuffleKind::kUniform;
  RouterOptions router;           ///< ablation switches
  /// Virtual seconds per real second of the device emulation; used to
  /// convert measured stall time into virtual (model) seconds.
  double time_scale = 1.0;
  /// When set, classes named "ssd" use a FilesystemBackend under this
  /// directory (real files, mmap reads); otherwise all classes use memory.
  std::filesystem::path ssd_dir;
};

/// Snapshot of a job's I/O statistics (drives Fig. 12-style breakdowns).
struct JobStats {
  std::uint64_t local_fetches = 0;
  std::uint64_t remote_fetches = 0;
  std::uint64_t pfs_fetches = 0;
  std::uint64_t remote_misses = 0;
  double local_mb = 0.0;
  double remote_mb = 0.0;
  double pfs_mb = 0.0;
  double stall_s = 0.0;  ///< consumer stall in virtual seconds
  std::uint64_t cached_samples = 0;

  [[nodiscard]] std::uint64_t total_fetches() const {
    return local_fetches + remote_fetches + pfs_fetches;
  }
};

/// RAII view of one consumed sample; releases its staging slot on destruction.
class SampleHandle {
 public:
  SampleHandle(StagingBuffer* buffer, ConsumedSample sample)
      : buffer_(buffer), sample_(sample) {}
  SampleHandle(SampleHandle&& other) noexcept
      : buffer_(other.buffer_), sample_(other.sample_) {
    other.buffer_ = nullptr;
  }
  SampleHandle& operator=(SampleHandle&&) = delete;
  SampleHandle(const SampleHandle&) = delete;
  SampleHandle& operator=(const SampleHandle&) = delete;
  ~SampleHandle() {
    if (buffer_ != nullptr) buffer_->release(sample_.seq);
  }

  [[nodiscard]] data::SampleId id() const noexcept { return sample_.sample; }
  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept {
    return sample_.data;
  }
  [[nodiscard]] std::uint64_t position() const noexcept { return sample_.seq; }

 private:
  StagingBuffer* buffer_;
  ConsumedSample sample_;
};

class Job {
 public:
  /// `transport` may be nullptr for single-worker jobs; `devices` may be
  /// nullptr to run untimed (unit tests).  `source` must outlive the job.
  Job(const data::Dataset& dataset, const tiers::SystemParams& system, int rank,
      JobOptions options, SampleSource& source, net::Transport* transport = nullptr,
      tiers::WorkerDevices* devices = nullptr);
  ~Job();

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Computes plans, exchanges them with peers (allgather), installs the
  /// remote-serve handler, and launches all prefetcher threads.
  void start();

  /// Blocks until the next sample in this worker's access stream is staged;
  /// returns nullopt when the stream is exhausted (or the job stopped).
  [[nodiscard]] std::optional<SampleHandle> next();

  /// Stops all prefetching (idempotent; also called by the destructor).
  void stop();

  [[nodiscard]] JobStats stats() const;
  [[nodiscard]] const StreamConfig& stream_config() const noexcept {
    return generator_.config();
  }
  [[nodiscard]] std::uint64_t total_accesses() const noexcept {
    return stream_.size();
  }
  [[nodiscard]] const CachePlan& cache_plan() const noexcept { return plan_; }
  [[nodiscard]] int rank() const noexcept { return rank_; }

  /// Epoch that stream position `f` belongs to.
  [[nodiscard]] int epoch_of(std::uint64_t position) const noexcept;

 private:
  const data::Dataset& dataset_;
  tiers::SystemParams system_;
  int rank_;
  JobOptions options_;
  SampleSource& source_;
  net::Transport* transport_;
  tiers::WorkerDevices* devices_;

  AccessStreamGenerator generator_;
  PerfModel model_;
  std::vector<data::SampleId> stream_;  ///< this worker's R
  CachePlan plan_;
  std::vector<CachePlan> all_plans_;
  LocationIndex locations_;
  RemoteReadiness readiness_;
  MetadataStore metadata_;
  std::vector<std::unique_ptr<StorageBackend>> backends_;
  std::unique_ptr<StagingBuffer> staging_;
  std::unique_ptr<FetchRouter> router_;
  std::vector<std::unique_ptr<ClassPrefetcher>> class_prefetchers_;
  std::unique_ptr<StagingPrefetcher> staging_prefetcher_;
  std::uint64_t consume_position_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace nopfs::core
