#pragma once
// FetchRouter: runtime fetch-source selection (paper Secs. 5.1, 5.2.2).
//
// For each needed sample the router asks the performance model for the
// fastest applicable source among
//   - a local storage class already holding the sample (case 2),
//   - the fastest remote worker planning to cache it (case 1), gated by the
//     prefetch-progress watermark heuristic ("if local prefetching has
//     reached the corresponding access stream location, the remote worker
//     likely has, too"),
//   - the PFS (case 0, always available).
// A remote miss (the heuristic's false positive) is detected and falls back
// to the PFS; the paper confirms these are rare, and our stats record them.
//
// When a sample that this worker *plans* to cache is needed before its
// class prefetcher got to it, the router caches it on the way through
// ("smoothing out load imbalance" — Sec. 5.2.2).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/cache_policy.hpp"
#include "core/metadata_store.hpp"
#include "core/perf_model.hpp"
#include "core/sample_source.hpp"
#include "net/transport.hpp"
#include "tiers/device_iface.hpp"

namespace nopfs::core {

/// Estimates whether a peer has already prefetched a sample, from the
/// allgathered plans plus this worker's own per-class progress.
class RemoteReadiness {
 public:
  RemoteReadiness() = default;

  /// Builds position maps from every worker's plan.
  explicit RemoteReadiness(const std::vector<CachePlan>& plans);

  /// Position of `sample` in `peer`'s class-`cls` prefetch order, or -1.
  [[nodiscard]] std::int64_t position(int peer, int cls, data::SampleId sample) const;

  /// The heuristic: peer has likely cached `sample` (class `cls`) if this
  /// worker's class-`cls` prefetcher has passed the sample's position in the
  /// peer's plan (load-balance assumption).
  [[nodiscard]] bool likely_cached(int peer, int cls, data::SampleId sample,
                                   std::uint64_t self_progress) const;

 private:
  // [peer][cls]: sample -> position in prefetch order.
  std::vector<std::vector<std::unordered_map<data::SampleId, std::uint32_t>>> positions_;
};

/// Per-source fetch statistics (drives the Fig. 12 breakdown).
struct FetchStats {
  std::atomic<std::uint64_t> staging_hits{0};
  std::atomic<std::uint64_t> local_fetches{0};
  std::atomic<std::uint64_t> remote_fetches{0};
  std::atomic<std::uint64_t> pfs_fetches{0};
  std::atomic<std::uint64_t> remote_misses{0};  ///< heuristic false positives
  std::atomic<double> local_mb{0.0};
  std::atomic<double> remote_mb{0.0};
  std::atomic<double> pfs_mb{0.0};

  void add_mb(std::atomic<double>& counter, double mb) {
    counter.fetch_add(mb, std::memory_order_relaxed);
  }
};

/// Runtime configuration switches (ablations toggle these).
struct RouterOptions {
  bool use_remote = true;               ///< allow case-1 fetches
  bool use_watermark_heuristic = true;  ///< gate remote on readiness estimate
  bool cache_on_miss = true;            ///< cache planned samples when routed
};

class FetchRouter {
 public:
  /// `devices` and `pfs` may be nullptr for untimed tests; `transport` may
  /// be nullptr when use_remote is false or world size is 1.
  FetchRouter(int rank, const PerfModel& model, const CachePlan& self_plan,
              const LocationIndex& locations, const RemoteReadiness& readiness,
              MetadataStore& metadata,
              std::vector<std::unique_ptr<StorageBackend>>& backends,
              SampleSource& source, net::Transport* transport,
              tiers::WorkerDevices* devices, RouterOptions options);

  /// Fetches the bytes of `sample` from the fastest available source
  /// (staging-prefetcher path).  If this worker plans to cache the sample
  /// and nobody is already fetching it, the bytes are cached on the way
  /// through; if another thread is mid-fetch, this call waits for that
  /// fetch and serves the result locally — planned samples hit the PFS at
  /// most once per worker.
  [[nodiscard]] Bytes fetch(data::SampleId sample, double size_mb);

  /// Class-prefetcher path: fetches and caches `sample` into its planned
  /// class unless it is already cached or another thread claimed it.
  /// Returns true if this call did the caching.
  bool prefetch_planned(data::SampleId sample, double size_mb);

  /// Advances this worker's class-`cls` prefetch progress (used by the
  /// watermark heuristic for remote readiness).
  void note_class_progress(int cls);

  [[nodiscard]] std::uint64_t class_progress(int cls) const;

  [[nodiscard]] FetchStats& stats() noexcept { return stats_; }
  [[nodiscard]] const RouterOptions& options() const noexcept { return options_; }

  /// Loads `sample` from local cache only (serve handler path); charges the
  /// holding tier's read time.  nullopt when not cached.
  [[nodiscard]] std::optional<Bytes> load_local(data::SampleId sample);

 private:
  /// Fetches from the fastest remote/PFS source per the model (no local
  /// check, no caching).
  [[nodiscard]] Bytes fetch_from_source(data::SampleId sample, double size_mb);

  /// Claims the right to materialize `sample` locally.  False if already
  /// cached or claimed by another thread.
  [[nodiscard]] bool try_claim(data::SampleId sample);

  /// Stores claimed bytes into `sample`'s planned class, updates metadata,
  /// releases the claim and wakes waiters.
  void finish_claim(data::SampleId sample, const Bytes& bytes);

  /// Blocks while another thread holds the claim for `sample`.
  void wait_if_inflight(data::SampleId sample);

  int rank_;
  const PerfModel& model_;
  const CachePlan& self_plan_;
  const LocationIndex& locations_;
  const RemoteReadiness& readiness_;
  MetadataStore& metadata_;
  std::vector<std::unique_ptr<StorageBackend>>& backends_;
  SampleSource& source_;
  net::Transport* transport_;
  tiers::WorkerDevices* devices_;
  RouterOptions options_;
  FetchStats stats_;
  std::vector<std::atomic<std::uint64_t>> progress_;  ///< per class

  // Samples currently being fetched-for-caching by some thread.
  std::mutex inflight_mutex_;
  std::condition_variable inflight_cv_;
  std::unordered_set<data::SampleId> inflight_;
};

}  // namespace nopfs::core
