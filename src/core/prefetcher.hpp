#pragma once
// Prefetcher backends (paper Sec. 5.2.2).
//
// ClassPrefetcher: p_j threads fill storage class j with the worker's
// planned samples in first-access order (Rule 1).  If the router already
// cached a sample (load-imbalance smoothing), the prefetcher skips it.
//
// StagingPrefetcher: p_0 threads walk the worker's access stream R,
// reserving staging-buffer slots in stream order from a shared dispenser,
// fetching each sample from the fastest source, charging the preprocessing
// and staging-write costs, and committing slots as they complete (possibly
// out of order; the consumer reorders).

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/access_stream.hpp"
#include "core/fetch_router.hpp"
#include "core/staging_buffer.hpp"

namespace nopfs::core {

/// Fills one storage class with its planned samples.
class ClassPrefetcher {
 public:
  /// `cls` indexes both `plan.per_class` and the router's backends.
  ClassPrefetcher(int cls, const ClassPlan& plan, const data::Dataset& dataset,
                  FetchRouter& router, MetadataStore& metadata,
                  std::vector<std::unique_ptr<StorageBackend>>& backends,
                  tiers::WorkerDevices* devices, int num_threads);
  ~ClassPrefetcher();

  ClassPrefetcher(const ClassPrefetcher&) = delete;
  ClassPrefetcher& operator=(const ClassPrefetcher&) = delete;

  void start();
  void stop();    ///< cooperative; joins threads
  void join();    ///< waits for the plan to be fully prefetched

  [[nodiscard]] bool done() const noexcept;
  [[nodiscard]] std::uint64_t fetched() const noexcept {
    return fetched_.load(std::memory_order_relaxed);
  }

 private:
  void thread_main();

  int cls_;
  const ClassPlan& plan_;
  const data::Dataset& dataset_;
  FetchRouter& router_;
  MetadataStore& metadata_;
  std::vector<std::unique_ptr<StorageBackend>>& backends_;
  tiers::WorkerDevices* devices_;
  int num_threads_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> fetched_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

/// Fills the staging buffer with the access stream R.
class StagingPrefetcher {
 public:
  /// `stream` is worker-local R (sample ids in consumption order); the
  /// prefetcher keeps a reference — the caller owns the storage.
  StagingPrefetcher(const std::vector<data::SampleId>& stream,
                    const data::Dataset& dataset, StagingBuffer& buffer,
                    FetchRouter& router, tiers::WorkerDevices* devices,
                    double preprocess_mbps, double time_scale, int num_threads,
                    net::Transport* transport);
  ~StagingPrefetcher();

  StagingPrefetcher(const StagingPrefetcher&) = delete;
  StagingPrefetcher& operator=(const StagingPrefetcher&) = delete;

  void start();
  /// Cooperative shutdown: closes the staging buffer (waking any producer
  /// blocked in reserve()) and joins all threads.  Safe to call while
  /// producers are parked waiting for ring space.
  void stop();

  /// Stream position reached by the dispenser (watermark basis).
  [[nodiscard]] std::uint64_t progress() const noexcept {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  void thread_main();

  const std::vector<data::SampleId>& stream_;
  const data::Dataset& dataset_;
  StagingBuffer& buffer_;
  FetchRouter& router_;
  tiers::WorkerDevices* devices_;
  double preprocess_mbps_;
  double time_scale_;
  int num_threads_;
  net::Transport* transport_;
  std::mutex dispense_mutex_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

}  // namespace nopfs::core
