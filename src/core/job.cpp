#include "core/job.hpp"

#include <stdexcept>

#include "util/log.hpp"
#include "util/units.hpp"

namespace nopfs::core {

namespace {

StreamConfig make_stream_config(const data::Dataset& dataset,
                                const tiers::SystemParams& system,
                                const JobOptions& options) {
  StreamConfig config;
  config.seed = options.seed;
  config.num_samples = dataset.num_samples();
  config.num_workers = system.num_workers;
  config.num_epochs = options.num_epochs;
  config.global_batch = options.global_batch;
  config.drop_last = options.drop_last;
  config.shuffle = options.shuffle;
  return config;
}

}  // namespace

Job::Job(const data::Dataset& dataset, const tiers::SystemParams& system, int rank,
         JobOptions options, SampleSource& source, net::Transport* transport,
         tiers::WorkerDevices* devices)
    : dataset_(dataset),
      system_(system),
      rank_(rank),
      options_(std::move(options)),
      source_(source),
      transport_(transport),
      devices_(devices),
      generator_(make_stream_config(dataset, system, options_)),
      model_(system),
      metadata_(static_cast<int>(system.node.classes.size())) {
  if (rank_ < 0 || rank_ >= system_.num_workers) {
    throw std::invalid_argument("Job: rank out of range");
  }
  if (transport_ != nullptr && transport_->world_size() != system_.num_workers) {
    throw std::invalid_argument("Job: transport world size != num_workers");
  }
  if (transport_ == nullptr && system_.num_workers > 1 && options_.router.use_remote) {
    throw std::invalid_argument(
        "Job: multi-worker jobs with remote fetching need a transport");
  }
}

Job::~Job() { stop(); }

void Job::start() {
  if (started_) throw std::logic_error("Job: start() called twice");
  started_ = true;

  // Clairvoyance: the entire access stream R is known up front.
  stream_ = generator_.worker_stream(rank_);
  plan_ = compute_cache_plan(generator_, rank_, dataset_, system_.node);

  // Exchange plans so every worker knows where every sample will live.
  if (transport_ != nullptr && transport_->world_size() > 1) {
    auto gathered = transport_->allgather(encode_plan(plan_));
    all_plans_.reserve(gathered.size());
    for (auto& bytes : gathered) all_plans_.push_back(decode_plan(bytes));
  } else {
    all_plans_.push_back(plan_);
  }
  locations_ = LocationIndex(all_plans_, rank_);
  readiness_ = RemoteReadiness(all_plans_);

  // Storage backends for classes 1..J.
  backends_.clear();
  for (std::size_t cls = 0; cls < system_.node.classes.size(); ++cls) {
    const auto& sc = system_.node.classes[cls];
    if (sc.name == "ssd" && !options_.ssd_dir.empty()) {
      backends_.push_back(std::make_unique<FilesystemBackend>(
          options_.ssd_dir / ("rank_" + std::to_string(rank_) + "_cls_" +
                              std::to_string(cls)),
          sc.capacity_mb));
    } else {
      backends_.push_back(std::make_unique<MemoryBackend>(sc.capacity_mb));
    }
  }

  staging_ = std::make_unique<StagingBuffer>(
      util::mb_to_bytes(system_.node.staging.capacity_mb));

  router_ = std::make_unique<FetchRouter>(rank_, model_, plan_, locations_, readiness_,
                                          metadata_, backends_, source_, transport_,
                                          devices_, options_.router);

  if (transport_ != nullptr && transport_->world_size() > 1) {
    // Serve locally cached samples to peers, then synchronize so nobody
    // issues a remote fetch before every handler is installed.
    FetchRouter* router = router_.get();
    transport_->set_serve_handler(
        [router](std::uint64_t id) { return router->load_local(id); });
    transport_->barrier();
  }

  for (std::size_t cls = 0; cls < backends_.size(); ++cls) {
    class_prefetchers_.push_back(std::make_unique<ClassPrefetcher>(
        static_cast<int>(cls), plan_.per_class[cls], dataset_, *router_, metadata_,
        backends_, devices_, system_.node.classes[cls].prefetch_threads));
  }
  staging_prefetcher_ = std::make_unique<StagingPrefetcher>(
      stream_, dataset_, *staging_, *router_, devices_,
      system_.node.preprocess_mbps, options_.time_scale,
      system_.node.staging.prefetch_threads, transport_);

  for (auto& prefetcher : class_prefetchers_) prefetcher->start();
  staging_prefetcher_->start();
  util::log_debug("rank ", rank_, ": job started, |R|=", stream_.size(),
                  ", planned cache=", plan_.total_samples(), " samples");
}

std::optional<SampleHandle> Job::next() {
  if (!started_ || stopped_) return std::nullopt;
  if (consume_position_ >= stream_.size()) return std::nullopt;
  auto consumed = staging_->consume(consume_position_);
  if (!consumed.has_value()) return std::nullopt;  // closed
  ++consume_position_;
  return SampleHandle(staging_.get(), *consumed);
}

void Job::stop() {
  if (!started_ || stopped_) {
    stopped_ = true;
    return;
  }
  stopped_ = true;
  if (staging_prefetcher_ != nullptr) staging_prefetcher_->stop();
  for (auto& prefetcher : class_prefetchers_) prefetcher->stop();
  if (transport_ != nullptr && transport_->world_size() > 1) {
    // Withdraw the serve handler so peers that outlive this job get clean
    // misses (they fall back to the PFS) instead of touching freed state.
    transport_->set_serve_handler(net::Transport::ServeHandler{});
  }
}

JobStats Job::stats() const {
  JobStats stats;
  if (router_ != nullptr) {
    const FetchStats& fs = router_->stats();
    stats.local_fetches = fs.local_fetches.load(std::memory_order_relaxed);
    stats.remote_fetches = fs.remote_fetches.load(std::memory_order_relaxed);
    stats.pfs_fetches = fs.pfs_fetches.load(std::memory_order_relaxed);
    stats.remote_misses = fs.remote_misses.load(std::memory_order_relaxed);
    stats.local_mb = fs.local_mb.load(std::memory_order_relaxed);
    stats.remote_mb = fs.remote_mb.load(std::memory_order_relaxed);
    stats.pfs_mb = fs.pfs_mb.load(std::memory_order_relaxed);
  }
  if (staging_ != nullptr) {
    stats.stall_s = staging_->consumer_stall_s() * options_.time_scale;
  }
  stats.cached_samples = metadata_.total_count();
  return stats;
}

int Job::epoch_of(std::uint64_t position) const noexcept {
  const auto per_epoch = static_cast<std::uint64_t>(generator_.config().num_epochs) > 0
                             ? stream_.size() /
                                   static_cast<std::uint64_t>(generator_.config().num_epochs)
                             : stream_.size();
  if (per_epoch == 0) return 0;
  const auto epoch = position / per_epoch;
  const int max_epoch = generator_.config().num_epochs - 1;
  return static_cast<int>(epoch) > max_epoch ? max_epoch : static_cast<int>(epoch);
}

}  // namespace nopfs::core
