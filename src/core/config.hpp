#pragma once
// System configuration files (paper Sec. 5.2.2): "the parameters for our
// performance model are specified by a system-wide configuration file,
// with parameterized values (e.g., PFS bandwidth for a given number of
// readers) inferred using linear regression when the exact value is not
// available."
//
// Format: one `key = value` per line; `#` starts a comment.  Curve-valued
// keys take space-separated `x:y` points (any number >= 1); lookups
// between points interpolate and beyond them extrapolate by regression
// (util::ThroughputCurve).  Storage classes are declared fastest-first via
// `class.<name>.*` keys and ordered by their first appearance.
//
//   name            = my-cluster
//   num_workers     = 4
//   compute_mbps    = 64
//   preprocess_mbps = 200
//   network_mbps    = 24000
//   staging.capacity_mb = 5120
//   staging.threads     = 8
//   staging.rw_mbps     = 0:0 8:113664
//   class.ram.capacity_mb = 122880
//   class.ram.threads     = 4
//   class.ram.read_mbps   = 0:0 4:87040
//   class.ram.write_mbps  = 0:0 4:87040
//   class.ssd.capacity_mb = 921600
//   class.ssd.threads     = 2
//   class.ssd.read_mbps   = 1:2500 2:4096
//   class.ssd.write_mbps  = 1:1500 2:2400
//   pfs.read_mbps   = 1:120 2:180 4:240 8:280
//   pfs.op_rate     = 0

#include <string>

#include "tiers/params.hpp"

namespace nopfs::core {

/// Parses a configuration text into SystemParams.
/// Throws std::invalid_argument with a line-numbered message on errors
/// (unknown keys, malformed numbers/points, missing required fields).
[[nodiscard]] tiers::SystemParams parse_system_config(const std::string& text);

/// Loads and parses a configuration file.
[[nodiscard]] tiers::SystemParams load_system_config(const std::string& path);

/// Renders SystemParams back into parseable configuration text
/// (round-trips through parse_system_config).
[[nodiscard]] std::string format_system_config(const tiers::SystemParams& params);

}  // namespace nopfs::core
