#pragma once
// Storage backends (paper Sec. 5.2.2): "Storage backends need only
// implement a generic interface, and NoPFS currently supports filesystem-
// and memory-based storage backends, which are sufficient to support most
// storage classes (including RAM, SSDs, and HDDs)."
//
// MemoryBackend holds bytes in an unordered map (RAM classes).
// FilesystemBackend persists one file per sample under a directory and
// reads via mmap, matching the paper's mmap-based filesystem prefetcher.
// Both enforce a capacity and are thread-safe.

#include <cstdint>
#include <filesystem>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"

namespace nopfs::core {

using Bytes = std::vector<std::uint8_t>;

/// Generic storage backend interface for one storage class.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Stores `bytes` under `sample`.  Returns false if the sample is already
  /// present or capacity would be exceeded.
  virtual bool store(data::SampleId sample, const Bytes& bytes) = 0;

  /// Loads the full content of `sample`, or nullopt if absent.
  [[nodiscard]] virtual std::optional<Bytes> load(data::SampleId sample) const = 0;

  [[nodiscard]] virtual bool contains(data::SampleId sample) const = 0;

  /// Removes `sample`; returns true if it was present.
  virtual bool erase(data::SampleId sample) = 0;

  [[nodiscard]] virtual double used_mb() const = 0;
  [[nodiscard]] virtual double capacity_mb() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// RAM-class backend.
class MemoryBackend final : public StorageBackend {
 public:
  explicit MemoryBackend(double capacity_mb);

  bool store(data::SampleId sample, const Bytes& bytes) override;
  [[nodiscard]] std::optional<Bytes> load(data::SampleId sample) const override;
  [[nodiscard]] bool contains(data::SampleId sample) const override;
  bool erase(data::SampleId sample) override;
  [[nodiscard]] double used_mb() const override;
  [[nodiscard]] double capacity_mb() const override { return capacity_mb_; }
  [[nodiscard]] std::string name() const override { return "memory"; }

 private:
  double capacity_mb_;
  mutable std::mutex mutex_;
  std::unordered_map<data::SampleId, Bytes> store_;
  double used_mb_ = 0.0;
};

/// SSD/HDD-class backend: one file per sample, mmap-based reads.
class FilesystemBackend final : public StorageBackend {
 public:
  /// Files live under `directory` (created if missing).  The directory is
  /// removed on destruction unless keep() is called.
  FilesystemBackend(std::filesystem::path directory, double capacity_mb);
  ~FilesystemBackend() override;

  bool store(data::SampleId sample, const Bytes& bytes) override;
  [[nodiscard]] std::optional<Bytes> load(data::SampleId sample) const override;
  [[nodiscard]] bool contains(data::SampleId sample) const override;
  bool erase(data::SampleId sample) override;
  [[nodiscard]] double used_mb() const override;
  [[nodiscard]] double capacity_mb() const override { return capacity_mb_; }
  [[nodiscard]] std::string name() const override { return "filesystem"; }

  void keep() noexcept { keep_ = true; }
  [[nodiscard]] const std::filesystem::path& directory() const noexcept {
    return directory_;
  }

 private:
  [[nodiscard]] std::filesystem::path path_of(data::SampleId sample) const;

  std::filesystem::path directory_;
  double capacity_mb_;
  mutable std::mutex mutex_;
  std::unordered_map<data::SampleId, std::uint64_t> sizes_bytes_;
  double used_mb_ = 0.0;
  bool keep_ = false;
};

}  // namespace nopfs::core
