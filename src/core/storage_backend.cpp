#include "core/storage_backend.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <stdexcept>
#include <system_error>

#include "util/log.hpp"
#include "util/units.hpp"

namespace nopfs::core {

MemoryBackend::MemoryBackend(double capacity_mb) : capacity_mb_(capacity_mb) {}

bool MemoryBackend::store(data::SampleId sample, const Bytes& bytes) {
  const double size_mb = util::bytes_to_mb(bytes.size());
  const std::scoped_lock lock(mutex_);
  if (store_.contains(sample)) return false;
  if (used_mb_ + size_mb > capacity_mb_) return false;
  store_.emplace(sample, bytes);
  used_mb_ += size_mb;
  return true;
}

std::optional<Bytes> MemoryBackend::load(data::SampleId sample) const {
  const std::scoped_lock lock(mutex_);
  const auto it = store_.find(sample);
  if (it == store_.end()) return std::nullopt;
  return it->second;
}

bool MemoryBackend::contains(data::SampleId sample) const {
  const std::scoped_lock lock(mutex_);
  return store_.contains(sample);
}

bool MemoryBackend::erase(data::SampleId sample) {
  const std::scoped_lock lock(mutex_);
  const auto it = store_.find(sample);
  if (it == store_.end()) return false;
  used_mb_ -= util::bytes_to_mb(it->second.size());
  store_.erase(it);
  return true;
}

double MemoryBackend::used_mb() const {
  const std::scoped_lock lock(mutex_);
  return used_mb_;
}

FilesystemBackend::FilesystemBackend(std::filesystem::path directory, double capacity_mb)
    : directory_(std::move(directory)), capacity_mb_(capacity_mb) {
  std::filesystem::create_directories(directory_);
}

FilesystemBackend::~FilesystemBackend() {
  if (keep_) return;
  std::error_code ec;
  std::filesystem::remove_all(directory_, ec);
  if (ec) {
    util::log_warn("FilesystemBackend: cleanup of ", directory_.string(),
                   " failed: ", ec.message());
  }
}

std::filesystem::path FilesystemBackend::path_of(data::SampleId sample) const {
  return directory_ / (std::to_string(sample) + ".bin");
}

bool FilesystemBackend::store(data::SampleId sample, const Bytes& bytes) {
  const double size_mb = util::bytes_to_mb(bytes.size());
  {
    const std::scoped_lock lock(mutex_);
    if (sizes_bytes_.contains(sample)) return false;
    if (used_mb_ + size_mb > capacity_mb_) return false;
    // Reserve capacity before the (slow) write so concurrent stores cannot
    // collectively overshoot.
    sizes_bytes_.emplace(sample, bytes.size());
    used_mb_ += size_mb;
  }
  const auto path = path_of(sample);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  bool ok = static_cast<bool>(out);
  if (ok) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ok = static_cast<bool>(out);
  }
  if (!ok) {
    const std::scoped_lock lock(mutex_);
    sizes_bytes_.erase(sample);
    used_mb_ -= size_mb;
    util::log_error("FilesystemBackend: failed writing ", path.string());
  }
  return ok;
}

std::optional<Bytes> FilesystemBackend::load(data::SampleId sample) const {
  std::uint64_t size = 0;
  {
    const std::scoped_lock lock(mutex_);
    const auto it = sizes_bytes_.find(sample);
    if (it == sizes_bytes_.end()) return std::nullopt;
    size = it->second;
  }
  // mmap read path, as in the paper's filesystem prefetcher.
  const auto path = path_of(sample);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return std::nullopt;
  Bytes bytes(size);
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      ::close(fd);
      return std::nullopt;
    }
    std::memcpy(bytes.data(), mapped, size);
    ::munmap(mapped, size);
  }
  ::close(fd);
  return bytes;
}

bool FilesystemBackend::contains(data::SampleId sample) const {
  const std::scoped_lock lock(mutex_);
  return sizes_bytes_.contains(sample);
}

bool FilesystemBackend::erase(data::SampleId sample) {
  {
    const std::scoped_lock lock(mutex_);
    const auto it = sizes_bytes_.find(sample);
    if (it == sizes_bytes_.end()) return false;
    used_mb_ -= util::bytes_to_mb(it->second);
    sizes_bytes_.erase(it);
  }
  std::error_code ec;
  std::filesystem::remove(path_of(sample), ec);
  return true;
}

double FilesystemBackend::used_mb() const {
  const std::scoped_lock lock(mutex_);
  return used_mb_;
}

}  // namespace nopfs::core
