#include "core/frequency.hpp"

#include <algorithm>
#include <cmath>

namespace nopfs::core {

FrequencyMap count_worker_frequencies(const AccessStreamGenerator& gen, int rank) {
  FrequencyMap freqs;
  const auto& cfg = gen.config();
  freqs.reserve(static_cast<std::size_t>(
      static_cast<double>(cfg.num_epochs) * static_cast<double>(cfg.samples_per_worker_epoch())));
  gen.for_each_access(rank, [&](const Access& access) { ++freqs[access.sample]; });
  return freqs;
}

util::Histogram frequency_histogram(const AccessStreamGenerator& gen, int rank,
                                    std::size_t num_bins) {
  util::Histogram hist(num_bins);
  // Flat per-sample counters instead of a hash map: sample ids are dense in
  // [0, F), so counting is O(F + accesses) with no rehashing, and samples
  // never accessed by this worker land in bin 0 without a separate fill-in
  // pass.  At ImageNet-22k scale (F = 14.2M) this is the difference between
  // one 57 MB array walk and millions of hash probes (Fig. 3 bench).
  std::vector<std::uint32_t> counts(gen.config().num_samples, 0);
  gen.for_each_access(rank, [&](const Access& access) { ++counts[access.sample]; });
  for (const std::uint32_t count : counts) {
    hist.add(static_cast<std::int64_t>(count));
  }
  return hist;
}

double expected_samples_above(std::uint64_t num_samples, int num_workers,
                              int num_epochs, double delta) {
  const double mu = static_cast<double>(num_epochs) / static_cast<double>(num_workers);
  const auto threshold = static_cast<std::uint64_t>(std::ceil((1.0 + delta) * mu));
  // P(X > mu(1+delta)) with the paper's integer threshold ceil((1+delta)mu):
  // the sum starts at k = ceil((1+delta)mu), i.e. P(X >= threshold).
  const double tail = util::binomial_tail_greater(
      static_cast<std::uint64_t>(num_epochs), 1.0 / static_cast<double>(num_workers),
      threshold == 0 ? 0 : threshold - 1);
  return static_cast<double>(num_samples) * tail;
}

std::uint64_t lemma1_other_worker_bound(int num_workers, int num_epochs, double delta) {
  const double mu = static_cast<double>(num_epochs) / static_cast<double>(num_workers);
  const double factor =
      (static_cast<double>(num_workers) - 1.0 - delta) / (static_cast<double>(num_workers) - 1.0);
  return static_cast<std::uint64_t>(std::ceil(factor * mu));
}

std::vector<std::pair<data::SampleId, std::uint32_t>> sorted_by_frequency(
    const FrequencyMap& freqs) {
  std::vector<std::pair<data::SampleId, std::uint32_t>> sorted(freqs.begin(), freqs.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;  // deterministic tie-break
  });
  return sorted;
}

}  // namespace nopfs::core
