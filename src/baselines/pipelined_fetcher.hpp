#pragma once
// PipelinedFetcher: the double-buffering engine shared by the baseline
// loaders.  `threads` workers pull stream positions from a dispenser
// (bounded to `lookahead` positions beyond the consumer), run the
// user-supplied fetch function, and park results in a reorder buffer; the
// consumer pops them in stream order.  This is exactly the architecture of
// PyTorch's DataLoader (num_workers + prefetch_factor) and of tf.data's
// prefetch stage.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace nopfs::baselines {

class PipelinedFetcher {
 public:
  using Bytes = std::vector<std::uint8_t>;
  /// fetch(position) -> sample bytes; called concurrently from the pool.
  using FetchFn = std::function<Bytes(std::uint64_t)>;

  /// Fetches positions [0, total); keeps at most `lookahead` results beyond
  /// the consumer in flight or buffered.
  PipelinedFetcher(std::uint64_t total, int threads, int lookahead, FetchFn fetch);
  ~PipelinedFetcher();

  PipelinedFetcher(const PipelinedFetcher&) = delete;
  PipelinedFetcher& operator=(const PipelinedFetcher&) = delete;

  void start();

  /// Blocks for the result of the next position; nullopt after `total`.
  [[nodiscard]] std::optional<Bytes> next();

  void stop();

 private:
  void thread_main();

  std::uint64_t total_;
  int threads_;
  std::uint64_t lookahead_;
  FetchFn fetch_;

  std::mutex mutex_;
  std::condition_variable can_dispatch_;
  std::condition_variable ready_;
  std::uint64_t next_dispatch_ = 0;
  std::uint64_t next_consume_ = 0;
  std::map<std::uint64_t, Bytes> reorder_;
  bool stopped_ = false;
  std::vector<std::thread> pool_;
};

}  // namespace nopfs::baselines
