// Implementations of the baseline loaders and the NoPFS adapter.
//
// Each loader charges the same emulated devices (PFS, tiers, NIC,
// preprocessing) so the runtime comparison against NoPFS is apples to
// apples.  See loader.hpp for the interface.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "baselines/loader.hpp"
#include "baselines/pipelined_fetcher.hpp"
#include "core/access_stream.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace nopfs::baselines {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

core::StreamConfig stream_config_of(const LoaderContext& ctx) {
  core::StreamConfig config;
  config.seed = ctx.seed;
  config.num_samples = ctx.dataset->num_samples();
  config.num_workers = ctx.system->num_workers;
  config.num_epochs = ctx.num_epochs;
  config.global_batch = ctx.global_batch;
  config.drop_last = ctx.drop_last;
  return config;
}

/// Charges preprocessing (sleep at beta) and the staging-buffer store.
void charge_preprocess_and_stage(const LoaderContext& ctx, double mb,
                                 double preprocess_speedup = 1.0) {
  if (ctx.devices == nullptr) return;
  ctx.devices->staging->write(mb);
  const double beta = ctx.system->node.preprocess_mbps * preprocess_speedup;
  if (beta > 0.0 && ctx.time_scale > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(mb / beta / ctx.time_scale));
  }
}

/// Common bookkeeping: counts, MB, stall time.
class StatsAccum {
 public:
  void count_pfs(double mb) {
    ++pfs_;
    pfs_mb_ += mb;
  }
  void count_local(double mb) {
    ++local_;
    local_mb_ += mb;
  }
  void count_remote(double mb) {
    ++remote_;
    remote_mb_ += mb;
  }
  void add_stall(double seconds) { stall_s_ += seconds; }

  [[nodiscard]] core::JobStats snapshot(double time_scale) const {
    core::JobStats stats;
    stats.pfs_fetches = pfs_.load();
    stats.local_fetches = local_.load();
    stats.remote_fetches = remote_.load();
    stats.pfs_mb = pfs_mb_.load();
    stats.local_mb = local_mb_.load();
    stats.remote_mb = remote_mb_.load();
    stats.stall_s = stall_s_.load() * time_scale;
    return stats;
  }

 private:
  std::atomic<std::uint64_t> pfs_{0};
  std::atomic<std::uint64_t> local_{0};
  std::atomic<std::uint64_t> remote_{0};
  std::atomic<double> pfs_mb_{0.0};
  std::atomic<double> local_mb_{0.0};
  std::atomic<double> remote_mb_{0.0};
  std::atomic<double> stall_s_{0.0};
};

// ---------------------------------------------------------------------------

/// NoPFS adapter over core::Job.
class NoPFSLoader final : public Loader {
 public:
  explicit NoPFSLoader(const LoaderContext& ctx) : ctx_(ctx) {
    core::JobOptions options;
    options.seed = ctx.seed;
    options.num_epochs = ctx.num_epochs;
    options.global_batch = ctx.global_batch;
    options.drop_last = ctx.drop_last;
    options.router = ctx.router;
    options.time_scale = ctx.time_scale;
    job_ = std::make_unique<core::Job>(*ctx.dataset, *ctx.system, ctx.rank, options,
                                       *ctx.source, ctx.transport, ctx.devices);
  }

  void start() override { job_->start(); }

  std::optional<LoadedSample> next() override {
    auto handle = job_->next();
    if (!handle.has_value()) return std::nullopt;
    return LoadedSample(std::move(*handle));
  }

  [[nodiscard]] core::JobStats stats() const override { return job_->stats(); }
  [[nodiscard]] std::string name() const override { return "NoPFS"; }

 private:
  LoaderContext ctx_;
  std::unique_ptr<core::Job> job_;
};

// ---------------------------------------------------------------------------

/// Synchronous PFS reads, no prefetching (the Naive strategy).
class NaiveLoader final : public Loader {
 public:
  explicit NaiveLoader(const LoaderContext& ctx) : ctx_(ctx) {
    const core::AccessStreamGenerator gen(stream_config_of(ctx));
    stream_ = gen.worker_stream(ctx.rank);
  }

  void start() override {}

  std::optional<LoadedSample> next() override {
    if (position_ >= stream_.size()) return std::nullopt;
    const data::SampleId id = stream_[position_++];
    const double mb = ctx_.dataset->size_mb(id);
    const double begin = now_s();
    auto bytes = ctx_.source->read(ctx_.rank, id);
    charge_preprocess_and_stage(ctx_, mb);
    stats_.add_stall(now_s() - begin);
    stats_.count_pfs(mb);
    return LoadedSample(id, std::move(bytes));
  }

  [[nodiscard]] core::JobStats stats() const override {
    return stats_.snapshot(ctx_.time_scale);
  }
  [[nodiscard]] std::string name() const override { return "Naive"; }

 private:
  LoaderContext ctx_;
  std::vector<data::SampleId> stream_;
  std::uint64_t position_ = 0;
  StatsAccum stats_;
};

// ---------------------------------------------------------------------------

/// PyTorch DataLoader: threads double-buffer the access stream from the PFS
/// with a bounded lookahead.  With preprocess_speedup > 1 this models DALI
/// (GPU-offloaded preprocessing).
class DoubleBufferLoader final : public Loader {
 public:
  DoubleBufferLoader(const LoaderContext& ctx, double preprocess_speedup,
                     std::string name)
      : ctx_(ctx), preprocess_speedup_(preprocess_speedup), name_(std::move(name)) {
    const core::AccessStreamGenerator gen(stream_config_of(ctx));
    stream_ = gen.worker_stream(ctx.rank);
    fetcher_ = std::make_unique<PipelinedFetcher>(
        stream_.size(), ctx.threads, ctx.lookahead, [this](std::uint64_t pos) {
          const data::SampleId id = stream_[pos];
          const double mb = ctx_.dataset->size_mb(id);
          auto bytes = ctx_.source->read(ctx_.rank, id);
          charge_preprocess_and_stage(ctx_, mb, preprocess_speedup_);
          stats_.count_pfs(mb);
          return bytes;
        });
  }

  void start() override { fetcher_->start(); }

  std::optional<LoadedSample> next() override {
    if (position_ >= stream_.size()) return std::nullopt;
    const double begin = now_s();
    auto bytes = fetcher_->next();
    stats_.add_stall(now_s() - begin);
    if (!bytes.has_value()) return std::nullopt;
    const data::SampleId id = stream_[position_++];
    return LoadedSample(id, std::move(*bytes));
  }

  [[nodiscard]] core::JobStats stats() const override {
    return stats_.snapshot(ctx_.time_scale);
  }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  LoaderContext ctx_;
  double preprocess_speedup_;
  std::string name_;
  std::vector<data::SampleId> stream_;
  std::unique_ptr<PipelinedFetcher> fetcher_;
  std::uint64_t position_ = 0;
  StatsAccum stats_;
};

// ---------------------------------------------------------------------------

/// tf.data: sequential strided reads with a sliding shuffle window — limited
/// randomization instead of a full per-epoch reshuffle.
class ShuffleBufferLoader final : public Loader {
 public:
  static constexpr std::size_t kWindow = 256;

  explicit ShuffleBufferLoader(const LoaderContext& ctx)
      : ctx_(ctx), rng_(util::Rng::for_stream(ctx.seed ^ 0x7fdaULL,
                                              static_cast<std::uint64_t>(ctx.rank) + 1)) {
    // Per-epoch sequential order over this worker's file shard
    // (rank-strided ids), repeated for E epochs.
    const core::StreamConfig config = stream_config_of(ctx);
    const std::uint64_t per_epoch = config.samples_per_worker_epoch();
    order_.reserve(per_epoch * static_cast<std::uint64_t>(ctx.num_epochs));
    for (int e = 0; e < ctx.num_epochs; ++e) {
      std::uint64_t emitted = 0;
      for (data::SampleId k = static_cast<data::SampleId>(ctx.rank);
           k < ctx.dataset->num_samples() && emitted < per_epoch;
           k += static_cast<data::SampleId>(ctx.system->num_workers), ++emitted) {
        order_.push_back(k);
      }
    }
    fetcher_ = std::make_unique<PipelinedFetcher>(
        order_.size(), ctx.threads, ctx.lookahead, [this](std::uint64_t pos) {
          const data::SampleId id = order_[pos];
          const double mb = ctx_.dataset->size_mb(id);
          auto bytes = ctx_.source->read(ctx_.rank, id);
          charge_preprocess_and_stage(ctx_, mb);
          stats_.count_pfs(mb);
          return bytes;
        });
  }

  void start() override { fetcher_->start(); }

  std::optional<LoadedSample> next() override {
    // Keep the shuffle window full, then emit a random member.
    while (window_.size() < kWindow && fill_position_ < order_.size()) {
      const double begin = now_s();
      auto bytes = fetcher_->next();
      stats_.add_stall(now_s() - begin);
      if (!bytes.has_value()) break;
      window_.emplace_back(order_[fill_position_++], std::move(*bytes));
    }
    if (window_.empty()) return std::nullopt;
    const std::size_t pick =
        static_cast<std::size_t>(rng_.uniform_below(window_.size()));
    LoadedSample sample(window_[pick].first, std::move(window_[pick].second));
    window_[pick] = std::move(window_.back());
    window_.pop_back();
    return sample;
  }

  [[nodiscard]] core::JobStats stats() const override {
    return stats_.snapshot(ctx_.time_scale);
  }
  [[nodiscard]] std::string name() const override { return "tf.data"; }

 private:
  LoaderContext ctx_;
  util::Rng rng_;
  std::vector<data::SampleId> order_;
  std::unique_ptr<PipelinedFetcher> fetcher_;
  std::uint64_t fill_position_ = 0;
  std::vector<std::pair<data::SampleId, std::vector<std::uint8_t>>> window_;
  StatsAccum stats_;
};

// ---------------------------------------------------------------------------

/// Data sharding: prestage a static shard into local memory, then read only
/// locally (deviates from full-dataset randomization).
class ShardedLoader final : public Loader {
 public:
  explicit ShardedLoader(const LoaderContext& ctx) : ctx_(ctx) {
    double capacity = 0.0;
    for (const auto& sc : ctx.system->node.classes) capacity += sc.capacity_mb;
    backend_ = std::make_unique<core::MemoryBackend>(capacity);
    const core::StreamConfig config = stream_config_of(ctx);
    per_epoch_ = config.samples_per_worker_epoch();
    double used = 0.0;
    for (data::SampleId k = static_cast<data::SampleId>(ctx.rank);
         k < ctx.dataset->num_samples();
         k += static_cast<data::SampleId>(ctx.system->num_workers)) {
      const double mb = ctx.dataset->size_mb(k);
      if (used + mb > capacity) break;
      used += mb;
      shard_.push_back(k);
    }
  }

  void start() override {
    // Prestage: read the shard from the PFS into local memory.  This phase
    // cannot overlap training.
    for (data::SampleId k : shard_) {
      const double mb = ctx_.dataset->size_mb(k);
      auto bytes = ctx_.source->read(ctx_.rank, k);
      stats_.count_pfs(mb);
      backend_->store(k, bytes);
      if (ctx_.devices != nullptr && !ctx_.devices->tiers.empty()) {
        ctx_.devices->tiers.front()->write(mb);
      }
    }
    reshuffle(0);
  }

  std::optional<LoadedSample> next() override {
    const std::uint64_t total = per_epoch_ * static_cast<std::uint64_t>(ctx_.num_epochs);
    if (shard_.empty() || position_ >= total) return std::nullopt;
    const std::uint64_t epoch = position_ / per_epoch_;
    if (epoch != current_epoch_) reshuffle(static_cast<int>(epoch));
    const data::SampleId id = sequence_[position_ % sequence_.size()];
    ++position_;
    const double mb = ctx_.dataset->size_mb(id);
    const double begin = now_s();
    auto bytes = backend_->load(id);
    if (ctx_.devices != nullptr && !ctx_.devices->tiers.empty()) {
      ctx_.devices->tiers.front()->read(mb);
    }
    charge_preprocess_and_stage(ctx_, mb);
    stats_.add_stall(now_s() - begin);
    stats_.count_local(mb);
    return LoadedSample(id, std::move(bytes.value()));
  }

  [[nodiscard]] core::JobStats stats() const override {
    return stats_.snapshot(ctx_.time_scale);
  }
  [[nodiscard]] std::string name() const override { return "Sharded"; }

 private:
  void reshuffle(int epoch) {
    current_epoch_ = static_cast<std::uint64_t>(epoch);
    sequence_ = shard_;
    util::Rng rng = util::Rng::for_stream(
        ctx_.seed ^ 0x3c3cULL,
        static_cast<std::uint64_t>(epoch) *
                static_cast<std::uint64_t>(ctx_.system->num_workers) +
            static_cast<std::uint64_t>(ctx_.rank) + 1);
    util::fisher_yates_shuffle(std::span<data::SampleId>(sequence_), rng);
  }

  LoaderContext ctx_;
  std::vector<data::SampleId> shard_;
  std::vector<data::SampleId> sequence_;
  std::unique_ptr<core::MemoryBackend> backend_;
  std::uint64_t per_epoch_ = 0;
  std::uint64_t position_ = 0;
  std::uint64_t current_epoch_ = 0;
  StatsAccum stats_;
};

// ---------------------------------------------------------------------------

/// LBANN data store (dynamic mode): every sample is owned by the worker
/// that reads it first (epoch 0); owners cache in RAM and serve peers.
class LbannLoader final : public Loader {
 public:
  explicit LbannLoader(const LoaderContext& ctx) : ctx_(ctx) {
    const core::AccessStreamGenerator gen(stream_config_of(ctx));
    stream_ = gen.worker_stream(ctx.rank);
    per_epoch_ = gen.config().samples_per_worker_epoch();
    // Clairvoyant shortcut for ownership metadata: the first reader of a
    // sample in epoch 0 is deterministic given the seed (the real LBANN
    // data store exchanges this metadata at the end of epoch 0).
    owners_.assign(ctx.dataset->num_samples(), kUnowned);
    const auto order = gen.epoch_order(0);
    const std::uint64_t consumed = std::min<std::uint64_t>(
        order.size(), gen.config().iterations_per_epoch() * gen.config().global_batch);
    for (std::uint64_t pos = 0; pos < consumed; ++pos) {
      owners_[order[pos]] = static_cast<std::uint32_t>(
          pos % static_cast<std::uint64_t>(ctx.system->num_workers));
    }
    const double ram = ctx.system->node.classes.empty()
                           ? 0.0
                           : ctx.system->node.classes[0].capacity_mb;
    backend_ = std::make_unique<core::MemoryBackend>(ram);
    fetcher_ = std::make_unique<PipelinedFetcher>(
        stream_.size(), ctx.threads, ctx.lookahead,
        [this](std::uint64_t pos) { return fetch(pos); });
  }

  ~LbannLoader() override {
    // Uninstall the serve handler before backend_ dies: a straggling peer
    // fetch must become a miss, not a use-after-free.  (core::Job does the
    // same in stop(); both transports hold their handler mutex across a
    // serve, so after this call no serve can touch freed state.)
    if (ctx_.transport != nullptr && ctx_.transport->world_size() > 1) {
      ctx_.transport->set_serve_handler(net::Transport::ServeHandler{});
    }
  }

  void start() override {
    if (ctx_.transport != nullptr && ctx_.transport->world_size() > 1) {
      core::MemoryBackend* backend = backend_.get();
      const LoaderContext ctx = ctx_;
      ctx_.transport->set_serve_handler(
          [backend, ctx](std::uint64_t id) -> std::optional<net::Bytes> {
            auto bytes = backend->load(id);
            if (bytes.has_value() && ctx.devices != nullptr &&
                !ctx.devices->tiers.empty()) {
              ctx.devices->tiers.front()->read(
                  util::bytes_to_mb(bytes->size()));
            }
            return bytes;
          });
      ctx_.transport->barrier();
    }
    fetcher_->start();
  }

  std::optional<LoadedSample> next() override {
    if (position_ >= stream_.size()) return std::nullopt;
    const double begin = now_s();
    auto bytes = fetcher_->next();
    stats_.add_stall(now_s() - begin);
    if (!bytes.has_value()) return std::nullopt;
    const data::SampleId id = stream_[position_++];
    return LoadedSample(id, std::move(*bytes));
  }

  [[nodiscard]] core::JobStats stats() const override {
    return stats_.snapshot(ctx_.time_scale);
  }
  [[nodiscard]] std::string name() const override { return "LBANN"; }

 private:
  static constexpr std::uint32_t kUnowned = 0xffffffffu;

  std::vector<std::uint8_t> fetch(std::uint64_t pos) {
    const data::SampleId id = stream_[pos];
    const double mb = ctx_.dataset->size_mb(id);
    // Local cache hit.
    if (auto cached = backend_->load(id); cached.has_value()) {
      if (ctx_.devices != nullptr && !ctx_.devices->tiers.empty()) {
        ctx_.devices->tiers.front()->read(mb);
      }
      charge_preprocess_and_stage(ctx_, mb);
      stats_.count_local(mb);
      return std::move(*cached);
    }
    // After epoch 0, the owner has it: fetch remotely.
    const std::uint32_t owner = owners_[id];
    const bool past_first_epoch = pos >= per_epoch_;
    if (past_first_epoch && owner != kUnowned &&
        owner != static_cast<std::uint32_t>(ctx_.rank) && ctx_.transport != nullptr) {
      auto remote = ctx_.transport->fetch_sample(static_cast<int>(owner), id);
      if (remote.has_value()) {
        charge_preprocess_and_stage(ctx_, mb);
        stats_.count_remote(mb);
        return std::move(*remote);
      }
    }
    // PFS read; cache if this worker owns the sample.
    auto bytes = ctx_.source->read(ctx_.rank, id);
    stats_.count_pfs(mb);
    if (owner == static_cast<std::uint32_t>(ctx_.rank) && backend_->store(id, bytes)) {
      if (ctx_.devices != nullptr && !ctx_.devices->tiers.empty()) {
        ctx_.devices->tiers.front()->write(mb);
      }
    }
    charge_preprocess_and_stage(ctx_, mb);
    return bytes;
  }

  LoaderContext ctx_;
  std::vector<data::SampleId> stream_;
  std::vector<std::uint32_t> owners_;
  std::unique_ptr<core::MemoryBackend> backend_;
  std::unique_ptr<PipelinedFetcher> fetcher_;
  std::uint64_t per_epoch_ = 0;
  std::uint64_t position_ = 0;
  StatsAccum stats_;
};

}  // namespace

const char* loader_kind_name(LoaderKind kind) noexcept {
  switch (kind) {
    case LoaderKind::kNoPFS: return "NoPFS";
    case LoaderKind::kNaive: return "Naive";
    case LoaderKind::kPyTorch: return "PyTorch";
    case LoaderKind::kDali: return "PyTorch+DALI";
    case LoaderKind::kTfData: return "tf.data";
    case LoaderKind::kSharded: return "Sharded";
    case LoaderKind::kLbann: return "LBANN";
  }
  return "?";
}

namespace {

constexpr std::pair<LoaderKind, const char*> kLoaderFlags[] = {
    {LoaderKind::kNoPFS, "nopfs"},     {LoaderKind::kNaive, "naive"},
    {LoaderKind::kPyTorch, "pytorch"}, {LoaderKind::kDali, "dali"},
    {LoaderKind::kTfData, "tfdata"},   {LoaderKind::kSharded, "sharded"},
    {LoaderKind::kLbann, "lbann"},
};

}  // namespace

const char* loader_flag_name(LoaderKind kind) noexcept {
  for (const auto& [k, name] : kLoaderFlags) {
    if (k == kind) return name;
  }
  return "nopfs";
}

LoaderKind parse_loader_kind(const std::string& name) {
  for (const auto& [kind, flag] : kLoaderFlags) {
    if (name == flag) return kind;
  }
  throw std::invalid_argument("unknown loader '" + name + "'; known: " +
                              loader_flag_names());
}

const std::string& loader_flag_names() {
  static const std::string joined = [] {
    std::string out;
    for (const auto& [kind, flag] : kLoaderFlags) {
      if (!out.empty()) out += '|';
      out += flag;
    }
    return out;
  }();
  return joined;
}

std::unique_ptr<Loader> make_loader(LoaderKind kind, const LoaderContext& ctx) {
  switch (kind) {
    case LoaderKind::kNoPFS:
      return std::make_unique<NoPFSLoader>(ctx);
    case LoaderKind::kNaive:
      return std::make_unique<NaiveLoader>(ctx);
    case LoaderKind::kPyTorch:
      return std::make_unique<DoubleBufferLoader>(ctx, 1.0, "PyTorch");
    case LoaderKind::kDali:
      // DALI offloads decoding/augmentation to GPU: ~8x the CPU pipeline.
      return std::make_unique<DoubleBufferLoader>(ctx, 8.0, "PyTorch+DALI");
    case LoaderKind::kTfData:
      return std::make_unique<ShuffleBufferLoader>(ctx);
    case LoaderKind::kSharded:
      return std::make_unique<ShardedLoader>(ctx);
    case LoaderKind::kLbann:
      return std::make_unique<LbannLoader>(ctx);
  }
  throw std::invalid_argument("make_loader: unknown kind");
}

}  // namespace nopfs::baselines
