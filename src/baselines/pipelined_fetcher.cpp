#include "baselines/pipelined_fetcher.hpp"

#include <algorithm>

namespace nopfs::baselines {

PipelinedFetcher::PipelinedFetcher(std::uint64_t total, int threads, int lookahead,
                                   FetchFn fetch)
    : total_(total),
      threads_(std::max(1, threads)),
      lookahead_(static_cast<std::uint64_t>(std::max(1, lookahead))),
      fetch_(std::move(fetch)) {}

PipelinedFetcher::~PipelinedFetcher() { stop(); }

void PipelinedFetcher::start() {
  pool_.reserve(static_cast<std::size_t>(threads_));
  for (int t = 0; t < threads_; ++t) {
    pool_.emplace_back([this] { thread_main(); });
  }
}

void PipelinedFetcher::thread_main() {
  for (;;) {
    std::uint64_t position = 0;
    {
      std::unique_lock lock(mutex_);
      can_dispatch_.wait(lock, [&] {
        return stopped_ || (next_dispatch_ < total_ &&
                            next_dispatch_ < next_consume_ + lookahead_);
      });
      if (stopped_ || next_dispatch_ >= total_) return;
      position = next_dispatch_++;
    }
    Bytes bytes = fetch_(position);
    {
      const std::scoped_lock lock(mutex_);
      if (stopped_) return;
      reorder_.emplace(position, std::move(bytes));
    }
    ready_.notify_all();
  }
}

std::optional<PipelinedFetcher::Bytes> PipelinedFetcher::next() {
  std::unique_lock lock(mutex_);
  if (next_consume_ >= total_) return std::nullopt;
  const std::uint64_t want = next_consume_;
  ready_.wait(lock, [&] { return stopped_ || reorder_.contains(want); });
  if (stopped_) return std::nullopt;
  auto node = reorder_.extract(want);
  ++next_consume_;
  lock.unlock();
  can_dispatch_.notify_all();
  return std::move(node.mapped());
}

void PipelinedFetcher::stop() {
  {
    const std::scoped_lock lock(mutex_);
    stopped_ = true;
  }
  can_dispatch_.notify_all();
  ready_.notify_all();
  for (auto& thread : pool_) {
    if (thread.joinable()) thread.join();
  }
  pool_.clear();
}

}  // namespace nopfs::baselines
