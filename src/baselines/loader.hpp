#pragma once
// Loader: the common interface the runtime harness drives (paper Sec. 7
// compares NoPFS against PyTorch's DataLoader, DALI and the LBANN data
// store; the simulator covers the remaining strategies at scale).
//
// Every loader yields the samples of one worker's training stream in
// consumption order, charging emulated device time as it goes, so NoPFS and
// the baselines are measured under identical conditions.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/job.hpp"
#include "core/sample_source.hpp"
#include "data/dataset.hpp"
#include "net/transport.hpp"
#include "tiers/device_iface.hpp"

namespace nopfs::baselines {

/// One delivered sample.  NoPFS delivers a zero-copy staging-buffer view;
/// baselines deliver owned bytes.
class LoadedSample {
 public:
  explicit LoadedSample(core::SampleHandle handle)
      : id_(handle.id()), handle_(std::move(handle)) {}
  LoadedSample(data::SampleId id, std::vector<std::uint8_t> bytes)
      : id_(id), bytes_(std::move(bytes)) {}
  LoadedSample(LoadedSample&&) = default;

  [[nodiscard]] data::SampleId id() const noexcept { return id_; }
  [[nodiscard]] std::span<const std::uint8_t> view() const noexcept {
    if (handle_.has_value()) return handle_->data();
    return bytes_;
  }

 private:
  data::SampleId id_;
  std::vector<std::uint8_t> bytes_;
  std::optional<core::SampleHandle> handle_;
};

class Loader {
 public:
  virtual ~Loader() = default;

  /// Launches prefetch threads / performs staging.  Collective for loaders
  /// that communicate (must be called by all workers).
  virtual void start() = 0;

  /// Next sample of this worker's stream; nullopt when exhausted.
  [[nodiscard]] virtual std::optional<LoadedSample> next() = 0;

  /// Cumulative I/O statistics.
  [[nodiscard]] virtual core::JobStats stats() const = 0;

  /// Human-readable loader name for reports.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Which loader the harness runs.
enum class LoaderKind {
  kNoPFS,    ///< this paper (core::Job)
  kNaive,    ///< synchronous PFS reads
  kPyTorch,  ///< DataLoader: multi-threaded double buffering from the PFS
  kDali,     ///< PyTorch + GPU-accelerated preprocessing (higher beta)
  kTfData,   ///< sequential reads + sliding shuffle window
  kSharded,  ///< static shard prestaged to local storage
  kLbann,    ///< first-touch distributed in-memory data store
};

[[nodiscard]] const char* loader_kind_name(LoaderKind kind) noexcept;

/// The CLI spelling of a loader kind ("nopfs", "naive", "pytorch", ...).
[[nodiscard]] const char* loader_flag_name(LoaderKind kind) noexcept;

/// Parses a CLI spelling; throws std::invalid_argument listing every known
/// name on a miss, so a typo is self-diagnosing.
[[nodiscard]] LoaderKind parse_loader_kind(const std::string& name);

/// Every CLI spelling joined with '|' ("nopfs|naive|..."), for usage text.
[[nodiscard]] const std::string& loader_flag_names();

/// Everything a loader needs about its environment.
struct LoaderContext {
  const data::Dataset* dataset = nullptr;
  const tiers::SystemParams* system = nullptr;
  int rank = 0;
  core::SampleSource* source = nullptr;      ///< the PFS
  net::Transport* transport = nullptr;       ///< may be null (single worker)
  tiers::WorkerDevices* devices = nullptr;   ///< may be null (untimed)
  std::uint64_t seed = 42;
  int num_epochs = 1;
  std::uint64_t global_batch = 1;
  bool drop_last = true;
  double time_scale = 1.0;
  int threads = 4;          ///< loader prefetch threads (PyTorch num_workers)
  int lookahead = 64;       ///< bounded prefetch depth, in samples
  core::RouterOptions router;  ///< NoPFS ablation switches
};

/// Instantiates a loader.
[[nodiscard]] std::unique_ptr<Loader> make_loader(LoaderKind kind,
                                                  const LoaderContext& ctx);

}  // namespace nopfs::baselines
