#pragma once
// Dependence DAG of a simulated run, and the recorder that builds it
// (DESIGN.md Sec. 9).
//
// DepGraph is a plain weighted DAG: nodes are timeline events (origin,
// prestage done, read-chain progress, sample consumption, barriers), edges
// carry a duration, a Resource tag and an optional storage-tier index.
// Nodes are created in topological order and every edge points forward
// (src < dst), so longest-path arrival times are one linear pass over the
// in-edge CSR — cheap enough that what-if sweeps re-walk the recorded graph
// under a different CostModel instead of re-running the simulator.
//
// DepGraphBuilder implements sim::RunRecorder and mirrors the engine's
// pipeline recurrence (DESIGN.md Sec. 4) edge by edge:
//
//   * per-worker read chain, hanging off the origin: each overlapped access
//     appends fetch and staging-write edges with their *pipeline*
//     contribution (fetch/p0 for tier reads, full fetch for PFS — the
//     engine's cum_read/p0 arithmetic), modelling `avail`;
//   * per-worker compute chain: an edge from the previous consume node with
//     the previous sample's compute, modelling `ready`;
//   * a consume node joins both (consume_at = max(avail, ready));
//   * per-iteration barrier join over every worker's trailing compute, plus
//     an allreduce edge (iter_end + allreduce_s);
//   * a prestage edge from the origin seeds the compute chains at t0.
//
// By construction the longest path from origin to the final barrier equals
// the engine's total_s up to floating-point association (the engine divides
// a running sum by p0; the graph sums pre-divided increments), which is why
// attribution is checked "within rounding", while SimResult digests are
// exactly identical (the recorder only observes).

#include <cstdint>
#include <string>
#include <vector>

#include "sim/record.hpp"

namespace nopfs::critpath {

/// What an edge's duration is spent on.  kLocal/kRemote edges also carry a
/// storage-tier index; everything else has tier -1.
enum class Resource : std::uint8_t {
  kCompute = 0,  ///< training compute of a sample
  kPfs,          ///< parallel-filesystem fetch (gamma-priced)
  kLocal,        ///< node-local tier fetch
  kRemote,       ///< remote-node tier fetch over the NIC
  kStaging,      ///< staging-buffer write (preprocess + store)
  kAllreduce,    ///< per-iteration gradient allreduce (NIC)
  kPrestage,     ///< upfront staging phase before epoch 0
  kJoin,         ///< zero-duration ordering edge (pipeline join, barrier)
  kCount
};

[[nodiscard]] const char* resource_name(Resource r) noexcept;

using NodeId = std::uint32_t;

enum class NodeKind : std::uint8_t {
  kOrigin = 0,  ///< t = 0
  kStart,       ///< prestage done; workers' clocks start here
  kRead,        ///< read-chain progress (a fetch landed in staging)
  kStage,       ///< read-chain progress (staging write drained)
  kConsume,     ///< trainer consumed a sample (consume_at)
  kBarrier,     ///< iteration barrier / post-allreduce alignment
};

struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  double duration_s = 0.0;
  Resource resource = Resource::kJoin;
  std::int8_t tier = -1;  ///< storage class for kLocal/kRemote edges
};

/// Pluggable edge re-coster: maps a recorded edge to the duration a what-if
/// walk should charge for it.  Implementations live in cp_registry.
class CostModel {
 public:
  virtual ~CostModel() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual double cost(const Edge& edge) const = 0;
};

class DepGraph {
 public:
  NodeId add_node(NodeKind kind);
  /// Edges must point forward (src < dst) — nodes are created in
  /// topological order, which keeps every walk a single linear pass.
  void add_edge(NodeId src, NodeId dst, double duration_s, Resource resource,
                int tier = -1);
  void set_sink(NodeId sink) { sink_ = sink; }

  [[nodiscard]] std::size_t num_nodes() const noexcept { return kinds_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }
  [[nodiscard]] NodeKind kind(NodeId node) const { return kinds_[node]; }
  [[nodiscard]] NodeId sink() const noexcept { return sink_; }

  /// Longest-path arrival time of the sink under `model` (nullptr: recorded
  /// durations).  O(nodes + edges).
  [[nodiscard]] double end_to_end_s(const CostModel* model = nullptr) const;

  /// Indices into edges() of the critical path, origin to sink, under
  /// `model`.  Deterministic: among equal-arrival predecessors the earliest
  /// recorded edge wins.
  [[nodiscard]] std::vector<std::size_t> critical_path(
      const CostModel* model = nullptr) const;

 private:
  friend class DepGraphWalker;
  std::vector<Edge> edges_;
  std::vector<NodeKind> kinds_;
  NodeId sink_ = 0;
  // Lazy in-edge CSR, built on first walk, invalidated by add_edge.
  mutable std::vector<std::uint32_t> csr_offsets_;
  mutable std::vector<std::uint32_t> csr_edges_;
  void ensure_csr() const;
};

/// sim::RunRecorder that rebuilds the engine's dependence DAG.  Attach via
/// SimConfig::recorder, run simulate() once, then walk graph() as many
/// times as needed (the what-if contract: one recording, many cost models).
class DepGraphBuilder final : public sim::RunRecorder {
 public:
  void begin_run(const sim::RunShape& shape) override;
  void begin_epoch(int epoch) override;
  void on_access(const sim::AccessTrace& access) override;
  void end_iteration(double barrier_s) override;
  void end_run(const sim::SimResult& result) override;

  [[nodiscard]] const DepGraph& graph() const noexcept { return graph_; }
  /// The engine's own total_s, for cross-checking the longest path.
  [[nodiscard]] double engine_total_s() const noexcept { return engine_total_s_; }
  [[nodiscard]] bool complete() const noexcept { return complete_; }

 private:
  struct WorkerChain {
    NodeId last_consume = 0;  ///< compute chain anchor (the engine's ti)
    NodeId read_tail = 0;     ///< read chain tip (the engine's avail)
    double pending_compute_s = 0.0;
    bool accessed = false;    ///< touched since the last barrier
  };

  DepGraph graph_;
  std::vector<WorkerChain> workers_;
  NodeId origin_ = 0;
  NodeId prev_barrier_ = 0;
  sim::RunShape shape_;
  double engine_total_s_ = 0.0;
  bool complete_ = false;
};

}  // namespace nopfs::critpath
