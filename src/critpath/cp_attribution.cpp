#include "critpath/cp_attribution.hpp"

#include <algorithm>
#include <cstdio>

namespace nopfs::critpath {

double Attribution::path_sum_s() const {
  double sum = 0.0;
  for (double s : seconds) sum += s;
  return sum;
}

Resource Attribution::binding() const {
  std::size_t best = 0;
  for (std::size_t r = 1; r < static_cast<std::size_t>(Resource::kCount); ++r) {
    if (seconds[r] > seconds[best]) best = r;
  }
  return static_cast<Resource>(best);
}

std::string Attribution::share_line() const {
  std::vector<std::size_t> order;
  for (std::size_t r = 0; r < static_cast<std::size_t>(Resource::kCount); ++r) {
    if (seconds[r] > 0.0) order.push_back(r);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    if (seconds[a] != seconds[b]) return seconds[a] > seconds[b];
    return a < b;
  });
  const double total = end_to_end_s > 0.0 ? end_to_end_s : 1.0;
  std::string out;
  for (std::size_t r : order) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %.1f%%",
                  resource_name(static_cast<Resource>(r)),
                  100.0 * seconds[r] / total);
    if (!out.empty()) out += " | ";
    out += buf;
  }
  if (out.empty()) out = "(empty path)";
  return out;
}

Attribution attribute(const DepGraph& graph, const CostModel* model) {
  Attribution out;
  out.model = model != nullptr ? model->name() : "recorded";
  out.graph_nodes = graph.num_nodes();
  out.graph_edges = graph.num_edges();

  const std::vector<std::size_t> path = graph.critical_path(model);
  out.path_edges = path.size();
  for (const std::size_t idx : path) {
    const Edge& edge = graph.edges()[idx];
    const double cost = model != nullptr ? model->cost(edge) : edge.duration_s;
    out.seconds[static_cast<std::size_t>(edge.resource)] += cost;
    out.edges[static_cast<std::size_t>(edge.resource)] += 1;
    out.end_to_end_s += cost;
    if (edge.tier >= 0) {
      if (edge.resource == Resource::kLocal) {
        out.local_tier_s[edge.tier] += cost;
      } else if (edge.resource == Resource::kRemote) {
        out.remote_tier_s[edge.tier] += cost;
      }
    }
  }
  return out;
}

}  // namespace nopfs::critpath
