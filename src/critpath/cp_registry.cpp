#include "critpath/cp_registry.hpp"

#include <array>
#include <cstdlib>
#include <stdexcept>

namespace nopfs::critpath {

namespace {

/// Identity model: the recorded durations themselves.
class RecordedModel final : public CostModel {
 public:
  [[nodiscard]] std::string name() const override { return "recorded"; }
  [[nodiscard]] double cost(const Edge& edge) const override {
    return edge.duration_s;
  }
};

/// Per-resource speed multipliers: cost = duration / factor[resource].
class ScaleModel final : public CostModel {
 public:
  ScaleModel(std::string name,
             std::array<double, static_cast<std::size_t>(Resource::kCount)> factors)
      : name_(std::move(name)), factors_(factors) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] double cost(const Edge& edge) const override {
    return edge.duration_s / factors_[static_cast<std::size_t>(edge.resource)];
  }

 private:
  std::string name_;
  std::array<double, static_cast<std::size_t>(Resource::kCount)> factors_;
};

void apply_knob(const std::string& knob, double factor,
                std::array<double, static_cast<std::size_t>(Resource::kCount)>& f) {
  const auto set = [&f](Resource r, double v) {
    f[static_cast<std::size_t>(r)] = v;
  };
  if (knob == "nic") {
    // The two NIC-borne edge kinds: remote-tier fetches and the allreduce.
    set(Resource::kRemote, factor);
    set(Resource::kAllreduce, factor);
    return;
  }
  if (knob == "io") {
    set(Resource::kPfs, factor);
    set(Resource::kLocal, factor);
    set(Resource::kRemote, factor);
    set(Resource::kStaging, factor);
    return;
  }
  for (int r = 0; r < static_cast<int>(Resource::kCount); ++r) {
    if (knob == resource_name(static_cast<Resource>(r))) {
      if (static_cast<Resource>(r) == Resource::kJoin) break;  // not a knob
      set(static_cast<Resource>(r), factor);
      return;
    }
  }
  throw std::invalid_argument(
      "critpath: unknown what-if knob '" + knob +
      "' (expected pfs, local, remote, staging, compute, allreduce, "
      "prestage, nic, or io)");
}

}  // namespace

std::unique_ptr<CostModel> make_scale_model(const std::string& spec) {
  std::array<double, static_cast<std::size_t>(Resource::kCount)> factors;
  factors.fill(1.0);
  std::size_t begin = 0;
  bool any = false;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string token = spec.substr(begin, end - begin);
    begin = end + 1;
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
      throw std::invalid_argument(
          "critpath: bad what-if token '" + token +
          "' (expected <knob>=<factor>[x], e.g. pfs=2x)");
    }
    std::string value = token.substr(eq + 1);
    if (!value.empty() && (value.back() == 'x' || value.back() == 'X')) {
      value.pop_back();
    }
    char* parse_end = nullptr;
    const double factor = std::strtod(value.c_str(), &parse_end);
    if (parse_end == value.c_str() || *parse_end != '\0' || !(factor > 0.0)) {
      throw std::invalid_argument("critpath: bad what-if factor in '" + token +
                                  "' (speed multiplier must be > 0)");
    }
    apply_knob(token.substr(0, eq), factor, factors);
    any = true;
  }
  if (!any) {
    throw std::invalid_argument("critpath: empty what-if spec");
  }
  return std::make_unique<ScaleModel>(spec, factors);
}

Registry::Registry() {
  add("recorded", [] { return std::make_unique<RecordedModel>(); });
  // The standard sweep: one knob per cell, self-describing names that also
  // parse as inline specs.
  for (const char* spec :
       {"pfs=2x", "pfs=4x", "pfs=0.5x", "nic=2x", "nic=0.5x", "compute=2x"}) {
    add(spec, [s = std::string(spec)] { return make_scale_model(s); });
  }
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(const std::string& name, CostModelFactory factory) {
  if (contains(name)) {
    throw std::invalid_argument("critpath: duplicate cost model '" + name + "'");
  }
  factories_.emplace_back(name, std::move(factory));
}

std::unique_ptr<CostModel> Registry::make(const std::string& name_or_spec) const {
  for (const auto& [name, factory] : factories_) {
    if (name == name_or_spec) return factory();
  }
  return make_scale_model(name_or_spec);
}

bool Registry::contains(const std::string& name) const {
  for (const auto& [existing, factory] : factories_) {
    if (existing == name) return true;
  }
  return false;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::vector<std::string> Registry::default_whatif() {
  return {"pfs=2x", "pfs=4x", "nic=0.5x"};
}

}  // namespace nopfs::critpath
