#pragma once
// Critical-path attribution: who owns the end-to-end time of a recorded run
// (DESIGN.md Sec. 9).
//
// attribute() walks the recorded DepGraph's longest path under a cost model
// and sums edge durations by Resource (and, for tier fetches, by storage
// class).  Every path edge lands in exactly one bucket, so the per-resource
// seconds sum to end_to_end_s up to floating-point reassociation (buckets
// regroup the additions), and end_to_end_s matches the engine's total_s up
// to the same kind of association error when the identity model is used
// (see cp_dep_graph.hpp).

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "critpath/cp_dep_graph.hpp"

namespace nopfs::critpath {

struct Attribution {
  std::string model = "recorded";   ///< cost model the walk used
  double end_to_end_s = 0.0;        ///< longest-path length, origin to sink
  std::size_t path_edges = 0;       ///< edges on the critical path
  std::size_t graph_nodes = 0;
  std::size_t graph_edges = 0;

  /// Seconds of the critical path spent on each resource (kJoin edges are
  /// zero-duration by construction and contribute nothing).
  double seconds[static_cast<std::size_t>(Resource::kCount)] = {};
  /// Critical-path edge counts per resource.
  std::uint64_t edges[static_cast<std::size_t>(Resource::kCount)] = {};
  /// Tier breakdown of the kLocal / kRemote shares: storage class -> s.
  std::map<int, double> local_tier_s;
  std::map<int, double> remote_tier_s;

  [[nodiscard]] double resource_s(Resource r) const {
    return seconds[static_cast<std::size_t>(r)];
  }
  /// Sum over all resource buckets; equals end_to_end_s up to FP
  /// reassociation (every path edge lands in exactly one bucket).
  [[nodiscard]] double path_sum_s() const;
  /// The resource owning the largest share (what bound this run).
  [[nodiscard]] Resource binding() const;
  /// "pfs 62.1% | compute 30.4% | ..." — non-zero shares, largest first.
  [[nodiscard]] std::string share_line() const;
};

/// Walks the critical path of `graph` under `model` (nullptr: recorded
/// durations) and buckets it.  One recording supports any number of calls —
/// the what-if contract.
[[nodiscard]] Attribution attribute(const DepGraph& graph,
                                    const CostModel* model = nullptr);

}  // namespace nopfs::critpath
