#pragma once
// Pluggable edge-cost models over a recorded dependence graph
// (DESIGN.md Sec. 9).
//
// The what-if contract: a DepGraph is recorded once, then re-walked under
// many CostModels — each walk is O(edges), so a sweep cell costs
// microseconds instead of a simulator run.  Only edge *durations* are
// re-costed; the graph's structure (which samples hit which tier, the
// gamma each PFS fetch was priced at, cache/prestage contents) is frozen
// at recording time.  Speed knobs (PFS 2x, NIC halved) are therefore
// first-class; capacity knobs ("cache doubled") change decisions, not
// durations, and need a real re-simulation — see DESIGN.md Sec. 9.4.
//
// Models are named.  The registry seeds a standard sweep ("recorded",
// "pfs=2x", ...) and `make()` falls through to parsing any inline scale
// spec of the form
//
//     pfs=2x,nic=0.5x
//
// comma-separated `<knob>=<factor>[x]` pairs, factor = speed multiplier
// (durations divide by it).  Knobs: every Resource name plus `nic`
// (remote + allreduce, the two NIC-borne edge kinds) and `io`
// (pfs + local + remote + staging).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "critpath/cp_dep_graph.hpp"

namespace nopfs::critpath {

/// Parses "pfs=2x,nic=0.5x" into a per-resource speed-multiplier model.
/// Throws std::invalid_argument on unknown knobs or non-positive factors.
[[nodiscard]] std::unique_ptr<CostModel> make_scale_model(const std::string& spec);

using CostModelFactory = std::function<std::unique_ptr<CostModel>()>;

class Registry {
 public:
  /// Process-global instance, seeded with the standard sweep models.
  [[nodiscard]] static Registry& instance();

  /// Registers a named factory; throws std::invalid_argument on duplicates.
  void add(const std::string& name, CostModelFactory factory);

  /// Instantiates a registered model, or — when `name_or_spec` is not a
  /// registered name — parses it as an inline scale spec.
  [[nodiscard]] std::unique_ptr<CostModel> make(
      const std::string& name_or_spec) const;

  [[nodiscard]] bool contains(const std::string& name) const;
  /// Registered names, registration order (stable for bench output).
  [[nodiscard]] std::vector<std::string> names() const;

  /// The default what-if cells surfaced by `nopfs_worker --critpath` when
  /// no --whatif is given: three standard speed knobs over one recording.
  [[nodiscard]] static std::vector<std::string> default_whatif();

 private:
  Registry();
  std::vector<std::pair<std::string, CostModelFactory>> factories_;
};

}  // namespace nopfs::critpath
