#include "critpath/cp_dep_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace nopfs::critpath {

const char* resource_name(Resource r) noexcept {
  switch (r) {
    case Resource::kCompute: return "compute";
    case Resource::kPfs: return "pfs";
    case Resource::kLocal: return "local";
    case Resource::kRemote: return "remote";
    case Resource::kStaging: return "staging";
    case Resource::kAllreduce: return "allreduce";
    case Resource::kPrestage: return "prestage";
    case Resource::kJoin: return "join";
    case Resource::kCount: break;
  }
  return "?";
}

NodeId DepGraph::add_node(NodeKind kind) {
  kinds_.push_back(kind);
  return static_cast<NodeId>(kinds_.size() - 1);
}

void DepGraph::add_edge(NodeId src, NodeId dst, double duration_s,
                        Resource resource, int tier) {
  if (src >= dst || dst >= kinds_.size()) {
    throw std::logic_error("DepGraph::add_edge: edges must point forward");
  }
  if (duration_s < 0.0) {
    throw std::logic_error("DepGraph::add_edge: negative duration");
  }
  Edge edge;
  edge.src = src;
  edge.dst = dst;
  edge.duration_s = duration_s;
  edge.resource = resource;
  edge.tier = static_cast<std::int8_t>(tier);
  edges_.push_back(edge);
  csr_offsets_.clear();  // invalidate the lazy CSR
  csr_edges_.clear();
}

void DepGraph::ensure_csr() const {
  if (!csr_offsets_.empty() || kinds_.empty()) return;
  // Counting sort of edge indices by destination node.
  csr_offsets_.assign(kinds_.size() + 1, 0);
  for (const Edge& edge : edges_) ++csr_offsets_[edge.dst + 1];
  for (std::size_t v = 1; v < csr_offsets_.size(); ++v) {
    csr_offsets_[v] += csr_offsets_[v - 1];
  }
  csr_edges_.resize(edges_.size());
  std::vector<std::uint32_t> cursor(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (std::size_t idx = 0; idx < edges_.size(); ++idx) {
    csr_edges_[cursor[edges_[idx].dst]++] = static_cast<std::uint32_t>(idx);
  }
}

namespace {

/// One longest-path pass: arrival times plus (optionally) the argmax
/// predecessor edge of each node.  Node 0 is the unique source; nodes are in
/// topological order, so a forward sweep over the in-edge CSR suffices.
struct WalkResult {
  std::vector<double> arrival;
  std::vector<std::int64_t> best_edge;  ///< -1 for the origin
};

}  // namespace

class DepGraphWalker {
 public:
  static WalkResult walk(const DepGraph& graph, const CostModel* model,
                         bool track_path) {
    graph.ensure_csr();
    WalkResult out;
    out.arrival.assign(graph.num_nodes(), 0.0);
    if (track_path) out.best_edge.assign(graph.num_nodes(), -1);
    for (std::size_t v = 1; v < graph.num_nodes(); ++v) {
      double best = 0.0;
      std::int64_t best_idx = -1;
      const std::uint32_t lo = graph.csr_offsets_[v];
      const std::uint32_t hi = graph.csr_offsets_[v + 1];
      for (std::uint32_t k = lo; k < hi; ++k) {
        const std::uint32_t idx = graph.csr_edges_[k];
        const Edge& edge = graph.edges_[idx];
        const double cost = model != nullptr ? model->cost(edge) : edge.duration_s;
        const double candidate = out.arrival[edge.src] + cost;
        // Strict > keeps the earliest recorded edge on ties — deterministic
        // critical paths regardless of cost model.
        if (best_idx < 0 || candidate > best) {
          best = candidate;
          best_idx = static_cast<std::int64_t>(idx);
        }
      }
      out.arrival[v] = best_idx >= 0 ? best : 0.0;
      if (track_path) out.best_edge[v] = best_idx;
    }
    return out;
  }
};

double DepGraph::end_to_end_s(const CostModel* model) const {
  if (kinds_.empty()) return 0.0;
  return DepGraphWalker::walk(*this, model, /*track_path=*/false)
      .arrival[sink_];
}

std::vector<std::size_t> DepGraph::critical_path(const CostModel* model) const {
  std::vector<std::size_t> path;
  if (kinds_.empty()) return path;
  const WalkResult walked = DepGraphWalker::walk(*this, model, /*track_path=*/true);
  NodeId node = sink_;
  while (walked.best_edge[node] >= 0) {
    const std::size_t idx = static_cast<std::size_t>(walked.best_edge[node]);
    path.push_back(idx);
    node = edges_[idx].src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// ---------------------------------------------------------------------------
// DepGraphBuilder — sim::RunRecorder implementation.

void DepGraphBuilder::begin_run(const sim::RunShape& shape) {
  graph_ = DepGraph();
  shape_ = shape;
  complete_ = false;
  engine_total_s_ = 0.0;

  origin_ = graph_.add_node(NodeKind::kOrigin);
  NodeId start = origin_;
  if (shape.prestage_s > 0.0) {
    start = graph_.add_node(NodeKind::kStart);
    graph_.add_edge(origin_, start, shape.prestage_s, Resource::kPrestage);
  }
  prev_barrier_ = start;
  graph_.set_sink(start);

  workers_.assign(static_cast<std::size_t>(shape.num_workers), WorkerChain{});
  for (WorkerChain& w : workers_) {
    w.last_consume = start;  // the engine starts every t[i] at prestage_s
    w.read_tail = origin_;   // cum_read is measured from absolute time 0
  }
}

void DepGraphBuilder::begin_epoch(int /*epoch*/) {}

void DepGraphBuilder::on_access(const sim::AccessTrace& access) {
  WorkerChain& w = workers_[static_cast<std::size_t>(access.worker)];
  w.accessed = true;

  Resource fetch_resource = Resource::kJoin;
  switch (access.location) {
    case sim::Location::kLocal: fetch_resource = Resource::kLocal; break;
    case sim::Location::kRemote: fetch_resource = Resource::kRemote; break;
    case sim::Location::kPfs: fetch_resource = Resource::kPfs; break;
    default: break;
  }

  if (shape_.overlapped) {
    // Read chain: the pipeline contribution of this access to avail.
    // Tier fetches and staging writes spread over the p0 prefetch threads;
    // a PFS fetch cannot (the worker is one PFS client), so it contributes
    // its full duration — mirroring the engine's cum_read arithmetic.
    const double p0 = static_cast<double>(shape_.staging_threads);
    const double fetch_pipe = access.location == sim::Location::kPfs
                                  ? access.fetch_s
                                  : access.fetch_s / p0;
    const double write_pipe = access.write_s / p0;
    if (fetch_pipe > 0.0) {
      const NodeId node = graph_.add_node(NodeKind::kRead);
      graph_.add_edge(w.read_tail, node, fetch_pipe, fetch_resource,
                      access.storage_class);
      w.read_tail = node;
    }
    if (write_pipe > 0.0) {
      const NodeId node = graph_.add_node(NodeKind::kStage);
      graph_.add_edge(w.read_tail, node, write_pipe, Resource::kStaging);
      w.read_tail = node;
    }
    // Consume joins the read chain (avail) with the compute chain (ready):
    // consume_at = max(avail, ready).
    const NodeId consume = graph_.add_node(NodeKind::kConsume);
    graph_.add_edge(w.read_tail, consume, 0.0, Resource::kJoin);
    graph_.add_edge(w.last_consume, consume, w.pending_compute_s,
                    Resource::kCompute);
    w.last_consume = consume;
  } else {
    // Non-overlapped: the read happens inline after the previous sample's
    // compute — one serial chain, no pipeline join.
    NodeId cur = w.last_consume;
    if (w.pending_compute_s > 0.0) {
      const NodeId node = graph_.add_node(NodeKind::kConsume);
      graph_.add_edge(cur, node, w.pending_compute_s, Resource::kCompute);
      cur = node;
    }
    if (access.fetch_s > 0.0) {
      const NodeId node = graph_.add_node(NodeKind::kRead);
      graph_.add_edge(cur, node, access.fetch_s, fetch_resource,
                      access.storage_class);
      cur = node;
    }
    if (access.write_s > 0.0) {
      const NodeId node = graph_.add_node(NodeKind::kStage);
      graph_.add_edge(cur, node, access.write_s, Resource::kStaging);
      cur = node;
    }
    w.last_consume = cur;
  }
  w.pending_compute_s = access.compute_s;
}

void DepGraphBuilder::end_iteration(double /*barrier_s*/) {
  const NodeId join = graph_.add_node(NodeKind::kBarrier);
  // Barriers are monotone (iter_end >= previous barrier even when no worker
  // accessed anything this iteration).
  graph_.add_edge(prev_barrier_, join, 0.0, Resource::kJoin);
  for (WorkerChain& w : workers_) {
    if (w.accessed) {
      // The engine adds the trailing sample's compute before taking the max.
      graph_.add_edge(w.last_consume, join, w.pending_compute_s,
                      Resource::kCompute);
    }
    w.pending_compute_s = 0.0;
    w.accessed = false;
  }
  NodeId barrier = join;
  if (shape_.allreduce_s > 0.0) {
    barrier = graph_.add_node(NodeKind::kBarrier);
    graph_.add_edge(join, barrier, shape_.allreduce_s, Resource::kAllreduce);
  }
  for (WorkerChain& w : workers_) w.last_consume = barrier;
  prev_barrier_ = barrier;
  graph_.set_sink(barrier);
}

void DepGraphBuilder::end_run(const sim::SimResult& result) {
  engine_total_s_ = result.total_s;
  complete_ = true;
}

}  // namespace nopfs::critpath
