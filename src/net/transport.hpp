#pragma once
// Transport abstraction: the communication surface NoPFS needs from MPI.
//
// The paper's implementation uses MPI for (1) an allgather distributing
// every worker's access sequence R during setup, (2) serving locally cached
// samples to remote workers and requesting samples from them, and (3) the
// prefetch-progress heuristic (Sec. 5.2.2).  This interface captures exactly
// that surface; `SimTransport` (sim_transport.hpp) provides the single-box
// substitute where workers are threads and link bandwidth is emulated, and
// `SocketTransport` (socket_transport.hpp) is the real multi-process
// backend over TCP (DESIGN.md Sec. 7).  An MPI backend would implement the
// same interface.

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace nopfs::net {

/// Sample payload bytes.
using Bytes = std::vector<std::uint8_t>;

/// Shape of the batched PFS contention gossip (DESIGN.md Sec. 7.4).  A
/// reader-count transition is enqueued, not sent: a gossip thread drains
/// the queue as one net kPfsDelta frame every `flush_virtual_s` VIRTUAL
/// seconds (the transport divides by its time scale), or sooner once
/// `max_batch` transitions are pending.  `flush_virtual_s == 0` selects the
/// unary-equivalence mode: every transition is sent synchronously from the
/// calling thread, reproducing the historical per-transition protocol
/// (tests pin that both modes deliver identical digests and gamma
/// envelopes).  The defaults here are THE batched harness defaults —
/// RuntimeConfig and the scenario registry inherit them, so the flush
/// window is tuned in exactly one place; raw SocketOptions overrides to
/// flush 0.  Transports without contention accounting ignore this.
struct GossipConfig {
  double flush_virtual_s = 0.005;
  int max_batch = 128;
  /// Adaptive flush for churny/elastic worlds (DESIGN.md Sec. 11): when
  /// > 0, the gossip thread's window adapts inside
  /// [min_flush_virtual_s, flush_virtual_s] — it halves after a window
  /// that had transitions to flush (gamma is volatile, peers should hear
  /// sooner) and doubles after a quiet one (gamma is steady, save the
  /// frames).  0 — the default — keeps the fixed window, bit-compatible
  /// with the pinned digest/gamma envelopes.  Flushes stay
  /// extreme-preserving either way, so the adaptation never changes WHAT
  /// peers learn, only how soon.
  double min_flush_virtual_s = 0.0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// This worker's rank in [0, world_size).
  [[nodiscard]] virtual int rank() const = 0;

  /// Number of workers.
  [[nodiscard]] virtual int world_size() const = 0;

  /// Collective: contributes `local`, returns every rank's contribution
  /// indexed by rank.  All ranks must call; blocks until complete.
  virtual std::vector<Bytes> allgather(Bytes local) = 0;

  /// Collective barrier.
  virtual void barrier() = 0;

  /// Handler invoked when a remote worker requests sample `id` from this
  /// rank; returns the bytes if locally cached, nullopt otherwise.
  using ServeHandler = std::function<std::optional<Bytes>(std::uint64_t id)>;

  /// Installs the serve handler (must be set before any peer may fetch).
  virtual void set_serve_handler(ServeHandler handler) = 0;

  /// Requests sample `id` from `peer`.  Returns nullopt if the peer does
  /// not (yet) have the sample — the paper treats this as a detectable,
  /// non-fatal miss.  Blocking; network time is charged by the transport.
  virtual std::optional<Bytes> fetch_sample(int peer, std::uint64_t id) = 0;

  /// Invoked with the new job-wide PFS active-reader count gamma whenever
  /// it changes because of ANOTHER rank's activity (this rank's own changes
  /// are reported through pfs_adjust's return value).  May be called from
  /// transport-internal threads.
  using PfsListener = std::function<void(int)>;

  /// Job-wide PFS contention accounting (DESIGN.md Sec. 7.4).  A rank calls
  /// pfs_adjust(+w) when it goes from zero to any outstanding PFS reads and
  /// pfs_adjust(-w) on the reverse transition, where `w` is the rank's local
  /// reader-thread fan-out (1 for an unweighted client) — so the job-wide
  /// count gamma prices t(gamma) per reader thread, not per rank.  The
  /// return value is the caller's freshest estimate of gamma.  Transports
  /// may batch the transition into a later gossip frame (GossipConfig);
  /// only the returned local estimate is synchronous.  The default
  /// implementation supports no accounting (returns 0), which makes
  /// net::SharedPfs degrade to per-process contention pricing.
  virtual int pfs_adjust(int delta) {
    (void)delta;
    return 0;
  }

  /// Installs (or, with an empty function, withdraws) the gamma listener.
  /// Withdrawal must fence: after it returns, the previous listener is
  /// neither running nor about to run.
  virtual void set_pfs_listener(PfsListener listener) { (void)listener; }

  /// Rank-0 side of the distributed sweep service (DESIGN.md Sec. 10).
  /// `on_pull` answers a worker's cell-range request: it receives the
  /// sender's rank and the encoded wire::SweepPull payload and returns
  /// {done, reply payload} — reply is a wire::SweepGrant when done is
  /// false, a wire::SweepDone when true.  `on_result` folds an encoded
  /// wire::SweepResultBatch from a worker.  Both may be invoked from
  /// transport-internal threads; the installer must make them thread-safe.
  struct SweepService {
    std::function<std::pair<bool, Bytes>(int from, Bytes pull)> on_pull;
    std::function<void(int from, Bytes batch)> on_result;
  };

  /// Installs (or, with empty functions, withdraws) the sweep service on
  /// rank 0.  Withdrawal must fence like set_pfs_listener.  The default
  /// implementation supports no sweep service.
  virtual void set_sweep_service(SweepService service) {
    if (service.on_pull || service.on_result) {
      throw std::runtime_error("transport: sweep service not supported");
    }
  }

  /// Worker side: asks rank 0 for the next cell range.  `pull` is an
  /// encoded wire::SweepPull; the reply is {done, payload} as produced by
  /// the rank-0 on_pull handler.  Returns nullopt when rank 0 is
  /// unreachable (died, or the transport is shutting down).  Blocking.
  virtual std::optional<std::pair<bool, Bytes>> sweep_pull(Bytes pull) {
    (void)pull;
    throw std::runtime_error("transport: sweep service not supported");
  }

  /// Worker side: streams an encoded wire::SweepResultBatch to rank 0.
  /// Fire-and-forget; frame order per sender is preserved, so a batch
  /// always reaches rank 0 before the sender's next pull.
  virtual void sweep_push_result(Bytes batch) {
    (void)batch;
    throw std::runtime_error("transport: sweep service not supported");
  }

  /// Publishes this rank's prefetch progress (position in its access
  /// stream); peers read it via watermark_of().  Used by the remote-cache
  /// readiness heuristic (Sec. 5.2.2).
  virtual void publish_watermark(std::uint64_t position) = 0;

  /// Most recently published watermark of `peer` (0 if never published).
  [[nodiscard]] virtual std::uint64_t watermark_of(int peer) const = 0;

  /// Bytes moved through this rank's NIC so far (diagnostics).
  [[nodiscard]] virtual double transferred_mb() const = 0;

  /// The event-loop backend carrying this transport: "epoll" or "io_uring"
  /// for SocketTransport (which backend the runtime probe resolved to —
  /// DESIGN.md Sec. 7.6), "none" for transports without a reactor.
  /// RuntimeResult records it so a run always states which loop carried it.
  [[nodiscard]] virtual const char* reactor_backend() const noexcept {
    return "none";
  }
};

}  // namespace nopfs::net
