#pragma once
// Reactor: one epoll event loop thread driving every socket of a process's
// SocketTransport.
//
// The loop owns all fd state.  Other threads talk to it exclusively through
// post(), which appends to a FIFO task queue and wakes the loop via an
// eventfd — so "post A, then post B" from one thread always executes A
// before B on the loop, a property the transport leans on for wire ordering
// (a gamma broadcast posted under the pfs mutex lands in sequence order).
//
// Everything else — add_fd/mod_fd/del_fd, call_later, set_iteration_hook —
// is loop-thread-only, callable from inside posted tasks, fd handlers and
// timers.  Events are level-triggered: a handler that leaves bytes unread
// or unwritten simply fires again next iteration, which keeps the fairness
// cap in wire::FrameReader cheap.  One iteration runs: queued tasks, due
// timers, the iteration hook (the transport batches its dirty-session
// flushes there so frames queued by many tasks share one sendmsg), then
// epoll_wait and the ready handlers.
//
// Handler caveats, both benign for the transport but worth knowing: a
// handler may del_fd itself mid-dispatch (handlers are held by shared_ptr
// for exactly this), and an fd number closed and re-accepted within one
// epoll batch can deliver one stale event to the new handler — harmless
// under level-triggering, where a spurious wakeup reads EAGAIN.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace nopfs::net {

class Reactor {
 public:
  using Task = std::function<void()>;
  using FdHandler = std::function<void(std::uint32_t epoll_events)>;

  Reactor();
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Launches the loop thread.  Tasks posted (and fds added) before start()
  /// are picked up on the first iteration.
  void start();

  /// Asks the loop to finish its queued tasks and exit, then joins it.
  /// Idempotent; must not be called from the loop thread.
  void stop();

  /// Thread-safe: enqueue a task for the loop (FIFO per poster) and wake it.
  void post(Task task);

  // --- loop-thread-only ----------------------------------------------------

  void add_fd(int fd, std::uint32_t events, FdHandler handler);
  void mod_fd(int fd, std::uint32_t events);
  void del_fd(int fd);

  /// Runs `task` on the loop after at least `delay_s` seconds.
  void call_later(double delay_s, Task task);

  /// Installed hook runs once per loop iteration, after tasks and timers,
  /// before epoll_wait.
  void set_iteration_hook(Task hook);

 private:
  struct Timer {
    std::chrono::steady_clock::time_point when;
    std::uint64_t seq = 0;  // tie-break: equal deadlines fire in post order
    Task fn;
  };

  void run();
  void wake();
  void drain_tasks();
  void fire_due_timers();
  [[nodiscard]] int wait_timeout_ms() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;
  bool stop_requested_ = false;  // loop-thread once running; see stop()

  std::mutex task_mutex_;
  std::vector<Task> tasks_;
  bool stop_posted_ = false;

  // Loop-thread-only state.
  std::unordered_map<int, std::shared_ptr<FdHandler>> handlers_;
  std::vector<Timer> timers_;  // min-heap on (when, seq)
  std::uint64_t timer_seq_ = 0;
  Task iteration_hook_;
};

}  // namespace nopfs::net
