#pragma once
// Reactor: one event-loop thread driving every socket of a process's
// SocketTransport, behind a backend-pluggable interface (DESIGN.md
// Sec. 7.5/7.6).  Two backends implement it:
//
//   * EpollReactor (epoll_reactor.cpp) — level-triggered epoll_wait, the
//     historical loop.
//   * IoUringReactor (io_uring_reactor.cpp) — raw io_uring_setup /
//     io_uring_enter over mmapped SQ/CQ rings (no liburing), multishot
//     POLL_ADD readiness, one batched io_uring_enter per loop iteration.
//     Compiled under NOPFS_WITH_IOURING; make_reactor() probes the kernel
//     at runtime and kAuto falls back to epoll where the probe fails
//     (ENOSYS / seccomp EPERM / pre-5.13 kernels).
//
// INTERFACE CONTRACT (every backend must honor all of it):
//
//   * post() is thread-safe and FIFO: "post A, then post B" from one thread
//     always executes A before B on the loop.  The transport leans on this
//     for wire ordering — a gamma broadcast posted under the pfs mutex
//     lands in sequence order, and teardown posts its final gossip flush
//     strictly before the drain task.
//   * Everything else — add_fd/mod_fd/del_fd, call_later, set_iteration_hook
//     — is loop-thread-only, callable from inside posted tasks, fd handlers
//     and timers (and, before start(), from the constructing thread).
//   * Readiness is level-style AT DELIVERY POINTS: registering (or
//     re-masking) an fd that is already ready delivers an event without
//     waiting for a new edge.  Between deliveries a handler must drain its
//     fd to EAGAIN or arrange its own continuation (the transport posts a
//     follow-up task when its read budget truncates a burst) — the io_uring
//     backend's multishot poll only refires on kernel wakeups.
//   * Handlers are held by shared_ptr, so a handler may del_fd itself
//     mid-dispatch.  Registrations are generation-tagged: an fd closed and
//     re-registered within one event batch can never deliver a stale event
//     to the new handler — the pending event carries the old generation and
//     is dropped in the shared dispatch path.
//   * One iteration runs: queued tasks, due timers, the iteration hook (the
//     transport batches its dirty-session flushes there so frames queued by
//     many tasks share one sendmsg), then one poll/enter and the ready
//     handlers.
//   * Timers fire in deadline order; equal deadlines fire in scheduling
//     order.
//
// Event masks use the poll(2) bit values (numerically identical to the
// EPOLL* constants), so both backends pass them through untranslated.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace nopfs::net {

/// Readiness bits for add_fd/mod_fd and handler dispatch — the poll(2) /
/// epoll(7) values (the two agree bit-for-bit for IN/OUT/ERR/HUP).
inline constexpr std::uint32_t kEventIn = 0x001;
inline constexpr std::uint32_t kEventOut = 0x004;
inline constexpr std::uint32_t kEventErr = 0x008;
inline constexpr std::uint32_t kEventHup = 0x010;

/// Which event loop carries the transport (SocketOptions::reactor_backend).
enum class ReactorBackend {
  kAuto,     ///< io_uring when the runtime probe passes, else epoll
  kEpoll,    ///< always available
  kIoUring,  ///< explicit: make_reactor throws where the probe fails
};

/// "auto" / "epoll" / "io_uring".
[[nodiscard]] const char* to_string(ReactorBackend backend) noexcept;

/// Parses the CLI/env spelling; returns false (and leaves `out` untouched)
/// on an unknown name.
[[nodiscard]] bool parse_reactor_backend(const std::string& name,
                                         ReactorBackend& out) noexcept;

/// Runtime probe, cached after the first call: does this kernel grant a
/// usable io_uring (setup succeeds and the ring is new enough for multishot
/// poll)?  False under ENOSYS, seccomp EPERM/EACCES, io_uring_disabled
/// sysctls, pre-5.13 kernels, or a build with NOPFS_WITH_IOURING off.
[[nodiscard]] bool io_uring_available() noexcept;

class Reactor {
 public:
  using Task = std::function<void()>;
  using FdHandler = std::function<void(std::uint32_t events)>;

  virtual ~Reactor() = default;

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Launches the loop thread.  Tasks posted (and fds added) before start()
  /// are picked up on the first iteration.
  virtual void start() = 0;

  /// Asks the loop to finish its queued tasks and exit, then joins it.
  /// Idempotent; must not be called from the loop thread.
  virtual void stop() = 0;

  /// Thread-safe: enqueue a task for the loop (FIFO per poster) and wake it.
  virtual void post(Task task) = 0;

  // --- loop-thread-only ----------------------------------------------------

  virtual void add_fd(int fd, std::uint32_t events, FdHandler handler) = 0;
  virtual void mod_fd(int fd, std::uint32_t events) = 0;
  virtual void del_fd(int fd) = 0;

  /// Runs `task` on the loop after at least `delay_s` seconds.
  virtual void call_later(double delay_s, Task task) = 0;

  /// Installed hook runs once per loop iteration, after tasks and timers,
  /// before the poll.
  virtual void set_iteration_hook(Task hook) = 0;

  /// "epoll" or "io_uring" — which backend this instance is.
  [[nodiscard]] virtual const char* backend_name() const noexcept = 0;

 protected:
  Reactor() = default;
};

/// Default poll batch: events dispatched per loop iteration (the historical
/// epoll `events[64]`); SocketOptions::reactor_event_batch overrides it for
/// backend A/B sweeps.
inline constexpr std::size_t kDefaultEventBatch = 64;

/// Builds a reactor.  kAuto resolves through io_uring_available() and falls
/// back to epoll silently; an explicit kIoUring throws std::runtime_error
/// where the probe fails, so a hard request never degrades unnoticed.
[[nodiscard]] std::unique_ptr<Reactor> make_reactor(
    ReactorBackend backend = ReactorBackend::kAuto,
    std::size_t event_batch = kDefaultEventBatch);

}  // namespace nopfs::net
