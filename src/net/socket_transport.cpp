#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "net/wire.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

namespace nopfs::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("SocketTransport: ") + what + ": " +
                           std::strerror(errno));
}

void set_socket_timeout(int fd, int option, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(timeout)");
  }
}

/// Writes exactly `len` bytes; throws on any error (including timeout).
void send_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Reads exactly `len` bytes.  Returns false on clean EOF before the first
/// byte; throws on errors, timeouts, and mid-buffer EOF.
bool recv_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("SocketTransport: recv timed out");
      }
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("SocketTransport: peer closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

std::uint32_t resolve_ipv4(const std::string& host) {
  in_addr addr{};
  if (::inet_pton(AF_INET, host.c_str(), &addr) != 1) {
    throw std::invalid_argument("SocketTransport: host must be IPv4 dotted quad: " +
                                host);
  }
  return addr.s_addr;  // network byte order
}

sockaddr_in make_addr(std::uint32_t ipv4_nbo, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ipv4_nbo;
  addr.sin_port = htons(port);
  return addr;
}

int make_tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// Conn: RAII socket + framed I/O.

class SocketTransport::Conn {
 public:
  /// Payloads at or below this size are copied into the header's send().
  static constexpr std::size_t kInlineSendBytes = 64;

  explicit Conn(int fd) : fd_(fd) {}
  ~Conn() { close(); }
  Conn(const Conn&) = delete;
  Conn& operator=(const Conn&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }

  void send_frame(wire::MsgType type, std::uint64_t arg, const std::uint8_t* payload,
                  std::size_t len) {
    if (len > wire::kMaxPayloadBytes) {
      throw std::runtime_error("SocketTransport: frame payload too large");
    }
    std::uint8_t header[wire::kHeaderBytes];
    wire::encode_header(header, type, arg, static_cast<std::uint32_t>(len));
    if (len > 0 && len <= kInlineSendBytes) {
      // Small control payloads (contention deltas, watermark tags) ride in
      // the same send() as the header: one syscall and, with TCP_NODELAY,
      // one segment instead of two on the latency-sensitive gossip path.
      std::uint8_t frame[wire::kHeaderBytes + kInlineSendBytes];
      std::memcpy(frame, header, sizeof(header));
      std::memcpy(frame + sizeof(header), payload, len);
      send_all(fd_, frame, sizeof(header) + len);
      return;
    }
    send_all(fd_, header, sizeof(header));
    if (len > 0) send_all(fd_, payload, len);
  }

  void send_frame(wire::MsgType type, std::uint64_t arg, const Bytes& payload) {
    send_frame(type, arg, payload.data(), payload.size());
  }

  /// Returns false on clean EOF at a frame boundary.
  bool recv_frame(wire::FrameHeader& header, Bytes& payload) {
    std::uint8_t raw[wire::kHeaderBytes];
    if (!recv_all(fd_, raw, sizeof(raw))) return false;
    header = wire::decode_header(raw);
    payload.resize(header.payload_len);
    if (header.payload_len > 0 && !recv_all(fd_, payload.data(), payload.size())) {
      throw std::runtime_error("SocketTransport: peer closed mid-frame");
    }
    return true;
  }

  /// Half-close both directions: unblocks any thread parked in recv().
  void shutdown_both() noexcept {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  }

  void close() noexcept {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

// ---------------------------------------------------------------------------

SocketTransport::SocketTransport(const SocketOptions& options) : options_(options) {
  if (options_.world_size <= 0) {
    throw std::invalid_argument("SocketTransport: world_size must be > 0");
  }
  if (options_.rank < 0 || options_.rank >= options_.world_size) {
    throw std::invalid_argument("SocketTransport: rank out of range");
  }
  if (options_.rendezvous_port == 0) {
    throw std::invalid_argument("SocketTransport: rendezvous_port must be nonzero");
  }
  const auto world = static_cast<std::size_t>(options_.world_size);
  endpoints_.resize(world);
  channels_.resize(world);
  channel_mutexes_.reserve(world);
  for (std::size_t i = 0; i < world; ++i) {
    channel_mutexes_.push_back(std::make_unique<std::mutex>());
  }
  watermarks_ = std::vector<std::atomic<std::uint64_t>>(world);
  for (auto& w : watermarks_) w.store(0, std::memory_order_relaxed);
  pfs_readers_.resize(world, 0);
  pfs_owner_.resize(world, nullptr);
  pfs_rank_seq_.resize(world, 0);
  if (options_.gossip.max_batch < 1) options_.gossip.max_batch = 1;
  if (options_.time_scale <= 0.0) options_.time_scale = 1.0;

  try {
    // Serve listener first: by the time any peer learns this rank's port
    // (the rendezvous completes strictly later), the listener is accepting.
    // Bound to INADDR_ANY — this rank may live on a different host than the
    // rendezvous; peers learn its *reachable* address from the rendezvous
    // (getpeername of the control connection), not from this bind.
    serve_listener_fd_ = make_tcp_socket();
    sockaddr_in addr = make_addr(htonl(INADDR_ANY), 0);
    if (::bind(serve_listener_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind(serve)");
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(serve_listener_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) != 0) {
      throw_errno("getsockname(serve)");
    }
    serve_port_ = ntohs(addr.sin_port);
    if (::listen(serve_listener_fd_, options_.world_size + 8) != 0) {
      throw_errno("listen(serve)");
    }
    acceptor_ = std::thread([this] { serve_accept_loop(); });

    if (options_.rank == 0) {
      rendezvous_as_root();
    } else {
      rendezvous_as_peer();
    }
    // Batched contention gossip needs its drain thread; the unary mode
    // (flush interval 0) sends inline from the caller and never starts one.
    if (options_.world_size > 1 && options_.gossip.flush_virtual_s > 0.0) {
      gossip_thread_ = std::thread([this] { gossip_loop(); });
    }
  } catch (...) {
    teardown();
    throw;
  }
}

SocketTransport::~SocketTransport() { teardown(); }

void SocketTransport::teardown() {
  // Cooperative gossip drain FIRST, while the channels are still open: a
  // queued release must reach rank 0's counter (it must drain to zero on a
  // clean shutdown, not lean on the dead-rank cleanup), and rank 0's final
  // coalesced gamma must reach the survivors.
  {
    const std::scoped_lock lock(gossip_mutex_);
    gossip_stop_ = true;
  }
  gossip_cv_.notify_all();
  if (gossip_thread_.joinable()) gossip_thread_.join();
  flush_pfs_gossip();

  stopping_.store(true, std::memory_order_release);
  // Close outbound fetch channels: peers' serve threads see EOF and exit.
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const std::scoped_lock lock(*channel_mutexes_[i]);
    if (channels_[i]) channels_[i]->shutdown_both();
  }
  // Wake the acceptor with a throwaway self-connection, then join it.
  // The serve listener is bound to INADDR_ANY, so loopback always reaches
  // it no matter which host this rank lives on.
  if (acceptor_.joinable()) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd >= 0) {
      sockaddr_in self = make_addr(htonl(INADDR_LOOPBACK), serve_port_);
      (void)::connect(fd, reinterpret_cast<sockaddr*>(&self), sizeof(self));
      ::close(fd);
    }
    acceptor_.join();
  }
  if (serve_listener_fd_ >= 0) {
    ::close(serve_listener_fd_);
    serve_listener_fd_ = -1;
  }
  // Unblock and join the per-connection serve threads (the acceptor is
  // gone, so serve_conns_/serve_threads_ are no longer mutated).
  for (auto& conn : serve_conns_) conn->shutdown_both();
  for (auto& thread : serve_threads_) {
    if (thread.joinable()) thread.join();
  }
  serve_threads_.clear();
  serve_conns_.clear();
  control_.reset();
  control_peers_.clear();
  for (auto& channel : channels_) channel.reset();
}

// ---------------------------------------------------------------------------
// Rendezvous.

void SocketTransport::rendezvous_as_root() {
  const int listener = make_tcp_socket();
  struct ListenerGuard {
    int fd;
    ~ListenerGuard() { ::close(fd); }
  } guard{listener};
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr =
      make_addr(resolve_ipv4(options_.rendezvous_host), options_.rendezvous_port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(rendezvous)");
  }
  if (::listen(listener, options_.world_size + 8) != 0) {
    throw_errno("listen(rendezvous)");
  }
  set_socket_timeout(listener, SO_RCVTIMEO, options_.timeout_s);

  endpoints_[0] = PeerEndpoint{0 /* "the address you dialed" */, serve_port_};
  control_peers_.resize(static_cast<std::size_t>(options_.world_size));

  int remaining = options_.world_size - 1;
  while (remaining > 0) {
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    const int fd =
        ::accept(listener, reinterpret_cast<sockaddr*>(&peer_addr), &peer_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("SocketTransport: rendezvous timed out waiting for " +
                                 std::to_string(remaining) + " rank(s)");
      }
      throw_errno("accept(rendezvous)");
    }
    const int nodelay = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
    set_socket_timeout(fd, SO_RCVTIMEO, options_.timeout_s);
    set_socket_timeout(fd, SO_SNDTIMEO, options_.timeout_s);
    auto conn = std::make_unique<Conn>(fd);

    wire::FrameHeader header;
    Bytes payload;
    if (!conn->recv_frame(header, payload) || header.type != wire::MsgType::kHello) {
      throw std::runtime_error("SocketTransport: expected kHello at rendezvous");
    }
    wire::Reader reader(payload);
    const std::uint32_t peer_protocol = reader.u32();
    const auto peer_rank = static_cast<int>(header.arg);
    if (peer_protocol != wire::kProtocolVersion) {
      throw std::runtime_error(
          "SocketTransport: rank " + std::to_string(peer_rank) +
          " speaks protocol " + std::to_string(peer_protocol) + ", this rank " +
          std::to_string(wire::kProtocolVersion) +
          " — mixed-version world rejected at the handshake");
    }
    const auto peer_world = static_cast<int>(reader.u32());
    const std::uint16_t peer_serve_port = reader.u16();
    if (peer_world != options_.world_size) {
      throw std::runtime_error("SocketTransport: rank " + std::to_string(peer_rank) +
                               " disagrees on world size (" +
                               std::to_string(peer_world) + " vs " +
                               std::to_string(options_.world_size) + ")");
    }
    if (peer_rank <= 0 || peer_rank >= options_.world_size ||
        control_peers_[static_cast<std::size_t>(peer_rank)] != nullptr) {
      throw std::runtime_error("SocketTransport: duplicate or invalid rank " +
                               std::to_string(peer_rank) + " at rendezvous");
    }
    endpoints_[static_cast<std::size_t>(peer_rank)] =
        PeerEndpoint{peer_addr.sin_addr.s_addr, peer_serve_port};
    control_peers_[static_cast<std::size_t>(peer_rank)] = std::move(conn);
    --remaining;
  }

  // Broadcast the endpoint table (led by the protocol version, so a peer
  // can likewise reject a root from the wrong rollout generation).
  Bytes table;
  wire::put_u32(table, wire::kProtocolVersion);
  for (const PeerEndpoint& ep : endpoints_) {
    wire::put_u32(table, ep.ipv4);
    wire::put_u16(table, ep.port);
  }
  for (int r = 1; r < options_.world_size; ++r) {
    control_peers_[static_cast<std::size_t>(r)]->send_frame(wire::MsgType::kWelcome,
                                                            0, table);
  }
}

void SocketTransport::rendezvous_as_peer() {
  const std::uint32_t root_ipv4 = resolve_ipv4(options_.rendezvous_host);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options_.timeout_s));
  // Rank 0 may not have bound the rendezvous port yet: dial until it has.
  int fd = -1;
  for (;;) {
    fd = make_tcp_socket();
    sockaddr_in addr = make_addr(root_ipv4, options_.rendezvous_port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
    ::close(fd);
    fd = -1;
    if (Clock::now() >= deadline) {
      throw std::runtime_error("SocketTransport: rendezvous connect timed out (" +
                               options_.rendezvous_host + ":" +
                               std::to_string(options_.rendezvous_port) + ")");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  set_socket_timeout(fd, SO_RCVTIMEO, options_.timeout_s);
  set_socket_timeout(fd, SO_SNDTIMEO, options_.timeout_s);
  control_ = std::make_unique<Conn>(fd);

  Bytes hello;
  wire::put_u32(hello, wire::kProtocolVersion);
  wire::put_u32(hello, static_cast<std::uint32_t>(options_.world_size));
  wire::put_u16(hello, serve_port_);
  control_->send_frame(wire::MsgType::kHello,
                       static_cast<std::uint64_t>(options_.rank), hello);

  wire::FrameHeader header;
  Bytes payload;
  if (!control_->recv_frame(header, payload) ||
      header.type != wire::MsgType::kWelcome) {
    throw std::runtime_error("SocketTransport: expected kWelcome from rendezvous");
  }
  wire::Reader reader(payload);
  const std::uint32_t root_protocol = reader.u32();
  if (root_protocol != wire::kProtocolVersion) {
    throw std::runtime_error("SocketTransport: rendezvous speaks protocol " +
                             std::to_string(root_protocol) + ", this rank " +
                             std::to_string(wire::kProtocolVersion));
  }
  for (auto& endpoint : endpoints_) {
    endpoint.ipv4 = reader.u32();
    endpoint.port = reader.u16();
  }
  // Rank 0 advertises ipv4 == 0, "the address you dialed".
  if (endpoints_[0].ipv4 == 0) endpoints_[0].ipv4 = root_ipv4;
}

// ---------------------------------------------------------------------------
// Collectives: gather-to-root + broadcast over the control connections.

std::vector<Bytes> SocketTransport::allgather(Bytes local) {
  const std::scoped_lock lock(collective_mutex_);
  const auto world = static_cast<std::size_t>(options_.world_size);
  if (options_.rank == 0) {
    std::vector<Bytes> slots(world);
    slots[0] = std::move(local);
    for (std::size_t r = 1; r < world; ++r) {
      wire::FrameHeader header;
      Bytes payload;
      if (!control_peers_[r]->recv_frame(header, payload) ||
          header.type != wire::MsgType::kGather ||
          header.arg != static_cast<std::uint64_t>(r)) {
        throw std::runtime_error(
            "SocketTransport: collective out of step with rank " + std::to_string(r));
      }
      slots[r] = std::move(payload);
    }
    Bytes packed;
    for (const Bytes& slot : slots) {
      wire::put_u32(packed, static_cast<std::uint32_t>(slot.size()));
      packed.insert(packed.end(), slot.begin(), slot.end());
    }
    for (std::size_t r = 1; r < world; ++r) {
      control_peers_[r]->send_frame(wire::MsgType::kAllgather, 0, packed);
    }
    return slots;
  }

  control_->send_frame(wire::MsgType::kGather,
                       static_cast<std::uint64_t>(options_.rank), local);
  wire::FrameHeader header;
  Bytes payload;
  if (!control_->recv_frame(header, payload) ||
      header.type != wire::MsgType::kAllgather) {
    throw std::runtime_error("SocketTransport: lost the root mid-collective");
  }
  wire::Reader reader(payload);
  std::vector<Bytes> slots(world);
  for (auto& slot : slots) slot = reader.bytes(reader.u32());
  return slots;
}

void SocketTransport::barrier() { (void)allgather(Bytes{}); }

// ---------------------------------------------------------------------------
// Serving.

void SocketTransport::set_serve_handler(ServeHandler handler) {
  const std::scoped_lock lock(handler_mutex_);
  handler_ = std::move(handler);
}

void SocketTransport::serve_accept_loop() {
  for (;;) {
    const int fd = ::accept(serve_listener_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed or broken: we are shutting down
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    set_socket_timeout(fd, SO_SNDTIMEO, options_.timeout_s);
    auto conn = std::make_shared<Conn>(fd);
    const std::scoped_lock lock(serve_conns_mutex_);
    serve_conns_.push_back(conn);
    serve_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
}

void SocketTransport::serve_connection(std::shared_ptr<Conn> conn) {
  wire::FrameHeader header;
  Bytes payload;
  // Rank 0 only: the rank whose kPfsDelta frames arrived on THIS
  // connection.  A rank sends its contention deltas on its single fetch
  // channel to the root, so when that channel dies (the rank crashed or
  // tore down mid-read) the root must drop the rank's outstanding
  // reader-count contribution — otherwise the dead rank pins gamma,
  // overpricing t(gamma) for every surviving rank until job teardown.
  int pfs_rank_on_conn = -1;
  try {
    while (conn->recv_frame(header, payload)) {
      switch (header.type) {
        case wire::MsgType::kFetch: {
          std::optional<Bytes> sample;
          {
            const std::scoped_lock lock(handler_mutex_);
            if (handler_) sample = handler_(header.arg);
          }
          if (sample.has_value()) {
            // The server-side NIC charge: same rule as SimTransport, which
            // prices a remote fetch on both endpoints' NICs.
            if (options_.nic != nullptr) {
              options_.nic->transfer(util::bytes_to_mb(sample->size()));
            }
            conn->send_frame(wire::MsgType::kHit, header.arg, *sample);
          } else {
            conn->send_frame(wire::MsgType::kMiss, header.arg, nullptr, 0);
          }
          break;
        }
        case wire::MsgType::kWatermark: {
          wire::Reader reader(payload);
          const auto peer = static_cast<int>(reader.u32());
          if (peer >= 0 && peer < options_.world_size) {
            watermarks_[static_cast<std::size_t>(peer)].store(
                header.arg, std::memory_order_release);
          }
          break;
        }
        case wire::MsgType::kPfsDelta: {
          if (options_.rank != 0) {
            throw std::runtime_error(
                "SocketTransport: PFS contention frame at non-root rank");
          }
          const auto who = static_cast<int>(header.arg);
          if (who > 0 && who < options_.world_size) {
            const wire::PfsDelta delta = wire::decode_pfs_delta(payload);
            pfs_rank_on_conn = who;
            pfs_root_fold(who, delta.reader_delta, /*notify_local=*/true,
                          conn.get(), delta.seq);
          }
          break;
        }
        case wire::MsgType::kPfsGamma: {
          if (options_.rank == 0) {
            throw std::runtime_error("SocketTransport: kPfsGamma at the root");
          }
          pfs_apply_gamma(wire::decode_pfs_gamma(payload));
          break;
        }
        default:
          throw std::runtime_error("SocketTransport: unexpected frame on serve conn");
      }
    }
  } catch (const std::exception& ex) {
    if (!stopping_.load(std::memory_order_acquire)) {
      util::log_error("SocketTransport rank ", options_.rank, " serve: ", ex.what());
    }
  }
  // Connection gone (clean EOF or error): drop the peer's outstanding
  // reader-count contribution so a crashed rank no longer pins gamma.
  // Skipped during our own teardown — every channel is closing at once and
  // the counter dies with the job.  The owner tag guards the race where
  // the rank redialed and its live deltas moved to a newer connection
  // before this cleanup ran: only the connection still recorded as the
  // contribution's owner may zero it.
  if (pfs_rank_on_conn > 0 && !stopping_.load(std::memory_order_acquire)) {
    pfs_root_drop_dead_rank(pfs_rank_on_conn, conn.get());
  }
}

// ---------------------------------------------------------------------------
// Fetch + watermark channels.

void SocketTransport::check_peer(int peer) const {
  if (peer < 0 || peer >= options_.world_size) {
    throw std::invalid_argument("SocketTransport: peer out of range");
  }
}

SocketTransport::Conn* SocketTransport::peer_channel_locked(int peer) {
  auto& channel = channels_[static_cast<std::size_t>(peer)];
  if (channel != nullptr) return channel.get();
  const PeerEndpoint endpoint = endpoints_[static_cast<std::size_t>(peer)];
  const int fd = make_tcp_socket();
  sockaddr_in addr = make_addr(endpoint.ipv4, endpoint.port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return nullptr;  // peer torn down: a recorded miss, not a crash
  }
  set_socket_timeout(fd, SO_RCVTIMEO, options_.timeout_s);
  set_socket_timeout(fd, SO_SNDTIMEO, options_.timeout_s);
  channel = std::make_unique<Conn>(fd);
  return channel.get();
}

std::optional<Bytes> SocketTransport::fetch_sample(int peer, std::uint64_t id) {
  check_peer(peer);
  if (peer == options_.rank) {
    throw std::invalid_argument("SocketTransport: fetch_sample from self");
  }
  try {
    const std::scoped_lock lock(*channel_mutexes_[static_cast<std::size_t>(peer)]);
    Conn* conn = peer_channel_locked(peer);
    if (conn == nullptr) return std::nullopt;
    conn->send_frame(wire::MsgType::kFetch, id, nullptr, 0);
    wire::FrameHeader header;
    Bytes payload;
    if (!conn->recv_frame(header, payload)) {
      channels_[static_cast<std::size_t>(peer)].reset();  // EOF: drop channel
      return std::nullopt;
    }
    if (header.type == wire::MsgType::kMiss) return std::nullopt;
    if (header.type != wire::MsgType::kHit || header.arg != id) {
      throw std::runtime_error("SocketTransport: fetch reply out of step");
    }
    const double mb = util::bytes_to_mb(payload.size());
    if (options_.nic != nullptr) {
      options_.nic->transfer(mb);
    } else {
      // Atomic add (fetches may race from several prefetch threads).
      transferred_mb_no_nic_.fetch_add(mb, std::memory_order_relaxed);
    }
    return payload;
  } catch (const std::exception& ex) {
    // Connection-level failures are detectable, non-fatal misses — exactly
    // how the paper treats a peer that cannot (yet) serve a sample.
    if (!stopping_.load(std::memory_order_acquire)) {
      util::log_error("SocketTransport rank ", options_.rank, " fetch from ", peer,
                      ": ", ex.what());
    }
    const std::scoped_lock lock(*channel_mutexes_[static_cast<std::size_t>(peer)]);
    channels_[static_cast<std::size_t>(peer)].reset();
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// PFS contention accounting (DESIGN.md Sec. 7.4).

double SocketTransport::flush_interval_s() const noexcept {
  return options_.gossip.flush_virtual_s / options_.time_scale;
}

int SocketTransport::pfs_root_fold(int rank, int delta, bool notify_local,
                                   const void* conn_tag, std::uint32_t seq) {
  const std::scoped_lock lock(pfs_mutex_);
  if (seq != 0) {
    std::uint32_t& last = pfs_rank_seq_[static_cast<std::size_t>(rank)];
    if (seq <= last) return pfs_gamma_;  // duplicate / reordered frame
    last = seq;
  }
  return pfs_fold_locked(rank, delta, notify_local, conn_tag);
}

int SocketTransport::pfs_fold_locked(int rank, int delta, bool notify_local,
                                     const void* conn_tag) {
  int& readers = pfs_readers_[static_cast<std::size_t>(rank)];
  readers += delta;
  // A release folded after a dead-rank cleanup (or a lost acquire) must
  // not drive the contribution negative — mirroring the unary protocol,
  // where releasing an idle rank was a no-op.
  if (readers < 0) readers = 0;
  pfs_owner_[static_cast<std::size_t>(rank)] = readers > 0 ? conn_tag : nullptr;
  int gamma = 0;
  for (const int r : pfs_readers_) gamma += r;
  if (gamma == pfs_gamma_) return gamma;  // coalesced to a no-op
  pfs_gamma_ = gamma;
  if (notify_local && pfs_listener_) pfs_listener_(gamma);
  if (flush_interval_s() > 0.0) {
    // Batched mode: the gossip thread broadcasts within one flush interval
    // — many folds coalesce into one window (that interval, plus the RTT,
    // is the staleness bound), with the window's PEAK remembered so the
    // envelope survives the coalescing.
    pfs_broadcast_pending_ = true;
    if (gamma > pfs_broadcast_peak_) pfs_broadcast_peak_ = gamma;
  } else {
    // Unary mode: broadcast while still holding pfs_mutex_, so two racing
    // transitions reach every peer in the order they were folded.
    pfs_broadcast_gamma_locked(gamma);
  }
  return gamma;
}

void SocketTransport::pfs_emit_pending_broadcast_locked() {
  if (!pfs_broadcast_pending_) return;
  pfs_broadcast_pending_ = false;
  if (pfs_broadcast_peak_ > pfs_gamma_) {
    pfs_broadcast_gamma_locked(pfs_broadcast_peak_);
  }
  pfs_broadcast_peak_ = pfs_gamma_;
  pfs_broadcast_gamma_locked(pfs_gamma_);
}

void SocketTransport::pfs_root_drop_dead_rank(int rank, const void* conn_tag) {
  const std::scoped_lock lock(pfs_mutex_);
  if (pfs_owner_[static_cast<std::size_t>(rank)] != conn_tag) {
    // The rank's live deltas moved to a newer connection after this one
    // went stale: its contribution is current, not orphaned.
    return;
  }
  const int outstanding = pfs_readers_[static_cast<std::size_t>(rank)];
  if (outstanding == 0) return;
  (void)pfs_fold_locked(rank, -outstanding, /*notify_local=*/true, conn_tag);
}

void SocketTransport::pfs_broadcast_gamma_locked(int gamma_value) {
  const Bytes payload =
      wire::encode_pfs_gamma({gamma_value, ++pfs_gamma_seq_});
  for (int peer = 1; peer < options_.world_size; ++peer) {
    try {
      const std::scoped_lock channel_lock(
          *channel_mutexes_[static_cast<std::size_t>(peer)]);
      Conn* conn = peer_channel_locked(peer);
      if (conn != nullptr) {
        conn->send_frame(wire::MsgType::kPfsGamma, 0, payload);
      }
    } catch (const std::exception&) {
      // Gossip is best-effort, like watermarks; a dead peer stays stale.
      const std::scoped_lock channel_lock(
          *channel_mutexes_[static_cast<std::size_t>(peer)]);
      channels_[static_cast<std::size_t>(peer)].reset();
    }
  }
}

void SocketTransport::pfs_apply_gamma(const wire::PfsGamma& update) {
  const std::scoped_lock lock(pfs_mutex_);
  if (update.seq <= pfs_gamma_seen_) return;  // stale broadcast
  pfs_gamma_seen_ = update.seq;
  // Own in-flight transitions may not have reached the root yet: never let
  // the authoritative count talk this rank below its own activity.
  pfs_gamma_ = update.gamma > pfs_local_readers_ ? update.gamma : pfs_local_readers_;
  if (pfs_listener_) pfs_listener_(pfs_gamma_);
}

void SocketTransport::pfs_flush_deltas() {
  // Flushers (gossip thread, unary-mode callers, teardown) serialize here,
  // which pins the frame order on the channel to seq order; the queue lock
  // is dropped before the send so enqueueing reader threads never wait on
  // the socket.
  const std::scoped_lock flush_lock(pfs_flush_mutex_);
  int net = 0;
  int peak = 0;
  std::uint32_t first_seq = 0;
  int frames = 0;
  {
    const std::scoped_lock lock(gossip_mutex_);
    net = pending_delta_;
    peak = pending_max_prefix_;
    pending_delta_ = 0;
    pending_max_prefix_ = 0;
    pending_transitions_ = 0;
    // Preserve the window's EXTREME, not just its endpoint: if the queued
    // transitions peaked above the net (an acquire/release pair inside one
    // window), send the peak first and the correction after, so the active
    // period still touches rank 0's counter trajectory.  Nothing to say
    // only when the trajectory never left its last-flushed value.
    frames = peak > net && peak > 0 ? 2 : (net != 0 ? 1 : 0);
    if (frames == 0) return;
    first_seq = delta_seq_ + 1;
    delta_seq_ += static_cast<std::uint32_t>(frames);
  }
  try {
    const std::scoped_lock lock(*channel_mutexes_[0]);
    Conn* conn = peer_channel_locked(0);
    if (conn != nullptr) {
      if (frames == 2) {
        const Bytes up = wire::encode_pfs_delta({peak, first_seq});
        conn->send_frame(wire::MsgType::kPfsDelta,
                         static_cast<std::uint64_t>(options_.rank), up);
        const Bytes down = wire::encode_pfs_delta({net - peak, first_seq + 1});
        conn->send_frame(wire::MsgType::kPfsDelta,
                         static_cast<std::uint64_t>(options_.rank), down);
      } else {
        const Bytes payload = wire::encode_pfs_delta({net, first_seq});
        conn->send_frame(wire::MsgType::kPfsDelta,
                         static_cast<std::uint64_t>(options_.rank), payload);
      }
    }
  } catch (const std::exception&) {
    // Best-effort, like the unary frames: a lost delta self-heals through
    // the root's per-rank clamp and the dead-rank cleanup.
    const std::scoped_lock lock(*channel_mutexes_[0]);
    channels_[0].reset();
  }
}

void SocketTransport::pfs_enqueue_delta(int delta) {
  bool flush_now = false;
  bool batch_full = false;
  {
    const std::scoped_lock lock(gossip_mutex_);
    pending_delta_ += delta;
    if (pending_delta_ > pending_max_prefix_) pending_max_prefix_ = pending_delta_;
    ++pending_transitions_;
    // Unary mode (and the post-teardown stragglers of any mode) flushes
    // from the calling thread, the historical behaviour.
    flush_now = flush_interval_s() <= 0.0 || gossip_stop_;
    batch_full = pending_transitions_ >= options_.gossip.max_batch;
  }
  if (flush_now) {
    pfs_flush_deltas();
  } else if (batch_full) {
    gossip_cv_.notify_all();
  }
}

void SocketTransport::gossip_loop() {
  const auto interval = std::chrono::duration<double>(
      std::max(flush_interval_s(), 50e-6));  // never a busy spin
  std::unique_lock lock(gossip_mutex_);
  while (!gossip_stop_) {
    gossip_cv_.wait_for(lock, interval, [this] {
      return gossip_stop_ || pending_transitions_ >= options_.gossip.max_batch;
    });
    if (gossip_stop_) break;
    const bool have_deltas = pending_transitions_ > 0;
    lock.unlock();
    if (have_deltas) pfs_flush_deltas();
    if (options_.rank == 0) {
      const std::scoped_lock pfs_lock(pfs_mutex_);
      pfs_emit_pending_broadcast_locked();
    }
    lock.lock();
  }
}

void SocketTransport::flush_pfs_gossip() {
  pfs_flush_deltas();
  if (options_.rank == 0) {
    const std::scoped_lock lock(pfs_mutex_);
    pfs_emit_pending_broadcast_locked();
  }
}

int SocketTransport::pfs_adjust(int delta) {
  if (options_.rank == 0) {
    // Rank 0 folds its own transitions directly under the counter lock (the
    // caller learns the authoritative gamma from the return value; its
    // listener is only for changes it did not initiate) — only the
    // BROADCAST batches, so a root reader thread never touches the wire in
    // batched mode.
    return pfs_root_fold(0, delta, /*notify_local=*/false);
  }
  int estimate = 0;
  {
    // Local estimate until the authoritative kPfsGamma arrives (staleness
    // bound: one flush interval + a control round-trip).  Optimism is
    // asymmetric on purpose: a release lowers the estimate immediately
    // (underpricing briefly is the historical staleness behaviour), but an
    // acquire only floors it at this rank's own reader count — adding the
    // delta on top of a broadcast that may ALREADY count this rank (its
    // coalesced release never left the queue) would double-count and
    // inflate the gamma envelope above the job-wide truth.
    const std::scoped_lock lock(pfs_mutex_);
    pfs_local_readers_ += delta;
    if (pfs_local_readers_ < 0) pfs_local_readers_ = 0;
    if (delta < 0) pfs_gamma_ += delta;
    if (pfs_gamma_ < pfs_local_readers_) pfs_gamma_ = pfs_local_readers_;
    if (pfs_gamma_ < 0) pfs_gamma_ = 0;
    estimate = pfs_gamma_;
  }
  pfs_enqueue_delta(delta);
  return estimate;
}

void SocketTransport::set_pfs_listener(PfsListener listener) {
  const std::scoped_lock lock(pfs_mutex_);
  pfs_listener_ = std::move(listener);
}

void SocketTransport::publish_watermark(std::uint64_t position) {
  watermarks_[static_cast<std::size_t>(options_.rank)].store(
      position, std::memory_order_release);
  Bytes who;
  wire::put_u32(who, static_cast<std::uint32_t>(options_.rank));
  for (int peer = 0; peer < options_.world_size; ++peer) {
    if (peer == options_.rank) continue;
    try {
      const std::scoped_lock lock(*channel_mutexes_[static_cast<std::size_t>(peer)]);
      Conn* conn = peer_channel_locked(peer);
      if (conn != nullptr) conn->send_frame(wire::MsgType::kWatermark, position, who);
    } catch (const std::exception&) {
      // Watermarks are best-effort gossip; a dead peer just stays stale.
      const std::scoped_lock lock(*channel_mutexes_[static_cast<std::size_t>(peer)]);
      channels_[static_cast<std::size_t>(peer)].reset();
    }
  }
}

std::uint64_t SocketTransport::watermark_of(int peer) const {
  check_peer(peer);
  return watermarks_[static_cast<std::size_t>(peer)].load(std::memory_order_acquire);
}

double SocketTransport::transferred_mb() const {
  if (options_.nic != nullptr) return options_.nic->total_transferred_mb();
  return transferred_mb_no_nic_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr = make_addr(htonl(INADDR_LOOPBACK), 0);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind(pick_free_port)");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname(pick_free_port)");
  }
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

}  // namespace nopfs::net
