#include "net/socket_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "net/reactor.hpp"
#include "net/wire.hpp"
#include "util/log.hpp"
#include "util/units.hpp"

namespace nopfs::net {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("SocketTransport: ") + what + ": " +
                           std::strerror(errno));
}

/// Resolves SocketOptions::reactor_backend against the NOPFS_REACTOR env
/// var.  The env var is consulted ONLY when the option is kAuto (code wins
/// over environment), and a parsed value is treated like an explicit
/// request: NOPFS_REACTOR=io_uring on a kernel that denies io_uring_setup
/// fails loudly instead of silently measuring epoll.  An unparseable value
/// warns and stays kAuto.
ReactorBackend resolve_reactor_backend(ReactorBackend requested) {
  if (requested != ReactorBackend::kAuto) return requested;
  const char* env = std::getenv("NOPFS_REACTOR");
  if (env == nullptr || *env == '\0') return ReactorBackend::kAuto;
  ReactorBackend parsed = ReactorBackend::kAuto;
  if (!parse_reactor_backend(env, parsed)) {
    util::log_warn(std::string("SocketTransport: NOPFS_REACTOR=") + env +
                   " not recognized (want auto|epoll|io_uring); probing");
    return ReactorBackend::kAuto;
  }
  return parsed;
}

void set_socket_timeout(int fd, int option, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    throw_errno("setsockopt(timeout)");
  }
}

/// Writes exactly `len` bytes; throws on any error (including timeout).
void send_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

/// Reads exactly `len` bytes.  Returns false on clean EOF before the first
/// byte; throws on errors, timeouts, and mid-buffer EOF.
bool recv_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw std::runtime_error("SocketTransport: recv timed out");
      }
      throw_errno("recv");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("SocketTransport: peer closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

/// One blocking frame out (the rendezvous handshake only; everything else
/// rides the reactor's SendQueues).
void send_frame_blocking(int fd, wire::MsgType type, std::uint64_t arg,
                         const Bytes& payload) {
  if (payload.size() > wire::kMaxPayloadBytes) {
    throw std::runtime_error("SocketTransport: frame payload too large");
  }
  std::uint8_t header[wire::kHeaderBytes];
  wire::encode_header(header, type, arg,
                      static_cast<std::uint32_t>(payload.size()));
  send_all(fd, header, sizeof(header));
  if (!payload.empty()) send_all(fd, payload.data(), payload.size());
}

/// One blocking frame in.  Returns false on clean EOF at a frame boundary.
bool recv_frame_blocking(int fd, wire::FrameHeader& header, Bytes& payload) {
  std::uint8_t raw[wire::kHeaderBytes];
  if (!recv_all(fd, raw, sizeof(raw))) return false;
  header = wire::decode_header(raw);
  payload.resize(header.payload_len);
  if (header.payload_len > 0 && !recv_all(fd, payload.data(), payload.size())) {
    throw std::runtime_error("SocketTransport: peer closed mid-frame");
  }
  return true;
}

std::uint32_t resolve_ipv4(const std::string& host) {
  in_addr addr{};
  if (::inet_pton(AF_INET, host.c_str(), &addr) != 1) {
    throw std::invalid_argument("SocketTransport: host must be IPv4 dotted quad: " +
                                host);
  }
  return addr.s_addr;  // network byte order
}

sockaddr_in make_addr(std::uint32_t ipv4_nbo, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = ipv4_nbo;
  addr.sin_port = htons(port);
  return addr;
}

int make_tcp_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

/// Deep enough that a whole large world dialing at once doesn't drop SYNs;
/// the kernel clamps to net.core.somaxconn.
int listen_backlog(int world_size) { return std::max(world_size + 8, 128); }

}  // namespace

// ---------------------------------------------------------------------------
// Reactor-confined per-connection state.

struct SocketTransport::PendingFetch {
  std::uint64_t id = 0;
  int peer = -1;
  /// Sweep pull tickets share the channel's FIFO deque with fetch tickets
  /// (the serve side answers one connection's requests in order, so the
  /// reply kinds can never mis-pair); a sweep ticket resolves on
  /// kSweepGrant/kSweepDone instead of kHit/kMiss.
  bool sweep = false;
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  bool hit = false;
  bool sweep_done = false;  ///< reply was kSweepDone (grid drained)
  Bytes payload;

  void resolve(bool hit_value, Bytes bytes) {
    {
      const std::scoped_lock lock(m);
      if (done) return;
      done = true;
      hit = hit_value;
      payload = std::move(bytes);
    }
    cv.notify_all();
  }

  void resolve_sweep(bool done_frame, Bytes bytes) {
    {
      const std::scoped_lock lock(m);
      if (done) return;
      done = true;
      hit = true;
      sweep_done = done_frame;
      payload = std::move(bytes);
    }
    cv.notify_all();
  }
};

struct SocketTransport::Session : std::enable_shared_from_this<Session> {
  // Kind is fixed at accept/dial time except for one transition: an
  // accepted rendezvous connection becomes the root's control connection
  // to the rank it introduced (kRendezvous -> kControl).
  enum class Kind {
    kRendezvous,  ///< accepted on the rendezvous listener, pre-kHello
    kControl,     ///< collective channel (root: per peer; non-root: to root)
    kServe,       ///< accepted on the serve listener: answers kFetch etc.
    kChannel      ///< dialed to a peer's serve listener: fetch + gossip out
  };
  enum class State { kConnecting, kHandshake, kOpen, kDraining, kClosed };

  int fd = -1;
  Kind kind = Kind::kServe;
  State state = State::kHandshake;
  int peer = -1;
  bool want_write = false;  ///< kEventOut currently armed
  bool dirty = false;       ///< queued for this iteration's batched flush
  wire::FrameReader reader;
  wire::SendQueue sendq;

  /// kChannel: in-flight pipelined fetches, oldest first.  The serve side
  /// answers one connection's requests in order, so replies resolve these
  /// FIFO.
  std::deque<std::shared_ptr<PendingFetch>> pending_fetches;

  /// kServe: replies owing an emulated-NIC delay.  Strictly FIFO — a free
  /// reply behind a delayed one waits for it (deadlines are monotone), or
  /// the requester's ticket pipeline would mis-pair.
  struct DelayedReply {
    Clock::time_point due;
    wire::MsgType type;
    std::uint64_t arg;
    Bytes payload;
  };
  std::deque<DelayedReply> delayed;
  bool delayed_timer_armed = false;

  /// Rank 0, kServe: the rank whose kPfsDelta frames arrived here (-1 until
  /// the first one) — the dead-rank cleanup's owner handle.
  int pfs_rank_on_conn = -1;

  /// kRendezvous: the peer address captured at accept (its reachable IPv4).
  std::uint32_t peer_ipv4 = 0;
};

struct SocketTransport::SyncWaiter {
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  bool ok = false;
  std::string error;
  Bytes payload;             ///< non-root allgather: the packed reply
  std::vector<Bytes> slots;  ///< root allgather: the gathered contributions
  int remaining = 0;         ///< rendezvous: ranks still missing

  void fulfill_ok(Bytes reply = {}, std::vector<Bytes> gathered = {}) {
    {
      const std::scoped_lock lock(m);
      if (done) return;
      done = true;
      ok = true;
      payload = std::move(reply);
      slots = std::move(gathered);
    }
    cv.notify_all();
  }

  void fulfill_error(std::string message) {
    {
      const std::scoped_lock lock(m);
      if (done) return;
      done = true;
      ok = false;
      error = std::move(message);
    }
    cv.notify_all();
  }

  /// Returns whether the waiter was fulfilled within `seconds`.
  bool wait_for(double seconds) {
    std::unique_lock lock(m);
    cv.wait_for(lock, std::chrono::duration<double>(seconds),
                [this] { return done; });
    return done;
  }
};

struct SocketTransport::Loop {
  std::unordered_map<int, std::shared_ptr<Session>> sessions;  // by fd
  std::vector<std::shared_ptr<Session>> channels;   // dialed, by peer rank
  std::vector<std::shared_ptr<Session>> controls;   // root: by peer rank
  std::shared_ptr<Session> control;                 // non-root: to the root
  std::vector<std::shared_ptr<Session>> dirty;

  // Rendezvous (root).
  int rendezvous_remaining = 0;
  std::shared_ptr<SyncWaiter> rendezvous_waiter;

  // Collectives.  At most one in flight (collective_mutex_ serializes the
  // callers); early_gathers absorbs a peer whose kGather lands before the
  // root's own thread begins the collective.
  std::shared_ptr<SyncWaiter> gather_waiter;     // root
  std::vector<Bytes> gather_slots;
  std::vector<bool> gather_have;
  int gather_missing = 0;
  std::vector<std::deque<Bytes>> early_gathers;  // root, per rank
  std::shared_ptr<SyncWaiter> allgather_waiter;  // non-root
  bool collective_broken = false;
  std::string collective_error;

  // Teardown drain.
  bool draining = false;
  std::shared_ptr<SyncWaiter> drain_waiter;
};

// ---------------------------------------------------------------------------

SocketTransport::SocketTransport(const SocketOptions& options) : options_(options) {
  if (options_.world_size <= 0) {
    throw std::invalid_argument("SocketTransport: world_size must be > 0");
  }
  if (options_.max_world != 0 && options_.max_world < options_.world_size) {
    throw std::invalid_argument(
        "SocketTransport: max_world must be 0 or >= world_size");
  }
  // Joiner ranks live in [world_size, max_world); every per-rank table is
  // sized for the largest world this one may grow to.
  if (options_.rank < 0 || options_.rank >= total_ranks()) {
    throw std::invalid_argument("SocketTransport: rank out of range");
  }
  if (options_.rendezvous_port == 0) {
    throw std::invalid_argument("SocketTransport: rendezvous_port must be nonzero");
  }
  const auto world = static_cast<std::size_t>(total_ranks());
  endpoints_.resize(world);
  watermarks_ = std::vector<std::atomic<std::uint64_t>>(world);
  for (auto& w : watermarks_) w.store(0, std::memory_order_relaxed);
  pfs_readers_.resize(world, 0);
  pfs_owner_.resize(world, nullptr);
  pfs_rank_seq_.resize(world, 0);
  if (options_.gossip.max_batch < 1) options_.gossip.max_batch = 1;
  if (options_.time_scale <= 0.0) options_.time_scale = 1.0;

  loop_ = std::make_unique<Loop>();
  loop_->channels.resize(world);
  loop_->controls.resize(world);
  loop_->early_gathers.resize(world);

  try {
    // Serve listener first: by the time any peer learns this rank's port
    // (the rendezvous completes strictly later), the listener is accepting.
    // Bound to INADDR_ANY — this rank may live on a different host than the
    // rendezvous; peers learn its *reachable* address from the rendezvous
    // (getpeername of the control connection), not from this bind.
    serve_listener_fd_ = make_tcp_socket();
    sockaddr_in addr = make_addr(htonl(INADDR_ANY), 0);
    if (::bind(serve_listener_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      throw_errno("bind(serve)");
    }
    socklen_t addr_len = sizeof(addr);
    if (::getsockname(serve_listener_fd_, reinterpret_cast<sockaddr*>(&addr),
                      &addr_len) != 0) {
      throw_errno("getsockname(serve)");
    }
    serve_port_ = ntohs(addr.sin_port);
    if (::listen(serve_listener_fd_, listen_backlog(options_.world_size)) != 0) {
      throw_errno("listen(serve)");
    }
    make_nonblocking(serve_listener_fd_);

    const std::size_t event_batch = options_.reactor_event_batch != 0
                                        ? options_.reactor_event_batch
                                        : kDefaultEventBatch;
    reactor_ = make_reactor(resolve_reactor_backend(options_.reactor_backend),
                            event_batch);
    reactor_backend_name_ = reactor_->backend_name();
    reactor_->post([this] {
      reactor_->set_iteration_hook([this] { loop_flush_dirty(); });
      reactor_->add_fd(serve_listener_fd_, kEventIn,
                       [this](std::uint32_t) { loop_accept_serve(); });
    });
    reactor_->start();

    if (options_.rank == 0) {
      rendezvous_as_root();
    } else {
      rendezvous_as_peer();
    }
    // Batched contention gossip needs its drain thread; the unary mode
    // (flush interval 0) sends inline from the caller and never starts one.
    if (total_ranks() > 1 && options_.gossip.flush_virtual_s > 0.0) {
      gossip_thread_ = std::thread([this] { gossip_loop(); });
    }
  } catch (...) {
    teardown();
    throw;
  }
}

SocketTransport::~SocketTransport() { teardown(); }

void SocketTransport::teardown() {
  // Cooperative gossip drain FIRST, while the channels are still usable: a
  // queued release must reach rank 0's counter (it must drain to zero on a
  // clean shutdown, not lean on the dead-rank cleanup), and rank 0's final
  // coalesced gamma must reach the survivors.
  {
    const std::scoped_lock lock(gossip_mutex_);
    gossip_stop_ = true;
  }
  gossip_cv_.notify_all();
  if (gossip_thread_.joinable()) gossip_thread_.join();

  if (reactor_ != nullptr) {
    // The flush POSTS its frames; the drain task is posted strictly after,
    // so the reactor enqueues the final deltas/gamma into the session send
    // queues before the drain walks them — FIFO task order is the whole
    // teardown-ordering argument.
    flush_pfs_gossip();
    stopping_.store(true, std::memory_order_release);
    auto drained = std::make_shared<SyncWaiter>();
    reactor_->post([this, drained] { loop_begin_drain(drained); });
    // Bounded: a peer that stopped reading must not wedge our destructor.
    (void)drained->wait_for(std::min(options_.timeout_s, 5.0));
    reactor_->stop();
  } else {
    stopping_.store(true, std::memory_order_release);
  }

  // The loop thread is gone; close whatever the drain deadline left behind
  // and resolve any parked caller so no thread waits out its full timeout.
  if (loop_ != nullptr) {
    for (auto& [fd, session] : loop_->sessions) {
      for (auto& ticket : session->pending_fetches) ticket->resolve(false, {});
      session->pending_fetches.clear();
      if (session->fd >= 0) ::close(session->fd);
      session->fd = -1;
      session->state = Session::State::kClosed;
    }
    loop_->sessions.clear();
    loop_->channels.clear();
    loop_->controls.clear();
    loop_->control.reset();
    loop_->dirty.clear();
    if (loop_->rendezvous_waiter) {
      loop_->rendezvous_waiter->fulfill_error("SocketTransport: torn down");
    }
    if (loop_->gather_waiter) {
      loop_->gather_waiter->fulfill_error("SocketTransport: torn down");
    }
    if (loop_->allgather_waiter) {
      loop_->allgather_waiter->fulfill_error("SocketTransport: torn down");
    }
  }
  if (rendezvous_listener_fd_ >= 0) {
    ::close(rendezvous_listener_fd_);
    rendezvous_listener_fd_ = -1;
  }
  if (serve_listener_fd_ >= 0) {
    ::close(serve_listener_fd_);
    serve_listener_fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// Rendezvous.

void SocketTransport::rendezvous_as_root() {
  endpoints_[0] = PeerEndpoint{0 /* "the address you dialed" */, serve_port_};
  // A fixed solo world needs no listener at all; an elastic one listens
  // even when the base world is just this rank, so joiners can find it.
  if (total_ranks() == 1) return;

  const int listener = make_tcp_socket();
  rendezvous_listener_fd_ = listener;
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr =
      make_addr(resolve_ipv4(options_.rendezvous_host), options_.rendezvous_port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind(rendezvous)");
  }
  if (::listen(listener, listen_backlog(total_ranks())) != 0) {
    throw_errno("listen(rendezvous)");
  }
  make_nonblocking(listener);

  auto waiter = std::make_shared<SyncWaiter>();
  waiter->remaining = options_.world_size - 1;
  reactor_->post([this, waiter] {
    loop_->rendezvous_waiter = waiter;
    loop_->rendezvous_remaining = options_.world_size - 1;
    reactor_->add_fd(rendezvous_listener_fd_, kEventIn,
                     [this](std::uint32_t) { loop_accept_rendezvous(); });
  });
  // Only base ranks are waited for; late joiners arrive whenever their
  // scripts say and are welcomed by the (still open) listener.
  if (options_.world_size == 1) return;
  if (!waiter->wait_for(options_.timeout_s)) {
    int missing = 0;
    {
      const std::scoped_lock lock(waiter->m);
      missing = waiter->remaining;
    }
    throw std::runtime_error("SocketTransport: rendezvous timed out waiting for " +
                             std::to_string(missing) + " rank(s)");
  }
  bool ok = false;
  std::string error;
  {
    const std::scoped_lock lock(waiter->m);
    ok = waiter->ok;
    error = waiter->error;
  }
  if (!ok) throw std::runtime_error(error);
}

void SocketTransport::loop_accept_rendezvous() {
  for (;;) {
    sockaddr_in peer_addr{};
    socklen_t peer_len = sizeof(peer_addr);
    const int fd = ::accept(rendezvous_listener_fd_,
                            reinterpret_cast<sockaddr*>(&peer_addr), &peer_len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the backlog
    }
    make_nonblocking(fd);
    set_nodelay(fd);
    const auto session =
        loop_make_session(fd, static_cast<int>(Session::Kind::kRendezvous),
                          static_cast<int>(Session::State::kHandshake));
    session->peer_ipv4 = peer_addr.sin_addr.s_addr;
  }
}

void SocketTransport::loop_fail_rendezvous(const std::string& error) {
  if (loop_->rendezvous_waiter) {
    loop_->rendezvous_waiter->fulfill_error(error);
    loop_->rendezvous_waiter.reset();
  }
}

void SocketTransport::loop_rendezvous_hello(
    const std::shared_ptr<Session>& session, wire::Frame frame) {
  try {
    if (frame.header.type != wire::MsgType::kHello) {
      throw std::runtime_error("SocketTransport: expected kHello at rendezvous");
    }
    wire::Reader reader(frame.payload);
    const std::uint32_t peer_protocol = reader.u32();
    const auto peer_rank = static_cast<int>(frame.header.arg);
    if (peer_protocol != wire::kProtocolVersion) {
      throw std::runtime_error(
          "SocketTransport: rank " + std::to_string(peer_rank) +
          " speaks protocol " + std::to_string(peer_protocol) + ", this rank " +
          std::to_string(wire::kProtocolVersion) +
          " — mixed-version world rejected at the handshake");
    }
    const auto peer_world = static_cast<int>(reader.u32());
    const std::uint16_t peer_serve_port = reader.u16();
    const auto peer_max_world = static_cast<int>(reader.u32());
    if (peer_world != options_.world_size) {
      throw std::runtime_error("SocketTransport: rank " + std::to_string(peer_rank) +
                               " disagrees on world size (" +
                               std::to_string(peer_world) + " vs " +
                               std::to_string(options_.world_size) + ")");
    }
    if (peer_max_world != options_.max_world) {
      throw std::runtime_error("SocketTransport: rank " + std::to_string(peer_rank) +
                               " disagrees on max_world (" +
                               std::to_string(peer_max_world) + " vs " +
                               std::to_string(options_.max_world) + ")");
    }
    if (peer_rank <= 0 || peer_rank >= total_ranks() ||
        loop_->controls[static_cast<std::size_t>(peer_rank)] != nullptr) {
      throw std::runtime_error("SocketTransport: duplicate or invalid rank " +
                               std::to_string(peer_rank) + " at rendezvous");
    }
    endpoints_[static_cast<std::size_t>(peer_rank)] =
        PeerEndpoint{session->peer_ipv4, peer_serve_port};
    session->kind = Session::Kind::kControl;
    session->state = Session::State::kOpen;
    session->peer = peer_rank;
    loop_->controls[static_cast<std::size_t>(peer_rank)] = session;

    const auto make_table = [this] {
      Bytes table;
      wire::put_u32(table, wire::kProtocolVersion);
      for (const PeerEndpoint& ep : endpoints_) {
        wire::put_u32(table, ep.ipv4);
        wire::put_u16(table, ep.port);
      }
      return table;
    };

    if (peer_rank >= options_.world_size) {
      // Late joiner (DESIGN.md Sec. 11): not part of the base rendezvous
      // count — welcome it immediately with the current endpoint table.
      // Rank 0's own entry is always populated, and that is all a joiner
      // needs to dial the fetch channel and start pulling; entries of
      // ranks that have not joined (yet) are zero.
      const Bytes table = make_table();
      session->sendq.push(wire::MsgType::kWelcome, 0, table.data(), table.size());
      loop_mark_dirty(session);
      return;
    }

    --loop_->rendezvous_remaining;
    if (loop_->rendezvous_waiter) {
      const std::scoped_lock lock(loop_->rendezvous_waiter->m);
      loop_->rendezvous_waiter->remaining = loop_->rendezvous_remaining;
    }
    if (loop_->rendezvous_remaining > 0) return;

    // Every base rank checked in: broadcast the endpoint table (led by the
    // protocol version, so a peer can likewise reject a root from the
    // wrong rollout generation).  A fixed world retires the rendezvous
    // listener here; an elastic one keeps it open for late joiners.
    const Bytes table = make_table();
    for (int r = 1; r < options_.world_size; ++r) {
      const auto& control = loop_->controls[static_cast<std::size_t>(r)];
      control->sendq.push(wire::MsgType::kWelcome, 0, table.data(), table.size());
      loop_mark_dirty(control);
    }
    if (total_ranks() == options_.world_size) {
      reactor_->del_fd(rendezvous_listener_fd_);
      ::close(rendezvous_listener_fd_);
      rendezvous_listener_fd_ = -1;
    }
    if (loop_->rendezvous_waiter) {
      loop_->rendezvous_waiter->fulfill_ok();
      loop_->rendezvous_waiter.reset();
    }
  } catch (const std::exception& ex) {
    loop_fail_rendezvous(ex.what());
    throw;  // loop_on_session_event closes the offending session
  }
}

void SocketTransport::rendezvous_as_peer() {
  const std::uint32_t root_ipv4 = resolve_ipv4(options_.rendezvous_host);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(options_.timeout_s));
  // Rank 0 may not have bound the rendezvous port yet, and a large world
  // dialing at once can overflow even a deep backlog: retry with
  // exponential backoff (5ms -> 250ms) to spread the SYN storm.
  int fd = -1;
  auto backoff = std::chrono::milliseconds(5);
  for (;;) {
    fd = make_tcp_socket();
    sockaddr_in addr = make_addr(root_ipv4, options_.rendezvous_port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) break;
    ::close(fd);
    fd = -1;
    if (Clock::now() >= deadline) {
      throw std::runtime_error("SocketTransport: rendezvous connect timed out (" +
                               options_.rendezvous_host + ":" +
                               std::to_string(options_.rendezvous_port) + ")");
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(250));
  }
  set_socket_timeout(fd, SO_RCVTIMEO, options_.timeout_s);
  set_socket_timeout(fd, SO_SNDTIMEO, options_.timeout_s);

  bool registered = false;
  try {
    Bytes hello;
    wire::put_u32(hello, wire::kProtocolVersion);
    wire::put_u32(hello, static_cast<std::uint32_t>(options_.world_size));
    wire::put_u16(hello, serve_port_);
    wire::put_u32(hello, static_cast<std::uint32_t>(options_.max_world));
    send_frame_blocking(fd, wire::MsgType::kHello,
                        static_cast<std::uint64_t>(options_.rank), hello);

    wire::FrameHeader header;
    Bytes payload;
    if (!recv_frame_blocking(fd, header, payload) ||
        header.type != wire::MsgType::kWelcome) {
      throw std::runtime_error("SocketTransport: expected kWelcome from rendezvous");
    }
    wire::Reader reader(payload);
    const std::uint32_t root_protocol = reader.u32();
    if (root_protocol != wire::kProtocolVersion) {
      throw std::runtime_error("SocketTransport: rendezvous speaks protocol " +
                               std::to_string(root_protocol) + ", this rank " +
                               std::to_string(wire::kProtocolVersion));
    }
    for (auto& endpoint : endpoints_) {
      endpoint.ipv4 = reader.u32();
      endpoint.port = reader.u16();
    }
    // Rank 0 advertises ipv4 == 0, "the address you dialed".
    if (endpoints_[0].ipv4 == 0) endpoints_[0].ipv4 = root_ipv4;

    // Handshake done: hand the (now non-blocking) control connection to the
    // reactor.  Posted before the constructor returns, so any collective
    // posted afterwards finds loop_->control in place (FIFO task order).
    make_nonblocking(fd);
    reactor_->post([this, fd] {
      const auto session =
          loop_make_session(fd, static_cast<int>(Session::Kind::kControl),
                            static_cast<int>(Session::State::kOpen));
      session->peer = 0;
      loop_->control = session;
    });
    registered = true;
  } catch (...) {
    if (!registered) ::close(fd);
    throw;
  }
}

// ---------------------------------------------------------------------------
// Session plumbing.

std::shared_ptr<SocketTransport::Session> SocketTransport::loop_make_session(
    int fd, int kind, int state) {
  auto session = std::make_shared<Session>();
  session->fd = fd;
  session->kind = static_cast<Session::Kind>(kind);
  session->state = static_cast<Session::State>(state);
  if (options_.send_gather_iovs != 0) {
    session->sendq.set_max_flush_iov(options_.send_gather_iovs);
  }
  loop_->sessions.emplace(fd, session);
  reactor_->add_fd(fd, kEventIn, [this, fd](std::uint32_t events) {
    loop_on_session_event(fd, events);
  });
  return session;
}

void SocketTransport::loop_accept_serve() {
  for (;;) {
    const int fd = ::accept(serve_listener_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the backlog
    }
    if (stopping_.load(std::memory_order_acquire) || loop_->draining) {
      ::close(fd);
      continue;
    }
    make_nonblocking(fd);
    set_nodelay(fd);
    loop_make_session(fd, static_cast<int>(Session::Kind::kServe),
                      static_cast<int>(Session::State::kHandshake));
  }
}

void SocketTransport::loop_on_session_event(int fd, std::uint32_t events) {
  const auto it = loop_->sessions.find(fd);
  if (it == loop_->sessions.end()) return;  // closed earlier this batch
  const std::shared_ptr<Session> session = it->second;
  try {
    if (session->state == Session::State::kConnecting) {
      if ((events & (kEventOut | kEventErr | kEventHup)) != 0) {
        loop_finish_connect(session);
      }
      if (session->state == Session::State::kClosed ||
          session->state == Session::State::kConnecting) {
        return;
      }
    }
    if ((events & (kEventIn | kEventHup | kEventErr)) != 0) {
      const std::size_t budget = options_.read_budget_bytes != 0
                                     ? options_.read_budget_bytes
                                     : wire::FrameReader::kDefaultReadBudget;
      const wire::IoStatus status = session->reader.fill_from(session->fd, budget);
      // Dispatch everything that arrived BEFORE acting on EOF: a peer's
      // teardown-flushed deltas can land in the same read as its close,
      // and they must still fold.
      while (session->reader.has_frame()) {
        loop_dispatch_frame(session, session->reader.pop_frame());
        if (session->state == Session::State::kClosed) return;
      }
      if (status == wire::IoStatus::kEof) {
        if (session->reader.mid_frame()) {
          throw std::runtime_error("SocketTransport: peer closed mid-frame");
        }
        loop_close_session(session);
        return;
      }
      if (status == wire::IoStatus::kDone) {
        // Budget truncation: unread bytes remain in the socket buffer.
        // Level-triggered epoll would refire on its own, but the io_uring
        // multishot poll only wakes on NEW kernel activity — a quiet peer
        // whose burst we truncated would hang.  Post a continuation so the
        // remainder is consumed on the next loop iteration regardless of
        // backend (and other sessions still get their turn in between).
        const std::weak_ptr<Session> weak = session;
        reactor_->post([this, weak] {
          const auto live = weak.lock();
          if (live && live->fd >= 0 &&
              live->state != Session::State::kClosed) {
            loop_on_session_event(live->fd, kEventIn);
          }
        });
      }
    }
    if ((events & kEventOut) != 0) loop_flush_session(session);
  } catch (const std::exception& ex) {
    if (!stopping_.load(std::memory_order_acquire)) {
      util::log_error("SocketTransport rank ", options_.rank, ": ", ex.what());
    }
    loop_close_session(session);
  }
}

void SocketTransport::loop_finish_connect(const std::shared_ptr<Session>& session) {
  int err = 0;
  socklen_t len = sizeof(err);
  ::getsockopt(session->fd, SOL_SOCKET, SO_ERROR, &err, &len);
  if (err != 0) {
    loop_close_session(session);  // peer unreachable: recorded miss
    return;
  }
  session->state =
      loop_->draining ? Session::State::kDraining : Session::State::kOpen;
  session->want_write = false;
  reactor_->mod_fd(session->fd, kEventIn);
  loop_mark_dirty(session);  // the queued kHello (and anything behind it)
}

void SocketTransport::loop_dispatch_frame(const std::shared_ptr<Session>& session,
                                          wire::Frame frame) {
  switch (session->kind) {
    case Session::Kind::kRendezvous:
      loop_rendezvous_hello(session, std::move(frame));
      return;
    case Session::Kind::kServe:
      loop_serve_frame(session, std::move(frame));
      return;
    case Session::Kind::kChannel:
      loop_channel_reply(session, std::move(frame));
      return;
    case Session::Kind::kControl:
      loop_control_frame(session, std::move(frame));
      return;
  }
}

void SocketTransport::loop_mark_dirty(const std::shared_ptr<Session>& session) {
  if (session->dirty || session->state == Session::State::kClosed ||
      session->state == Session::State::kConnecting) {
    return;
  }
  session->dirty = true;
  loop_->dirty.push_back(session);
}

void SocketTransport::loop_flush_dirty() {
  // One batched pass per reactor iteration: every task/handler that queued
  // frames this iteration shares one sendmsg per session.
  while (!loop_->dirty.empty()) {
    auto batch = std::move(loop_->dirty);
    loop_->dirty.clear();
    for (const auto& session : batch) {
      session->dirty = false;
      if (session->state == Session::State::kClosed ||
          session->state == Session::State::kConnecting) {
        continue;
      }
      loop_flush_session(session);
    }
  }
}

void SocketTransport::loop_flush_session(const std::shared_ptr<Session>& session) {
  try {
    const wire::IoStatus status = session->sendq.flush(session->fd);
    const bool want = status == wire::IoStatus::kWouldBlock;
    if (want != session->want_write) {
      session->want_write = want;
      reactor_->mod_fd(session->fd, want ? (kEventIn | kEventOut) : kEventIn);
    }
    if (session->state == Session::State::kDraining && session->sendq.empty() &&
        session->delayed.empty()) {
      loop_close_session(session);
    }
  } catch (const std::exception& ex) {
    if (!stopping_.load(std::memory_order_acquire)) {
      util::log_error("SocketTransport rank ", options_.rank, ": ", ex.what());
    }
    loop_close_session(session);
  }
}

void SocketTransport::loop_close_session(const std::shared_ptr<Session>& session) {
  if (session->state == Session::State::kClosed) return;
  session->state = Session::State::kClosed;
  reactor_->del_fd(session->fd);
  ::close(session->fd);
  loop_->sessions.erase(session->fd);
  session->fd = -1;
  session->delayed.clear();

  switch (session->kind) {
    case Session::Kind::kChannel: {
      // In-flight fetches on a dead channel are recorded misses — exactly
      // how the paper treats a peer that cannot (yet) serve a sample.
      for (auto& ticket : session->pending_fetches) ticket->resolve(false, {});
      session->pending_fetches.clear();
      if (session->peer >= 0 &&
          loop_->channels[static_cast<std::size_t>(session->peer)] == session) {
        loop_->channels[static_cast<std::size_t>(session->peer)].reset();
      }
      break;
    }
    case Session::Kind::kServe: {
      // Connection gone (clean EOF or error): drop the peer's outstanding
      // reader-count contribution so a crashed rank no longer pins gamma.
      // Skipped during our own teardown — every channel is closing at once
      // and the counter dies with the job.  The owner tag guards the race
      // where the rank redialed and its live deltas moved to a newer
      // connection before this cleanup ran.
      if (session->pfs_rank_on_conn > 0 &&
          !stopping_.load(std::memory_order_acquire)) {
        pfs_root_drop_dead_rank(session->pfs_rank_on_conn, session.get());
      }
      break;
    }
    case Session::Kind::kControl: {
      if (session->peer >= 0 &&
          loop_->controls[static_cast<std::size_t>(session->peer)] == session) {
        loop_->controls[static_cast<std::size_t>(session->peer)].reset();
      }
      if (loop_->control == session) loop_->control.reset();
      if (session->peer >= options_.world_size) {
        // A late joiner leaving is an expected elastic event, not a torn
        // collective: joiners never participate in them.
        break;
      }
      if (!stopping_.load(std::memory_order_acquire) && !loop_->draining) {
        loop_->collective_broken = true;
        loop_->collective_error =
            options_.rank == 0
                ? "SocketTransport: collective out of step with rank " +
                      std::to_string(session->peer)
                : "SocketTransport: lost the root mid-collective";
      }
      if (loop_->gather_waiter) {
        loop_->gather_waiter->fulfill_error(
            "SocketTransport: collective out of step with rank " +
            std::to_string(session->peer));
        loop_->gather_waiter.reset();
      }
      if (loop_->allgather_waiter) {
        loop_->allgather_waiter->fulfill_error(
            "SocketTransport: lost the root mid-collective");
        loop_->allgather_waiter.reset();
      }
      break;
    }
    case Session::Kind::kRendezvous: {
      // Dying before introducing itself fails the handshake, matching the
      // old blocking root's behaviour on a bad first frame.
      if (!loop_->draining) {
        loop_fail_rendezvous("SocketTransport: expected kHello at rendezvous");
      }
      break;
    }
  }
  if (loop_->draining) loop_check_drained();
}

// ---------------------------------------------------------------------------
// Frame dispatch per session kind.

void SocketTransport::loop_serve_frame(const std::shared_ptr<Session>& session,
                                       wire::Frame frame) {
  if (frame.header.type == wire::MsgType::kHello) {
    // The channel handshake (protocol revision 3): identifies the dialing
    // rank and rejects a mixed-version straggler that somehow skipped the
    // rendezvous.
    if (session->state != Session::State::kHandshake) {
      throw std::runtime_error("SocketTransport: duplicate channel hello");
    }
    wire::Reader reader(frame.payload);
    const std::uint32_t peer_protocol = reader.u32();
    if (peer_protocol != wire::kProtocolVersion) {
      throw std::runtime_error("SocketTransport: channel hello speaks protocol " +
                               std::to_string(peer_protocol) + ", this rank " +
                               std::to_string(wire::kProtocolVersion));
    }
    const auto who = static_cast<int>(frame.header.arg);
    if (who < 0 || who >= total_ranks()) {
      throw std::runtime_error("SocketTransport: channel hello from invalid rank " +
                               std::to_string(who));
    }
    session->peer = who;
    session->state = Session::State::kOpen;
    return;
  }
  if (session->state == Session::State::kHandshake) {
    throw std::runtime_error("SocketTransport: frame before channel hello");
  }
  switch (frame.header.type) {
    case wire::MsgType::kFetch: {
      std::optional<Bytes> sample;
      {
        const std::scoped_lock lock(handler_mutex_);
        if (handler_) sample = handler_(frame.header.arg);
      }
      if (sample.has_value()) {
        // The server-side NIC charge: same rule as SimTransport, which
        // prices a remote fetch on both endpoints' NICs.  Reserved, not
        // blocked: the delay becomes a reactor timer on the reply.
        double delay_s = 0.0;
        if (options_.nic != nullptr) {
          delay_s = options_.nic->reserve_transfer(
              util::bytes_to_mb(sample->size()));
        }
        loop_enqueue_reply(session, wire::MsgType::kHit, frame.header.arg,
                           std::move(*sample), delay_s);
      } else {
        loop_enqueue_reply(session, wire::MsgType::kMiss, frame.header.arg,
                           Bytes{}, 0.0);
      }
      return;
    }
    case wire::MsgType::kWatermark: {
      wire::Reader reader(frame.payload);
      const auto peer = static_cast<int>(reader.u32());
      if (peer >= 0 && peer < total_ranks()) {
        watermarks_[static_cast<std::size_t>(peer)].store(
            frame.header.arg, std::memory_order_release);
      }
      return;
    }
    case wire::MsgType::kPfsDelta: {
      if (options_.rank != 0) {
        throw std::runtime_error(
            "SocketTransport: PFS contention frame at non-root rank");
      }
      const auto who = static_cast<int>(frame.header.arg);
      if (who > 0 && who < total_ranks()) {
        const wire::PfsDelta delta = wire::decode_pfs_delta(frame.payload);
        session->pfs_rank_on_conn = who;
        pfs_root_fold(who, delta.reader_delta, /*notify_local=*/true,
                      session.get(), delta.seq);
      }
      return;
    }
    case wire::MsgType::kPfsGamma: {
      if (options_.rank == 0) {
        throw std::runtime_error("SocketTransport: kPfsGamma at the root");
      }
      pfs_apply_gamma(wire::decode_pfs_gamma(frame.payload));
      return;
    }
    case wire::MsgType::kSweepPull: {
      if (options_.rank != 0) {
        throw std::runtime_error(
            "SocketTransport: sweep frame at non-root rank");
      }
      const auto who = static_cast<int>(frame.header.arg);
      if (who <= 0 || who >= total_ranks()) {
        throw std::runtime_error(
            "SocketTransport: sweep pull from invalid rank " +
            std::to_string(who));
      }
      std::pair<bool, Bytes> reply;
      {
        const std::scoped_lock lock(sweep_mutex_);
        if (!sweep_service_.on_pull) {
          throw std::runtime_error(
              "SocketTransport: sweep pull with no service installed");
        }
        reply = sweep_service_.on_pull(who, std::move(frame.payload));
      }
      loop_enqueue_reply(session,
                         reply.first ? wire::MsgType::kSweepDone
                                     : wire::MsgType::kSweepGrant,
                         frame.header.arg, std::move(reply.second), 0.0);
      return;
    }
    case wire::MsgType::kSweepResult: {
      if (options_.rank != 0) {
        throw std::runtime_error(
            "SocketTransport: sweep frame at non-root rank");
      }
      const auto who = static_cast<int>(frame.header.arg);
      if (who <= 0 || who >= total_ranks()) {
        throw std::runtime_error(
            "SocketTransport: sweep result from invalid rank " +
            std::to_string(who));
      }
      const std::scoped_lock lock(sweep_mutex_);
      if (sweep_service_.on_result) {
        sweep_service_.on_result(who, std::move(frame.payload));
      }
      return;
    }
    default:
      throw std::runtime_error("SocketTransport: unexpected frame on serve conn");
  }
}

void SocketTransport::loop_enqueue_reply(const std::shared_ptr<Session>& session,
                                         wire::MsgType type, std::uint64_t arg,
                                         Bytes payload, double delay_s) {
  if (delay_s <= 0.0 && session->delayed.empty()) {
    session->sendq.push(type, arg, std::move(payload));
    loop_mark_dirty(session);
    return;
  }
  const auto now = Clock::now();
  auto due = now + std::chrono::duration_cast<Clock::duration>(
                       std::chrono::duration<double>(std::max(0.0, delay_s)));
  // Monotone deadlines keep replies FIFO: anything behind a NIC-delayed
  // reply waits for it, even if itself free.
  if (!session->delayed.empty() && due < session->delayed.back().due) {
    due = session->delayed.back().due;
  }
  session->delayed.push_back(
      Session::DelayedReply{due, type, arg, std::move(payload)});
  loop_arm_delayed_timer(session);
}

void SocketTransport::loop_arm_delayed_timer(
    const std::shared_ptr<Session>& session) {
  if (session->delayed_timer_armed || session->delayed.empty()) return;
  session->delayed_timer_armed = true;
  const double wait_s =
      std::chrono::duration<double>(session->delayed.front().due - Clock::now())
          .count();
  // Weak: the timer must not resurrect (or misfire into) a closed session
  // whose fd number was reused.
  std::weak_ptr<Session> weak = session;
  reactor_->call_later(wait_s, [this, weak] {
    const auto session = weak.lock();
    if (!session || session->state == Session::State::kClosed) return;
    session->delayed_timer_armed = false;
    const auto now = Clock::now();
    while (!session->delayed.empty() && session->delayed.front().due <= now) {
      auto& reply = session->delayed.front();
      session->sendq.push(reply.type, reply.arg, std::move(reply.payload));
      session->delayed.pop_front();
    }
    loop_mark_dirty(session);
    loop_arm_delayed_timer(session);
  });
}

void SocketTransport::loop_channel_reply(const std::shared_ptr<Session>& session,
                                         wire::Frame frame) {
  switch (frame.header.type) {
    case wire::MsgType::kHit:
    case wire::MsgType::kMiss: {
      if (session->pending_fetches.empty()) {
        throw std::runtime_error("SocketTransport: unsolicited fetch reply");
      }
      const auto ticket = session->pending_fetches.front();
      session->pending_fetches.pop_front();
      if (frame.header.arg != ticket->id) {
        throw std::runtime_error("SocketTransport: fetch reply out of step");
      }
      if (ticket->sweep) {
        throw std::runtime_error(
            "SocketTransport: fetch reply paired with a sweep ticket");
      }
      ticket->resolve(frame.header.type == wire::MsgType::kHit,
                      std::move(frame.payload));
      return;
    }
    case wire::MsgType::kSweepGrant:
    case wire::MsgType::kSweepDone: {
      if (session->pending_fetches.empty()) {
        throw std::runtime_error("SocketTransport: unsolicited sweep reply");
      }
      const auto ticket = session->pending_fetches.front();
      session->pending_fetches.pop_front();
      if (!ticket->sweep) {
        throw std::runtime_error(
            "SocketTransport: sweep reply paired with a fetch ticket");
      }
      ticket->resolve_sweep(frame.header.type == wire::MsgType::kSweepDone,
                            std::move(frame.payload));
      return;
    }
    default:
      throw std::runtime_error("SocketTransport: unexpected frame on fetch channel");
  }
}

void SocketTransport::loop_control_frame(const std::shared_ptr<Session>& session,
                                         wire::Frame frame) {
  if (options_.rank == 0) {
    const int r = session->peer;
    if (frame.header.type != wire::MsgType::kGather ||
        frame.header.arg != static_cast<std::uint64_t>(r)) {
      throw std::runtime_error(
          "SocketTransport: collective out of step with rank " +
          std::to_string(r));
    }
    if (loop_->gather_waiter &&
        !loop_->gather_have[static_cast<std::size_t>(r)]) {
      loop_->gather_slots[static_cast<std::size_t>(r)] = std::move(frame.payload);
      loop_->gather_have[static_cast<std::size_t>(r)] = true;
      if (--loop_->gather_missing == 0) loop_finish_root_gather();
    } else {
      // This peer's kGather beat the root's own thread to the collective.
      loop_->early_gathers[static_cast<std::size_t>(r)].push_back(
          std::move(frame.payload));
    }
    return;
  }
  if (frame.header.type != wire::MsgType::kAllgather) {
    throw std::runtime_error("SocketTransport: lost the root mid-collective");
  }
  if (loop_->allgather_waiter) {
    loop_->allgather_waiter->fulfill_ok(std::move(frame.payload));
    loop_->allgather_waiter.reset();
  }
}

// ---------------------------------------------------------------------------
// Collectives: gather-to-root + broadcast over the control sessions.

void SocketTransport::loop_begin_root_gather(
    const std::shared_ptr<SyncWaiter>& waiter, Bytes local) {
  if (loop_->collective_broken) {
    waiter->fulfill_error(loop_->collective_error);
    return;
  }
  const auto world = static_cast<std::size_t>(options_.world_size);
  loop_->gather_waiter = waiter;
  loop_->gather_slots.assign(world, {});
  loop_->gather_have.assign(world, false);
  loop_->gather_slots[0] = std::move(local);
  loop_->gather_have[0] = true;
  loop_->gather_missing = options_.world_size - 1;
  for (std::size_t r = 1; r < world; ++r) {
    auto& early = loop_->early_gathers[r];
    if (!early.empty()) {
      loop_->gather_slots[r] = std::move(early.front());
      early.pop_front();
      loop_->gather_have[r] = true;
      --loop_->gather_missing;
    }
  }
  if (loop_->gather_missing == 0) loop_finish_root_gather();
}

void SocketTransport::loop_finish_root_gather() {
  const auto waiter = loop_->gather_waiter;
  loop_->gather_waiter.reset();
  Bytes packed;
  for (const Bytes& slot : loop_->gather_slots) {
    wire::put_u32(packed, static_cast<std::uint32_t>(slot.size()));
    packed.insert(packed.end(), slot.begin(), slot.end());
  }
  for (int r = 1; r < options_.world_size; ++r) {
    const auto& control = loop_->controls[static_cast<std::size_t>(r)];
    if (control == nullptr || control->state == Session::State::kClosed) {
      waiter->fulfill_error("SocketTransport: collective out of step with rank " +
                            std::to_string(r));
      return;
    }
    control->sendq.push(wire::MsgType::kAllgather, 0, packed.data(),
                        packed.size());
    loop_mark_dirty(control);
  }
  waiter->fulfill_ok({}, std::move(loop_->gather_slots));
  loop_->gather_slots.clear();
}

void SocketTransport::loop_begin_peer_gather(
    const std::shared_ptr<SyncWaiter>& waiter, Bytes local) {
  if (loop_->collective_broken || loop_->control == nullptr ||
      loop_->control->state == Session::State::kClosed) {
    waiter->fulfill_error(loop_->collective_broken
                              ? loop_->collective_error
                              : "SocketTransport: lost the root mid-collective");
    return;
  }
  loop_->allgather_waiter = waiter;
  loop_->control->sendq.push(wire::MsgType::kGather,
                             static_cast<std::uint64_t>(options_.rank),
                             local.data(), local.size());
  loop_mark_dirty(loop_->control);
}

std::vector<Bytes> SocketTransport::allgather(Bytes local) {
  if (is_joiner()) {
    // The base world's collectives are sized world_size and a joiner was
    // never part of the rendezvous count: letting it gather would wedge
    // (or corrupt) the base ranks.  Joiners pull, fetch, and gossip only.
    throw std::runtime_error(
        "SocketTransport: a late joiner cannot enter collectives");
  }
  const std::scoped_lock lock(collective_mutex_);
  const auto world = static_cast<std::size_t>(options_.world_size);
  if (world == 1) {
    std::vector<Bytes> slots(1);
    slots[0] = std::move(local);
    return slots;
  }
  auto waiter = std::make_shared<SyncWaiter>();
  if (options_.rank == 0) {
    reactor_->post([this, waiter, local = std::move(local)]() mutable {
      loop_begin_root_gather(waiter, std::move(local));
    });
  } else {
    reactor_->post([this, waiter, local = std::move(local)]() mutable {
      loop_begin_peer_gather(waiter, std::move(local));
    });
  }
  if (!waiter->wait_for(options_.timeout_s)) {
    throw std::runtime_error("SocketTransport: collective timed out");
  }
  {
    const std::scoped_lock waiter_lock(waiter->m);
    if (!waiter->ok) throw std::runtime_error(waiter->error);
    if (options_.rank == 0) return std::move(waiter->slots);
  }
  wire::Reader reader(waiter->payload);
  std::vector<Bytes> slots(world);
  for (auto& slot : slots) slot = reader.bytes(reader.u32());
  return slots;
}

void SocketTransport::barrier() { (void)allgather(Bytes{}); }

// ---------------------------------------------------------------------------
// Serving handler + fetch.

void SocketTransport::set_serve_handler(ServeHandler handler) {
  const std::scoped_lock lock(handler_mutex_);
  handler_ = std::move(handler);
}

// ---------------------------------------------------------------------------
// Sweep service (DESIGN.md Sec. 10): pull/grant on the fetch-channel ticket
// pipeline, results one-way on the same channel.

void SocketTransport::set_sweep_service(SweepService service) {
  if ((service.on_pull || service.on_result) && options_.rank != 0) {
    throw std::runtime_error(
        "SocketTransport: the sweep service lives on rank 0");
  }
  // Holding sweep_mutex_ fences withdrawal: the reactor invokes handlers
  // under the same mutex, so after this returns no old handler is running.
  const std::scoped_lock lock(sweep_mutex_);
  sweep_service_ = std::move(service);
}

std::optional<std::pair<bool, Bytes>> SocketTransport::sweep_pull(Bytes pull) {
  if (options_.rank == 0) {
    throw std::runtime_error("SocketTransport: rank 0 cannot pull from itself");
  }
  const auto ticket = std::make_shared<PendingFetch>();
  ticket->peer = 0;
  ticket->sweep = true;
  if (stopping_.load(std::memory_order_acquire) || reactor_ == nullptr) {
    return std::nullopt;
  }
  reactor_->post([this, ticket, payload = std::move(pull)]() mutable {
    const auto channel = loop_channel(0);
    if (channel == nullptr) {
      ticket->resolve(false, {});
      return;
    }
    channel->pending_fetches.push_back(ticket);
    channel->sendq.push(wire::MsgType::kSweepPull,
                        static_cast<std::uint64_t>(options_.rank),
                        std::move(payload));
    loop_mark_dirty(channel);
  });
  std::unique_lock lock(ticket->m);
  const bool done = ticket->cv.wait_for(
      lock, std::chrono::duration<double>(options_.timeout_s),
      [&] { return ticket->done; });
  if (!done || !ticket->hit) {
    lock.unlock();
    if (!done && !stopping_.load(std::memory_order_acquire)) {
      util::log_error("SocketTransport rank ", options_.rank,
                      " sweep pull: timed out");
    }
    return std::nullopt;
  }
  return std::make_pair(ticket->sweep_done, std::move(ticket->payload));
}

void SocketTransport::sweep_push_result(Bytes batch) {
  if (options_.rank == 0) {
    throw std::runtime_error("SocketTransport: rank 0 folds results locally");
  }
  if (stopping_.load(std::memory_order_acquire) || reactor_ == nullptr) return;
  // Fire-and-forget, like watermarks: a batch lost to a dying root is
  // recovered by the scheduler's tail re-grant, never by a retry here.
  reactor_->post([this, payload = std::move(batch)]() mutable {
    const auto channel = loop_channel(0);
    if (channel == nullptr) return;
    channel->sendq.push(wire::MsgType::kSweepResult,
                        static_cast<std::uint64_t>(options_.rank),
                        std::move(payload));
    loop_mark_dirty(channel);
  });
}

void SocketTransport::check_peer(int peer) const {
  if (peer < 0 || peer >= total_ranks()) {
    throw std::invalid_argument("SocketTransport: peer out of range");
  }
}

std::shared_ptr<SocketTransport::Session> SocketTransport::loop_channel(int peer) {
  auto& slot = loop_->channels[static_cast<std::size_t>(peer)];
  if (slot != nullptr && slot->state != Session::State::kClosed) return slot;
  if (loop_->draining) return nullptr;
  const PeerEndpoint endpoint = endpoints_[static_cast<std::size_t>(peer)];
  // No endpoint yet — an elastic rank that has not joined (or already
  // left).  Best-effort gossip to it is skipped, never dialed blind.
  if (endpoint.port == 0) return nullptr;
  int fd = -1;
  try {
    fd = make_tcp_socket();
    make_nonblocking(fd);
  } catch (const std::exception&) {
    if (fd >= 0) ::close(fd);
    return nullptr;
  }
  sockaddr_in addr = make_addr(endpoint.ipv4, endpoint.port);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    ::close(fd);
    return nullptr;  // peer torn down: a recorded miss, not a crash
  }
  const auto session = loop_make_session(
      fd, static_cast<int>(Session::Kind::kChannel),
      static_cast<int>(rc == 0 ? Session::State::kOpen
                               : Session::State::kConnecting));
  session->peer = peer;
  if (rc != 0) reactor_->mod_fd(fd, kEventIn | kEventOut);
  // The channel hello leads every frame on a dialed channel (revision 3).
  Bytes hello;
  wire::put_u32(hello, wire::kProtocolVersion);
  session->sendq.push(wire::MsgType::kHello,
                      static_cast<std::uint64_t>(options_.rank),
                      std::move(hello));
  if (rc == 0) loop_mark_dirty(session);
  slot = session;
  return session;
}

SocketTransport::FetchTicket SocketTransport::fetch_sample_start(
    int peer, std::uint64_t id) {
  check_peer(peer);
  if (peer == options_.rank) {
    throw std::invalid_argument("SocketTransport: fetch_sample from self");
  }
  auto ticket = std::make_shared<PendingFetch>();
  ticket->id = id;
  ticket->peer = peer;
  if (stopping_.load(std::memory_order_acquire) || reactor_ == nullptr) {
    ticket->resolve(false, {});
    return ticket;
  }
  reactor_->post([this, peer, id, ticket] {
    const auto channel = loop_channel(peer);
    if (channel == nullptr) {
      ticket->resolve(false, {});
      return;
    }
    channel->pending_fetches.push_back(ticket);
    channel->sendq.push(wire::MsgType::kFetch, id, nullptr, 0);
    loop_mark_dirty(channel);
  });
  return ticket;
}

std::optional<Bytes> SocketTransport::fetch_sample_finish(
    const FetchTicket& ticket) {
  Bytes payload;
  {
    std::unique_lock lock(ticket->m);
    const bool done =
        ticket->cv.wait_for(lock, std::chrono::duration<double>(options_.timeout_s),
                            [&] { return ticket->done; });
    if (!done) {
      lock.unlock();
      if (!stopping_.load(std::memory_order_acquire)) {
        util::log_error("SocketTransport rank ", options_.rank, " fetch from ",
                        ticket->peer, ": timed out");
      }
      return std::nullopt;
    }
    if (!ticket->hit) return std::nullopt;
    payload = std::move(ticket->payload);
  }
  const double mb = util::bytes_to_mb(payload.size());
  if (options_.nic != nullptr) {
    options_.nic->transfer(mb);
  } else {
    // Atomic add (fetches may race from several prefetch threads).
    transferred_mb_no_nic_.fetch_add(mb, std::memory_order_relaxed);
  }
  return payload;
}

std::optional<Bytes> SocketTransport::fetch_sample(int peer, std::uint64_t id) {
  return fetch_sample_finish(fetch_sample_start(peer, id));
}

// ---------------------------------------------------------------------------
// PFS contention accounting (DESIGN.md Sec. 7.4).

double SocketTransport::flush_interval_s() const noexcept {
  return options_.gossip.flush_virtual_s / options_.time_scale;
}

int SocketTransport::pfs_root_fold(int rank, int delta, bool notify_local,
                                   const void* conn_tag, std::uint32_t seq) {
  const std::scoped_lock lock(pfs_mutex_);
  if (seq != 0) {
    std::uint32_t& last = pfs_rank_seq_[static_cast<std::size_t>(rank)];
    if (seq <= last) return pfs_gamma_;  // duplicate / reordered frame
    last = seq;
  }
  return pfs_fold_locked(rank, delta, notify_local, conn_tag);
}

int SocketTransport::pfs_fold_locked(int rank, int delta, bool notify_local,
                                     const void* conn_tag) {
  int& readers = pfs_readers_[static_cast<std::size_t>(rank)];
  readers += delta;
  // A release folded after a dead-rank cleanup (or a lost acquire) must
  // not drive the contribution negative — mirroring the unary protocol,
  // where releasing an idle rank was a no-op.
  if (readers < 0) readers = 0;
  pfs_owner_[static_cast<std::size_t>(rank)] = readers > 0 ? conn_tag : nullptr;
  int gamma = 0;
  for (const int r : pfs_readers_) gamma += r;
  if (gamma == pfs_gamma_) return gamma;  // coalesced to a no-op
  pfs_gamma_ = gamma;
  if (notify_local && pfs_listener_) pfs_listener_(gamma);
  if (flush_interval_s() > 0.0) {
    // Batched mode: the gossip thread broadcasts within one flush interval
    // — many folds coalesce into one window (that interval, plus the RTT,
    // is the staleness bound), with the window's PEAK remembered so the
    // envelope survives the coalescing.
    pfs_broadcast_pending_ = true;
    if (gamma > pfs_broadcast_peak_) pfs_broadcast_peak_ = gamma;
  } else {
    // Unary mode: post the broadcast while still holding pfs_mutex_, so two
    // racing transitions reach the reactor's FIFO queue — and therefore
    // every peer — in the order they were folded.
    pfs_broadcast_gamma_locked(gamma);
  }
  return gamma;
}

void SocketTransport::pfs_emit_pending_broadcast_locked() {
  if (!pfs_broadcast_pending_) return;
  pfs_broadcast_pending_ = false;
  if (pfs_broadcast_peak_ > pfs_gamma_) {
    pfs_broadcast_gamma_locked(pfs_broadcast_peak_);
  }
  pfs_broadcast_peak_ = pfs_gamma_;
  pfs_broadcast_gamma_locked(pfs_gamma_);
}

void SocketTransport::pfs_root_drop_dead_rank(int rank, const void* conn_tag) {
  const std::scoped_lock lock(pfs_mutex_);
  if (pfs_owner_[static_cast<std::size_t>(rank)] != conn_tag) {
    // The rank's live deltas moved to a newer connection after this one
    // went stale: its contribution is current, not orphaned.
    return;
  }
  const int outstanding = pfs_readers_[static_cast<std::size_t>(rank)];
  if (outstanding == 0) return;
  (void)pfs_fold_locked(rank, -outstanding, /*notify_local=*/true, conn_tag);
}

void SocketTransport::pfs_broadcast_gamma_locked(int gamma_value) {
  if (reactor_ == nullptr) return;
  const Bytes payload =
      wire::encode_pfs_gamma({gamma_value, ++pfs_gamma_seq_});
  // ALWAYS posted, never sent inline (even when already on the reactor):
  // mixing inline and posted sends would let a later gamma overtake an
  // earlier one still sitting in the task queue.
  reactor_->post([this, payload] {
    for (int peer = 1; peer < total_ranks(); ++peer) {
      const auto channel = loop_channel(peer);
      if (channel != nullptr) {
        // Gossip is best-effort, like watermarks; a dead peer stays stale.
        channel->sendq.push(wire::MsgType::kPfsGamma, 0, payload.data(),
                            payload.size());
        loop_mark_dirty(channel);
      }
    }
  });
}

void SocketTransport::pfs_apply_gamma(const wire::PfsGamma& update) {
  const std::scoped_lock lock(pfs_mutex_);
  if (update.seq <= pfs_gamma_seen_) return;  // stale broadcast
  pfs_gamma_seen_ = update.seq;
  // Own in-flight transitions may not have reached the root yet: never let
  // the authoritative count talk this rank below its own activity.
  pfs_gamma_ = update.gamma > pfs_local_readers_ ? update.gamma : pfs_local_readers_;
  if (pfs_listener_) pfs_listener_(pfs_gamma_);
}

void SocketTransport::pfs_flush_deltas() {
  // Flushers (gossip thread, unary-mode callers, teardown) serialize here,
  // which pins the POST order — and therefore the frame order on the
  // channel — to seq order; the queue lock is dropped before the post so
  // enqueueing reader threads never wait on a flusher.
  const std::scoped_lock flush_lock(pfs_flush_mutex_);
  int net = 0;
  int peak = 0;
  std::uint32_t first_seq = 0;
  int frames = 0;
  {
    const std::scoped_lock lock(gossip_mutex_);
    net = pending_delta_;
    peak = pending_max_prefix_;
    pending_delta_ = 0;
    pending_max_prefix_ = 0;
    pending_transitions_ = 0;
    // Preserve the window's EXTREME, not just its endpoint: if the queued
    // transitions peaked above the net (an acquire/release pair inside one
    // window), send the peak first and the correction after, so the active
    // period still touches rank 0's counter trajectory.  Nothing to say
    // only when the trajectory never left its last-flushed value.
    frames = peak > net && peak > 0 ? 2 : (net != 0 ? 1 : 0);
    if (frames == 0) return;
    first_seq = delta_seq_ + 1;
    delta_seq_ += static_cast<std::uint32_t>(frames);
  }
  if (reactor_ == nullptr) return;
  std::vector<Bytes> payloads;
  if (frames == 2) {
    payloads.push_back(wire::encode_pfs_delta({peak, first_seq}));
    payloads.push_back(wire::encode_pfs_delta({net - peak, first_seq + 1}));
  } else {
    payloads.push_back(wire::encode_pfs_delta({net, first_seq}));
  }
  reactor_->post([this, payloads = std::move(payloads)] {
    // Best-effort, like the unary frames: a lost delta self-heals through
    // the root's per-rank clamp and the dead-rank cleanup.
    const auto channel = loop_channel(0);
    if (channel == nullptr) return;
    for (const Bytes& payload : payloads) {
      channel->sendq.push(wire::MsgType::kPfsDelta,
                          static_cast<std::uint64_t>(options_.rank),
                          payload.data(), payload.size());
    }
    loop_mark_dirty(channel);
  });
}

void SocketTransport::pfs_enqueue_delta(int delta) {
  bool flush_now = false;
  bool batch_full = false;
  {
    const std::scoped_lock lock(gossip_mutex_);
    pending_delta_ += delta;
    if (pending_delta_ > pending_max_prefix_) pending_max_prefix_ = pending_delta_;
    ++pending_transitions_;
    // Unary mode (and the post-teardown stragglers of any mode) flushes
    // from the calling thread, the historical behaviour.
    flush_now = flush_interval_s() <= 0.0 || gossip_stop_;
    batch_full = pending_transitions_ >= options_.gossip.max_batch;
  }
  if (flush_now) {
    pfs_flush_deltas();
  } else if (batch_full) {
    gossip_cv_.notify_all();
  }
}

void SocketTransport::gossip_loop() {
  // Fixed window by default; with gossip.min_flush_virtual_s > 0 the window
  // adapts per wake (DESIGN.md Sec. 11): halve toward the minimum after a
  // window that had transitions to flush (gamma is volatile), double back
  // toward the configured maximum after a quiet one (steady gamma needs no
  // frames).  Flushes are extreme-preserving regardless, so adaptation
  // changes delivery latency only, never the folded gamma.
  const double max_s = std::max(flush_interval_s(), 50e-6);  // never a busy spin
  const double min_s =
      options_.gossip.min_flush_virtual_s > 0.0
          ? std::clamp(options_.gossip.min_flush_virtual_s / options_.time_scale,
                       50e-6, max_s)
          : max_s;
  double window_s = max_s;
  std::unique_lock lock(gossip_mutex_);
  while (!gossip_stop_) {
    gossip_cv_.wait_for(lock, std::chrono::duration<double>(window_s), [this] {
      return gossip_stop_ || pending_transitions_ >= options_.gossip.max_batch;
    });
    if (gossip_stop_) break;
    const bool have_deltas = pending_transitions_ > 0;
    window_s = have_deltas ? std::max(min_s, window_s * 0.5)
                           : std::min(max_s, window_s * 2.0);
    lock.unlock();
    if (have_deltas) pfs_flush_deltas();
    if (options_.rank == 0) {
      const std::scoped_lock pfs_lock(pfs_mutex_);
      pfs_emit_pending_broadcast_locked();
    }
    lock.lock();
  }
}

void SocketTransport::flush_pfs_gossip() {
  pfs_flush_deltas();
  if (options_.rank == 0) {
    const std::scoped_lock lock(pfs_mutex_);
    pfs_emit_pending_broadcast_locked();
  }
}

int SocketTransport::pfs_adjust(int delta) {
  if (options_.rank == 0) {
    // Rank 0 folds its own transitions directly under the counter lock (the
    // caller learns the authoritative gamma from the return value; its
    // listener is only for changes it did not initiate) — only the
    // BROADCAST batches, so a root reader thread never touches the wire in
    // batched mode.
    return pfs_root_fold(0, delta, /*notify_local=*/false);
  }
  int estimate = 0;
  {
    // Local estimate until the authoritative kPfsGamma arrives (staleness
    // bound: one flush interval + a control round-trip).  Optimism is
    // asymmetric on purpose: a release lowers the estimate immediately
    // (underpricing briefly is the historical staleness behaviour), but an
    // acquire only floors it at this rank's own reader count — adding the
    // delta on top of a broadcast that may ALREADY count this rank (its
    // coalesced release never left the queue) would double-count and
    // inflate the gamma envelope above the job-wide truth.
    const std::scoped_lock lock(pfs_mutex_);
    pfs_local_readers_ += delta;
    if (pfs_local_readers_ < 0) pfs_local_readers_ = 0;
    if (delta < 0) pfs_gamma_ += delta;
    if (pfs_gamma_ < pfs_local_readers_) pfs_gamma_ = pfs_local_readers_;
    if (pfs_gamma_ < 0) pfs_gamma_ = 0;
    estimate = pfs_gamma_;
  }
  pfs_enqueue_delta(delta);
  return estimate;
}

void SocketTransport::set_pfs_listener(PfsListener listener) {
  const std::scoped_lock lock(pfs_mutex_);
  pfs_listener_ = std::move(listener);
}

// ---------------------------------------------------------------------------
// Watermarks + drain + odds and ends.

void SocketTransport::publish_watermark(std::uint64_t position) {
  watermarks_[static_cast<std::size_t>(options_.rank)].store(
      position, std::memory_order_release);
  if (stopping_.load(std::memory_order_acquire) || reactor_ == nullptr) return;
  Bytes who;
  wire::put_u32(who, static_cast<std::uint32_t>(options_.rank));
  reactor_->post([this, position, who = std::move(who)] {
    for (int peer = 0; peer < total_ranks(); ++peer) {
      if (peer == options_.rank) continue;
      const auto channel = loop_channel(peer);
      if (channel != nullptr) {
        // Watermarks are best-effort gossip; a dead peer just stays stale.
        channel->sendq.push(wire::MsgType::kWatermark, position, who.data(),
                            who.size());
        loop_mark_dirty(channel);
      }
    }
  });
}

std::uint64_t SocketTransport::watermark_of(int peer) const {
  check_peer(peer);
  return watermarks_[static_cast<std::size_t>(peer)].load(std::memory_order_acquire);
}

double SocketTransport::transferred_mb() const {
  if (options_.nic != nullptr) return options_.nic->total_transferred_mb();
  return transferred_mb_no_nic_.load(std::memory_order_relaxed);
}

void SocketTransport::loop_begin_drain(const std::shared_ptr<SyncWaiter>& waiter) {
  loop_->draining = true;
  loop_->drain_waiter = waiter;
  if (rendezvous_listener_fd_ >= 0) {
    reactor_->del_fd(rendezvous_listener_fd_);
    ::close(rendezvous_listener_fd_);
    rendezvous_listener_fd_ = -1;
  }
  if (serve_listener_fd_ >= 0) {
    reactor_->del_fd(serve_listener_fd_);
    ::close(serve_listener_fd_);
    serve_listener_fd_ = -1;
  }
  std::vector<std::shared_ptr<Session>> all;
  all.reserve(loop_->sessions.size());
  for (const auto& [fd, session] : loop_->sessions) all.push_back(session);
  for (const auto& session : all) {
    // NIC-priced replies still waiting on their timer are dropped: the
    // requester is tearing down too, or will see the close as a miss.
    session->delayed.clear();
    if (session->state == Session::State::kConnecting) {
      // Keep dialing: the queue may hold teardown-flushed deltas that must
      // reach the root.  loop_finish_connect sees draining and continues
      // the drain; the teardown deadline bounds a peer that never answers.
      continue;
    }
    if (session->state != Session::State::kClosed) {
      session->state = Session::State::kDraining;
      if (session->sendq.empty() && session->delayed.empty()) {
        loop_close_session(session);
      } else {
        loop_mark_dirty(session);
      }
    }
  }
  loop_check_drained();
}

void SocketTransport::loop_check_drained() {
  if (!loop_->draining || loop_->drain_waiter == nullptr) return;
  if (loop_->sessions.empty()) {
    loop_->drain_waiter->fulfill_ok();
    loop_->drain_waiter.reset();
  }
}

// ---------------------------------------------------------------------------

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr = make_addr(htonl(INADDR_LOOPBACK), 0);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind(pick_free_port)");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw_errno("getsockname(pick_free_port)");
  }
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

}  // namespace nopfs::net
