#include "net/wire.hpp"

#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/sim_config.hpp"

namespace nopfs::net::wire {

void put_f64(std::vector<std::uint8_t>& out, double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > size_) throw std::runtime_error("wire: truncated payload");
}

std::uint16_t Reader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::uint8_t> Reader::bytes(std::size_t n) {
  need(n);
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

void encode_header(std::uint8_t (&out)[kHeaderBytes], MsgType type,
                   std::uint64_t arg, std::uint32_t payload_len) {
  std::size_t pos = 0;
  auto byte = [&](std::uint64_t v, int shift) {
    out[pos++] = static_cast<std::uint8_t>((v >> shift) & 0xff);
  };
  for (int shift = 0; shift < 32; shift += 8) byte(kMagic, shift);
  out[pos++] = static_cast<std::uint8_t>(type);
  for (int shift = 0; shift < 64; shift += 8) byte(arg, shift);
  for (int shift = 0; shift < 32; shift += 8) byte(payload_len, shift);
}

std::vector<std::uint8_t> encode_pfs_delta(const PfsDelta& delta) {
  std::vector<std::uint8_t> out;
  out.reserve(8);
  put_i32(out, delta.reader_delta);
  put_u32(out, delta.seq);
  return out;
}

PfsDelta decode_pfs_delta(const std::vector<std::uint8_t>& payload) {
  Reader reader(payload);
  PfsDelta delta;
  delta.reader_delta = reader.i32();
  delta.seq = reader.u32();
  return delta;
}

std::vector<std::uint8_t> encode_pfs_gamma(const PfsGamma& gamma) {
  std::vector<std::uint8_t> out;
  out.reserve(8);
  put_i32(out, gamma.gamma);
  put_u32(out, gamma.seq);
  return out;
}

PfsGamma decode_pfs_gamma(const std::vector<std::uint8_t>& payload) {
  Reader reader(payload);
  PfsGamma gamma;
  gamma.gamma = reader.i32();
  gamma.seq = reader.u32();
  return gamma;
}

// --- sweep-service frame payloads -------------------------------------------

namespace {

constexpr int kLocationCount = static_cast<int>(sim::Location::kCount);

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::string read_string(Reader& reader) {
  const std::uint32_t len = reader.u32();
  const auto raw = reader.bytes(len);
  return std::string(raw.begin(), raw.end());
}

void put_f64_vector(std::vector<std::uint8_t>& out,
                    const std::vector<double>& v) {
  put_u64(out, v.size());
  for (const double x : v) put_f64(out, x);
}

std::vector<double> read_f64_vector(Reader& reader) {
  const std::uint64_t len = reader.u64();
  // The Reader bounds-checks every element, but reserve() before the loop
  // must not trust a corrupt length.
  if (len * 8 > kMaxPayloadBytes) {
    throw std::runtime_error("wire: sim-result vector exceeds sanity cap");
  }
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(len));
  for (std::uint64_t i = 0; i < len; ++i) v.push_back(reader.f64());
  return v;
}

}  // namespace

void put_sim_result(std::vector<std::uint8_t>& out,
                    const sim::SimResult& result) {
  put_string(out, result.policy);
  put_string(out, result.dataset);
  out.push_back(result.supported ? 1 : 0);
  put_string(out, result.unsupported_reason);
  put_f64(out, result.total_s);
  put_f64(out, result.prestage_s);
  put_f64(out, result.stall_s);
  put_f64(out, result.compute_s);
  put_f64_vector(out, result.epoch_s);
  put_f64_vector(out, result.batch_s_epoch0);
  put_f64_vector(out, result.batch_s_rest);
  for (int i = 0; i < kLocationCount; ++i) put_f64(out, result.location_s[i]);
  for (int i = 0; i < kLocationCount; ++i) {
    put_u64(out, result.location_count[i]);
  }
  for (int i = 0; i < kLocationCount; ++i) put_f64(out, result.location_mb[i]);
  put_f64(out, result.accessed_fraction);
}

sim::SimResult read_sim_result(Reader& reader) {
  sim::SimResult result;
  result.policy = read_string(reader);
  result.dataset = read_string(reader);
  result.supported = reader.bytes(1)[0] != 0;
  result.unsupported_reason = read_string(reader);
  result.total_s = reader.f64();
  result.prestage_s = reader.f64();
  result.stall_s = reader.f64();
  result.compute_s = reader.f64();
  result.epoch_s = read_f64_vector(reader);
  result.batch_s_epoch0 = read_f64_vector(reader);
  result.batch_s_rest = read_f64_vector(reader);
  for (int i = 0; i < kLocationCount; ++i) result.location_s[i] = reader.f64();
  for (int i = 0; i < kLocationCount; ++i) {
    result.location_count[i] = reader.u64();
  }
  for (int i = 0; i < kLocationCount; ++i) result.location_mb[i] = reader.f64();
  result.accessed_fraction = reader.f64();
  return result;
}

std::vector<std::uint8_t> encode_sim_result(const sim::SimResult& result) {
  std::vector<std::uint8_t> out;
  put_sim_result(out, result);
  return out;
}

sim::SimResult decode_sim_result(const std::vector<std::uint8_t>& payload) {
  Reader reader(payload);
  sim::SimResult result = read_sim_result(reader);
  if (reader.remaining() != 0) {
    throw std::runtime_error("wire: trailing bytes after sim result");
  }
  return result;
}

std::vector<std::uint8_t> encode_sweep_pull(const SweepPull& pull) {
  std::vector<std::uint8_t> out;
  out.reserve(4);
  put_u32(out, pull.seq);
  return out;
}

SweepPull decode_sweep_pull(const std::vector<std::uint8_t>& payload) {
  Reader reader(payload);
  SweepPull pull;
  pull.seq = reader.u32();
  if (reader.remaining() != 0) {
    throw std::runtime_error("wire: trailing bytes after sweep pull");
  }
  return pull;
}

std::vector<std::uint8_t> encode_sweep_grant(const SweepGrant& grant) {
  std::vector<std::uint8_t> out;
  out.reserve(16);
  put_u32(out, grant.seq);
  put_u64(out, grant.first);
  put_u32(out, grant.count);
  return out;
}

SweepGrant decode_sweep_grant(const std::vector<std::uint8_t>& payload) {
  Reader reader(payload);
  SweepGrant grant;
  grant.seq = reader.u32();
  grant.first = reader.u64();
  grant.count = reader.u32();
  if (reader.remaining() != 0) {
    throw std::runtime_error("wire: trailing bytes after sweep grant");
  }
  return grant;
}

std::vector<std::uint8_t> encode_sweep_done(const SweepDone& done) {
  std::vector<std::uint8_t> out;
  out.reserve(4);
  put_u32(out, done.seq);
  return out;
}

SweepDone decode_sweep_done(const std::vector<std::uint8_t>& payload) {
  Reader reader(payload);
  SweepDone done;
  done.seq = reader.u32();
  if (reader.remaining() != 0) {
    throw std::runtime_error("wire: trailing bytes after sweep done");
  }
  return done;
}

std::vector<std::uint8_t> encode_sweep_result_batch(
    const SweepResultBatch& batch) {
  std::vector<std::uint8_t> out;
  put_u32(out, batch.seq);
  put_u64(out, batch.first);
  put_u32(out, static_cast<std::uint32_t>(batch.results.size()));
  for (const sim::SimResult& result : batch.results) {
    put_sim_result(out, result);
  }
  return out;
}

SweepResultBatch decode_sweep_result_batch(
    const std::vector<std::uint8_t>& payload) {
  Reader reader(payload);
  SweepResultBatch batch;
  batch.seq = reader.u32();
  batch.first = reader.u64();
  const std::uint32_t count = reader.u32();
  batch.results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    batch.results.push_back(read_sim_result(reader));
  }
  if (reader.remaining() != 0) {
    throw std::runtime_error("wire: trailing bytes after sweep result batch");
  }
  return batch;
}

FrameHeader decode_header(const std::uint8_t (&in)[kHeaderBytes]) {
  Reader reader(in, kHeaderBytes);
  const std::uint32_t magic = reader.u32();
  if (magic != kMagic) throw std::runtime_error("wire: bad frame magic");
  FrameHeader header;
  const auto raw = reader.bytes(1);
  header.type = static_cast<MsgType>(raw[0]);
  // Valid types are [kHello, kPfsGamma] plus the sweep-service block
  // [kSweepPull, kSweepDone]; 11 sits between them and stays permanently
  // retired (it was kPfsGamma before the delta protocol).
  const bool core = raw[0] >= static_cast<std::uint8_t>(MsgType::kHello) &&
                    raw[0] <= static_cast<std::uint8_t>(MsgType::kPfsGamma);
  const bool sweep = raw[0] >= static_cast<std::uint8_t>(MsgType::kSweepPull) &&
                     raw[0] <= static_cast<std::uint8_t>(MsgType::kSweepDone);
  if (!core && !sweep) {
    throw std::runtime_error("wire: unknown message type");
  }
  header.arg = reader.u64();
  header.payload_len = reader.u32();
  if (header.payload_len > kMaxPayloadBytes) {
    throw std::runtime_error("wire: payload exceeds sanity cap");
  }
  return header;
}

// --- FrameReader -----------------------------------------------------------

IoStatus FrameReader::fill_from(int fd, std::size_t max_bytes) {
  std::size_t consumed = 0;
  for (;;) {
    dispense();  // scratch fully drains into header/payload state
    scratch_pos_ = scratch_len_ = 0;
    if (consumed >= max_bytes) return IoStatus::kDone;
    ssize_t n = 0;
    const std::size_t payload_want =
        have_header_ ? payload_.size() - payload_have_ : 0;
    if (payload_want >= sizeof(scratch_)) {
      // Large remainder: read straight into the payload buffer.
      n = ::recv(fd, payload_.data() + payload_have_, payload_want, 0);
      if (n > 0) {
        payload_have_ += static_cast<std::size_t>(n);
        consumed += static_cast<std::size_t>(n);
        finish_if_complete();
        continue;
      }
    } else {
      n = ::recv(fd, scratch_, sizeof(scratch_), 0);
      if (n > 0) {
        scratch_len_ = static_cast<std::size_t>(n);
        consumed += static_cast<std::size_t>(n);
        continue;
      }
    }
    if (n == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    throw std::runtime_error(std::string("wire: recv: ") +
                             std::strerror(errno));
  }
}

void FrameReader::dispense() {
  while (scratch_pos_ < scratch_len_) {
    const std::size_t avail = scratch_len_ - scratch_pos_;
    if (!have_header_) {
      const std::size_t take = std::min(avail, kHeaderBytes - header_have_);
      std::memcpy(header_buf_ + header_have_, scratch_ + scratch_pos_, take);
      header_have_ += take;
      scratch_pos_ += take;
      if (header_have_ < kHeaderBytes) return;
      header_ = decode_header(header_buf_);  // throws on a malformed header
      have_header_ = true;
      header_have_ = 0;
      payload_.clear();
      payload_.resize(header_.payload_len);
      payload_have_ = 0;
      finish_if_complete();  // zero-payload frames complete immediately
    } else {
      const std::size_t take =
          std::min(avail, payload_.size() - payload_have_);
      std::memcpy(payload_.data() + payload_have_, scratch_ + scratch_pos_,
                  take);
      payload_have_ += take;
      scratch_pos_ += take;
      finish_if_complete();
    }
  }
}

void FrameReader::finish_if_complete() {
  if (have_header_ && payload_have_ == payload_.size()) {
    ready_.push_back(Frame{header_, std::move(payload_)});
    payload_ = {};
    payload_have_ = 0;
    have_header_ = false;
  }
}

Frame FrameReader::pop_frame() {
  Frame frame = std::move(ready_.front());
  ready_.pop_front();
  return frame;
}

// --- SendQueue -------------------------------------------------------------

void SendQueue::push(MsgType type, std::uint64_t arg,
                     std::vector<std::uint8_t> payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw std::runtime_error("wire: payload exceeds sanity cap");
  }
  Entry entry;
  encode_header(entry.header, type, arg,
                static_cast<std::uint32_t>(payload.size()));
  entry.payload = std::move(payload);
  bytes_ += kHeaderBytes + entry.payload.size();
  entries_.push_back(std::move(entry));
}

void SendQueue::push(MsgType type, std::uint64_t arg,
                     const std::uint8_t* payload, std::size_t len) {
  std::vector<std::uint8_t> copy;
  if (len > 0) copy.assign(payload, payload + len);
  push(type, arg, std::move(copy));
}

void SendQueue::set_max_flush_iov(std::size_t cap) noexcept {
  max_flush_iov_ = std::clamp<std::size_t>(cap, 2, kMaxFlushIovCap);
}

IoStatus SendQueue::flush(int fd) {
  while (!entries_.empty()) {
    iovec iov[kMaxFlushIovCap];
    std::size_t iovcnt = 0;
    std::size_t skip = front_offset_;  // non-zero only for the front entry
    for (auto it = entries_.begin();
         it != entries_.end() && iovcnt + 2 <= max_flush_iov_; ++it) {
      if (skip < kHeaderBytes) {
        iov[iovcnt].iov_base = it->header + skip;
        iov[iovcnt].iov_len = kHeaderBytes - skip;
        ++iovcnt;
        skip = 0;
      } else {
        skip -= kHeaderBytes;
      }
      if (skip < it->payload.size()) {
        iov[iovcnt].iov_base = it->payload.data() + skip;
        iov[iovcnt].iov_len = it->payload.size() - skip;
        ++iovcnt;
      }
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iovcnt;
    // sendmsg rather than writev: writev cannot suppress SIGPIPE, and a
    // peer racing us to close must surface as EPIPE, not kill the process.
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
      throw std::runtime_error(std::string("wire: sendmsg: ") +
                               std::strerror(errno));
    }
    bytes_ -= static_cast<std::size_t>(n);
    front_offset_ += static_cast<std::size_t>(n);
    while (!entries_.empty()) {
      const std::size_t entry_bytes =
          kHeaderBytes + entries_.front().payload.size();
      if (front_offset_ < entry_bytes) break;
      front_offset_ -= entry_bytes;
      entries_.pop_front();
    }
  }
  return IoStatus::kDone;
}

}  // namespace nopfs::net::wire
