#include "net/wire.hpp"

#include <cstring>
#include <stdexcept>

namespace nopfs::net::wire {

void put_f64(std::vector<std::uint8_t>& out, double v) {
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void Reader::need(std::size_t n) const {
  if (pos_ + n > size_) throw std::runtime_error("wire: truncated payload");
}

std::uint16_t Reader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      data_[pos_] | (static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::int32_t Reader::i32() { return static_cast<std::int32_t>(u32()); }

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double Reader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<std::uint8_t> Reader::bytes(std::size_t n) {
  need(n);
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

void encode_header(std::uint8_t (&out)[kHeaderBytes], MsgType type,
                   std::uint64_t arg, std::uint32_t payload_len) {
  std::size_t pos = 0;
  auto byte = [&](std::uint64_t v, int shift) {
    out[pos++] = static_cast<std::uint8_t>((v >> shift) & 0xff);
  };
  for (int shift = 0; shift < 32; shift += 8) byte(kMagic, shift);
  out[pos++] = static_cast<std::uint8_t>(type);
  for (int shift = 0; shift < 64; shift += 8) byte(arg, shift);
  for (int shift = 0; shift < 32; shift += 8) byte(payload_len, shift);
}

std::vector<std::uint8_t> encode_pfs_delta(const PfsDelta& delta) {
  std::vector<std::uint8_t> out;
  out.reserve(8);
  put_i32(out, delta.reader_delta);
  put_u32(out, delta.seq);
  return out;
}

PfsDelta decode_pfs_delta(const std::vector<std::uint8_t>& payload) {
  Reader reader(payload);
  PfsDelta delta;
  delta.reader_delta = reader.i32();
  delta.seq = reader.u32();
  return delta;
}

std::vector<std::uint8_t> encode_pfs_gamma(const PfsGamma& gamma) {
  std::vector<std::uint8_t> out;
  out.reserve(8);
  put_i32(out, gamma.gamma);
  put_u32(out, gamma.seq);
  return out;
}

PfsGamma decode_pfs_gamma(const std::vector<std::uint8_t>& payload) {
  Reader reader(payload);
  PfsGamma gamma;
  gamma.gamma = reader.i32();
  gamma.seq = reader.u32();
  return gamma;
}

FrameHeader decode_header(const std::uint8_t (&in)[kHeaderBytes]) {
  Reader reader(in, kHeaderBytes);
  const std::uint32_t magic = reader.u32();
  if (magic != kMagic) throw std::runtime_error("wire: bad frame magic");
  FrameHeader header;
  const auto raw = reader.bytes(1);
  header.type = static_cast<MsgType>(raw[0]);
  if (raw[0] < static_cast<std::uint8_t>(MsgType::kHello) ||
      raw[0] > static_cast<std::uint8_t>(MsgType::kPfsGamma)) {
    throw std::runtime_error("wire: unknown message type");
  }
  header.arg = reader.u64();
  header.payload_len = reader.u32();
  if (header.payload_len > kMaxPayloadBytes) {
    throw std::runtime_error("wire: payload exceeds sanity cap");
  }
  return header;
}

}  // namespace nopfs::net::wire
