#pragma once
// SharedPfs: the job-wide PFS contention view of a multi-process world.
//
// The threaded harness prices t(gamma) exactly because every worker shares
// ONE EmulatedPfs object.  Separate processes cannot share an object, so
// each rank's SharedPfs keeps a local token bucket tuned to its FAIR SHARE
// of the job-wide aggregate, t(gamma) * w/gamma, where w is this rank's
// reader weight (its declared reader-thread fan-out, 1 by default) and
// gamma is the job-wide sum of active ranks' weights:
//
//   aggregate delivered = sum over active ranks of t(gamma) * w_i/gamma
//                       = t(gamma),
//
// exactly the curve one shared bucket grants gamma concurrent readers.
// With all weights at 1 this is the historical per-rank fair share
// t(gamma)/gamma.  Gamma itself comes from the transport's contention
// surface (Transport::pfs_adjust + the gamma listener): a rank's first
// outstanding read enqueues a +w delta, the last one leaving a -w delta;
// rank 0 folds the (possibly batched) kPfsDelta frames into the
// authoritative counter and gossips coalesced kPfsGamma updates (DESIGN.md
// Sec. 7.4).  A stale gamma can only skew pricing — never which sample is
// delivered — so the launch-mode digest identity contract (Sec. 7.3) is
// unaffected.

#include <mutex>

#include "net/transport.hpp"
#include "tiers/device_iface.hpp"
#include "tiers/params.hpp"
#include "tiers/token_bucket.hpp"

namespace nopfs::net {

class SharedPfs final : public tiers::PfsDevice {
 public:
  /// Registers this device as `transport`'s gamma listener; the transport
  /// must outlive it.  `time_scale`: virtual seconds per real second.
  SharedPfs(tiers::Clock& clock, const tiers::PfsParams& params, double time_scale,
            Transport& transport);
  ~SharedPfs() override;

  SharedPfs(const SharedPfs&) = delete;
  SharedPfs& operator=(const SharedPfs&) = delete;

  /// Reads `mb` at this rank's share of t(gamma).  The first outstanding
  /// read announces this rank to the job (pfs_adjust(+weight)); the last
  /// one leaving retracts it.
  void read(int worker, double mb) override;

  /// Declares this rank's reader-thread fan-out (the acquire/release
  /// delta weight).  `worker` is accepted for interface symmetry — a
  /// SharedPfs is one rank's view, so the weight applies to this rank.
  /// Must be called before the first read.
  void set_reader_threads(int worker, int threads) override;

  /// Latest job-wide gamma estimate (authoritative on rank 0, gossip-fresh
  /// elsewhere; never below this process's own activity).
  [[nodiscard]] int active_clients() const override;

  [[nodiscard]] int peak_clients() const override;

  /// MB read by THIS rank (job-wide totals are the harness's allgather).
  [[nodiscard]] double total_read_mb() const override {
    return bucket_.total_granted();
  }

 private:
  /// Applies a gamma update (own transition or transport gossip) and
  /// retunes the bucket to t(gamma) * weight/gamma.  Never called with
  /// locks held by read(); the transport invokes it from its own threads.
  void on_gamma(int gamma);

  tiers::PfsParams params_;
  double time_scale_;
  Transport& transport_;
  tiers::TokenBucket bucket_;
  /// Serializes outstanding-count transitions WITH their pfs_adjust calls,
  /// so acquire/release edges reach the gossip queue in the order they
  /// happened.  Lock order: transition_mutex_ before mutex_, never the
  /// reverse.
  std::mutex transition_mutex_;
  mutable std::mutex mutex_;
  int local_outstanding_ = 0;  ///< reads in flight in this process
  int weight_ = 1;             ///< this rank's reader-thread fan-out
  int gamma_ = 0;              ///< job-wide reader count (latest estimate)
  int peak_gamma_ = 0;
};

}  // namespace nopfs::net
