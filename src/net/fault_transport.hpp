#pragma once
// Fault-injecting Transport decorator (DESIGN.md Sec. 11).
//
// Wraps any Transport and applies a scenario FaultPlan's connection-drop
// windows: a remote fetch issued by this rank inside a scripted window
// fails as a miss (nullopt), exactly as if the peer connection dropped —
// the fetch router then falls back to the PFS, so delivery completeness
// holds and the delivered-sample digest is unchanged.  Everything else
// (collectives, gamma gossip, sweep frames, watermarks) forwards
// untouched, so the decorator composes over SimTransport and
// SocketTransport alike and both launch modes exercise the same plans.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/transport.hpp"
#include "scenario/fault_plan.hpp"

namespace nopfs::net {

class FaultTransport final : public Transport {
 public:
  /// `inner` must outlive the decorator.  Drop windows are in virtual
  /// seconds; `time_scale` converts the decorator's wall clock (which
  /// starts at construction) to virtual time.
  FaultTransport(Transport& inner, scenario::FaultPlan plan, double time_scale)
      : inner_(inner),
        plan_(std::move(plan)),
        time_scale_(time_scale),
        start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] int rank() const override { return inner_.rank(); }
  [[nodiscard]] int world_size() const override { return inner_.world_size(); }
  std::vector<Bytes> allgather(Bytes local) override {
    return inner_.allgather(std::move(local));
  }
  void barrier() override { inner_.barrier(); }
  void set_serve_handler(ServeHandler handler) override {
    inner_.set_serve_handler(std::move(handler));
  }

  std::optional<Bytes> fetch_sample(int peer, std::uint64_t id) override {
    if (plan_.connection_down(inner_.rank(), virtual_now())) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    return inner_.fetch_sample(peer, id);
  }

  int pfs_adjust(int delta) override { return inner_.pfs_adjust(delta); }
  void set_pfs_listener(PfsListener listener) override {
    inner_.set_pfs_listener(std::move(listener));
  }
  void set_sweep_service(SweepService service) override {
    inner_.set_sweep_service(std::move(service));
  }
  std::optional<std::pair<bool, Bytes>> sweep_pull(Bytes pull) override {
    return inner_.sweep_pull(std::move(pull));
  }
  void sweep_push_result(Bytes batch) override {
    inner_.sweep_push_result(std::move(batch));
  }
  void publish_watermark(std::uint64_t position) override {
    inner_.publish_watermark(position);
  }
  [[nodiscard]] std::uint64_t watermark_of(int peer) const override {
    return inner_.watermark_of(peer);
  }
  [[nodiscard]] double transferred_mb() const override {
    return inner_.transferred_mb();
  }

  /// Fetches swallowed by drop windows so far (diagnostics/tests).
  [[nodiscard]] int dropped_fetches() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] double virtual_now() const {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double>(elapsed).count() * time_scale_;
  }

  Transport& inner_;
  const scenario::FaultPlan plan_;
  const double time_scale_;
  const std::chrono::steady_clock::time_point start_;
  std::atomic<int> dropped_{0};
};

}  // namespace nopfs::net
