#pragma once
// Wire format shared by SocketTransport and the distributed harness.
//
// Every socket message is one length-prefixed frame:
//
//   u32 magic ("NPFS") | u8 type | u64 arg | u32 payload_len | payload bytes
//
// All integers are little-endian regardless of host order (the encode/decode
// helpers below are byte-explicit).  `arg` carries the small fixed operand of
// each message (rank, sample id, watermark position) so the common cases —
// barriers, fetch requests, watermark gossip — need no payload allocation.
// The payload length is bounded by kMaxPayloadBytes so a corrupt or
// truncated frame fails loudly instead of driving a gigabyte allocation.
//
// Two consumers sit on top of the frame format:
//
//   * the blocking rendezvous handshake (send_all/recv_all in
//     socket_transport.cpp) encodes/decodes one frame at a time;
//   * the epoll reactor (net/reactor.hpp) pumps non-blocking fds through
//     FrameReader (incremental parse across partial reads) and SendQueue
//     (buffered partial writes, scatter/gather flush: a kHit header and its
//     sample payload leave in one sendmsg).
//
// DESIGN.md Sec. 7 documents the message exchange on top of these frames.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace nopfs::sim {
struct SimResult;  // sim/sim_config.hpp; wire.cpp holds the codec
}

namespace nopfs::net::wire {

inline constexpr std::uint32_t kMagic = 0x4E504653u;  // "NPFS"
inline constexpr std::size_t kHeaderBytes = 4 + 1 + 8 + 4;
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;  // 1 GiB sanity cap

/// Protocol revision carried in the rendezvous handshake (kHello leads with
/// it, kWelcome echoes it back).  Bumped whenever a frame's meaning changes
/// — revision 2 replaced the unary kPfsAcquire/kPfsRelease contention
/// frames with batched kPfsDelta; revision 3 made fetch channels pipelined
/// (many in-flight kFetch per connection, replies matched FIFO) and led
/// every dialed channel with a kHello identifying the dialing rank; revision
/// 4 added the sweep-service frames (kSweepPull/kSweepResult/kSweepGrant/
/// kSweepDone) and the SimResult codec they carry; revision 5 made worlds
/// elastic (DESIGN.md Sec. 11): the rendezvous kHello carries max_world so
/// every rank sizes its tables for late joiners, and rank 0 keeps the
/// rendezvous listener open to admit ranks in [world_size, max_world) after
/// the base world is up — so a mixed-version world fails loudly at the
/// handshake instead of misreading frames mid-rollout.  The high bytes
/// spell "NP", so the version field can never be confused with a plausible
/// world size (the field an unversioned peer sends first).
inline constexpr std::uint32_t kProtocolVersion = 0x4E500005u;

enum class MsgType : std::uint8_t {
  kHello = 1,      ///< rank -> rendezvous: arg=rank, payload=[u32 protocol,
                   ///<   u32 world, u16 serve_port, u32 max_world] (rev 5).
                   ///< Also the first frame on every dialed peer channel:
                   ///<   arg=rank, payload=[u32 protocol] (revision 3).
  kWelcome = 2,    ///< rendezvous -> rank: payload=[u32 protocol, endpoint table]
  kGather = 3,     ///< rank -> root: arg=rank, payload = local contribution
  kAllgather = 4,  ///< root -> rank: payload = world_size x [u32 len, bytes]
  kFetch = 5,      ///< requester -> server: arg = sample id
  kHit = 6,        ///< server -> requester: payload = sample bytes
  kMiss = 7,       ///< server -> requester: sample not (yet) cached
  kWatermark = 8,  ///< one-way gossip: arg = position, payload=[u32 rank]
  // PFS contention accounting (DESIGN.md Sec. 7.4): rank 0 hosts the
  // authoritative job-wide active-reader counter.  One kPfsDelta frame
  // carries the NET effect of any number of coalesced acquire/release
  // transitions, each weighted by the rank's local reader-thread fan-out.
  kPfsDelta = 9,  ///< rank -> rank 0: arg = rank, payload = PfsDelta below
  kPfsGamma = 10, ///< rank 0 -> everyone: payload = PfsGamma below
  // Type 11 is permanently retired (it was kPfsGamma before the delta
  // protocol and decoding it must keep failing loudly), so the sweep
  // service starts at 12.  Sweep frames ride the per-peer fetch channel to
  // rank 0 (DESIGN.md Sec. 10): a worker pulls a cell range, rank 0 replies
  // with a grant (or done), and completed ranges stream back one-way.
  kSweepPull = 12,    ///< worker -> rank 0: arg = rank, payload = SweepPull
  kSweepResult = 13,  ///< worker -> rank 0: arg = rank,
                      ///<   payload = SweepResultBatch
  kSweepGrant = 14,   ///< rank 0 -> worker: reply to kSweepPull,
                      ///<   payload = SweepGrant
  kSweepDone = 15,    ///< rank 0 -> worker: reply to kSweepPull when the
                      ///<   grid is drained (or interrupted), payload =
                      ///<   SweepDone — the worker stops pulling
};

/// Payload of kPfsDelta: the sender's net reader-count change since its
/// previous frame, plus a per-sender sequence number (monotone across
/// redials) so rank 0 can drop duplicated or reordered frames defensively.
struct PfsDelta {
  std::int32_t reader_delta = 0;
  std::uint32_t seq = 0;
};

/// Payload of kPfsGamma: the authoritative job-wide active-reader count and
/// rank 0's broadcast sequence number (a receiver ignores anything at or
/// below the last seq it applied).
struct PfsGamma {
  std::int32_t gamma = 0;
  std::uint32_t seq = 0;
};

/// Payload of kSweepPull: an idle worker asking rank 0 for its next cell
/// range.  `seq` is monotone per sender (same defensive discipline as
/// PfsDelta) so a duplicated or reordered pull is dropped, never re-granted.
struct SweepPull {
  std::uint32_t seq = 0;
};

/// Payload of kSweepGrant: a contiguous cell range [first, first + count).
/// `seq` echoes the pull being answered.
struct SweepGrant {
  std::uint32_t seq = 0;
  std::uint64_t first = 0;
  std::uint32_t count = 0;
};

/// Payload of kSweepDone: the grid is drained (or the sweep was
/// interrupted); the receiving worker stops pulling and enters the final
/// barrier.  `seq` echoes the pull being answered.
struct SweepDone {
  std::uint32_t seq = 0;
};

/// Payload of kSweepResult: the results for a completed contiguous range,
/// ordered by flat cell index starting at `first`.  Results are pure
/// functions of the cell, so rank 0 folds a duplicate batch idempotently.
struct SweepResultBatch {
  std::uint32_t seq = 0;
  std::uint64_t first = 0;
  std::vector<sim::SimResult> results;
};

struct FrameHeader {
  MsgType type = MsgType::kMiss;
  std::uint64_t arg = 0;
  std::uint32_t payload_len = 0;
};

// --- byte-explicit integer packing -----------------------------------------

inline void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  // Two's-complement bit pattern, little-endian (mirrors Reader::i32).
  const auto bits = static_cast<std::uint32_t>(v);
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((bits >> shift) & 0xff));
  }
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
  }
}

/// Packs a double by bit pattern (both ends are IEEE-754 here; the byte
/// order is still made explicit so the wire format has one definition).
void put_f64(std::vector<std::uint8_t>& out, double v);

/// Bounds-checked cursor over a received payload.  Throws std::runtime_error
/// on under-run — a malformed frame must never read past the buffer.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::uint8_t>& buf)
      : Reader(buf.data(), buf.size()) {}

  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::int32_t i32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t n);
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- frame header ----------------------------------------------------------

/// Serializes a frame header into exactly kHeaderBytes.
void encode_header(std::uint8_t (&out)[kHeaderBytes], MsgType type,
                   std::uint64_t arg, std::uint32_t payload_len);

/// Parses and validates a frame header (magic, payload bound).  Throws
/// std::runtime_error on a malformed header.
[[nodiscard]] FrameHeader decode_header(const std::uint8_t (&in)[kHeaderBytes]);

// --- contention frame payloads ---------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_pfs_delta(const PfsDelta& delta);
[[nodiscard]] PfsDelta decode_pfs_delta(const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_pfs_gamma(const PfsGamma& gamma);
[[nodiscard]] PfsGamma decode_pfs_gamma(const std::vector<std::uint8_t>& payload);

// --- sweep-service frame payloads (DESIGN.md Sec. 10) -----------------------

[[nodiscard]] std::vector<std::uint8_t> encode_sweep_pull(const SweepPull& pull);
[[nodiscard]] SweepPull decode_sweep_pull(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_sweep_grant(
    const SweepGrant& grant);
[[nodiscard]] SweepGrant decode_sweep_grant(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_sweep_done(const SweepDone& done);
[[nodiscard]] SweepDone decode_sweep_done(
    const std::vector<std::uint8_t>& payload);

[[nodiscard]] std::vector<std::uint8_t> encode_sweep_result_batch(
    const SweepResultBatch& batch);
[[nodiscard]] SweepResultBatch decode_sweep_result_batch(
    const std::vector<std::uint8_t>& payload);

/// Field-by-field SimResult serialization: strings as u32 length + bytes,
/// double vectors as u64 length + f64s, every double by IEEE-754 bit
/// pattern — two ranks (or a checkpoint round trip) reproduce the struct
/// bit-for-bit, which is what lets the deterministic-ordering contract
/// survive distribution and resume.
void put_sim_result(std::vector<std::uint8_t>& out,
                    const sim::SimResult& result);
[[nodiscard]] sim::SimResult read_sim_result(Reader& reader);

[[nodiscard]] std::vector<std::uint8_t> encode_sim_result(
    const sim::SimResult& result);
[[nodiscard]] sim::SimResult decode_sim_result(
    const std::vector<std::uint8_t>& payload);

// --- non-blocking frame I/O ------------------------------------------------

/// Result of pumping a non-blocking fd: made bounded progress (more may be
/// pending — level-triggered epoll will refire), drained the fd until it
/// would block, or hit clean EOF.
enum class IoStatus { kDone, kWouldBlock, kEof };

/// One fully parsed inbound frame.
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Incremental frame parser for a non-blocking socket.  fill_from() reads
/// whatever the fd has (header and payload boundaries land anywhere — a
/// 17-byte header can arrive one byte at a time, a payload across many
/// reads) and completed frames queue up behind has_frame()/pop_frame().
/// Large payload remainders are read straight into the payload buffer so a
/// multi-megabyte sample costs no extra copy.
class FrameReader {
 public:
  /// Per-call read budget: one session cannot starve the rest of the loop.
  static constexpr std::size_t kDefaultReadBudget = 4u << 20;

  /// Pumps bytes from `fd` until it would block, reaches EOF, or roughly
  /// `max_bytes` have been consumed.  Throws std::runtime_error on a
  /// malformed frame or a socket error (EINTR is retried internally).
  IoStatus fill_from(int fd, std::size_t max_bytes = kDefaultReadBudget);

  [[nodiscard]] bool has_frame() const noexcept { return !ready_.empty(); }
  [[nodiscard]] Frame pop_frame();

  /// True when the stream stopped mid-frame — an EOF here means the peer
  /// died mid-send rather than closing cleanly between frames.
  [[nodiscard]] bool mid_frame() const noexcept {
    return header_have_ > 0 || have_header_;
  }

 private:
  void dispense();
  void finish_if_complete();

  std::deque<Frame> ready_;
  std::uint8_t header_buf_[kHeaderBytes] = {};
  std::size_t header_have_ = 0;
  bool have_header_ = false;
  FrameHeader header_;
  std::vector<std::uint8_t> payload_;
  std::size_t payload_have_ = 0;
  std::uint8_t scratch_[64 * 1024];
  std::size_t scratch_pos_ = 0;
  std::size_t scratch_len_ = 0;
};

/// Outbound frame queue for a non-blocking socket.  push() stages a frame
/// (header encoded in place, payload moved in — never copied); flush()
/// writes as much as the socket accepts with one sendmsg() per batch,
/// gathering up to the configured iovec cap so a kHit header and its sample
/// payload — and any frames queued behind them — leave in one syscall.
/// Partial writes persist as a byte offset into the front frame.
class SendQueue {
 public:
  /// Default gather cap in iovecs per sendmsg (a frame is a header iovec
  /// plus, when non-empty, a payload iovec — so ~32 small frames a batch).
  static constexpr std::size_t kDefaultMaxFlushIov = 32;
  /// Hard ceiling for set_max_flush_iov (stack-allocated iovec array; also
  /// comfortably below the kernel's UIO_MAXIOV).
  static constexpr std::size_t kMaxFlushIovCap = 256;

  /// Re-tunes the gather cap (SocketOptions::send_gather_iovs — backend A/B
  /// sweeps); clamped to [2, kMaxFlushIovCap].
  void set_max_flush_iov(std::size_t cap) noexcept;

  void push(MsgType type, std::uint64_t arg, std::vector<std::uint8_t> payload);
  void push(MsgType type, std::uint64_t arg, const std::uint8_t* payload,
            std::size_t len);

  /// Returns kDone when the queue emptied, kWouldBlock when the socket
  /// stopped accepting bytes (re-arm EPOLLOUT).  Throws std::runtime_error
  /// on a socket error; SIGPIPE is suppressed (MSG_NOSIGNAL).
  IoStatus flush(int fd);

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t pending_bytes() const noexcept { return bytes_; }

 private:
  struct Entry {
    std::uint8_t header[kHeaderBytes];
    std::vector<std::uint8_t> payload;
  };

  std::deque<Entry> entries_;
  std::size_t front_offset_ = 0;  // bytes of the front entry already sent
  std::size_t bytes_ = 0;
  std::size_t max_flush_iov_ = kDefaultMaxFlushIov;
};

}  // namespace nopfs::net::wire
