#pragma once
// SocketTransport: the real multi-process Transport backend.
//
// Where SimTransport emulates MPI with threads in one process,
// SocketTransport implements the same surface over TCP/loopback so every
// rank can be its own OS process (examples/nopfs_worker.cpp is the per-rank
// binary; runtime::run_distributed drives it).  The design mirrors a small
// MPI-over-sockets runtime:
//
//   * Rendezvous: rank 0 listens on a well-known host:port; ranks 1..N-1
//     connect, introduce themselves (kHello: rank + the ephemeral port of
//     their serve listener) and receive the full endpoint table back
//     (kWelcome).  The control connections stay open and carry collectives.
//   * Collectives: gather-to-root + broadcast.  Non-roots send kGather on
//     their control connection and block on the kAllgather reply; the root
//     reads one kGather per peer (TCP keeps per-connection FIFO order, and
//     the Transport contract requires all ranks to issue collectives in the
//     same sequence, so no generation tags are needed).
//   * Serving (DESIGN.md Sec. 7.5/7.6): all socket I/O — accepted serve
//     connections, dialed peer channels, control connections, rendezvous —
//     runs on ONE reactor thread (net/reactor.hpp; epoll or io_uring per
//     SocketOptions::reactor_backend) as non-blocking per-peer Session
//     state machines.  The process's thread count is reactor + gossip
//     regardless of world size.  Fetch is pipelined:
//     fetch_sample_start() enqueues a kFetch and returns a ticket,
//     fetch_sample_finish() parks on it, and replies match tickets FIFO
//     because the serve side answers one connection's requests in order.
//   * Time charging: byte-for-byte the SimTransport rules — a successful
//     fetch charges the server's emulated NIC as it serves and the
//     requester's NIC as it receives, so a run is priced identically no
//     matter which backend carries it (DESIGN.md Sec. 7).  The serve side
//     prices its NIC with a non-blocking reservation
//     (NicDevice::reserve_transfer) and a reactor timer instead of
//     blocking the loop.
//   * PFS contention accounting (DESIGN.md Sec. 7.4): rank 0 hosts the
//     authoritative job-wide active-reader counter.  Reader threads only
//     ENQUEUE their weighted transitions (pfs_adjust); a dedicated gossip
//     thread drains the queue as one net kPfsDelta frame per flush window
//     (GossipConfig: bounded interval in virtual time + max batch) on the
//     fetch channel to rank 0.  Rank 0 folds deltas under its counter lock
//     and broadcasts coalesced kPfsGamma updates on the same per-peer
//     channels the watermarks ride.  net::SharedPfs consumes this surface
//     to retune its token bucket.  Teardown flushes queued deltas through
//     the reactor and drains every session's send queue before closing, so
//     a cooperative shutdown drains rank 0's counter to zero without the
//     dead-rank cleanup path.
//
// Loopback only today: endpoints are exchanged as IPv4 addresses, so
// spanning real nodes needs nothing new on the wire, just reachable
// addresses.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/reactor.hpp"
#include "net/transport.hpp"
#include "tiers/device_iface.hpp"

namespace nopfs::net::wire {
struct PfsGamma;
struct Frame;
enum class MsgType : std::uint8_t;
}

namespace nopfs::net {

struct SocketOptions {
  int rank = 0;
  int world_size = 1;
  /// Elastic worlds (DESIGN.md Sec. 11): highest rank count this world may
  /// ever grow to.  0 (the default) means the world is fixed at world_size.
  /// When > world_size, rank 0 keeps the rendezvous listener open after
  /// the base world is up and admits LATE JOINERS — ranks in
  /// [world_size, max_world) — which handshake exactly like base peers but
  /// are not waited for and never participate in collectives (they serve
  /// the pull-model sweep, gamma gossip, and sample fetches only).  Every
  /// rank of the world, joiners included, must agree on max_world: the
  /// rendezvous hello carries it and mismatches fail the handshake.
  int max_world = 0;
  /// Rendezvous address rank 0 listens on and every other rank dials.
  std::string rendezvous_host = "127.0.0.1";
  std::uint16_t rendezvous_port = 0;  ///< must be nonzero
  /// Wall-clock budget for the handshake and for any single blocking
  /// socket operation; expiry throws rather than hanging a CI job.
  double timeout_s = 120.0;
  /// Optional emulated NIC: transfers are charged through it exactly as
  /// SimTransport charges them.  May be null (untimed, bytes still counted).
  tiers::NicDevice* nic = nullptr;
  /// Contention-gossip batching.  The raw-transport default (flush 0)
  /// sends every transition synchronously — the unary-equivalence mode
  /// wire-level tests and the acquire/release cycle bench rely on; the
  /// harness passes its RuntimeConfig::pfs_gossip shape for batched worlds.
  GossipConfig gossip{0.0, 128};
  /// Virtual seconds per real second: converts gossip.flush_virtual_s to a
  /// real flush cadence (matches RuntimeConfig::time_scale in the harness).
  double time_scale = 1.0;
  /// Which event loop carries this transport (DESIGN.md Sec. 7.6).  kAuto
  /// honors the NOPFS_REACTOR environment variable when set, then probes:
  /// io_uring where the kernel grants it, epoll otherwise — the fallback is
  /// silent and recorded via reactor_backend().  An explicit kIoUring (flag
  /// or env) throws where the probe fails rather than degrade unnoticed.
  ReactorBackend reactor_backend = ReactorBackend::kAuto;
  /// Reactor poll batch: events dispatched per loop iteration (historical
  /// epoll events[64]).  0 = default.  Backend A/B sweeps tune these three.
  std::size_t reactor_event_batch = 0;
  /// wire::FrameReader per-event fairness budget in bytes (0 = the 4 MB
  /// default): one session's burst cannot starve the rest of the loop.
  std::size_t read_budget_bytes = 0;
  /// wire::SendQueue gather cap in iovecs per sendmsg (0 = the default 32;
  /// a frame is up to two iovecs).
  std::size_t send_gather_iovs = 0;
};

class SocketTransport final : public Transport {
 public:
  /// Blocks until the whole world has completed the rendezvous handshake.
  /// Throws std::runtime_error on timeout or a malformed peer.
  explicit SocketTransport(const SocketOptions& options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] int rank() const override { return options_.rank; }
  [[nodiscard]] int world_size() const override { return options_.world_size; }

  std::vector<Bytes> allgather(Bytes local) override;
  void barrier() override;

  void set_serve_handler(ServeHandler handler) override;
  std::optional<Bytes> fetch_sample(int peer, std::uint64_t id) override;

  // --- pipelined fetch -----------------------------------------------------
  // fetch_sample() == fetch_sample_start() + fetch_sample_finish().  Splitting
  // the pair lets a caller keep dozens of kFetch frames in flight on one
  // connection; the serve side answers a connection's requests in order, so
  // replies resolve tickets FIFO.
  struct PendingFetch;
  using FetchTicket = std::shared_ptr<PendingFetch>;

  /// Enqueues a kFetch to `peer` and returns immediately.  Throws
  /// std::invalid_argument for self or an out-of-range peer (same contract
  /// as fetch_sample).
  [[nodiscard]] FetchTicket fetch_sample_start(int peer, std::uint64_t id);

  /// Parks until the ticket resolves (reply, dead peer, or timeout — the
  /// latter two are recorded misses).  Charges the requester's NIC on a hit.
  std::optional<Bytes> fetch_sample_finish(const FetchTicket& ticket);

  int pfs_adjust(int delta) override;
  void set_pfs_listener(PfsListener listener) override;

  // --- sweep service (DESIGN.md Sec. 10) -----------------------------------
  // Sweep frames ride the per-peer fetch channel to rank 0 and share its
  // FIFO ticket discipline: a kSweepPull enqueues a ticket exactly like a
  // kFetch, and the rank-0 serve side answers a connection's requests in
  // order, so kSweepGrant/kSweepDone replies pair with their pulls without
  // any request ids.  kSweepResult is one-way (no ticket); TCP keeps it
  // ahead of the sender's next pull.
  void set_sweep_service(SweepService service) override;
  std::optional<std::pair<bool, Bytes>> sweep_pull(Bytes pull) override;
  void sweep_push_result(Bytes batch) override;

  void publish_watermark(std::uint64_t position) override;
  [[nodiscard]] std::uint64_t watermark_of(int peer) const override;

  [[nodiscard]] double transferred_mb() const override;

  /// Port of this rank's serve listener (diagnostics / tests).
  [[nodiscard]] std::uint16_t serve_port() const noexcept { return serve_port_; }

  /// The backend that actually carries this transport ("epoll" or
  /// "io_uring") — under kAuto this records which way the runtime probe
  /// resolved; RuntimeResult carries it into worker reports.
  [[nodiscard]] const char* reactor_backend() const noexcept override {
    return reactor_backend_name_;
  }

  /// Drains any queued contention deltas (and, on rank 0, any pending
  /// coalesced gamma broadcast) right now, ahead of the flush cadence.
  /// Tests use it to make batched-mode assertions deterministic; teardown
  /// calls it so cooperative shutdown never drops a queued release.
  void flush_pfs_gossip();

 private:
  /// Ranks this world may ever hold: world_size for fixed worlds, max_world
  /// for elastic ones.  Every per-rank table is sized by this, and every
  /// frame-sender validation bounds against it, so a late joiner's frames
  /// are first-class.
  [[nodiscard]] int total_ranks() const noexcept {
    return std::max(options_.world_size, options_.max_world);
  }
  /// True when this rank is a late joiner (outside the base world): it
  /// skipped the collective-bearing rendezvous wait and must never enter a
  /// collective.
  [[nodiscard]] bool is_joiner() const noexcept {
    return options_.rank >= options_.world_size;
  }

  struct PeerEndpoint {
    std::uint32_t ipv4 = 0;  ///< network byte order
    std::uint16_t port = 0;
  };
  struct Session;  // per-connection state machine (socket_transport.cpp)
  struct Loop;     // reactor-confined state: sessions, collectives, rendezvous
  struct SyncWaiter;

  void rendezvous_as_root();
  void rendezvous_as_peer();
  void check_peer(int peer) const;

  // --- reactor-thread-only helpers (loop_* prefix) -------------------------
  void loop_accept_serve();
  void loop_accept_rendezvous();
  std::shared_ptr<Session> loop_make_session(int fd, int kind, int state);
  void loop_on_session_event(int fd, std::uint32_t events);
  void loop_finish_connect(const std::shared_ptr<Session>& session);
  void loop_dispatch_frame(const std::shared_ptr<Session>& session,
                           wire::Frame frame);
  void loop_rendezvous_hello(const std::shared_ptr<Session>& session,
                             wire::Frame frame);
  void loop_serve_frame(const std::shared_ptr<Session>& session,
                        wire::Frame frame);
  void loop_channel_reply(const std::shared_ptr<Session>& session,
                          wire::Frame frame);
  void loop_control_frame(const std::shared_ptr<Session>& session,
                          wire::Frame frame);
  /// Queues a serve reply, honoring a NIC reservation delay: delayed replies
  /// sit in a per-session FIFO released by a reactor timer, and anything
  /// behind a delayed reply waits for it — reply order must match request
  /// order or pipelined tickets would mis-pair.
  void loop_enqueue_reply(const std::shared_ptr<Session>& session,
                          wire::MsgType type, std::uint64_t arg, Bytes payload,
                          double delay_s);
  void loop_arm_delayed_timer(const std::shared_ptr<Session>& session);
  /// Channel to `peer`, dialing (non-blocking) on first use.  Returns null
  /// if the peer is unreachable or the transport is draining.
  std::shared_ptr<Session> loop_channel(int peer);
  void loop_mark_dirty(const std::shared_ptr<Session>& session);
  void loop_flush_dirty();
  void loop_flush_session(const std::shared_ptr<Session>& session);
  void loop_close_session(const std::shared_ptr<Session>& session);
  void loop_fail_rendezvous(const std::string& error);
  void loop_begin_root_gather(const std::shared_ptr<SyncWaiter>& waiter,
                              Bytes local);
  void loop_begin_peer_gather(const std::shared_ptr<SyncWaiter>& waiter,
                              Bytes local);
  void loop_finish_root_gather();
  void loop_begin_drain(const std::shared_ptr<SyncWaiter>& waiter);
  void loop_check_drained();

  /// Rank-0 side of the contention protocol: folds `delta` into `rank`'s
  /// reader-count contribution under pfs_mutex_, recomputes the
  /// authoritative gamma, optionally notifies the local listener and queues
  /// (or, in unary mode, posts) the kPfsGamma broadcast.  Returns the new
  /// gamma.  `conn_tag` identifies the serve session the frame arrived
  /// on (null for rank 0's own transitions); it is recorded as the rank's
  /// owner while the contribution is nonzero so the disconnect cleanup can
  /// tell a stale connection's orphan from live deltas on a redialed
  /// channel.
  /// `seq` is the sender's frame sequence (0 for rank 0's own transitions,
  /// which need no duplicate guard).
  int pfs_root_fold(int rank, int delta, bool notify_local,
                    const void* conn_tag = nullptr, std::uint32_t seq = 0);
  /// The fold body (contribution update, gamma recompute, listener,
  /// broadcast-or-queue).  Caller must hold pfs_mutex_.
  int pfs_fold_locked(int rank, int delta, bool notify_local,
                      const void* conn_tag);
  /// Rank-0 disconnect cleanup: zeroes `rank`'s contribution iff `conn_tag`
  /// still owns it (a redialed channel's live contribution is left alone).
  void pfs_root_drop_dead_rank(int rank, const void* conn_tag);
  /// Rank-0: posts the broadcast of `gamma_value` to every peer onto the
  /// reactor.  Caller must hold pfs_mutex_; the reactor's FIFO task queue
  /// preserves fold order on the wire (broadcasts are ALWAYS posted, never
  /// sent inline, so seq order can't invert).
  void pfs_broadcast_gamma_locked(int gamma_value);
  /// Rank-0, batched mode: emits the pending coalesced broadcast — the
  /// window's peak first when it exceeds the settle value, so the envelope
  /// survives coalescing.  Caller must hold pfs_mutex_.
  void pfs_emit_pending_broadcast_locked();
  /// Non-root side: applies a kPfsGamma update from rank 0.
  void pfs_apply_gamma(const wire::PfsGamma& update);
  /// Non-root: enqueues a transition for the gossip thread, or flushes it
  /// inline when flush_virtual_s == 0 (unary-equivalence mode).
  void pfs_enqueue_delta(int delta);
  /// Drains the queue as one net kPfsDelta posted to the reactor.
  /// Self-locking: concurrent flushers serialize on pfs_flush_mutex_ across
  /// their posts (so frames reach the channel in seq order) while
  /// gossip_mutex_ is held only for the snapshot — reader threads never
  /// wait on a socket send.
  void pfs_flush_deltas();
  /// The gossip thread: drains the delta queue / pending broadcast at the
  /// configured cadence until teardown.
  void gossip_loop();
  /// Real-seconds flush cadence (gossip.flush_virtual_s / time_scale).
  [[nodiscard]] double flush_interval_s() const noexcept;
  /// Flushes gossip, drains every session's send queue on the reactor,
  /// stops the reactor, closes what's left.  Used by both the destructor
  /// and constructor failure cleanup.
  void teardown();

  SocketOptions options_;

  // The reactor and its confined state (Loop).  loop_ members are touched
  // only on the reactor thread while it runs; the constructor fills them in
  // before start() and teardown reads them after stop() joins.
  std::unique_ptr<Reactor> reactor_;
  std::unique_ptr<Loop> loop_;

  const char* reactor_backend_name_ = "none";  // static-literal, copy-safe
  int serve_listener_fd_ = -1;
  std::uint16_t serve_port_ = 0;
  int rendezvous_listener_fd_ = -1;
  std::atomic<bool> stopping_{false};

  std::mutex handler_mutex_;
  ServeHandler handler_;

  std::mutex sweep_mutex_;  // guards sweep_service_ (install/withdraw fence)
  SweepService sweep_service_;

  std::mutex collective_mutex_;  // collectives are one-at-a-time
  std::vector<PeerEndpoint> endpoints_;

  std::vector<std::atomic<std::uint64_t>> watermarks_;
  std::atomic<double> transferred_mb_no_nic_{0.0};

  // PFS contention state.  pfs_mutex_ orders every gamma change and is held
  // across the kPfsGamma broadcast POST (so peers never see updates out of
  // order) and across listener invocation (so set_pfs_listener({}) fences).
  // Lock order: pfs_mutex_ and gossip_mutex_ are never held together; the
  // reactor thread takes pfs_mutex_ (folds) and handler_mutex_ (serves) but
  // never blocks on a caller, so no cycle can form.
  std::mutex pfs_mutex_;
  std::vector<int> pfs_readers_;  ///< rank 0 only: per-rank reader count
  /// Rank 0 only: the serve session that last carried each rank's
  /// deltas while its contribution is nonzero (null = idle) — lets the
  /// disconnect cleanup skip ranks whose deltas moved to a newer channel.
  std::vector<const void*> pfs_owner_;
  std::vector<std::uint32_t> pfs_rank_seq_;  ///< rank 0: last applied delta seq
  int pfs_gamma_ = 0;             ///< authoritative (rank 0) / estimate (others)
  int pfs_local_readers_ = 0;     ///< this rank's own net contribution
  std::uint32_t pfs_gamma_seq_ = 0;       ///< rank 0: broadcast seq (sent)
  std::uint32_t pfs_gamma_seen_ = 0;      ///< non-root: last applied broadcast
  bool pfs_broadcast_pending_ = false;    ///< rank 0, batched mode
  /// Rank 0, batched mode: highest gamma folded since the last broadcast.
  /// A coalesced broadcast whose window saw a higher transient emits the
  /// peak first, then the settle value — so the gamma ENVELOPE survives
  /// coalescing, not just the endpoint (tests pin envelope parity).
  int pfs_broadcast_peak_ = 0;
  PfsListener pfs_listener_;

  // The gossip queue (non-root deltas; rank 0 reuses only the thread, for
  // coalesced broadcasts).  Reader threads append under gossip_mutex_ and
  // return; gossip_thread_ drains at the flush cadence.  pfs_flush_mutex_
  // serializes flushers across their posts (seq order on the channel);
  // lock order: pfs_flush_mutex_ before gossip_mutex_.
  std::mutex pfs_flush_mutex_;
  std::mutex gossip_mutex_;
  std::condition_variable gossip_cv_;
  std::thread gossip_thread_;
  int pending_delta_ = 0;         ///< net queued reader-count change
  /// Highest prefix sum the queued transitions reached: the rank's peak
  /// contribution within the window, relative to its last-flushed value.
  /// A flush whose peak exceeds the net sends the peak first, then the
  /// correction down to the net, so a brief acquire/release pair inside
  /// one window still registers on rank 0's counter trajectory instead of
  /// silently coalescing to nothing.
  int pending_max_prefix_ = 0;
  int pending_transitions_ = 0;   ///< transitions coalesced into it
  std::uint32_t delta_seq_ = 0;   ///< non-root: kPfsDelta frames sent
  bool gossip_stop_ = false;
};

/// Reserves an OS-assigned free loopback port and releases it immediately:
/// the caller hands it to a SocketTransport world (tests, process spawners).
/// The tiny release-to-bind window is harmless on loopback.
[[nodiscard]] std::uint16_t pick_free_port();

}  // namespace nopfs::net
