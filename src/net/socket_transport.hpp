#pragma once
// SocketTransport: the real multi-process Transport backend.
//
// Where SimTransport emulates MPI with threads in one process,
// SocketTransport implements the same surface over TCP/loopback so every
// rank can be its own OS process (examples/nopfs_worker.cpp is the per-rank
// binary; runtime::run_distributed drives it).  The design mirrors a small
// MPI-over-sockets runtime:
//
//   * Rendezvous: rank 0 listens on a well-known host:port; ranks 1..N-1
//     connect, introduce themselves (kHello: rank + the ephemeral port of
//     their serve listener) and receive the full endpoint table back
//     (kWelcome).  The control connections stay open and carry collectives.
//   * Collectives: gather-to-root + broadcast.  Non-roots send kGather on
//     their control connection and block on the kAllgather reply; the root
//     reads one kGather per peer (TCP keeps per-connection FIFO order, and
//     the Transport contract requires all ranks to issue collectives in the
//     same sequence, so no generation tags are needed).
//   * Serving: every rank runs a serve listener + acceptor thread; each
//     peer connection gets a reader thread answering kFetch with kHit/kMiss
//     through the installed serve handler, and applying kWatermark gossip.
//   * Time charging: byte-for-byte the SimTransport rules — a successful
//     fetch charges the server's emulated NIC as it serves and the
//     requester's NIC as it receives, so a run is priced identically no
//     matter which backend carries it (DESIGN.md Sec. 7).
//   * PFS contention accounting (DESIGN.md Sec. 7.4): rank 0 hosts the
//     authoritative job-wide active-reader counter.  Ranks send
//     kPfsAcquire/kPfsRelease on their fetch channel to rank 0 when their
//     local PFS activity transitions; rank 0 broadcasts the new gamma as
//     kPfsGamma gossip on the same per-peer channels the watermarks ride.
//     net::SharedPfs consumes this surface to retune its token bucket.
//
// Loopback only today: endpoints are exchanged as IPv4 addresses, so
// spanning real nodes needs nothing new on the wire, just reachable
// addresses.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "tiers/device_iface.hpp"

namespace nopfs::net {

struct SocketOptions {
  int rank = 0;
  int world_size = 1;
  /// Rendezvous address rank 0 listens on and every other rank dials.
  std::string rendezvous_host = "127.0.0.1";
  std::uint16_t rendezvous_port = 0;  ///< must be nonzero
  /// Wall-clock budget for the handshake and for any single blocking
  /// socket operation; expiry throws rather than hanging a CI job.
  double timeout_s = 120.0;
  /// Optional emulated NIC: transfers are charged through it exactly as
  /// SimTransport charges them.  May be null (untimed, bytes still counted).
  tiers::NicDevice* nic = nullptr;
};

class SocketTransport final : public Transport {
 public:
  /// Blocks until the whole world has completed the rendezvous handshake.
  /// Throws std::runtime_error on timeout or a malformed peer.
  explicit SocketTransport(const SocketOptions& options);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  [[nodiscard]] int rank() const override { return options_.rank; }
  [[nodiscard]] int world_size() const override { return options_.world_size; }

  std::vector<Bytes> allgather(Bytes local) override;
  void barrier() override;

  void set_serve_handler(ServeHandler handler) override;
  std::optional<Bytes> fetch_sample(int peer, std::uint64_t id) override;

  int pfs_adjust(int delta) override;
  void set_pfs_listener(PfsListener listener) override;

  void publish_watermark(std::uint64_t position) override;
  [[nodiscard]] std::uint64_t watermark_of(int peer) const override;

  [[nodiscard]] double transferred_mb() const override;

  /// Port of this rank's serve listener (diagnostics / tests).
  [[nodiscard]] std::uint16_t serve_port() const noexcept { return serve_port_; }

 private:
  struct PeerEndpoint {
    std::uint32_t ipv4 = 0;  ///< network byte order
    std::uint16_t port = 0;
  };
  class Conn;  // RAII socket with framed send/receive (socket_transport.cpp)

  void rendezvous_as_root();
  void rendezvous_as_peer();
  void serve_accept_loop();
  void serve_connection(std::shared_ptr<Conn> conn);
  /// Control-channel connection to `peer`'s serve listener, dialing on
  /// first use.  Returns null (a recorded miss) if the peer is gone.
  [[nodiscard]] Conn* peer_channel_locked(int peer);
  void check_peer(int peer) const;
  /// Rank-0 side of the contention protocol: records `rank`'s PFS activity,
  /// recomputes the authoritative gamma, notifies the local listener and
  /// broadcasts kPfsGamma to every peer.  Returns the new gamma.
  /// `conn_tag` identifies the serve connection the frame arrived on (null
  /// for rank 0's own transitions); an acquire records it as the rank's
  /// owner so the disconnect cleanup can tell a stale connection's orphan
  /// from a live acquire made on a redialed channel.  `require_owner`
  /// makes the call a no-op unless the tag still owns the rank's acquire.
  int pfs_root_set_active(int rank, bool active, bool notify_local,
                          const void* conn_tag = nullptr,
                          bool require_owner = false);
  /// Non-root side: applies a kPfsGamma update from rank 0.
  void pfs_apply_gamma(int gamma);
  /// Stops the serve side, closes every connection, joins all threads.
  /// Used by both the destructor and constructor failure cleanup.
  void teardown();

  SocketOptions options_;

  // Serve side.
  int serve_listener_fd_ = -1;
  std::uint16_t serve_port_ = 0;
  std::thread acceptor_;
  std::mutex serve_conns_mutex_;
  std::vector<std::shared_ptr<Conn>> serve_conns_;
  std::vector<std::thread> serve_threads_;
  std::atomic<bool> stopping_{false};

  std::mutex handler_mutex_;
  ServeHandler handler_;

  // Rendezvous / collectives.
  std::unique_ptr<Conn> control_;               // rank>0: connection to root
  std::vector<std::unique_ptr<Conn>> control_peers_;  // root: one per rank>0
  std::mutex collective_mutex_;                 // collectives are one-at-a-time
  std::vector<PeerEndpoint> endpoints_;

  // Fetch channels, dialed lazily, one per peer, serialized per peer.
  std::vector<std::unique_ptr<Conn>> channels_;
  std::vector<std::unique_ptr<std::mutex>> channel_mutexes_;

  std::vector<std::atomic<std::uint64_t>> watermarks_;
  std::atomic<double> transferred_mb_no_nic_{0.0};

  // PFS contention state.  pfs_mutex_ orders every gamma change and is held
  // across the kPfsGamma broadcast (so peers never see updates out of
  // order) and across listener invocation (so set_pfs_listener({}) fences).
  // Lock order: pfs_mutex_ before channel mutexes, never the reverse.
  std::mutex pfs_mutex_;
  std::vector<char> pfs_active_;  ///< rank 0 only: per-rank activity
  /// Rank 0 only: the serve connection holding each rank's outstanding
  /// acquire (null = none) — lets the disconnect cleanup skip ranks that
  /// re-acquired on a newer channel.
  std::vector<const void*> pfs_owner_;
  int pfs_gamma_ = 0;             ///< authoritative (rank 0) / estimate (others)
  PfsListener pfs_listener_;
};

/// Reserves an OS-assigned free loopback port and releases it immediately:
/// the caller hands it to a SocketTransport world (tests, process spawners).
/// The tiny release-to-bind window is harmless on loopback.
[[nodiscard]] std::uint16_t pick_free_port();

}  // namespace nopfs::net
