#include "net/sim_transport.hpp"

#include <stdexcept>

#include "tiers/devices.hpp"
#include "util/units.hpp"

namespace nopfs::net {

SimFabric::SimFabric(int world_size) : world_size_(world_size) {
  if (world_size <= 0) throw std::invalid_argument("SimFabric: world_size must be > 0");
  gather_slots_.resize(static_cast<std::size_t>(world_size));
  handlers_.resize(static_cast<std::size_t>(world_size));
  serve_mutexes_.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    serve_mutexes_.push_back(std::make_unique<std::mutex>());
  }
  watermarks_ = std::vector<std::atomic<std::uint64_t>>(static_cast<std::size_t>(world_size));
  for (auto& w : watermarks_) w.store(0, std::memory_order_relaxed);
  nics_.resize(static_cast<std::size_t>(world_size), nullptr);
  pfs_readers_.resize(static_cast<std::size_t>(world_size), 0);
  pfs_listeners_.resize(static_cast<std::size_t>(world_size));
}

SimTransport::SimTransport(std::shared_ptr<SimFabric> fabric, int rank,
                           tiers::NicDevice* nic)
    : fabric_(std::move(fabric)), rank_(rank), nic_(nic) {
  if (fabric_ == nullptr) throw std::invalid_argument("SimTransport: null fabric");
  if (rank < 0 || rank >= fabric_->world_size()) {
    throw std::invalid_argument("SimTransport: rank out of range");
  }
  fabric_->nics_[static_cast<std::size_t>(rank)] = nic;
}

int SimTransport::world_size() const { return fabric_->world_size(); }

std::vector<Bytes> SimTransport::allgather(Bytes local) {
  std::unique_lock lock(fabric_->collective_mutex_);
  const std::uint64_t my_generation = fabric_->generation_;
  fabric_->gather_slots_[static_cast<std::size_t>(rank_)] = std::move(local);
  std::shared_ptr<const std::vector<Bytes>> snapshot;
  if (++fabric_->arrived_ == fabric_->world_size()) {
    // Last arriver publishes an immutable snapshot and opens the next
    // generation with fresh slots.
    auto published = std::make_shared<std::vector<Bytes>>();
    published->swap(fabric_->gather_slots_);
    fabric_->gather_slots_.resize(static_cast<std::size_t>(fabric_->world_size()));
    fabric_->published_ = published;
    fabric_->arrived_ = 0;
    ++fabric_->generation_;
    snapshot = std::move(published);
    fabric_->collective_cv_.notify_all();
  } else {
    fabric_->collective_cv_.wait(
        lock, [&] { return fabric_->generation_ != my_generation; });
    snapshot = fabric_->published_;
  }
  lock.unlock();
  return *snapshot;
}

void SimTransport::barrier() { (void)allgather(Bytes{}); }

void SimTransport::set_serve_handler(ServeHandler handler) {
  const std::scoped_lock lock(*fabric_->serve_mutexes_[static_cast<std::size_t>(rank_)]);
  fabric_->handlers_[static_cast<std::size_t>(rank_)] = std::move(handler);
}

std::optional<Bytes> SimTransport::fetch_sample(int peer, std::uint64_t id) {
  if (peer < 0 || peer >= fabric_->world_size()) {
    throw std::invalid_argument("SimTransport: peer out of range");
  }
  if (peer == rank_) {
    throw std::invalid_argument("SimTransport: fetch_sample from self");
  }
  // The peer-side read cost is charged inside the handler (it reads from
  // its own emulated tiers); the wire cost is charged on both NICs.  The
  // peer's serve mutex is held across the call: serves from one peer are
  // serialized (a server loop), and handler teardown cannot race a serve.
  std::optional<Bytes> result;
  {
    const std::scoped_lock lock(
        *fabric_->serve_mutexes_[static_cast<std::size_t>(peer)]);
    const ServeHandler& handler = fabric_->handlers_[static_cast<std::size_t>(peer)];
    if (!handler) return std::nullopt;
    result = handler(id);
  }
  if (result.has_value()) {
    const double mb = util::bytes_to_mb(result->size());
    tiers::NicDevice* peer_nic = fabric_->nics_[static_cast<std::size_t>(peer)];
    if (peer_nic != nullptr) peer_nic->transfer(mb);
    if (nic_ != nullptr) {
      nic_->transfer(mb);
    } else {
      transferred_mb_no_nic_ += mb;
    }
  }
  return result;
}

int SimTransport::pfs_adjust(int delta) {
  const std::scoped_lock lock(fabric_->pfs_mutex_);
  int& readers = fabric_->pfs_readers_[static_cast<std::size_t>(rank_)];
  readers += delta;
  if (readers < 0) readers = 0;  // a release of an idle rank is a no-op
  int gamma = 0;
  for (const int r : fabric_->pfs_readers_) gamma += r;
  // Shared memory makes the "gossip" exact and immediate: every other
  // rank's listener sees the new gamma before this call returns.
  for (int r = 0; r < fabric_->world_size(); ++r) {
    if (r == rank_) continue;
    const Transport::PfsListener& listener =
        fabric_->pfs_listeners_[static_cast<std::size_t>(r)];
    if (listener) listener(gamma);
  }
  return gamma;
}

void SimTransport::set_pfs_listener(PfsListener listener) {
  const std::scoped_lock lock(fabric_->pfs_mutex_);
  fabric_->pfs_listeners_[static_cast<std::size_t>(rank_)] = std::move(listener);
}

void SimTransport::set_sweep_service(SweepService service) {
  if ((service.on_pull || service.on_result) && rank_ != 0) {
    throw std::runtime_error("SimTransport: the sweep service lives on rank 0");
  }
  const std::scoped_lock lock(fabric_->sweep_mutex_);
  fabric_->sweep_service_ = std::move(service);
}

std::optional<std::pair<bool, Bytes>> SimTransport::sweep_pull(Bytes pull) {
  if (rank_ == 0) {
    throw std::runtime_error("SimTransport: rank 0 cannot pull from itself");
  }
  // The emulated RPC: a direct call into rank 0's handler under the fabric
  // sweep mutex (same serve discipline as fetch_sample).
  const std::scoped_lock lock(fabric_->sweep_mutex_);
  if (!fabric_->sweep_service_.on_pull) return std::nullopt;
  return fabric_->sweep_service_.on_pull(rank_, std::move(pull));
}

void SimTransport::sweep_push_result(Bytes batch) {
  if (rank_ == 0) {
    throw std::runtime_error("SimTransport: rank 0 folds results locally");
  }
  const std::scoped_lock lock(fabric_->sweep_mutex_);
  if (fabric_->sweep_service_.on_result) {
    fabric_->sweep_service_.on_result(rank_, std::move(batch));
  }
}

void SimTransport::publish_watermark(std::uint64_t position) {
  fabric_->watermarks_[static_cast<std::size_t>(rank_)].store(position,
                                                              std::memory_order_release);
}

std::uint64_t SimTransport::watermark_of(int peer) const {
  if (peer < 0 || peer >= fabric_->world_size()) {
    throw std::invalid_argument("SimTransport: peer out of range");
  }
  return fabric_->watermarks_[static_cast<std::size_t>(peer)].load(std::memory_order_acquire);
}

double SimTransport::transferred_mb() const {
  if (nic_ != nullptr) return nic_->total_transferred_mb();
  return transferred_mb_no_nic_;
}

std::vector<std::unique_ptr<SimTransport>> make_sim_transports(
    int world_size, tiers::EmulatedCluster* cluster) {
  auto fabric = std::make_shared<SimFabric>(world_size);
  std::vector<std::unique_ptr<SimTransport>> endpoints;
  endpoints.reserve(static_cast<std::size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    tiers::NicDevice* nic =
        cluster != nullptr ? cluster->worker(r).nic.get() : nullptr;
    endpoints.push_back(std::make_unique<SimTransport>(fabric, r, nic));
  }
  return endpoints;
}

}  // namespace nopfs::net
