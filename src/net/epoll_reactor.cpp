// EpollReactor: the level-triggered epoll backend — behavior-identical to
// the original single-loop reactor (DESIGN.md Sec. 7.5), now expressed
// through detail::ReactorCore.  Registrations carry their generation tag in
// epoll_event.data.u64, so the shared dispatch path can drop an event whose
// fd was closed and re-registered within the same epoll_wait batch.

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/reactor_base.hpp"
#include "util/log.hpp"

namespace nopfs::net::detail {

namespace {

// The interface's poll(2) event vocabulary passes through untranslated.
static_assert(kEventIn == EPOLLIN && kEventOut == EPOLLOUT &&
              kEventErr == EPOLLERR && kEventHup == EPOLLHUP);

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("Reactor(epoll): ") + what + ": " +
                           std::strerror(errno));
}

class EpollReactor final : public ReactorCore {
 public:
  explicit EpollReactor(std::size_t event_batch) : events_(event_batch) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) throw_errno("epoll_create1");
    // Registered before start(): no concurrent loop yet, so direct add is
    // safe.
    add_fd(wake_fd(), kEventIn, [this](std::uint32_t) {
      std::uint64_t drained = 0;
      while (::read(wake_fd(), &drained, sizeof(drained)) > 0) {
      }
    });
  }

  ~EpollReactor() override {
    stop();  // before the epoll fd goes away under the loop
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  [[nodiscard]] const char* backend_name() const noexcept override {
    return "epoll";
  }

 protected:
  void backend_add(int fd, std::uint32_t events, std::uint64_t tag) override {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      throw_errno("epoll_ctl(add)");
    }
  }

  std::uint32_t backend_mod(int fd, std::uint32_t events,
                            std::uint64_t old_tag) override {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = old_tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
      throw_errno("epoll_ctl(mod)");
    }
    // The kernel-side registration survives a MOD, so the generation does.
    return static_cast<std::uint32_t>(old_tag >> 32);
  }

  void backend_del(int fd, std::uint64_t) override {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  bool backend_poll(int timeout_ms) override {
    const int n = ::epoll_wait(epoll_fd_, events_.data(),
                               static_cast<int>(events_.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return true;
      util::log_error("Reactor(epoll): epoll_wait: ", std::strerror(errno));
      return false;
    }
    for (int i = 0; i < n; ++i) {
      dispatch_event(events_[static_cast<std::size_t>(i)].data.u64,
                     events_[static_cast<std::size_t>(i)].events);
    }
    return true;
  }

 private:
  int epoll_fd_ = -1;
  std::vector<epoll_event> events_;
};

}  // namespace

std::unique_ptr<Reactor> make_epoll_reactor(std::size_t event_batch) {
  return std::make_unique<EpollReactor>(event_batch);
}

}  // namespace nopfs::net::detail
