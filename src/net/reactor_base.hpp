#pragma once
// detail::ReactorCore — the backend-independent half of a Reactor: the FIFO
// task queue and its eventfd wake, the (when, seq) timer min-heap, the
// iteration hook, and the generation-tagged fd registry whose dispatch path
// drops stale events (an fd closed and re-registered within one event batch
// carries a new generation, so the pending event's old tag no longer
// matches — the fix both backends share; under io_uring a stale completion
// would otherwise be UB-adjacent, not merely a spurious level-triggered
// wakeup).
//
// A backend implements only the kernel-facing surface: registering /
// re-masking / deregistering an fd under a 64-bit tag, and one poll step
// that waits up to a deadline and funnels ready (tag, events) pairs through
// dispatch_event().

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/reactor.hpp"

namespace nopfs::net::detail {

class ReactorCore : public Reactor {
 public:
  ~ReactorCore() override;

  void start() final;
  void stop() final;
  void post(Task task) final;
  void add_fd(int fd, std::uint32_t events, FdHandler handler) final;
  void mod_fd(int fd, std::uint32_t events) final;
  void del_fd(int fd) final;
  void call_later(double delay_s, Task task) final;
  void set_iteration_hook(Task hook) final;

 protected:
  ReactorCore();  // creates the wake eventfd; throws std::runtime_error

  // --- backend surface -----------------------------------------------------
  // `tag` packs (generation << 32) | fd; generations start at 1, so a tag
  // below 2^32 can never collide with a registration (backends reserve that
  // space for internal completions).

  virtual void backend_add(int fd, std::uint32_t events, std::uint64_t tag) = 0;
  /// Re-masks an existing registration.  Returns the generation now in
  /// effect: epoll keeps the registration (and generation) alive across a
  /// EPOLL_CTL_MOD; io_uring replaces the poll (cancel + fresh multishot
  /// arm, which re-checks readiness), so it allocates a new generation via
  /// alloc_generation() — in-flight completions under the old tag then drop
  /// in dispatch_event() instead of racing the cancel.
  virtual std::uint32_t backend_mod(int fd, std::uint32_t events,
                                    std::uint64_t old_tag) = 0;
  virtual void backend_del(int fd, std::uint64_t tag) = 0;
  /// One poll step: waits up to `timeout_ms` (-1 = no deadline, 0 = don't
  /// block) for readiness, dispatching each ready registration through
  /// dispatch_event().  Returns false on a fatal poll error (ends the loop).
  virtual bool backend_poll(int timeout_ms) = 0;

  // --- services for backends ----------------------------------------------

  /// The eventfd post() writes to; backends watch it their own way (epoll
  /// registers it like any fd, io_uring keeps a ring read armed on it).
  [[nodiscard]] int wake_fd() const noexcept { return wake_fd_; }

  [[nodiscard]] static std::uint64_t make_tag(int fd, std::uint32_t gen) noexcept {
    return (static_cast<std::uint64_t>(gen) << 32) |
           static_cast<std::uint32_t>(fd);
  }
  [[nodiscard]] std::uint32_t alloc_generation() noexcept { return ++generation_; }

  /// Generation-checked dispatch: unpacks (fd, gen) from `tag`, drops the
  /// event unless that exact registration is still current, then invokes
  /// the handler through a copied shared_ptr (it may del_fd itself).
  void dispatch_event(std::uint64_t tag, std::uint32_t events);

  /// True while `tag` names the current registration of its fd — backends
  /// use it to re-arm a terminated multishot poll only when still wanted.
  /// `events_out` (optional) receives the registered mask.
  [[nodiscard]] bool still_registered(std::uint64_t tag,
                                      std::uint32_t* events_out = nullptr) const;

 private:
  struct Timer {
    std::chrono::steady_clock::time_point when;
    std::uint64_t seq = 0;  // tie-break: equal deadlines fire in post order
    Task fn;
  };
  struct FdEntry {
    std::uint32_t gen = 0;
    std::uint32_t events = 0;
    std::shared_ptr<FdHandler> handler;
  };

  void run();
  void wake();
  void drain_tasks();
  void fire_due_timers();
  [[nodiscard]] int wait_timeout_ms() const;

  int wake_fd_ = -1;
  std::thread thread_;
  bool stop_requested_ = false;  // loop-thread once running; see stop()

  std::mutex task_mutex_;
  std::vector<Task> tasks_;
  bool stop_posted_ = false;

  // Loop-thread-only state.
  std::unordered_map<int, FdEntry> handlers_;
  std::uint32_t generation_ = 0;
  std::vector<Timer> timers_;  // min-heap on (when, seq)
  std::uint64_t timer_seq_ = 0;
  Task iteration_hook_;
};

/// Backend factories (epoll_reactor.cpp / io_uring_reactor.cpp; the classes
/// themselves are file-local — construct through these or make_reactor()).
[[nodiscard]] std::unique_ptr<Reactor> make_epoll_reactor(std::size_t event_batch);
/// Returns null when the build carries no io_uring backend
/// (NOPFS_WITH_IOURING off); throws when the kernel refuses the ring.
[[nodiscard]] std::unique_ptr<Reactor> make_io_uring_reactor(std::size_t event_batch);

}  // namespace nopfs::net::detail
