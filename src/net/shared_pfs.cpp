#include "net/shared_pfs.hpp"

#include <stdexcept>

namespace nopfs::net {

SharedPfs::SharedPfs(tiers::Clock& clock, const tiers::PfsParams& params,
                     double time_scale, Transport& transport)
    : params_(params),
      time_scale_(time_scale),
      transport_(transport),
      bucket_(clock, params.agg_read_mbps.at(1) * time_scale) {
  transport_.set_pfs_listener([this](int gamma) { on_gamma(gamma); });
}

SharedPfs::~SharedPfs() {
  // Withdrawal fences (Transport contract): after this line no transport
  // thread is inside on_gamma, so the members may be destroyed.
  transport_.set_pfs_listener({});
}

void SharedPfs::set_reader_threads(int worker, int threads) {
  if (worker < 0) throw std::invalid_argument("SharedPfs: negative worker id");
  const std::scoped_lock transition_lock(transition_mutex_);
  const std::scoped_lock lock(mutex_);
  if (local_outstanding_ > 0) {
    throw std::logic_error("SharedPfs: reader weight changed with reads in flight");
  }
  weight_ = threads > 1 ? threads : 1;
}

void SharedPfs::on_gamma(int gamma) {
  const std::scoped_lock lock(mutex_);
  // This process's own activity is ground truth; a transport without
  // contention accounting (pfs_adjust == 0) degrades to per-process gamma.
  const int floor = local_outstanding_ > 0 ? weight_ : 0;
  gamma_ = gamma > floor ? gamma : floor;
  if (gamma_ > peak_gamma_) peak_gamma_ = gamma_;
  const int g = gamma_ > 0 ? gamma_ : 1;
  // Fair share per reader unit, times this rank's weight: gamma ranks'
  // buckets aggregate to t(gamma) no matter how the weights are spread.
  bucket_.set_rate(params_.agg_read_mbps.at(g) / g * weight_ * time_scale_);
}

void SharedPfs::read(int worker, double mb) {
  if (worker < 0) throw std::invalid_argument("SharedPfs: negative worker id");
  // transition_mutex_ keeps the outstanding-count edge and its pfs_adjust
  // on the wire (or in the gossip queue) as one unit: without it, a racing
  // release/acquire pair could invert (T1 computes 1->0, T2 enqueues its
  // +w, then T1's -w lands), leaving this rank marked idle at rank 0 for
  // the rest of T2's read.  It must NOT be mutex_: the transport invokes
  // the gamma listener (-> on_gamma -> mutex_) from its own threads while
  // pfs_adjust blocks.
  {
    const std::scoped_lock transition_lock(transition_mutex_);
    bool transition = false;
    int weight = 1;
    {
      const std::scoped_lock lock(mutex_);
      transition = local_outstanding_++ == 0;
      weight = weight_;
    }
    if (transition) on_gamma(transport_.pfs_adjust(+weight));
  }
  bucket_.acquire(mb);
  {
    const std::scoped_lock transition_lock(transition_mutex_);
    bool transition = false;
    int weight = 1;
    {
      const std::scoped_lock lock(mutex_);
      transition = --local_outstanding_ == 0;
      weight = weight_;
    }
    if (transition) on_gamma(transport_.pfs_adjust(-weight));
  }
}

int SharedPfs::active_clients() const {
  const std::scoped_lock lock(mutex_);
  return gamma_;
}

int SharedPfs::peak_clients() const {
  const std::scoped_lock lock(mutex_);
  return peak_gamma_;
}

}  // namespace nopfs::net
