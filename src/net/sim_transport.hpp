#pragma once
// SimTransport: the single-box substitute for MPI.
//
// Workers are threads in one process sharing a SimFabric.  Remote sample
// fetches are direct calls into the peer's serve handler (an emulated RPC);
// the requester's NIC token bucket charges the transfer at b_c, and the
// peer's tier devices charge the read inside its handler, reproducing the
// paper's fetch cost s_k / min(b_c, r_j(p_j)/p_j) as a store-and-forward
// pipeline.  Collectives use generation-counted barriers.
//
// Substitution note (DESIGN.md Sec. 1): NoPFS's policy logic only needs the
// Transport surface, so swapping SimTransport for an MPI transport does not
// touch any core code.

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.hpp"
#include "tiers/device_iface.hpp"

namespace nopfs::tiers {
class EmulatedCluster;
}

namespace nopfs::net {

/// Shared state connecting all SimTransport endpoints of one job.
class SimFabric {
 public:
  explicit SimFabric(int world_size);

  [[nodiscard]] int world_size() const noexcept { return world_size_; }

 private:
  friend class SimTransport;

  int world_size_;

  // Collectives.  The last arriver of a generation swaps the slots into an
  // immutable published snapshot; waiters read the snapshot, so arrivals of
  // the *next* generation can never race with readers of the previous one
  // (a rank still reading generation g cannot have arrived at g+1, and g+1
  // cannot complete without it).
  std::mutex collective_mutex_;
  std::condition_variable collective_cv_;
  std::vector<Bytes> gather_slots_;
  std::shared_ptr<const std::vector<Bytes>> published_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;

  // Serve handlers and watermarks, one per rank.  Each rank has its own
  // serve mutex, held both while (re)installing the handler and for the
  // duration of a serve call — so clearing the handler (Job teardown)
  // cannot race with an in-flight serve touching freed state.
  std::vector<Transport::ServeHandler> handlers_;
  std::vector<std::unique_ptr<std::mutex>> serve_mutexes_;
  std::vector<std::atomic<std::uint64_t>> watermarks_;

  // Optional NICs (may be null: then transfers are free / untimed).
  std::vector<tiers::NicDevice*> nics_;

  // Job-wide PFS contention accounting: each rank's current reader-count
  // contribution (its reader-thread fan-out while it has a read in flight,
  // 0 while idle), and the per-rank gamma listeners.  Shared memory makes
  // this the exact parity oracle for the batched socket gossip: every
  // pfs_adjust is folded and visible to all listeners before it returns.
  // Listeners are invoked under pfs_mutex_ so withdrawal
  // (set_pfs_listener({})) fences as the Transport contract requires; this
  // cannot deadlock because SharedPfs never holds its own lock across a
  // pfs_adjust call.
  std::mutex pfs_mutex_;
  std::vector<int> pfs_readers_;
  std::vector<Transport::PfsListener> pfs_listeners_;

  // Sweep service (rank 0 only; DESIGN.md Sec. 10).  Same fencing rule as
  // the serve handlers: the mutex is held while (re)installing AND for the
  // duration of a handler call, so withdrawal cannot race an in-flight
  // pull.  Worker ranks call the handlers directly — the emulated RPC.
  std::mutex sweep_mutex_;
  Transport::SweepService sweep_service_;
};

/// One rank's endpoint on a SimFabric.
class SimTransport final : public Transport {
 public:
  /// `nic` may be nullptr for untimed tests.
  SimTransport(std::shared_ptr<SimFabric> fabric, int rank,
               tiers::NicDevice* nic = nullptr);

  [[nodiscard]] int rank() const override { return rank_; }
  [[nodiscard]] int world_size() const override;

  std::vector<Bytes> allgather(Bytes local) override;
  void barrier() override;

  void set_serve_handler(ServeHandler handler) override;
  std::optional<Bytes> fetch_sample(int peer, std::uint64_t id) override;

  int pfs_adjust(int delta) override;
  void set_pfs_listener(PfsListener listener) override;

  void set_sweep_service(SweepService service) override;
  std::optional<std::pair<bool, Bytes>> sweep_pull(Bytes pull) override;
  void sweep_push_result(Bytes batch) override;

  void publish_watermark(std::uint64_t position) override;
  [[nodiscard]] std::uint64_t watermark_of(int peer) const override;

  [[nodiscard]] double transferred_mb() const override;

 private:
  std::shared_ptr<SimFabric> fabric_;
  int rank_;
  tiers::NicDevice* nic_;
  double transferred_mb_no_nic_ = 0.0;
};

/// Creates connected endpoints for ranks 0..world_size-1.
/// `cluster` may be nullptr (untimed transfers).
[[nodiscard]] std::vector<std::unique_ptr<SimTransport>> make_sim_transports(
    int world_size, tiers::EmulatedCluster* cluster = nullptr);

}  // namespace nopfs::net
