// Backend-independent Reactor machinery: detail::ReactorCore (task queue,
// timers, generation-tagged dispatch), the backend name/parse helpers, the
// cached io_uring runtime probe, and make_reactor() — kAuto resolves
// through the probe and falls back to epoll silently; an explicit kIoUring
// throws where the kernel refuses the ring.

#include "net/reactor_base.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/log.hpp"

namespace nopfs::net {

const char* to_string(ReactorBackend backend) noexcept {
  switch (backend) {
    case ReactorBackend::kAuto:
      return "auto";
    case ReactorBackend::kEpoll:
      return "epoll";
    case ReactorBackend::kIoUring:
      return "io_uring";
  }
  return "auto";
}

bool parse_reactor_backend(const std::string& name, ReactorBackend& out) noexcept {
  if (name == "auto") {
    out = ReactorBackend::kAuto;
  } else if (name == "epoll") {
    out = ReactorBackend::kEpoll;
  } else if (name == "io_uring" || name == "uring") {
    out = ReactorBackend::kIoUring;
  } else {
    return false;
  }
  return true;
}

bool io_uring_available() noexcept {
  // One probe per process: availability cannot change underneath us, and
  // make_reactor(kAuto) may be on a rendezvous-handshake path.
  static const bool available = [] {
    try {
      return detail::make_io_uring_reactor(1) != nullptr;
    } catch (const std::exception&) {
      return false;
    }
  }();
  return available;
}

std::unique_ptr<Reactor> make_reactor(ReactorBackend backend,
                                      std::size_t event_batch) {
  event_batch = std::max<std::size_t>(event_batch, 1);
  switch (backend) {
    case ReactorBackend::kEpoll:
      return detail::make_epoll_reactor(event_batch);
    case ReactorBackend::kIoUring: {
      auto reactor = detail::make_io_uring_reactor(event_batch);
      if (reactor == nullptr) {
        throw std::runtime_error(
            "Reactor: io_uring backend not compiled in (NOPFS_WITH_IOURING)");
      }
      return reactor;
    }
    case ReactorBackend::kAuto:
      break;
  }
  if (io_uring_available()) {
    try {
      if (auto reactor = detail::make_io_uring_reactor(event_batch)) {
        return reactor;
      }
    } catch (const std::exception& ex) {
      // The probe passed but this ring failed (e.g. a memlock limit under
      // load): auto means never degrade the run over the backend choice.
      util::log_warn("Reactor: io_uring probe passed but setup failed (",
                     ex.what(), "); falling back to epoll");
    }
  }
  return detail::make_epoll_reactor(event_batch);
}

namespace detail {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("Reactor: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

ReactorCore::ReactorCore() {
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) throw_errno("eventfd");
}

ReactorCore::~ReactorCore() {
  // Backends MUST stop() in their own destructors (the loop thread touches
  // backend state); this catches a backend whose constructor threw before
  // start().
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void ReactorCore::start() {
  thread_ = std::thread([this] { run(); });
}

void ReactorCore::stop() {
  if (!thread_.joinable()) return;
  {
    const std::scoped_lock lock(task_mutex_);
    if (!stop_posted_) {
      stop_posted_ = true;
      tasks_.push_back([this] { stop_requested_ = true; });
    }
  }
  wake();
  thread_.join();
}

void ReactorCore::post(Task task) {
  {
    const std::scoped_lock lock(task_mutex_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void ReactorCore::wake() {
  const std::uint64_t one = 1;
  // The eventfd counter saturating (EAGAIN) still leaves it readable, so a
  // failed write never loses a wakeup.
  [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
}

void ReactorCore::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  FdEntry entry;
  entry.gen = alloc_generation();
  entry.events = events;
  entry.handler = std::make_shared<FdHandler>(std::move(handler));
  backend_add(fd, events, make_tag(fd, entry.gen));
  handlers_[fd] = std::move(entry);
}

void ReactorCore::mod_fd(int fd, std::uint32_t events) {
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    throw std::runtime_error("Reactor: mod_fd on unregistered fd");
  }
  it->second.gen = backend_mod(fd, events, make_tag(fd, it->second.gen));
  it->second.events = events;
}

void ReactorCore::del_fd(int fd) {
  const auto it = handlers_.find(fd);
  if (it == handlers_.end()) return;
  backend_del(fd, make_tag(fd, it->second.gen));
  handlers_.erase(it);
}

void ReactorCore::dispatch_event(std::uint64_t tag, std::uint32_t events) {
  const int fd = static_cast<int>(tag & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(tag >> 32);
  const auto it = handlers_.find(fd);
  // Removed earlier in this batch, or the fd number was recycled into a new
  // registration: the stale event must not reach the new handler.
  if (it == handlers_.end() || it->second.gen != gen) return;
  // Copy the shared_ptr: the handler may del_fd itself mid-call.
  const std::shared_ptr<FdHandler> handler = it->second.handler;
  (*handler)(events);
}

bool ReactorCore::still_registered(std::uint64_t tag,
                                   std::uint32_t* events_out) const {
  const int fd = static_cast<int>(tag & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(tag >> 32);
  const auto it = handlers_.find(fd);
  if (it == handlers_.end() || it->second.gen != gen) return false;
  if (events_out != nullptr) *events_out = it->second.events;
  return true;
}

void ReactorCore::call_later(double delay_s, Task task) {
  Timer timer;
  timer.when = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(std::max(0.0, delay_s)));
  timer.seq = timer_seq_++;
  timer.fn = std::move(task);
  timers_.push_back(std::move(timer));
  std::push_heap(timers_.begin(), timers_.end(),
                 [](const Timer& a, const Timer& b) {
                   return a.when > b.when || (a.when == b.when && a.seq > b.seq);
                 });
}

void ReactorCore::set_iteration_hook(Task hook) {
  iteration_hook_ = std::move(hook);
}

void ReactorCore::drain_tasks() {
  std::vector<Task> batch;
  {
    const std::scoped_lock lock(task_mutex_);
    batch.swap(tasks_);
  }
  for (Task& task : batch) task();
}

void ReactorCore::fire_due_timers() {
  const auto greater = [](const Timer& a, const Timer& b) {
    return a.when > b.when || (a.when == b.when && a.seq > b.seq);
  };
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.front().when <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), greater);
    Task fn = std::move(timers_.back().fn);
    timers_.pop_back();
    fn();
  }
}

int ReactorCore::wait_timeout_ms() const {
  if (timers_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (timers_.front().when <= now) return 0;
  const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                        timers_.front().when - now)
                        .count();
  // +1 rounds up so a timer never spins on a 0ms-but-not-due wait.
  return static_cast<int>(std::min<long long>(wait + 1, 60'000));
}

void ReactorCore::run() {
  for (;;) {
    drain_tasks();
    if (stop_requested_) break;
    fire_due_timers();
    if (iteration_hook_) iteration_hook_();
    if (!backend_poll(wait_timeout_ms())) break;
  }
}

}  // namespace detail
}  // namespace nopfs::net
