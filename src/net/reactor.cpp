#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/log.hpp"

namespace nopfs::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("Reactor: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Reactor::Reactor() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw_errno("eventfd");
  }
  // Registered before start(): no concurrent loop yet, so direct add is safe.
  add_fd(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t drained = 0;
    while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
    }
  });
}

Reactor::~Reactor() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void Reactor::start() {
  thread_ = std::thread([this] { run(); });
}

void Reactor::stop() {
  if (!thread_.joinable()) return;
  {
    const std::scoped_lock lock(task_mutex_);
    if (!stop_posted_) {
      stop_posted_ = true;
      tasks_.push_back([this] { stop_requested_ = true; });
    }
  }
  wake();
  thread_.join();
}

void Reactor::post(Task task) {
  {
    const std::scoped_lock lock(task_mutex_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void Reactor::wake() {
  const std::uint64_t one = 1;
  // The eventfd counter saturating (EAGAIN) still leaves it readable, so a
  // failed write never loses a wakeup.
  [[maybe_unused]] const ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::add_fd(int fd, std::uint32_t events, FdHandler handler) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(add)");
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
}

void Reactor::mod_fd(int fd, std::uint32_t events) {
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    throw_errno("epoll_ctl(mod)");
  }
}

void Reactor::del_fd(int fd) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void Reactor::call_later(double delay_s, Task task) {
  Timer timer;
  timer.when = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(std::max(0.0, delay_s)));
  timer.seq = timer_seq_++;
  timer.fn = std::move(task);
  timers_.push_back(std::move(timer));
  std::push_heap(timers_.begin(), timers_.end(),
                 [](const Timer& a, const Timer& b) {
                   return a.when > b.when || (a.when == b.when && a.seq > b.seq);
                 });
}

void Reactor::set_iteration_hook(Task hook) { iteration_hook_ = std::move(hook); }

void Reactor::drain_tasks() {
  std::vector<Task> batch;
  {
    const std::scoped_lock lock(task_mutex_);
    batch.swap(tasks_);
  }
  for (Task& task : batch) task();
}

void Reactor::fire_due_timers() {
  const auto greater = [](const Timer& a, const Timer& b) {
    return a.when > b.when || (a.when == b.when && a.seq > b.seq);
  };
  const auto now = std::chrono::steady_clock::now();
  while (!timers_.empty() && timers_.front().when <= now) {
    std::pop_heap(timers_.begin(), timers_.end(), greater);
    Task fn = std::move(timers_.back().fn);
    timers_.pop_back();
    fn();
  }
}

int Reactor::wait_timeout_ms() const {
  if (timers_.empty()) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (timers_.front().when <= now) return 0;
  const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
                        timers_.front().when - now)
                        .count();
  // +1 rounds up so a timer never spins on a 0ms-but-not-due wait.
  return static_cast<int>(std::min<long long>(wait + 1, 60'000));
}

void Reactor::run() {
  epoll_event events[64];
  for (;;) {
    drain_tasks();
    if (stop_requested_) break;
    fire_due_timers();
    if (iteration_hook_) iteration_hook_();
    const int n = ::epoll_wait(epoll_fd_, events, 64, wait_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      util::log_error("Reactor: epoll_wait: ", std::strerror(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed earlier in this batch
      // Copy the shared_ptr: the handler may del_fd itself mid-call.
      const std::shared_ptr<FdHandler> handler = it->second;
      (*handler)(events[i].events);
    }
  }
}

}  // namespace nopfs::net
