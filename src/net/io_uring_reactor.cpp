// IoUringReactor: the batched-submission backend (DESIGN.md Sec. 7.6).
// Raw io_uring_setup/io_uring_enter over mmapped SQ/CQ rings — no liburing.
// The shape of one loop iteration:
//
//   * every fd registration is a MULTISHOT POLL_ADD (one SQE per fd for its
//     whole lifetime, re-armed only when the kernel retires it), re-masks
//     are a POLL_REMOVE + fresh POLL_ADD under a NEW generation tag (the
//     fresh arm re-checks readiness, preserving the interface's
//     level-at-delivery contract; in-flight completions under the old tag
//     drop in the shared dispatch path instead of racing the cancel),
//   * the cross-thread wake is an IORING_OP_READ armed on the eventfd,
//   * the timer heap's next deadline rides an IORING_OP_TIMEOUT SQE
//     (re-armed only when the deadline moves earlier; a stale later
//     timeout is just a spurious wakeup),
//   * and ONE io_uring_enter submits everything queued this iteration and
//     waits for completions — where the epoll loop paid epoll_wait plus an
//     epoll_ctl per EPOLLOUT transition plus an eventfd read per wake,
//     every control operation now shares the single batched syscall.
//
// Gated by NOPFS_WITH_IOURING (CMake, default ON on Linux) and a runtime
// probe: io_uring_setup failing (ENOSYS, seccomp EPERM, io_uring_disabled)
// or a pre-5.13 ring (no multishot poll) reports unavailable and kAuto
// falls back to epoll.

#include <memory>

#include "net/reactor_base.hpp"

#if defined(NOPFS_WITH_IOURING) && defined(__linux__) && \
    defined(__BYTE_ORDER__) && (__BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__)
#if __has_include(<linux/io_uring.h>)
#define NOPFS_IOURING_ENABLED 1
#endif
#endif

#if defined(NOPFS_IOURING_ENABLED)

#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>

#include "util/log.hpp"

namespace nopfs::net::detail {

namespace {

// The interface's poll(2) event vocabulary passes through untranslated into
// poll32_events (the kernel always reports ERR/HUP, exactly like epoll).
static_assert(kEventIn == POLLIN && kEventOut == POLLOUT &&
              kEventErr == POLLERR && kEventHup == POLLHUP);

[[noreturn]] void throw_errno(const char* what, int err) {
  throw std::runtime_error(std::string("Reactor(io_uring): ") + what + ": " +
                           std::strerror(err));
}

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

template <typename T>
T* ring_ptr(void* base, std::uint32_t offset) {
  return reinterpret_cast<T*>(static_cast<std::uint8_t*>(base) + offset);
}

std::uint32_t load_acquire(std::uint32_t* p) {
  return std::atomic_ref<std::uint32_t>(*p).load(std::memory_order_acquire);
}

void store_release(std::uint32_t* p, std::uint32_t v) {
  std::atomic_ref<std::uint32_t>(*p).store(v, std::memory_order_release);
}

// Internal completion tags live in the generation-0 space (registration
// tags always carry generation >= 1 in their high word, so they can never
// collide).
constexpr std::uint64_t kWakeTag = 1;    // the eventfd OP_READ
constexpr std::uint64_t kCancelTag = 2;  // POLL_REMOVE / TIMEOUT_REMOVE results
constexpr std::uint64_t kTimeoutTagBase = 0x10000;  // | rotating sequence

class IoUringReactor final : public ReactorCore {
 public:
  explicit IoUringReactor(std::size_t event_batch)
      : event_batch_(event_batch) {
    io_uring_params params{};
    // CQ sized well above SQ: multishot polls complete many times per
    // armed SQE, and IORING_FEAT_NODROP (required below) buffers any
    // overflow instead of dropping it.
    params.flags = IORING_SETUP_CQSIZE;
    params.cq_entries = kSqEntries * 4;
    ring_fd_ = sys_io_uring_setup(kSqEntries, &params);
    if (ring_fd_ < 0) throw_errno("io_uring_setup", errno);
    try {
      // SINGLE_MMAP (5.4) simplifies the mapping; NODROP (5.5) makes CQ
      // overflow lossless; RSRC_TAGS (5.13) gates the kernels that ship
      // multishot POLL_ADD — older rings report unavailable rather than
      // arming polls that silently never refire.
      constexpr std::uint32_t required =
          IORING_FEAT_SINGLE_MMAP | IORING_FEAT_NODROP | IORING_FEAT_RSRC_TAGS;
      if ((params.features & required) != required) {
        throw std::runtime_error(
            "Reactor(io_uring): kernel ring too old (needs 5.13+ multishot "
            "poll)");
      }
      map_rings(params);
    } catch (...) {
      ::close(ring_fd_);
      throw;
    }
    // Armed before start(): no concurrent loop yet, so pushing SQEs from the
    // constructing thread is safe; the first io_uring_enter submits them.
    arm_wake_read();
  }

  ~IoUringReactor() override {
    stop();  // before the rings unmap under the loop
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
    if (sqes_ != nullptr) ::munmap(sqes_, sqe_bytes_);
    // Closing the ring fd cancels every armed poll and releases the file
    // references they hold (the sockets' deferred closes complete here at
    // the latest).
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  [[nodiscard]] const char* backend_name() const noexcept override {
    return "io_uring";
  }

 protected:
  void backend_add(int fd, std::uint32_t events, std::uint64_t tag) override {
    push_poll_add(fd, events, tag);
  }

  std::uint32_t backend_mod(int fd, std::uint32_t events,
                            std::uint64_t old_tag) override {
    // Cancel-and-rearm under a fresh generation: the new POLL_ADD re-checks
    // readiness on arm (an fd already writable delivers immediately, the
    // level-at-delivery contract), and any completion of the old poll still
    // in flight carries the old generation, which dispatch drops.  The
    // remove targets the old user_data, so SQE reordering cannot cancel the
    // new arm.
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->addr = old_tag;
    sqe->user_data = kCancelTag;
    const std::uint32_t gen = alloc_generation();
    push_poll_add(fd, events, make_tag(fd, gen));
    return gen;
  }

  void backend_del(int fd, std::uint64_t tag) override {
    (void)fd;
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_REMOVE;
    sqe->addr = tag;
    sqe->user_data = kCancelTag;
  }

  bool backend_poll(int timeout_ms) override {
    if (!wake_armed_) arm_wake_read();
    if (timeout_ms > 0) arm_timeout(timeout_ms);

    // The single batched syscall of the iteration: submit every SQE queued
    // since the last enter (poll arms/cancels, the wake read, the timeout)
    // and wait for at least one completion — unless the caller asked not to
    // block, or completions beyond last iteration's dispatch cap are
    // already waiting in the CQ.
    const unsigned to_submit = sq_tail_ - sq_submitted_;
    store_release(sq_ktail_, sq_tail_);
    const bool block = timeout_ms != 0 && cq_ready() == 0;
    const int rc =
        sys_io_uring_enter(ring_fd_, to_submit, block ? 1 : 0,
                           IORING_ENTER_GETEVENTS);
    if (rc < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EBUSY) return true;
      util::log_error("Reactor(io_uring): io_uring_enter: ",
                      std::strerror(errno));
      return false;
    }
    sq_submitted_ += static_cast<unsigned>(rc);

    std::size_t dispatched = 0;
    while (dispatched < event_batch_) {
      if (cq_ready() == 0) break;
      const io_uring_cqe& cqe = cqes_[cq_head_ & *cq_kring_mask_];
      const std::uint64_t tag = cqe.user_data;
      const std::int32_t res = cqe.res;
      const std::uint32_t flags = cqe.flags;
      ++cq_head_;
      store_release(cq_khead_, cq_head_);

      if (tag == kWakeTag) {
        // The read consumed (and reset) the eventfd counter; tasks drain at
        // the top of the next iteration.  Re-armed lazily before the next
        // enter.
        wake_armed_ = false;
        continue;
      }
      if (tag == kCancelTag) continue;  // poll/timeout remove results
      if ((tag >> 32) == 0) {
        // A timeout fired (-ETIME) or was cancelled; only the currently
        // armed one clears the armed flag.
        if (tag == (kTimeoutTagBase | timeout_seq_)) timeout_armed_ = false;
        continue;
      }

      // An fd registration.  -ECANCELED is our own remove winning the race
      // against a final completion: no dispatch, no re-arm.
      if (res != -ECANCELED) {
        const auto events =
            res < 0 ? (kEventErr | kEventHup) : static_cast<std::uint32_t>(res);
        ++dispatched;
        dispatch_event(tag, events);
      }
      // Multishot retired by the kernel (error paths, or a non-multishot
      // fallback completion): re-arm iff this exact registration is still
      // wanted — a del_fd'ed or re-masked fd has moved on.
      if ((flags & IORING_CQE_F_MORE) == 0 && res != -ECANCELED) {
        std::uint32_t want = 0;
        if (still_registered(tag, &want)) {
          push_poll_add(static_cast<int>(tag & 0xffffffffu), want, tag);
        }
      }
    }
    return true;
  }

 private:
  // SQ entries bound how many control ops one iteration can queue before
  // get_sqe() flushes early; 256 is far above any transport burst.
  static constexpr unsigned kSqEntries = 256;

  void map_rings(const io_uring_params& params) {
    const std::size_t sq_bytes =
        params.sq_off.array + params.sq_entries * sizeof(std::uint32_t);
    const std::size_t cq_bytes =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    sq_ring_bytes_ = sq_bytes > cq_bytes ? sq_bytes : cq_bytes;
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      sq_ring_ = nullptr;
      throw_errno("mmap(sq)", errno);
    }
    sqe_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(::mmap(nullptr, sqe_bytes_,
                                              PROT_READ | PROT_WRITE,
                                              MAP_SHARED | MAP_POPULATE,
                                              ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      ::munmap(sq_ring_, sq_ring_bytes_);
      sq_ring_ = nullptr;
      throw_errno("mmap(sqes)", errno);
    }
    sq_khead_ = ring_ptr<std::uint32_t>(sq_ring_, params.sq_off.head);
    sq_ktail_ = ring_ptr<std::uint32_t>(sq_ring_, params.sq_off.tail);
    sq_kring_mask_ = ring_ptr<std::uint32_t>(sq_ring_, params.sq_off.ring_mask);
    sq_array_ = ring_ptr<std::uint32_t>(sq_ring_, params.sq_off.array);
    cq_khead_ = ring_ptr<std::uint32_t>(sq_ring_, params.cq_off.head);
    cq_ktail_ = ring_ptr<std::uint32_t>(sq_ring_, params.cq_off.tail);
    cq_kring_mask_ = ring_ptr<std::uint32_t>(sq_ring_, params.cq_off.ring_mask);
    cqes_ = ring_ptr<io_uring_cqe>(sq_ring_, params.cq_off.cqes);
    // Identity submission order: slot i of the indirection array always
    // names SQE i, and head/tail arithmetic picks the slot.
    for (std::uint32_t i = 0; i <= *sq_kring_mask_; ++i) sq_array_[i] = i;
    sq_tail_ = sq_submitted_ = load_acquire(sq_ktail_);
    cq_head_ = load_acquire(cq_khead_);
  }

  [[nodiscard]] std::uint32_t cq_ready() const {
    return load_acquire(cq_ktail_) - cq_head_;
  }

  /// Next free SQE, zeroed.  A full SQ flushes the backlog with a
  /// submit-only enter first (no waiting).
  io_uring_sqe* get_sqe() {
    while (sq_tail_ - load_acquire(sq_khead_) >= kSqEntries) {
      const unsigned to_submit = sq_tail_ - sq_submitted_;
      store_release(sq_ktail_, sq_tail_);
      const int rc = sys_io_uring_enter(ring_fd_, to_submit, 0, 0);
      if (rc < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EBUSY) continue;
        throw_errno("io_uring_enter(flush)", errno);
      }
      sq_submitted_ += static_cast<unsigned>(rc);
    }
    io_uring_sqe* sqe = &sqes_[sq_tail_ & *sq_kring_mask_];
    ++sq_tail_;
    std::memset(sqe, 0, sizeof(*sqe));
    return sqe;
  }

  void push_poll_add(int fd, std::uint32_t events, std::uint64_t tag) {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = fd;
    sqe->len = IORING_POLL_ADD_MULTI;
    sqe->poll32_events = events;  // little-endian host, asserted above
    sqe->user_data = tag;
  }

  void arm_wake_read() {
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_READ;
    sqe->fd = wake_fd();
    sqe->addr = reinterpret_cast<std::uint64_t>(&wake_buf_);
    sqe->len = sizeof(wake_buf_);
    sqe->user_data = kWakeTag;
    wake_armed_ = true;
  }

  void arm_timeout(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    // Only a deadline EARLIER than the armed one needs a new SQE; a stale
    // later timeout merely wakes the loop early, and wait_timeout_ms()
    // re-derives the true deadline every iteration.
    if (timeout_armed_ && deadline >= timeout_deadline_) return;
    if (timeout_armed_) {
      io_uring_sqe* sqe = get_sqe();
      sqe->opcode = IORING_OP_TIMEOUT_REMOVE;
      sqe->addr = kTimeoutTagBase | timeout_seq_;
      sqe->user_data = kCancelTag;
    }
    timeout_seq_ = (timeout_seq_ + 1) & 0xff;
    __kernel_timespec& ts = timeout_ts_[timeout_seq_ % kTimeoutSlots];
    ts.tv_sec = timeout_ms / 1000;
    ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1'000'000;
    io_uring_sqe* sqe = get_sqe();
    sqe->opcode = IORING_OP_TIMEOUT;
    sqe->addr = reinterpret_cast<std::uint64_t>(&ts);
    sqe->len = 1;
    sqe->user_data = kTimeoutTagBase | timeout_seq_;
    timeout_armed_ = true;
    timeout_deadline_ = deadline;
  }

  std::size_t event_batch_;
  int ring_fd_ = -1;

  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqe_bytes_ = 0;
  std::uint32_t* sq_khead_ = nullptr;
  std::uint32_t* sq_ktail_ = nullptr;
  std::uint32_t* sq_kring_mask_ = nullptr;
  std::uint32_t* sq_array_ = nullptr;
  std::uint32_t* cq_khead_ = nullptr;
  std::uint32_t* cq_ktail_ = nullptr;
  std::uint32_t* cq_kring_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
  std::uint32_t sq_tail_ = 0;      // local mirror; published at enter
  std::uint32_t sq_submitted_ = 0; // SQEs the kernel has consumed
  std::uint32_t cq_head_ = 0;      // local mirror; published per reap

  bool wake_armed_ = false;
  std::uint64_t wake_buf_ = 0;

  // In-flight TIMEOUT timespecs must outlive their SQE; with the
  // arm-earlier-only policy at most the cancelled one and its replacement
  // are ever pending, so a tiny rotating pool suffices.
  static constexpr std::size_t kTimeoutSlots = 8;
  bool timeout_armed_ = false;
  std::uint32_t timeout_seq_ = 0;
  std::chrono::steady_clock::time_point timeout_deadline_{};
  __kernel_timespec timeout_ts_[kTimeoutSlots] = {};
};

}  // namespace

std::unique_ptr<Reactor> make_io_uring_reactor(std::size_t event_batch) {
  return std::make_unique<IoUringReactor>(event_batch);
}

}  // namespace nopfs::net::detail

#else  // !NOPFS_IOURING_ENABLED

namespace nopfs::net::detail {

std::unique_ptr<Reactor> make_io_uring_reactor(std::size_t) { return nullptr; }

}  // namespace nopfs::net::detail

#endif
