#include "util/units.hpp"

#include <cmath>
#include <cstdio>

namespace nopfs::util {

namespace {
std::string format_double(double value, const char* suffix) {
  char buffer[64];
  if (value >= 100.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f %s", value, suffix);
  } else if (value >= 10.0) {
    std::snprintf(buffer, sizeof(buffer), "%.1f %s", value, suffix);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, suffix);
  }
  return buffer;
}
}  // namespace

std::string format_size_mb(double mb) {
  if (mb >= kTB) return format_double(mb / kTB, "TB");
  if (mb >= kGB) return format_double(mb / kGB, "GB");
  if (mb >= 1.0) return format_double(mb, "MB");
  return format_double(mb * 1024.0, "KB");
}

std::string format_seconds(double seconds) {
  if (seconds >= 3600.0) return format_double(seconds / 3600.0, "hrs");
  if (seconds >= 120.0) return format_double(seconds / 60.0, "min");
  if (seconds >= 1.0) return format_double(seconds, "s");
  return format_double(seconds * 1000.0, "ms");
}

}  // namespace nopfs::util
