#pragma once
// Minimal leveled logger.  Thread-safe (single global mutex around emission),
// level configurable at runtime via set_level() or the NOPFS_LOG environment
// variable (trace|debug|info|warn|error|off).  Kept deliberately small; the
// library is the product, not the logging framework.

#include <mutex>
#include <sstream>
#include <string>

namespace nopfs::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global log level.
void set_log_level(LogLevel level) noexcept;

/// Current global log level (initialized from NOPFS_LOG on first use).
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line with a level tag; no-op if below the global level.
void log_message(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_trace(Args&&... args) {
  detail::log_fmt(LogLevel::kTrace, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(Args&&... args) {
  detail::log_fmt(LogLevel::kDebug, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(Args&&... args) {
  detail::log_fmt(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(Args&&... args) {
  detail::log_fmt(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(Args&&... args) {
  detail::log_fmt(LogLevel::kError, std::forward<Args>(args)...);
}

}  // namespace nopfs::util
