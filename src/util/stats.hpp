#pragma once
// Statistics helpers used by the simulator, runtime and benches:
// summary statistics with confidence intervals (the paper reports median
// epoch times with 95% CIs), percentiles for batch-time violin summaries,
// fixed-bin histograms (Fig. 3), and an online Welford accumulator.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace nopfs::util {

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance; 0 for n < 2.
[[nodiscard]] double variance(std::span<const double> xs);

/// Sample standard deviation.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100].  Sorts a copy.
[[nodiscard]] double percentile(std::span<const double> xs, double q);

/// Median (50th percentile).
[[nodiscard]] double median(std::span<const double> xs);

/// Half-width of the 95% confidence interval of the mean
/// (normal approximation; the paper's CIs are over >= 3 epochs).
[[nodiscard]] double ci95_halfwidth(std::span<const double> xs);

/// Summary of a sample of timings, as the paper reports them.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double ci95 = 0.0;  ///< 95% CI half-width of the mean.
};

/// Computes all Summary fields in one pass over a copy of `xs`.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Online mean/variance accumulator (Welford).  Numerically stable;
/// used by long simulations that cannot keep every batch time.
class Welford {
 public:
  void add(double x) noexcept;
  void merge(const Welford& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width integer histogram over [0, num_bins); out-of-range values
/// clamp into the edge bins.  Used for the Fig. 3 access-frequency plot.
class Histogram {
 public:
  explicit Histogram(std::size_t num_bins);

  void add(std::int64_t value) noexcept;
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return bins_.at(i); }
  [[nodiscard]] std::size_t num_bins() const noexcept { return bins_.size(); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Count of values strictly greater than `threshold`.
  [[nodiscard]] std::uint64_t count_greater(std::int64_t threshold) const noexcept;

  /// Renders an ASCII bar chart (one line per bin) for bench output.
  [[nodiscard]] std::string ascii(std::size_t max_width = 60) const;

 private:
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
  std::uint64_t overflow_high_ = 0;  // folded into last bin but tracked
};

/// Binomial tail P(X > k) for X ~ Binomial(n, p), computed with running
/// log-space terms for numerical stability at n ~ 10^2..10^3.
/// Used by the paper's analytic access-frequency estimate (Sec. 3.1).
[[nodiscard]] double binomial_tail_greater(std::uint64_t n, double p, std::uint64_t k);

/// Binomial PMF P(X = k).
[[nodiscard]] double binomial_pmf(std::uint64_t n, double p, std::uint64_t k);

}  // namespace nopfs::util
