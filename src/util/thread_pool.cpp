#include "util/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <utility>

namespace nopfs::util {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads < 1 ? 1 : num_threads) {
  if (num_threads_ <= 1) return;
  workers_.reserve(static_cast<std::size_t>(num_threads_));
  try {
    for (int t = 0; t < num_threads_; ++t) {
      workers_.emplace_back([this] { worker_main(); });
    }
  } catch (...) {
    // Thread creation failed partway (system_error on a thread-limited
    // host): the destructor will not run for a half-constructed object, so
    // join the workers already spawned here — destroying a joinable
    // std::thread would std::terminate — then surface the error.
    {
      const std::scoped_lock lock(mutex_);
      stop_ = true;
    }
    task_cv_.notify_all();
    for (auto& worker : workers_) {
      if (worker.joinable()) worker.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Match the pooled path: capture instead of throwing to the caller, so
    // submit()-then-wait_idle() behaves identically for any pool size.
    try {
      task();
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (!pending_error_) pending_error_ = std::current_exception();
    }
    return;
  }
  {
    const std::scoped_lock lock(mutex_);
    tasks_.push(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  if (!workers_.empty()) {
    idle_cv_.wait(lock, [&] { return tasks_.empty() && in_flight_ == 0; });
  }
  if (pending_error_) {
    std::exception_ptr error = std::exchange(pending_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::run_indexed(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (workers_.empty()) {
    // Match the pooled path's contract: every index runs; the first
    // exception is rethrown only after the whole range drains.
    std::exception_ptr inline_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!inline_error) inline_error = std::current_exception();
      }
    }
    if (inline_error) std::rethrow_exception(inline_error);
    return;
  }
  std::exception_ptr first_error;
  std::mutex error_mutex;
  try {
    for (std::size_t i = 0; i < count; ++i) {
      submit([&, i] {
        try {
          fn(i);
        } catch (...) {
          const std::scoped_lock lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
  } catch (...) {
    // submit() itself threw (e.g. bad_alloc queuing the task): drain the
    // already-queued tasks before unwinding, or they would run against
    // dangling references into this destroyed frame.
    wait_idle();
    throw;
  }
  wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

int ThreadPool::default_num_threads() {
  if (const char* env = std::getenv("NOPFS_SWEEP_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::worker_main() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_cv_.wait(lock, [&] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    try {
      task();
    } catch (...) {
      const std::scoped_lock lock(mutex_);
      if (!pending_error_) pending_error_ = std::current_exception();
    }
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace nopfs::util
