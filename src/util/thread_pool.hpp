#pragma once
// A small fixed-size task-queue thread pool for the sweep engine.
//
// Design constraints (DESIGN.md Sec. 6): tasks are independent simulation
// grid points, so the pool needs no work stealing — a single mutex-guarded
// FIFO queue is contended only at task granularity (each task runs an
// entire simulate() call, milliseconds to minutes).  Determinism is the
// caller's job: run_indexed() hands every task its own result slot, so the
// output order is the submission order regardless of which worker finishes
// first, and with num_threads <= 1 everything runs inline on the calling
// thread (byte-identical to a hand-written serial loop).

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nopfs::util {

class ThreadPool {
 public:
  /// `num_threads <= 1` creates no worker threads: submitted tasks run
  /// inline in submit()/run_indexed(), which keeps single-threaded runs
  /// free of scheduling effects.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const noexcept { return num_threads_; }

  /// Enqueues one task.  Inline execution when the pool has no workers.
  /// If the task throws, the first such exception (across all submitted
  /// tasks, for any pool size) is captured and rethrown from the next
  /// wait_idle(); an error never observed by wait_idle() is dropped at
  /// destruction.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception a submitted task threw since the last wait_idle().
  void wait_idle();

  /// Runs fn(0..count-1) across the pool and waits for completion.  If any
  /// invocation throws, the first exception (by completion time) is
  /// rethrown on the calling thread after all tasks drain.
  void run_indexed(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Thread count to use when the caller passes 0 ("auto"): the
  /// NOPFS_SWEEP_THREADS environment variable when set and positive,
  /// otherwise std::thread::hardware_concurrency().
  [[nodiscard]] static int default_num_threads();

 private:
  void worker_main();

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable task_cv_;   ///< workers wait for tasks
  std::condition_variable idle_cv_;   ///< wait_idle waits for drain
  std::queue<std::function<void()>> tasks_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::exception_ptr pending_error_;  ///< first escaped task exception
};

}  // namespace nopfs::util
