#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

namespace nopfs::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(q, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (lo == hi) return sorted[lo];
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double ci95_halfwidth(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  return 1.96 * stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.ci95 = ci95_halfwidth(xs);
  const auto pct = [&](double q) {
    const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    if (lo == hi) return sorted[lo];
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.median = pct(50.0);
  s.p95 = pct(95.0);
  s.p99 = pct(99.0);
  return s;
}

void Welford::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Welford::merge(const Welford& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  const double combined = n + m;
  m2_ += other.m2_ + delta * delta * n * m / combined;
  mean_ += delta * m / combined;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Welford::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Welford::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(std::size_t num_bins) : bins_(num_bins == 0 ? 1 : num_bins, 0) {}

void Histogram::add(std::int64_t value) noexcept {
  ++total_;
  if (value < 0) {
    ++bins_.front();
    return;
  }
  if (static_cast<std::size_t>(value) >= bins_.size()) {
    ++overflow_high_;
    ++bins_.back();
    return;
  }
  ++bins_[static_cast<std::size_t>(value)];
}

std::uint64_t Histogram::count_greater(std::int64_t threshold) const noexcept {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    if (static_cast<std::int64_t>(i) > threshold) count += bins_[i];
  }
  return count;
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::uint64_t peak = 0;
  for (auto b : bins_) peak = std::max(peak, b);
  std::ostringstream out;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const auto width =
        peak == 0 ? 0
                  : static_cast<std::size_t>(static_cast<double>(bins_[i]) /
                                             static_cast<double>(peak) *
                                             static_cast<double>(max_width));
    out << (i < 10 ? " " : "") << i << " |" << std::string(width, '#') << ' '
        << bins_[i] << '\n';
  }
  return out.str();
}

double binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  // log C(n,k) + k log p + (n-k) log(1-p) via lgamma.
  const double log_pmf = std::lgamma(static_cast<double>(n) + 1.0) -
                         std::lgamma(static_cast<double>(k) + 1.0) -
                         std::lgamma(static_cast<double>(n - k) + 1.0) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double binomial_tail_greater(std::uint64_t n, double p, std::uint64_t k) {
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return k < n ? 1.0 : 0.0;
  double tail = 0.0;
  for (std::uint64_t j = k + 1; j <= n; ++j) tail += binomial_pmf(n, p, j);
  return std::min(1.0, tail);
}

}  // namespace nopfs::util
