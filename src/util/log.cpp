#include "util/log.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace nopfs::util {

namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("NOPFS_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> level{static_cast<int>(level_from_env())};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

std::mutex& emission_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  level_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_storage().load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::scoped_lock lock(emission_mutex());
  std::cerr << "[nopfs " << level_tag(level) << "] " << message << '\n';
}

}  // namespace nopfs::util
