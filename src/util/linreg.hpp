#pragma once
// Least-squares linear regression and piecewise-linear interpolation.
//
// The paper (Sec. 5.2.2): performance-model parameters such as PFS
// bandwidth for a given number of readers are "inferred using linear
// regression when the exact value is not available".  ThroughputCurve
// implements exactly that: it holds measured (x, throughput) points,
// interpolates piecewise-linearly between them, and extrapolates with a
// least-squares fit outside the measured range (clamped at >= 0).

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace nopfs::util {

/// Result of fitting y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< Coefficient of determination.

  [[nodiscard]] double at(double x) const noexcept { return intercept + slope * x; }
};

/// Ordinary least squares over (x, y) pairs; requires >= 2 points
/// (returns a flat fit through the mean otherwise).
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys);

/// Monotone-x piecewise-linear curve with regression extrapolation.
class ThroughputCurve {
 public:
  ThroughputCurve() = default;

  /// Builds from (x, y) points; sorts by x and requires distinct x values.
  explicit ThroughputCurve(std::vector<std::pair<double, double>> points);

  /// Adds a measured point (re-sorts; intended for setup time).
  void add_point(double x, double y);

  /// Value at x: exact at measured points, piecewise-linear between them,
  /// least-squares extrapolation beyond the range, never below zero.
  [[nodiscard]] double at(double x) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] std::span<const std::pair<double, double>> points() const noexcept {
    return points_;
  }

 private:
  void refit();

  std::vector<std::pair<double, double>> points_;
  LinearFit fit_{};
};

}  // namespace nopfs::util
