#pragma once
// Deterministic pseudorandom number generation for NoPFS.
//
// Clairvoyance (paper Sec. 2) rests on the access stream being exactly
// reproducible from a seed, no matter which component replays it.  We
// therefore avoid std::mt19937 + std::shuffle (whose std::uniform_*
// distributions are implementation-defined) and implement a fixed,
// portable generator stack:
//
//   * splitmix64  — seed expansion (as recommended by the xoshiro authors)
//   * xoshiro256**— the main generator (fast, 256-bit state, passes BigCrush)
//   * Lemire's bounded-rejection method for unbiased bounded integers
//   * a fixed Fisher–Yates shuffle
//
// Every shuffle performed anywhere in the library (core, simulator,
// baselines) goes through this header, so all components agree bit-for-bit
// on the access order for a given seed.

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace nopfs::util {

/// splitmix64 step: advances `state` and returns the next output.
/// Used to expand a single 64-bit seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG.  Deterministic across platforms and standard-library
/// implementations; satisfies the C++ UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator by expanding `seed` with splitmix64.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(); used to derive independent
  /// per-worker streams from one job seed.
  constexpr void long_jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL,
        0x77710069854ee241ULL, 0x39109bb02acbe635ULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t jump : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (jump & (std::uint64_t{1} << b)) {
          for (std::size_t i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Convenience wrapper exposing the typed draws NoPFS needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) noexcept : gen_(seed) {}

  /// Unbiased uniform integer in [0, bound).  bound must be > 0.
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Normal deviate via Marsaglia polar method (portable, no std::normal).
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Raw 64-bit draw.
  [[nodiscard]] std::uint64_t next_u64() noexcept { return gen_(); }

  /// Derives an independent generator (splitmix64 over seed and stream id).
  [[nodiscard]] static Rng for_stream(std::uint64_t seed, std::uint64_t stream) noexcept;

 private:
  Xoshiro256 gen_;
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

/// In-place Fisher–Yates shuffle with a fixed algorithm, so that every
/// component replaying a seed produces the identical permutation.
template <typename T>
void fisher_yates_shuffle(std::span<T> values, Rng& rng) {
  if (values.size() < 2) return;
  for (std::size_t i = values.size() - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_below(i + 1));
    using std::swap;
    swap(values[i], values[j]);
  }
}

/// Returns the identity permutation [0, n) shuffled with `rng`.
[[nodiscard]] std::vector<std::uint64_t> shuffled_indices(std::size_t n, Rng& rng);

/// In-place variant: fills `out` (resized to n) with the shuffled identity
/// permutation, reusing its existing allocation when large enough.
void shuffled_indices_into(std::size_t n, Rng& rng, std::vector<std::uint64_t>& out);

}  // namespace nopfs::util
