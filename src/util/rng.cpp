#include "util/rng.hpp"

#include <cmath>
#include <numeric>

namespace nopfs::util {

std::uint64_t Rng::uniform_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded generation with rejection.
  const std::uint64_t x = gen_();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(gen_()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(range));
}

double Rng::uniform01() noexcept {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::normal(double mean, double stddev) noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

Rng Rng::for_stream(std::uint64_t seed, std::uint64_t stream) noexcept {
  std::uint64_t sm = seed;
  const std::uint64_t a = splitmix64_next(sm);
  sm ^= 0x2545f4914f6cdd1dULL * (stream + 1);
  const std::uint64_t b = splitmix64_next(sm);
  return Rng(a ^ (b + 0x9e3779b97f4a7c15ULL + (stream << 1)));
}

std::vector<std::uint64_t> shuffled_indices(std::size_t n, Rng& rng) {
  std::vector<std::uint64_t> indices;
  shuffled_indices_into(n, rng, indices);
  return indices;
}

void shuffled_indices_into(std::size_t n, Rng& rng, std::vector<std::uint64_t>& out) {
  out.resize(n);
  std::iota(out.begin(), out.end(), std::uint64_t{0});
  fisher_yates_shuffle(std::span<std::uint64_t>(out), rng);
}

}  // namespace nopfs::util
