#pragma once
// Size/time units.  Throughout the library sizes are in MB (double) and
// times in seconds (double), matching the paper's notation (Tab. 2).
// Helpers here keep unit conversions explicit at call sites.

#include <cstdint>
#include <string>

namespace nopfs::util {

inline constexpr double kKB = 1.0 / 1024.0;  ///< kilobytes expressed in MB
inline constexpr double kMB = 1.0;           ///< the base unit
inline constexpr double kGB = 1024.0;        ///< gigabytes expressed in MB
inline constexpr double kTB = 1024.0 * 1024.0;

/// Converts a raw byte count to MB.
[[nodiscard]] constexpr double bytes_to_mb(std::uint64_t bytes) noexcept {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

/// Converts MB to a raw byte count (rounded down).
[[nodiscard]] constexpr std::uint64_t mb_to_bytes(double mb) noexcept {
  return static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
}

/// "1.50 GB", "135.0 MB", "0.76 KB" — for human-readable bench output.
[[nodiscard]] std::string format_size_mb(double mb);

/// "12.3 s", "4.2 min", "1.27 hrs" — matching the paper's axis units.
[[nodiscard]] std::string format_seconds(double seconds);

}  // namespace nopfs::util
