#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace nopfs::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table: row arity does not match header");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
      os << (c + 1 < row.size() ? "  " : "");
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[c];
      if (quote) os << '"';
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      args.csv = true;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      args.full = true;
    } else if (std::strcmp(argv[i], "--critpath") == 0) {
      args.critpath = true;
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      args.scenario = argv[++i];
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--rank") == 0 && i + 1 < argc) {
      args.rank = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--world-size") == 0 && i + 1 < argc) {
      args.world_size = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--rendezvous") == 0 && i + 1 < argc) {
      const std::string addr = argv[++i];
      const auto colon = addr.rfind(':');
      if (colon == std::string::npos) {
        throw std::invalid_argument("--rendezvous expects HOST:PORT");
      }
      args.rendezvous_host = addr.substr(0, colon);
      const long port = std::strtol(addr.c_str() + colon + 1, nullptr, 10);
      if (port < 1 || port > 65535) {
        throw std::invalid_argument("--rendezvous port out of range: " +
                                    addr.substr(colon + 1));
      }
      args.rendezvous_port = static_cast<std::uint16_t>(port);
    }
  }
  return args;
}

}  // namespace nopfs::util
