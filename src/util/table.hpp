#pragma once
// Aligned text-table and CSV rendering for bench binaries.  Every bench
// prints one table per paper figure/table; `--csv` switches to CSV so the
// series can be re-plotted.

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nopfs::util {

/// A simple column-aligned table with a header row.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 2);

  /// Renders with space padding and a rule under the header.
  void print(std::ostream& os) const;

  /// Renders as CSV (comma-separated, quoted only when needed).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses `--csv` style flags shared by all bench binaries.
struct BenchArgs {
  bool csv = false;
  std::string scenario;            ///< optional --scenario <name>
  std::uint64_t seed = 0xC0FFEE;   ///< optional --seed <n>
  bool quick = false;              ///< optional --quick (reduced problem sizes)
  bool full = false;               ///< optional --full (paper scale, overrides default)
  int threads = 0;                 ///< optional --threads <n> sweep threads (0 = auto)
  /// optional --critpath: scaling benches re-run each grid cell with
  /// dependence-graph recording and append per-resource attribution tables
  /// (src/critpath/).  Roughly doubles bench time and holds one cell's
  /// graph in memory at a time (~4 edges per access), hence opt-in.
  bool critpath = false;
  /// Optional distributed-sweep world (--rank R --world-size N
  /// --rendezvous HOST:PORT): with world_size > 1 the scaling benches route
  /// their grid through the sweep service (DESIGN.md Sec. 10) instead of
  /// the in-process runner; rank 0 prints, workers just compute.
  int rank = 0;
  int world_size = 0;              ///< 0/1 = in-process sweep
  std::string rendezvous_host = "127.0.0.1";
  std::uint16_t rendezvous_port = 0;
};

/// Parses known flags from argv; unknown flags are ignored so google-benchmark
/// flags can coexist.
[[nodiscard]] BenchArgs parse_bench_args(int argc, char** argv);

}  // namespace nopfs::util
