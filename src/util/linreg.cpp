#include "util/linreg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nopfs::util {

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  LinearFit fit;
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n == 0) return fit;
  double sx = 0.0;
  double sy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  if (n < 2) {
    fit.intercept = my;
    return fit;
  }
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) {
    fit.intercept = my;
    return fit;
  }
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

ThroughputCurve::ThroughputCurve(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end());
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].first == points_[i - 1].first) {
      throw std::invalid_argument("ThroughputCurve: duplicate x value");
    }
  }
  refit();
}

void ThroughputCurve::add_point(double x, double y) {
  for (const auto& [px, py] : points_) {
    if (px == x) throw std::invalid_argument("ThroughputCurve: duplicate x value");
  }
  points_.emplace_back(x, y);
  std::sort(points_.begin(), points_.end());
  refit();
}

void ThroughputCurve::refit() {
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(points_.size());
  ys.reserve(points_.size());
  for (const auto& [x, y] : points_) {
    xs.push_back(x);
    ys.push_back(y);
  }
  fit_ = linear_fit(xs, ys);
}

double ThroughputCurve::at(double x) const noexcept {
  if (points_.empty()) return 0.0;
  if (points_.size() == 1) return std::max(0.0, points_.front().second);
  if (x <= points_.front().first || x >= points_.back().first) {
    // Outside the measured range: regression extrapolation, floored at the
    // nearest measured endpoint's sign (never negative throughput).
    if (x <= points_.front().first && x >= 0.0) {
      // Interpolate toward the fit but never exceed endpoint behaviour.
      if (x == points_.front().first) return points_.front().second;
    }
    if (x == points_.back().first) return points_.back().second;
    return std::max(0.0, fit_.at(x));
  }
  // Piecewise-linear interpolation between bracketing points.
  auto upper = std::lower_bound(
      points_.begin(), points_.end(), x,
      [](const std::pair<double, double>& p, double value) { return p.first < value; });
  if (upper->first == x) return upper->second;
  const auto lower = upper - 1;
  const double frac = (x - lower->first) / (upper->first - lower->first);
  return lower->second + frac * (upper->second - lower->second);
}

}  // namespace nopfs::util
