// Figure 3: access-frequency distribution for a single worker (of 16)
// training 90 epochs on ImageNet-1k, plus the paper's analytic estimate
// (Sec. 3.1): ~31,635 samples expected above 10 accesses at delta = 0.8,
// against the exact clairvoyant count.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/frequency.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);

  core::StreamConfig config;
  config.seed = args.seed;
  config.num_samples = args.quick ? 160'000 : 1'281'167;  // ImageNet-1k
  config.num_workers = 16;
  config.num_epochs = 90;
  config.global_batch = 2048;
  config.drop_last = true;
  const core::AccessStreamGenerator gen(config);

  std::cout << "Fig. 3: access frequency of worker 0 over " << config.num_epochs
            << " epochs, N=" << config.num_workers << ", F=" << config.num_samples
            << "\n\n";

  const auto hist = core::frequency_histogram(gen, /*rank=*/0, /*bins=*/20);
  std::cout << hist.ascii(60) << "\n";

  const double mu =
      static_cast<double>(config.num_epochs) / config.num_workers;  // 5.625
  const double delta = 0.8;
  const auto threshold = static_cast<std::int64_t>(std::ceil((1.0 + delta) * mu));
  const double analytic =
      core::expected_samples_above(config.num_samples, config.num_workers,
                                   config.num_epochs, delta);
  const auto measured = hist.count_greater(threshold - 1);

  util::Table table({"quantity", "value"});
  table.add_row({"mean accesses per sample (E/N)", util::Table::num(mu, 3)});
  table.add_row({"threshold (1+delta)*mu, delta=0.8",
                 std::to_string(threshold) + " accesses"});
  table.add_row({"analytic E[#samples above] (paper: ~31,635)",
                 util::Table::num(analytic, 0)});
  table.add_row({"exact clairvoyant count (paper MC: 31,863)",
                 std::to_string(measured)});
  table.add_row({"relative error",
                 util::Table::num(std::abs(static_cast<double>(measured) - analytic) /
                                      analytic * 100.0,
                                  2) + " %"});
  bench::emit(table, args, "Fig. 3 analytic vs exact tail");
  return 0;
}
