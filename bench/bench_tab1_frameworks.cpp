// Table 1: comparison of I/O frameworks along the paper's five
// characteristics.  The verdicts are derived from the behaviour of this
// repository's implementations where measurable (coverage and PFS usage
// come from actual simulator runs), with the remaining qualitative entries
// matching the papers the strategies implement.

#include <iostream>

#include "bench_common.hpp"

using namespace nopfs;

namespace {

struct Verdict {
  std::string approach;
  std::string policy;  ///< simulator policy used for the measured columns
  bool system_scalable;
  bool hardware_independent;
  bool easy;
  /// Whether the strategy keeps per-epoch full-dataset random reshuffling;
  /// this is a property of the access *order*, which SimResult does not
  /// expose, so it is declared (tf.data's shuffle window and sharding's
  /// local-only access both break it even when coverage is complete).
  bool preserves_full_randomization;
};

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);

  // Measured columns: run each policy on a dataset larger than aggregate
  // RAM but cacheable across tiers, and check (a) whether the full dataset
  // is read (full randomization preserved) and (b) dataset scalability
  // (supported at all when S exceeds aggregate RAM).  The 600 MB dataset
  // vs 512 MB aggregate-storage shape is the "tab1-frameworks" scenario.
  const scenario::Scenario& scn = scenario::get("tab1-frameworks");
  const sim::SimConfig config =
      scenario::sim_config(scn, scn.sim.gpu_counts.front(), 1.0, args.seed);
  const data::Dataset dataset = scenario::sim_dataset(scn, 1.0, args.seed);

  const Verdict verdicts[] = {
      {"Double-buffering (PyTorch)", "staging", false, false, true, true},
      {"tf.data", "staging", false, false, true, false},
      {"Data sharding", "parallel-staging", true, false, true, false},
      {"DeepIO", "deepio-opportunistic", true, false, true, false},
      {"LBANN data store", "lbann-dynamic", true, false, false, true},
      {"Locality-aware loading", "locality-aware", true, false, false, false},
      {"NoPFS (this paper)", "nopfs", true, true, true, true},
  };

  util::Table table({"Approach", "System scal.", "Dataset scal.", "Full rand.",
                     "HW indep.", "Ease of use"});
  const auto mark = [](bool yes) { return std::string(yes ? "yes" : "no"); };
  for (const auto& v : verdicts) {
    const sim::SimResult result = bench::run_policy(config, dataset, v.policy);
    // Dataset scalability, measured: the strategy runs AND reads the full
    // dataset even though it exceeds aggregate storage.  (The locality-aware
    // loader caches what fits and reads the rest from the PFS, so it passes.)
    const bool dataset_scalable =
        result.supported && result.accessed_fraction >= 0.999;
    const bool full_random = dataset_scalable && v.preserves_full_randomization;
    table.add_row({v.approach, mark(v.system_scalable), mark(dataset_scalable),
                   mark(full_random), mark(v.hardware_independent), mark(v.easy)});
  }
  bench::emit(table, args, "Table 1: I/O framework comparison");
  std::cout << "(dataset-scalability column measured on a 600 MB dataset vs "
               "512 MB aggregate storage; randomization semantics declared per "
               "strategy since SimResult does not expose access order)\n";
  return 0;
}
