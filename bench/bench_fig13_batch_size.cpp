// Figure 13: batch-size sweep for ResNet-50 on ImageNet-1k with 128 GPUs
// on Lassen.  Paper shapes: NoPFS faster at every batch size; PyTorch's
// batch-time variance grows with the batch (more I/O pressure per rank)
// while NoPFS's stays roughly constant.  `--scenario NAME` swaps in any
// registry entry (its batch_sizes axis, or its per-worker batch when it
// declares none); `--full` lifts it to paper scale.

#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  for (const scenario::Scenario* scn :
       bench::resolve_scenarios(args, {"fig13-batch-size"})) {
    const bench::ScalingOptions options = bench::scaling_options(*scn, args);
    const data::Dataset dataset =
        scenario::sim_dataset(*scn, options.scale, args.seed);
    const int gpus = scn->sim.gpu_counts.front();
    std::vector<std::uint64_t> batches = scn->sim.batch_sizes;
    if (batches.empty()) batches = {scn->sim.per_worker_batch};

    // Batch-size x loader grid, evaluated concurrently by the sweep engine.
    std::vector<sim::SweepPoint> points;
    std::vector<std::pair<std::uint64_t, std::string>> labels;
    for (const std::uint64_t batch : batches) {
      for (const auto& loader : options.loaders) {
        sim::SweepPoint point;
        point.config = scenario::sim_config(*scn, gpus, options.scale, args.seed);
        point.config.system.node.preprocess_mbps *= loader.preprocess_mult;
        point.config.per_worker_batch = batch;
        point.dataset = &dataset;
        point.policy = loader.policy;
        points.push_back(std::move(point));
        labels.emplace_back(batch, loader.label);
      }
    }
    const sim::SweepRunner runner({args.threads});
    const auto results = runner.run(points);

    util::Table table({"Batch size", "Loader", "batch med", "batch p95", "batch max",
                       "stddev"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const sim::SimResult& result = results[i];
      if (!result.supported) continue;
      const util::Summary s = result.batch_summary_rest();
      table.add_row({std::to_string(labels[i].first), labels[i].second,
                     util::Table::num(s.median, 3), util::Table::num(s.p95, 3),
                     util::Table::num(s.max, 3), util::Table::num(s.stddev, 4)});
    }
    bench::emit(table, args, scn->summary + " — batch-size sweep [s]");
  }
  return 0;
}
