// Figure 9: environment evaluation — ImageNet-22k with the NoPFS policy
// under 5x compute/preprocess throughput (future accelerators), sweeping
// the in-memory buffer (RAM) and SSD sizes.  Also reproduces the staging-
// buffer sanity sweep from Sec. 6.2 (1/2/4/5 GB all equivalent).
//
// Runs at 1/8 scale by default (dataset and capacities scaled together;
// labels show paper-scale sizes); --full for paper scale.

#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "sim/sweep.hpp"

using namespace nopfs;

namespace {

sim::SweepPoint point_with(const scenario::Scenario& scn, double staging_gb,
                           double ram_gb, double ssd_gb, const data::Dataset& dataset,
                           std::uint64_t seed, double scale) {
  sim::SweepPoint point;
  point.config = scenario::sim_config(scn, scn.sim.gpu_counts.front(), scale, seed);
  point.config.system.node.staging.capacity_mb = staging_gb * util::kGB * scale;
  point.config.system.node.classes[0].capacity_mb = ram_gb * util::kGB * scale;
  point.config.system.node.classes[1].capacity_mb = ssd_gb * util::kGB * scale;
  point.dataset = &dataset;
  point.policy = "nopfs";
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const scenario::Scenario& scn = scenario::get("fig9-env-imagenet22k");
  const double scale = scenario::pick_scale(scn, args.quick, full);

  const data::Dataset dataset = scenario::sim_dataset(scn, scale, args.seed);
  std::cout << "Fig. 9 environment evaluation: ImageNet-22k ("
            << util::format_size_mb(dataset.total_mb()) << (full ? "" : ", 1/8 scale")
            << "), NoPFS, 5x compute\n";

  const sim::SweepRunner runner({args.threads});

  // Staging-buffer sanity sweep: Sec. 6.2 reports 1.64 hrs for all of
  // 1/2/4/5 GB with no other storage — the staging buffer is not limiting.
  {
    const double staging_gbs[] = {1.0, 2.0, 4.0, 5.0};
    std::vector<sim::SweepPoint> points;
    for (const double gb : staging_gbs) {
      points.push_back(point_with(scn, gb, 0.0, 0.0, dataset, args.seed, scale));
    }
    const auto results = runner.run(points);
    util::Table table({"Staging buffer", "Exec time"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      table.add_row({util::Table::num(staging_gbs[i], 0) + " GB",
                     util::format_seconds(results[i].total_s)});
    }
    bench::emit(table, args, "staging-buffer-only sweep (paper: all 1.64 hrs)");
  }

  // RAM x SSD sweep (paper Fig. 9 grid): 25 independent cells, swept
  // concurrently.
  {
    const double rams[] = {32, 64, 128, 256, 512};
    const double ssds[] = {0, 128, 256, 512, 1024};
    std::vector<sim::SweepPoint> points;
    for (const double ram : rams) {
      for (const double ssd : ssds) {
        points.push_back(point_with(scn, 5.0, ram, ssd, dataset, args.seed, scale));
      }
    }
    const auto results = runner.run(points);
    std::vector<std::string> header = {"RAM \\ SSD (GB)"};
    for (const double ssd : ssds) header.push_back(util::Table::num(ssd, 0));
    util::Table table(header);
    std::size_t flat = 0;
    for (const double ram : rams) {
      std::vector<std::string> row = {util::Table::num(ram, 0)};
      for ([[maybe_unused]] const double ssd : ssds) {
        row.push_back(util::format_seconds(results[flat++].total_s));
      }
      table.add_row(row);
    }
    bench::emit(table, args, "RAM x SSD sweep (paper: 1.64 hrs down to ~1.08 hrs)");
    // Lower bound: pure compute — storage capacities are irrelevant, so the
    // preset (unscaled) system matches the historical output exactly.
    const sim::SimConfig config =
        scenario::sim_config(scn, scn.sim.gpu_counts.front(), 1.0, args.seed);
    const sim::SimResult lb = bench::run_policy(config, dataset, "perfect");
    std::cout << "lower bound (no I/O): " << util::format_seconds(lb.total_s)
              << " (paper: 1.06 hrs)\n";
  }
  return 0;
}
