// Figure 14: epoch & batch times for ResNet-50 on ImageNet-22k (1.3 TB) on
// Lassen, 32-1024 GPUs: PyTorch vs NoPFS vs No I/O.  Paper shape: NoPFS up
// to ~2.4x faster at 1024 GPUs.
//
// Defaults to a 1/4-scaled dataset+storage (same regimes); --full runs the
// paper-scale 14.2M samples.

#include <cstring>
#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const scenario::Scenario& scn = scenario::get("fig14-imagenet22k");
  const double scale = scenario::pick_scale(scn, args.quick, full);
  const data::Dataset dataset = scenario::sim_dataset(scn, scale, args.seed);

  bench::ScalingOptions options;
  options.scenario = &scn;
  options.scale = scale;
  options.loaders = bench::pytorch_nopfs();
  options.seed = args.seed;
  options.num_threads = args.threads;
  const auto grid = bench::run_scaling(options, dataset);
  bench::print_scaling_tables(options, grid, args,
                              std::string("Fig. 14: ImageNet-22k on Lassen") +
                                  (full ? "" : " (1/4 scale)"));
  return 0;
}
