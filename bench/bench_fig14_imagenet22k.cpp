// Figure 14: epoch & batch times for ResNet-50 on ImageNet-22k (1.3 TB) on
// Lassen, 32-1024 GPUs: PyTorch vs NoPFS vs No I/O.  Paper shape: NoPFS up
// to ~2.4x faster at 1024 GPUs.
//
// Defaults to a 1/4-scaled dataset+storage (same regimes); --full runs the
// paper-scale 14.2M samples.  `--scenario NAME` swaps in any registry entry.

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  return bench::scaling_main(argc, argv, {"fig14-imagenet22k"});
}
