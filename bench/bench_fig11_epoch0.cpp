// Figure 11: epoch-0 batch times for ImageNet-1k on Piz Daint.  In the
// first epoch every loader must pull data from the PFS, so NoPFS shows only
// slightly lower variance — while in later epochs (Fig. 10) PyTorch/DALI
// keep their epoch-0-like variance ("without caching, it is always the
// first epoch for a data loader").

#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const scenario::Scenario& scn = scenario::get("fig11-epoch0");
  const double scale = scenario::pick_scale(scn, args.quick, false);
  const data::Dataset dataset = scenario::sim_dataset(scn, scale, args.seed);

  bench::ScalingOptions options;
  options.scenario = &scn;
  options.scale = scale;
  options.loaders = bench::pytorch_dali_nopfs();
  options.seed = args.seed;
  const auto grid = bench::run_scaling(options, dataset);

  util::Table table({"#GPUs", "Loader", "epoch0 med", "epoch0 p95", "epoch0 max",
                     "epoch1+ med", "epoch1+ max"});
  for (std::size_t g = 0; g < scn.sim.gpu_counts.size(); ++g) {
    for (std::size_t l = 0; l < options.loaders.size(); ++l) {
      const auto& cell = grid[g][l];
      if (!cell.result.supported) continue;
      const util::Summary e0 = cell.result.batch_summary_epoch0();
      const util::Summary rest = cell.result.batch_summary_rest();
      table.add_row({std::to_string(scn.sim.gpu_counts[g]), options.loaders[l].label,
                     util::Table::num(e0.median, 3), util::Table::num(e0.p95, 3),
                     util::Table::num(e0.max, 3), util::Table::num(rest.median, 3),
                     util::Table::num(rest.max, 3)});
    }
  }
  bench::emit(table, args, "Fig. 11: epoch-0 batch times, ImageNet-1k on Piz Daint [s]");
  return 0;
}
