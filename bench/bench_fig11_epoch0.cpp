// Figure 11: epoch-0 batch times for ImageNet-1k on Piz Daint.  In the
// first epoch every loader must pull data from the PFS, so NoPFS shows only
// slightly lower variance — while in later epochs (Fig. 10) PyTorch/DALI
// keep their epoch-0-like variance ("without caching, it is always the
// first epoch for a data loader").  `--scenario NAME` swaps in any registry
// entry (loader lines come from the entry); `--full` lifts it to paper
// scale.

#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  for (const scenario::Scenario* scn :
       bench::resolve_scenarios(args, {"fig11-epoch0"})) {
    const bench::ScalingOptions options = bench::scaling_options(*scn, args);
    const data::Dataset dataset =
        scenario::sim_dataset(*scn, options.scale, args.seed);
    const auto grid = bench::run_scaling(options, dataset);

    util::Table table({"#GPUs", "Loader", "epoch0 med", "epoch0 p95", "epoch0 max",
                       "epoch1+ med", "epoch1+ max"});
    for (std::size_t g = 0; g < scn->sim.gpu_counts.size(); ++g) {
      for (std::size_t l = 0; l < options.loaders.size(); ++l) {
        const auto& cell = grid[g][l];
        if (!cell.result.supported) continue;
        const util::Summary e0 = cell.result.batch_summary_epoch0();
        const util::Summary rest = cell.result.batch_summary_rest();
        table.add_row({std::to_string(scn->sim.gpu_counts[g]),
                       options.loaders[l].label, util::Table::num(e0.median, 3),
                       util::Table::num(e0.p95, 3), util::Table::num(e0.max, 3),
                       util::Table::num(rest.median, 3),
                       util::Table::num(rest.max, 3)});
      }
    }
    bench::emit(table, args, scn->summary + " — epoch-0 batch times [s]");
  }
  return 0;
}
