#pragma once
// Shared scaffolding for the Figs. 10/11/13/14/15 scaling studies: run a
// set of loaders across the scenario's GPU counts and print the paper's
// epoch-time and batch-time series.  The system, dataset, GPU axis, run
// shape AND the loader presentation (labels, DALI preprocessing
// multiplier) all come from the scenario registry — a bench binary only
// names its default entries, so `--scenario NAME [--full]` can run ANY
// registry entry at paper scale from the CLI.

#include <vector>

#include "bench_common.hpp"
#include "critpath/cp_attribution.hpp"
#include "critpath/cp_dep_graph.hpp"
#include "runtime/sweep_job.hpp"
#include "sim/sweep.hpp"
#include "sim/sweep_service.hpp"

namespace nopfs::bench {

struct ScalingOptions {
  const scenario::Scenario* scenario = nullptr;  ///< registry entry (required)
  double scale = 1.0;            ///< scenario::pick_scale(...) result
  std::vector<scenario::LoaderLine> loaders;  ///< scenario::sim_loaders(...)
  std::uint64_t seed = 0xC0FFEE;
  int num_threads = 0;           ///< sweep concurrency (0 = auto)
};

/// Fills an options struct from a registry entry + the common CLI flags.
inline ScalingOptions scaling_options(const scenario::Scenario& scn,
                                      const util::BenchArgs& args) {
  ScalingOptions options;
  options.scenario = &scn;
  options.scale = scenario::pick_scale(scn, args.quick, args.full);
  options.loaders = scenario::sim_loaders(scn);
  options.seed = args.seed;
  options.num_threads = args.threads;
  return options;
}

/// The scenarios a scaling bench runs: the `--scenario NAME` override when
/// given (any registry entry), otherwise the bench's own default entries.
inline std::vector<const scenario::Scenario*> resolve_scenarios(
    const util::BenchArgs& args, const std::vector<std::string>& default_names) {
  std::vector<const scenario::Scenario*> scenarios;
  if (!args.scenario.empty()) {
    scenarios.push_back(&scenario::get(args.scenario));
    return scenarios;
  }
  scenarios.reserve(default_names.size());
  for (const std::string& name : default_names) {
    scenarios.push_back(&scenario::get(name));
  }
  return scenarios;
}

struct ScalingCell {
  sim::SimResult result;
  double epoch_median = 0.0;
};

/// Runs the full grid concurrently (grid points are independent and the
/// sweep engine is deterministic, so the result is identical to a serial
/// loop); results indexed [gpu][loader].  With a distributed world in
/// `args` (--rank/--world-size/--rendezvous) the grid is routed through
/// the work-stealing sweep service (DESIGN.md Sec. 10) — the paper-scale
/// `--full` grids are exactly the runs worth sharding across hosts; the
/// determinism contract makes the grid bit-identical either way.  Workers
/// (rank != 0) get an empty grid back: only rank 0 holds the results.
inline std::vector<std::vector<ScalingCell>> run_scaling(const ScalingOptions& options,
                                                         const data::Dataset& dataset,
                                                         const util::BenchArgs& args = {}) {
  const scenario::Scenario& scn = *options.scenario;
  std::vector<sim::SweepPoint> points;
  points.reserve(scn.sim.gpu_counts.size() * options.loaders.size());
  for (const int gpus : scn.sim.gpu_counts) {
    for (const auto& loader : options.loaders) {
      sim::SweepPoint point;
      point.config = scenario::sim_config(scn, gpus, options.scale, options.seed);
      point.config.system.node.preprocess_mbps *= loader.preprocess_mult;
      point.dataset = &dataset;
      point.policy = loader.policy;
      points.push_back(std::move(point));
    }
  }
  std::vector<sim::SimResult> results;
  if (args.world_size > 1) {
    runtime::WorkerEndpoint endpoint;
    endpoint.rank = args.rank;
    endpoint.world_size = args.world_size;
    endpoint.rendezvous_host = args.rendezvous_host;
    endpoint.rendezvous_port = args.rendezvous_port;
    sim::SweepServiceOptions service;
    service.num_threads = options.num_threads;
    results = runtime::run_sweep_job(points, endpoint, service).results;
    if (args.rank != 0) return {};
  } else {
    const sim::SweepRunner runner({options.num_threads});
    results = runner.run(points);
  }

  std::vector<std::vector<ScalingCell>> grid;
  std::size_t flat = 0;
  for (std::size_t g = 0; g < scn.sim.gpu_counts.size(); ++g) {
    std::vector<ScalingCell> row;
    for (std::size_t l = 0; l < options.loaders.size(); ++l) {
      ScalingCell cell{std::move(results[flat++]), 0.0};
      cell.epoch_median = median_epoch_excl_first(cell.result);
      row.push_back(std::move(cell));
    }
    grid.push_back(std::move(row));
  }
  return grid;
}

/// The two tables every scaling figure prints: epoch times and batch-time
/// distribution summaries (epoch 0 excluded, as the paper does).
inline void print_scaling_tables(const ScalingOptions& options,
                                 const std::vector<std::vector<ScalingCell>>& grid,
                                 const util::BenchArgs& args, const std::string& title) {
  const std::vector<int>& gpu_counts = options.scenario->sim.gpu_counts;
  {
    std::vector<std::string> header = {"#GPUs"};
    for (const auto& loader : options.loaders) header.push_back(loader.label);
    header.push_back("NoPFS speedup vs " + options.loaders.front().label);
    util::Table table(header);
    for (std::size_t g = 0; g < gpu_counts.size(); ++g) {
      std::vector<std::string> row = {std::to_string(gpu_counts[g])};
      double base = 0.0;
      double nopfs = 0.0;
      for (std::size_t l = 0; l < options.loaders.size(); ++l) {
        const auto& cell = grid[g][l];
        if (!cell.result.supported) {
          row.push_back("n/a");
          continue;
        }
        row.push_back(util::format_seconds(cell.epoch_median));
        if (l == 0) base = cell.epoch_median;
        if (options.loaders[l].label == "NoPFS" ||
            options.loaders[l].policy == "nopfs") {
          nopfs = cell.epoch_median;
        }
      }
      row.push_back(nopfs > 0.0 ? speedup(base, nopfs) : "-");
      table.add_row(row);
    }
    emit(table, args, title + " - median epoch time (excl. epoch 0)");
  }
  {
    util::Table table({"#GPUs", "Loader", "batch med", "batch p95", "batch p99",
                       "batch max"});
    for (std::size_t g = 0; g < gpu_counts.size(); ++g) {
      for (std::size_t l = 0; l < options.loaders.size(); ++l) {
        const auto& cell = grid[g][l];
        if (!cell.result.supported) continue;
        const util::Summary s = cell.result.batch_summary_rest();
        table.add_row({std::to_string(gpu_counts[g]),
                       options.loaders[l].label, util::Table::num(s.median, 3),
                       util::Table::num(s.p95, 3), util::Table::num(s.p99, 3),
                       util::Table::num(s.max, 3)});
      }
    }
    emit(table, args, title + " - batch time distribution [s] (excl. epoch 0)");
  }
}

/// --critpath: re-run each grid cell serially with dependence-graph
/// recording (sim results are deterministic, so the re-run prices exactly
/// what the sweep priced) and print per-resource attribution columns next
/// to the standard tables.  One cell's graph lives at a time (~4 edges per
/// access), which is why this is opt-in rather than always-on.
inline void print_critpath_attribution(const ScalingOptions& options,
                                       const data::Dataset& dataset,
                                       const util::BenchArgs& args,
                                       const std::string& title) {
  const scenario::Scenario& scn = *options.scenario;
  util::Table table({"#GPUs", "Loader", "end-to-end", "bound by", "compute",
                     "pfs", "local", "remote", "staging", "allreduce",
                     "prestage"});
  const auto col = [](const critpath::Attribution& a, critpath::Resource r) {
    const double s = a.resource_s(r);
    return s > 0.0 ? util::Table::num(s, 2) : std::string("-");
  };
  for (const int gpus : scn.sim.gpu_counts) {
    for (const auto& loader : options.loaders) {
      sim::SimConfig config =
          scenario::sim_config(scn, gpus, options.scale, options.seed);
      config.system.node.preprocess_mbps *= loader.preprocess_mult;
      critpath::DepGraphBuilder builder;
      config.recorder = &builder;
      const auto policy = sim::make_policy(loader.policy);
      const sim::SimResult result = sim::simulate(config, dataset, *policy);
      if (!result.supported) continue;
      const critpath::Attribution a = critpath::attribute(builder.graph());
      table.add_row({std::to_string(gpus), loader.label,
                     util::format_seconds(a.end_to_end_s),
                     critpath::resource_name(a.binding()),
                     col(a, critpath::Resource::kCompute),
                     col(a, critpath::Resource::kPfs),
                     col(a, critpath::Resource::kLocal),
                     col(a, critpath::Resource::kRemote),
                     col(a, critpath::Resource::kStaging),
                     col(a, critpath::Resource::kAllreduce),
                     col(a, critpath::Resource::kPrestage)});
    }
  }
  emit(table, args, title + " - critical-path attribution [s]");
}

/// The whole driver most scaling benches are: resolve scenarios (honouring
/// `--scenario`), build each scenario's dataset at the picked scale, run
/// the grid, print the two standard tables titled by the entry's summary
/// (plus per-resource attribution under `--critpath`).
inline int scaling_main(int argc, char** argv,
                        const std::vector<std::string>& default_names) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  for (const scenario::Scenario* scn : resolve_scenarios(args, default_names)) {
    const ScalingOptions options = scaling_options(*scn, args);
    const data::Dataset dataset =
        scenario::sim_dataset(*scn, options.scale, args.seed);
    const auto grid = run_scaling(options, dataset, args);
    if (args.world_size > 1 && args.rank != 0) continue;  // workers only compute
    print_scaling_tables(options, grid, args, scn->summary);
    if (args.critpath) {
      print_critpath_attribution(options, dataset, args, scn->summary);
    }
  }
  return 0;
}

}  // namespace nopfs::bench
