#pragma once
// Shared scaffolding for the Figs. 10/11/13/14/15 scaling studies: run a
// set of loaders across the scenario's GPU counts and print the paper's
// epoch-time and batch-time series.  The system, dataset, GPU axis and run
// shape come from the scenario registry; only the loader presentation
// (labels, DALI preprocessing multiplier) is declared here.

#include <vector>

#include "bench_common.hpp"
#include "sim/sweep.hpp"

namespace nopfs::bench {

/// One loader line in a scaling figure.
struct LoaderSpec {
  std::string label;          ///< "PyTorch", "PyTorch+DALI", "LBANN", "NoPFS", "No I/O"
  std::string policy;         ///< simulator policy name
  double preprocess_mult = 1.0;  ///< DALI: GPU-offloaded preprocessing
};

inline std::vector<LoaderSpec> pytorch_dali_nopfs() {
  return {{"PyTorch", "staging", 1.0},
          {"PyTorch+DALI", "staging", 8.0},
          {"NoPFS", "nopfs", 1.0},
          {"No I/O", "perfect", 1.0}};
}

inline std::vector<LoaderSpec> pytorch_lbann_nopfs() {
  return {{"PyTorch", "staging", 1.0},
          {"LBANN", "lbann-dynamic", 1.0},
          {"NoPFS", "nopfs", 1.0},
          {"No I/O", "perfect", 1.0}};
}

inline std::vector<LoaderSpec> pytorch_nopfs() {
  return {{"PyTorch", "staging", 1.0},
          {"NoPFS", "nopfs", 1.0},
          {"No I/O", "perfect", 1.0}};
}

struct ScalingOptions {
  const scenario::Scenario* scenario = nullptr;  ///< registry entry (required)
  double scale = 1.0;            ///< scenario::pick_scale(...) result
  std::vector<LoaderSpec> loaders;
  std::uint64_t seed = 0xC0FFEE;
  int num_threads = 0;           ///< sweep concurrency (0 = auto)
};

struct ScalingCell {
  sim::SimResult result;
  double epoch_median = 0.0;
};

/// Runs the full grid concurrently (grid points are independent and the
/// sweep engine is deterministic, so the result is identical to a serial
/// loop); results indexed [gpu][loader].
inline std::vector<std::vector<ScalingCell>> run_scaling(const ScalingOptions& options,
                                                         const data::Dataset& dataset) {
  const scenario::Scenario& scn = *options.scenario;
  std::vector<sim::SweepPoint> points;
  points.reserve(scn.sim.gpu_counts.size() * options.loaders.size());
  for (const int gpus : scn.sim.gpu_counts) {
    for (const auto& loader : options.loaders) {
      sim::SweepPoint point;
      point.config = scenario::sim_config(scn, gpus, options.scale, options.seed);
      point.config.system.node.preprocess_mbps *= loader.preprocess_mult;
      point.dataset = &dataset;
      point.policy = loader.policy;
      points.push_back(std::move(point));
    }
  }
  const sim::SweepRunner runner({options.num_threads});
  std::vector<sim::SimResult> results = runner.run(points);

  std::vector<std::vector<ScalingCell>> grid;
  std::size_t flat = 0;
  for (std::size_t g = 0; g < scn.sim.gpu_counts.size(); ++g) {
    std::vector<ScalingCell> row;
    for (std::size_t l = 0; l < options.loaders.size(); ++l) {
      ScalingCell cell{std::move(results[flat++]), 0.0};
      cell.epoch_median = median_epoch_excl_first(cell.result);
      row.push_back(std::move(cell));
    }
    grid.push_back(std::move(row));
  }
  return grid;
}

/// The two tables every scaling figure prints: epoch times and batch-time
/// distribution summaries (epoch 0 excluded, as the paper does).
inline void print_scaling_tables(const ScalingOptions& options,
                                 const std::vector<std::vector<ScalingCell>>& grid,
                                 const util::BenchArgs& args, const std::string& title) {
  const std::vector<int>& gpu_counts = options.scenario->sim.gpu_counts;
  {
    std::vector<std::string> header = {"#GPUs"};
    for (const auto& loader : options.loaders) header.push_back(loader.label);
    header.push_back("NoPFS speedup vs " + options.loaders.front().label);
    util::Table table(header);
    for (std::size_t g = 0; g < gpu_counts.size(); ++g) {
      std::vector<std::string> row = {std::to_string(gpu_counts[g])};
      double base = 0.0;
      double nopfs = 0.0;
      for (std::size_t l = 0; l < options.loaders.size(); ++l) {
        const auto& cell = grid[g][l];
        if (!cell.result.supported) {
          row.push_back("n/a");
          continue;
        }
        row.push_back(util::format_seconds(cell.epoch_median));
        if (l == 0) base = cell.epoch_median;
        if (options.loaders[l].label == "NoPFS") nopfs = cell.epoch_median;
      }
      row.push_back(nopfs > 0.0 ? speedup(base, nopfs) : "-");
      table.add_row(row);
    }
    emit(table, args, title + " - median epoch time (excl. epoch 0)");
  }
  {
    util::Table table({"#GPUs", "Loader", "batch med", "batch p95", "batch p99",
                       "batch max"});
    for (std::size_t g = 0; g < gpu_counts.size(); ++g) {
      for (std::size_t l = 0; l < options.loaders.size(); ++l) {
        const auto& cell = grid[g][l];
        if (!cell.result.supported) continue;
        const util::Summary s = cell.result.batch_summary_rest();
        table.add_row({std::to_string(gpu_counts[g]),
                       options.loaders[l].label, util::Table::num(s.median, 3),
                       util::Table::num(s.p95, 3), util::Table::num(s.p99, 3),
                       util::Table::num(s.max, 3)});
      }
    }
    emit(table, args, title + " - batch time distribution [s] (excl. epoch 0)");
  }
}

}  // namespace nopfs::bench
