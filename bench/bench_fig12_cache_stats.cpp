// Figure 12: NoPFS cache statistics for ImageNet-1k on Piz Daint — total
// stall time and the share of staging-buffer prefetches served from local
// storage, remote workers, and the PFS, per GPU count.
//
// Paper shapes: stall time decreases with scale; the PFS share shrinks and
// the remote share grows beyond 64 GPUs (reading a remote worker's memory
// beats the contended PFS).

#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const scenario::Scenario& scn = scenario::get("fig12-cache-stats");
  const double scale = scenario::pick_scale(scn, args.quick, false);
  const data::Dataset dataset = scenario::sim_dataset(scn, scale, args.seed);

  util::Table table({"#GPUs", "Stall time", "local %", "remote %", "pfs %",
                     "PFS MB read"});
  for (const int gpus : scn.sim.gpu_counts) {
    const sim::SimConfig config = scenario::sim_config(scn, gpus, scale, args.seed);
    const sim::SimResult result =
        bench::run_policy(config, dataset, scn.sim.policies.front());
    table.add_row(
        {std::to_string(gpus), util::format_seconds(result.stall_s),
         util::Table::num(result.count_share(sim::Location::kLocal) * 100.0, 1),
         util::Table::num(result.count_share(sim::Location::kRemote) * 100.0, 1),
         util::Table::num(result.count_share(sim::Location::kPfs) * 100.0, 1),
         util::Table::num(result.location_mb[static_cast<int>(sim::Location::kPfs)], 0)});
  }
  bench::emit(table, args, "Fig. 12: NoPFS cache stats, ImageNet-1k on Piz Daint");
  return 0;
}
