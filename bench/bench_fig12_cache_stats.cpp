// Figure 12: NoPFS cache statistics for ImageNet-1k on Piz Daint — total
// stall time and the share of staging-buffer prefetches served from local
// storage, remote workers, and the PFS, per GPU count.
//
// Paper shapes: stall time decreases with scale; the PFS share shrinks and
// the remote share grows beyond 64 GPUs (reading a remote worker's memory
// beats the contended PFS).

#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const double scale = args.quick ? 1.0 / 8.0 : 1.0;

  data::DatasetSpec spec = bench::scaled(data::presets::imagenet1k(), scale);
  const data::Dataset dataset = data::Dataset::synthetic(spec, args.seed);

  util::Table table({"#GPUs", "Stall time", "local %", "remote %", "pfs %",
                     "PFS MB read"});
  for (const int gpus : {32, 64, 128, 256}) {
    sim::SimConfig config;
    config.system = tiers::presets::piz_daint(gpus);
    bench::scale_capacities(config.system, scale);
    config.seed = args.seed;
    config.num_epochs = 3;
    config.per_worker_batch = 64;
    const sim::SimResult result = bench::run_policy(config, dataset, "nopfs");
    table.add_row(
        {std::to_string(gpus), util::format_seconds(result.stall_s),
         util::Table::num(result.count_share(sim::Location::kLocal) * 100.0, 1),
         util::Table::num(result.count_share(sim::Location::kRemote) * 100.0, 1),
         util::Table::num(result.count_share(sim::Location::kPfs) * 100.0, 1),
         util::Table::num(result.location_mb[static_cast<int>(sim::Location::kPfs)], 0)});
  }
  bench::emit(table, args, "Fig. 12: NoPFS cache stats, ImageNet-1k on Piz Daint");
  return 0;
}
