#pragma once
// Shared helpers for the per-figure bench binaries.
//
// Every bench regenerates one table or figure of the paper (see DESIGN.md's
// experiment index).  Conventions:
//   --csv        emit CSV instead of aligned tables
//   --quick      reduced problem sizes (scaled dataset, same shape)
//   --seed <n>   override the clairvoyance seed
//
// System/dataset/run-shape declarations live in the scenario registry
// (src/scenario, DESIGN.md Sec. 8): a bench resolves its scenario with
// scenario::get("figN-...") and builds configs through scenario::sim_config
// / scenario::sim_dataset, so no bench declares a local SystemParams or
// dataset struct.  Reduced-scale runs shrink F together with all capacities
// by the same factor (scenario::pick_scale), which preserves the regime
// boundaries (S vs d1, D, N*D) the paper organizes its scenarios around.

#include <iostream>
#include <string>

#include "scenario/scenario.hpp"
#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace nopfs::bench {

/// Runs one simulation with a fresh policy instance.
inline sim::SimResult run_policy(const sim::SimConfig& config,
                                 const data::Dataset& dataset,
                                 const std::string& policy_name) {
  auto policy = sim::make_policy(policy_name);
  return sim::simulate(config, dataset, *policy);
}

/// Median of the per-epoch times excluding epoch 0 (the paper's metric);
/// falls back to epoch 0 for single-epoch runs.
inline double median_epoch_excl_first(const sim::SimResult& result) {
  if (result.epoch_s.size() <= 1) {
    return result.epoch_s.empty() ? 0.0 : result.epoch_s.front();
  }
  std::vector<double> rest(result.epoch_s.begin() + 1, result.epoch_s.end());
  return util::median(rest);
}

/// Renders either aligned text or CSV per the common flag.
inline void emit(const util::Table& table, const util::BenchArgs& args,
                 const std::string& title) {
  if (!args.csv) std::cout << "\n== " << title << " ==\n";
  if (args.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// "x.xx" speedup string of base over target.
inline std::string speedup(double base_s, double target_s) {
  if (target_s <= 0.0) return "-";
  return util::Table::num(base_s / target_s, 2) + "x";
}

}  // namespace nopfs::bench
