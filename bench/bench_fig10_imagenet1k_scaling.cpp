// Figure 10: epoch & batch times for ResNet-50 on ImageNet-1k, on
// Piz Daint (32-256 GPUs: PyTorch, PyTorch+DALI, NoPFS, No I/O) and on
// Lassen (32-1024 GPUs: PyTorch, LBANN, NoPFS, No I/O).
//
// Paper shapes to reproduce: NoPFS up to ~2.2x faster than PyTorch on
// Piz Daint and up to ~5.4x on Lassen; PyTorch stops scaling once the PFS
// saturates; NoPFS batch-time tails an order of magnitude smaller.

#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const double scale = args.quick ? 1.0 / 8.0 : 1.0;

  data::DatasetSpec spec = bench::scaled(data::presets::imagenet1k(), scale);
  const data::Dataset dataset = data::Dataset::synthetic(spec, args.seed);

  {
    bench::ScalingOptions options;
    options.system_factory = [scale](int gpus) {
      tiers::SystemParams sys = tiers::presets::piz_daint(gpus);
      bench::scale_capacities(sys, scale);
      return sys;
    };
    options.gpu_counts = {32, 64, 128, 256};
    options.loaders = bench::pytorch_dali_nopfs();
    options.dataset = spec;
    options.epochs = 3;
    options.per_worker_batch = 64;  // paper: per-GPU batch 64 on Piz Daint
    options.seed = args.seed;
    options.num_threads = args.threads;
    const auto grid = bench::run_scaling(options, dataset);
    bench::print_scaling_tables(options, grid, args,
                                "Fig. 10 left: ImageNet-1k on Piz Daint");
  }
  {
    bench::ScalingOptions options;
    options.system_factory = [scale](int gpus) {
      tiers::SystemParams sys = tiers::presets::lassen(gpus);
      bench::scale_capacities(sys, scale);
      return sys;
    };
    options.gpu_counts = {32, 64, 128, 256, 512, 1024};
    options.loaders = bench::pytorch_lbann_nopfs();
    options.dataset = spec;
    options.epochs = 3;
    options.per_worker_batch = 120;  // paper: per-GPU batch 120 on Lassen
    options.seed = args.seed;
    options.num_threads = args.threads;
    const auto grid = bench::run_scaling(options, dataset);
    bench::print_scaling_tables(options, grid, args,
                                "Fig. 10 right: ImageNet-1k on Lassen");
  }
  return 0;
}
