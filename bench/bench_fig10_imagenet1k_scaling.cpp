// Figure 10: epoch & batch times for ResNet-50 on ImageNet-1k, on
// Piz Daint (32-256 GPUs: PyTorch, PyTorch+DALI, NoPFS, No I/O) and on
// Lassen (32-1024 GPUs: PyTorch, LBANN, NoPFS, No I/O).
//
// Paper shapes to reproduce: NoPFS up to ~2.2x faster than PyTorch on
// Piz Daint and up to ~5.4x on Lassen; PyTorch stops scaling once the PFS
// saturates; NoPFS batch-time tails an order of magnitude smaller.

#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const scenario::Scenario& daint = scenario::get("fig10-imagenet1k");
  const scenario::Scenario& lassen = scenario::get("fig10-imagenet1k-lassen");
  const double scale = scenario::pick_scale(daint, args.quick, false);

  // Both halves share the ImageNet-1k dataset.
  const data::Dataset dataset = scenario::sim_dataset(daint, scale, args.seed);

  {
    bench::ScalingOptions options;
    options.scenario = &daint;
    options.scale = scale;
    options.loaders = bench::pytorch_dali_nopfs();
    options.seed = args.seed;
    options.num_threads = args.threads;
    const auto grid = bench::run_scaling(options, dataset);
    bench::print_scaling_tables(options, grid, args,
                                "Fig. 10 left: ImageNet-1k on Piz Daint");
  }
  {
    bench::ScalingOptions options;
    options.scenario = &lassen;
    options.scale = scale;
    options.loaders = bench::pytorch_lbann_nopfs();
    options.seed = args.seed;
    options.num_threads = args.threads;
    const auto grid = bench::run_scaling(options, dataset);
    bench::print_scaling_tables(options, grid, args,
                                "Fig. 10 right: ImageNet-1k on Lassen");
  }
  return 0;
}
