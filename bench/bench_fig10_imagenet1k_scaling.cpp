// Figure 10: epoch & batch times for ResNet-50 on ImageNet-1k, on
// Piz Daint (32-256 GPUs: PyTorch, PyTorch+DALI, NoPFS, No I/O) and on
// Lassen (32-1024 GPUs: PyTorch, LBANN, NoPFS, No I/O).
//
// Paper shapes to reproduce: NoPFS up to ~2.2x faster than PyTorch on
// Piz Daint and up to ~5.4x on Lassen; PyTorch stops scaling once the PFS
// saturates; NoPFS batch-time tails an order of magnitude smaller.
//
// `--scenario NAME` swaps in any registry entry (and `--full` lifts it to
// paper scale); the loader lines come from the entry either way.

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  return bench::scaling_main(argc, argv,
                             {"fig10-imagenet1k", "fig10-imagenet1k-lassen"});
}
