// Figure 16: end-to-end ResNet-50/ImageNet-1k training on 256 GPUs on
// Lassen (global batch 8192 = 32/GPU, Goyal et al. schedule, 90 epochs):
// top-1 accuracy vs wall time for PyTorch vs NoPFS.  Paper shape: both
// follow the same accuracy-vs-epoch curve, NoPFS compresses it ~1.42x in
// time, final accuracy 76.5%.

#include <iostream>

#include "bench_common.hpp"
#include "train/accuracy_model.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const scenario::Scenario& scn = scenario::get("fig16-end-to-end");
  const double scale = scenario::pick_scale(scn, args.quick, false);
  const data::Dataset dataset = scenario::sim_dataset(scn, scale, args.seed);
  const int epochs = scn.sim.epochs;
  const int gpus = scn.sim.gpu_counts.front();

  struct Run {
    std::string label;
    std::string policy;
    sim::SimResult result;
  };
  std::vector<Run> runs = {{"PyTorch", "staging", {}}, {"NoPFS", "nopfs", {}}};
  for (auto& run : runs) {
    const sim::SimConfig config = scenario::sim_config(scn, gpus, scale, args.seed);
    run.result = bench::run_policy(config, dataset, run.policy);
  }

  // Accuracy-vs-time series (the paper plots every epoch; we print every
  // tenth plus the end).
  util::Table table({"Epoch", "Top-1 %", "PyTorch time", "NoPFS time"});
  std::vector<double> cumulative(runs.size(), 0.0);
  for (int e = 1; e <= epochs; ++e) {
    for (std::size_t r = 0; r < runs.size(); ++r) {
      cumulative[r] += runs[r].result.epoch_s[static_cast<std::size_t>(e - 1)];
    }
    if (e % 10 == 0 || e == 1 || e == epochs) {
      table.add_row({std::to_string(e),
                     util::Table::num(train::resnet50_top1_at_epoch(e), 1),
                     util::format_seconds(cumulative[0]),
                     util::format_seconds(cumulative[1])});
    }
  }
  bench::emit(table, args,
              "Fig. 16: end-to-end ResNet-50/ImageNet-1k, 256 GPUs on Lassen");
  std::cout << "final top-1: " << train::resnet50_top1_at_epoch(epochs)
            << "% (paper: 76.5%)\n"
            << "time to final accuracy: PyTorch "
            << util::format_seconds(cumulative[0]) << " vs NoPFS "
            << util::format_seconds(cumulative[1]) << " -> "
            << bench::speedup(cumulative[0], cumulative[1])
            << " faster (paper: 1.42x, 111 min vs 78 min)\n";
  return 0;
}
