// google-benchmark microbenchmarks of the NoPFS core primitives: the cost
// the paper claims is negligible ("it only needs to compute the access
// sequence in advance, which is fast") is measured here, alongside the hot
// data structures.

#include <benchmark/benchmark.h>

#include "core/access_stream.hpp"
#include "core/cache_policy.hpp"
#include "core/frequency.hpp"
#include "core/perf_model.hpp"
#include "core/staging_buffer.hpp"
#include "sim/holder_table.hpp"
#include "tiers/params.hpp"
#include "util/rng.hpp"

using namespace nopfs;

namespace {

core::StreamConfig stream_config(std::uint64_t f, int n, int e) {
  core::StreamConfig config;
  config.seed = 42;
  config.num_samples = f;
  config.num_workers = n;
  config.num_epochs = e;
  config.global_batch = static_cast<std::uint64_t>(n) * 32;
  return config;
}

void BM_EpochShuffle(benchmark::State& state) {
  const auto f = static_cast<std::uint64_t>(state.range(0));
  const core::AccessStreamGenerator gen(stream_config(f, 16, 4));
  int epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.epoch_order(epoch % 4));
    ++epoch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f));
}
BENCHMARK(BM_EpochShuffle)->Arg(100'000)->Arg(1'000'000);

void BM_WorkerStream(benchmark::State& state) {
  const core::AccessStreamGenerator gen(
      stream_config(static_cast<std::uint64_t>(state.range(0)), 16, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.worker_stream(3));
  }
}
BENCHMARK(BM_WorkerStream)->Arg(100'000)->Arg(1'000'000);

void BM_FrequencyCount(benchmark::State& state) {
  const core::AccessStreamGenerator gen(
      stream_config(static_cast<std::uint64_t>(state.range(0)), 16, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_worker_frequencies(gen, 0));
  }
}
BENCHMARK(BM_FrequencyCount)->Arg(100'000)->Arg(1'000'000);

void BM_CachePlan(benchmark::State& state) {
  const auto f = static_cast<std::uint64_t>(state.range(0));
  const core::AccessStreamGenerator gen(stream_config(f, 16, 8));
  const data::Dataset dataset("bm", std::vector<float>(f, 0.1f));
  tiers::SystemParams sys = tiers::presets::sim_cluster(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_cache_plan(gen, 0, dataset, sys.node));
  }
}
BENCHMARK(BM_CachePlan)->Arg(100'000)->Arg(1'000'000);

void BM_ChooseFetch(benchmark::State& state) {
  const core::PerfModel model(tiers::presets::lassen(256));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.choose_fetch(0.1, static_cast<int>(i % 2) - 1, 0, 3, 256));
    ++i;
  }
}
BENCHMARK(BM_ChooseFetch);

void BM_StagingBufferRoundTrip(benchmark::State& state) {
  core::StagingBuffer buffer(1 << 20);
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload(4096, 7);
  for (auto _ : state) {
    auto slot = buffer.reserve(seq, seq, payload.size());
    std::copy(payload.begin(), payload.end(), slot->data.begin());
    buffer.commit(seq);
    auto sample = buffer.consume(seq);
    benchmark::DoNotOptimize(sample->data.data());
    buffer.release(seq);
    ++seq;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StagingBufferRoundTrip);

void BM_HolderTableLookup(benchmark::State& state) {
  const std::uint64_t f = 1'000'000;
  sim::HolderTable table(f, 8);
  util::Rng rng(7);
  for (std::uint64_t k = 0; k < f; ++k) {
    table.add(k, static_cast<int>(rng.uniform_below(64)), 0);
    if (k % 2 == 0) table.mark_cached(k, table.first_owner(k));
  }
  std::uint64_t k = 0;
  int peer = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.best_remote_class(k % f, 3, &peer));
    k += 7919;
  }
}
BENCHMARK(BM_HolderTableLookup);

void BM_PlanEncodeDecode(benchmark::State& state) {
  const auto f = static_cast<std::uint64_t>(state.range(0));
  const core::AccessStreamGenerator gen(stream_config(f, 8, 4));
  const data::Dataset dataset("bm", std::vector<float>(f, 0.1f));
  const auto plan =
      core::compute_cache_plan(gen, 0, dataset, tiers::presets::sim_cluster(8).node);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decode_plan(core::encode_plan(plan)));
  }
}
BENCHMARK(BM_PlanEncodeDecode)->Arg(100'000);

}  // namespace

BENCHMARK_MAIN();
