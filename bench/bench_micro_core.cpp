// google-benchmark microbenchmarks of the NoPFS core primitives: the cost
// the paper claims is negligible ("it only needs to compute the access
// sequence in advance, which is fast") is measured here, alongside the hot
// data structures.
//
// `--json [path]` switches to the perf-trajectory mode: instead of the
// google-benchmark suite, it measures simulate() throughput on the
// "micro-core" registry scenario, the sweep engine's 1-thread vs
// NOPFS_SWEEP_THREADS/8-thread wall-clock on the "micro-sweep" scenario
// grid, SocketTransport loopback round-trips, and the critical-path
// what-if walk rate on the "micro-critpath" recording, and writes the numbers as
// a flat `"results"` map (default BENCH_micro.json) whose keys are
// `<scenario>.<metric>` — stable across PRs, which is what lets CI diff
// them against bench/BENCH_baseline.json (tools/compare_bench.py).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <thread>

#include <condition_variable>
#include <mutex>

#include "core/access_stream.hpp"
#include "core/cache_policy.hpp"
#include "critpath/cp_attribution.hpp"
#include "critpath/cp_dep_graph.hpp"
#include "critpath/cp_registry.hpp"
#include "core/epoch_order_cache.hpp"
#include "core/frequency.hpp"
#include "core/perf_model.hpp"
#include "core/staging_buffer.hpp"
#include "data/dataset.hpp"
#include "net/socket_transport.hpp"
#include "scenario/scenario.hpp"
#include "sim/holder_table.hpp"
#include "sim/policies.hpp"
#include "sim/sweep.hpp"
#include "sim/sweep_service.hpp"
#include "tiers/params.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

using namespace nopfs;

namespace {

core::StreamConfig stream_config(std::uint64_t f, int n, int e) {
  core::StreamConfig config;
  config.seed = 42;
  config.num_samples = f;
  config.num_workers = n;
  config.num_epochs = e;
  config.global_batch = static_cast<std::uint64_t>(n) * 32;
  return config;
}

void BM_EpochShuffle(benchmark::State& state) {
  const auto f = static_cast<std::uint64_t>(state.range(0));
  const core::AccessStreamGenerator gen(stream_config(f, 16, 4));
  int epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.epoch_order(epoch % 4));
    ++epoch;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f));
}
BENCHMARK(BM_EpochShuffle)->Arg(100'000)->Arg(1'000'000);

void BM_WorkerStream(benchmark::State& state) {
  const core::AccessStreamGenerator gen(
      stream_config(static_cast<std::uint64_t>(state.range(0)), 16, 4));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.worker_stream(3));
  }
}
BENCHMARK(BM_WorkerStream)->Arg(100'000)->Arg(1'000'000);

void BM_FrequencyCount(benchmark::State& state) {
  const core::AccessStreamGenerator gen(
      stream_config(static_cast<std::uint64_t>(state.range(0)), 16, 8));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::count_worker_frequencies(gen, 0));
  }
}
BENCHMARK(BM_FrequencyCount)->Arg(100'000)->Arg(1'000'000);

void BM_CachePlan(benchmark::State& state) {
  const auto f = static_cast<std::uint64_t>(state.range(0));
  const core::AccessStreamGenerator gen(stream_config(f, 16, 8));
  const data::Dataset dataset("bm", std::vector<float>(f, 0.1f));
  tiers::SystemParams sys = tiers::presets::sim_cluster(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_cache_plan(gen, 0, dataset, sys.node));
  }
}
BENCHMARK(BM_CachePlan)->Arg(100'000)->Arg(1'000'000);

void BM_ChooseFetch(benchmark::State& state) {
  const core::PerfModel model(tiers::presets::lassen(256));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.choose_fetch(0.1, static_cast<int>(i % 2) - 1, 0, 3, 256));
    ++i;
  }
}
BENCHMARK(BM_ChooseFetch);

void BM_StagingBufferRoundTrip(benchmark::State& state) {
  core::StagingBuffer buffer(1 << 20);
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload(4096, 7);
  for (auto _ : state) {
    auto slot = buffer.reserve(seq, seq, payload.size());
    std::copy(payload.begin(), payload.end(), slot->data.begin());
    buffer.commit(seq);
    auto sample = buffer.consume(seq);
    benchmark::DoNotOptimize(sample->data.data());
    buffer.release(seq);
    ++seq;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_StagingBufferRoundTrip);

void BM_HolderTableLookup(benchmark::State& state) {
  const std::uint64_t f = 1'000'000;
  sim::HolderTable table(f, 8);
  util::Rng rng(7);
  for (std::uint64_t k = 0; k < f; ++k) {
    table.add(k, static_cast<int>(rng.uniform_below(64)), 0);
    if (k % 2 == 0) table.mark_cached(k, table.first_owner(k));
  }
  std::uint64_t k = 0;
  int peer = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.best_remote_class(k % f, 3, &peer));
    k += 7919;
  }
}
BENCHMARK(BM_HolderTableLookup);

void BM_PlanEncodeDecode(benchmark::State& state) {
  const auto f = static_cast<std::uint64_t>(state.range(0));
  const core::AccessStreamGenerator gen(stream_config(f, 8, 4));
  const data::Dataset dataset("bm", std::vector<float>(f, 0.1f));
  const auto plan =
      core::compute_cache_plan(gen, 0, dataset, tiers::presets::sim_cluster(8).node);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::decode_plan(core::encode_plan(plan)));
  }
}
BENCHMARK(BM_PlanEncodeDecode)->Arg(100'000);

// ---------------------------------------------------------------------------
// --json perf-trajectory mode

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// The 4-policy x 4-scale sweep grid ("micro-sweep" scenario) the speedup
/// target is defined on — the registry's canonical cell order (empty
/// batch_sizes, so gpu outer -> policy inner, exactly the grid this bench
/// used to build by hand).
std::vector<sim::SweepPoint> sweep_grid(const data::Dataset& dataset) {
  const scenario::Scenario& scn = scenario::get("micro-sweep");
  return scenario::sweep_points(scn, dataset, 1.0, scn.sim.seed);
}

double run_sweep_s(const std::vector<sim::SweepPoint>& points, int threads) {
  core::EpochOrderCache::global().clear();  // cold permutations per run
  const sim::SweepRunner runner({threads});
  const double start = now_s();
  const auto results = runner.run(points);
  const double elapsed = now_s() - start;
  if (results.size() != points.size()) throw std::logic_error("sweep lost cells");
  return elapsed;
}

/// Loopback fetch round-trips of the multi-process transport: a 2-rank
/// socket world, rank 1 serving `sample_bytes` payloads, rank 0 fetching
/// from `fetch_threads` concurrent caller threads (the transport's real
/// operating point: every loader thread of a process shares one reactor
/// connection).  Returns {fetches_per_second, mb_per_second} aggregated
/// over all threads.
std::pair<double, double> socket_fetch_throughput(std::size_t sample_bytes,
                                                  int fetches,
                                                  int fetch_threads = 1) {
  const std::uint16_t port = net::pick_free_port();
  std::unique_ptr<net::SocketTransport> server;
  // Both endpoint failure modes must reach the caller as an exception, not
  // std::terminate: the server lambda swallows its own (the client then
  // times out and reports), and the client path joins before rethrowing.
  std::thread server_thread([&] {
    try {
      net::SocketOptions options;
      options.rank = 1;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      server = std::make_unique<net::SocketTransport>(options);
      server->set_serve_handler(
          [sample_bytes](std::uint64_t id) -> std::optional<net::Bytes> {
            return net::Bytes(sample_bytes, static_cast<std::uint8_t>(id));
          });
      server->barrier();  // handler installed
      server->barrier();  // client done fetching
    } catch (const std::exception& ex) {
      std::cerr << "socket bench server: " << ex.what() << "\n";
    }
  });
  try {
    net::SocketOptions options;
    options.rank = 0;
    options.world_size = 2;
    options.rendezvous_port = port;
    options.timeout_s = 30.0;
    net::SocketTransport client(options);
    client.barrier();
    const double start = now_s();
    std::atomic<bool> failed{false};
    std::vector<std::thread> fetchers;
    fetchers.reserve(static_cast<std::size_t>(fetch_threads));
    for (int t = 0; t < fetch_threads; ++t) {
      fetchers.emplace_back([&, t] {
        const int share = fetches / fetch_threads +
                          (t < fetches % fetch_threads ? 1 : 0);
        for (int i = 0; i < share; ++i) {
          const auto bytes =
              client.fetch_sample(1, static_cast<std::uint64_t>(t * fetches + i));
          if (!bytes.has_value() || bytes->size() != sample_bytes) {
            failed.store(true);
            return;
          }
        }
      });
    }
    for (auto& fetcher : fetchers) fetcher.join();
    if (failed.load()) throw std::runtime_error("socket bench: fetch failed");
    const double elapsed = now_s() - start;
    client.barrier();
    server_thread.join();
    const double per_s = elapsed > 0.0 ? fetches / elapsed : 0.0;
    return {per_s, per_s * static_cast<double>(sample_bytes) / (1024.0 * 1024.0)};
  } catch (...) {
    if (server_thread.joinable()) server_thread.join();
    throw;
  }
}

/// Pipelined loopback fetch throughput: one caller thread keeps `depth`
/// kFetch requests in flight on the single reactor connection via the
/// ticket API (fetch_sample_start/finish), so the wire carries a request
/// train instead of strict request/reply ping-pong.  This isolates the
/// reactor's pipelining win from caller-thread concurrency — and it is the
/// workload where the event-loop backend matters most, so the JSON mode
/// reports it once per backend (both endpoints run on `backend`).  Returns
/// fetches per second.
double socket_fetch_pipelined_throughput(std::size_t sample_bytes, int fetches,
                                         int depth, net::ReactorBackend backend) {
  const std::uint16_t port = net::pick_free_port();
  std::unique_ptr<net::SocketTransport> server;
  std::thread server_thread([&] {
    try {
      net::SocketOptions options;
      options.rank = 1;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      options.reactor_backend = backend;
      server = std::make_unique<net::SocketTransport>(options);
      server->set_serve_handler(
          [sample_bytes](std::uint64_t id) -> std::optional<net::Bytes> {
            return net::Bytes(sample_bytes, static_cast<std::uint8_t>(id));
          });
      server->barrier();  // handler installed
      server->barrier();  // client done fetching
    } catch (const std::exception& ex) {
      std::cerr << "socket pipelined bench server: " << ex.what() << "\n";
    }
  });
  try {
    net::SocketOptions options;
    options.rank = 0;
    options.world_size = 2;
    options.rendezvous_port = port;
    options.timeout_s = 30.0;
    options.reactor_backend = backend;
    net::SocketTransport client(options);
    client.barrier();
    const double start = now_s();
    std::deque<net::SocketTransport::FetchTicket> window;
    int issued = 0;
    int done = 0;
    while (done < fetches) {
      while (issued < fetches && static_cast<int>(window.size()) < depth) {
        window.push_back(
            client.fetch_sample_start(1, static_cast<std::uint64_t>(issued++)));
      }
      const auto bytes = client.fetch_sample_finish(window.front());
      window.pop_front();
      if (!bytes.has_value() || bytes->size() != sample_bytes) {
        throw std::runtime_error("socket pipelined bench: fetch failed");
      }
      ++done;
    }
    const double elapsed = now_s() - start;
    client.barrier();
    server_thread.join();
    return elapsed > 0.0 ? fetches / elapsed : 0.0;
  } catch (...) {
    if (server_thread.joinable()) server_thread.join();
    throw;
  }
}

/// Cross-thread task-injection rate of the reactor itself: one producer
/// thread post()s a train of tasks and waits for the last to run (FIFO
/// order makes the last task the completion marker).  This prices the
/// eventfd wake + task-queue handoff every transport operation pays before
/// any socket I/O happens.  Measured on the epoll backend so the key is
/// comparable on runners without io_uring; the queue machinery is shared
/// ReactorCore code either way.  Returns posts per second.
double reactor_posts_throughput(int posts) {
  auto reactor = net::make_reactor(net::ReactorBackend::kEpoll);
  reactor->start();
  std::mutex mutex;
  std::condition_variable cv;
  bool finished = false;
  const double start = now_s();
  for (int i = 0; i < posts; ++i) {
    if (i + 1 < posts) {
      reactor->post([] {});
    } else {
      reactor->post([&] {
        {
          const std::scoped_lock lock(mutex);
          finished = true;
        }
        cv.notify_one();
      });
    }
  }
  {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return finished; });
  }
  const double elapsed = now_s() - start;
  reactor->stop();
  return elapsed > 0.0 ? posts / elapsed : 0.0;
}

/// SharedPfs contention-protocol round-trips over loopback: rank 1 sends
/// kPfsAcquire/kPfsRelease to the rank-0 authoritative counter and waits
/// for the kPfsGamma gossip to come back — one full acquire/release cycle
/// is two round trips.  Returns cycles per second.
double pfs_acquire_release_throughput(int cycles) {
  const std::uint16_t port = net::pick_free_port();
  std::unique_ptr<net::SocketTransport> root;
  std::thread root_thread([&] {
    try {
      net::SocketOptions options;
      options.rank = 0;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      root = std::make_unique<net::SocketTransport>(options);
      root->barrier();  // world up
      root->barrier();  // client done
    } catch (const std::exception& ex) {
      std::cerr << "pfs bench root: " << ex.what() << "\n";
    }
  });
  try {
    net::SocketOptions options;
    options.rank = 1;
    options.world_size = 2;
    options.rendezvous_port = port;
    options.timeout_s = 30.0;
    net::SocketTransport client(options);
    client.barrier();

    std::mutex mutex;
    std::condition_variable cv;
    int gamma = -1;
    client.set_pfs_listener([&](int g) {
      const std::scoped_lock lock(mutex);
      gamma = g;
      cv.notify_all();
    });
    auto await_gamma = [&](int want) {
      std::unique_lock lock(mutex);
      if (!cv.wait_for(lock, std::chrono::seconds(10),
                       [&] { return gamma == want; })) {
        throw std::runtime_error("pfs bench: gamma gossip timed out");
      }
    };

    const double start = now_s();
    for (int i = 0; i < cycles; ++i) {
      client.pfs_adjust(+1);
      await_gamma(1);
      client.pfs_adjust(-1);
      await_gamma(0);
    }
    const double elapsed = now_s() - start;
    client.set_pfs_listener({});
    client.barrier();
    root_thread.join();
    return elapsed > 0.0 ? cycles / elapsed : 0.0;
  } catch (...) {
    if (root_thread.joinable()) root_thread.join();
    throw;
  }
}

/// Batched gamma-gossip transition rate: same 2-rank world, but the client
/// transport batches (5 ms flush windows, 256-transition batches), so a
/// pfs_adjust is an enqueue + local-estimate update — the per-transition
/// send cost is OFF the reader thread.  The client pumps `transitions`
/// alternating +1/-1 edges back to back, then a final held acquire is
/// awaited end-to-end so every queued frame is provably drained before the
/// clock stops.  Returns transitions per second.
double pfs_gossip_throughput(int transitions) {
  const std::uint16_t port = net::pick_free_port();
  std::unique_ptr<net::SocketTransport> root;
  std::thread root_thread([&] {
    try {
      net::SocketOptions options;
      options.rank = 0;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      root = std::make_unique<net::SocketTransport>(options);
      root->barrier();  // world up
      root->barrier();  // client done
    } catch (const std::exception& ex) {
      std::cerr << "pfs gossip bench root: " << ex.what() << "\n";
    }
  });
  try {
    net::SocketOptions options;
    options.rank = 1;
    options.world_size = 2;
    options.rendezvous_port = port;
    options.timeout_s = 30.0;
    options.gossip = net::GossipConfig{0.005, 256};
    options.time_scale = 1.0;
    net::SocketTransport client(options);
    client.barrier();

    std::mutex mutex;
    std::condition_variable cv;
    int gamma = -1;
    client.set_pfs_listener([&](int g) {
      const std::scoped_lock lock(mutex);
      gamma = g;
      cv.notify_all();
    });

    const double start = now_s();
    for (int i = 0; i < transitions / 2; ++i) {
      client.pfs_adjust(+1);
      client.pfs_adjust(-1);
    }
    // Drain marker: hold a WEIGHT-2 acquire until the root's authoritative
    // view of it comes back.  Gamma 2 is unreachable while the +1/-1 pump
    // is in flight, so a stale broadcast from an earlier window's peak
    // cannot satisfy the wait — and every earlier frame rides the same
    // FIFO channel, so seeing 2 proves the queue fully drained.
    client.pfs_adjust(+2);
    client.flush_pfs_gossip();
    {
      std::unique_lock lock(mutex);
      if (!cv.wait_for(lock, std::chrono::seconds(10), [&] { return gamma == 2; })) {
        throw std::runtime_error("pfs gossip bench: drain marker timed out");
      }
    }
    const double elapsed = now_s() - start;
    client.pfs_adjust(-2);
    client.flush_pfs_gossip();
    client.set_pfs_listener({});
    client.barrier();
    root_thread.join();
    return elapsed > 0.0 ? (transitions + 1) / elapsed : 0.0;
  } catch (...) {
    if (root_thread.joinable()) root_thread.join();
    throw;
  }
}

/// Best-of-N wall-clock for gated throughput keys: scheduler noise on a
/// shared CI runner only ever makes a run SLOWER, so the max over a few
/// repetitions estimates the machine's capability; a genuine regression
/// slows every repetition and still trips the gate.
template <typename Fn>
double best_of(int repetitions, Fn&& measure) {
  double best = 0.0;
  for (int i = 0; i < repetitions; ++i) best = std::max(best, measure());
  return best;
}

int run_json_mode(const std::string& path) {
  // simulate() throughput: NoPFS runs of the "micro-core" scenario,
  // accesses / wall-clock.
  const scenario::Scenario& micro = scenario::get("micro-core");
  const data::Dataset dataset = scenario::sim_dataset(micro, 1.0, micro.sim.seed);
  const sim::SimConfig config =
      scenario::sim_config(micro, micro.sim.gpu_counts.front(), 1.0, micro.sim.seed);

  sim::SimResult result;
  double sim_s = 1e300;
  for (int i = 0; i < 3; ++i) {
    auto policy = sim::make_policy(micro.sim.policies.front());
    const double sim_start = now_s();
    result = sim::simulate(config, dataset, *policy);
    sim_s = std::min(sim_s, now_s() - sim_start);
  }
  core::StreamConfig stream;
  stream.num_samples = dataset.num_samples();
  stream.num_workers = config.system.num_workers;
  stream.num_epochs = config.num_epochs;
  stream.global_batch = config.global_batch();
  // Per-epoch consumption matches the engine: min(F, T*B) (with drop_last
  // the product never exceeds F, without it the clamp is load-bearing).
  const double accesses =
      static_cast<double>(std::min<std::uint64_t>(
          stream.num_samples, stream.iterations_per_epoch() * stream.global_batch)) *
      config.num_epochs;
  const double samples_per_s = sim_s > 0.0 ? accesses / sim_s : 0.0;

  // Sweep wall-clock: 1 thread vs 8 (or a valid NOPFS_SWEEP_THREADS).
  const auto points = sweep_grid(dataset);
  int threads = 8;  // the acceptance grid is defined at 8 threads
  if (const char* env = std::getenv("NOPFS_SWEEP_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) threads = n;
  }
  const double serial_s = run_sweep_s(points, 1);
  const double parallel_s = run_sweep_s(points, threads);
  // On a 1-hardware-thread runner SweepRunner falls back to the inline
  // serial path for ANY requested width (src/sim/sweep.cpp), so both runs
  // execute the same code and the measured ratio is pure timing noise
  // around 1 — report the definitional 1.0 instead of the noise (the
  // meta.sweep_serial_fallback flag records that this happened).
  const bool sweep_serial_fallback = std::thread::hardware_concurrency() <= 1;
  const double speedup = sweep_serial_fallback ? 1.0
                         : parallel_s > 0.0    ? serial_s / parallel_s
                                               : 0.0;

  // Sweep-service scheduling rate (DESIGN.md Sec. 10): the "sweep-service"
  // grid through the 1-rank service — same simulate() cells as a plain
  // runner PLUS the scheduler's grant/submit/bitmap machinery, so a
  // regression in the service path shows up here even without a world.
  const scenario::Scenario& svc = scenario::get("sweep-service");
  const data::Dataset svc_dataset = scenario::sim_dataset(svc, 1.0, svc.sim.seed);
  const auto svc_points = scenario::sweep_points(svc, svc_dataset, 1.0, svc.sim.seed);
  const double sweep_service_cells_per_s = best_of(3, [&] {
    core::EpochOrderCache::global().clear();
    const sim::SweepServiceReport report =
        sim::run_sweep_service(nullptr, svc_points, {});
    if (report.stats.completed_cells != svc_points.size()) {
      throw std::logic_error("sweep service lost cells");
    }
    return report.stats.wall_s > 0.0
               ? static_cast<double>(report.stats.completed_cells) /
                     report.stats.wall_s
               : 0.0;
  });

  // SocketTransport loopback round-trips (the multi-process backend's hot
  // path): small-sample RPC rate at the transport's operating point (8
  // concurrent caller threads sharing the reactor connection, as loader
  // threads do), single-caller pipelined rate per reactor backend (ticket
  // API, depth 64; epoll always, io_uring where the kernel grants rings),
  // large-sample streaming rate, and the SharedPfs contention protocol's
  // acquire/release cycle rate.  These gate the PR, so each takes the best
  // of 3 runs long enough (thousands of round-trips) that scheduler noise
  // stays under the comparison tolerance.
  double small_mbps = 0.0;
  double large_mbps = 0.0;
  const double small_per_s = best_of(3, [&] {
    const auto [per_s, mbps] = socket_fetch_throughput(4 * 1024, 16'000, 8);
    small_mbps = std::max(small_mbps, mbps);
    return per_s;
  });
  // The pipelined rate is the backend-sensitive key, so it is measured per
  // event-loop backend: epoll always, io_uring only where the kernel
  // grants rings (the key is then absent, which compare_bench.py treats as
  // a notice, not a failure — CI runner kernels vary).
  const double pipelined_epoll_per_s = best_of(3, [&] {
    return socket_fetch_pipelined_throughput(4 * 1024, 16'000, 64,
                                             net::ReactorBackend::kEpoll);
  });
  const bool io_uring_ok = net::io_uring_available();
  const double pipelined_io_uring_per_s =
      io_uring_ok ? best_of(3, [&] {
        return socket_fetch_pipelined_throughput(4 * 1024, 16'000, 64,
                                                 net::ReactorBackend::kIoUring);
      })
                  : 0.0;
  const double reactor_posts_per_s =
      best_of(3, [&] { return reactor_posts_throughput(200'000); });
  const double large_per_s = best_of(3, [&] {
    const auto [per_s, mbps] = socket_fetch_throughput(1024 * 1024, 300);
    large_mbps = std::max(large_mbps, mbps);
    return per_s;
  });
  const double pfs_cycles_per_s =
      best_of(3, [&] { return pfs_acquire_release_throughput(2'000); });
  const double pfs_gossip_per_s =
      best_of(3, [&] { return pfs_gossip_throughput(200'000); });

  // Critical-path walk rate: record the "micro-critpath" scenario's
  // dependence graph once, then time repeated attribution walks under the
  // standard cost models — the engine behind `--critpath` what-if sweeps
  // (one recording, many re-costed walks).
  const scenario::Scenario& critscn = scenario::get("micro-critpath");
  const data::Dataset critdata =
      scenario::sim_dataset(critscn, 1.0, critscn.sim.seed);
  sim::SimConfig critconfig = scenario::sim_config(
      critscn, critscn.sim.gpu_counts.front(), 1.0, critscn.sim.seed);
  critpath::DepGraphBuilder builder;
  critconfig.recorder = &builder;
  {
    auto policy = sim::make_policy(critscn.sim.policies.front());
    (void)sim::simulate(critconfig, critdata, *policy);
  }
  std::vector<std::unique_ptr<critpath::CostModel>> models;
  for (const char* name : {"recorded", "pfs=2x", "nic=0.5x"}) {
    models.push_back(critpath::Registry::instance().make(name));
  }
  (void)critpath::attribute(builder.graph());  // warm the in-edge CSR
  const double critpath_edges_per_s = best_of(3, [&] {
    const int walks = 6;
    double guard = 0.0;  // keep the walks observable
    const double start = now_s();
    for (int w = 0; w < walks; ++w) {
      for (const auto& model : models) {
        guard += critpath::attribute(builder.graph(), model.get()).end_to_end_s;
      }
    }
    const double elapsed = now_s() - start;
    if (!(guard > 0.0) || elapsed <= 0.0) return 0.0;
    return static_cast<double>(builder.graph().num_edges()) * walks *
           static_cast<double>(models.size()) / elapsed;
  });

  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  out.precision(6);
  // Flat scenario-tagged keys: tools/compare_bench.py diffs `results`
  // against bench/BENCH_baseline.json, so keys must stay stable across PRs.
  // Throughput keys (`*_per_s`, `*_mbps`) gate the PR; wall-clock and
  // speedup keys are advisory (meaningless on 1-core CI runners).
  out << "{\n"
      << "  \"schema\": 2,\n"
      << "  \"meta\": {\n"
      << "    \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n"
      << "    \"sweep_threads\": " << threads << ",\n"
      << "    \"sweep_cells\": " << points.size() << ",\n"
      << "    \"sweep_serial_fallback\": " << (sweep_serial_fallback ? "true" : "false")
      << ",\n"
      << "    \"io_uring_available\": " << (io_uring_ok ? "true" : "false") << ",\n"
      << "    \"sweep_service_cells\": " << svc_points.size() << ",\n"
      << "    \"simulate_accesses\": " << static_cast<std::uint64_t>(accesses) << ",\n"
      << "    \"simulate_total_sim_time_s\": " << result.total_s << "\n"
      << "  },\n"
      << "  \"results\": {\n"
      << "    \"micro-core.simulate.samples_per_s\": " << samples_per_s << ",\n"
      << "    \"micro-core.simulate.wall_s\": " << sim_s << ",\n"
      << "    \"micro-sweep.serial_wall_s\": " << serial_s << ",\n"
      << "    \"micro-sweep.parallel_wall_s\": " << parallel_s << ",\n"
      << "    \"micro-sweep.speedup\": " << speedup << ",\n"
      << "    \"sweep-service.cells_per_s\": " << sweep_service_cells_per_s << ",\n"
      << "    \"socket-loopback.fetch_4k_per_s\": " << small_per_s << ",\n"
      << "    \"socket-loopback.fetch_4k_mbps\": " << small_mbps << ",\n"
      << "    \"socket-loopback.fetch_4k_pipelined_epoll_per_s\": "
      << pipelined_epoll_per_s << ",\n";
  if (io_uring_ok) {
    out << "    \"socket-loopback.fetch_4k_pipelined_io_uring_per_s\": "
        << pipelined_io_uring_per_s << ",\n";
  }
  out << "    \"reactor.posts_per_s\": " << reactor_posts_per_s << ",\n"
      << "    \"socket-loopback.fetch_1m_per_s\": " << large_per_s << ",\n"
      << "    \"socket-loopback.fetch_1m_mbps\": " << large_mbps << ",\n"
      << "    \"socket-loopback.pfs_cycles_per_s\": " << pfs_cycles_per_s << ",\n"
      << "    \"socket-loopback.pfs_gossip_transitions_per_s\": " << pfs_gossip_per_s
      << ",\n"
      << "    \"micro-critpath.critpath_edges_per_s\": " << critpath_edges_per_s
      << "\n"
      << "  }\n"
      << "}\n";
  out.close();
  std::cout << "simulate: " << samples_per_s << " samples/s  |  sweep: " << serial_s
            << " s @1t -> " << parallel_s << " s @" << threads << "t  ("
            << speedup << "x)\nsweep service: " << sweep_service_cells_per_s
            << " cells/s (" << svc_points.size()
            << "-cell grid, 1 rank)\nsocket fetch: " << small_per_s
            << " rpc/s @4K(8t), pipelined @4K(64-deep): " << pipelined_epoll_per_s
            << " rpc/s epoll"
            << (io_uring_ok
                    ? ", " + std::to_string(pipelined_io_uring_per_s) + " rpc/s io_uring"
                    : std::string(" (io_uring unavailable)"))
            << ", " << large_mbps << " MB/s @1M  |  reactor posts: "
            << reactor_posts_per_s << "/s  |  pfs acquire/release: "
            << pfs_cycles_per_s << " cycles/s  |  batched gossip: "
            << pfs_gossip_per_s << " transitions/s\ncritpath walks: "
            << critpath_edges_per_s << " edges/s ("
            << builder.graph().num_edges() << "-edge graph)\nwrote " << path
            << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const std::string path =
          (i + 1 < argc && argv[i + 1][0] != '-') ? argv[i + 1] : "BENCH_micro.json";
      return run_json_mode(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
