// Simulator-vs-runtime cross-validation: the same miniature workload (the
// "runtime-validation" scenario) is executed (a) by the threaded runtime
// with real NoPFS code on emulated devices and (b) by the analytic
// simulator, for several loaders.  The two should agree on the *ordering*
// of loaders and roughly on magnitudes — this is the evidence that the
// large-scale simulated figures (10-16) are grounded in the production code
// paths.
//
// `--socket` adds the multi-process cross-check: the NoPFS workload re-run
// as a 2-rank in-process socket world (SharedPfs pricing job-wide PFS
// contention) against the 2-thread harness — digest, PFS traffic and the
// gamma envelope side by side.

#include <array>
#include <cstring>
#include <iostream>
#include <sstream>
#include <thread>

#include "bench_common.hpp"
#include "net/socket_transport.hpp"
#include "runtime/harness.hpp"

using namespace nopfs;

namespace {

std::string hex_digest(std::uint64_t digest) {
  std::ostringstream out;
  out << std::hex << digest;
  return out.str();
}

/// The 2-rank socket cross-check: both ranks in this process, each with its
/// own SocketTransport, devices and SharedPfs — the full multi-process code
/// path minus fork/exec.
void run_socket_mode(const scenario::Scenario& scn, const data::Dataset& dataset,
                     const util::BenchArgs& args) {
  runtime::RuntimeConfig rt = scenario::runtime_config(scn, 2);
  rt.seed = args.seed;

  const runtime::RuntimeResult threaded = runtime::run_training(dataset, rt);

  const std::uint16_t port = net::pick_free_port();
  std::array<runtime::RuntimeResult, 2> socket_results;
  std::array<std::string, 2> errors;
  std::vector<std::thread> ranks;
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([&, r] {
      try {
        runtime::WorkerEndpoint endpoint;
        endpoint.rank = r;
        endpoint.world_size = 2;
        endpoint.rendezvous_port = port;
        endpoint.timeout_s = 60.0;
        socket_results[static_cast<std::size_t>(r)] =
            run_distributed(dataset, rt, endpoint);
      } catch (const std::exception& ex) {
        errors[static_cast<std::size_t>(r)] = ex.what();
      }
    });
  }
  for (auto& t : ranks) t.join();
  for (int r = 0; r < 2; ++r) {
    if (!errors[static_cast<std::size_t>(r)].empty()) {
      std::cout << "socket mode failed on rank " << r << ": "
                << errors[static_cast<std::size_t>(r)] << "\n";
      return;
    }
  }
  const runtime::RuntimeResult& socket = socket_results[0];

  util::Table table({"Launch mode", "total", "pfs fetches", "pfs MB",
                     "peak gamma", "digest"});
  table.add_row({"threaded (SimTransport)", util::format_seconds(threaded.total_s),
                 std::to_string(threaded.stats.pfs_fetches),
                 util::Table::num(threaded.stats.pfs_mb, 1),
                 std::to_string(threaded.pfs_peak_gamma),
                 hex_digest(threaded.delivered_digest)});
  table.add_row({"2-rank socket (SharedPfs)", util::format_seconds(socket.total_s),
                 std::to_string(socket.stats.pfs_fetches),
                 util::Table::num(socket.stats.pfs_mb, 1),
                 std::to_string(socket.pfs_peak_gamma),
                 hex_digest(socket.delivered_digest)});
  bench::emit(table, args, "Threaded vs multi-process harness (NoPFS loader)");
  if (socket.delivered_digest != threaded.delivered_digest) {
    std::cout << "WARNING: launch-mode digest mismatch — identity contract broken\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const scenario::Scenario& scn = scenario::get("runtime-validation");
  const data::Dataset dataset = scenario::worker_dataset(scn, args.seed);
  const int workers = scn.worker.world_size;

  // The runtime-vs-simulator pairs come from the scenario's own loader
  // presentation list (labels, LoaderKind, matching sim policy).
  util::Table table({"Loader", "runtime total", "simulated total", "ratio",
                     "runtime pfs", "sim pfs"});
  for (const scenario::LoaderLine& pair : scn.worker.loaders) {
    runtime::RuntimeConfig rt = scenario::runtime_config(scn);
    rt.loader = pair.kind;
    rt.seed = args.seed;
    const runtime::RuntimeResult real = runtime::run_training(dataset, rt);

    const sim::SimConfig sc = scenario::sim_config(scn, workers, 1.0, args.seed);
    const sim::SimResult simulated = bench::run_policy(sc, dataset, pair.policy);

    table.add_row(
        {baselines::loader_kind_name(pair.kind), util::format_seconds(real.total_s),
         util::format_seconds(simulated.total_s),
         util::Table::num(real.total_s / std::max(1e-9, simulated.total_s), 2),
         std::to_string(real.stats.pfs_fetches),
         std::to_string(
             simulated.location_count[static_cast<int>(sim::Location::kPfs)])});
  }
  bench::emit(table, args,
              "Simulator vs threaded runtime (4 workers, 192 samples, 3 epochs)");
  std::cout << "(the runtime carries real-concurrency overheads the analytic model\n"
               " does not — sleep granularity, lock contention — so ratios exceed 1\n"
               " at this miniature scale; what validates the simulator is that the\n"
               " PFS read counts match and the caching loaders (LBANN, NoPFS) beat\n"
               " the PFS-bound ones (Naive, PyTorch) in both columns)\n";

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0) {
      run_socket_mode(scn, dataset, args);
      break;
    }
  }
  return 0;
}
