// Simulator-vs-runtime cross-validation: the same miniature workload is
// executed (a) by the threaded runtime with real NoPFS code on emulated
// devices and (b) by the analytic simulator, for several loaders.  The two
// should agree on the *ordering* of loaders and roughly on magnitudes —
// this is the evidence that the large-scale simulated figures (10-16) are
// grounded in the production code paths.

#include <iostream>

#include "bench_common.hpp"
#include "runtime/harness.hpp"

using namespace nopfs;

namespace {

tiers::SystemParams mini_system(int workers) {
  tiers::SystemParams sys = tiers::presets::sim_cluster(workers);
  sys.node.staging.capacity_mb = 1.0;
  sys.node.staging.prefetch_threads = 2;
  sys.node.classes[0].capacity_mb = 16.0;
  sys.node.classes[1].capacity_mb = 32.0;
  sys.node.compute_mbps = 50.0;
  sys.node.preprocess_mbps = 500.0;
  sys.pfs.agg_read_mbps = util::ThroughputCurve({{1, 20}, {2, 25}, {4, 30}});
  return sys;
}

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);

  data::DatasetSpec spec;
  spec.name = "validate";
  spec.num_samples = 192;
  spec.mean_size_mb = 0.2;
  spec.stddev_size_mb = 0.05;
  const data::Dataset dataset = data::Dataset::synthetic(spec, args.seed);
  const int workers = 4;
  const int epochs = 3;

  struct Pair {
    baselines::LoaderKind kind;
    std::string policy;
  };
  const Pair pairs[] = {
      {baselines::LoaderKind::kNaive, "naive"},
      {baselines::LoaderKind::kPyTorch, "staging"},
      {baselines::LoaderKind::kLbann, "lbann-dynamic"},
      {baselines::LoaderKind::kNoPFS, "nopfs"},
  };

  util::Table table({"Loader", "runtime total", "simulated total", "ratio",
                     "runtime pfs", "sim pfs"});
  for (const auto& pair : pairs) {
    runtime::RuntimeConfig rt;
    rt.system = mini_system(workers);
    rt.loader = pair.kind;
    rt.seed = args.seed;
    rt.num_epochs = epochs;
    rt.per_worker_batch = 4;
    rt.time_scale = 50.0;
    const runtime::RuntimeResult real = runtime::run_training(dataset, rt);

    sim::SimConfig sc;
    sc.system = mini_system(workers);
    sc.seed = args.seed;
    sc.num_epochs = epochs;
    sc.per_worker_batch = 4;
    const sim::SimResult simulated = bench::run_policy(sc, dataset, pair.policy);

    table.add_row(
        {baselines::loader_kind_name(pair.kind), util::format_seconds(real.total_s),
         util::format_seconds(simulated.total_s),
         util::Table::num(real.total_s / std::max(1e-9, simulated.total_s), 2),
         std::to_string(real.stats.pfs_fetches),
         std::to_string(
             simulated.location_count[static_cast<int>(sim::Location::kPfs)])});
  }
  bench::emit(table, args,
              "Simulator vs threaded runtime (4 workers, 192 samples, 3 epochs)");
  std::cout << "(the runtime carries real-concurrency overheads the analytic model\n"
               " does not — sleep granularity, lock contention — so ratios exceed 1\n"
               " at this miniature scale; what validates the simulator is that the\n"
               " PFS read counts match and the caching loaders (LBANN, NoPFS) beat\n"
               " the PFS-bound ones (Naive, PyTorch) in both columns)\n";
  return 0;
}
