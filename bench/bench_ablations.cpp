// Ablations of NoPFS's design choices (DESIGN.md Sec. 5):
//   1. frequency-aware cache fill vs random fill vs first-touch (LBANN-like)
//   2. remote fetching on vs off
//   3. watermark readiness heuristic on/off/no-remote (threaded runtime:
//      counts the heuristic's false positives, paper Sec. 5.2.2 "very few")
//
// Run on ImageNet-1k / Piz Daint at 64 GPUs (simulator ablations) and a
// miniature 4-worker cluster (runtime ablation).

#include <iostream>

#include "bench_common.hpp"
#include "runtime/harness.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const double scale = args.quick ? 1.0 / 16.0 : 1.0 / 4.0;

  // --- Simulator ablations -------------------------------------------------
  {
    data::DatasetSpec spec = bench::scaled(data::presets::imagenet1k(), scale);
    const data::Dataset dataset = data::Dataset::synthetic(spec, args.seed);
    sim::SimConfig config;
    // 256 GPUs: the PFS-bound regime where design choices matter; RAM
    // tightened so each worker can cache only part of its working set
    // (frequency-aware placement then has something to decide).
    config.system = tiers::presets::piz_daint(256);
    bench::scale_capacities(config.system, scale);
    config.system.node.classes[0].capacity_mb /= 16.0;
    config.seed = args.seed;
    config.num_epochs = 4;
    config.per_worker_batch = 64;

    struct Variant {
      std::string label;
      sim::NoPFSPolicy::Options options;
    };
    const Variant variants[] = {
        {"NoPFS (full)", {}},
        {"no frequency awareness (random fill)", {.frequency_aware = false}},
        {"no remote fetching", {.use_remote = false}},
        {"neither", {.frequency_aware = false, .use_remote = false}},
    };

    util::Table table({"Variant", "Exec time", "Stall", "remote %", "pfs %"});
    double base = 0.0;
    for (const auto& variant : variants) {
      sim::NoPFSPolicy policy(variant.options);
      const sim::SimResult result = sim::simulate(config, dataset, policy);
      if (base == 0.0) base = result.total_s;
      table.add_row(
          {variant.label, util::format_seconds(result.total_s),
           util::format_seconds(result.stall_s),
           util::Table::num(result.count_share(sim::Location::kRemote) * 100.0, 1),
           util::Table::num(result.count_share(sim::Location::kPfs) * 100.0, 1)});
    }
    // First-touch baseline for placement comparison.
    {
      const sim::SimResult result = bench::run_policy(config, dataset, "lbann-dynamic");
      if (result.supported) {
        table.add_row(
            {"first-touch placement (LBANN-style)",
             util::format_seconds(result.total_s), util::format_seconds(result.stall_s),
             util::Table::num(result.count_share(sim::Location::kRemote) * 100.0, 1),
             util::Table::num(result.count_share(sim::Location::kPfs) * 100.0, 1)});
      }
    }
    bench::emit(table, args,
                "Ablation (simulator): ImageNet-1k, Piz Daint, 256 GPUs, tight RAM");
  }

  // --- Runtime ablation: watermark heuristic -------------------------------
  {
    runtime::RuntimeConfig config;
    config.system = tiers::presets::sim_cluster(4);
    config.system.node.staging.capacity_mb = 1.0;
    config.system.node.staging.prefetch_threads = 2;
    config.system.node.classes[0].capacity_mb = 16.0;
    config.system.node.classes[1].capacity_mb = 32.0;
    config.system.node.compute_mbps = 50.0;
    config.system.pfs.agg_read_mbps =
        util::ThroughputCurve({{1, 30}, {2, 40}, {4, 50}});
    config.loader = baselines::LoaderKind::kNoPFS;
    config.seed = args.seed;
    config.num_epochs = 3;
    config.per_worker_batch = 4;
    config.time_scale = 100.0;

    data::DatasetSpec spec;
    spec.name = "ablate";
    spec.num_samples = 192;
    spec.mean_size_mb = 0.1;
    spec.stddev_size_mb = 0.03;
    const data::Dataset dataset = data::Dataset::synthetic(spec, args.seed);

    util::Table table({"Watermark heuristic", "Total", "remote fetches",
                       "false positives", "pfs fetches"});
    for (const bool heuristic : {true, false}) {
      config.router.use_watermark_heuristic = heuristic;
      const runtime::RuntimeResult result = runtime::run_training(dataset, config);
      table.add_row({heuristic ? "on (paper)" : "off (always try remote)",
                     util::format_seconds(result.total_s),
                     std::to_string(result.stats.remote_fetches),
                     std::to_string(result.stats.remote_misses),
                     std::to_string(result.stats.pfs_fetches)});
    }
    bench::emit(table, args,
                "Ablation (runtime): remote-readiness heuristic, 4 workers");
    std::cout << "(paper Sec. 5.2.2: false positives are detected misses, not "
                 "errors, and should be rare with the heuristic on)\n";
  }
  return 0;
}
