// Ablations of NoPFS's design choices (DESIGN.md Sec. 5):
//   1. frequency-aware cache fill vs random fill vs first-touch (LBANN-like)
//   2. remote fetching on vs off
//   3. watermark readiness heuristic on/off/no-remote (threaded runtime:
//      counts the heuristic's false positives, paper Sec. 5.2.2 "very few")
//
// Run on ImageNet-1k / Piz Daint at 256 GPUs (simulator ablations, the
// "ablation-nopfs-design" scenario) and a miniature 4-worker cluster (the
// "ablation-watermark" scenario).

#include <iostream>

#include "bench_common.hpp"
#include "runtime/harness.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);

  // --- Simulator ablations -------------------------------------------------
  {
    const scenario::Scenario& scn = scenario::get("ablation-nopfs-design");
    const double scale = scenario::pick_scale(scn, args.quick, false);
    const data::Dataset dataset = scenario::sim_dataset(scn, scale, args.seed);
    const sim::SimConfig config =
        scenario::sim_config(scn, scn.sim.gpu_counts.front(), scale, args.seed);

    struct Variant {
      std::string label;
      sim::NoPFSPolicy::Options options;
    };
    const Variant variants[] = {
        {"NoPFS (full)", {}},
        {"no frequency awareness (random fill)", {.frequency_aware = false}},
        {"no remote fetching", {.use_remote = false}},
        {"neither", {.frequency_aware = false, .use_remote = false}},
    };

    util::Table table({"Variant", "Exec time", "Stall", "remote %", "pfs %"});
    double base = 0.0;
    for (const auto& variant : variants) {
      sim::NoPFSPolicy policy(variant.options);
      const sim::SimResult result = sim::simulate(config, dataset, policy);
      if (base == 0.0) base = result.total_s;
      table.add_row(
          {variant.label, util::format_seconds(result.total_s),
           util::format_seconds(result.stall_s),
           util::Table::num(result.count_share(sim::Location::kRemote) * 100.0, 1),
           util::Table::num(result.count_share(sim::Location::kPfs) * 100.0, 1)});
    }
    // First-touch baseline for placement comparison.
    {
      const sim::SimResult result = bench::run_policy(config, dataset, "lbann-dynamic");
      if (result.supported) {
        table.add_row(
            {"first-touch placement (LBANN-style)",
             util::format_seconds(result.total_s), util::format_seconds(result.stall_s),
             util::Table::num(result.count_share(sim::Location::kRemote) * 100.0, 1),
             util::Table::num(result.count_share(sim::Location::kPfs) * 100.0, 1)});
      }
    }
    bench::emit(table, args,
                "Ablation (simulator): ImageNet-1k, Piz Daint, 256 GPUs, tight RAM");
  }

  // --- Runtime ablation: watermark heuristic -------------------------------
  {
    const scenario::Scenario& scn = scenario::get("ablation-watermark");
    runtime::RuntimeConfig config = scenario::runtime_config(scn);
    config.seed = args.seed;
    const data::Dataset dataset = scenario::worker_dataset(scn, args.seed);

    util::Table table({"Watermark heuristic", "Total", "remote fetches",
                       "false positives", "pfs fetches"});
    for (const bool heuristic : {true, false}) {
      config.router.use_watermark_heuristic = heuristic;
      const runtime::RuntimeResult result = runtime::run_training(dataset, config);
      table.add_row({heuristic ? "on (paper)" : "off (always try remote)",
                     util::format_seconds(result.total_s),
                     std::to_string(result.stats.remote_fetches),
                     std::to_string(result.stats.remote_misses),
                     std::to_string(result.stats.pfs_fetches)});
    }
    bench::emit(table, args,
                "Ablation (runtime): remote-readiness heuristic, 4 workers");
    std::cout << "(paper Sec. 5.2.2: false positives are detected misses, not "
                 "errors, and should be rare with the heuristic on)\n";
  }
  return 0;
}
