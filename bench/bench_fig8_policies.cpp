// Figure 8 (a-f): simulator comparison of all I/O policies across the
// paper's six scenarios on the Sec. 6.1 small cluster (N=4 workers, N=8 for
// CosmoFlow 512^3), with per-location time breakdowns.
//
// Default runs use a 1/16-scaled dataset+storage (same regime boundaries,
// see DESIGN.md); pass --full for paper-scale F.  --scenario <name>
// restricts to one scenario (the registry name, or its short key without
// the "fig8-" prefix).

#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "sim/sweep.hpp"

using namespace nopfs;

namespace {

/// Presentation labels of the six Fig. 8 panels; everything else (system,
/// dataset, run shape) comes from the registry entry.
struct PanelLabel {
  const char* key;     ///< registry name minus the "fig8-" prefix
  const char* regime;  ///< the paper's cache-capacity regime label
};

const PanelLabel kPanels[] = {
    {"mnist", "S < d1"},          {"imagenet1k", "d1 < S < D"},
    {"openimages", "d1 < S < N*D"}, {"imagenet22k", "D < S < N*D"},
    {"cosmoflow", "N*D < S"},     {"cosmoflow512", "N*D < S (N=8)"},
};

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }

  for (const auto& panel : kPanels) {
    const std::string name = std::string("fig8-") + panel.key;
    if (!args.scenario.empty() && args.scenario != panel.key && args.scenario != name) {
      continue;
    }
    const scenario::Scenario& scn = scenario::get(name);
    const double scale = scenario::pick_scale(scn, args.quick, full);
    const int workers = scn.sim.gpu_counts.front();

    sim::SimConfig config = scenario::sim_config(scn, workers, scale, args.seed);
    config.num_epochs = scenario::pick_epochs(scn, args.quick);
    const data::Dataset dataset = scenario::sim_dataset(scn, scale, args.seed);

    // All ~10 policies share the stream config, so the sweep engine
    // evaluates them concurrently and the epoch-order cache generates each
    // epoch's permutation once instead of once per policy.
    std::vector<sim::SweepPoint> points;
    for (const auto& policy : scn.sim.policies) {
      points.push_back({config, &dataset, policy});
    }
    const sim::SweepRunner runner({args.threads});
    const std::vector<sim::SimResult> results = runner.run(points);

    util::Table table({"Policy", "Exec time", "Stall", "staging%", "local%",
                       "remote%", "pfs%", "Notes"});
    for (const sim::SimResult& result : results) {
      if (!result.supported) {
        table.add_row({result.policy, "-", "-", "-", "-", "-", "-",
                       "unsupported: " + result.unsupported_reason});
        continue;
      }
      double total_loc = 0.0;
      for (double s : result.location_s) total_loc += s;
      const auto pct = [&](sim::Location loc) {
        if (total_loc <= 0.0) return std::string("0");
        return util::Table::num(
            result.location_s[static_cast<int>(loc)] / total_loc * 100.0, 0);
      };
      std::string notes;
      if (result.accessed_fraction < 0.95) {
        notes = "does not access entire dataset (" +
                util::Table::num(result.accessed_fraction * 100.0, 0) + "%)";
      }
      if (result.prestage_s > 0.0) {
        if (!notes.empty()) notes += "; ";
        notes += "prestage " + util::format_seconds(result.prestage_s);
      }
      table.add_row({result.policy, util::format_seconds(result.total_s),
                     util::format_seconds(result.stall_s),
                     pct(sim::Location::kStagingWrite), pct(sim::Location::kLocal),
                     pct(sim::Location::kRemote), pct(sim::Location::kPfs), notes});
    }
    bench::emit(table, args,
                "Fig. 8 (" + std::string(panel.key) + "): " + panel.regime + ", " +
                    util::format_size_mb(dataset.total_mb()) + ", N=" +
                    std::to_string(workers) + (full ? "" : ", 1/16 scale"));
  }
  return 0;
}
