// Figure 8 (a-f): simulator comparison of all I/O policies across the
// paper's six scenarios on the Sec. 6.1 small cluster (N=4 workers, N=8 for
// CosmoFlow 512^3), with per-location time breakdowns.
//
// Default runs use a 1/16-scaled dataset+storage (same regime boundaries,
// see DESIGN.md); pass --full for paper-scale F.  --scenario <name>
// restricts to one scenario.

#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "sim/sweep.hpp"

using namespace nopfs;

namespace {

struct Scenario {
  std::string key;
  std::string regime;     ///< the paper's cache-capacity regime label
  std::string dataset;    ///< preset name
  int workers = 4;
  std::uint64_t per_worker_batch = 32;
};

const Scenario kScenarios[] = {
    {"mnist", "S < d1", "mnist", 4, 32},
    {"imagenet1k", "d1 < S < D", "imagenet1k", 4, 32},
    {"openimages", "d1 < S < N*D", "openimages", 4, 32},
    {"imagenet22k", "D < S < N*D", "imagenet22k", 4, 32},
    {"cosmoflow", "N*D < S", "cosmoflow", 4, 16},
    {"cosmoflow512", "N*D < S (N=8)", "cosmoflow512", 8, 1},
};

}  // namespace

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  const double scale = full ? 1.0 : 1.0 / 16.0;

  for (const auto& scenario : kScenarios) {
    if (!args.scenario.empty() && args.scenario != scenario.key) continue;

    sim::SimConfig config;
    config.system = tiers::presets::sim_cluster(scenario.workers);
    config.seed = args.seed;
    config.num_epochs = args.quick ? 3 : 5;
    config.per_worker_batch = scenario.per_worker_batch;
    bench::scale_capacities(config.system, scale);

    data::DatasetSpec spec = data::presets::by_name(scenario.dataset);
    spec = bench::scaled(spec, scale);
    // CosmoFlow 512^3 has only 10k samples; do not scale it below its
    // batch geometry.
    if (scenario.key == "cosmoflow512") {
      spec.num_samples = std::max<std::uint64_t>(spec.num_samples, 2'000);
    }
    const data::Dataset dataset = data::Dataset::synthetic(spec, args.seed);

    // All ~10 policies share the stream config, so the sweep engine
    // evaluates them concurrently and the epoch-order cache generates each
    // epoch's permutation once instead of once per policy.
    std::vector<sim::SweepPoint> points;
    for (const auto& name : sim::all_policy_names()) {
      points.push_back({config, &dataset, name});
    }
    const sim::SweepRunner runner({args.threads});
    const std::vector<sim::SimResult> results = runner.run(points);

    util::Table table({"Policy", "Exec time", "Stall", "staging%", "local%",
                       "remote%", "pfs%", "Notes"});
    for (const sim::SimResult& result : results) {
      if (!result.supported) {
        table.add_row({result.policy, "-", "-", "-", "-", "-", "-",
                       "unsupported: " + result.unsupported_reason});
        continue;
      }
      double total_loc = 0.0;
      for (double s : result.location_s) total_loc += s;
      const auto pct = [&](sim::Location loc) {
        if (total_loc <= 0.0) return std::string("0");
        return util::Table::num(
            result.location_s[static_cast<int>(loc)] / total_loc * 100.0, 0);
      };
      std::string notes;
      if (result.accessed_fraction < 0.95) {
        notes = "does not access entire dataset (" +
                util::Table::num(result.accessed_fraction * 100.0, 0) + "%)";
      }
      if (result.prestage_s > 0.0) {
        if (!notes.empty()) notes += "; ";
        notes += "prestage " + util::format_seconds(result.prestage_s);
      }
      table.add_row({result.policy, util::format_seconds(result.total_s),
                     util::format_seconds(result.stall_s),
                     pct(sim::Location::kStagingWrite), pct(sim::Location::kLocal),
                     pct(sim::Location::kRemote), pct(sim::Location::kPfs), notes});
    }
    bench::emit(table, args,
                "Fig. 8 (" + scenario.key + "): " + scenario.regime + ", " +
                    util::format_size_mb(dataset.total_mb()) + ", N=" +
                    std::to_string(scenario.workers) +
                    (full ? "" : ", 1/16 scale"));
  }
  return 0;
}
