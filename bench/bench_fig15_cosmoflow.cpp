// Figure 15: epoch & batch times for CosmoFlow (4 TB of fixed-size 16.8 MB
// samples) on Lassen, 32-1024 GPUs: PyTorch vs NoPFS vs No I/O.  Paper
// shapes: NoPFS up to ~2.1x faster, very close to the no-I/O bound, and a
// bimodal batch-time distribution (identical sample sizes make the fetch
// location the only variable).

#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const double scale = args.quick ? 1.0 / 8.0 : 1.0;

  data::DatasetSpec spec = bench::scaled(data::presets::cosmoflow(), scale);
  const data::Dataset dataset = data::Dataset::synthetic(spec, args.seed);

  bench::ScalingOptions options;
  options.system_factory = [scale](int gpus) {
    tiers::SystemParams sys = tiers::presets::lassen(gpus);
    bench::scale_capacities(sys, scale);
    return sys;
  };
  options.gpu_counts = {32, 64, 128, 256, 512, 1024};
  options.loaders = bench::pytorch_nopfs();
  options.dataset = spec;
  options.epochs = 3;
  options.per_worker_batch = 16;  // paper: per-GPU batch 16
  // CosmoFlow's 3D CNN consumes large samples fast: ~82 samples/s on a
  // V100 at 16.8 MB/sample; log-normalization preprocessing is cheap.
  options.compute_mbps = 1'375.0;
  options.preprocess_mbps = 4'000.0;
  options.seed = args.seed;
  options.num_threads = args.threads;
  const auto grid = bench::run_scaling(options, dataset);
  bench::print_scaling_tables(options, grid, args, "Fig. 15: CosmoFlow on Lassen");
  return 0;
}
