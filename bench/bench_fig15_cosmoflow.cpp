// Figure 15: epoch & batch times for CosmoFlow (4 TB of fixed-size 16.8 MB
// samples) on Lassen, 32-1024 GPUs: PyTorch vs NoPFS vs No I/O.  Paper
// shapes: NoPFS up to ~2.1x faster, very close to the no-I/O bound, and a
// bimodal batch-time distribution (identical sample sizes make the fetch
// location the only variable).  `--scenario NAME` swaps in any registry
// entry; `--full` lifts it to paper scale.

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  return bench::scaling_main(argc, argv, {"fig15-cosmoflow"});
}
