// Figure 15: epoch & batch times for CosmoFlow (4 TB of fixed-size 16.8 MB
// samples) on Lassen, 32-1024 GPUs: PyTorch vs NoPFS vs No I/O.  Paper
// shapes: NoPFS up to ~2.1x faster, very close to the no-I/O bound, and a
// bimodal batch-time distribution (identical sample sizes make the fetch
// location the only variable).

#include <iostream>

#include "bench_scaling_common.hpp"

using namespace nopfs;

int main(int argc, char** argv) {
  const util::BenchArgs args = util::parse_bench_args(argc, argv);
  const scenario::Scenario& scn = scenario::get("fig15-cosmoflow");
  const double scale = scenario::pick_scale(scn, args.quick, false);
  const data::Dataset dataset = scenario::sim_dataset(scn, scale, args.seed);

  bench::ScalingOptions options;
  options.scenario = &scn;
  options.scale = scale;
  options.loaders = bench::pytorch_nopfs();
  options.seed = args.seed;
  options.num_threads = args.threads;
  const auto grid = bench::run_scaling(options, dataset);
  bench::print_scaling_tables(options, grid, args, "Fig. 15: CosmoFlow on Lassen");
  return 0;
}
