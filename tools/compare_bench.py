#!/usr/bin/env python3
"""Bench-regression gate: diff a BENCH_micro.json against the committed
baseline and fail on throughput regressions.

Usage:
    tools/compare_bench.py bench/BENCH_baseline.json BENCH_micro.json \
        [--tolerance 0.30]

Key classification (schema 2: a flat ``results`` map of
``<scenario>.<metric>`` produced by ``bench_micro_core --json``):

* GATED — throughput keys (``*_per_s``, ``*_mbps``): higher is better and,
  while absolute values shift with runner hardware, a >30% drop against a
  baseline recorded on the same runner class is a real regression.  The
  job fails if ``current < baseline * (1 - tolerance)``.  This covers both
  contention-protocol keys: ``socket-loopback.pfs_cycles_per_s`` (the
  unary acquire/release round trip, flush interval 0) and
  ``socket-loopback.pfs_gossip_transitions_per_s`` (the batched gossip
  queue: reader-thread enqueue rate with the sends off-thread) — a
  regression in either means the contention path got slower.  The fetch
  keys are measured at the epoll-reactor transport's operating points:
  ``socket-loopback.fetch_4k_per_s`` is 8 concurrent caller threads
  sharing one reactor connection (blocking fetch_sample, as loader
  threads do), ``socket-loopback.fetch_4k_pipelined_epoll_per_s`` and
  ``socket-loopback.fetch_4k_pipelined_io_uring_per_s`` are a single
  caller keeping 64 kFetch requests in flight through the ticket API
  (fetch_sample_start/fetch_sample_finish) — the request train the
  reactor's scatter/gather send path is built for — measured once per
  event-loop backend (DESIGN.md Sec. 7.6), and
  ``socket-loopback.fetch_1m_*`` stays a serial large-payload stream.
  ``reactor.posts_per_s`` is the reactor's cross-thread task-injection
  rate (eventfd wake + FIFO queue handoff, epoll backend).

  io_uring exception: a gated key containing ``io_uring`` that is present
  in the baseline but MISSING from the current run is a notice, not a
  failure — the bench only emits io_uring keys where the kernel grants
  io_uring_setup, and runner kernels/seccomp policies vary.  (A PRESENT
  io_uring key still gates normally.)
  ``micro-critpath.critpath_edges_per_s`` is the critical-path engine's
  walk rate: attribute() passes (recorded + two what-if cost models)
  over the recorded micro-critpath dependence graph, edges visited per
  second with the CSR warm — a regression means what-if sweeps got
  slower per cell.
* ADVISORY — wall-clock and speedup keys: on 1-core CI runners the sweep
  parallel/serial ratio is ~1 and wall-clock jitter dominates, so these are
  printed but never fail the job.

Keys present in only one file are reported (a removed key breaks the
trajectory and fails; a new key is advisory until the baseline is
refreshed).  When ``meta.hardware_threads`` differs between the two files
the script WARNS (but does not fail): the runs come from different runner
classes and the gated comparison is unreliable in both directions.

Baseline refresh (one line, run on the CI runner class you gate on —
locally that is simply):

    ./build/bench_micro_core --json bench/BENCH_baseline.json

or download the ``BENCH_micro`` artifact from a green main run and commit
it as ``bench/BENCH_baseline.json``.

Tolerance: ``--tolerance`` or the ``NOPFS_BENCH_TOLERANCE`` env var
(fraction, default 0.30).
"""

import argparse
import json
import os
import sys

GATED_SUFFIXES = ("_per_s", "_mbps")


def load_doc(path):
    with open(path) as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "results" not in doc:
        raise SystemExit(f"{path}: not a schema-2 BENCH json (no 'results' map)")
    results = doc["results"]
    if not isinstance(results, dict) or not results:
        raise SystemExit(f"{path}: empty 'results' map")
    return doc


def load_results(path):
    return {k: float(v) for k, v in load_doc(path)["results"].items()}


def warn_hardware_mismatch(baseline_path, current_path):
    """Warn (never fail) when the two runs saw different hardware-thread
    counts: absolute throughput is runner-class dependent, so a comparison
    across classes is noisy in BOTH directions — a 'pass' is as suspect as
    a 'regression', and the right fix is refreshing the baseline on the
    gating runner class, not widening the tolerance."""
    meta_b = load_doc(baseline_path).get("meta", {})
    meta_c = load_doc(current_path).get("meta", {})
    threads_b = meta_b.get("hardware_threads")
    threads_c = meta_c.get("hardware_threads")
    if threads_b is None or threads_c is None:
        return
    if threads_b != threads_c:
        print(
            f"WARNING: hardware_threads differ (baseline {threads_b}, "
            f"current {threads_c}) — runs come from different runner "
            "classes; gated comparisons below are unreliable in both "
            "directions.  Refresh the baseline on the gating runner class.",
            file=sys.stderr,
        )


def is_gated(key):
    return key.endswith(GATED_SUFFIXES)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("NOPFS_BENCH_TOLERANCE", "0.30")),
        help="allowed fractional drop on gated keys (default 0.30)",
    )
    args = parser.parse_args()

    baseline = load_results(args.baseline)
    current = load_results(args.current)
    warn_hardware_mismatch(args.baseline, args.current)

    failures = []
    width = max(len(k) for k in sorted(set(baseline) | set(current)))
    print(f"{'key':<{width}}  {'baseline':>12}  {'current':>12}  {'ratio':>7}  verdict")
    for key in sorted(set(baseline) | set(current)):
        gated = is_gated(key)
        if key not in current:
            if gated and "io_uring" in key:
                # The bench emits io_uring keys only where the kernel grants
                # rings; a baseline recorded on an io_uring-capable runner
                # must not fail runs on kernels that deny it.
                print(
                    f"{key:<{width}}  {baseline[key]:>12.4g}  {'-':>12}  "
                    f"{'-':>7}  missing (io_uring unavailable; notice)"
                )
                continue
            verdict = "MISSING (fails)" if gated else "missing (advisory)"
            print(f"{key:<{width}}  {baseline[key]:>12.4g}  {'-':>12}  {'-':>7}  {verdict}")
            if gated:
                failures.append(f"{key}: present in baseline but not in current run")
            continue
        if key not in baseline:
            print(
                f"{key:<{width}}  {'-':>12}  {current[key]:>12.4g}  {'-':>7}  "
                "new key (advisory; refresh baseline)"
            )
            continue
        base, cur = baseline[key], current[key]
        ratio = cur / base if base > 0 else float("inf")
        if not gated:
            verdict = "advisory"
        elif base <= 0:
            verdict = "skip (zero baseline)"
        elif cur < base * (1.0 - args.tolerance):
            verdict = f"REGRESSION (> {args.tolerance:.0%} drop)"
            failures.append(f"{key}: {base:.4g} -> {cur:.4g} ({ratio:.2f}x)")
        else:
            verdict = "ok"
        print(f"{key:<{width}}  {base:>12.4g}  {cur:>12.4g}  {ratio:>7.2f}  {verdict}")

    if failures:
        print(f"\nFAIL: {len(failures)} gated key(s) regressed beyond "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        print(
            "\nIf this is an accepted trade-off or a runner-class change, refresh "
            "the baseline:\n  ./build/bench_micro_core --json bench/BENCH_baseline.json",
            file=sys.stderr,
        )
        return 1
    print("\nOK: no gated key regressed beyond the tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
