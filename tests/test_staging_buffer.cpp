// Tests for the circular staging buffer (paper Sec. 5.2.2): in-order
// delivery with out-of-order fills, ring wrap-around, space blocking,
// drop-after-use, and close semantics — plus a multi-producer stress test.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/staging_buffer.hpp"

namespace nopfs::core {
namespace {

void fill_and_commit(StagingBuffer& buffer, std::uint64_t seq, data::SampleId id,
                     std::size_t size, std::uint8_t value) {
  auto slot = buffer.reserve(seq, id, size);
  ASSERT_TRUE(slot.has_value());
  std::fill(slot->data.begin(), slot->data.end(), value);
  buffer.commit(seq);
}

TEST(StagingBuffer, InOrderRoundTrip) {
  StagingBuffer buffer(1024);
  fill_and_commit(buffer, 0, 100, 16, 0xAB);
  auto sample = buffer.consume(0);
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->sample, 100u);
  EXPECT_EQ(sample->data.size(), 16u);
  EXPECT_EQ(sample->data[0], 0xAB);
  buffer.release(0);
  EXPECT_EQ(buffer.used_bytes(), 0u);
}

TEST(StagingBuffer, OutOfOrderCommitStillDeliversInOrder) {
  StagingBuffer buffer(1024);
  auto slot0 = buffer.reserve(0, 10, 8);
  auto slot1 = buffer.reserve(1, 11, 8);
  ASSERT_TRUE(slot0 && slot1);
  buffer.commit(1);  // later slot completes first

  std::atomic<bool> got0{false};
  std::thread consumer([&] {
    auto sample = buffer.consume(0);
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(sample->sample, 10u);
    got0.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(got0.load());  // seq 0 not committed yet
  buffer.commit(0);
  consumer.join();
  EXPECT_TRUE(got0.load());
}

TEST(StagingBuffer, ProducerBlocksUntilSpaceFreed) {
  StagingBuffer buffer(32);
  fill_and_commit(buffer, 0, 1, 24, 1);
  std::atomic<bool> reserved{false};
  std::thread producer([&] {
    auto slot = buffer.reserve(1, 2, 24);  // does not fit until release
    reserved.store(true);
    ASSERT_TRUE(slot.has_value());
    buffer.commit(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(reserved.load());
  auto sample = buffer.consume(0);
  ASSERT_TRUE(sample.has_value());
  buffer.release(0);
  producer.join();
  EXPECT_TRUE(reserved.load());
}

TEST(StagingBuffer, RingWrapsAround) {
  StagingBuffer buffer(100);
  // Fill/consume repeatedly with sizes that force wrap-around gaps.
  for (std::uint64_t seq = 0; seq < 50; ++seq) {
    const std::size_t size = 30 + (seq % 3) * 13;  // 30, 43, 56
    auto slot = buffer.reserve(seq, seq, size);
    ASSERT_TRUE(slot.has_value()) << "seq " << seq;
    std::fill(slot->data.begin(), slot->data.end(),
              static_cast<std::uint8_t>(seq & 0xff));
    buffer.commit(seq);
    auto sample = buffer.consume(seq);
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(sample->data.front(), static_cast<std::uint8_t>(seq & 0xff));
    EXPECT_EQ(sample->data.size(), size);
    buffer.release(seq);
  }
  EXPECT_EQ(buffer.used_bytes(), 0u);
}

TEST(StagingBuffer, PipelinedWrapWithMultipleLiveEntries) {
  StagingBuffer buffer(100);
  std::uint64_t produce = 0;
  std::uint64_t consume = 0;
  // Keep two 30-byte entries live at a time for many cycles.
  fill_and_commit(buffer, produce, produce, 30, 1);
  ++produce;
  for (int cycle = 0; cycle < 40; ++cycle) {
    fill_and_commit(buffer, produce, produce, 30, 2);
    ++produce;
    auto sample = buffer.consume(consume);
    ASSERT_TRUE(sample.has_value());
    buffer.release(consume);
    ++consume;
  }
}

TEST(StagingBuffer, OversizedSampleRejected) {
  StagingBuffer buffer(64);
  EXPECT_THROW((void)buffer.reserve(0, 0, 65), std::invalid_argument);
  EXPECT_THROW(StagingBuffer(0), std::invalid_argument);
}

TEST(StagingBuffer, ReserveOutOfOrderRejected) {
  StagingBuffer buffer(1024);
  (void)buffer.reserve(5, 0, 8);
  EXPECT_THROW((void)buffer.reserve(5, 0, 8), std::logic_error);
  EXPECT_THROW((void)buffer.reserve(3, 0, 8), std::logic_error);
}

TEST(StagingBuffer, ReleaseProtocolViolationsRejected) {
  StagingBuffer buffer(1024);
  EXPECT_THROW(buffer.release(0), std::logic_error);  // nothing reserved
  fill_and_commit(buffer, 0, 1, 8, 0);
  EXPECT_THROW(buffer.release(0), std::logic_error);  // not consumed yet
  (void)buffer.consume(0);
  EXPECT_THROW(buffer.release(1), std::logic_error);  // wrong seq
  buffer.release(0);
  EXPECT_THROW(buffer.commit(9), std::logic_error);  // unknown seq
}

TEST(StagingBuffer, CloseUnblocksEveryone) {
  StagingBuffer buffer(32);
  fill_and_commit(buffer, 0, 1, 32, 0);
  std::thread producer([&] {
    auto slot = buffer.reserve(1, 2, 32);  // blocked: buffer full
    EXPECT_FALSE(slot.has_value());        // released by close()
  });
  std::thread consumer([&] {
    auto sample = buffer.consume(5);  // blocked: seq 5 never arrives
    EXPECT_FALSE(sample.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  buffer.close();
  producer.join();
  consumer.join();
}

TEST(StagingBuffer, StallTimeAccumulates) {
  StagingBuffer buffer(1024);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    fill_and_commit(buffer, 0, 1, 8, 0);
  });
  auto sample = buffer.consume(0);
  producer.join();
  ASSERT_TRUE(sample.has_value());
  EXPECT_GE(buffer.consumer_stall_s(), 0.04);
}

TEST(StagingBuffer, MultiProducerStress) {
  // 4 producers fill 400 slots dispensed in order; a consumer checks strict
  // order and content integrity.
  constexpr std::uint64_t kTotal = 400;
  StagingBuffer buffer(4096);
  std::mutex dispense;
  std::uint64_t next = 0;

  auto producer_main = [&] {
    for (;;) {
      std::optional<ProducerSlot> slot;
      std::uint64_t seq = 0;
      {
        const std::scoped_lock lock(dispense);
        if (next >= kTotal) return;
        seq = next;
        slot = buffer.reserve(seq, seq * 3, 16 + seq % 7);
        if (!slot.has_value()) return;
        next = seq + 1;
      }
      std::fill(slot->data.begin(), slot->data.end(),
                static_cast<std::uint8_t>(seq & 0xff));
      buffer.commit(seq);
    }
  };

  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) producers.emplace_back(producer_main);

  for (std::uint64_t seq = 0; seq < kTotal; ++seq) {
    auto sample = buffer.consume(seq);
    ASSERT_TRUE(sample.has_value());
    EXPECT_EQ(sample->seq, seq);
    EXPECT_EQ(sample->sample, seq * 3);
    EXPECT_EQ(sample->data.size(), 16 + seq % 7);
    for (const auto byte : sample->data) {
      ASSERT_EQ(byte, static_cast<std::uint8_t>(seq & 0xff));
    }
    buffer.release(seq);
  }
  for (auto& producer : producers) producer.join();
  EXPECT_EQ(buffer.used_bytes(), 0u);
}

}  // namespace
}  // namespace nopfs::core
