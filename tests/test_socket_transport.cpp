// Tests for the TCP/loopback transport: the rendezvous handshake, the wire
// protocol (framing, collectives, fetch round-trip, watermark gossip) and
// byte accounting.  Worlds here are threads of this process, each owning a
// real socket endpoint — the multi-PROCESS path is covered by
// tests/test_distributed_runtime.cpp.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "net/socket_transport.hpp"
#include "net/wire.hpp"

namespace nopfs::net {
namespace {

/// Builds a connected world of `n` SocketTransports over loopback.
std::vector<std::unique_ptr<SocketTransport>> make_world(int n,
                                                         double timeout_s = 30.0) {
  const std::uint16_t port = pick_free_port();
  std::vector<std::unique_ptr<SocketTransport>> endpoints(
      static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([&, r] {
      SocketOptions options;
      options.rank = r;
      options.world_size = n;
      options.rendezvous_port = port;
      options.timeout_s = timeout_s;
      endpoints[static_cast<std::size_t>(r)] =
          std::make_unique<SocketTransport>(options);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& endpoint : endpoints) {
    if (endpoint == nullptr) throw std::runtime_error("handshake failed");
  }
  return endpoints;
}

TEST(Wire, HeaderRoundTrip) {
  std::uint8_t raw[wire::kHeaderBytes];
  wire::encode_header(raw, wire::MsgType::kFetch, 0xDEADBEEFCAFEull, 12345);
  const wire::FrameHeader header = wire::decode_header(raw);
  EXPECT_EQ(header.type, wire::MsgType::kFetch);
  EXPECT_EQ(header.arg, 0xDEADBEEFCAFEull);
  EXPECT_EQ(header.payload_len, 12345u);
}

TEST(Wire, RejectsBadMagicAndOversizedPayload) {
  std::uint8_t raw[wire::kHeaderBytes];
  wire::encode_header(raw, wire::MsgType::kHit, 1, 1);
  raw[0] ^= 0xff;
  EXPECT_THROW((void)wire::decode_header(raw), std::runtime_error);
  wire::encode_header(raw, wire::MsgType::kHit, 1, wire::kMaxPayloadBytes + 1);
  EXPECT_THROW((void)wire::decode_header(raw), std::runtime_error);
}

TEST(Wire, ReaderThrowsOnTruncation) {
  std::vector<std::uint8_t> buf;
  wire::put_u32(buf, 7);
  wire::Reader reader(buf);
  EXPECT_EQ(reader.u32(), 7u);
  EXPECT_THROW((void)reader.u16(), std::runtime_error);
}

TEST(Wire, PfsDeltaAndGammaRoundTrip) {
  // Negative reader deltas (weighted releases) must survive the two's-
  // complement packing, and the per-sender sequence rides along.
  const wire::PfsDelta delta = wire::decode_pfs_delta(
      wire::encode_pfs_delta({-12, 0xFEEDu}));
  EXPECT_EQ(delta.reader_delta, -12);
  EXPECT_EQ(delta.seq, 0xFEEDu);
  const wire::PfsGamma gamma =
      wire::decode_pfs_gamma(wire::encode_pfs_gamma({37, 41}));
  EXPECT_EQ(gamma.gamma, 37);
  EXPECT_EQ(gamma.seq, 41u);
  EXPECT_THROW((void)wire::decode_pfs_delta({1, 2, 3}), std::runtime_error);
}

TEST(Wire, RejectsRetiredUnaryContentionFrameType) {
  // Type 11 was kPfsGamma before the delta protocol; the valid range now
  // ends at 10, so a frame from the retired numbering fails loudly.
  std::uint8_t raw[wire::kHeaderBytes];
  wire::encode_header(raw, static_cast<wire::MsgType>(11), 0, 0);
  EXPECT_THROW((void)wire::decode_header(raw), std::runtime_error);
}

TEST(SocketTransport, RejectsInvalidOptions) {
  SocketOptions options;
  options.world_size = 0;
  options.rendezvous_port = 1;
  EXPECT_THROW(SocketTransport{options}, std::invalid_argument);
  options.world_size = 2;
  options.rank = 2;
  EXPECT_THROW(SocketTransport{options}, std::invalid_argument);
  options.rank = 0;
  options.rendezvous_port = 0;
  EXPECT_THROW(SocketTransport{options}, std::invalid_argument);
}

TEST(SocketTransport, WorldSizeOneHandshakesInstantly) {
  SocketOptions options;
  options.rendezvous_port = pick_free_port();
  SocketTransport transport(options);
  EXPECT_EQ(transport.rank(), 0);
  EXPECT_EQ(transport.world_size(), 1);
  transport.barrier();  // no peers: must not block
  const auto all = transport.allgather(Bytes{9, 9});
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], (Bytes{9, 9}));
}

TEST(SocketTransport, RankAndWorldSize) {
  auto endpoints = make_world(3);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(endpoints[static_cast<std::size_t>(r)]->rank(), r);
    EXPECT_EQ(endpoints[static_cast<std::size_t>(r)]->world_size(), 3);
    EXPECT_NE(endpoints[static_cast<std::size_t>(r)]->serve_port(), 0);
  }
}

TEST(SocketTransport, AllgatherDeliversEveryContribution) {
  constexpr int kN = 4;
  auto endpoints = make_world(kN);
  std::vector<std::vector<Bytes>> results(kN);
  std::vector<std::thread> threads;
  for (int r = 0; r < kN; ++r) {
    threads.emplace_back([&, r] {
      Bytes mine = {static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(r * 2)};
      results[static_cast<std::size_t>(r)] =
          endpoints[static_cast<std::size_t>(r)]->allgather(std::move(mine));
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < kN; ++r) {
    ASSERT_EQ(results[static_cast<std::size_t>(r)].size(),
              static_cast<std::size_t>(kN));
    for (int peer = 0; peer < kN; ++peer) {
      const Bytes& slot =
          results[static_cast<std::size_t>(r)][static_cast<std::size_t>(peer)];
      ASSERT_EQ(slot.size(), 2u);
      EXPECT_EQ(slot[0], peer);
      EXPECT_EQ(slot[1], peer * 2);
    }
  }
}

TEST(SocketTransport, RepeatedCollectivesDoNotCrossTalk) {
  constexpr int kN = 3;
  constexpr int kRounds = 25;
  auto endpoints = make_world(kN);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kN; ++r) {
    threads.emplace_back([&, r] {
      for (int round = 0; round < kRounds; ++round) {
        Bytes mine = {static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(round)};
        const auto all =
            endpoints[static_cast<std::size_t>(r)]->allgather(std::move(mine));
        for (int peer = 0; peer < kN; ++peer) {
          const Bytes& slot = all[static_cast<std::size_t>(peer)];
          if (slot.size() != 2 || slot[0] != peer || slot[1] != round) ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SocketTransport, BarrierSynchronizes) {
  constexpr int kN = 4;
  auto endpoints = make_world(kN);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < kN; ++r) {
    threads.emplace_back([&, r] {
      ++before;
      endpoints[static_cast<std::size_t>(r)]->barrier();
      if (before.load() != kN) violated.store(true);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
}

TEST(SocketTransport, FetchSampleRoundTrip) {
  auto endpoints = make_world(2);
  endpoints[1]->set_serve_handler([](std::uint64_t id) -> std::optional<Bytes> {
    if (id == 42) return Bytes{1, 2, 3};
    return std::nullopt;
  });
  auto hit = endpoints[0]->fetch_sample(1, 42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (Bytes{1, 2, 3}));
  const auto miss = endpoints[0]->fetch_sample(1, 7);
  EXPECT_FALSE(miss.has_value());
}

TEST(SocketTransport, MixedReactorBackendsInteroperateOnOneWorld) {
  // The backend is a per-process choice, not a protocol revision: a world
  // where rank 0 polls with epoll and rank 1 with io_uring must handshake
  // and serve fetches both ways — the bytes on the wire are identical, and
  // each side reports the backend it actually runs.
  if (!io_uring_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  const std::uint16_t port = pick_free_port();
  std::vector<std::unique_ptr<SocketTransport>> endpoints(2);
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      SocketOptions options;
      options.rank = r;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      options.reactor_backend =
          r == 0 ? ReactorBackend::kEpoll : ReactorBackend::kIoUring;
      endpoints[static_cast<std::size_t>(r)] =
          std::make_unique<SocketTransport>(options);
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_NE(endpoints[0], nullptr);
  ASSERT_NE(endpoints[1], nullptr);
  EXPECT_STREQ(endpoints[0]->reactor_backend(), "epoll");
  EXPECT_STREQ(endpoints[1]->reactor_backend(), "io_uring");

  for (int serving = 0; serving < 2; ++serving) {
    endpoints[static_cast<std::size_t>(serving)]->set_serve_handler(
        [serving](std::uint64_t id) -> std::optional<Bytes> {
          return Bytes{static_cast<std::uint8_t>(serving),
                       static_cast<std::uint8_t>(id)};
        });
    const auto bytes =
        endpoints[static_cast<std::size_t>(1 - serving)]->fetch_sample(serving, 9);
    ASSERT_TRUE(bytes.has_value());
    EXPECT_EQ(*bytes, (Bytes{static_cast<std::uint8_t>(serving), 9}));
  }
}

TEST(SocketTransport, FetchWithoutHandlerIsMiss) {
  auto endpoints = make_world(2);
  EXPECT_FALSE(endpoints[0]->fetch_sample(1, 1).has_value());
}

TEST(SocketTransport, FetchFromSelfRejected) {
  auto endpoints = make_world(2);
  EXPECT_THROW((void)endpoints[0]->fetch_sample(0, 1), std::invalid_argument);
  EXPECT_THROW((void)endpoints[0]->fetch_sample(9, 1), std::invalid_argument);
}

TEST(SocketTransport, LargePayloadRoundTrips) {
  // Multi-MB payloads cross the socket in many segments: exercises the
  // partial-read/partial-write paths of the framing layer.
  auto endpoints = make_world(2);
  Bytes big(3 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  endpoints[1]->set_serve_handler(
      [&big](std::uint64_t) -> std::optional<Bytes> { return big; });
  const auto fetched = endpoints[0]->fetch_sample(1, 0);
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(*fetched, big);
}

TEST(SocketTransport, TransferAccountingWithoutNic) {
  auto endpoints = make_world(2);
  endpoints[1]->set_serve_handler(
      [](std::uint64_t) -> std::optional<Bytes> { return Bytes(1024 * 1024, 0); });
  (void)endpoints[0]->fetch_sample(1, 0);
  EXPECT_NEAR(endpoints[0]->transferred_mb(), 1.0, 1e-9);
}

TEST(SocketTransport, WatermarksPropagate) {
  auto endpoints = make_world(3);
  EXPECT_EQ(endpoints[0]->watermark_of(1), 0u);
  endpoints[1]->publish_watermark(123);
  // Gossip is asynchronous (unlike SimTransport's shared memory): poll.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while ((endpoints[0]->watermark_of(1) != 123u ||
          endpoints[2]->watermark_of(1) != 123u) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(endpoints[0]->watermark_of(1), 123u);
  EXPECT_EQ(endpoints[2]->watermark_of(1), 123u);
  EXPECT_EQ(endpoints[1]->watermark_of(1), 123u);  // own view is immediate
}

TEST(SocketTransport, ConcurrentFetchesAreSafe) {
  constexpr int kN = 4;
  auto endpoints = make_world(kN);
  for (int r = 0; r < kN; ++r) {
    endpoints[static_cast<std::size_t>(r)]->set_serve_handler(
        [r](std::uint64_t id) -> std::optional<Bytes> {
          return Bytes{static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(id)};
        });
  }
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kN; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < 100; ++i) {
        const int peer = (r + 1 + i % (kN - 1)) % kN;
        if (peer == r) continue;
        const auto bytes =
            endpoints[static_cast<std::size_t>(r)]->fetch_sample(peer, i % 250);
        if (!bytes.has_value() || (*bytes)[0] != peer ||
            (*bytes)[1] != static_cast<std::uint8_t>(i % 250)) {
          ++bad;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(SocketTransport, ProtocolVersionMismatchFailsHandshake) {
  // An unversioned (pre-kPfsDelta) peer leads its kHello with the world
  // size where the protocol version now goes — the root must reject it at
  // the handshake instead of misreading contention frames mid-rollout.
  const std::uint16_t port = pick_free_port();
  std::atomic<bool> root_failed{false};
  std::thread root([&] {
    try {
      SocketOptions options;
      options.rank = 0;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 20.0;
      SocketTransport transport(options);
    } catch (const std::runtime_error&) {
      root_failed = true;
    }
  });
  std::thread old_peer([&] {
    // Hand-rolled legacy kHello: [u32 world, u16 serve_port], no version.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    int connected = -1;
    while ((connected = ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                                  sizeof(addr))) != 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ASSERT_EQ(connected, 0);
    Bytes payload;
    wire::put_u32(payload, 2);   // world size where the version belongs
    wire::put_u16(payload, 1);   // serve port
    std::uint8_t header[wire::kHeaderBytes];
    wire::encode_header(header, wire::MsgType::kHello, 1,
                        static_cast<std::uint32_t>(payload.size()));
    (void)::send(fd, header, sizeof(header), MSG_NOSIGNAL);
    (void)::send(fd, payload.data(), payload.size(), MSG_NOSIGNAL);
    // Hold the socket open until the root has reacted, then close.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ::close(fd);
  });
  root.join();
  old_peer.join();
  EXPECT_TRUE(root_failed.load());
}

TEST(SocketTransport, WorldSizeDisagreementFailsHandshake) {
  const std::uint16_t port = pick_free_port();
  std::atomic<int> failures{0};
  std::thread root([&] {
    try {
      SocketOptions options;
      options.rank = 0;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 20.0;
      SocketTransport transport(options);
    } catch (const std::runtime_error&) {
      ++failures;
    }
  });
  std::thread peer([&] {
    try {
      SocketOptions options;
      options.rank = 1;
      options.world_size = 3;  // disagrees with the root
      options.rendezvous_port = port;
      options.timeout_s = 20.0;
      SocketTransport transport(options);
      transport.barrier();
    } catch (const std::runtime_error&) {
      ++failures;
    }
  });
  root.join();
  peer.join();
  EXPECT_GE(failures.load(), 1);
}

}  // namespace
}  // namespace nopfs::net
