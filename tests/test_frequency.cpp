// Tests for the access-frequency analysis (paper Sec. 3.1, Fig. 3, Lemma 1).

#include <gtest/gtest.h>

#include <cmath>

#include "core/frequency.hpp"

namespace nopfs::core {
namespace {

StreamConfig make_config(std::uint64_t f, int n, int e, std::uint64_t b) {
  StreamConfig config;
  config.seed = 314;
  config.num_samples = f;
  config.num_workers = n;
  config.num_epochs = e;
  config.global_batch = b;
  return config;
}

TEST(Frequency, CountsSumToStreamLength) {
  const AccessStreamGenerator gen(make_config(1024, 4, 6, 64));
  const FrequencyMap freqs = count_worker_frequencies(gen, 1);
  std::uint64_t total = 0;
  for (const auto& [sample, count] : freqs) total += count;
  EXPECT_EQ(total, gen.worker_stream(1).size());
}

TEST(Frequency, AllWorkersCoverEveryAccess) {
  const AccessStreamGenerator gen(make_config(512, 4, 4, 64));
  // Sum over workers of per-sample counts must be exactly E for every
  // consumed sample (each sample read exactly once per epoch).
  std::vector<std::uint32_t> total(512, 0);
  for (int w = 0; w < 4; ++w) {
    for (const auto& [sample, count] : count_worker_frequencies(gen, w)) {
      total[sample] += count;
    }
  }
  for (std::uint64_t k = 0; k < 512; ++k) {
    EXPECT_EQ(total[k], 4u) << "sample " << k;
  }
}

TEST(Frequency, HistogramCountsAllSamples) {
  const AccessStreamGenerator gen(make_config(1000, 4, 8, 40));
  const auto hist = frequency_histogram(gen, 0, 16);
  EXPECT_EQ(hist.total(), 1000u);  // every sample lands in some bin
}

TEST(Frequency, MeanAccessIsEOverN) {
  const int n = 4;
  const int e = 16;
  const AccessStreamGenerator gen(make_config(2048, n, e, 128));
  const FrequencyMap freqs = count_worker_frequencies(gen, 2);
  double total = 0.0;
  for (const auto& [sample, count] : freqs) total += count;
  // Average over all F samples (untouched ones count zero).
  EXPECT_NEAR(total / 2048.0, static_cast<double>(e) / n, 0.01);
}

TEST(Frequency, PaperImageNetExpectation) {
  // Paper Sec. 3.1: N=16, E=90, F=1,281,167, delta=0.8 -> expected ~31,635
  // samples accessed more than 10 times by one worker.
  const double expected = expected_samples_above(1'281'167, 16, 90, 0.8);
  EXPECT_NEAR(expected, 31'635.0, 500.0);
}

TEST(Frequency, AnalyticMatchesExactStream) {
  // The exact clairvoyant counts must agree with the Binomial model
  // (the paper validates this with Monte-Carlo; we use the real stream).
  const std::uint64_t f = 20'000;
  const int n = 8;
  const int e = 24;
  const AccessStreamGenerator gen(make_config(f, n, e, 400));
  const double delta = 1.0;
  const double mu = static_cast<double>(e) / n;
  const auto threshold = static_cast<std::int64_t>(std::ceil((1.0 + delta) * mu));
  const auto hist = frequency_histogram(gen, 3, 32);
  const double measured = static_cast<double>(hist.count_greater(threshold - 1));
  const double analytic = expected_samples_above(f, n, e, delta);
  EXPECT_NEAR(measured, analytic, std::max(50.0, analytic * 0.15));
}

TEST(Frequency, Lemma1BoundHoldsOnRealStreams) {
  // If worker w accesses sample k at least ceil((1+delta) E/N) times, some
  // other worker accesses it at most ceil((N-1-delta)/(N-1) * E/N) times.
  const std::uint64_t f = 4'000;
  const int n = 4;
  const int e = 20;
  const double delta = 1.0;
  const AccessStreamGenerator gen(make_config(f, n, e, 200));
  std::vector<FrequencyMap> freqs;
  for (int w = 0; w < n; ++w) freqs.push_back(count_worker_frequencies(gen, w));

  const double mu = static_cast<double>(e) / n;
  const auto high = static_cast<std::uint32_t>(std::ceil((1.0 + delta) * mu));
  const std::uint64_t bound = lemma1_other_worker_bound(n, e, delta);
  int checked = 0;
  for (const auto& [sample, count] : freqs[0]) {
    if (count < high) continue;
    ++checked;
    std::uint32_t min_other = 0xffffffff;
    for (int w = 1; w < n; ++w) {
      const auto it = freqs[w].find(sample);
      min_other = std::min(min_other, it == freqs[w].end() ? 0u : it->second);
    }
    EXPECT_LE(min_other, bound) << "sample " << sample;
  }
  EXPECT_GT(checked, 0) << "test vacuous: no high-frequency samples";
}

TEST(Frequency, Lemma1BoundFormula) {
  // N=16, E=90, delta=0.8: mu = 5.625; bound = ceil(14.2/15 * 5.625) = 6.
  EXPECT_EQ(lemma1_other_worker_bound(16, 90, 0.8), 6u);
}

TEST(Frequency, SortedByFrequencyDeterministicOrder) {
  FrequencyMap freqs;
  freqs[5] = 3;
  freqs[2] = 7;
  freqs[9] = 3;
  freqs[1] = 1;
  const auto sorted = sorted_by_frequency(freqs);
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].first, 2u);
  EXPECT_EQ(sorted[1].first, 5u);  // ties broken by ascending id
  EXPECT_EQ(sorted[2].first, 9u);
  EXPECT_EQ(sorted[3].first, 1u);
}

TEST(Frequency, ExpectedSamplesAboveEdgeCases) {
  // delta so large nothing qualifies.
  EXPECT_NEAR(expected_samples_above(1000, 2, 4, 100.0), 0.0, 1e-6);
  // Single worker: every sample is accessed exactly E times, so any
  // threshold beyond E qualifies nothing...
  EXPECT_NEAR(expected_samples_above(1000, 1, 4, 0.5), 0.0, 1e-6);
  // ...while the paper's inclusive ceil(1+delta)mu threshold at delta=0
  // counts everything (sum starts at exactly E).
  EXPECT_NEAR(expected_samples_above(1000, 1, 4, 0.0), 1000.0, 1e-6);
}

}  // namespace
}  // namespace nopfs::core
