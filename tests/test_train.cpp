// Tests for the ResNet-50/ImageNet accuracy model used by the Fig. 16
// end-to-end reproduction.

#include <gtest/gtest.h>

#include "train/accuracy_model.hpp"

namespace nopfs::train {
namespace {

TEST(AccuracyModel, ReachesPaperFinalAccuracy) {
  EXPECT_DOUBLE_EQ(resnet50_top1_at_epoch(90), 76.5);
  EXPECT_DOUBLE_EQ(resnet50_top1_at_epoch(1000), 76.5);  // clamped
}

TEST(AccuracyModel, MonotoneNonDecreasing) {
  double previous = -1.0;
  for (double e = 0.0; e <= 90.0; e += 0.5) {
    const double acc = resnet50_top1_at_epoch(e);
    EXPECT_GE(acc, previous) << "epoch " << e;
    previous = acc;
  }
}

TEST(AccuracyModel, LrDecayJumps) {
  // The Goyal schedule jumps at epochs 30 and 60.
  EXPECT_GT(resnet50_top1_at_epoch(31) - resnet50_top1_at_epoch(30), 5.0);
  EXPECT_GT(resnet50_top1_at_epoch(61) - resnet50_top1_at_epoch(60), 2.0);
}

TEST(AccuracyModel, CurveShape) {
  const auto curve = resnet50_top1_curve();
  ASSERT_EQ(curve.size(), 91u);
  EXPECT_LT(curve[0], 5.0);
  EXPECT_GT(curve[10], 45.0);
  EXPECT_DOUBLE_EQ(curve[90], 76.5);
}

TEST(AccuracyModel, InterpolatesBetweenAnchors) {
  const double mid = resnet50_top1_at_epoch(32.5);
  EXPECT_GT(mid, resnet50_top1_at_epoch(31));
  EXPECT_LT(mid, resnet50_top1_at_epoch(35));
}

}  // namespace
}  // namespace nopfs::train
