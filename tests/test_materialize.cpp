// Tests for on-disk dataset materialization and deterministic content.

#include <gtest/gtest.h>

#include <filesystem>

#include "data/dataset.hpp"
#include "data/materialize.hpp"
#include "util/units.hpp"

namespace nopfs::data {
namespace {

namespace fs = std::filesystem;

DatasetSpec tiny_spec() {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.num_samples = 20;
  spec.mean_size_mb = 0.01;  // ~10 KB files
  spec.stddev_size_mb = 0.005;
  spec.num_classes = 4;
  return spec;
}

TEST(SampleContent, DeterministicAndIdDependent) {
  std::vector<std::uint8_t> a(256);
  std::vector<std::uint8_t> b(256);
  fill_sample_content(7, a);
  fill_sample_content(7, b);
  EXPECT_EQ(a, b);
  fill_sample_content(8, b);
  EXPECT_NE(a, b);
  EXPECT_TRUE(verify_sample_content(7, a));
  EXPECT_FALSE(verify_sample_content(9, a));
}

TEST(SampleContent, VerifyDetectsSingleBitFlip) {
  std::vector<std::uint8_t> bytes(128);
  fill_sample_content(3, bytes);
  bytes[100] ^= 1;
  EXPECT_FALSE(verify_sample_content(3, bytes));
}

TEST(Materialize, WritesAllFilesWithCorrectSizes) {
  const Dataset ds = Dataset::synthetic(tiny_spec(), 5);
  const fs::path root = fs::temp_directory_path() / "nopfs_test_mat1";
  {
    MaterializedDataset mat(ds, root);
    EXPECT_EQ(mat.num_samples(), ds.num_samples());
    for (SampleId k = 0; k < ds.num_samples(); ++k) {
      ASSERT_TRUE(fs::exists(mat.path_of(k)));
      EXPECT_EQ(fs::file_size(mat.path_of(k)), util::mb_to_bytes(ds.size_mb(k)));
    }
  }
  // Cleaned up on destruction.
  EXPECT_FALSE(fs::exists(root));
}

TEST(Materialize, ReadsBackVerifiableContent) {
  const Dataset ds = Dataset::synthetic(tiny_spec(), 6);
  const fs::path root = fs::temp_directory_path() / "nopfs_test_mat2";
  MaterializedDataset mat(ds, root);
  for (SampleId k = 0; k < ds.num_samples(); ++k) {
    const auto bytes = mat.read(k);
    EXPECT_TRUE(verify_sample_content(k, bytes)) << "sample " << k;
  }
}

TEST(Materialize, ImageFolderLayout) {
  const Dataset ds = Dataset::synthetic(tiny_spec(), 7);
  const fs::path root = fs::temp_directory_path() / "nopfs_test_mat3";
  MaterializedDataset mat(ds, root);
  // One directory per class that has samples.
  for (SampleId k = 0; k < ds.num_samples(); ++k) {
    const auto parent = mat.path_of(k).parent_path().filename().string();
    EXPECT_EQ(parent, "class_" + std::to_string(ds.class_of(k)));
  }
}

TEST(Materialize, KeepPreservesTree) {
  const Dataset ds = Dataset::synthetic(tiny_spec(), 8);
  const fs::path root = fs::temp_directory_path() / "nopfs_test_mat4";
  {
    MaterializedDataset mat(ds, root);
    mat.keep();
  }
  EXPECT_TRUE(fs::exists(root));
  fs::remove_all(root);
}

}  // namespace
}  // namespace nopfs::data
