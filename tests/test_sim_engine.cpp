// Tests for the performance-simulator engine: conservation properties,
// the pipeline recurrence, barriers, and the holder table.

#include <gtest/gtest.h>

#include <numeric>

#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "tiers/params.hpp"

namespace nopfs::sim {
namespace {

SimConfig small_config(int workers = 4, int epochs = 3) {
  SimConfig config;
  config.system = tiers::presets::sim_cluster(workers);
  config.num_epochs = epochs;
  config.per_worker_batch = 8;
  config.seed = 99;
  return config;
}

data::Dataset small_dataset(std::uint64_t f = 2048, float mb = 0.1f) {
  return data::Dataset("sim-test", std::vector<float>(f, mb));
}

TEST(HolderTable, AddQueryMark) {
  HolderTable table(10, 4);
  EXPECT_TRUE(table.add(3, /*worker=*/1, /*class=*/0));
  EXPECT_FALSE(table.add(3, 1, 0));  // duplicate worker
  EXPECT_TRUE(table.add(3, 2, 1));
  EXPECT_EQ(table.planned_class(3, 1), 0);
  EXPECT_EQ(table.planned_class(3, 2), 1);
  EXPECT_EQ(table.planned_class(3, 0), -1);
  EXPECT_EQ(table.local_cached_class(3, 1), -1);  // not cached yet
  table.mark_cached(3, 1);
  EXPECT_EQ(table.local_cached_class(3, 1), 0);
  int peer = -1;
  EXPECT_EQ(table.best_remote_class(3, /*self=*/0, &peer), 0);
  EXPECT_EQ(peer, 1);
  EXPECT_EQ(table.best_remote_class(3, /*self=*/1, &peer), -1);  // 2 uncached
  table.mark_cached(3, 2);
  EXPECT_EQ(table.best_remote_class(3, 1, &peer), 1);
  EXPECT_EQ(peer, 2);
  EXPECT_TRUE(table.has_any(3));
  EXPECT_FALSE(table.has_any(4));
  EXPECT_EQ(table.first_owner(3), 1);
  EXPECT_EQ(table.first_owner(4), -1);
}

TEST(HolderTable, SlotOverflowDropsNotCrashes) {
  HolderTable table(2, 2);
  EXPECT_TRUE(table.add(0, 0, 0));
  EXPECT_TRUE(table.add(0, 1, 0));
  EXPECT_FALSE(table.add(0, 2, 0));  // slots full
  EXPECT_EQ(table.dropped_entries(), 1u);
  EXPECT_EQ(table.total_entries(), 2u);
}

TEST(HolderTable, MarkSampleCachedAll) {
  HolderTable table(4, 3);
  table.add(1, 0, 0);
  table.add(1, 2, 1);
  EXPECT_FALSE(table.any_cached(1));
  table.mark_sample_cached_all(1);
  EXPECT_TRUE(table.any_cached(1));
  EXPECT_EQ(table.local_cached_class(1, 0), 0);
  EXPECT_EQ(table.local_cached_class(1, 2), 1);
}

TEST(Engine, PerfectPolicyIsComputeBound) {
  const SimConfig config = small_config();
  const auto dataset = small_dataset();
  PerfectPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  ASSERT_TRUE(result.supported);
  // Lower bound: per-worker compute = accesses * size / c.
  const std::uint64_t per_worker =
      3 * (2048 / 32) * 8;  // epochs * iterations * local batch
  const double expected = per_worker * 0.1 / 64.0;
  EXPECT_NEAR(result.total_s, expected, expected * 0.01);
  EXPECT_NEAR(result.stall_s, 0.0, 1e-9);
  EXPECT_EQ(result.epoch_s.size(), 3u);
}

TEST(Engine, EpochTimesSumToTotal) {
  const SimConfig config = small_config();
  const auto dataset = small_dataset();
  StagingBufferPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  const double epoch_sum =
      std::accumulate(result.epoch_s.begin(), result.epoch_s.end(), 0.0);
  EXPECT_NEAR(epoch_sum + result.prestage_s, result.total_s, 1e-6);
}

TEST(Engine, LocationCountsConserveAccesses) {
  const SimConfig config = small_config();
  const auto dataset = small_dataset();
  NoPFSPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  std::uint64_t fetches = 0;
  for (int loc = static_cast<int>(Location::kLocal);
       loc < static_cast<int>(Location::kCount); ++loc) {
    fetches += result.location_count[loc];
  }
  // Every consumed access fetched exactly once: E * T * B.
  EXPECT_EQ(fetches, 3u * (2048 / 32) * 32);
  // The staging-write stage sees every access too.
  EXPECT_EQ(result.location_count[static_cast<int>(Location::kStagingWrite)], fetches);
}

TEST(Engine, DeterministicAcrossRuns) {
  const SimConfig config = small_config();
  const auto dataset = small_dataset();
  NoPFSPolicy a;
  NoPFSPolicy b;
  const SimResult ra = simulate(config, dataset, a);
  const SimResult rb = simulate(config, dataset, b);
  EXPECT_DOUBLE_EQ(ra.total_s, rb.total_s);
  EXPECT_EQ(ra.batch_s_rest, rb.batch_s_rest);
}

TEST(Engine, NaiveSlowerThanStagingBuffer) {
  // No prefetch overlap must cost more than double buffering (Fig. 8a's
  // Naive-vs-rest gap).
  const SimConfig config = small_config();
  const auto dataset = small_dataset();
  NaivePolicy naive;
  StagingBufferPolicy staging;
  const SimResult rn = simulate(config, dataset, naive);
  const SimResult rs = simulate(config, dataset, staging);
  EXPECT_GT(rn.total_s, rs.total_s * 1.1);
}

TEST(Engine, BatchRecordsSplitByEpoch) {
  const SimConfig config = small_config(4, 2);
  const auto dataset = small_dataset();
  StagingBufferPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  EXPECT_EQ(result.batch_s_epoch0.size(), 2048u / 32u);
  EXPECT_EQ(result.batch_s_rest.size(), 2048u / 32u);  // one more epoch
  for (const double b : result.batch_s_rest) EXPECT_GT(b, 0.0);
}

TEST(Engine, AllreduceCostAddsPerIteration) {
  SimConfig config = small_config(2, 1);
  const auto dataset = small_dataset(512);
  PerfectPolicy a;
  const SimResult without = simulate(config, dataset, a);
  config.allreduce_s = 0.01;
  PerfectPolicy b;
  const SimResult with = simulate(config, dataset, b);
  const double iters = 512.0 / 16.0;
  EXPECT_NEAR(with.total_s - without.total_s, iters * 0.01, 1e-6);
}

TEST(Engine, UnsupportedPolicyReported) {
  SimConfig config = small_config(2, 1);
  // Dataset bigger than 2 workers' RAM (120 GB each).
  const auto dataset =
      data::Dataset("big", std::vector<float>(4096, 120.0f));  // 480 GB
  LbannDynamicPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  EXPECT_FALSE(result.supported);
  EXPECT_FALSE(result.unsupported_reason.empty());
  EXPECT_DOUBLE_EQ(result.total_s, 0.0);
}

TEST(Engine, StallPlusComputeBoundsTotal) {
  const SimConfig config = small_config();
  const auto dataset = small_dataset();
  StagingBufferPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  // The critical path dominates both max-worker compute and max-worker
  // stall (with per-iteration barriers it can exceed their sum slightly
  // when the slowest worker alternates, so only the lower bounds are exact).
  EXPECT_GE(result.total_s, result.compute_s);
  EXPECT_GE(result.total_s, result.stall_s * 0.99);
  EXPECT_GT(result.stall_s, 0.0);
}

TEST(Engine, LocationNamesStable) {
  EXPECT_STREQ(location_name(Location::kStagingWrite), "staging");
  EXPECT_STREQ(location_name(Location::kLocal), "local");
  EXPECT_STREQ(location_name(Location::kRemote), "remote");
  EXPECT_STREQ(location_name(Location::kPfs), "pfs");
}

}  // namespace
}  // namespace nopfs::sim
