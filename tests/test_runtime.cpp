// Integration tests of the threaded runtime: every loader kind completes a
// small multi-worker training run against the emulated substrate with
// verified sample content, and NoPFS behaves as the paper promises
// (cache hits after epoch 0, less PFS traffic than double buffering).

#include <gtest/gtest.h>

#include "runtime/harness.hpp"
#include "tiers/params.hpp"
#include "util/units.hpp"

// Sanitizer instrumentation (2-20x slowdown, uneven across thread counts)
// invalidates wall-clock A/B assertions; CI runs those tests but skips the
// timing comparison itself.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define NOPFS_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define NOPFS_UNDER_SANITIZER 1
#endif
#endif

namespace nopfs::runtime {
namespace {

/// Small, tight system: 2 workers, slow contended PFS, roomy RAM.
RuntimeConfig small_config(baselines::LoaderKind kind) {
  RuntimeConfig config;
  config.system = tiers::presets::sim_cluster(2);
  config.system.node.staging.capacity_mb = 0.5;
  config.system.node.staging.prefetch_threads = 2;
  config.system.node.classes[0].capacity_mb = 16.0;  // RAM
  config.system.node.classes[1].capacity_mb = 32.0;  // "SSD" (memory-backed)
  config.system.node.compute_mbps = 50.0;
  config.system.node.preprocess_mbps = 500.0;
  // Slow PFS with contention: per-client rate collapses with two readers.
  // Sized so modeled device time dwarfs OS sleep granularity noise.
  config.system.pfs.agg_read_mbps = util::ThroughputCurve({{1, 20}, {2, 25}, {4, 30}});
  config.loader = kind;
  config.seed = 2025;
  config.num_epochs = 2;
  config.per_worker_batch = 4;
  config.time_scale = 50.0;
  config.loader_threads = 2;
  config.lookahead = 8;
  config.verify_content = true;
  return config;
}

data::Dataset small_dataset(std::uint64_t f = 96) {
  data::DatasetSpec spec;
  spec.name = "rt";
  spec.num_samples = f;
  spec.mean_size_mb = 0.2;
  spec.stddev_size_mb = 0.05;
  return data::Dataset::synthetic(spec, 5);
}

class LoaderRoundTrip : public ::testing::TestWithParam<baselines::LoaderKind> {};

TEST_P(LoaderRoundTrip, CompletesWithVerifiedContent) {
  const RuntimeConfig config = small_config(GetParam());
  const auto dataset = small_dataset();
  const RuntimeResult result = run_training(dataset, config);

  const std::uint64_t expected =
      2ull /*epochs*/ * (96 / 8) /*iters*/ * 8 /*global batch*/;
  EXPECT_EQ(result.verified_samples + result.verification_failures, expected);
  EXPECT_EQ(result.verification_failures, 0u);
  EXPECT_EQ(result.epoch_s.size(), 2u);
  EXPECT_EQ(result.batch_s_epoch0.size(), 96u / 8u);
  EXPECT_EQ(result.batch_s_rest.size(), 96u / 8u);
  EXPECT_GT(result.total_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllLoaders, LoaderRoundTrip,
    ::testing::Values(baselines::LoaderKind::kNoPFS, baselines::LoaderKind::kNaive,
                      baselines::LoaderKind::kPyTorch, baselines::LoaderKind::kDali,
                      baselines::LoaderKind::kSharded, baselines::LoaderKind::kLbann),
    [](const auto& info) {
      std::string name = baselines::loader_kind_name(info.param);
      std::erase_if(name, [](char c) { return !std::isalnum(static_cast<unsigned char>(c)); });
      return name;
    });

TEST(Runtime, TfDataDeliversSameCountWithoutStrictOrder) {
  // tf.data deviates from the clairvoyant order (sliding-window shuffle) but
  // must still deliver the right number of verified samples.
  const RuntimeConfig config = small_config(baselines::LoaderKind::kTfData);
  const auto dataset = small_dataset();
  const RuntimeResult result = run_training(dataset, config);
  EXPECT_EQ(result.verification_failures, 0u);
  EXPECT_EQ(result.verified_samples, 2u * 12u * 8u);
}

TEST(Runtime, NoPFSUsesCachesAfterEpochZero) {
  const RuntimeConfig config = small_config(baselines::LoaderKind::kNoPFS);
  const auto dataset = small_dataset();
  const RuntimeResult result = run_training(dataset, config);
  // 96 distinct samples, 2 epochs, 2 workers: without caching there would be
  // 192 PFS reads; NoPFS needs at most ~one per distinct sample plus slack.
  EXPECT_LT(result.stats.pfs_fetches, 140u);
  EXPECT_GT(result.stats.local_fetches + result.stats.remote_fetches, 40u);
  EXPECT_GT(result.stats.cached_samples, 0u);
}

TEST(Runtime, NoPFSFasterThanPyTorchOnContendedPfs) {
#ifdef NOPFS_UNDER_SANITIZER
  GTEST_SKIP() << "wall-clock A/B is not meaningful under sanitizers";
#endif
  // The headline end-to-end claim at miniature scale: with a slow, contended
  // PFS and ample local storage, NoPFS beats double buffering.
  auto nopfs_config = small_config(baselines::LoaderKind::kNoPFS);
  auto pytorch_config = small_config(baselines::LoaderKind::kPyTorch);
  nopfs_config.verify_content = false;
  pytorch_config.verify_content = false;
  nopfs_config.num_epochs = 3;
  pytorch_config.num_epochs = 3;
  // Halve small_config's PFS rate for this A/B: the modeled I/O gap must
  // dwarf real scheduler noise on oversubscribed (e.g. single-core) hosts,
  // where a few percent of wall-clock jitter is routine.
  const auto slow_pfs = util::ThroughputCurve({{1, 10}, {2, 12}, {4, 15}});
  nopfs_config.system.pfs.agg_read_mbps = slow_pfs;
  pytorch_config.system.pfs.agg_read_mbps = slow_pfs;
  const auto dataset = small_dataset();
  const RuntimeResult nopfs = run_training(dataset, nopfs_config);
  const RuntimeResult pytorch = run_training(dataset, pytorch_config);
  EXPECT_LT(nopfs.total_s, pytorch.total_s);
  // And it reads far less from the PFS.
  EXPECT_LT(nopfs.stats.pfs_fetches, pytorch.stats.pfs_fetches / 2);
}

TEST(Runtime, StatsAggregateAcrossWorkers) {
  const RuntimeConfig config = small_config(baselines::LoaderKind::kPyTorch);
  const auto dataset = small_dataset();
  const RuntimeResult result = run_training(dataset, config);
  // PyTorch double buffering always reads the PFS: one fetch per access.
  EXPECT_EQ(result.stats.pfs_fetches, 2u * 12u * 8u);
  EXPECT_EQ(result.stats.local_fetches, 0u);
  EXPECT_EQ(result.stats.remote_fetches, 0u);
  EXPECT_NEAR(result.stats.pfs_mb, 2.0 * 12 * 8 * dataset.mean_size_mb(),
              result.stats.pfs_mb * 0.5);
}

}  // namespace
}  // namespace nopfs::runtime
