// Direct unit tests for core::RemoteReadiness, the prefetch-progress
// heuristic of paper Sec. 5.2.2 ("if local prefetching has reached the
// corresponding access stream location, the remote worker likely has,
// too").  Previously covered only indirectly through the router tests.

#include <gtest/gtest.h>

#include <vector>

#include "core/cache_policy.hpp"
#include "core/fetch_router.hpp"

namespace nopfs::core {
namespace {

/// Two workers, two storage classes each, disjoint sample sets.
std::vector<CachePlan> two_worker_plans() {
  std::vector<CachePlan> plans(2);
  for (auto& plan : plans) plan.per_class.resize(2);
  plans[0].per_class[0].samples = {10, 11, 12};  // worker 0, class 0
  plans[0].per_class[1].samples = {20, 21};      // worker 0, class 1
  plans[1].per_class[0].samples = {30, 31, 32, 33};
  plans[1].per_class[1].samples = {40};
  return plans;
}

TEST(RemoteReadiness, PositionMapsFollowPrefetchOrder) {
  const RemoteReadiness readiness(two_worker_plans());
  EXPECT_EQ(readiness.position(0, 0, 10), 0);
  EXPECT_EQ(readiness.position(0, 0, 12), 2);
  EXPECT_EQ(readiness.position(0, 1, 21), 1);
  EXPECT_EQ(readiness.position(1, 0, 33), 3);
  EXPECT_EQ(readiness.position(1, 1, 40), 0);
}

TEST(RemoteReadiness, UnknownSamplePeerOrClassIsNotFound) {
  const RemoteReadiness readiness(two_worker_plans());
  EXPECT_EQ(readiness.position(0, 0, 999), -1);  // not in the plan
  EXPECT_EQ(readiness.position(0, 1, 10), -1);   // wrong class
  EXPECT_EQ(readiness.position(1, 0, 10), -1);   // wrong peer
  EXPECT_EQ(readiness.position(2, 0, 10), -1);   // peer out of range
  EXPECT_EQ(readiness.position(-1, 0, 10), -1);
  EXPECT_EQ(readiness.position(0, 2, 10), -1);   // class out of range
  EXPECT_EQ(readiness.position(0, -1, 10), -1);
}

TEST(RemoteReadiness, LikelyCachedBoundaryAtSelfProgress) {
  const RemoteReadiness readiness(two_worker_plans());
  // Sample 31 sits at position 1 of peer 1's class-0 order.  The heuristic
  // is strict: own progress must have PASSED the position, so equality
  // (progress == position) is still "not yet".
  EXPECT_FALSE(readiness.likely_cached(1, 0, 31, 0));
  EXPECT_FALSE(readiness.likely_cached(1, 0, 31, 1));  // boundary
  EXPECT_TRUE(readiness.likely_cached(1, 0, 31, 2));
  EXPECT_TRUE(readiness.likely_cached(1, 0, 31, 1000));
  // First-position samples flip as soon as any local progress exists.
  EXPECT_FALSE(readiness.likely_cached(1, 0, 30, 0));
  EXPECT_TRUE(readiness.likely_cached(1, 0, 30, 1));
}

TEST(RemoteReadiness, UnplannedSamplesNeverReady) {
  const RemoteReadiness readiness(two_worker_plans());
  EXPECT_FALSE(readiness.likely_cached(0, 0, 999, 1'000'000));
  EXPECT_FALSE(readiness.likely_cached(5, 0, 10, 1'000'000));
}

TEST(RemoteReadiness, MultiClassPlansAreIndependent) {
  const RemoteReadiness readiness(two_worker_plans());
  // Class-1 progress says nothing about class 0: each class has its own
  // prefetcher and its own position space.
  EXPECT_TRUE(readiness.likely_cached(0, 1, 20, 1));
  EXPECT_FALSE(readiness.likely_cached(0, 0, 20, 1));  // 20 lives in class 1
  // The same position index resolves per class.
  EXPECT_EQ(readiness.position(0, 0, 10), readiness.position(0, 1, 20));
}

TEST(RemoteReadiness, DefaultConstructedIsEmpty) {
  const RemoteReadiness readiness;
  EXPECT_EQ(readiness.position(0, 0, 1), -1);
  EXPECT_FALSE(readiness.likely_cached(0, 0, 1, 100));
}

}  // namespace
}  // namespace nopfs::core
