// Tests for the system configuration file parser (paper Sec. 5.2.2).

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/perf_model.hpp"

namespace nopfs::core {
namespace {

const char* kValid = R"(
# a small cluster
name            = test-cluster
num_workers     = 4
compute_mbps    = 64
preprocess_mbps = 200
network_mbps    = 24000
staging.capacity_mb = 5120
staging.threads     = 8
staging.rw_mbps     = 0:0 8:113664
class.ram.capacity_mb = 122880
class.ram.threads     = 4
class.ram.read_mbps   = 0:0 4:87040
class.ram.write_mbps  = 0:0 4:87040
class.ssd.capacity_mb = 921600
class.ssd.threads     = 2
class.ssd.read_mbps   = 1:2500 2:4096
class.ssd.write_mbps  = 1:1500 2:2400
pfs.read_mbps   = 1:120 2:180 4:240 8:280
pfs.op_rate     = 0
)";

TEST(Config, ParsesAllFields) {
  const tiers::SystemParams sys = parse_system_config(kValid);
  EXPECT_EQ(sys.name, "test-cluster");
  EXPECT_EQ(sys.num_workers, 4);
  EXPECT_DOUBLE_EQ(sys.node.compute_mbps, 64.0);
  EXPECT_DOUBLE_EQ(sys.node.preprocess_mbps, 200.0);
  EXPECT_DOUBLE_EQ(sys.node.network_mbps, 24000.0);
  EXPECT_DOUBLE_EQ(sys.node.staging.capacity_mb, 5120.0);
  EXPECT_EQ(sys.node.staging.prefetch_threads, 8);
  ASSERT_EQ(sys.node.classes.size(), 2u);
  EXPECT_EQ(sys.node.classes[0].name, "ram");  // declaration order preserved
  EXPECT_EQ(sys.node.classes[1].name, "ssd");
  EXPECT_DOUBLE_EQ(sys.node.classes[1].read_mbps.at(2), 4096.0);
  EXPECT_DOUBLE_EQ(sys.pfs.agg_read_mbps.at(4), 240.0);
  EXPECT_DOUBLE_EQ(sys.pfs.op_rate_per_s, 0.0);
}

TEST(Config, CurveInterpolationWorksAfterParse) {
  const tiers::SystemParams sys = parse_system_config(kValid);
  // Regression/interpolation between declared PFS points (Sec. 5.2.2).
  EXPECT_NEAR(sys.pfs.agg_read_mbps.at(3), 210.0, 1e-9);
  EXPECT_GT(sys.pfs.agg_read_mbps.at(16), 280.0);  // extrapolated
}

TEST(Config, ParsedSystemDrivesPerfModel) {
  const tiers::SystemParams sys = parse_system_config(kValid);
  const PerfModel model(sys);
  EXPECT_NEAR(model.fetch_pfs_s(10.0, 4), 10.0 / 60.0, 1e-9);
  EXPECT_NEAR(model.fetch_local_s(10.0, 0), 10.0 / (87040.0 / 4.0), 1e-12);
}

TEST(Config, RoundTripsThroughFormat) {
  const tiers::SystemParams original = parse_system_config(kValid);
  const tiers::SystemParams reparsed =
      parse_system_config(format_system_config(original));
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.num_workers, original.num_workers);
  EXPECT_EQ(reparsed.node.classes.size(), original.node.classes.size());
  EXPECT_DOUBLE_EQ(reparsed.pfs.agg_read_mbps.at(4),
                   original.pfs.agg_read_mbps.at(4));
  EXPECT_DOUBLE_EQ(reparsed.node.classes[1].write_mbps.at(2),
                   original.node.classes[1].write_mbps.at(2));
}

TEST(Config, PresetsRoundTrip) {
  for (const auto& sys :
       {tiers::presets::sim_cluster(4), tiers::presets::lassen(64),
        tiers::presets::piz_daint(32)}) {
    const tiers::SystemParams reparsed =
        parse_system_config(format_system_config(sys));
    EXPECT_EQ(reparsed.num_workers, sys.num_workers);
    EXPECT_DOUBLE_EQ(reparsed.pfs.op_rate_per_s, sys.pfs.op_rate_per_s);
    EXPECT_NEAR(reparsed.pfs.agg_read_mbps.at(sys.num_workers),
                sys.pfs.agg_read_mbps.at(sys.num_workers), 1e-6);
  }
}

TEST(Config, CommentsAndBlankLinesIgnored) {
  const tiers::SystemParams sys = parse_system_config(
      "num_workers = 2 # inline comment\n\n# whole-line comment\n"
      "pfs.read_mbps = 1:100\n");
  EXPECT_EQ(sys.num_workers, 2);
}

TEST(Config, ErrorsCarryLineNumbers) {
  try {
    (void)parse_system_config("num_workers = 1\nbogus_key = 3\n");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& ex) {
    EXPECT_NE(std::string(ex.what()).find("line 2"), std::string::npos);
    EXPECT_NE(std::string(ex.what()).find("bogus_key"), std::string::npos);
  }
}

TEST(Config, MalformedInputsRejected) {
  EXPECT_THROW((void)parse_system_config("num_workers\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_system_config("num_workers = abc\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_system_config("num_workers = 2.5\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_system_config("pfs.read_mbps = 1-100\n"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_system_config("class..x = 1\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_system_config("num_workers = \n"), std::invalid_argument);
}

TEST(Config, RequiredFieldsEnforced) {
  // Missing num_workers.
  EXPECT_THROW((void)parse_system_config("pfs.read_mbps = 1:100\n"),
               std::invalid_argument);
  // Missing PFS curve.
  EXPECT_THROW((void)parse_system_config("num_workers = 2\n"),
               std::invalid_argument);
  // Class without a read curve.
  EXPECT_THROW((void)parse_system_config("num_workers = 2\npfs.read_mbps = 1:1\n"
                                         "class.ram.capacity_mb = 10\n"),
               std::invalid_argument);
}

TEST(Config, LoadFromFileErrors) {
  EXPECT_THROW((void)load_system_config("/nonexistent/nopfs.conf"),
               std::invalid_argument);
}

}  // namespace
}  // namespace nopfs::core
