// Tests for the parallel sweep engine: results must be independent of the
// thread count (the DESIGN.md Sec. 6.1 determinism contract), returned in
// submission order, and identical to direct serial simulate() calls.  Also
// covers the underlying util::ThreadPool.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "sim/policies.hpp"
#include "sim/sweep.hpp"
#include "sim_result_testutil.hpp"
#include "tiers/params.hpp"
#include "util/thread_pool.hpp"

namespace nopfs::sim {
namespace {

std::vector<SweepPoint> small_grid(const data::Dataset& dataset) {
  std::vector<SweepPoint> points;
  for (const int workers : {2, 4, 8}) {
    for (const char* policy : {"staging", "nopfs", "lbann-preload", "perfect"}) {
      SweepPoint point;
      point.config.system = tiers::presets::sim_cluster(workers);
      point.config.num_epochs = 3;
      point.config.per_worker_batch = 8;
      point.config.seed = 4242;
      point.dataset = &dataset;
      point.policy = policy;
      points.push_back(std::move(point));
    }
  }
  return points;
}

TEST(SweepRunner, ThreadCountDoesNotChangeResults) {
  const data::Dataset dataset("sweep-test", std::vector<float>(2048, 0.1f));
  const auto points = small_grid(dataset);

  const SweepRunner serial({1});
  const SweepRunner parallel({4});
  EXPECT_EQ(serial.num_threads(), 1);
  EXPECT_EQ(parallel.num_threads(), 4);

  const auto serial_results = serial.run(points);
  const auto parallel_results = parallel.run(points);
  ASSERT_EQ(serial_results.size(), points.size());
  ASSERT_EQ(parallel_results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i) + " (" + points[i].policy + ")");
    expect_results_identical(serial_results[i], parallel_results[i]);
  }
}

TEST(SweepRunner, MatchesDirectSimulateInSubmissionOrder) {
  const data::Dataset dataset("sweep-test", std::vector<float>(2048, 0.1f));
  const auto points = small_grid(dataset);
  const SweepRunner runner({3});
  const auto results = runner.run(points);
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    auto policy = make_policy(points[i].policy);
    const SimResult direct = simulate(points[i].config, dataset, *policy);
    SCOPED_TRACE("cell " + std::to_string(i) + " (" + points[i].policy + ")");
    // Order check: the result in slot i is the simulation of point i.
    EXPECT_EQ(results[i].policy, direct.policy);
    expect_results_identical(results[i], direct);
  }
}

TEST(SweepRunner, SharedEpochOrdersAreValueTransparent) {
  // SweepRunner turns on SimConfig::share_epoch_orders for its cells; a
  // shared (cached) permutation must not change any result relative to the
  // default transient path.
  const data::Dataset dataset("sweep-test", std::vector<float>(2048, 0.1f));
  for (const char* name : {"staging", "nopfs", "locality-aware"}) {
    SimConfig transient_config;
    transient_config.system = tiers::presets::sim_cluster(4);
    transient_config.num_epochs = 3;
    transient_config.per_worker_batch = 8;
    transient_config.seed = 4242;
    SimConfig shared_config = transient_config;
    shared_config.share_epoch_orders = true;

    auto transient_policy = make_policy(name);
    auto shared_policy = make_policy(name);
    const SimResult transient =
        simulate(transient_config, dataset, *transient_policy);
    const SimResult shared = simulate(shared_config, dataset, *shared_policy);
    SCOPED_TRACE(name);
    expect_results_identical(transient, shared);
  }
}

TEST(SweepRunner, PropagatesCellExceptions) {
  const data::Dataset dataset("sweep-test", std::vector<float>(256, 0.1f));
  std::vector<SweepPoint> points = small_grid(dataset);
  points[2].policy = "no-such-policy";
  const SweepRunner runner({4});
  EXPECT_THROW((void)runner.run(points), std::invalid_argument);
}

TEST(SweepRunner, GenericEvaluatorVariant) {
  const data::Dataset dataset("sweep-test", std::vector<float>(1024, 0.1f));
  SimConfig config;
  config.system = tiers::presets::sim_cluster(4);
  config.num_epochs = 2;
  config.per_worker_batch = 8;
  const SweepRunner runner({2});
  // Custom-constructed policies (the ablations path).
  const auto results = runner.run(3, [&](std::size_t i) {
    NoPFSPolicy::Options options;
    options.frequency_aware = (i != 1);
    NoPFSPolicy policy(options);
    return simulate(config, dataset, policy);
  });
  ASSERT_EQ(results.size(), 3u);
  expect_results_identical(results[0], results[2]);  // same options, same result
  EXPECT_EQ(results[1].policy, "NoPFS");
}

TEST(ThreadPool, RunIndexedCoversAllIndicesOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> touched(257);
  pool.run_indexed(touched.size(), [&](std::size_t i) {
    touched[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, InlineWhenSingleThreaded) {
  util::ThreadPool pool(1);
  const auto main_id = std::this_thread::get_id();
  std::thread::id seen;
  pool.run_indexed(1, [&](std::size_t) { seen = std::this_thread::get_id(); });
  EXPECT_EQ(seen, main_id);  // no worker threads: tasks run on the caller
}

TEST(ThreadPool, RethrowsFirstException) {
  util::ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.run_indexed(64, [&](std::size_t i) {
      if (i == 13) throw std::runtime_error("boom");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom");
  }
  // All other tasks still ran: the pool drains before rethrowing.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, InlinePathAlsoDrainsBeforeRethrowing) {
  // The num_threads <= 1 inline path must honor the same contract as the
  // pooled path: every index runs, first exception rethrown at the end.
  util::ThreadPool pool(1);
  std::atomic<int> completed{0};
  try {
    pool.run_indexed(16, [&](std::size_t i) {
      if (i == 3) throw std::runtime_error("inline-boom");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "inline-boom");
  }
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, SubmitExceptionRethrownFromWaitIdle) {
  // A throwing task submitted directly (not via run_indexed) must not
  // std::terminate the worker; wait_idle() reports it — for any pool size.
  for (const int threads : {1, 4}) {
    util::ThreadPool pool(threads);
    pool.submit([] { throw std::runtime_error("submit-boom"); });
    pool.submit([] {});  // later tasks still run
    try {
      pool.wait_idle();
      FAIL() << "expected exception (threads=" << threads << ")";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "submit-boom");
    }
    pool.wait_idle();  // error was consumed: next wait is clean
  }
}

TEST(ThreadPool, ReusableAcrossRuns) {
  util::ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 5; ++round) {
    pool.run_indexed(100, [&](std::size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(sum.load(), 5u * (99u * 100u / 2u));
}

}  // namespace
}  // namespace nopfs::sim
