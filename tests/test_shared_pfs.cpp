// Job-wide PFS contention: the multi-process harness must price t(gamma)
// against the JOB-WIDE active-reader count, matching the threaded harness
// where all workers share one EmulatedPfs.
//
//   * protocol: weighted kPfsDelta frames (possibly many transitions
//     coalesced into one) reach rank 0's authoritative counter and the new
//     gamma gossips back as coalesced kPfsGamma broadcasts;
//   * batching: flush interval 0 (per-transition sends) and large batching
//     must be observationally equivalent — identical delivered digests,
//     exact pfs_fetches, equal gamma envelopes — on the contention-heavy
//     scenario, and queued deltas are FLUSHED (not dropped) at teardown so
//     a cooperative shutdown drains rank 0's counter to zero;
//   * thread-aware counting: a rank's acquire carries its reader-thread
//     fan-out, so gamma prices t(gamma) per reader thread in both launch
//     modes (EmulatedPfs and SharedPfs apply the same weights);
//   * parity: a 2-rank socket world reproduces the threaded harness's
//     delivered digest, PFS totals (within 1%) and gamma-trace envelope on
//     a contention-heavy config;
//   * divergence: the old per-process mode cannot see job-wide gamma (its
//     peak stays at 1) — the documented deviation this protocol closes —
//     while the digest still matches, because gamma only skews pricing.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/shared_pfs.hpp"
#include "net/sim_transport.hpp"
#include "net/socket_transport.hpp"
#include "runtime/harness.hpp"
#include "scenario/scenario.hpp"
#include "tiers/clock.hpp"
#include "tiers/devices.hpp"
#include "tiers/params.hpp"
#include "util/units.hpp"

namespace nopfs {
namespace {

/// Polls `predicate` until it holds or ~2 s elapse.
bool eventually(const std::function<bool()>& predicate) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

tiers::PfsParams slow_pfs() {
  // The "contention-pfs" scenario's deliberately glacial PFS: it must stay
  // the bottleneck (reads blocking in the token bucket, gamma overlap
  // across ranks) even on a loaded single-core runner or under a ~10x
  // sanitizer slowdown.
  return scenario::runtime_config(scenario::get("contention-pfs"), 1).system.pfs;
}

/// Builds a 2-rank loopback world; `gossip` applies to BOTH endpoints.
std::array<std::unique_ptr<net::SocketTransport>, 2> make_pair_world(
    net::GossipConfig gossip = {}, double time_scale = 1.0) {
  const std::uint16_t port = net::pick_free_port();
  std::array<std::unique_ptr<net::SocketTransport>, 2> transports;
  std::vector<std::thread> dialers;
  for (int r = 0; r < 2; ++r) {
    dialers.emplace_back([&, r] {
      net::SocketOptions options;
      options.rank = r;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      options.gossip = gossip;
      options.time_scale = time_scale;
      transports[static_cast<std::size_t>(r)] =
          std::make_unique<net::SocketTransport>(options);
    });
  }
  for (auto& t : dialers) t.join();
  return transports;
}

TEST(SharedPfs, GammaGossipOverSocketLoopback) {
  auto transports = make_pair_world();
  ASSERT_NE(transports[0], nullptr);
  ASSERT_NE(transports[1], nullptr);

  std::atomic<int> gamma_at_0{-1};
  std::atomic<int> gamma_at_1{-1};
  transports[0]->set_pfs_listener([&](int gamma) { gamma_at_0 = gamma; });
  transports[1]->set_pfs_listener([&](int gamma) { gamma_at_1 = gamma; });

  // Root acquires: its own return value is authoritative, and the gossip
  // reaches rank 1.
  EXPECT_EQ(transports[0]->pfs_adjust(+1), 1);
  EXPECT_TRUE(eventually([&] { return gamma_at_1.load() == 1; }));

  // Rank 1 acquires: the local estimate never dips below its own reader
  // count, and both listeners converge on the authoritative 2.
  EXPECT_GE(transports[1]->pfs_adjust(+1), 1);
  EXPECT_TRUE(eventually([&] { return gamma_at_0.load() == 2; }));
  EXPECT_TRUE(eventually([&] { return gamma_at_1.load() == 2; }));

  // Releases drain the counter on both sides.
  EXPECT_EQ(transports[0]->pfs_adjust(-1), 1);
  transports[1]->pfs_adjust(-1);
  EXPECT_TRUE(eventually([&] { return gamma_at_0.load() == 0; }));
  EXPECT_TRUE(eventually([&] { return gamma_at_1.load() == 0; }));

  transports[0]->set_pfs_listener({});
  transports[1]->set_pfs_listener({});
}

TEST(SharedPfs, WeightedDeltasCoalesceIntoOneFrame) {
  // Batched mode with a far-off flush horizon and max_batch 3: three
  // weighted transitions (+2, -2, +2) must coalesce into ONE kPfsDelta of
  // net +2 — the root's listener sees a single 0 -> 2 jump, never the
  // intermediate states a unary protocol would have produced.
  auto transports = make_pair_world({/*flush_virtual_s=*/60.0, /*max_batch=*/3});
  ASSERT_NE(transports[0], nullptr);
  ASSERT_NE(transports[1], nullptr);

  std::mutex mutex;
  std::vector<int> history;
  transports[0]->set_pfs_listener([&](int gamma) {
    const std::scoped_lock lock(mutex);
    history.push_back(gamma);
  });

  transports[1]->pfs_adjust(+2);
  transports[1]->pfs_adjust(-2);
  {
    // Nothing may have left the queue yet: two transitions < max_batch and
    // the flush horizon is a minute away.
    const std::scoped_lock lock(mutex);
    EXPECT_TRUE(history.empty());
  }
  transports[1]->pfs_adjust(+2);  // third transition: batch full, flush
  EXPECT_TRUE(eventually([&] {
    const std::scoped_lock lock(mutex);
    return !history.empty();
  }));
  {
    const std::scoped_lock lock(mutex);
    ASSERT_EQ(history.size(), 1u) << "coalesced batch must fold as ONE delta";
    EXPECT_EQ(history.front(), 2);
  }
  transports[0]->set_pfs_listener({});
}

TEST(SharedPfs, TeardownFlushesQueuedDeltas) {
  // A queued release must be FLUSHED on cooperative teardown, not dropped:
  // rank 0's counter drains to zero through the delta itself, leaving
  // nothing for the dead-rank cleanup to find.
  auto transports = make_pair_world({/*flush_virtual_s=*/60.0, /*max_batch=*/100});
  ASSERT_NE(transports[0], nullptr);
  ASSERT_NE(transports[1], nullptr);

  std::atomic<int> gamma_at_root{-1};
  transports[0]->set_pfs_listener([&](int gamma) { gamma_at_root = gamma; });

  transports[1]->pfs_adjust(+3);
  transports[1]->flush_pfs_gossip();  // deterministic: push the acquire out
  ASSERT_TRUE(eventually([&] { return gamma_at_root.load() == 3; }));

  // The release sits in the queue (flush horizon is a minute away)...
  transports[1]->pfs_adjust(-3);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(gamma_at_root.load(), 3) << "release must still be queued";

  // ...until cooperative teardown flushes it ahead of closing the channel.
  transports[1].reset();
  EXPECT_TRUE(eventually([&] { return gamma_at_root.load() == 0; }))
      << "teardown dropped the queued release; gamma stuck at "
      << gamma_at_root.load();
  transports[0]->set_pfs_listener({});
}

TEST(SharedPfs, RootReleasesOutstandingAcquireOnPeerDisconnect) {
  // Wire-level regression for the gamma leak: a rank that dies while
  // holding a kPfsAcquire must not pin the job-wide counter.  Rank 1
  // acquires, then its transport is destroyed mid-read (the crash); rank
  // 0's serve connection sees EOF and must release the orphaned acquire.
  const std::uint16_t port = net::pick_free_port();
  std::array<std::unique_ptr<net::SocketTransport>, 2> transports;
  std::vector<std::thread> dialers;
  for (int r = 0; r < 2; ++r) {
    dialers.emplace_back([&, r] {
      net::SocketOptions options;
      options.rank = r;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      transports[static_cast<std::size_t>(r)] =
          std::make_unique<net::SocketTransport>(options);
    });
  }
  for (auto& t : dialers) t.join();
  ASSERT_NE(transports[0], nullptr);
  ASSERT_NE(transports[1], nullptr);

  std::atomic<int> gamma_at_root{-1};
  transports[0]->set_pfs_listener([&](int gamma) { gamma_at_root = gamma; });

  transports[1]->pfs_adjust(+1);
  ASSERT_TRUE(eventually([&] { return gamma_at_root.load() == 1; }));

  // Rank 1 "crashes" while its acquire is outstanding.
  transports[1].reset();
  EXPECT_TRUE(eventually([&] { return gamma_at_root.load() == 0; }))
      << "dead rank still pins gamma at " << gamma_at_root.load();

  // And a clean acquire/release pair must not be double-released by the
  // later disconnect: after release the counter is 0 and stays 0.
  EXPECT_EQ(transports[0]->pfs_adjust(+1), 1);
  EXPECT_EQ(transports[0]->pfs_adjust(-1), 0);
  transports[0]->set_pfs_listener({});
}

TEST(SharedPfs, ConcurrentRanksSeeJobWideGamma) {
  // Two ranks over SimTransport (exact in-process gossip): concurrent reads
  // must raise BOTH ranks' gamma view to 2 and split the aggregate fairly.
  auto transports = net::make_sim_transports(2);
  tiers::RealClock clock;
  const tiers::PfsParams params = slow_pfs();
  const double scale = 100.0;
  net::SharedPfs pfs0(clock, params, scale, *transports[0]);
  net::SharedPfs pfs1(clock, params, scale, *transports[1]);

  // 30 MB per rank at t(2)/2 = 12.5 MB/s x100: ~24 ms each if concurrent.
  const double t0 = clock.now();
  std::thread reader0([&] { pfs0.read(0, 30.0); });
  std::thread reader1([&] { pfs1.read(1, 30.0); });
  reader0.join();
  reader1.join();
  const double elapsed = clock.now() - t0;

  EXPECT_EQ(pfs0.peak_clients(), 2);
  EXPECT_EQ(pfs1.peak_clients(), 2);
  EXPECT_EQ(pfs0.active_clients(), 0);
  EXPECT_NEAR(pfs0.total_read_mb(), 30.0, 1e-9);
  // Both buckets ran at the contended fair share, not at t(1): the job
  // cannot finish faster than the aggregate t(2) allows (with slack for
  // the sequential tails around thread startup).
  EXPECT_GE(elapsed, 60.0 / (params.agg_read_mbps.at(2) * scale) * 0.5);
}

TEST(SharedPfs, TransportWithoutAccountingDegradesToLocalGamma) {
  // The default Transport::pfs_adjust returns 0: SharedPfs must fall back
  // to pricing its own process's activity (gamma >= 1 while reading).
  class NullTransport final : public net::Transport {
   public:
    [[nodiscard]] int rank() const override { return 0; }
    [[nodiscard]] int world_size() const override { return 1; }
    std::vector<net::Bytes> allgather(net::Bytes local) override { return {local}; }
    void barrier() override {}
    void set_serve_handler(ServeHandler) override {}
    std::optional<net::Bytes> fetch_sample(int, std::uint64_t) override {
      return std::nullopt;
    }
    void publish_watermark(std::uint64_t) override {}
    [[nodiscard]] std::uint64_t watermark_of(int) const override { return 0; }
    [[nodiscard]] double transferred_mb() const override { return 0.0; }
  };
  NullTransport transport;
  tiers::RealClock clock;
  net::SharedPfs pfs(clock, slow_pfs(), 1000.0, transport);
  pfs.read(0, 5.0);
  EXPECT_EQ(pfs.peak_clients(), 1);
  EXPECT_NEAR(pfs.total_read_mb(), 5.0, 1e-9);
  EXPECT_THROW(pfs.read(-1, 1.0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Launch-mode parity on a contention-heavy configuration.

data::Dataset contention_dataset() {
  return scenario::worker_dataset(scenario::get("contention-pfs"));
}

/// The "contention-pfs" registry entry: contention-heavy by construction —
/// no local cache capacity, so EVERY access is a PFS read, and a low
/// time_scale so the cumulative read time far exceeds the token bucket's
/// burst credit — reads genuinely block and overlap across ranks, making a
/// wrong gamma measurable.  (The 8 MB ring, far larger than the stream,
/// lets the producers stream ahead without consumer gating: both ranks
/// issue PFS reads back-to-back from t=0, so in-flight overlap (gamma = 2)
/// is structural, not a scheduling accident — it survives single-core hosts
/// under sanitizer slowdowns, where lockstep-gated fetch bursts can
/// interleave in antiphase.  Remote fetches are off: with no cache there is
/// nothing to serve remotely, and every access is a PFS fetch — the PFS
/// counts and MB become a pure function of the access stream, exact across
/// launch modes, while the prefetch threads still race for gamma overlap.)
runtime::RuntimeConfig contention_config(int world_size) {
  return scenario::runtime_config(scenario::get("contention-pfs"), world_size);
}

TEST(SharedPfs, ThreadWeightedGammaCountsReaderFanOut) {
  // Thread-aware counting over the exact SimTransport oracle: rank 0
  // declares 2 reader threads, rank 1 declares 3 — concurrent reads must
  // raise BOTH ranks' gamma view to 5, and the threaded EmulatedPfs applies
  // identical weights, which is what keeps the launch modes' envelopes
  // comparable.
  auto transports = net::make_sim_transports(2);
  tiers::RealClock clock;
  const tiers::PfsParams params = slow_pfs();
  net::SharedPfs pfs0(clock, params, 100.0, *transports[0]);
  net::SharedPfs pfs1(clock, params, 100.0, *transports[1]);
  pfs0.set_reader_threads(0, 2);
  pfs1.set_reader_threads(1, 3);

  std::thread reader0([&] { pfs0.read(0, 30.0); });
  std::thread reader1([&] { pfs1.read(1, 30.0); });
  reader0.join();
  reader1.join();

  EXPECT_EQ(pfs0.peak_clients(), 5);
  EXPECT_EQ(pfs1.peak_clients(), 5);
  EXPECT_EQ(pfs0.active_clients(), 0);
  EXPECT_EQ(pfs1.active_clients(), 0);

  // The threaded harness's EmulatedPfs counts the same weights: one device,
  // two workers, fan-outs 2 and 3 -> weighted gamma envelope 5.
  tiers::EmulatedPfs emulated(clock, params, 100.0);
  emulated.set_reader_threads(0, 2);
  emulated.set_reader_threads(1, 3);
  std::thread w0([&] { emulated.read(0, 30.0); });
  std::thread w1([&] { emulated.read(1, 30.0); });
  w0.join();
  w1.join();
  EXPECT_EQ(emulated.peak_clients(), 5);
  EXPECT_EQ(emulated.active_clients(), 0);
}

TEST(SharedPfs, GammaDrainsToZeroAtCooperativeTeardown) {
  // The StagingPrefetcher::stop() shape: reader threads finish their last
  // PFS reads (enqueueing weighted releases), then the rank's SharedPfs and
  // transport are torn down while the releases may still sit in the gossip
  // queue.  Rank 0's counter must drain to zero through the flushed deltas
  // — no dead-rank cleanup involved, the shutdown is cooperative.
  auto transports =
      make_pair_world({/*flush_virtual_s=*/60.0, /*max_batch=*/100});
  ASSERT_NE(transports[0], nullptr);
  ASSERT_NE(transports[1], nullptr);
  std::atomic<int> gamma_at_root{-1};
  transports[0]->set_pfs_listener([&](int gamma) { gamma_at_root = gamma; });

  tiers::RealClock clock;
  {
    // ~150 ms of real read time at t(1) x100: long enough to flush the
    // weighted acquire OUT while the read is still in flight, so the
    // matching release genuinely sits in the queue at teardown (instead of
    // the +2/-2 pair coalescing to nothing, which would test nothing).
    net::SharedPfs pfs(clock, slow_pfs(), 100.0, *transports[1]);
    pfs.set_reader_threads(1, 2);
    std::thread reader([&] { pfs.read(1, 30.0); });
    EXPECT_TRUE(eventually([&] {
      transports[1]->flush_pfs_gossip();
      return gamma_at_root.load() == 2;
    })) << "weighted acquire never reached the root";
    reader.join();  // release (-2) is now queued behind a 60 s horizon
    EXPECT_EQ(pfs.active_clients(), 0);
  }
  // The SharedPfs is gone; tear the rank down and watch the counter drain.
  transports[1].reset();
  EXPECT_TRUE(eventually([&] { return gamma_at_root.load() == 0; }))
      << "cooperative teardown left gamma at " << gamma_at_root.load();
  // And rank 0's own view agrees once it acquires/releases itself.
  EXPECT_EQ(transports[0]->pfs_adjust(+1), 1);
  EXPECT_EQ(transports[0]->pfs_adjust(-1), 0);
  transports[0]->set_pfs_listener({});
}

runtime::RuntimeResult run_socket_rank(const data::Dataset& dataset,
                                       const runtime::RuntimeConfig& config, int rank,
                                       std::uint16_t port,
                                       net::ReactorBackend backend) {
  runtime::WorkerEndpoint endpoint;
  endpoint.rank = rank;
  endpoint.world_size = 2;
  endpoint.rendezvous_port = port;
  endpoint.timeout_s = 60.0;
  endpoint.reactor = backend;
  return run_distributed(dataset, config, endpoint);
}

std::array<runtime::RuntimeResult, 2> run_socket_world(
    const data::Dataset& dataset, const runtime::RuntimeConfig& config,
    net::ReactorBackend backend = net::ReactorBackend::kAuto) {
  const std::uint16_t port = net::pick_free_port();
  std::array<runtime::RuntimeResult, 2> results;
  std::array<std::string, 2> errors;
  std::vector<std::thread> ranks;
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([&, r] {
      try {
        results[static_cast<std::size_t>(r)] =
            run_socket_rank(dataset, config, r, port, backend);
      } catch (const std::exception& ex) {
        errors[static_cast<std::size_t>(r)] = ex.what();
      }
    });
  }
  for (auto& t : ranks) t.join();
  EXPECT_TRUE(errors[0].empty()) << errors[0];
  EXPECT_TRUE(errors[1].empty()) << errors[1];
  return results;
}

TEST(SharedPfsParity, TwoRankSocketWorldMatchesThreadedContention) {
  const auto dataset = contention_dataset();
  const runtime::RuntimeConfig config = contention_config(2);

  const runtime::RuntimeResult threaded = runtime::run_training(dataset, config);
  // The threaded harness shares one EmulatedPfs: with tiny caches both
  // workers keep a read in flight, so the reference gamma envelope is 2.
  ASSERT_EQ(threaded.pfs_peak_gamma, 2);

  const auto results = run_socket_world(dataset, config);

  // Delivered digest: bit-for-bit across launch modes (Sec. 7.3).
  EXPECT_EQ(results[0].delivered_digest, threaded.delivered_digest);
  EXPECT_EQ(results[1].delivered_digest, threaded.delivered_digest);
  // Job-wide PFS traffic: with remote fetching off it is a pure function
  // of the cache plan — identical counts, MB within the 1% acceptance band.
  EXPECT_EQ(results[0].stats.pfs_fetches, threaded.stats.pfs_fetches);
  EXPECT_NEAR(results[0].stats.pfs_mb, threaded.stats.pfs_mb,
              threaded.stats.pfs_mb * 0.01);
  // Gamma-trace envelope: the socket world's SharedPfs saw the job-wide
  // contention the threaded EmulatedPfs saw.
  EXPECT_EQ(results[0].pfs_peak_gamma, threaded.pfs_peak_gamma);
  EXPECT_EQ(results[1].pfs_peak_gamma, threaded.pfs_peak_gamma);
}

TEST(SharedPfsParity, BatchedAndUnaryGossipAreObservationallyEquivalent) {
  // The batching acceptance gate: the same contention-heavy scenario run
  // with flush interval 0 (every transition on the wire, the historical
  // protocol) and with coarse batching (the "contention-batched-socket"
  // registry shape: 5 ms real flush windows, 512-transition batches) must
  // be indistinguishable in everything the protocol promises — delivered
  // digest bit-for-bit, exact pfs_fetches, equal gamma envelope.  Batching
  // may only change WHEN counts travel, never what the job computes.
  const auto dataset = contention_dataset();

  runtime::RuntimeConfig unary = contention_config(2);
  unary.pfs_gossip.flush_virtual_s = 0.0;
  const auto unary_results = run_socket_world(dataset, unary);

  const runtime::RuntimeConfig batched = scenario::runtime_config(
      scenario::get("contention-batched-socket"), 2);
  ASSERT_GT(batched.pfs_gossip.flush_virtual_s, 0.0);
  ASSERT_GT(batched.pfs_gossip.max_batch, 1);
  const auto batched_results = run_socket_world(dataset, batched);

  EXPECT_EQ(batched_results[0].delivered_digest, unary_results[0].delivered_digest);
  EXPECT_EQ(batched_results[1].delivered_digest, unary_results[1].delivered_digest);
  EXPECT_EQ(batched_results[0].stats.pfs_fetches, unary_results[0].stats.pfs_fetches);
  EXPECT_EQ(batched_results[0].pfs_peak_gamma, unary_results[0].pfs_peak_gamma);
  EXPECT_EQ(batched_results[1].pfs_peak_gamma, unary_results[1].pfs_peak_gamma);
}

TEST(SharedPfsParity, ReactorBackendsAgreeOnBatchedSocketContention) {
  // Cross-backend acceptance on the contention-heavy shape: the
  // contention-batched-socket registry config run on the epoll reactor and
  // on the io_uring reactor must deliver the same digest, the same PFS
  // fetch counts, and the same gamma envelope.  This is the hardest parity
  // surface — batched kPfsDelta gossip rides the same sessions as fetch
  // replies, so any backend readiness bug skews what folds when.
  if (!net::io_uring_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  const auto dataset = contention_dataset();
  const runtime::RuntimeConfig config = scenario::runtime_config(
      scenario::get("contention-batched-socket"), 2);

  const auto epoll_results =
      run_socket_world(dataset, config, net::ReactorBackend::kEpoll);
  const auto uring_results =
      run_socket_world(dataset, config, net::ReactorBackend::kIoUring);

  EXPECT_EQ(epoll_results[0].reactor_backend, "epoll");
  EXPECT_EQ(uring_results[0].reactor_backend, "io_uring");
  EXPECT_EQ(uring_results[0].delivered_digest, epoll_results[0].delivered_digest);
  EXPECT_EQ(uring_results[1].delivered_digest, epoll_results[1].delivered_digest);
  EXPECT_EQ(uring_results[0].stats.pfs_fetches, epoll_results[0].stats.pfs_fetches);
  EXPECT_EQ(uring_results[0].pfs_peak_gamma, epoll_results[0].pfs_peak_gamma);
  EXPECT_EQ(uring_results[1].pfs_peak_gamma, epoll_results[1].pfs_peak_gamma);
}

TEST(SharedPfsParity, PerProcessOptOutDivergesOnGammaOnly) {
  const auto dataset = contention_dataset();
  runtime::RuntimeConfig config = contention_config(2);
  config.shared_pfs_contention = false;  // the historical per-process mode

  const runtime::RuntimeResult threaded = runtime::run_training(dataset, config);
  const auto results = run_socket_world(dataset, config);

  // The old mode is measurably wrong on contention: each process's PFS view
  // sees at most its own rank, so the job-wide envelope is stuck at 1 while
  // the threaded reference reaches 2.
  ASSERT_EQ(threaded.pfs_peak_gamma, 2);
  EXPECT_EQ(results[0].pfs_peak_gamma, 1);
  EXPECT_LT(results[0].pfs_peak_gamma, threaded.pfs_peak_gamma);

  // ...but gamma only skews pricing, never which sample is delivered: the
  // digest identity contract must keep holding bit-for-bit.
  EXPECT_EQ(results[0].delivered_digest, threaded.delivered_digest);
  EXPECT_EQ(results[0].stats.pfs_fetches, threaded.stats.pfs_fetches);
}

}  // namespace
}  // namespace nopfs
