// Tests for the double-buffering engine shared by the baseline loaders.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "baselines/pipelined_fetcher.hpp"

namespace nopfs::baselines {
namespace {

PipelinedFetcher::Bytes payload_for(std::uint64_t position) {
  return {static_cast<std::uint8_t>(position & 0xff),
          static_cast<std::uint8_t>((position >> 8) & 0xff)};
}

TEST(PipelinedFetcher, DeliversEverythingInOrder) {
  PipelinedFetcher fetcher(100, /*threads=*/4, /*lookahead=*/8, payload_for);
  fetcher.start();
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto bytes = fetcher.next();
    ASSERT_TRUE(bytes.has_value()) << "position " << i;
    EXPECT_EQ(*bytes, payload_for(i));
  }
  EXPECT_FALSE(fetcher.next().has_value());  // exhausted
}

TEST(PipelinedFetcher, SingleThreadSingleLookahead) {
  PipelinedFetcher fetcher(10, 1, 1, payload_for);
  fetcher.start();
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(fetcher.next(), payload_for(i));
  }
}

TEST(PipelinedFetcher, LookaheadBoundsInFlightFetches) {
  std::mutex mutex;
  std::set<std::uint64_t> dispatched;
  std::uint64_t max_ahead = 0;
  std::atomic<std::uint64_t> consumed{0};

  PipelinedFetcher fetcher(
      64, /*threads=*/4, /*lookahead=*/4, [&](std::uint64_t position) {
        {
          const std::scoped_lock lock(mutex);
          dispatched.insert(position);
          max_ahead = std::max(max_ahead,
                               position - std::min(position, consumed.load()));
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        return payload_for(position);
      });
  fetcher.start();
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto bytes = fetcher.next();
    ASSERT_TRUE(bytes.has_value());
    consumed.store(i + 1);
  }
  EXPECT_EQ(dispatched.size(), 64u);  // each position fetched exactly once
  EXPECT_LE(max_ahead, 4u + 4u);      // lookahead + in-flight threads
}

TEST(PipelinedFetcher, StopUnblocksConsumer) {
  PipelinedFetcher fetcher(10, 1, 2, [](std::uint64_t) {
    std::this_thread::sleep_for(std::chrono::seconds(10));  // never completes
    return PipelinedFetcher::Bytes{};
  });
  fetcher.start();
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    (void)fetcher.next();
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());
  fetcher.stop();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(PipelinedFetcher, ZeroTotalIsImmediatelyExhausted) {
  PipelinedFetcher fetcher(0, 2, 4, payload_for);
  fetcher.start();
  EXPECT_FALSE(fetcher.next().has_value());
}

TEST(PipelinedFetcher, DestructorJoinsCleanly) {
  auto fetcher = std::make_unique<PipelinedFetcher>(1000, 4, 16, payload_for);
  fetcher->start();
  (void)fetcher->next();
  fetcher.reset();  // mid-stream teardown must not hang or crash
  SUCCEED();
}

class FetcherShapes
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(FetcherShapes, ExactlyOnceDelivery) {
  const auto [threads, lookahead, total] = GetParam();
  std::atomic<std::uint64_t> fetch_calls{0};
  PipelinedFetcher fetcher(total, threads, lookahead, [&](std::uint64_t position) {
    ++fetch_calls;
    return payload_for(position);
  });
  fetcher.start();
  std::uint64_t delivered = 0;
  while (auto bytes = fetcher.next()) {
    EXPECT_EQ(*bytes, payload_for(delivered));
    ++delivered;
  }
  EXPECT_EQ(delivered, total);
  EXPECT_EQ(fetch_calls.load(), total);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FetcherShapes,
                         ::testing::Values(std::tuple{1, 1, 17ull},
                                           std::tuple{2, 3, 50ull},
                                           std::tuple{4, 8, 200ull},
                                           std::tuple{8, 2, 64ull},
                                           std::tuple{3, 64, 100ull}));

}  // namespace
}  // namespace nopfs::baselines
