// End-to-end tests of the multi-process launch path (ISSUE 2 acceptance):
//
//   * a world-size-1 SocketTransport run is result-identical to the
//     in-process SimTransport run (the delivered digest is the bit-for-bit
//     contract; deterministic stats match exactly);
//   * an in-process 2-rank socket world reproduces the threaded harness's
//     delivered digest while exercising the full wire protocol;
//   * 2 real OS processes (examples/nopfs_worker, spawned with fork/exec
//     over a loopback rendezvous) complete a NoPFS run, agree with each
//     other, and agree with the threaded harness.

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_transport.hpp"
#include "runtime/harness.hpp"
#include "scenario/scenario.hpp"
#include "util/units.hpp"

namespace nopfs::runtime {
namespace {

// The job shape is the "worker-loopback" registry entry — the same entry
// examples/nopfs_worker resolves by default, which is what lets the spawn
// test compare in-process results against the spawned binaries.
constexpr std::uint64_t kSamples = 96;    // pinned against the registry below
constexpr int kEpochs = 2;
constexpr std::uint64_t kSeed = 2025;
constexpr std::uint64_t kPerWorkerBatch = 4;

data::Dataset worker_dataset() {
  const scenario::Scenario& s = scenario::get("worker-loopback");
  EXPECT_EQ(s.worker.dataset.num_samples, kSamples);
  return scenario::worker_dataset(s);
}

RuntimeConfig worker_config(int world_size, baselines::LoaderKind kind) {
  const scenario::Scenario& s = scenario::get("worker-loopback");
  EXPECT_EQ(s.worker.epochs, kEpochs);
  EXPECT_EQ(s.worker.seed, kSeed);
  EXPECT_EQ(s.worker.per_worker_batch, kPerWorkerBatch);
  RuntimeConfig config = scenario::runtime_config(s, world_size);
  config.loader = kind;
  config.verify_content = true;
  return config;
}

std::uint64_t expected_verified(int world_size) {
  const std::uint64_t global = kPerWorkerBatch * static_cast<std::uint64_t>(world_size);
  return static_cast<std::uint64_t>(kEpochs) * (kSamples / global) * global;
}

/// Runs one rank of a socket world in this process (own devices, own
/// transport — exactly what a worker process does).
RuntimeResult run_socket_rank(const data::Dataset& dataset, const RuntimeConfig& config,
                              int rank, int world_size, std::uint16_t port,
                              net::ReactorBackend backend = net::ReactorBackend::kAuto) {
  WorkerEndpoint endpoint;
  endpoint.rank = rank;
  endpoint.world_size = world_size;
  endpoint.rendezvous_port = port;
  endpoint.timeout_s = 60.0;
  endpoint.reactor = backend;
  return run_distributed(dataset, config, endpoint);
}

TEST(DistributedRuntime, WorldSizeOneSocketMatchesSimTransportBitForBit) {
  const auto dataset = worker_dataset();
  // Naive is fully synchronous: every field of its result except wall-clock
  // is a pure function of the stream, so the comparison can be exact.
  const RuntimeConfig config = worker_config(1, baselines::LoaderKind::kNaive);

  const RuntimeResult threaded = run_training(dataset, config);
  const RuntimeResult socket =
      run_socket_rank(dataset, config, 0, 1, net::pick_free_port());

  EXPECT_EQ(socket.delivered_digest, threaded.delivered_digest);
  EXPECT_EQ(socket.verified_samples, threaded.verified_samples);
  EXPECT_EQ(socket.verification_failures, 0u);
  EXPECT_EQ(socket.stats.pfs_fetches, threaded.stats.pfs_fetches);
  EXPECT_EQ(socket.stats.local_fetches, threaded.stats.local_fetches);
  EXPECT_EQ(socket.stats.remote_fetches, threaded.stats.remote_fetches);
  EXPECT_EQ(socket.stats.cached_samples, threaded.stats.cached_samples);
  // Single synchronous worker: the MB accumulation order is identical, so
  // even the floating-point sums must be bitwise equal.
  EXPECT_EQ(socket.stats.pfs_mb, threaded.stats.pfs_mb);
  EXPECT_EQ(socket.stats.local_mb, threaded.stats.local_mb);
  EXPECT_EQ(socket.stats.remote_mb, threaded.stats.remote_mb);
}

TEST(DistributedRuntime, WorldSizeOneSocketMatchesSimTransportNoPFS) {
  const auto dataset = worker_dataset();
  const RuntimeConfig config = worker_config(1, baselines::LoaderKind::kNoPFS);

  const RuntimeResult threaded = run_training(dataset, config);
  const RuntimeResult socket =
      run_socket_rank(dataset, config, 0, 1, net::pick_free_port());

  // NoPFS prefetch threads race the consumer, so fetch-location counts are
  // timing-dependent; the delivered stream and its verification are not.
  EXPECT_EQ(socket.delivered_digest, threaded.delivered_digest);
  EXPECT_EQ(socket.verified_samples, threaded.verified_samples);
  EXPECT_EQ(socket.verified_samples, expected_verified(1));
  EXPECT_EQ(socket.verification_failures, 0u);
}

TEST(DistributedRuntime, TwoRankSocketWorldMatchesThreadedHarness) {
  const auto dataset = worker_dataset();
  const RuntimeConfig config = worker_config(2, baselines::LoaderKind::kNoPFS);

  const RuntimeResult threaded = run_training(dataset, config);

  const std::uint16_t port = net::pick_free_port();
  std::array<RuntimeResult, 2> results;
  std::array<std::string, 2> errors;
  std::vector<std::thread> ranks;
  for (int r = 0; r < 2; ++r) {
    ranks.emplace_back([&, r] {
      try {
        results[static_cast<std::size_t>(r)] =
            run_socket_rank(dataset, config, r, 2, port);
      } catch (const std::exception& ex) {
        errors[static_cast<std::size_t>(r)] = ex.what();
      }
    });
  }
  for (auto& t : ranks) t.join();
  ASSERT_TRUE(errors[0].empty()) << errors[0];
  ASSERT_TRUE(errors[1].empty()) << errors[1];

  // The end-of-run allgather makes every rank report the job-wide totals.
  EXPECT_EQ(results[0].delivered_digest, results[1].delivered_digest);
  EXPECT_EQ(results[0].verified_samples, results[1].verified_samples);
  // And the socket world delivered exactly what the threaded world did.
  EXPECT_EQ(results[0].delivered_digest, threaded.delivered_digest);
  EXPECT_EQ(results[0].verified_samples, expected_verified(2));
  EXPECT_EQ(results[0].verification_failures, 0u);
}

TEST(DistributedRuntime, IoUringBackendMatchesEpollDigestAndGamma) {
  // The cross-backend acceptance gate on the worker-loopback shape: the
  // SAME 2-rank socket job run on the epoll reactor and the io_uring
  // reactor must be indistinguishable in everything the protocol promises
  // — delivered digest bit-for-bit, verified samples, gamma envelope.  The
  // backend may only change HOW readiness is learned, never what arrives.
  if (!net::io_uring_available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel";
  }
  const auto dataset = worker_dataset();
  const RuntimeConfig config = worker_config(2, baselines::LoaderKind::kNoPFS);

  std::array<std::array<RuntimeResult, 2>, 2> by_backend;
  const std::array<net::ReactorBackend, 2> backends = {
      net::ReactorBackend::kEpoll, net::ReactorBackend::kIoUring};
  for (std::size_t b = 0; b < backends.size(); ++b) {
    const std::uint16_t port = net::pick_free_port();
    std::array<std::string, 2> errors;
    std::vector<std::thread> ranks;
    for (int r = 0; r < 2; ++r) {
      ranks.emplace_back([&, b, r] {
        try {
          by_backend[b][static_cast<std::size_t>(r)] =
              run_socket_rank(dataset, config, r, 2, port, backends[b]);
        } catch (const std::exception& ex) {
          errors[static_cast<std::size_t>(r)] = ex.what();
        }
      });
    }
    for (auto& t : ranks) t.join();
    ASSERT_TRUE(errors[0].empty()) << errors[0];
    ASSERT_TRUE(errors[1].empty()) << errors[1];
  }

  EXPECT_EQ(by_backend[0][0].reactor_backend, "epoll");
  EXPECT_EQ(by_backend[1][0].reactor_backend, "io_uring");
  EXPECT_EQ(by_backend[1][0].delivered_digest, by_backend[0][0].delivered_digest);
  EXPECT_EQ(by_backend[1][1].delivered_digest, by_backend[0][1].delivered_digest);
  EXPECT_EQ(by_backend[1][0].verified_samples, by_backend[0][0].verified_samples);
  EXPECT_EQ(by_backend[1][0].pfs_peak_gamma, by_backend[0][0].pfs_peak_gamma);
  EXPECT_EQ(by_backend[1][0].verification_failures, 0u);
}

// ---------------------------------------------------------------------------
// Real OS processes.

#ifdef NOPFS_WORKER_BIN

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Minimal extraction of `"key": value` from the worker's flat JSON.
std::string json_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return {};
  auto begin = pos + needle.size();
  auto end = json.find_first_of(",\n}", begin);
  std::string value = json.substr(begin, end - begin);
  if (!value.empty() && value.front() == '"') value = value.substr(1, value.size() - 2);
  return value;
}

pid_t spawn_worker(const std::vector<std::string>& args) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  argv.reserve(args.size() + 2);
  static std::string binary = NOPFS_WORKER_BIN;
  argv.push_back(binary.data());
  std::vector<std::string> owned = args;
  for (auto& arg : owned) argv.push_back(arg.data());
  argv.push_back(nullptr);
  ::execv(binary.c_str(), argv.data());
  _exit(127);  // exec failed
}

TEST(DistributedRuntime, TwoProcessEndToEnd) {
  const std::uint16_t port = net::pick_free_port();
  const std::string rendezvous = "127.0.0.1:" + std::to_string(port);
  const std::string out0 = testing::TempDir() + "nopfs_worker_rank0.json";
  const std::string out1 = testing::TempDir() + "nopfs_worker_rank1.json";

  std::vector<pid_t> pids;
  for (int r = 0; r < 2; ++r) {
    pids.push_back(spawn_worker({
        "--rank", std::to_string(r), "--world-size", "2",
        "--rendezvous", rendezvous, "--loader", "nopfs",
        "--samples", std::to_string(kSamples), "--epochs", std::to_string(kEpochs),
        "--seed", std::to_string(kSeed),
        "--per-worker-batch", std::to_string(kPerWorkerBatch),
        "--time-scale", "50", "--timeout-s", "60",
        "--json-out", r == 0 ? out0 : out1,
    }));
    ASSERT_GT(pids.back(), 0) << "fork failed";
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "worker killed by signal";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "worker exited nonzero";
  }

  const std::string json0 = slurp(out0);
  const std::string json1 = slurp(out1);
  ASSERT_FALSE(json0.empty());
  ASSERT_FALSE(json1.empty());

  // Both processes must agree on the job-wide (allgathered) result.
  EXPECT_EQ(json_field(json0, "delivered_digest"), json_field(json1, "delivered_digest"));
  EXPECT_EQ(json_field(json0, "verified_samples"), json_field(json1, "verified_samples"));
  EXPECT_EQ(json_field(json0, "verified_samples"),
            std::to_string(expected_verified(2)));
  EXPECT_EQ(json_field(json0, "verification_failures"), "0");

  // And the 2-process socket run delivered exactly what the 2-thread
  // SimTransport run delivers.
  const auto dataset = worker_dataset();
  const RuntimeConfig config = worker_config(2, baselines::LoaderKind::kNoPFS);
  const RuntimeResult threaded = run_training(dataset, config);
  std::ostringstream digest;
  digest << std::hex << threaded.delivered_digest;
  EXPECT_EQ(json_field(json0, "delivered_digest"), digest.str());
}

#endif  // NOPFS_WORKER_BIN

}  // namespace
}  // namespace nopfs::runtime
