// Tests for the MPI-substitute transport: allgather, barrier, remote sample
// serving, watermark gossip (paper Sec. 5.2.2 communication surface).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/sim_transport.hpp"

namespace nopfs::net {
namespace {

std::vector<std::unique_ptr<SimTransport>> make(int n) {
  return make_sim_transports(n);
}

TEST(SimTransport, RankAndWorldSize) {
  auto endpoints = make(3);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(endpoints[r]->rank(), r);
    EXPECT_EQ(endpoints[r]->world_size(), 3);
  }
}

TEST(SimTransport, AllgatherDeliversEveryContribution) {
  constexpr int kN = 4;
  auto endpoints = make(kN);
  std::vector<std::vector<Bytes>> results(kN);
  std::vector<std::thread> threads;
  for (int r = 0; r < kN; ++r) {
    threads.emplace_back([&, r] {
      Bytes mine = {static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(r * 2)};
      results[r] = endpoints[r]->allgather(std::move(mine));
    });
  }
  for (auto& t : threads) t.join();
  for (int r = 0; r < kN; ++r) {
    ASSERT_EQ(results[r].size(), static_cast<std::size_t>(kN));
    for (int peer = 0; peer < kN; ++peer) {
      ASSERT_EQ(results[r][peer].size(), 2u);
      EXPECT_EQ(results[r][peer][0], peer);
      EXPECT_EQ(results[r][peer][1], peer * 2);
    }
  }
}

TEST(SimTransport, RepeatedCollectivesDoNotCrossTalk) {
  constexpr int kN = 3;
  constexpr int kRounds = 50;
  auto endpoints = make(kN);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kN; ++r) {
    threads.emplace_back([&, r] {
      for (int round = 0; round < kRounds; ++round) {
        Bytes mine = {static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(round)};
        const auto all = endpoints[r]->allgather(std::move(mine));
        for (int peer = 0; peer < kN; ++peer) {
          if (all[peer][0] != peer || all[peer][1] != round) ++mismatches;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SimTransport, BarrierSynchronizes) {
  constexpr int kN = 4;
  auto endpoints = make(kN);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int r = 0; r < kN; ++r) {
    threads.emplace_back([&, r] {
      ++before;
      endpoints[r]->barrier();
      if (before.load() != kN) violated.store(true);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
}

TEST(SimTransport, FetchSampleRoundTrip) {
  auto endpoints = make(2);
  endpoints[1]->set_serve_handler([](std::uint64_t id) -> std::optional<Bytes> {
    if (id == 42) return Bytes{1, 2, 3};
    return std::nullopt;
  });
  auto hit = endpoints[0]->fetch_sample(1, 42);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (Bytes{1, 2, 3}));
  const auto miss = endpoints[0]->fetch_sample(1, 7);
  EXPECT_FALSE(miss.has_value());
}

TEST(SimTransport, FetchWithoutHandlerIsMiss) {
  auto endpoints = make(2);
  EXPECT_FALSE(endpoints[0]->fetch_sample(1, 1).has_value());
}

TEST(SimTransport, FetchFromSelfRejected) {
  auto endpoints = make(2);
  EXPECT_THROW((void)endpoints[0]->fetch_sample(0, 1), std::invalid_argument);
  EXPECT_THROW((void)endpoints[0]->fetch_sample(9, 1), std::invalid_argument);
}

TEST(SimTransport, TransferAccountingWithoutNic) {
  auto endpoints = make(2);
  endpoints[1]->set_serve_handler(
      [](std::uint64_t) -> std::optional<Bytes> { return Bytes(1024 * 1024, 0); });
  (void)endpoints[0]->fetch_sample(1, 0);
  EXPECT_NEAR(endpoints[0]->transferred_mb(), 1.0, 1e-9);
}

TEST(SimTransport, WatermarksPropagate) {
  auto endpoints = make(3);
  EXPECT_EQ(endpoints[0]->watermark_of(1), 0u);
  endpoints[1]->publish_watermark(123);
  EXPECT_EQ(endpoints[0]->watermark_of(1), 123u);
  EXPECT_EQ(endpoints[2]->watermark_of(1), 123u);
  endpoints[1]->publish_watermark(456);
  EXPECT_EQ(endpoints[0]->watermark_of(1), 456u);
}

TEST(SimTransport, ConcurrentFetchesAreSafe) {
  constexpr int kN = 4;
  auto endpoints = make(kN);
  for (int r = 0; r < kN; ++r) {
    endpoints[r]->set_serve_handler(
        [r](std::uint64_t id) -> std::optional<Bytes> {
          return Bytes{static_cast<std::uint8_t>(r), static_cast<std::uint8_t>(id)};
        });
  }
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < kN; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < 200; ++i) {
        const int peer = (r + 1 + i % (kN - 1)) % kN;
        if (peer == r) continue;
        const auto bytes = endpoints[r]->fetch_sample(peer, i % 250);
        if (!bytes.has_value() || (*bytes)[0] != peer ||
            (*bytes)[1] != static_cast<std::uint8_t>(i % 250)) {
          ++bad;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(SimFabric, RejectsInvalidConstruction) {
  EXPECT_THROW(SimFabric(0), std::invalid_argument);
  auto fabric = std::make_shared<SimFabric>(2);
  EXPECT_THROW(SimTransport(nullptr, 0), std::invalid_argument);
  EXPECT_THROW(SimTransport(fabric, 5), std::invalid_argument);
}

}  // namespace
}  // namespace nopfs::net
