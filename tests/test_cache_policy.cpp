// Tests for the frequency-ordered cache plans and the cluster-wide
// location index (paper Sec. 5.1).

#include <gtest/gtest.h>

#include <set>

#include "core/cache_policy.hpp"
#include "util/units.hpp"

namespace nopfs::core {
namespace {

StreamConfig make_config(std::uint64_t f, int n, int e, std::uint64_t b) {
  StreamConfig config;
  config.seed = 11;
  config.num_samples = f;
  config.num_workers = n;
  config.num_epochs = e;
  config.global_batch = b;
  return config;
}

tiers::NodeParams node_with(double ram_mb, double ssd_mb) {
  tiers::NodeParams node;
  tiers::StorageClassParams ram;
  ram.name = "ram";
  ram.capacity_mb = ram_mb;
  ram.prefetch_threads = 2;
  ram.read_mbps = util::ThroughputCurve({{0, 0}, {2, 4000}});
  ram.write_mbps = ram.read_mbps;
  node.classes.push_back(ram);
  if (ssd_mb > 0.0) {
    tiers::StorageClassParams ssd = ram;
    ssd.name = "ssd";
    ssd.capacity_mb = ssd_mb;
    ssd.read_mbps = util::ThroughputCurve({{0, 0}, {2, 400}});
    ssd.write_mbps = ssd.read_mbps;
    node.classes.push_back(ssd);
  }
  return node;
}

data::Dataset uniform_dataset(std::uint64_t f, float mb_each) {
  return data::Dataset("uniform", std::vector<float>(f, mb_each));
}

TEST(CachePlan, CapacityNeverExceeded) {
  const AccessStreamGenerator gen(make_config(1000, 4, 8, 40));
  const auto dataset = uniform_dataset(1000, 1.0f);
  const auto node = node_with(50.0, 100.0);
  const CachePlan plan = compute_cache_plan(gen, 0, dataset, node);
  ASSERT_EQ(plan.per_class.size(), 2u);
  EXPECT_LE(plan.per_class[0].planned_mb, 50.0);
  EXPECT_LE(plan.per_class[1].planned_mb, 100.0);
  EXPECT_EQ(plan.per_class[0].samples.size(), 50u);  // 1 MB samples
  EXPECT_EQ(plan.per_class[1].samples.size(), 100u);
}

TEST(CachePlan, HotSamplesGoToFastClass) {
  const AccessStreamGenerator gen(make_config(200, 2, 16, 20));
  const auto dataset = uniform_dataset(200, 1.0f);
  const auto node = node_with(20.0, 60.0);
  const CachePlan plan = compute_cache_plan(gen, 0, dataset, node);
  const FrequencyMap freqs = count_worker_frequencies(gen, 0);
  // The minimum frequency in RAM must be >= the maximum in SSD.
  std::uint32_t min_ram = 0xffffffff;
  for (const auto sample : plan.per_class[0].samples) {
    min_ram = std::min(min_ram, freqs.at(sample));
  }
  std::uint32_t max_ssd = 0;
  for (const auto sample : plan.per_class[1].samples) {
    max_ssd = std::max(max_ssd, freqs.at(sample));
  }
  EXPECT_GE(min_ram, max_ssd);
}

TEST(CachePlan, OnlyAccessedSamplesPlanned) {
  const AccessStreamGenerator gen(make_config(1000, 4, 2, 40));
  const auto dataset = uniform_dataset(1000, 0.001f);
  const auto node = node_with(10'000.0, 0.0);
  const CachePlan plan = compute_cache_plan(gen, 3, dataset, node);
  const FrequencyMap freqs = count_worker_frequencies(gen, 3);
  EXPECT_EQ(plan.total_samples(), freqs.size());  // capacity ample
  for (const auto& [sample, cls] : plan.class_of) {
    EXPECT_TRUE(freqs.contains(sample));
  }
}

TEST(CachePlan, PrefetchOrderIsFirstAccessOrder) {
  const AccessStreamGenerator gen(make_config(400, 2, 4, 40));
  const auto dataset = uniform_dataset(400, 0.01f);
  const auto node = node_with(100.0, 0.0);
  const CachePlan plan = compute_cache_plan(gen, 0, dataset, node);
  // Record each sample's first-access position.
  std::unordered_map<data::SampleId, std::uint64_t> first;
  gen.for_each_access(0, [&](const Access& access) {
    first.try_emplace(access.sample, access.position);
  });
  for (const auto& class_plan : plan.per_class) {
    for (std::size_t i = 1; i < class_plan.samples.size(); ++i) {
      EXPECT_LT(first.at(class_plan.samples[i - 1]), first.at(class_plan.samples[i]));
    }
  }
}

TEST(CachePlan, FindReportsClass) {
  const AccessStreamGenerator gen(make_config(100, 2, 2, 10));
  const auto dataset = uniform_dataset(100, 1.0f);
  const CachePlan plan = compute_cache_plan(gen, 0, dataset, node_with(10.0, 20.0));
  for (std::size_t c = 0; c < plan.per_class.size(); ++c) {
    for (const auto sample : plan.per_class[c].samples) {
      ASSERT_TRUE(plan.find(sample).has_value());
      EXPECT_EQ(*plan.find(sample), static_cast<int>(c));
    }
  }
  EXPECT_FALSE(plan.find(99'999).has_value());
}

TEST(CachePlan, EncodeDecodeRoundTrip) {
  const AccessStreamGenerator gen(make_config(300, 3, 3, 30));
  const auto dataset = uniform_dataset(300, 0.5f);
  const CachePlan plan = compute_cache_plan(gen, 1, dataset, node_with(20.0, 30.0));
  const CachePlan decoded = decode_plan(encode_plan(plan));
  ASSERT_EQ(decoded.per_class.size(), plan.per_class.size());
  for (std::size_t c = 0; c < plan.per_class.size(); ++c) {
    EXPECT_EQ(decoded.per_class[c].samples, plan.per_class[c].samples);
  }
  EXPECT_EQ(decoded.class_of, plan.class_of);
}

TEST(CachePlan, DecodeRejectsTruncated) {
  const AccessStreamGenerator gen(make_config(100, 2, 2, 10));
  const auto dataset = uniform_dataset(100, 0.5f);
  const CachePlan plan = compute_cache_plan(gen, 0, dataset, node_with(20.0, 0.0));
  auto bytes = encode_plan(plan);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)decode_plan(bytes), std::runtime_error);
}

TEST(LocationIndex, HoldersAndRemoteLookup) {
  const int n = 4;
  const AccessStreamGenerator gen(make_config(500, n, 6, 40));
  const auto dataset = uniform_dataset(500, 0.1f);
  const auto node = node_with(30.0, 0.0);
  std::vector<CachePlan> plans;
  for (int w = 0; w < n; ++w) {
    plans.push_back(compute_cache_plan(gen, w, dataset, node));
  }
  const LocationIndex index(plans, /*self=*/0);
  for (const auto& [sample, cls] : plans[1].class_of) {
    EXPECT_TRUE(index.cached_anywhere(sample));
    const auto holders = index.holders(sample);
    const bool has_worker1 = std::any_of(
        holders.begin(), holders.end(), [](const auto& h) { return h.rank == 1; });
    EXPECT_TRUE(has_worker1);
  }
}

TEST(LocationIndex, BestRemoteExcludesSelf) {
  CachePlan mine;
  mine.per_class.resize(1);
  mine.per_class[0].samples = {7};
  mine.class_of[7] = 0;
  std::vector<CachePlan> plans = {mine, CachePlan{}};
  plans[1].per_class.resize(1);
  const LocationIndex index(plans, /*self=*/0);
  // Only self caches sample 7 -> no remote source.
  EXPECT_FALSE(index.best_remote(7).has_value());
  EXPECT_FALSE(index.best_remote(8).has_value());
}

TEST(LocationIndex, BestRemotePrefersFasterClass) {
  CachePlan slow;  // worker 0: class 1
  slow.per_class.resize(2);
  slow.per_class[1].samples = {5};
  slow.class_of[5] = 1;
  CachePlan fast;  // worker 1: class 0
  fast.per_class.resize(2);
  fast.per_class[0].samples = {5};
  fast.class_of[5] = 0;
  const LocationIndex index({slow, fast}, /*self=*/2);
  const auto remote = index.best_remote(5);
  ASSERT_TRUE(remote.has_value());
  EXPECT_EQ(remote->peer, 1);
  EXPECT_EQ(remote->storage_class, 0);
}

TEST(LocationIndex, LoadSpreadAcrossEqualHolders) {
  // Many samples held by the same two peers in the same class: different
  // samples should hash to different peers.
  CachePlan a;
  CachePlan b;
  a.per_class.resize(1);
  b.per_class.resize(1);
  for (data::SampleId k = 0; k < 64; ++k) {
    a.per_class[0].samples.push_back(k);
    a.class_of[k] = 0;
    b.per_class[0].samples.push_back(k);
    b.class_of[k] = 0;
  }
  const LocationIndex index({a, b, CachePlan{}}, /*self=*/2);
  std::set<int> peers;
  for (data::SampleId k = 0; k < 64; ++k) {
    peers.insert(index.best_remote(k)->peer);
  }
  EXPECT_EQ(peers.size(), 2u);  // both peers serve some share
}

}  // namespace
}  // namespace nopfs::core
