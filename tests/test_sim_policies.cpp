// Behavioural tests of the simulated I/O policies (paper Sec. 6): relative
// ordering, dataset-coverage flags, capacity handling, and the NoPFS plan.

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/policies.hpp"
#include "util/units.hpp"

namespace nopfs::sim {
namespace {

/// A small cluster whose tiers are tight relative to the test datasets:
/// RAM 20 MB, SSD 60 MB per worker.
SimConfig tight_config(int workers = 4, int epochs = 4) {
  SimConfig config;
  config.system = tiers::presets::sim_cluster(workers);
  config.system.node.classes[0].capacity_mb = 20.0;
  config.system.node.classes[1].capacity_mb = 60.0;
  config.system.node.staging.capacity_mb = 5.0;
  config.num_epochs = epochs;
  config.per_worker_batch = 8;
  config.seed = 123;
  return config;
}

data::Dataset dataset_mb(std::uint64_t f, float mb) {
  return data::Dataset("d", std::vector<float>(f, mb));
}

double run(const SimConfig& config, const data::Dataset& dataset,
           const std::string& policy_name) {
  auto policy = make_policy(policy_name);
  const SimResult result = simulate(config, dataset, *policy);
  EXPECT_TRUE(result.supported) << policy_name << ": " << result.unsupported_reason;
  return result.total_s;
}

TEST(Policies, FactoryKnowsAllNames) {
  for (const auto& name : all_policy_names()) {
    EXPECT_NO_THROW((void)make_policy(name)) << name;
  }
  EXPECT_THROW((void)make_policy("bogus"), std::invalid_argument);
  EXPECT_EQ(all_policy_names().size(), 10u);
}

TEST(Policies, PerfectIsFastestNaiveIsSlowest) {
  const SimConfig config = tight_config();
  // Dataset larger than one worker's storage, cacheable cluster-wide.
  const auto dataset = dataset_mb(2000, 0.1);  // 200 MB vs 80 MB/worker
  const double perfect = run(config, dataset, "perfect");
  const double nopfs = run(config, dataset, "nopfs");
  const double staging = run(config, dataset, "staging");
  const double naive = run(config, dataset, "naive");
  EXPECT_LE(perfect, nopfs * 1.0001);
  EXPECT_LT(nopfs, naive);
  EXPECT_LT(staging, naive);
}

TEST(Policies, NoPFSBeatsOrMatchesEveryRealPolicy) {
  // The headline Fig. 8 property: NoPFS is the best real policy (within a
  // small tolerance) in the D < S < N*D regime.
  const SimConfig config = tight_config();
  const auto dataset = dataset_mb(2000, 0.1);
  const double nopfs = run(config, dataset, "nopfs");
  for (const std::string name :
       {"naive", "staging", "deepio-ordered", "locality-aware"}) {
    EXPECT_LE(nopfs, run(config, dataset, name) * 1.05) << name;
  }
}

TEST(Policies, LbannUnsupportedBeyondAggregateRam) {
  const SimConfig config = tight_config(4);
  const auto big = dataset_mb(2000, 0.1);  // 200 MB > 4 * 20 MB RAM
  for (const std::string name : {"lbann-dynamic", "lbann-preload"}) {
    auto policy = make_policy(name);
    const SimResult result = simulate(config, big, *policy);
    EXPECT_FALSE(result.supported) << name;
  }
  const auto small = dataset_mb(500, 0.1);  // 50 MB < 80 MB RAM
  for (const std::string name : {"lbann-dynamic", "lbann-preload"}) {
    auto policy = make_policy(name);
    const SimResult result = simulate(config, small, *policy);
    EXPECT_TRUE(result.supported) << name;
  }
}

TEST(Policies, ShardingDoesNotAccessEntireLargeDataset) {
  const SimConfig config = tight_config(4, 3);
  // 400 MB dataset vs 4 * 80 MB = 320 MB aggregate: sharding must miss some.
  const auto dataset = dataset_mb(4000, 0.1);
  ParallelStagingPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  EXPECT_LT(result.accessed_fraction, 1.0);
  EXPECT_GT(result.accessed_fraction, 0.5);
  EXPECT_GT(result.prestage_s, 0.0);
  // Everything it does read is local.
  EXPECT_EQ(result.location_count[static_cast<int>(Location::kPfs)], 0u);
  EXPECT_EQ(result.location_count[static_cast<int>(Location::kRemote)], 0u);
}

TEST(Policies, ShardingCoversWhenItFits) {
  const SimConfig config = tight_config(4, 2);
  const auto dataset = dataset_mb(1000, 0.1);  // 100 MB < 320 MB aggregate
  ParallelStagingPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  EXPECT_DOUBLE_EQ(result.accessed_fraction, 1.0);
}

TEST(Policies, DeepIOOpportunisticSkipsUncachedSamples) {
  const SimConfig config = tight_config(4, 4);
  // RAM-only caching (20 MB * 4 = 80 MB) on a 200 MB dataset.
  const auto dataset = dataset_mb(2000, 0.1);
  DeepIOOpportunisticPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  EXPECT_LT(result.accessed_fraction, 1.0);
  // After epoch 0, PFS traffic should be small (reads are redirected to
  // caches) compared with the ordered variant.
  DeepIOOrderedPolicy ordered;
  const SimResult ordered_result = simulate(config, dataset, ordered);
  EXPECT_DOUBLE_EQ(ordered_result.accessed_fraction, 1.0);
  EXPECT_LT(result.location_count[static_cast<int>(Location::kPfs)],
            ordered_result.location_count[static_cast<int>(Location::kPfs)]);
}

TEST(Policies, NoPFSPlansRespectCapacity) {
  const SimConfig config = tight_config(4, 4);
  const auto dataset = dataset_mb(2000, 0.1);
  NoPFSPolicy policy;
  SimContext ctx;
  core::StreamConfig sc;
  sc.seed = config.seed;
  sc.num_samples = dataset.num_samples();
  sc.num_workers = config.system.num_workers;
  sc.num_epochs = config.num_epochs;
  sc.global_batch = config.global_batch();
  const core::AccessStreamGenerator gen(sc);
  const core::PerfModel model(config.system);
  ctx.config = &config;
  ctx.dataset = &dataset;
  ctx.gen = &gen;
  ctx.model = &model;
  EXPECT_DOUBLE_EQ(policy.setup(ctx), 0.0);  // no prestaging phase
  for (const double mb : policy.planned_mb()) {
    EXPECT_LE(mb, 80.0 + 1e-9);  // RAM + SSD per worker
    EXPECT_GT(mb, 0.0);
  }
}

TEST(Policies, NoPFSReadsPfsOncePerSampleWhenCacheable) {
  // Aggregate storage holds the dataset: total PFS reads ~ F (the paper's
  // "read from the PFS only once for an entire training run").
  const SimConfig config = tight_config(4, 4);
  const auto dataset = dataset_mb(1500, 0.1);  // 150 MB < 320 MB aggregate
  NoPFSPolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  const auto pfs = result.location_count[static_cast<int>(Location::kPfs)];
  EXPECT_LE(pfs, 1500u * 5 / 4);  // close to one per sample
  EXPECT_GT(result.location_count[static_cast<int>(Location::kRemote)], 0u);
  EXPECT_GT(result.location_count[static_cast<int>(Location::kLocal)], 0u);
}

TEST(Policies, NoPFSAblationRemoteOff) {
  const SimConfig config = tight_config(4, 4);
  const auto dataset = dataset_mb(2000, 0.1);
  NoPFSPolicy with_remote;
  NoPFSPolicy::Options opts;
  opts.use_remote = false;
  NoPFSPolicy without_remote(opts);
  const SimResult a = simulate(config, dataset, with_remote);
  const SimResult b = simulate(config, dataset, without_remote);
  EXPECT_EQ(b.location_count[static_cast<int>(Location::kRemote)], 0u);
  // Losing remote fetches costs time (PFS contention instead).
  EXPECT_LE(a.total_s, b.total_s * 1.001);
}

TEST(Policies, CapacityTrackerSpillsAcrossClasses) {
  tiers::NodeParams node;
  tiers::StorageClassParams fast;
  fast.name = "ram";
  fast.capacity_mb = 2.0;
  fast.read_mbps = util::ThroughputCurve({{0, 0}, {1, 100}});
  fast.write_mbps = fast.read_mbps;
  tiers::StorageClassParams slow = fast;
  slow.name = "ssd";
  slow.capacity_mb = 3.0;
  node.classes = {fast, slow};
  CapacityTracker tracker(node, 1, /*ram_only=*/false);
  EXPECT_EQ(tracker.try_cache(0, 1.0), 0);
  EXPECT_EQ(tracker.try_cache(0, 1.0), 0);
  EXPECT_EQ(tracker.try_cache(0, 1.0), 1);  // RAM full, spill to SSD
  EXPECT_EQ(tracker.try_cache(0, 3.5), -1);  // nothing fits
  EXPECT_DOUBLE_EQ(tracker.used_mb(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(tracker.used_mb(0, 1), 1.0);

  CapacityTracker ram_only(node, 1, /*ram_only=*/true);
  EXPECT_EQ(ram_only.try_cache(0, 1.5), 0);
  EXPECT_EQ(ram_only.try_cache(0, 1.5), -1);  // no SSD spill
}

TEST(Policies, LocalityAwareMostlyLocalAfterReorder) {
  const SimConfig config = tight_config(4, 4);
  const auto dataset = dataset_mb(1000, 0.1);  // fits cluster-wide
  LocalityAwarePolicy policy;
  const SimResult result = simulate(config, dataset, policy);
  const auto local = result.location_count[static_cast<int>(Location::kLocal)];
  const auto remote = result.location_count[static_cast<int>(Location::kRemote)];
  const auto pfs = result.location_count[static_cast<int>(Location::kPfs)];
  // After the caching epoch, reordering should make local dominate.
  EXPECT_GT(local, remote);
  EXPECT_GT(local, pfs);
}

}  // namespace
}  // namespace nopfs::sim
