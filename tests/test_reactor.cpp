// Backend-conformance suite for the pluggable reactor (DESIGN.md Sec. 7.6)
// plus the reactor-backed SocketTransport paths the threaded-era suite could
// not exercise.  Every case runs against BOTH event-loop backends — epoll
// and io_uring — through the same abstract interface: task FIFO, timer
// ordering, fd dispatch, generation-tagged re-registration, the mod_fd
// missed-edge hazard, the pipelined-fetch ticket API (dozens of kFetch in
// flight on ONE connection, interleaved with kPfsDelta gossip on the same
// wire), read-budget truncation continuations, and dead-rank gamma release
// when a peer process dies abruptly (fork + _exit, the real crash shape).
// io_uring cases skip cleanly where the kernel denies io_uring_setup.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "net/reactor.hpp"
#include "net/socket_transport.hpp"

namespace nopfs::net {
namespace {

bool eventually(const std::function<bool()>& predicate,
                std::chrono::seconds limit = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

std::string backend_case_name(
    const ::testing::TestParamInfo<ReactorBackend>& info) {
  return to_string(info.param);
}

/// Fixture over the two concrete backends.  io_uring skips (not fails)
/// where the kernel refuses the ring — CI runners vary.
class ReactorBackendTest : public ::testing::TestWithParam<ReactorBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == ReactorBackend::kIoUring && !io_uring_available()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }

  std::unique_ptr<Reactor> make() { return make_reactor(GetParam()); }
};

TEST_P(ReactorBackendTest, ReportsItsOwnBackendName) {
  EXPECT_STREQ(make()->backend_name(), to_string(GetParam()));
}

TEST_P(ReactorBackendTest, TasksRunInPostOrder) {
  // The FIFO guarantee is what the transport's gossip sequencing leans on:
  // post A then B from one thread must run A before B on the loop.
  auto reactor = make();
  reactor->start();
  std::mutex mutex;
  std::vector<int> order;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    reactor->post([&, i] {
      const std::scoped_lock lock(mutex);
      order.push_back(i);
      if (i == 99) cv.notify_all();
    });
  }
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return order.size() == 100u; }));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  reactor->stop();
}

TEST_P(ReactorBackendTest, TimersFireInDeadlineOrderWithPostOrderTieBreak) {
  auto reactor = make();
  std::mutex mutex;
  std::vector<int> order;
  std::condition_variable cv;
  // Scheduled from the loop itself (call_later is loop-thread-only): a
  // later deadline must not overtake an earlier one, and equal deadlines
  // fire in scheduling order.
  reactor->post([&, r = reactor.get()] {
    r->call_later(0.05, [&] {
      const std::scoped_lock lock(mutex);
      order.push_back(3);
      cv.notify_all();
    });
    r->call_later(0.0, [&] {
      const std::scoped_lock lock(mutex);
      order.push_back(1);
    });
    r->call_later(0.0, [&] {
      const std::scoped_lock lock(mutex);
      order.push_back(2);
    });
  });
  reactor->start();
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return order.size() == 3u; }));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  }
  reactor->stop();
}

TEST_P(ReactorBackendTest, DispatchesFdEventsAndHonorsSelfRemoval) {
  // A pipe becomes readable; its handler reads, then del_fd()s itself
  // mid-dispatch — the shared_ptr-held handler must survive its own
  // removal, and no further events may be delivered.
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  auto reactor = make();
  std::atomic<int> fired{0};
  reactor->add_fd(pipe_fds[0], kEventIn, [&, r = reactor.get()](std::uint32_t) {
    char buf[8];
    (void)::read(pipe_fds[0], buf, sizeof(buf));
    ++fired;
    r->del_fd(pipe_fds[0]);
  });
  reactor->start();
  ASSERT_EQ(::write(pipe_fds[1], "x", 1), 1);
  EXPECT_TRUE(eventually([&] { return fired.load() == 1; }));
  // A second byte after removal must not reach the handler.
  ASSERT_EQ(::write(pipe_fds[1], "y", 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired.load(), 1);
  reactor->stop();
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

TEST_P(ReactorBackendTest, ReRegisteredFdRoutesOnlyToTheNewHandler) {
  // del_fd + add_fd of the SAME fd inside a handler: any event the backend
  // already collected for the old registration must be dropped by its stale
  // generation tag, and later readiness must reach only the new handler.
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  auto reactor = make();
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  reactor->add_fd(pipe_fds[0], kEventIn, [&, r = reactor.get()](std::uint32_t) {
    char buf[1];
    (void)::read(pipe_fds[0], buf, sizeof(buf));
    ++first;
    r->del_fd(pipe_fds[0]);
    r->add_fd(pipe_fds[0], kEventIn, [&](std::uint32_t) {
      char buf2[8];
      (void)::read(pipe_fds[0], buf2, sizeof(buf2));
      ++second;
    });
  });
  reactor->start();
  ASSERT_EQ(::write(pipe_fds[1], "a", 1), 1);
  EXPECT_TRUE(eventually([&] { return first.load() == 1; }));
  ASSERT_EQ(::write(pipe_fds[1], "b", 1), 1);
  EXPECT_TRUE(eventually([&] { return second.load() >= 1; }));
  EXPECT_EQ(first.load(), 1);
  reactor->post([&, r = reactor.get()] { r->del_fd(pipe_fds[0]); });
  reactor->stop();
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

TEST_P(ReactorBackendTest, ModFdDeliversReadinessPresentBeforeTheMod) {
  // The missed-edge hazard: a mask widened to kEventOut on an ALREADY
  // writable socket must still dispatch.  Level-triggered epoll gives this
  // for free; the io_uring backend must re-arm a fresh poll whose initial
  // vfs_poll re-checks readiness rather than waiting for a new edge.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  auto reactor = make();
  std::atomic<int> out_events{0};
  reactor->add_fd(sv[0], kEventIn, [&](std::uint32_t events) {
    if ((events & kEventOut) != 0) ++out_events;
  });
  reactor->start();
  reactor->post(
      [&, r = reactor.get()] { r->mod_fd(sv[0], kEventIn | kEventOut); });
  EXPECT_TRUE(eventually([&] { return out_events.load() >= 1; }));
  reactor->post([&, r = reactor.get()] { r->del_fd(sv[0]); });
  reactor->stop();
  ::close(sv[0]);
  ::close(sv[1]);
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorBackendTest,
                         ::testing::Values(ReactorBackend::kEpoll,
                                           ReactorBackend::kIoUring),
                         backend_case_name);

/// Transport-level conformance: the same fixture pattern, but the backend
/// flows in through SocketOptions::reactor_backend.
class ReactorTransportTest : public ::testing::TestWithParam<ReactorBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == ReactorBackend::kIoUring && !io_uring_available()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }

  /// Builds a connected 2-rank world over loopback (same idiom as
  /// tests/test_socket_transport.cpp), both ranks on GetParam()'s backend.
  std::vector<std::unique_ptr<SocketTransport>> make_pair_world(
      std::size_t read_budget_bytes = 0) {
    const std::uint16_t port = pick_free_port();
    std::vector<std::unique_ptr<SocketTransport>> endpoints(2);
    std::vector<std::thread> threads;
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&, r] {
        SocketOptions options;
        options.rank = r;
        options.world_size = 2;
        options.rendezvous_port = port;
        options.timeout_s = 30.0;
        options.reactor_backend = GetParam();
        options.read_budget_bytes = read_budget_bytes;
        endpoints[static_cast<std::size_t>(r)] =
            std::make_unique<SocketTransport>(options);
      });
    }
    for (auto& t : threads) t.join();
    for (const auto& endpoint : endpoints) {
      if (endpoint == nullptr) throw std::runtime_error("handshake failed");
    }
    EXPECT_STREQ(endpoints[0]->reactor_backend(), to_string(GetParam()));
    return endpoints;
  }
};

TEST_P(ReactorTransportTest, DozensInFlightInterleavedWithGossip) {
  // The ticket API keeps a deep train of kFetch frames on rank 1's single
  // channel to rank 0 while unary kPfsDelta frames ride the SAME
  // connection between them.  Every reply must land on the ticket that
  // issued it (payload encodes the id), misses must resolve at their exact
  // positions, and the contention counter must drain back to zero — the
  // digest + gamma parity contract of the threaded transport, under
  // pipelining it never supported.
  auto endpoints = make_pair_world();
  endpoints[0]->set_serve_handler([](std::uint64_t id) -> std::optional<Bytes> {
    if (id % 7 == 3) return std::nullopt;  // deterministic miss positions
    Bytes bytes(64);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<std::uint8_t>((id * 2654435761u + i) >> 3);
    }
    return bytes;
  });

  std::atomic<int> gamma_at_1{-1};
  endpoints[1]->set_pfs_listener([&](int gamma) { gamma_at_1 = gamma; });

  constexpr int kRounds = 20;
  constexpr int kDepth = 48;
  int bad = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::deque<std::pair<std::uint64_t, SocketTransport::FetchTicket>> window;
    for (int i = 0; i < kDepth; ++i) {
      const auto id = static_cast<std::uint64_t>(round * kDepth + i);
      window.emplace_back(id, endpoints[1]->fetch_sample_start(0, id));
      // Interleave contention traffic between the queued fetches: unary
      // mode sends each delta immediately, on the same channel session.
      if (i % 8 == 0) endpoints[1]->pfs_adjust(+1);
      if (i % 8 == 4) endpoints[1]->pfs_adjust(-1);
    }
    // Odd rounds finish the window back to front: resolution order on the
    // wire is fixed (TCP FIFO), completion order at the caller is not.
    if (round % 2 == 1) std::reverse(window.begin(), window.end());
    for (auto& [id, ticket] : window) {
      const auto bytes = endpoints[1]->fetch_sample_finish(ticket);
      if (id % 7 == 3) {
        if (bytes.has_value()) ++bad;
        continue;
      }
      if (!bytes.has_value() || bytes->size() != 64u) {
        ++bad;
        continue;
      }
      for (std::size_t i = 0; i < bytes->size(); ++i) {
        if ((*bytes)[i] !=
            static_cast<std::uint8_t>((id * 2654435761u + i) >> 3)) {
          ++bad;
          break;
        }
      }
    }
  }
  EXPECT_EQ(bad, 0);

  // Gamma parity drain marker: a weight-2 acquire is unreachable by the
  // +1/-1 interleave above, so seeing 2 proves every earlier delta folded
  // at the root; the release then drains the counter to exactly zero.
  endpoints[1]->pfs_adjust(+2);
  endpoints[1]->flush_pfs_gossip();
  EXPECT_TRUE(eventually([&] { return gamma_at_1.load() == 2; }));
  endpoints[1]->pfs_adjust(-2);
  endpoints[1]->flush_pfs_gossip();
  EXPECT_TRUE(eventually([&] { return gamma_at_1.load() == 0; }));
  endpoints[1]->set_pfs_listener({});
}

TEST_P(ReactorTransportTest, TicketsFromManyThreadsShareOneConnection) {
  // Several caller threads each keep their own ticket window on the same
  // channel session; per-connection reply matching must never cross wires.
  auto endpoints = make_pair_world();
  endpoints[0]->set_serve_handler([](std::uint64_t id) -> std::optional<Bytes> {
    return Bytes{static_cast<std::uint8_t>(id), static_cast<std::uint8_t>(id >> 8)};
  });
  std::atomic<int> bad{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round) {
        std::vector<std::pair<std::uint64_t, SocketTransport::FetchTicket>> window;
        for (int i = 0; i < 16; ++i) {
          const auto id = static_cast<std::uint64_t>(t * 10'000 + round * 16 + i);
          window.emplace_back(id, endpoints[1]->fetch_sample_start(0, id));
        }
        for (auto& [id, ticket] : window) {
          const auto bytes = endpoints[1]->fetch_sample_finish(ticket);
          if (!bytes.has_value() || bytes->size() != 2u ||
              (*bytes)[0] != static_cast<std::uint8_t>(id) ||
              (*bytes)[1] != static_cast<std::uint8_t>(id >> 8)) {
            ++bad;
          }
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST_P(ReactorTransportTest, TinyReadBudgetStillDrainsLargeBursts) {
  // A read budget far below one reply forces kDone truncation on every
  // fill; the transport's posted continuation must keep consuming.  This
  // pins the multishot-poll hazard: the socket goes quiet after the burst,
  // so an io_uring backend that waited for a fresh edge would hang here.
  auto endpoints = make_pair_world(/*read_budget_bytes=*/4096);
  constexpr std::size_t kPayload = 64u << 10;  // 16 budgets per reply
  endpoints[0]->set_serve_handler([](std::uint64_t id) -> std::optional<Bytes> {
    Bytes bytes(kPayload);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<std::uint8_t>(id + i * 31);
    }
    return bytes;
  });
  int bad = 0;
  std::vector<std::pair<std::uint64_t, SocketTransport::FetchTicket>> window;
  for (std::uint64_t id = 0; id < 8; ++id) {
    window.emplace_back(id, endpoints[1]->fetch_sample_start(0, id));
  }
  for (auto& [id, ticket] : window) {
    const auto bytes = endpoints[1]->fetch_sample_finish(ticket);
    if (!bytes.has_value() || bytes->size() != kPayload) {
      ++bad;
      continue;
    }
    for (std::size_t i = 0; i < bytes->size(); ++i) {
      if ((*bytes)[i] != static_cast<std::uint8_t>(id + i * 31)) {
        ++bad;
        break;
      }
    }
  }
  EXPECT_EQ(bad, 0);
}

TEST_P(ReactorTransportTest, AbruptPeerDeathReleasesGammaFromReactorPath) {
  // fork + _exit is the real crash shape: the child's transport never runs
  // a destructor, sends no teardown frames, and the kernel closes its
  // sockets.  The root's reactor must see EOF on the serve session that
  // carried the child's delta and drop the dead rank's outstanding
  // readers.  (Fork happens before EITHER transport exists, so the child
  // inherits no reactor threads, ring fds, or locks.)
  const std::uint16_t port = pick_free_port();
  const ReactorBackend backend = GetParam();
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: rank 1 acquires, confirms the root folded it (the gamma
    // broadcast comes back), then dies without any cleanup.
    try {
      SocketOptions options;
      options.rank = 1;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      options.reactor_backend = backend;
      SocketTransport transport(options);
      std::atomic<int> gamma{-1};
      transport.set_pfs_listener([&](int g) { gamma = g; });
      transport.pfs_adjust(+1);
      transport.flush_pfs_gossip();
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (gamma.load() != 1 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ::_exit(gamma.load() == 1 ? 42 : 43);
    } catch (...) {
      ::_exit(44);
    }
  }

  SocketOptions options;
  options.rank = 0;
  options.world_size = 2;
  options.rendezvous_port = port;
  options.timeout_s = 30.0;
  options.reactor_backend = backend;
  SocketTransport root(options);
  std::atomic<int> gamma_at_root{-1};
  root.set_pfs_listener([&](int gamma) { gamma_at_root = gamma; });

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42) << "child never saw its own acquire";

  // The child held +1 at death; only the reactor's EOF path can release
  // it.  The authoritative probe is an adjust bracket (+1 must read 1, so
  // the orphan is gone AND nothing was double-released to below zero) —
  // the listener alone can't distinguish "released" from "installed after
  // the whole episode settled".
  EXPECT_TRUE(eventually([&] {
    const int held = root.pfs_adjust(+1);
    root.pfs_adjust(-1);
    return held == 1;
  })) << "dead rank still pins gamma (listener last saw "
      << gamma_at_root.load() << ")";
  root.set_pfs_listener({});
}

INSTANTIATE_TEST_SUITE_P(Backends, ReactorTransportTest,
                         ::testing::Values(ReactorBackend::kEpoll,
                                           ReactorBackend::kIoUring),
                         backend_case_name);

}  // namespace
}  // namespace nopfs::net
