// Tests for the epoll reactor and the reactor-backed SocketTransport paths
// that the threaded-era suite could not exercise: the Reactor primitive
// itself (task FIFO, timer ordering, fd dispatch), the pipelined-fetch
// ticket API (dozens of kFetch in flight on ONE connection, interleaved
// with kPfsDelta gossip on the same wire), and dead-rank gamma release when
// a peer process dies abruptly — no destructor, no teardown frames, just
// the kernel closing its sockets (fork + _exit, the real crash shape).

#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "net/reactor.hpp"
#include "net/socket_transport.hpp"

namespace nopfs::net {
namespace {

bool eventually(const std::function<bool()>& predicate,
                std::chrono::seconds limit = std::chrono::seconds(20)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

TEST(Reactor, TasksRunInPostOrder) {
  // The FIFO guarantee is what the transport's gossip sequencing leans on:
  // post A then B from one thread must run A before B on the loop.
  Reactor reactor;
  reactor.start();
  std::mutex mutex;
  std::vector<int> order;
  std::condition_variable cv;
  for (int i = 0; i < 100; ++i) {
    reactor.post([&, i] {
      const std::scoped_lock lock(mutex);
      order.push_back(i);
      if (i == 99) cv.notify_all();
    });
  }
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return order.size() == 100u; }));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
  reactor.stop();
}

TEST(Reactor, TimersFireInDeadlineOrderWithPostOrderTieBreak) {
  Reactor reactor;
  std::mutex mutex;
  std::vector<int> order;
  std::condition_variable cv;
  // Scheduled from the loop itself (call_later is loop-thread-only): a
  // later deadline must not overtake an earlier one, and equal deadlines
  // fire in scheduling order.
  reactor.post([&] {
    auto& r = reactor;
    r.call_later(0.05, [&] {
      const std::scoped_lock lock(mutex);
      order.push_back(3);
      cv.notify_all();
    });
    r.call_later(0.0, [&] {
      const std::scoped_lock lock(mutex);
      order.push_back(1);
    });
    r.call_later(0.0, [&] {
      const std::scoped_lock lock(mutex);
      order.push_back(2);
    });
  });
  reactor.start();
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                            [&] { return order.size() == 3u; }));
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  }
  reactor.stop();
}

TEST(Reactor, DispatchesFdEventsAndHonorsSelfRemoval) {
  // A pipe becomes readable; its handler reads, then del_fd()s itself
  // mid-dispatch — the shared_ptr-held handler must survive its own
  // removal, and no further events may be delivered.
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  Reactor reactor;
  std::atomic<int> fired{0};
  reactor.add_fd(pipe_fds[0], EPOLLIN, [&](std::uint32_t) {
    char buf[8];
    (void)::read(pipe_fds[0], buf, sizeof(buf));
    ++fired;
    reactor.del_fd(pipe_fds[0]);
  });
  reactor.start();
  ASSERT_EQ(::write(pipe_fds[1], "x", 1), 1);
  EXPECT_TRUE(eventually([&] { return fired.load() == 1; }));
  // A second byte after removal must not reach the handler.
  ASSERT_EQ(::write(pipe_fds[1], "y", 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fired.load(), 1);
  reactor.stop();
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

/// Builds a connected 2-rank world over loopback (same idiom as
/// tests/test_socket_transport.cpp).
std::vector<std::unique_ptr<SocketTransport>> make_pair_world() {
  const std::uint16_t port = pick_free_port();
  std::vector<std::unique_ptr<SocketTransport>> endpoints(2);
  std::vector<std::thread> threads;
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      SocketOptions options;
      options.rank = r;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      endpoints[static_cast<std::size_t>(r)] =
          std::make_unique<SocketTransport>(options);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& endpoint : endpoints) {
    if (endpoint == nullptr) throw std::runtime_error("handshake failed");
  }
  return endpoints;
}

TEST(PipelinedFetch, DozensInFlightInterleavedWithGossip) {
  // The ticket API keeps a deep train of kFetch frames on rank 1's single
  // channel to rank 0 while unary kPfsDelta frames ride the SAME
  // connection between them.  Every reply must land on the ticket that
  // issued it (payload encodes the id), misses must resolve at their exact
  // positions, and the contention counter must drain back to zero — the
  // digest + gamma parity contract of the threaded transport, under
  // pipelining it never supported.
  auto endpoints = make_pair_world();
  endpoints[0]->set_serve_handler([](std::uint64_t id) -> std::optional<Bytes> {
    if (id % 7 == 3) return std::nullopt;  // deterministic miss positions
    Bytes bytes(64);
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      bytes[i] = static_cast<std::uint8_t>((id * 2654435761u + i) >> 3);
    }
    return bytes;
  });

  std::atomic<int> gamma_at_1{-1};
  endpoints[1]->set_pfs_listener([&](int gamma) { gamma_at_1 = gamma; });

  constexpr int kRounds = 20;
  constexpr int kDepth = 48;
  int bad = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::deque<std::pair<std::uint64_t, SocketTransport::FetchTicket>> window;
    for (int i = 0; i < kDepth; ++i) {
      const auto id = static_cast<std::uint64_t>(round * kDepth + i);
      window.emplace_back(id, endpoints[1]->fetch_sample_start(0, id));
      // Interleave contention traffic between the queued fetches: unary
      // mode sends each delta immediately, on the same channel session.
      if (i % 8 == 0) endpoints[1]->pfs_adjust(+1);
      if (i % 8 == 4) endpoints[1]->pfs_adjust(-1);
    }
    // Odd rounds finish the window back to front: resolution order on the
    // wire is fixed (TCP FIFO), completion order at the caller is not.
    if (round % 2 == 1) std::reverse(window.begin(), window.end());
    for (auto& [id, ticket] : window) {
      const auto bytes = endpoints[1]->fetch_sample_finish(ticket);
      if (id % 7 == 3) {
        if (bytes.has_value()) ++bad;
        continue;
      }
      if (!bytes.has_value() || bytes->size() != 64u) {
        ++bad;
        continue;
      }
      for (std::size_t i = 0; i < bytes->size(); ++i) {
        if ((*bytes)[i] !=
            static_cast<std::uint8_t>((id * 2654435761u + i) >> 3)) {
          ++bad;
          break;
        }
      }
    }
  }
  EXPECT_EQ(bad, 0);

  // Gamma parity drain marker: a weight-2 acquire is unreachable by the
  // +1/-1 interleave above, so seeing 2 proves every earlier delta folded
  // at the root; the release then drains the counter to exactly zero.
  endpoints[1]->pfs_adjust(+2);
  endpoints[1]->flush_pfs_gossip();
  EXPECT_TRUE(eventually([&] { return gamma_at_1.load() == 2; }));
  endpoints[1]->pfs_adjust(-2);
  endpoints[1]->flush_pfs_gossip();
  EXPECT_TRUE(eventually([&] { return gamma_at_1.load() == 0; }));
  endpoints[1]->set_pfs_listener({});
}

TEST(PipelinedFetch, TicketsFromManyThreadsShareOneConnection) {
  // Several caller threads each keep their own ticket window on the same
  // channel session; per-connection reply matching must never cross wires.
  auto endpoints = make_pair_world();
  endpoints[0]->set_serve_handler([](std::uint64_t id) -> std::optional<Bytes> {
    return Bytes{static_cast<std::uint8_t>(id), static_cast<std::uint8_t>(id >> 8)};
  });
  std::atomic<int> bad{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&, t] {
      for (int round = 0; round < 10; ++round) {
        std::vector<std::pair<std::uint64_t, SocketTransport::FetchTicket>> window;
        for (int i = 0; i < 16; ++i) {
          const auto id = static_cast<std::uint64_t>(t * 10'000 + round * 16 + i);
          window.emplace_back(id, endpoints[1]->fetch_sample_start(0, id));
        }
        for (auto& [id, ticket] : window) {
          const auto bytes = endpoints[1]->fetch_sample_finish(ticket);
          if (!bytes.has_value() || bytes->size() != 2u ||
              (*bytes)[0] != static_cast<std::uint8_t>(id) ||
              (*bytes)[1] != static_cast<std::uint8_t>(id >> 8)) {
            ++bad;
          }
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(bad.load(), 0);
}

TEST(ReactorTransport, AbruptPeerDeathReleasesGammaFromReactorPath) {
  // fork + _exit is the real crash shape: the child's transport never runs
  // a destructor, sends no teardown frames, and the kernel closes its
  // sockets.  The root's reactor must see EOF on the serve session that
  // carried the child's delta and drop the dead rank's outstanding
  // readers.  (Fork happens before EITHER transport exists, so the child
  // inherits no reactor threads or locks.)
  const std::uint16_t port = pick_free_port();
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: rank 1 acquires, confirms the root folded it (the gamma
    // broadcast comes back), then dies without any cleanup.
    try {
      SocketOptions options;
      options.rank = 1;
      options.world_size = 2;
      options.rendezvous_port = port;
      options.timeout_s = 30.0;
      SocketTransport transport(options);
      std::atomic<int> gamma{-1};
      transport.set_pfs_listener([&](int g) { gamma = g; });
      transport.pfs_adjust(+1);
      transport.flush_pfs_gossip();
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(20);
      while (gamma.load() != 1 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ::_exit(gamma.load() == 1 ? 42 : 43);
    } catch (...) {
      ::_exit(44);
    }
  }

  SocketOptions options;
  options.rank = 0;
  options.world_size = 2;
  options.rendezvous_port = port;
  options.timeout_s = 30.0;
  SocketTransport root(options);
  std::atomic<int> gamma_at_root{-1};
  root.set_pfs_listener([&](int gamma) { gamma_at_root = gamma; });

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42) << "child never saw its own acquire";

  // The child held +1 at death; only the reactor's EOF path can release
  // it.  The authoritative probe is an adjust bracket (+1 must read 1, so
  // the orphan is gone AND nothing was double-released to below zero) —
  // the listener alone can't distinguish "released" from "installed after
  // the whole episode settled".
  EXPECT_TRUE(eventually([&] {
    const int held = root.pfs_adjust(+1);
    root.pfs_adjust(-1);
    return held == 1;
  })) << "dead rank still pins gamma (listener last saw "
      << gamma_at_root.load() << ")";
  root.set_pfs_listener({});
}

}  // namespace
}  // namespace nopfs::net
