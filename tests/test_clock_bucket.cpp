// Tests for the emulation clock and token-bucket rate limiter.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "tiers/clock.hpp"
#include "tiers/token_bucket.hpp"

namespace nopfs::tiers {
namespace {

TEST(RealClock, MonotoneAndSleeps) {
  RealClock clock;
  const double t0 = clock.now();
  clock.sleep_for(0.01);
  const double t1 = clock.now();
  EXPECT_GE(t1 - t0, 0.009);
}

TEST(ManualClock, AdvanceWakesSleepers) {
  ManualClock clock;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.sleep_for(5.0);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  clock.advance(4.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  clock.advance(1.5);
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_DOUBLE_EQ(clock.now(), 5.5);
}

TEST(TokenBucket, TryAcquireRespectsBalance) {
  ManualClock clock;
  TokenBucket bucket(clock, /*rate=*/100.0, /*burst=*/10.0);
  // Initially empty; refills only as the clock advances.
  EXPECT_FALSE(bucket.try_acquire(5.0));
  clock.advance(0.05);  // +5 MB
  EXPECT_TRUE(bucket.try_acquire(5.0));
  EXPECT_FALSE(bucket.try_acquire(0.5));
}

TEST(TokenBucket, BurstCapsAccumulation) {
  ManualClock clock;
  TokenBucket bucket(clock, 100.0, /*burst=*/10.0);
  clock.advance(100.0);  // would be 10,000 MB uncapped
  EXPECT_TRUE(bucket.try_acquire(10.0));
  EXPECT_FALSE(bucket.try_acquire(1.0));
}

TEST(TokenBucket, AcquireBlocksUntilRefilled) {
  RealClock clock;
  TokenBucket bucket(clock, /*rate=*/1000.0, /*burst=*/1.0);
  const double t0 = clock.now();
  bucket.acquire(50.0);  // needs ~50 ms at 1000 MB/s
  const double elapsed = clock.now() - t0;
  EXPECT_GE(elapsed, 0.04);
  EXPECT_LT(elapsed, 1.0);
  EXPECT_NEAR(bucket.total_granted(), 50.0, 1e-9);
}

TEST(TokenBucket, AggregateRateEnforcedUnderConcurrency) {
  RealClock clock;
  TokenBucket bucket(clock, /*rate=*/2000.0, /*burst=*/1.0);
  const double t0 = clock.now();
  std::vector<std::thread> readers;
  for (int i = 0; i < 4; ++i) {
    readers.emplace_back([&] { bucket.acquire(25.0); });
  }
  for (auto& r : readers) r.join();
  const double elapsed = clock.now() - t0;
  // 100 MB total at 2000 MB/s = 50 ms minimum regardless of thread count.
  EXPECT_GE(elapsed, 0.04);
  EXPECT_NEAR(bucket.total_granted(), 100.0, 1e-9);
}

TEST(TokenBucket, RateChangeTakesEffect) {
  RealClock clock;
  TokenBucket bucket(clock, /*rate=*/10.0, /*burst=*/0.1);
  bucket.set_rate(10'000.0);
  EXPECT_DOUBLE_EQ(bucket.rate(), 10'000.0);
  const double t0 = clock.now();
  bucket.acquire(100.0);  // 10 ms at the new rate; minutes at the old one
  EXPECT_LT(clock.now() - t0, 1.0);
}

TEST(TokenBucket, ZeroSizeIsFree) {
  ManualClock clock;
  TokenBucket bucket(clock, 1.0, 0.0);
  bucket.acquire(0.0);  // must not block
  EXPECT_DOUBLE_EQ(bucket.total_granted(), 0.0);
}

}  // namespace
}  // namespace nopfs::tiers
